/**
 * @file
 * Regenerates the Section VI / VIII-A interconnect claims: inter-tile
 * data transfers are statically scheduled on the c-mesh without
 * conflicts, and "the inter-tile link bandwidth requirement never
 * exceeds 3.2 GB/s" (the basis for the 32-bit 1 GHz links).
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "nn/zoo.h"
#include "noc/traffic.h"

using namespace isaac;

namespace {

void
printNocStudy()
{
    setVerbose(false);
    const auto cfg = arch::IsaacConfig::isaacCE();
    std::printf("=== C-mesh traffic (statically routed, XY) ===\n\n");
    for (int chips : {8, 16}) {
        std::printf("--- %d-chip board ---\n", chips);
        std::printf("%-10s %12s %12s %12s %12s %8s\n", "benchmark",
                    "egress GB/s", "hot link", "HT GB/s",
                    "layer GB/s", "sched");
        for (const auto &net : nn::allBenchmarks()) {
            const auto plan = pipeline::planPipeline(net, cfg, chips);
            if (!plan.fits) {
                std::printf("%-10s %12s\n", net.name().c_str(),
                            "(does not fit)");
                continue;
            }
            const auto placement =
                pipeline::Placement::build(net, plan, cfg);
            const auto r =
                noc::analyzeTraffic(net, plan, placement, cfg);
            std::printf("%-10s %12.2f %12.2f %12.2f %12.1f %8s\n",
                        net.name().c_str(), r.maxTileEgressGBps,
                        r.maxLinkGBps, r.maxHtGBps,
                        r.maxLayerRateGBps,
                        r.schedulable ? "yes" : "no");
        }
        std::printf("\n");
    }
    std::printf("Paper: per-tile egress never exceeds 3.2 GB/s "
                "(32-bit links at 1 GHz = %.1f GB/s capacity). Our "
                "measured egress peaks below 2 GB/s; a few deep-VGG "
                "mesh links exceed one link's capacity under plain "
                "XY routing and would take a second lane or a "
                "smarter placement, which the paper's hand mapping "
                "presumably provides.\n\n",
                arch::IsaacConfig{}.cmeshLinkGBps);
}

void
BM_TrafficAnalysis(benchmark::State &state)
{
    setVerbose(false);
    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto net = nn::vgg(1);
    const auto plan = pipeline::planPipeline(net, cfg, 16);
    const auto placement = pipeline::Placement::build(net, plan, cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            noc::analyzeTraffic(net, plan, placement, cfg));
}
BENCHMARK(BM_TrafficAnalysis);

void
BM_Placement(benchmark::State &state)
{
    setVerbose(false);
    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto net = nn::vgg(1);
    const auto plan = pipeline::planPipeline(net, cfg, 16);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pipeline::Placement::build(net, plan, cfg));
}
BENCHMARK(BM_Placement);

} // namespace

int
main(int argc, char **argv)
{
    printNocStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
