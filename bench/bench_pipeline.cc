/**
 * @file
 * Regenerates the Section VIII-A "Impact of Pipelining" study: the
 * throughput gain and tile-power increase of the inter-layer
 * pipeline on every benchmark, the VGG-1 headline, and the
 * cycle-level simulator's corroboration of the analytic interval on
 * a small network.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "nn/zoo.h"
#include "pipeline/perf.h"
#include "sim/pipeline_sim.h"
#include "sim/timeline.h"

using namespace isaac;

namespace {

void
printPipelineStudy()
{
    setVerbose(false);
    const auto cfg = arch::IsaacConfig::isaacCE();
    std::printf("=== Impact of pipelining (16-chip ISAAC-CE) "
                "===\n\n");
    std::printf("%-10s %10s %14s %14s %12s\n", "benchmark",
                "layers", "speedup(pipe)", "energy ratio",
                "fits");
    for (const auto &net : nn::allBenchmarks()) {
        const auto perf = pipeline::analyzeIsaac(net, cfg, 16);
        if (!perf.fits) {
            std::printf("%-10s %10zu %14s %14s %12s\n",
                        net.name().c_str(), net.size(), "-", "-",
                        "no");
            continue;
        }
        std::printf("%-10s %10zu %13.1fx %13.2fx %12s\n",
                    net.name().c_str(), net.size(),
                    perf.unpipelinedCyclesPerImage /
                        perf.cyclesPerImage,
                    perf.unpipelinedEnergyPerImageJ /
                        perf.energyPerImageJ,
                    "yes");
    }
    std::printf("\n(paper: VGG-1's 16 layers pipeline to a 16x "
                "throughput gain; our unpipelined baseline gives "
                "the fast classifier/pool layers their true, "
                "shorter times, so the measured factor tracks the "
                "nine balanced conv layers)\n\n");

    // Fig. 4b itself: the intra-tile schedule of two back-to-back
    // operations on one IMA (eDRAM read E, crossbar X, ADC A,
    // shift-and-add S, OR transfer O, sigmoid V, eDRAM write W).
    {
        sim::TileSim tileSim(cfg);
        const auto times = tileSim.run(
            {sim::TileOp{0, 1, 512, 32}, sim::TileOp{0, 1, 512, 32}});
        std::printf("Figure 4b (intra-tile pipeline, two ops):\n%s\n",
                    sim::renderTimeline(times).c_str());
    }

    // Cycle-level corroboration on the Fig. 4 example network,
    // mapped onto a single tile so the interval is resource-bound
    // rather than vanishingly small.
    const auto tiny = nn::tinyCnn();
    auto tinyCfg = cfg;
    tinyCfg.tilesPerChip = 1;
    const auto plan = pipeline::planPipeline(tiny, tinyCfg, 1);
    const auto sim = sim::simulatePipeline(tiny, plan, 12);
    std::printf("Cycle-level cross-check (TinyCNN, 12 images): "
                "analytic interval %.1f cycles, simulated %.1f "
                "cycles, fill latency %llu cycles\n\n",
                sim.analyticInterval, sim.measuredInterval,
                static_cast<unsigned long long>(sim.firstImageDone));
}

void
BM_SimulatePipeline(benchmark::State &state)
{
    const auto tiny = nn::tinyCnn();
    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto plan = pipeline::planPipeline(tiny, cfg, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sim::simulatePipeline(tiny, plan, 4));
}
BENCHMARK(BM_SimulatePipeline);

} // namespace

int
main(int argc, char **argv)
{
    printPipelineStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
