/**
 * @file
 * Regenerates Table III: input-buffer requirements for the largest
 * benchmark layers with and without pipelining.
 *
 * Columns: the published Table III KB figures (which count Kx rows
 * at one byte per value -- see pipeline/buffer.h) and our 16-bit
 * Section IV formula values, plus the reduction factor.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "nn/zoo.h"
#include "pipeline/buffer.h"

using namespace isaac;

namespace {

struct Row
{
    const char *group;
    int ni, k, nx;
};

constexpr Row kRows[] = {
    {"VGG/MSRA", 3, 3, 224},   {"VGG/MSRA", 96, 7, 112},
    {"VGG/MSRA", 64, 3, 112},  {"VGG/MSRA", 128, 3, 56},
    {"VGG/MSRA", 256, 3, 28},  {"VGG/MSRA", 384, 3, 28},
    {"VGG/MSRA", 512, 3, 14},  {"VGG/MSRA", 768, 3, 14},
    {"DeepFace", 142, 11, 32}, {"DeepFace", 71, 3, 32},
    {"DeepFace", 63, 9, 16},   {"DeepFace", 55, 9, 16},
    {"DeepFace", 25, 7, 16},
};

nn::LayerDesc
makeLayer(const Row &r)
{
    nn::LayerDesc d;
    d.kind = nn::LayerKind::Conv;
    d.name = "t";
    d.ni = d.no = r.ni;
    d.nx = d.ny = r.nx;
    d.kx = d.ky = r.k;
    d.px = d.py = (r.k - 1) / 2;
    return d;
}

void
printTable3()
{
    std::printf("=== Table III: buffering requirement with and "
                "without pipelining ===\n\n");
    std::printf("%-9s %4s %3s %4s | %12s %12s | %14s %14s | %9s\n",
                "group", "Ni", "k", "Nx", "no-pipe(KB)",
                "pipe(KB)", "16b no-pipe KB", "16b pipe KB",
                "reduction");
    double maxPipelined = 0;
    for (const auto &r : kRows) {
        const auto l = makeLayer(r);
        const double pubPipe = pipeline::paperTablePipelinedKB(l);
        maxPipelined = std::max(maxPipelined, pubPipe);
        std::printf("%-9s %4d %3d %4d | %12.2f %12.2f | %14.2f "
                    "%14.2f | %8.1fx\n",
                    r.group, r.ni, r.k, r.nx,
                    pipeline::paperTableUnpipelinedKB(l), pubPipe,
                    pipeline::unpipelinedBufferBytes(l) / 1024.0,
                    pipeline::pipelinedBufferBytes(l) / 1024.0,
                    pipeline::pipelineBufferReduction(l));
    }
    std::printf("\nLargest pipelined buffer: %.1f KB (paper: 74 KB; "
                "justifies the 64 KB per-tile eDRAM since such "
                "layers span multiple tiles)\n\n",
                maxPipelined);
}

void
BM_BufferFormula(benchmark::State &state)
{
    const auto l = makeLayer(kRows[1]);
    for (auto _ : state)
        benchmark::DoNotOptimize(pipeline::pipelinedBufferBytes(l));
}
BENCHMARK(BM_BufferFormula);

} // namespace

int
main(int argc, char **argv)
{
    printTable3();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
