/**
 * @file
 * Regenerates Table II: the benchmark suite. Prints every network's
 * layer structure plus the aggregate parameter counts the paper
 * quotes (VGG ~138M, MSRA 178M/183M/330M, DeepFace ~120M).
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "core/report.h"
#include "nn/zoo.h"

using namespace isaac;

namespace {

void
printTable2()
{
    std::printf("=== Table II: benchmark suite ===\n\n");
    for (const auto &net : nn::allBenchmarks()) {
        std::printf("%s\n", core::describeNetwork(net).c_str());
        for (const auto &l : net.layers()) {
            if (l.isDotProduct()) {
                std::printf("    %-18s %3dx%-3d in, %dx%d,%d/%d%s\n",
                            l.name.c_str(), l.nx, l.ny, l.kx, l.ky,
                            l.no, l.sx,
                            l.privateKernel ? " (private)" : "");
            } else {
                std::printf("    %-18s %3dx%-3d in\n", l.name.c_str(),
                            l.nx, l.ny);
            }
        }
        std::printf("\n");
    }
}

void
BM_BuildAllBenchmarks(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(nn::allBenchmarks());
}
BENCHMARK(BM_BuildAllBenchmarks);

} // namespace

int
main(int argc, char **argv)
{
    printTable2();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
