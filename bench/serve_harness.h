/**
 * @file
 * Shared harness for the serving-layer studies (bench_serving,
 * bench_selfheal): wall-clock helpers, host introspection, the
 * deterministic synthesized request stream, and the worker-count
 * sweep loop both studies drive their per-worker body through.
 *
 * Hoisted so the two binaries cannot drift apart on the parts their
 * JSON gates implicitly share — the input seeds (9000 + i keeps the
 * streams comparable across benches), the zero-means-unknown
 * hardware_concurrency pin, and the sweep structure.
 */

#ifndef ISAAC_BENCH_SERVE_HARNESS_H
#define ISAAC_BENCH_SERVE_HARNESS_H

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/types.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "nn/zoo.h"

namespace isaac::bench {

using Clock = std::chrono::steady_clock;

inline double
seconds(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

/** Hardware threads, with the zero-means-unknown case pinned to 1. */
inline unsigned
hostThreads()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : hc;
}

/**
 * The shared request stream: `count` deterministic synthesized images
 * sized for the network's first layer, seeded 9000 + i.
 */
inline std::vector<nn::Tensor>
makeServeInputs(const nn::Network &net, int count, FixedFormat fmt)
{
    const auto &l0 = net.layer(0);
    std::vector<nn::Tensor> inputs;
    inputs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        inputs.push_back(nn::synthesizeInput(
            l0.ni, l0.nx, l0.ny,
            static_cast<std::uint64_t>(9000 + i), fmt));
    return inputs;
}

/**
 * Run `body(workers)` once per worker count, in order, and collect
 * the results. The body is free to print its own row.
 */
template <typename Body>
auto
sweepWorkers(const std::vector<int> &workerCounts, Body &&body)
{
    std::vector<decltype(body(1))> runs;
    runs.reserve(workerCounts.size());
    for (const int workers : workerCounts)
        runs.push_back(body(workers));
    return runs;
}

} // namespace isaac::bench

#endif // ISAAC_BENCH_SERVE_HARNESS_H
