/**
 * @file
 * Regenerates the "Impact of Data Layout, ADCs/DACs" study
 * (Sec. VIII-A): sweep the DAC resolution v and cell density w with
 * the array height R pinned by the fixed 8-bit ADC (Eqs. (1)/(2) +
 * the encoding bit), and report CE/PE. The paper concludes the
 * sweet spot is w = 2 bits per cell with 1-bit DACs.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "energy/catalog.h"

using namespace isaac;

namespace {

int
rowsForEightBitAdc(int v, int w)
{
    const int exp = (v > 1 && w > 1) ? 9 - v - w : 10 - v - w;
    return exp >= 0 ? 1 << exp : 0;
}

void
printLayoutStudy()
{
    std::printf("=== Data-layout sweep at a fixed 8-bit ADC "
                "(Sec. VIII-A) ===\n\n");
    std::printf("%4s %4s %6s %8s | %12s %12s %10s\n", "v", "w", "R",
                "ADC", "CE(GOPS/mm2)", "PE(GOPS/W)", "SE(MB/mm2)");

    double bestCe = 0;
    int bestV = 0, bestW = 0;
    for (int v : {1, 2, 4}) {
        for (int w : {1, 2, 4, 8}) {
            const int rows = rowsForEightBitAdc(v, w);
            if (rows < 8) {
                std::printf("%4d %4d %6s %8s | (array too small "
                            "for the 8-bit ADC)\n",
                            v, w, "-", "-");
                continue;
            }
            arch::IsaacConfig cfg;
            cfg.engine.rows = rows;
            cfg.engine.cols = 128; // keep 16 weights per row
            cfg.engine.cellBits = w;
            cfg.engine.dacBits = v;
            if (v > 1)
                cfg.engine.inputMode = xbar::InputMode::Biased;
            if (cfg.engine.cols < cfg.engine.slicesPerWeight())
                cfg.engine.cols = cfg.engine.slicesPerWeight();
            const energy::IsaacEnergyModel m(cfg);
            std::printf("%4d %4d %6d %7db | %12.1f %12.1f %10.2f\n",
                        v, w, rows, cfg.engine.adcBits(),
                        m.ceGopsPerMm2(), m.peGopsPerW(),
                        m.seMBPerMm2());
            if (m.ceGopsPerMm2() > bestCe) {
                bestCe = m.ceGopsPerMm2();
                bestV = v;
                bestW = w;
            }
        }
    }
    std::printf("\nBest CE at v=%d, w=%d (paper: v=1, w=2 -- the "
                "ISAAC-CE design point)\n\n",
                bestV, bestW);
}

void
BM_LayoutPoint(benchmark::State &state)
{
    arch::IsaacConfig cfg;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            energy::IsaacEnergyModel(cfg).ceGopsPerMm2());
}
BENCHMARK(BM_LayoutPoint);

} // namespace

int
main(int argc, char **argv)
{
    printLayoutStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
