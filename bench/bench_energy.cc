/**
 * @file
 * Per-benchmark activity-energy breakdown: where the joules go for
 * each network on a 16-chip ISAAC-CE board. Corroborates the Table I
 * observation that the ADCs dominate the analog datapath's dynamic
 * energy, and shows the constant HyperTransport tax the paper calls
 * out in Sec. VIII-B.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "nn/zoo.h"
#include "pipeline/perf.h"

using namespace isaac;

namespace {

void
printEnergyBreakdown()
{
    setVerbose(false);
    const auto cfg = arch::IsaacConfig::isaacCE();
    std::printf("=== Activity-energy breakdown per image (16-chip "
                "ISAAC-CE), mJ ===\n\n");
    std::printf("%-10s %8s %8s %8s %8s %8s %8s %8s | %9s\n",
                "benchmark", "ADC", "DAC", "xbar", "digital",
                "eDRAM", "bus", "HT", "total");
    for (const auto &net : nn::allBenchmarks()) {
        const auto perf = pipeline::analyzeIsaac(net, cfg, 16);
        if (!perf.fits) {
            std::printf("%-10s (does not fit)\n",
                        net.name().c_str());
            continue;
        }
        const auto &a = perf.activity;
        std::printf("%-10s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f "
                    "%8.3f | %9.3f\n",
                    net.name().c_str(), a.adcJ * 1e3, a.dacJ * 1e3,
                    a.xbarJ * 1e3, a.digitalJ * 1e3, a.edramJ * 1e3,
                    a.busJ * 1e3, a.htJ * 1e3, a.totalJ() * 1e3);
    }
    std::printf("\nThe analog conversion chain (ADC + DAC + "
                "crossbar) dominates the switching energy, and the "
                "always-on HyperTransport links add a constant tax "
                "per image interval -- both observations from "
                "Secs. VIII-A/B.\n\n");
}

void
BM_ActivityAccounting(benchmark::State &state)
{
    setVerbose(false);
    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto net = nn::vgg(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pipeline::analyzeIsaac(net, cfg, 16));
}
BENCHMARK(BM_ActivityAccounting);

} // namespace

int
main(int argc, char **argv)
{
    printEnergyBreakdown();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
