/**
 * @file
 * Transient-error recovery study: what the detect -> retry ->
 * refresh -> recompute layer costs and buys as the error rates rise.
 *
 * Sweeps conductance-drift rate x eDRAM/OR bit-flip rate x ABFT
 * retry budget on TinyCNN with the full protection stack enabled
 * (checksum columns, drift refresh, SECDED, CRC/retransmit NoC) and
 * measures, against the exact fixed-point reference: end-to-end
 * bit-exactness, detection/correction coverage, recovery-cycle
 * overhead, and the refresh energy charged to the write model.
 * Emits BENCH_transient.json for dashboards.
 */

#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/accelerator.h"
#include "core/json_writer.h"
#include "nn/zoo.h"
#include "xbar/write_model.h"

using namespace isaac;

namespace {

constexpr double kDriftRates[] = {0.0, 0.02, 0.05};
constexpr double kFlipRates[] = {0.0, 5e-4, 2e-3};
constexpr int kRetryBudgets[] = {0, 3};
constexpr int kImages = 4;
constexpr std::uint64_t kRefreshInterval = 16;

struct SweepPoint
{
    double driftRate;
    double flipRate;
    int retries;
    int exactImages; ///< Bit-exact inferences out of kImages.
    resilience::TransientStats stats;
    double refreshEnergyJ;
};

std::vector<SweepPoint>
runSweep(const nn::Network &net, const nn::WeightStore &weights,
         const std::vector<nn::Tensor> &inputs,
         const std::vector<nn::Tensor> &truth)
{
    const xbar::WriteModel writeModel;
    std::vector<SweepPoint> points;
    for (const double drift : kDriftRates) {
        for (const double flip : kFlipRates) {
            for (const int retries : kRetryBudgets) {
                arch::IsaacConfig cfg;
                cfg.engine.abftChecksum = true;
                cfg.engine.maxReadRetries = retries;
                cfg.engine.noise.driftLevelsPerOp = drift;
                cfg.engine.noise.refreshIntervalOps =
                    drift > 0.0 ? kRefreshInterval : 0;
                cfg.engine.noise.seed = 271828;
                cfg.transient.edramFlipRate = flip;
                cfg.transient.orFlipRate = flip / 2.0;
                cfg.transient.packetCorruptRate =
                    flip > 0.0 ? 0.02 : 0.0;
                cfg.transient.seed = 161803;
                core::Accelerator acc(cfg);
                const auto model = acc.compile(net, weights, {});

                int exact = 0;
                for (int t = 0; t < kImages; ++t) {
                    const auto out = model.infer(
                        inputs[static_cast<std::size_t>(t)]);
                    exact += out.raw() ==
                        truth[static_cast<std::size_t>(t)].raw();
                }
                const auto stats = model.transientStats();
                points.push_back(SweepPoint{
                    drift, flip, retries, exact, stats,
                    writeModel.pulsesEnergyJ(static_cast<std::int64_t>(
                        stats.refreshPulses))});
            }
        }
    }
    return points;
}

void
writeJson(const std::vector<SweepPoint> &points)
{
    std::FILE *f = std::fopen("BENCH_transient.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "bench_transient: cannot write "
                     "BENCH_transient.json\n");
        return;
    }
    core::JsonArray sweep;
    for (const auto &p : points) {
        char energy[32];
        std::snprintf(energy, sizeof(energy), "%.6e",
                      p.refreshEnergyJ);
        core::JsonObject o;
        o.fixed("drift_rate", p.driftRate, 4)
            .fixed("flip_rate", p.flipRate, 5)
            .field("read_retries", p.retries)
            .field("exact_images", p.exactImages)
            .field("detected", p.stats.detected())
            .field("corrected", p.stats.corrected())
            .field("recovery_cycles", p.stats.recoveryCycles())
            .field("abft_mismatches", p.stats.abftMismatches)
            .field("abft_uncorrected", p.stats.abftUncorrected)
            .field("ecc_singles", p.stats.eccSingles)
            .field("ecc_doubles", p.stats.eccDoubles)
            .field("packets_retransmitted",
                   p.stats.packetsRetransmitted)
            .field("drift_refreshes", p.stats.driftRefreshes)
            .raw("refresh_energy_j", energy);
        sweep.item(o.str());
    }
    core::JsonObject root;
    root.field("bench", "transient")
        .field("workload", "tinyCnn")
        .field("images", kImages)
        .field("refresh_interval_ops", kRefreshInterval)
        .raw("sweep", sweep.str());
    const std::string text = root.str();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

void
printTransientStudy()
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 1717);
    const FixedFormat fmt{12};

    nn::ReferenceExecutor ref(net, weights, fmt);
    std::vector<nn::Tensor> inputs, truth;
    for (int t = 0; t < kImages; ++t) {
        inputs.push_back(
            nn::synthesizeInput(16, 12, 12, 9000 + t, fmt));
        truth.push_back(ref.run(inputs.back()));
    }

    std::printf("=== Transient errors: drift x flip rate x retry "
                "budget (TinyCNN, %d images) ===\n\n",
                kImages);
    std::printf("%-7s %-8s %-7s %8s %10s %10s %10s %12s\n", "drift",
                "flip", "retries", "exact", "detected", "corrected",
                "recovery", "refresh(nJ)");
    const auto points = runSweep(net, weights, inputs, truth);
    for (const auto &p : points) {
        std::printf(
            "%-7.3f %-8.4f %-7d %5d/%d %10llu %10llu %10llu %12.2f\n",
            p.driftRate, p.flipRate, p.retries, p.exactImages,
            kImages,
            static_cast<unsigned long long>(p.stats.detected()),
            static_cast<unsigned long long>(p.stats.corrected()),
            static_cast<unsigned long long>(
                p.stats.recoveryCycles()),
            p.refreshEnergyJ * 1e9);
    }
    std::printf(
        "\nWith drift held under the refresh sizing rule and flip "
        "rates in the SECDED regime every image stays bit-exact: "
        "the recovery layer turns raw error events into bounded "
        "retry/recompute cycles plus a periodic refresh energy "
        "charge instead of silent output corruption.\n\n");

    writeJson(points);
}

void
BM_ProtectedInference(benchmark::State &state)
{
    // Cost of one TinyCNN inference with the full protection stack
    // on (drift + ABFT + ECC + NoC) vs the rate-zero configuration.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 33);
    arch::IsaacConfig cfg;
    cfg.engine.abftChecksum = state.range(0) != 0;
    if (state.range(0) != 0) {
        cfg.engine.noise.driftLevelsPerOp = 0.05;
        cfg.engine.noise.refreshIntervalOps = kRefreshInterval;
        cfg.transient.edramFlipRate = 1e-3;
        cfg.transient.packetCorruptRate = 0.02;
    }
    core::Accelerator acc(cfg);
    const auto model = acc.compile(net, weights, {});
    const auto input = nn::synthesizeInput(16, 12, 12, 5, {12});
    for (auto _ : state)
        benchmark::DoNotOptimize(model.infer(input));
}
BENCHMARK(BM_ProtectedInference)->Arg(0)->Arg(1);

} // namespace

int
main(int argc, char **argv)
{
    printTransientStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
