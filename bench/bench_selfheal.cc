/**
 * @file
 * Self-healing soak study: a streaming InferenceSession serves a
 * fixed request stream while a HealthWatchdog injects and repairs the
 * scripted fault timeline — a stuck-cell burst (spare-remap recovery)
 * followed by a tile kill (degrade-and-migrate) on the same engine.
 *
 * Emits BENCH_selfheal.json with, per worker count: soak throughput
 * vs a fault-free run (the recovery dip), per-event recovery latency,
 * and the healed-retry counters; plus the gate record ci.sh enforces:
 * every scripted fault detected and resolved (recovery_complete),
 * every completed request bit-exact against a fault-free twin
 * (incorrect_results == 0), and the canonical recovery log
 * byte-identical across worker counts (canonical_invariant).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/accelerator.h"
#include "nn/zoo.h"
#include "serve/session.h"
#include "serve/supervisor.h"
#include "serve_harness.h"

using namespace isaac;

namespace {

constexpr int kImages = 24;
const std::vector<int> kWorkers = {1, 2, 4};

using bench::Clock;
using bench::seconds;

/** ABFT + spares + buffer/NoC transients; no drift, no write noise
 *  (the watchdog's determinism preconditions). */
arch::IsaacConfig
selfhealConfig()
{
    arch::IsaacConfig cfg;
    cfg.engine.threads = 1;
    cfg.engine.abftChecksum = true;
    cfg.engine.spareCols = 4;
    cfg.transient.edramFlipRate = 2e-3;
    cfg.transient.orFlipRate = 1e-3;
    cfg.transient.packetCorruptRate = 0.05;
    cfg.transient.seed = 0xBEEF;
    return cfg;
}

/** Burst at admission 6 (repairable), tile kill at admission 14
 *  (degrades) — spaced wider than the grace window below. */
serve::FaultTimeline
soakTimeline()
{
    serve::FaultTimeline t;
    t.events.push_back(serve::FaultEvent{
        serve::FaultKind::StuckBurst, /*atAdmission=*/6, /*layer=*/0,
        /*group=*/0, /*rs=*/0, /*cs=*/0, /*cells=*/3, /*seed=*/99});
    t.events.push_back(serve::FaultEvent{
        serve::FaultKind::TileKill, /*atAdmission=*/14, /*layer=*/0,
        /*group=*/0, /*rs=*/0, /*cs=*/0, /*cells=*/1, /*seed=*/7});
    return t;
}

serve::WatchdogPolicy
soakPolicy()
{
    serve::WatchdogPolicy p;
    p.detectionGraceAdmissions = 4;
    return p;
}

struct SoakRun
{
    int workers = 0;
    double throughput = 0;      ///< img/s with faults + recovery
    double cleanThroughput = 0; ///< img/s of the fault-free twin run
    double dip = 0;             ///< throughput / cleanThroughput
    std::vector<double> recoveryLatencyMs; ///< per resolved event
    std::uint64_t healedRetries = 0;
    std::uint64_t healFailed = 0;
    std::uint64_t completed = 0;
    std::size_t incorrect = 0; ///< results differing from the twin
    std::size_t unresolved = 0; ///< futures that threw
    bool recovered = false;     ///< watchdog idle at drain
    std::string canonical;      ///< canonical recovery log
};

SoakRun
runSoak(const core::Accelerator &acc, const nn::Network &net,
        const nn::WeightStore &weights,
        const core::CompileOptions &opts,
        const std::vector<nn::Tensor> &inputs,
        const std::vector<nn::Tensor> &want, int workers)
{
    SoakRun run;
    run.workers = workers;

    serve::SessionOptions sopts;
    sopts.queueDepth = 4;
    sopts.workers = workers;

    { // Fault-free baseline on a twin model: the dip denominator.
        const auto clean = acc.compile(net, weights, opts);
        serve::InferenceSession session(clean, sopts);
        const auto t0 = Clock::now();
        (void)session.run(inputs);
        run.cleanThroughput = static_cast<double>(inputs.size()) /
            seconds(Clock::now() - t0);
    }

    auto model = acc.compile(net, weights, opts);
    serve::InferenceSession session(model, sopts);
    const auto timeline = soakTimeline();
    serve::HealthWatchdog watchdog(model, session, timeline,
                                   soakPolicy());

    // The soak: one poll per admission (the epoch boundary), then
    // poll until drained — parked requests wait on the watchdog.
    std::vector<Clock::time_point> injectedAt(timeline.events.size());
    std::vector<std::future<nn::Tensor>> futs;
    std::size_t resolvedSeen = 0;
    run.recoveryLatencyMs.assign(timeline.events.size(), 0.0);
    const auto observe = [&] {
        watchdog.poll();
        const auto now = Clock::now();
        const std::uint64_t admitted = session.stats().submitted;
        for (std::size_t e = 0; e < timeline.events.size(); ++e) {
            if (injectedAt[e] == Clock::time_point{} &&
                admitted >= timeline.events[e].atAdmission)
                injectedAt[e] = now;
        }
        const auto log = watchdog.log();
        for (; resolvedSeen < log.records.size(); ++resolvedSeen) {
            const auto &rec = log.records[resolvedSeen];
            const auto idx =
                static_cast<std::size_t>(rec.eventIndex);
            run.recoveryLatencyMs[idx] =
                1e3 * seconds(now - injectedAt[idx]);
        }
    };

    const auto t0 = Clock::now();
    for (const auto &input : inputs) {
        futs.push_back(session.submit(input));
        observe();
    }
    while (session.inFlight() > 0) {
        observe();
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    observe();
    run.throughput = static_cast<double>(inputs.size()) /
        seconds(Clock::now() - t0);
    run.dip = run.throughput / run.cleanThroughput;

    run.recovered = watchdog.idle();
    run.canonical = watchdog.log().canonicalJson();
    for (std::size_t i = 0; i < futs.size(); ++i) {
        try {
            if (futs[i].get().raw() != want[i].raw())
                ++run.incorrect;
        } catch (...) {
            ++run.unresolved;
        }
    }
    const auto stats = session.stats();
    run.healedRetries = stats.healedRetries;
    run.healFailed = stats.healFailed;
    run.completed = stats.completed;
    session.shutdown();
    return run;
}

void
writeJson(const std::vector<SoakRun> &runs, bool recoveryComplete,
          std::size_t incorrect, bool canonicalInvariant)
{
    std::FILE *f = std::fopen("BENCH_selfheal.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "bench_selfheal: cannot write "
                     "BENCH_selfheal.json\n");
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"selfheal\",\n"
                 "  \"workload\": \"tinyCnn\",\n"
                 "  \"images\": %d,\n"
                 "  \"host_threads\": %u,\n"
                 "  \"timeline\": [\"stuck-burst@6\", "
                 "\"tile-kill@14\"],\n"
                 "  \"runs\": [",
                 kImages, bench::hostThreads());
    bool first = true;
    for (const auto &r : runs) {
        std::fprintf(
            f,
            "%s\n    {\"workers\": %d, \"throughput\": %.2f, "
            "\"clean_throughput\": %.2f, \"dip\": %.3f, "
            "\"recovery_latency_ms\": [%.3f, %.3f], "
            "\"healed_retries\": %llu, \"heal_failed\": %llu, "
            "\"completed\": %llu}",
            first ? "" : ",", r.workers, r.throughput,
            r.cleanThroughput, r.dip, r.recoveryLatencyMs[0],
            r.recoveryLatencyMs[1],
            static_cast<unsigned long long>(r.healedRetries),
            static_cast<unsigned long long>(r.healFailed),
            static_cast<unsigned long long>(r.completed));
        first = false;
    }
    std::fprintf(f,
                 "\n  ],\n  \"canonical\": %s,\n"
                 "  \"gate\": {\n"
                 "    \"recovery_complete\": %s,\n"
                 "    \"incorrect_results\": %zu,\n"
                 "    \"canonical_invariant\": %s\n  }\n}\n",
                 runs.empty() ? "{}" : runs.front().canonical.c_str(),
                 recoveryComplete ? "true" : "false", incorrect,
                 canonicalInvariant ? "true" : "false");
    std::fclose(f);
}

void
printSelfhealStudy()
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 4242);
    const core::CompileOptions opts;
    const core::Accelerator acc(selfhealConfig());
    const auto inputs =
        bench::makeServeInputs(net, kImages, opts.format);

    // Fault-free ground truth, one result per submission position.
    const auto twin = acc.compile(net, weights, opts);
    std::vector<nn::Tensor> want;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        want.push_back(twin.inferAllKeyed(inputs[i], i).back());

    std::printf("=== Self-healing soak: scripted stuck burst + tile "
                "kill under live serving (TinyCNN, %d images) "
                "===\n\n",
                kImages);
    std::printf("%-8s %10s %12s %7s %12s %12s %8s %7s\n", "workers",
                "img/s", "clean img/s", "dip", "burst rec ms",
                "kill rec ms", "healed", "exact");

    const auto runs = bench::sweepWorkers(kWorkers, [&](int workers) {
        auto run = runSoak(acc, net, weights, opts, inputs, want,
                           workers);
        std::printf(
            "%-8d %10.1f %12.1f %6.2fx %12.3f %12.3f %8llu %7s\n",
            run.workers, run.throughput, run.cleanThroughput,
            run.dip, run.recoveryLatencyMs[0],
            run.recoveryLatencyMs[1],
            static_cast<unsigned long long>(run.healedRetries),
            run.incorrect + run.unresolved == 0 ? "yes" : "NO");
        return run;
    });

    bool recoveryComplete = true;
    bool canonicalInvariant = true;
    std::size_t incorrect = 0;
    for (const auto &r : runs) {
        recoveryComplete = recoveryComplete && r.recovered &&
            r.healFailed == 0 && r.unresolved == 0;
        incorrect += r.incorrect;
        canonicalInvariant = canonicalInvariant &&
            r.canonical == runs.front().canonical;
    }
    std::printf("\ngate: recovery %s, %zu incorrect results, "
                "canonical log %s across worker counts\n\n",
                recoveryComplete ? "complete" : "INCOMPLETE",
                incorrect,
                canonicalInvariant ? "byte-identical"
                                   : "DIVERGENT");
    writeJson(runs, recoveryComplete, incorrect, canonicalInvariant);
}

void
BM_SelfhealSoak(benchmark::State &state)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 4242);
    const core::CompileOptions opts;
    const core::Accelerator acc(selfhealConfig());
    const auto inputs =
        bench::makeServeInputs(net, kImages, opts.format);
    const int workers = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto model = acc.compile(net, weights, opts);
        serve::SessionOptions sopts;
        sopts.queueDepth = 4;
        sopts.workers = workers;
        serve::InferenceSession session(model, sopts);
        serve::HealthWatchdog watchdog(model, session,
                                       soakTimeline(), soakPolicy());
        std::vector<std::future<nn::Tensor>> futs;
        for (const auto &input : inputs) {
            futs.push_back(session.submit(input));
            watchdog.poll();
        }
        while (session.inFlight() > 0) {
            watchdog.poll();
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
        }
        for (auto &fut : futs)
            benchmark::DoNotOptimize(fut.get());
        session.shutdown();
    }
    state.SetItemsProcessed(state.iterations() * kImages);
}
BENCHMARK(BM_SelfhealSoak)->Arg(1)->Arg(2)->Arg(4);

} // namespace

int
main(int argc, char **argv)
{
    printSelfhealStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
