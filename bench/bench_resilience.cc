/**
 * @file
 * Fault-tolerance study: how much classification accuracy the
 * spare-column remapper buys back as the stuck-cell rate rises, and
 * how much throughput the chip retains when a whole tile dies.
 *
 * Sweeps stuck-cell rate x spare-column count on TinyCNN against the
 * exact fixed-point reference (top-1 agreement), reports the fault
 * census the program-verify pass detected, then kills one placed
 * tile in the cycle-level chip simulation and measures the degraded
 * interval. Emits BENCH_resilience.json for dashboards.
 */

#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/accelerator.h"
#include "core/json_writer.h"
#include "nn/zoo.h"
#include "pipeline/perf.h"
#include "resilience/summary.h"
#include "sim/chip_sim.h"

using namespace isaac;

namespace {

constexpr double kStuckRates[] = {0.0, 0.002, 0.005, 0.01, 0.02};
constexpr int kSpareCounts[] = {0, 2, 4};
constexpr int kTrials = 25;

struct SweepPoint
{
    double stuckRate;
    int spares;
    int match; ///< Top-1 agreements out of kTrials.
    resilience::ArrayFaultReport faults;
};

std::vector<SweepPoint>
runAccuracySweep(const nn::Network &net,
                 const nn::WeightStore &weights,
                 const std::vector<nn::Tensor> &inputs,
                 const std::vector<int> &truth)
{
    std::vector<SweepPoint> points;
    for (const double rate : kStuckRates) {
        for (const int spares : kSpareCounts) {
            arch::IsaacConfig cfg;
            cfg.engine.spareCols = spares;
            cfg.engine.noise.stuckAtFraction = rate;
            cfg.engine.noise.seed = 314159;
            core::Accelerator acc(cfg);
            const auto model = acc.compile(net, weights, {});

            int match = 0;
            for (int t = 0; t < kTrials; ++t) {
                const auto out = model.infer(
                    inputs[static_cast<std::size_t>(t)]);
                int arg = 0;
                for (int k = 1; k < out.channels(); ++k)
                    if (out.at(k, 0, 0) > out.at(arg, 0, 0))
                        arg = k;
                match += arg == truth[static_cast<std::size_t>(t)];
            }
            points.push_back(SweepPoint{rate, spares, match,
                                        model.faultReport()});
        }
    }
    return points;
}

struct DegradationPoint
{
    double nominalInterval;
    double degradedInterval;
    int deadTiles;
    int remappedServers;
    double retained;
};

DegradationPoint
runTileKill()
{
    auto cfg = arch::IsaacConfig::isaacCE();
    cfg.tilesPerChip = 2;
    const auto net = nn::tinyCnn();
    const auto plan = pipeline::planPipeline(net, cfg, 1);
    const auto placement = pipeline::Placement::build(net, plan, cfg);

    const auto nominal =
        sim::simulateChip(net, plan, placement, cfg, 10);

    // Kill the first placed tile.
    sim::FailureSpec failures;
    for (std::size_t i = 0;
         i < net.size() && failures.deadTiles.empty(); ++i) {
        const auto place = placement.layerPlacement(i);
        if (place && !place->tiles.empty())
            failures.deadTiles.push_back(place->tiles.front());
    }
    const auto degraded =
        sim::simulateChip(net, plan, placement, cfg, 10, failures);

    DegradationPoint p;
    p.nominalInterval = nominal.measuredInterval;
    p.degradedInterval = degraded.measuredInterval;
    p.deadTiles = degraded.deadTiles;
    p.remappedServers = degraded.remappedServers;
    p.retained = resilience::throughputRetained(
        nominal.measuredInterval, degraded.measuredInterval);
    return p;
}

void
writeJson(const std::vector<SweepPoint> &points,
          const DegradationPoint &kill)
{
    std::FILE *f = std::fopen("BENCH_resilience.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "bench_resilience: cannot write "
                     "BENCH_resilience.json\n");
        return;
    }
    core::JsonArray sweep;
    for (const auto &p : points) {
        core::JsonObject o;
        o.fixed("stuck_rate", p.stuckRate, 4)
            .field("spare_cols", p.spares)
            .field("top1_match", p.match)
            .fixed("accuracy_retained",
                   static_cast<double>(p.match) / kTrials, 4)
            .field("faulty_cells",
                   static_cast<std::int64_t>(p.faults.faultyCells))
            .field("remapped_columns",
                   static_cast<std::int64_t>(
                       p.faults.remappedColumns))
            .field("uncorrectable_cells",
                   static_cast<std::int64_t>(
                       p.faults.uncorrectableCells))
            .field("program_pulses",
                   static_cast<std::int64_t>(p.faults.programPulses));
        sweep.item(o.str());
    }
    core::JsonObject killObj;
    killObj.fixed("nominal_interval", kill.nominalInterval, 2)
        .fixed("degraded_interval", kill.degradedInterval, 2)
        .field("dead_tiles", kill.deadTiles)
        .field("remapped_servers", kill.remappedServers)
        .fixed("throughput_retained", kill.retained, 4);
    core::JsonObject root;
    root.field("bench", "resilience")
        .field("workload", "tinyCnn")
        .field("trials", kTrials)
        .raw("accuracy_sweep", sweep.str())
        .raw("tile_kill", killObj.str());
    const std::string text = root.str();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

void
printResilienceStudy()
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 4242);
    const FixedFormat fmt{12};

    nn::ReferenceExecutor ref(net, weights, fmt);
    std::vector<nn::Tensor> inputs;
    std::vector<int> truth;
    for (int t = 0; t < kTrials; ++t) {
        inputs.push_back(
            nn::synthesizeInput(16, 12, 12, 7000 + t, fmt));
        const auto out = ref.run(inputs.back());
        int arg = 0;
        for (int k = 1; k < out.channels(); ++k)
            if (out.at(k, 0, 0) > out.at(arg, 0, 0))
                arg = k;
        truth.push_back(arg);
    }

    std::printf("=== Fault tolerance: stuck-cell rate x spare "
                "columns (TinyCNN, %d inputs) ===\n\n",
                kTrials);
    std::printf("%-8s %-7s %12s %10s %10s %14s\n", "stuck", "spares",
                "top-1 match", "faulty", "remapped",
                "uncorrectable");
    const auto points = runAccuracySweep(net, weights, inputs, truth);
    for (const auto &p : points) {
        std::printf("%-8.3f %-7d %9d/%d %10lld %10lld %14lld\n",
                    p.stuckRate, p.spares, p.match, kTrials,
                    static_cast<long long>(p.faults.faultyCells),
                    static_cast<long long>(
                        p.faults.remappedColumns),
                    static_cast<long long>(
                        p.faults.uncorrectableCells));
    }

    std::printf("\n=== Graceful degradation: one dead tile ===\n\n");
    const auto kill = runTileKill();
    std::printf("nominal interval   %10.2f cycles/image\n",
                kill.nominalInterval);
    std::printf("degraded interval  %10.2f cycles/image\n",
                kill.degradedInterval);
    std::printf("dead tiles         %10d\n", kill.deadTiles);
    std::printf("remapped servers   %10d\n", kill.remappedServers);
    std::printf("throughput retained %9.2f%%\n",
                100.0 * kill.retained);
    std::printf(
        "\nSpare columns absorb the bulk of sub-percent fault "
        "rates (uncorrectable cells drop toward zero), and a dead "
        "tile costs throughput in proportion to the work the "
        "survivors absorb -- the chip completes every image either "
        "way.\n\n");

    writeJson(points, kill);
}

void
BM_FaultAwareProgramming(benchmark::State &state)
{
    // Cost of the program-verify + remap pass itself at 1% faults.
    Rng rng(5);
    const int n = 256, m = 32;
    std::vector<Word> weights(static_cast<std::size_t>(n) * m);
    for (auto &w : weights)
        w = static_cast<Word>(rng.uniform(-32768, 32767));
    xbar::EngineConfig cfg;
    cfg.spareCols = 2;
    cfg.noise.stuckAtFraction = 0.01;
    for (auto _ : state) {
        xbar::BitSerialEngine eng(cfg, weights, n, m);
        benchmark::DoNotOptimize(eng.faultReport());
    }
}
BENCHMARK(BM_FaultAwareProgramming);

} // namespace

int
main(int argc, char **argv)
{
    printResilienceStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
