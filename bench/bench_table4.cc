/**
 * @file
 * Regenerates Table IV: peak CE / PE / SE for DaDianNao and the
 * three ISAAC design points, with the paper's values alongside.
 *
 * Note on ISAAC PE: our analytic PE follows directly from Table I's
 * chip power (41.3 TOPS / 65.8 W = ~620 GOPS/W); the paper's
 * published 363.7 GOPS/W is not derivable from its own Table I and
 * is shown for reference (see EXPERIMENTS.md).
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "dse/dse.h"
#include "energy/dadiannao_catalog.h"
#include "paper_reference.h"

using namespace isaac;

namespace {

void
printRow(const char *name, double ce, double pe, double se,
         double pce, double ppe, double pse)
{
    std::printf("%-12s | %8.1f %8.1f %8.2f | %8.1f %8.1f %8.2f\n",
                name, ce, pe, se, pce, ppe, pse);
}

void
printTable4()
{
    std::printf("=== Table IV: peak CE / PE / SE "
                "(HyperTransport overhead included) ===\n\n");
    std::printf("%-12s | %8s %8s %8s | %8s %8s %8s\n", "",
                "CE", "PE", "SE", "paperCE", "paperPE", "paperSE");
    std::printf("%-12s | %26s | %26s\n", "",
                "GOPS/mm^2  GOPS/W  MB/mm^2", "(published values)");

    const energy::DaDianNaoModel ddn;
    printRow("DaDianNao", ddn.ceGopsPerMm2(), ddn.peGopsPerW(),
             ddn.seMBPerMm2(), paper::kDdnCE, paper::kDdnPE,
             paper::kDdnSE);

    const energy::IsaacEnergyModel ce(arch::IsaacConfig::isaacCE());
    printRow("ISAAC-CE", ce.ceGopsPerMm2(), ce.peGopsPerW(),
             ce.seMBPerMm2(), paper::kIsaacCeCE, paper::kIsaacCePE,
             paper::kIsaacCeSE);

    const energy::IsaacEnergyModel pe(arch::IsaacConfig::isaacPE());
    printRow("ISAAC-PE", pe.ceGopsPerMm2(), pe.peGopsPerW(),
             pe.seMBPerMm2(), paper::kIsaacPeCE, paper::kIsaacPePE,
             paper::kIsaacPeSE);

    const energy::IsaacEnergyModel se(arch::IsaacConfig::isaacSE());
    printRow("ISAAC-SE", se.ceGopsPerMm2(), se.peGopsPerW(),
             se.seMBPerMm2(), paper::kIsaacSeCE, paper::kIsaacSePE,
             paper::kIsaacSeSE);

    std::printf("\nCE advantage over DaDianNao: measured %.1fx "
                "(paper: 7.5x)\n",
                ce.ceGopsPerMm2() / ddn.ceGopsPerMm2());
    std::printf("SE advantage of ISAAC-SE:    measured %.0fx "
                "(paper: ~134x)\n\n",
                se.seMBPerMm2() / ddn.seMBPerMm2());
}

void
BM_MetricEvaluation(benchmark::State &state)
{
    const energy::IsaacEnergyModel m(arch::IsaacConfig::isaacCE());
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.ceGopsPerMm2());
        benchmark::DoNotOptimize(m.peGopsPerW());
        benchmark::DoNotOptimize(m.seMBPerMm2());
    }
}
BENCHMARK(BM_MetricEvaluation);

} // namespace

int
main(int argc, char **argv)
{
    printTable4();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
