/**
 * @file
 * The design-space exploration study (Fig. 5 / Table IV): sweeps the
 * Fig. 5 geometry grid crossed with the ADC-policy and
 * heterogeneous-IMA axes, prints the CE/PE/SE Pareto frontier
 * against replays of the paper's ISAAC-CE / ISAAC-PE / ISAAC-SE
 * design points, and emits BENCH_dse.json with the full frontier
 * plus two machine-checked gate records:
 *
 *  - pe_dominance: at least one adaptive-policy frontier point
 *    strictly beats the fixed 8-bit ISAAC-CE replay on GOPS/W
 *    (the Newton-style converter's whole reason to exist);
 *  - lossless_exact: the lossless adaptive policy's functional run
 *    (TinyCNN, clean campaign scenario) shows a zero accuracy delta
 *    against the fixed-point reference.
 *
 * scripts/ci.sh parses those records and fails the build when either
 * verdict goes false. The sweep is deterministic — byte-identical
 * JSON at any thread count (tests/dse pins this).
 */

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "arch/config.h"
#include "campaign/campaign.h"
#include "campaign/runner.h"
#include "core/json_writer.h"
#include "dse/dse.h"
#include "xbar/adc_policy.h"

using namespace isaac;

namespace {

constexpr std::uint64_t kMasterSeed = 0xD5Eull;

/** The study space: Fig. 5 geometries x {fixed, adaptive} x
 *  {homogeneous, half-height-half-populated} tiles. */
dse::DseSpace
studySpace()
{
    dse::DseSpace space;
    space.policies = {xbar::AdcPolicy{}, xbar::AdcPolicy::adaptive()};
    space.heteroFractions = {0.0, 0.5};
    return space;
}

std::string
pointJson(const dse::DsePoint &p)
{
    core::JsonObject o;
    o.field("label", p.label());
    o.field("policy", p.policy.label());
    o.field("hetero_fraction", p.heteroFraction);
    o.field("feasible", p.feasible);
    o.field("ce_gops_mm2", p.ce);
    o.field("pe_gops_w", p.pe);
    o.field("se_mb_mm2", p.se);
    return o.str();
}

struct Study
{
    std::vector<dse::DsePoint> front;
    dse::DsePoint replayCE, replayPE, replaySE;
    /** Best adaptive frontier point by PE (the gate witness). */
    dse::DsePoint bestAdaptive;
    bool peDominance = false;
    double losslessMaxRel = -1.0;
    double losslessAgreement = 0.0;
    bool losslessExact = false;
};

Study
runStudy()
{
    Study st;
    const auto space = studySpace();
    const auto points = dse::sweep(space);
    st.front = dse::paretoFront(points);

    // The paper's Table IV design points replayed through the same
    // evaluator (fixed policy, homogeneous tiles).
    st.replayCE = dse::evaluate(arch::IsaacConfig::isaacCE(), space);
    st.replayPE = dse::evaluate(arch::IsaacConfig::isaacPE(), space);
    dse::DseSpace relaxed = space;
    relaxed.relaxAdcBound = true;
    relaxed.tileInputBytesPerCycle = 1e12;
    st.replaySE =
        dse::evaluate(arch::IsaacConfig::isaacSE(), relaxed);

    // Gate 1: an adaptive frontier point must strictly beat the
    // fixed-8-bit ISAAC-CE replay on GOPS/W.
    for (const auto &p : st.front) {
        if (!p.policy.isAdaptive())
            continue;
        if (!st.bestAdaptive.policy.isAdaptive() ||
            p.pe > st.bestAdaptive.pe)
            st.bestAdaptive = p;
    }
    st.peDominance = st.bestAdaptive.policy.isAdaptive() &&
        st.bestAdaptive.pe > st.replayCE.pe;

    // Gate 2: the lossless adaptive policy through the functional
    // engine — a clean campaign scenario must score zero divergence.
    campaign::RunnerOptions opts;
    opts.batch = 2;
    opts.threads = 1;
    const campaign::Runner runner("tinycnn", kMasterSeed, opts);
    campaign::Scenario clean;
    clean.policy = xbar::AdcPolicyKind::Adaptive;
    clean.masterSeed = kMasterSeed;
    const auto res = runner.runScenario(clean);
    st.losslessMaxRel = res.maxRel;
    st.losslessAgreement = res.agreement;
    st.losslessExact = clean.clean() && res.maxRel == 0.0 &&
        res.agreement == 1.0;
    return st;
}

void
writeJson(const Study &st)
{
    std::FILE *f = std::fopen("BENCH_dse.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "bench_dse: cannot write BENCH_dse.json\n");
        return;
    }
    core::JsonObject root;
    root.field("bench", "dse");
    {
        core::JsonArray front;
        for (const auto &p : st.front)
            front.item(pointJson(p));
        root.raw("pareto_front", front.str());
    }
    root.raw("replay_isaac_ce", pointJson(st.replayCE));
    root.raw("replay_isaac_pe", pointJson(st.replayPE));
    root.raw("replay_isaac_se", pointJson(st.replaySE));
    {
        core::JsonObject gate;
        gate.field("pe_dominance", st.peDominance);
        gate.field("best_adaptive_label", st.bestAdaptive.label());
        gate.field("best_adaptive_pe_gops_w", st.bestAdaptive.pe);
        gate.field("fixed_ce_pe_gops_w", st.replayCE.pe);
        gate.field("lossless_exact", st.losslessExact);
        gate.field("lossless_max_rel", st.losslessMaxRel);
        gate.field("lossless_agreement", st.losslessAgreement);
        root.raw("gate", gate.str());
    }
    const std::string text = root.str();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

void
printStudy(const Study &st)
{
    std::printf("=== DSE frontier: Fig. 5 grid x ADC policy x "
                "heterogeneous tiles ===\n\n");
    std::printf("%-34s %12s %12s %10s\n", "point", "CE GOPS/mm2",
                "PE GOPS/W", "SE MB/mm2");
    auto row = [](const char *tag, const dse::DsePoint &p) {
        std::printf("%-34s %12.2f %12.2f %10.3f%s\n",
                    (std::string(tag) + p.label()).c_str(), p.ce,
                    p.pe, p.se, p.feasible ? "" : "  [infeasible]");
    };
    row("replay ", st.replayCE);
    row("replay ", st.replayPE);
    row("replay ", st.replaySE);
    std::printf("\npareto frontier (%zu points):\n",
                st.front.size());
    for (const auto &p : st.front)
        row("  ", p);

    std::printf("\ngate: pe_dominance=%s (%s at %.2f GOPS/W vs "
                "fixed ISAAC-CE %.2f)\n",
                st.peDominance ? "true" : "false",
                st.bestAdaptive.label().c_str(), st.bestAdaptive.pe,
                st.replayCE.pe);
    std::printf("gate: lossless_exact=%s (max rel %g, agreement "
                "%.4f)\n\n",
                st.losslessExact ? "true" : "false",
                st.losslessMaxRel, st.losslessAgreement);
    std::printf(
        "The adaptive converter certifies each phase's worst-case "
        "bitline reading from the unit column and truncates the SAR "
        "ladder to the certified width, so the expected conversion "
        "depth -- and with it ADC power, the chip's dominant "
        "consumer -- drops below the fixed 8-bit baseline while the "
        "functional results stay bit-identical (the cap still "
        "covers every certified bound). The cost is a small "
        "sequencing-logic area tax, which is why the adaptive "
        "points win PE, lose a sliver of CE, and leave SE's byte "
        "count untouched.\n\n");
}

void
BM_SweepFigure5Grid(benchmark::State &state)
{
    const auto space = studySpace();
    for (auto _ : state) {
        const auto points = dse::sweep(space);
        benchmark::DoNotOptimize(points.size());
    }
}
BENCHMARK(BM_SweepFigure5Grid);

void
BM_EvaluateHeteroPoint(benchmark::State &state)
{
    const dse::DseSpace space;
    const auto cfg = arch::IsaacConfig::isaacCE();
    for (auto _ : state) {
        const auto p = dse::evaluate(
            cfg, space, xbar::AdcPolicy::adaptive(), 0.5);
        benchmark::DoNotOptimize(p.pe);
    }
}
BENCHMARK(BM_EvaluateHeteroPoint);

} // namespace

int
main(int argc, char **argv)
{
    const auto st = runStudy();
    printStudy(st);
    writeJson(st);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
