/**
 * @file
 * Micro-benchmarks of the functional analog data path (Fig. 1):
 * crossbar bitline reads and full bit-serial dot products across
 * engine geometries, plus the encoding primitives. These are real
 * timed google-benchmark cases measuring the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "xbar/encoding.h"
#include "xbar/engine.h"

using namespace isaac;

namespace {

std::vector<Word>
randomWords(std::uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<Word> v(static_cast<std::size_t>(n));
    for (auto &w : v)
        w = static_cast<Word>(rng.uniform(-32768, 32767));
    return v;
}

void
BM_CrossbarReadAllBitlines(benchmark::State &state)
{
    const int rows = static_cast<int>(state.range(0));
    xbar::CrossbarArray xb(rows, rows + 1, 2);
    Rng rng(1);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < rows + 1; ++c)
            xb.program(r, c, static_cast<int>(rng.uniform(0, 3)));
    std::vector<int> inputs(static_cast<std::size_t>(rows));
    for (auto &i : inputs)
        i = static_cast<int>(rng.uniform(0, 1));
    for (auto _ : state)
        benchmark::DoNotOptimize(xb.readAllBitlines(inputs));
    state.SetItemsProcessed(state.iterations() * rows * (rows + 1));
}
BENCHMARK(BM_CrossbarReadAllBitlines)->Arg(64)->Arg(128)->Arg(256);

void
BM_EngineDotProduct(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    xbar::EngineConfig cfg;
    const auto weights = randomWords(7, n * m);
    xbar::BitSerialEngine engine(cfg, weights, n, m);
    const auto inputs = randomWords(9, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * m);
}
BENCHMARK(BM_EngineDotProduct)
    ->Args({128, 16})   // one physical array
    ->Args({256, 32})   // the Fig. 4 example (4 arrays)
    ->Args({1024, 64}); // a deep-layer slice

void
BM_EngineDotProductBiasedDac2(benchmark::State &state)
{
    xbar::EngineConfig cfg;
    cfg.dacBits = 2;
    cfg.inputMode = xbar::InputMode::Biased;
    const auto weights = randomWords(3, 128 * 16);
    xbar::BitSerialEngine engine(cfg, weights, 128, 16);
    const auto inputs = randomWords(5, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
}
BENCHMARK(BM_EngineDotProductBiasedDac2);

void
BM_EngineDotProductNoisy(benchmark::State &state)
{
    xbar::EngineConfig cfg;
    cfg.noise.sigmaLsb = 0.5;
    const auto weights = randomWords(11, 128 * 16);
    xbar::BitSerialEngine engine(cfg, weights, 128, 16);
    const auto inputs = randomWords(13, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
}
BENCHMARK(BM_EngineDotProductNoisy);

void
BM_EngineProgramming(benchmark::State &state)
{
    xbar::EngineConfig cfg;
    const auto weights = randomWords(17, 128 * 16);
    for (auto _ : state) {
        xbar::BitSerialEngine engine(cfg, weights, 128, 16);
        benchmark::DoNotOptimize(engine.physicalArrays());
    }
}
BENCHMARK(BM_EngineProgramming);

void
BM_SliceWeight(benchmark::State &state)
{
    std::uint16_t u = 0xBEEF;
    for (auto _ : state) {
        benchmark::DoNotOptimize(xbar::sliceWeight(u, 2));
        ++u;
    }
}
BENCHMARK(BM_SliceWeight);

} // namespace

BENCHMARK_MAIN();
