/**
 * @file
 * Micro-benchmarks of the functional analog data path (Fig. 1):
 * crossbar bitline reads and full bit-serial dot products across
 * engine geometries, plus the encoding primitives. These are real
 * timed google-benchmark cases measuring the simulator itself.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "xbar/encoding.h"
#include "xbar/engine.h"

using namespace isaac;

namespace {

std::vector<Word>
randomWords(std::uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<Word> v(static_cast<std::size_t>(n));
    for (auto &w : v)
        w = static_cast<Word>(rng.uniform(-32768, 32767));
    return v;
}

void
BM_CrossbarReadAllBitlines(benchmark::State &state)
{
    const int rows = static_cast<int>(state.range(0));
    xbar::CrossbarArray xb(rows, rows + 1, 2);
    Rng rng(1);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < rows + 1; ++c)
            xb.program(r, c, static_cast<int>(rng.uniform(0, 3)));
    std::vector<int> inputs(static_cast<std::size_t>(rows));
    for (auto &i : inputs)
        i = static_cast<int>(rng.uniform(0, 1));
    for (auto _ : state)
        benchmark::DoNotOptimize(xb.readAllBitlines(inputs));
    state.SetItemsProcessed(state.iterations() * rows * (rows + 1));
}
BENCHMARK(BM_CrossbarReadAllBitlines)->Arg(64)->Arg(128)->Arg(256);

void
BM_EngineDotProduct(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    xbar::EngineConfig cfg;
    const auto weights = randomWords(7, n * m);
    xbar::BitSerialEngine engine(cfg, weights, n, m);
    const auto inputs = randomWords(9, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * m);
}
BENCHMARK(BM_EngineDotProduct)
    ->Args({128, 16})   // one physical array
    ->Args({256, 32})   // the Fig. 4 example (4 arrays)
    ->Args({1024, 64}); // a deep-layer slice

void
BM_EngineDotProductThreaded(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    xbar::EngineConfig cfg;
    cfg.threads = threads;
    const int n = 1024, m = 64;
    const auto weights = randomWords(7, n * m);
    xbar::BitSerialEngine engine(cfg, weights, n, m);
    const auto inputs = randomWords(9, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * m);
}
BENCHMARK(BM_EngineDotProductThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void
BM_EngineDotProductBiasedDac2(benchmark::State &state)
{
    xbar::EngineConfig cfg;
    cfg.dacBits = 2;
    cfg.inputMode = xbar::InputMode::Biased;
    const auto weights = randomWords(3, 128 * 16);
    xbar::BitSerialEngine engine(cfg, weights, 128, 16);
    const auto inputs = randomWords(5, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
}
BENCHMARK(BM_EngineDotProductBiasedDac2);

void
BM_EngineDotProductNoisy(benchmark::State &state)
{
    xbar::EngineConfig cfg;
    cfg.noise.sigmaLsb = 0.5;
    const auto weights = randomWords(11, 128 * 16);
    xbar::BitSerialEngine engine(cfg, weights, 128, 16);
    const auto inputs = randomWords(13, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
}
BENCHMARK(BM_EngineDotProductNoisy);

void
BM_EngineProgramming(benchmark::State &state)
{
    xbar::EngineConfig cfg;
    const auto weights = randomWords(17, 128 * 16);
    for (auto _ : state) {
        xbar::BitSerialEngine engine(cfg, weights, 128, 16);
        benchmark::DoNotOptimize(engine.physicalArrays());
    }
}
BENCHMARK(BM_EngineProgramming);

void
BM_SliceWeight(benchmark::State &state)
{
    std::uint16_t u = 0xBEEF;
    for (auto _ : state) {
        benchmark::DoNotOptimize(xbar::sliceWeight(u, 2));
        ++u;
    }
}
BENCHMARK(BM_SliceWeight);

/**
 * Machine-readable serial-vs-parallel scaling record: times the
 * 1024x64 dot product at several thread counts and writes
 * BENCH_crossbar.json next to the binary for regression dashboards.
 */
void
writeScalingJson()
{
    const int n = 1024, m = 64;
    const auto weights = randomWords(7, n * m);
    const auto inputs = randomWords(9, n);

    std::FILE *f = std::fopen("BENCH_crossbar.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "bench_crossbar: cannot write "
                     "BENCH_crossbar.json\n");
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"crossbar\",\n"
                 "  \"workload\": \"dotProduct\",\n"
                 "  \"inputs\": %d,\n  \"outputs\": %d,\n"
                 "  \"hardware_threads\": %u,\n  \"results\": [",
                 n, m, std::thread::hardware_concurrency());

    double serialNs = 0.0;
    bool first = true;
    for (int threads : {1, 2, 4, 8}) {
        xbar::EngineConfig cfg;
        cfg.threads = threads;
        xbar::BitSerialEngine engine(cfg, weights, n, m);
        // Warm up (spawns pool workers, faults pages), then time.
        engine.dotProduct(inputs);
        const int iters = 10;
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            benchmark::DoNotOptimize(engine.dotProduct(inputs));
        const auto stop = std::chrono::steady_clock::now();
        const double nsPerOp =
            std::chrono::duration<double, std::nano>(stop - start)
                .count() /
            iters;
        if (threads == 1)
            serialNs = nsPerOp;
        std::fprintf(f,
                     "%s\n    {\"threads\": %d, \"ns_per_op\": %.0f, "
                     "\"speedup\": %.3f}",
                     first ? "" : ",", threads, nsPerOp,
                     serialNs > 0 ? serialNs / nsPerOp : 0.0);
        first = false;
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_crossbar.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    writeScalingJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
