/**
 * @file
 * Micro-benchmarks of the functional analog data path (Fig. 1):
 * crossbar bitline reads and full bit-serial dot products across
 * engine geometries, plus the encoding primitives. These are real
 * timed google-benchmark cases measuring the simulator itself.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "xbar/batch_kernel.h"
#include "xbar/encoding.h"
#include "xbar/engine.h"

using namespace isaac;

namespace {

std::vector<Word>
randomWords(std::uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<Word> v(static_cast<std::size_t>(n));
    for (auto &w : v)
        w = static_cast<Word>(rng.uniform(-32768, 32767));
    return v;
}

void
BM_CrossbarReadAllBitlines(benchmark::State &state)
{
    const int rows = static_cast<int>(state.range(0));
    xbar::CrossbarArray xb(rows, rows + 1, 2);
    Rng rng(1);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < rows + 1; ++c)
            xb.program(r, c, static_cast<int>(rng.uniform(0, 3)));
    std::vector<int> inputs(static_cast<std::size_t>(rows));
    for (auto &i : inputs)
        i = static_cast<int>(rng.uniform(0, 1));
    for (auto _ : state)
        benchmark::DoNotOptimize(xb.readAllBitlines(inputs));
    state.SetItemsProcessed(state.iterations() * rows * (rows + 1));
}
BENCHMARK(BM_CrossbarReadAllBitlines)->Arg(64)->Arg(128)->Arg(256);

void
BM_EngineDotProduct(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    xbar::EngineConfig cfg; // packed fast path + memo (the default)
    const auto weights = randomWords(7, n * m);
    xbar::BitSerialEngine engine(cfg, weights, n, m);
    const auto inputs = randomWords(9, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * m);
}
BENCHMARK(BM_EngineDotProduct)
    ->Args({128, 16})   // one physical array
    ->Args({256, 32})   // the Fig. 4 example (4 arrays)
    ->Args({1024, 64}); // a deep-layer slice

/** The legacy scalar row loop (fastPath = false, no memo). */
void
BM_EngineDotProductScalar(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    xbar::EngineConfig cfg;
    cfg.fastPath = false;
    cfg.memoEntries = 0;
    const auto weights = randomWords(7, n * m);
    xbar::BitSerialEngine engine(cfg, weights, n, m);
    const auto inputs = randomWords(9, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * m);
}
BENCHMARK(BM_EngineDotProductScalar)
    ->Args({128, 16})
    ->Args({256, 32})
    ->Args({1024, 64});

/** Packed bit-plane reads, memo disabled: every phase recomputed. */
void
BM_EngineDotProductFast(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    xbar::EngineConfig cfg;
    cfg.memoEntries = 0;
    const auto weights = randomWords(7, n * m);
    xbar::BitSerialEngine engine(cfg, weights, n, m);
    const auto inputs = randomWords(9, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * m);
}
BENCHMARK(BM_EngineDotProductFast)
    ->Args({128, 16})
    ->Args({256, 32})
    ->Args({1024, 64});

/**
 * The plane-major batched popcount GEMM: a layer's worth of distinct
 * windows through one dotProductBatch() call (ns per window).
 */
void
BM_EngineDotProductBatched(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    const int windows = 64;
    xbar::EngineConfig cfg;
    cfg.threads = 1;
    cfg.memoEntries = 0;
    const auto weights = randomWords(7, n * m);
    xbar::BitSerialEngine engine(cfg, weights, n, m);
    const auto inputs = randomWords(9, n * windows);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.dotProductBatch(inputs, windows));
    state.SetItemsProcessed(state.iterations() * windows *
                            static_cast<std::int64_t>(n) * m);
}
BENCHMARK(BM_EngineDotProductBatched)
    ->Args({128, 16})
    ->Args({1024, 64});

/**
 * Steady-state memo replay: the same activation vector re-presented
 * (the recurring-digit-vector limit a conv layer's overlapping
 * windows approach).
 */
void
BM_EngineDotProductMemoized(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(state.range(1));
    xbar::EngineConfig cfg;
    const auto weights = randomWords(7, n * m);
    xbar::BitSerialEngine engine(cfg, weights, n, m);
    const auto inputs = randomWords(9, n);
    engine.dotProduct(inputs); // populate the memo
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * m);
}
BENCHMARK(BM_EngineDotProductMemoized)
    ->Args({128, 16})
    ->Args({1024, 64});

void
BM_EngineDotProductThreaded(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    xbar::EngineConfig cfg;
    cfg.threads = threads;
    const int n = 1024, m = 64;
    const auto weights = randomWords(7, n * m);
    xbar::BitSerialEngine engine(cfg, weights, n, m);
    const auto inputs = randomWords(9, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n) * m);
}
BENCHMARK(BM_EngineDotProductThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void
BM_EngineDotProductBiasedDac2(benchmark::State &state)
{
    xbar::EngineConfig cfg;
    cfg.dacBits = 2;
    cfg.inputMode = xbar::InputMode::Biased;
    const auto weights = randomWords(3, 128 * 16);
    xbar::BitSerialEngine engine(cfg, weights, 128, 16);
    const auto inputs = randomWords(5, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
}
BENCHMARK(BM_EngineDotProductBiasedDac2);

void
BM_EngineDotProductNoisy(benchmark::State &state)
{
    xbar::EngineConfig cfg;
    cfg.noise.sigmaLsb = 0.5;
    const auto weights = randomWords(11, 128 * 16);
    xbar::BitSerialEngine engine(cfg, weights, 128, 16);
    const auto inputs = randomWords(13, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.dotProduct(inputs));
}
BENCHMARK(BM_EngineDotProductNoisy);

void
BM_EngineProgramming(benchmark::State &state)
{
    xbar::EngineConfig cfg;
    const auto weights = randomWords(17, 128 * 16);
    for (auto _ : state) {
        xbar::BitSerialEngine engine(cfg, weights, 128, 16);
        benchmark::DoNotOptimize(engine.physicalArrays());
    }
}
BENCHMARK(BM_EngineProgramming);

void
BM_SliceWeight(benchmark::State &state)
{
    std::uint16_t u = 0xBEEF;
    for (auto _ : state) {
        benchmark::DoNotOptimize(xbar::sliceWeight(u, 2));
        ++u;
    }
}
BENCHMARK(BM_SliceWeight);

/** Best-of-3 timing of dotProductBatch() calls, ns per window. */
double
timeDotProductBatch(const xbar::BitSerialEngine &engine,
                    const std::vector<Word> &inputs, int windows,
                    int iters)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            benchmark::DoNotOptimize(
                engine.dotProductBatch(inputs, windows));
        const auto stop = std::chrono::steady_clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(stop - start)
                .count() /
            (static_cast<double>(iters) * windows);
        if (rep == 0 || ns < best)
            best = ns;
    }
    return best;
}

/** Median-of-3 timing of repeated dotProduct() calls, ns per op. */
double
timeDotProduct(const xbar::BitSerialEngine &engine,
               std::span<const Word> inputs, int iters)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            benchmark::DoNotOptimize(engine.dotProduct(inputs));
        const auto stop = std::chrono::steady_clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(stop - start)
                .count() /
            iters;
        if (rep == 0 || ns < best)
            best = ns;
    }
    return best;
}

/**
 * Machine-readable perf record, written next to the binary for the
 * CI regression gate (scripts/ci.sh) and dashboards:
 *
 *  - "results": the 1024x64 dot product at several thread counts,
 *    scalar and packed-fast-path columns side by side;
 *  - "clean_128": the gated single-array numbers — scalar vs packed
 *    vs steady-state memo replay vs the batched plane-major GEMM on
 *    a clean 128x128 ISAAC-CE array at threads = 1. CI fails if
 *    fast_speedup drops below 5, or if batched_speedup (batched GEMM
 *    over the per-window fast path, 64 distinct windows) drops below
 *    2 on hosts whose dispatch tier is above scalar (below 1 on
 *    dispatch-less hosts).
 */
void
writeScalingJson()
{
    const int n = 1024, m = 64;
    const auto weights = randomWords(7, n * m);
    const auto inputs = randomWords(9, n);

    std::FILE *f = std::fopen("BENCH_crossbar.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "bench_crossbar: cannot write "
                     "BENCH_crossbar.json\n");
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"crossbar\",\n"
                 "  \"workload\": \"dotProduct\",\n"
                 "  \"inputs\": %d,\n  \"outputs\": %d,\n"
                 "  \"hardware_threads\": %u,\n  \"results\": [",
                 n, m, std::thread::hardware_concurrency());

    double serialFastNs = 0.0;
    bool first = true;
    for (int threads : {1, 2, 4, 8}) {
        xbar::EngineConfig scalarCfg;
        scalarCfg.threads = threads;
        scalarCfg.fastPath = false;
        scalarCfg.memoEntries = 0;
        xbar::BitSerialEngine scalar(scalarCfg, weights, n, m);
        // Warm up (spawns pool workers, faults pages), then time.
        scalar.dotProduct(inputs);
        const double scalarNs = timeDotProduct(scalar, inputs, 10);

        xbar::EngineConfig fastCfg;
        fastCfg.threads = threads;
        fastCfg.memoEntries = 0; // measure packed reads, not replay
        xbar::BitSerialEngine fast(fastCfg, weights, n, m);
        fast.dotProduct(inputs);
        const double fastNs = timeDotProduct(fast, inputs, 50);
        if (threads == 1)
            serialFastNs = fastNs;

        std::fprintf(
            f,
            "%s\n    {\"threads\": %d, \"scalar_ns_per_op\": %.0f, "
            "\"fast_ns_per_op\": %.0f, \"fast_speedup\": %.3f, "
            "\"thread_speedup\": %.3f}",
            first ? "" : ",", threads, scalarNs, fastNs,
            fastNs > 0 ? scalarNs / fastNs : 0.0,
            fastNs > 0 ? serialFastNs / fastNs : 0.0);
        first = false;
    }

    // The gated record: one clean ISAAC-CE array, serial.
    const int gn = 128, gm = 16;
    const auto gw = randomWords(7, gn * gm);
    const auto gx = randomWords(9, gn);
    xbar::EngineConfig base;
    base.threads = 1;

    auto gateCfg = base;
    gateCfg.fastPath = false;
    gateCfg.memoEntries = 0;
    xbar::BitSerialEngine gScalar(gateCfg, gw, gn, gm);
    gScalar.dotProduct(gx);
    const double gScalarNs = timeDotProduct(gScalar, gx, 50);

    gateCfg = base;
    gateCfg.memoEntries = 0;
    xbar::BitSerialEngine gFast(gateCfg, gw, gn, gm);
    gFast.dotProduct(gx);
    const double gFastNs = timeDotProduct(gFast, gx, 200);

    xbar::BitSerialEngine gMemo(base, gw, gn, gm);
    gMemo.dotProduct(gx); // populate: later calls replay
    const double gMemoNs = timeDotProduct(gMemo, gx, 200);

    // The batched plane-major GEMM: 64 *distinct* windows per call
    // (no memo help possible), ns per window. Gated against the
    // per-window fast path: on any host with a dispatch tier above
    // scalar the hoisted packing + SIMD popcount must win >= 2x;
    // on a dispatch-less host it must at least not regress.
    const int gWindows = 64;
    gateCfg = base;
    gateCfg.memoEntries = 0;
    xbar::BitSerialEngine gBatch(gateCfg, gw, gn, gm);
    const auto gbx = randomWords(21, gn * gWindows);
    gBatch.dotProductBatch(gbx, gWindows); // warm up
    const double gBatchNs =
        timeDotProductBatch(gBatch, gbx, gWindows, 20);

    std::fprintf(f,
                 "\n  ],\n  \"clean_128\": {\n"
                 "    \"scalar_ns\": %.0f,\n"
                 "    \"fast_ns\": %.0f,\n"
                 "    \"memo_ns\": %.0f,\n"
                 "    \"batched_ns\": %.0f,\n"
                 "    \"batched_windows\": %d,\n"
                 "    \"kernel_tier\": \"%s\",\n"
                 "    \"fast_speedup\": %.3f,\n"
                 "    \"memo_speedup\": %.3f,\n"
                 "    \"batched_speedup\": %.3f\n  }\n}\n",
                 gScalarNs, gFastNs, gMemoNs, gBatchNs, gWindows,
                 xbar::kernel::tierName(xbar::kernel::activeTier()),
                 gFastNs > 0 ? gScalarNs / gFastNs : 0.0,
                 gMemoNs > 0 ? gScalarNs / gMemoNs : 0.0,
                 gBatchNs > 0 ? gFastNs / gBatchNs : 0.0);
    std::fclose(f);
    std::printf("wrote BENCH_crossbar.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    writeScalingJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
