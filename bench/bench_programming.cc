/**
 * @file
 * Weight-programming study: time and energy to load each benchmark's
 * weights into the crossbars (the Sec. III programming step), versus
 * the steady-state inference interval. Quantifies the paper's core
 * design argument that crossbars cannot be reprogrammed on the fly,
 * which forces the dedicated-crossbar inter-layer pipeline.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "nn/zoo.h"
#include "pipeline/replication.h"
#include "xbar/write_model.h"

using namespace isaac;

namespace {

void
printProgrammingStudy()
{
    setVerbose(false);
    const auto cfg = arch::IsaacConfig::isaacCE();
    const xbar::WriteModel wm;
    const int chips = 16;

    std::printf("=== Weight programming (16-chip ISAAC-CE; 100 ns "
                "pulses, 4 program-verify rounds) ===\n\n");
    std::printf("%-10s %12s %12s %14s %16s\n", "benchmark",
                "arrays", "program(ms)", "energy(mJ)",
                "vs image time");
    for (const auto &net : nn::allBenchmarks()) {
        const auto plan = pipeline::planPipeline(net, cfg, chips);
        if (!plan.fits) {
            std::printf("%-10s %12s\n", net.name().c_str(),
                        "(does not fit)");
            continue;
        }
        const double t = wm.programSeconds(cfg, plan.xbarsUsed,
                                           chips);
        const double e = wm.programEnergyJ(cfg, plan.xbarsUsed);
        const double imageT =
            plan.cyclesPerImage * cfg.cycleNs * 1e-9;
        std::printf("%-10s %12lld %12.3f %14.3f %14.0fx\n",
                    net.name().c_str(),
                    static_cast<long long>(plan.xbarsUsed), t * 1e3,
                    e * 1e3, t / imageT);
    }
    std::printf("\nOne full weight load costs several to dozens of "
                "image intervals -- and DaDianNao-style context "
                "switching would pay it again at every layer of "
                "every image, a >1000x slowdown. Hence the "
                "dedicated-crossbar pipeline (Sec. I/IV): program "
                "once, infer millions of times.\n\n");
}

void
BM_ProgramTimeModel(benchmark::State &state)
{
    const auto cfg = arch::IsaacConfig::isaacCE();
    const xbar::WriteModel wm;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            wm.programSeconds(cfg, 16128, 1));
}
BENCHMARK(BM_ProgramTimeModel);

} // namespace

int
main(int argc, char **argv)
{
    printProgrammingStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
