/**
 * @file
 * Streaming-serving study: throughput and latency of the
 * serve::InferenceSession request pipeline against the sequential
 * batch walk, swept over queue depth x scheduler workers.
 *
 * The session pipelines requests across execution-plan layer-steps
 * (the paper's inter-layer pipeline at request granularity) on a
 * work-stealing scheduler, so on a multi-core host the depth-16
 * pipeline must beat the one-at-a-time sequential walk by a healthy
 * margin — and keep scaling as workers are added. Emits
 * BENCH_serving.json with per-point throughput and p50/p99 latency
 * plus the two host-aware gate records ci.sh enforces:
 *  - "gate": best depth-16 throughput >= 1.5x sequential when the
 *    host has >= 2 hardware threads, no-regression (>= 0.9x) on a
 *    single-core host where pipelining cannot add compute;
 *  - "scaling_gate": the 8-worker depth-16 point >= 6x sequential on
 *    hosts with >= 8 hardware threads, degrading to the same
 *    no-regression floor on smaller hosts.
 *
 * IMPORTANT — reference records: on a host with fewer than 8
 * hardware threads the scaling gate is DISARMED (ci.sh prints a
 * loud notice); the no-regression floor it degrades to proves
 * nothing about worker scaling. Any BENCH_serving.json committed or
 * published as a reference record therefore MUST come from a host
 * with >= 8 hardware threads, where the 6x gate actually armed.
 * Check the emitted "host_threads" field before trusting a record.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/accelerator.h"
#include "nn/zoo.h"
#include "serve/session.h"
#include "serve_harness.h"

using namespace isaac;

namespace {

constexpr int kImages = 32;
constexpr std::size_t kDepths[] = {1, 4, 16};
const std::vector<int> kWorkers = {1, 2, 4, 8, 16};
constexpr std::size_t kGateDepth = 16;
constexpr int kScalingGateWorkers = 8;

using bench::Clock;
using bench::seconds;

struct ServePoint
{
    std::size_t depth = 0;
    int workers = 0;
    double throughput = 0; ///< images / second
    double p50Ms = 0;      ///< median request latency
    double p99Ms = 0;      ///< tail request latency
};

/** One open-loop run: keep `depth` requests outstanding, record each
 *  request's submit->ready latency by polling its future. */
ServePoint
runServeSweepPoint(const core::CompiledModel &model,
                   const std::vector<nn::Tensor> &inputs,
                   std::size_t depth, int workers)
{
    serve::SessionOptions opts;
    opts.queueDepth = depth;
    opts.workers = workers;
    serve::InferenceSession session(model, opts);

    struct Pending
    {
        std::future<nn::Tensor> fut;
        Clock::time_point submitted;
        std::size_t index;
    };
    std::vector<Pending> pending;
    std::vector<double> latencyMs(inputs.size(), 0);

    const auto start = Clock::now();
    std::size_t next = 0, doneCount = 0;
    while (doneCount < inputs.size()) {
        while (next < inputs.size() && pending.size() < depth) {
            Pending p;
            p.submitted = Clock::now();
            p.index = next;
            p.fut = session.submit(inputs[next]);
            pending.push_back(std::move(p));
            ++next;
        }
        bool progressed = false;
        for (std::size_t i = 0; i < pending.size();) {
            auto &p = pending[i];
            if (p.fut.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
                latencyMs[p.index] =
                    1e3 * seconds(Clock::now() - p.submitted);
                (void)p.fut.get();
                pending.erase(pending.begin() +
                              static_cast<std::ptrdiff_t>(i));
                ++doneCount;
                progressed = true;
            } else {
                ++i;
            }
        }
        if (!progressed)
            std::this_thread::yield();
    }
    const double elapsed = seconds(Clock::now() - start);
    session.shutdown();

    std::sort(latencyMs.begin(), latencyMs.end());
    ServePoint point;
    point.depth = depth;
    point.workers = workers;
    point.throughput = static_cast<double>(inputs.size()) / elapsed;
    point.p50Ms = latencyMs[latencyMs.size() / 2];
    point.p99Ms = latencyMs[std::min(
        latencyMs.size() - 1, latencyMs.size() * 99 / 100)];
    return point;
}

void
writeJson(double sequentialThroughput,
          const std::vector<ServePoint> &points,
          double bestGateThroughput, double expectedSpeedup,
          double scalingGateThroughput, double expectedScaling)
{
    std::FILE *f = std::fopen("BENCH_serving.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "bench_serving: cannot write "
                     "BENCH_serving.json\n");
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"serving\",\n"
                 "  \"workload\": \"tinyCnn\",\n"
                 "  \"images\": %d,\n"
                 "  \"host_threads\": %u,\n"
                 "  \"sequential_throughput\": %.2f,\n"
                 "  \"sweep\": [",
                 kImages, bench::hostThreads(),
                 sequentialThroughput);
    bool first = true;
    for (const auto &p : points) {
        std::fprintf(
            f,
            "%s\n    {\"queue_depth\": %zu, \"workers\": %d, "
            "\"throughput\": %.2f, \"p50_ms\": %.3f, "
            "\"p99_ms\": %.3f}",
            first ? "" : ",", p.depth, p.workers, p.throughput,
            p.p50Ms, p.p99Ms);
        first = false;
    }
    // The worker-scaling column: the depth-16 row re-expressed as
    // speedup over the sequential walk, one record per worker count.
    std::fprintf(f, "\n  ],\n  \"scaling\": [");
    first = true;
    for (const auto &p : points) {
        if (p.depth != kGateDepth)
            continue;
        std::fprintf(f,
                     "%s\n    {\"workers\": %d, "
                     "\"throughput\": %.2f, "
                     "\"speedup_vs_sequential\": %.3f}",
                     first ? "" : ",", p.workers, p.throughput,
                     p.throughput / sequentialThroughput);
        first = false;
    }
    std::fprintf(f,
                 "\n  ],\n  \"gate\": {\n"
                 "    \"queue_depth\": %zu,\n"
                 "    \"pipelined_throughput\": %.2f,\n"
                 "    \"speedup\": %.3f,\n"
                 "    \"expected_speedup\": %.2f\n  },\n"
                 "  \"scaling_gate\": {\n"
                 "    \"queue_depth\": %zu,\n"
                 "    \"workers\": %d,\n"
                 "    \"throughput\": %.2f,\n"
                 "    \"speedup_vs_sequential\": %.3f,\n"
                 "    \"expected_speedup\": %.2f\n  }\n}\n",
                 kGateDepth, bestGateThroughput,
                 bestGateThroughput / sequentialThroughput,
                 expectedSpeedup, kGateDepth, kScalingGateWorkers,
                 scalingGateThroughput,
                 scalingGateThroughput / sequentialThroughput,
                 expectedScaling);
    std::fclose(f);
}

void
printServingStudy()
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 4242);

    // Intra-layer threading off: the study isolates the *request*
    // pipeline, and the sequential baseline is the true
    // one-image-at-a-time walk.
    arch::IsaacConfig cfg;
    cfg.engine.threads = 1;
    core::Accelerator acc(cfg);
    const auto model = acc.compile(net, weights, {});
    const auto inputs = bench::makeServeInputs(
        net, kImages, core::CompileOptions{}.format);

    // Warm the digit-vector memo once so the sequential baseline and
    // every sweep point run against the same cache state.
    (void)model.inferBatch(inputs);

    // Sequential baseline: inferBatch on the single-worker session.
    const auto seqStart = Clock::now();
    const auto seqOut = model.inferBatch(inputs);
    const double seqElapsed = seconds(Clock::now() - seqStart);
    const double seqThroughput =
        static_cast<double>(inputs.size()) / seqElapsed;

    std::printf("=== Streaming serving: session pipeline vs "
                "sequential batch (TinyCNN, %d images) ===\n\n",
                kImages);
    std::printf("sequential inferBatch: %8.1f img/s\n\n",
                seqThroughput);
    std::printf("%-7s %-8s %12s %10s %10s %9s\n", "depth", "workers",
                "img/s", "p50 ms", "p99 ms", "speedup");

    std::vector<ServePoint> points;
    double bestGateThroughput = 0;
    double scalingGateThroughput = 0;
    for (const std::size_t depth : kDepths) {
        const auto row = bench::sweepWorkers(kWorkers, [&](int w) {
            const auto p = runServeSweepPoint(model, inputs, depth, w);
            std::printf("%-7zu %-8d %12.1f %10.3f %10.3f %8.2fx\n",
                        p.depth, p.workers, p.throughput, p.p50Ms,
                        p.p99Ms, p.throughput / seqThroughput);
            return p;
        });
        for (const auto &p : row) {
            if (p.depth == kGateDepth) {
                bestGateThroughput =
                    std::max(bestGateThroughput, p.throughput);
                if (p.workers == kScalingGateWorkers)
                    scalingGateThroughput = p.throughput;
            }
            points.push_back(p);
        }
    }

    const unsigned hc = bench::hostThreads();
    // The pipeline adds no compute, only overlap: with one hardware
    // thread there is nothing to overlap on, so both gates degrade to
    // no-regression. The scaling gate only demands real speedup when
    // the host can actually run its 8 workers concurrently.
    const double expectedSpeedup = hc >= 2 ? 1.5 : 0.9;
    const double expectedScaling = hc >= 8 ? 6.0 : 0.9;
    std::printf(
        "\ngate: depth-%zu pipelined %.1f img/s vs sequential %.1f "
        "img/s (%.2fx, expected >= %.2fx on %u host threads)\n",
        kGateDepth, bestGateThroughput, seqThroughput,
        bestGateThroughput / seqThroughput, expectedSpeedup, hc);
    std::printf(
        "scaling gate: depth-%zu workers-%d %.1f img/s vs sequential "
        "%.1f img/s (%.2fx, expected >= %.2fx on %u host threads)\n\n",
        kGateDepth, kScalingGateWorkers, scalingGateThroughput,
        seqThroughput, scalingGateThroughput / seqThroughput,
        expectedScaling, hc);

    writeJson(seqThroughput, points, bestGateThroughput,
              expectedSpeedup, scalingGateThroughput,
              expectedScaling);
}

void
BM_SessionDepth16(benchmark::State &state)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 4242);
    arch::IsaacConfig cfg;
    cfg.engine.threads = 1;
    core::Accelerator acc(cfg);
    const auto model = acc.compile(net, weights, {});
    const auto inputs = bench::makeServeInputs(
        net, kImages, core::CompileOptions{}.format);
    const int workers = static_cast<int>(state.range(0));
    for (auto _ : state) {
        serve::SessionOptions opts;
        opts.queueDepth = 16;
        opts.workers = workers;
        serve::InferenceSession session(model, opts);
        benchmark::DoNotOptimize(session.run(inputs));
    }
    state.SetItemsProcessed(state.iterations() * kImages);
}
BENCHMARK(BM_SessionDepth16)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

} // namespace

int
main(int argc, char **argv)
{
    printServingStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
