/**
 * @file
 * The paper's published numbers, used by the bench harnesses to
 * print measured-vs-paper columns. Nothing in the library depends on
 * these values; they exist purely for comparison output and are
 * transcribed from ISAAC (ISCA 2016) Tables I-IV and Section VIII.
 */

#ifndef ISAAC_BENCH_PAPER_REFERENCE_H
#define ISAAC_BENCH_PAPER_REFERENCE_H

namespace isaac::paper {

// Table I (ISAAC-CE).
constexpr double kTilePowerMw = 330.0;
constexpr double kTileAreaMm2 = 0.372;
constexpr double kChipPowerW = 65.8;
constexpr double kChipAreaMm2 = 85.4;
constexpr double kAdcTilePowerShare = 0.58;
constexpr double kAdcTileAreaShare = 0.31;

// Table IV.
constexpr double kDdnCE = 63.46;
constexpr double kDdnPE = 286.4;
constexpr double kDdnSE = 0.41;
constexpr double kIsaacCeCE = 478.95;
constexpr double kIsaacCePE = 363.7;
constexpr double kIsaacCeSE = 0.74;
constexpr double kIsaacPeCE = 466.8;
constexpr double kIsaacPePE = 380.7;
constexpr double kIsaacPeSE = 0.71;
constexpr double kIsaacSeCE = 140.3;
constexpr double kIsaacSePE = 255.3;
constexpr double kIsaacSeSE = 54.8;

// Section VIII-B headline (16-chip average).
constexpr double kThroughputGain = 14.8;
constexpr double kEnergyGain = 5.5;
constexpr double kPowerIncrease = 1.95;

// Section VIII-A sensitivity claims.
constexpr double kEncodingCeGain = 1.50;
constexpr double kEncodingPeGain = 1.87;
constexpr double kDac2AreaIncrease = 1.63;
constexpr double kDac2PowerIncrease = 1.07;
constexpr double kCell4CeLoss = 0.77;  // -23%
constexpr double kCell4PeLoss = 0.81;  // -19%
constexpr double kBit32ThroughputLoss = 0.25; // 4x lower
constexpr double kSlow200nsCeLoss = 0.70;     // -30%

} // namespace isaac::paper

#endif // ISAAC_BENCH_PAPER_REFERENCE_H
