/**
 * @file
 * Regenerates Figure 6: throughput and energy of ISAAC-CE
 * normalized to DaDianNao for every benchmark on 8/16/32/64-chip
 * boards. Benchmarks whose weights do not fit a configuration are
 * omitted, exactly as in the paper.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "baseline/dadiannao_perf.h"
#include "common/logging.h"
#include "nn/zoo.h"
#include "paper_reference.h"
#include "pipeline/perf.h"

using namespace isaac;

namespace {

void
printFig6()
{
    setVerbose(false);
    const auto cfg = arch::IsaacConfig::isaacCE();
    const energy::DaDianNaoModel ddn;
    const auto nets = nn::allBenchmarks();

    std::printf("=== Figure 6: ISAAC-CE normalized to DaDianNao "
                "===\n\n");
    for (int chips : {8, 16, 32, 64}) {
        std::printf("--- %d-chip board ---\n", chips);
        std::printf("%-10s %14s %12s %12s %12s %10s\n", "benchmark",
                    "norm.throughput", "norm.energy", "isaac img/s",
                    "ddn img/s", "power x");
        double sumT = 0, sumE = 0;
        int counted = 0;
        for (const auto &net : nets) {
            const auto ip = pipeline::analyzeIsaac(net, cfg, chips);
            const auto dp =
                baseline::analyzeDaDianNao(net, ddn, chips);
            if (!ip.fits || !dp.fits) {
                std::printf("%-10s %14s %12s  (%s does not fit)\n",
                            net.name().c_str(), "-", "-",
                            !ip.fits ? "ISAAC" : "DaDianNao");
                continue;
            }
            const double tGain = ip.imagesPerSec / dp.imagesPerSec;
            const double eGain =
                dp.energyPerImageJ / ip.energyPerImageJ;
            sumT += tGain;
            sumE += eGain;
            ++counted;
            std::printf("%-10s %14.2f %12.2f %12.0f %12.0f %10.2f\n",
                        net.name().c_str(), tGain, eGain,
                        ip.imagesPerSec, dp.imagesPerSec,
                        ip.powerW / dp.powerW);
        }
        if (counted) {
            std::printf("mean       %14.2f %12.2f\n", sumT / counted,
                        sumE / counted);
        }
        if (chips == 16) {
            std::printf("(paper 16-chip averages: %.1fx throughput, "
                        "%.1fx energy, %.2fx power -- see "
                        "EXPERIMENTS.md for the gap analysis)\n",
                        paper::kThroughputGain, paper::kEnergyGain,
                        paper::kPowerIncrease);
        }
        std::printf("\n");
    }
}

void
BM_PlanVgg16Chips(benchmark::State &state)
{
    const auto net = nn::vgg(1);
    const auto cfg = arch::IsaacConfig::isaacCE();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pipeline::planPipeline(net, cfg, 16));
}
BENCHMARK(BM_PlanVgg16Chips);

void
BM_AnalyzeDdn(benchmark::State &state)
{
    const auto net = nn::vgg(1);
    const energy::DaDianNaoModel ddn;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            baseline::analyzeDaDianNao(net, ddn, 16));
}
BENCHMARK(BM_AnalyzeDdn);

} // namespace

int
main(int argc, char **argv)
{
    printFig6();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
