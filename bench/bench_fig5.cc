/**
 * @file
 * Regenerates Figure 5: peak CE and PE across the design space
 * (crossbar size H, ADCs per IMA A, crossbars per IMA C, IMAs per
 * tile I). Infeasible points are annotated with their structural
 * hazard; the CE- and PE-optimal points are marked.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include <benchmark/benchmark.h>

#include "core/accelerator.h"
#include "dse/dse.h"
#include "nn/weights.h"
#include "xbar/batch_kernel.h"

using namespace isaac;

namespace {

/**
 * Time one VGG-style conv layer (3x3x64 kernels, 64 output maps, a
 * 14x14 input map -> 144 overlapping windows against one shared
 * engine) through the functional pipeline, ns per inference.
 * `batchWindows` selects the batched plane-major GEMM vs per-window
 * dotProduct() driving (the memo only engages per-window).
 * `hits`/`misses` return the engine-level memo counters.
 */
double
timeConvLayer(bool fastPath, bool batchWindows, int memoEntries,
              std::uint64_t &hits, std::uint64_t &misses)
{
    nn::NetworkBuilder b("vgg-conv", 64, 14, 14);
    b.conv(3, 64, 1, 0); // valid padding: 14 -> 12
    const auto net = b.build();
    const auto weights = nn::WeightStore::synthesize(net, 21);
    const core::CompileOptions opts;
    const auto input = nn::synthesizeInput(64, 14, 14, 3, opts.format);

    arch::IsaacConfig cfg;
    cfg.engine.threads = 1;
    cfg.engine.fastPath = fastPath;
    cfg.engine.batchWindows = batchWindows;
    cfg.engine.memoEntries = memoEntries;
    const core::Accelerator acc(cfg);
    const auto model = acc.compile(net, weights, opts);
    model.infer(input); // warm up (and populate the memo)

    const int iters = fastPath ? 6 : 2;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            benchmark::DoNotOptimize(model.infer(input));
        const auto stop = std::chrono::steady_clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(stop - start)
                .count() /
            iters;
        if (rep == 0 || ns < best)
            best = ns;
    }
    hits = model.memoHits();
    misses = model.memoMisses();
    return best;
}

void
printFig5()
{
    std::printf("=== Figure 5: CE and PE across the ISAAC design "
                "space ===\n\n");
    dse::DseSpace space;
    const auto points = dse::sweep(space);
    const auto &bestCe = dse::best(points, dse::Metric::CE);
    const auto &bestPe = dse::best(points, dse::Metric::PE);

    std::printf("%-18s %12s %12s %10s  %s\n", "config",
                "CE(GOPS/mm^2)", "PE(GOPS/W)", "SE(MB/mm^2)",
                "notes");
    for (const auto &p : points) {
        if (!p.feasible) {
            std::printf("%-18s %12s %12s %10s  infeasible: %s\n",
                        p.config.label().c_str(), "-", "-", "-",
                        p.hazard.c_str());
            continue;
        }
        std::string notes;
        if (p.config.label() == bestCe.config.label())
            notes += " <= best CE (ISAAC-CE)";
        if (p.config.label() == bestPe.config.label())
            notes += " <= best PE (ISAAC-PE)";
        std::printf("%-18s %12.1f %12.1f %10.2f %s\n",
                    p.config.label().c_str(), p.ce, p.pe, p.se,
                    notes.c_str());
    }

    std::printf("\nBest CE: %s (paper: H128-A8-C8 with 12 IMAs per "
                "tile)\n",
                bestCe.config.label().c_str());
    std::printf("Best PE: %s (paper: near-identical to the CE "
                "point)\n\n",
                bestPe.config.label().c_str());
}

void
BM_DseSweep(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(dse::sweep());
}
BENCHMARK(BM_DseSweep);

/**
 * Serial-vs-parallel sweep timings plus the optimal points, written
 * as BENCH_fig5.json for regression dashboards.
 */
void
writeFig5Json()
{
    std::FILE *f = std::fopen("BENCH_fig5.json", "w");
    if (!f) {
        std::fprintf(stderr,
                     "bench_fig5: cannot write BENCH_fig5.json\n");
        return;
    }

    dse::DseSpace space;
    const auto points = dse::sweep(space);
    const auto &bestCe = dse::best(points, dse::Metric::CE);
    const auto &bestPe = dse::best(points, dse::Metric::PE);

    std::fprintf(f,
                 "{\n  \"bench\": \"fig5\",\n"
                 "  \"workload\": \"dse_sweep\",\n"
                 "  \"points\": %zu,\n"
                 "  \"best_ce\": \"%s\",\n  \"best_pe\": \"%s\",\n"
                 "  \"hardware_threads\": %u,\n  \"results\": [",
                 points.size(), bestCe.config.label().c_str(),
                 bestPe.config.label().c_str(),
                 std::thread::hardware_concurrency());

    double serialNs = 0.0;
    bool first = true;
    for (int threads : {1, 2, 4, 8}) {
        dse::DseSpace timed;
        timed.threads = threads;
        dse::sweep(timed); // warm up
        const int iters = 5;
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            benchmark::DoNotOptimize(dse::sweep(timed));
        const auto stop = std::chrono::steady_clock::now();
        const double nsPerOp =
            std::chrono::duration<double, std::nano>(stop - start)
                .count() /
            iters;
        if (threads == 1)
            serialNs = nsPerOp;
        std::fprintf(f,
                     "%s\n    {\"threads\": %d, \"ns_per_op\": %.0f, "
                     "\"speedup\": %.3f}",
                     first ? "" : ",", threads, nsPerOp,
                     serialNs > 0 ? serialNs / nsPerOp : 0.0);
        first = false;
    }

    // The crossbar-engine fast path on a realistic conv workload:
    // overlapping windows of one layer share one engine, so digit
    // vectors recur across windows (above all the sign-extended
    // high phases of quantized activations) and the memo replays
    // them. scripts/ci.sh records these columns alongside the
    // clean_128 gate in BENCH_crossbar.json.
    std::uint64_t hits = 0, misses = 0, scratch0 = 0, scratch1 = 0;
    const double scalarNs =
        timeConvLayer(false, false, 0, scratch0, scratch1);
    const double fastNs =
        timeConvLayer(true, false, 0, scratch0, scratch1);
    // Memo sized to the layer's working set (144 windows x 16 phases
    // of distinct digit vectors per tile; see docs/performance.md —
    // an undersized LRU thrashes on the cyclic access pattern).
    const double memoNs =
        timeConvLayer(true, false, 4096, hits, misses);
    // The batched plane-major GEMM (the default driving mode): all
    // 144 windows staged into one popcount GEMM per tile-phase; the
    // memo is bypassed, so this column is honest about cold inputs.
    const double batchedNs =
        timeConvLayer(true, true, 0, scratch0, scratch1);
    std::fprintf(f,
                 "\n  ],\n  \"conv_memo\": {\n"
                 "    \"layer\": \"conv3x3x64-to-64@14x14\",\n"
                 "    \"conv_scalar_ns\": %.0f,\n"
                 "    \"conv_fast_ns\": %.0f,\n"
                 "    \"conv_memo_ns\": %.0f,\n"
                 "    \"conv_batched_ns\": %.0f,\n"
                 "    \"kernel_tier\": \"%s\",\n"
                 "    \"fast_speedup\": %.3f,\n"
                 "    \"memo_speedup\": %.3f,\n"
                 "    \"batched_speedup\": %.3f,\n"
                 "    \"batched_vs_fast\": %.3f,\n"
                 "    \"memo_hits\": %llu,\n"
                 "    \"memo_misses\": %llu\n  }\n}\n",
                 scalarNs, fastNs, memoNs, batchedNs,
                 xbar::kernel::tierName(xbar::kernel::activeTier()),
                 fastNs > 0 ? scalarNs / fastNs : 0.0,
                 memoNs > 0 ? scalarNs / memoNs : 0.0,
                 batchedNs > 0 ? scalarNs / batchedNs : 0.0,
                 batchedNs > 0 ? fastNs / batchedNs : 0.0,
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(misses));
    std::fclose(f);
    std::printf("wrote BENCH_fig5.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    printFig5();
    writeFig5Json();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
