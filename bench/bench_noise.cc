/**
 * @file
 * Monte-Carlo noise study (Sec. VIII-A, "Impact of ... Noise"):
 * classification agreement between the noisy analog pipeline and the
 * exact fixed-point reference, swept over read-noise sigma and
 * device-level variation, averaged over many inputs. Quantifies the
 * paper's claim that the conservative 1-bit-DAC / 2-bit-cell /
 * 128-row design tolerates a marginal increase in signal noise.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "core/accelerator.h"
#include "nn/zoo.h"

using namespace isaac;

namespace {

struct NoiseCase
{
    const char *label;
    double readSigma;
    double writeSigma;
    double stuckFrac;
};

constexpr NoiseCase kCases[] = {
    {"exact", 0.0, 0.0, 0.0},
    {"read 0.05 LSB", 0.05, 0.0, 0.0},
    {"read 0.10 LSB", 0.10, 0.0, 0.0},
    {"read 0.25 LSB", 0.25, 0.0, 0.0},
    {"read 0.50 LSB", 0.50, 0.0, 0.0},
    {"write 0.10 lvl", 0.0, 0.10, 0.0},
    {"write 0.25 lvl", 0.0, 0.25, 0.0},
    {"stuck 0.1%", 0.0, 0.0, 0.001},
    {"stuck 1.0%", 0.0, 0.0, 0.01},
    {"combined", 0.05, 0.10, 0.001},
};

void
printNoiseStudy()
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 4242);
    const FixedFormat fmt{12};
    const int trials = 40;

    // Exact top-1 labels per input.
    nn::ReferenceExecutor ref(net, weights, fmt);
    std::vector<int> truth;
    std::vector<nn::Tensor> inputs;
    for (int t = 0; t < trials; ++t) {
        inputs.push_back(
            nn::synthesizeInput(16, 12, 12, 9000 + t, fmt));
        const auto out = ref.run(inputs.back());
        int arg = 0;
        for (int k = 1; k < out.channels(); ++k)
            if (out.at(k, 0, 0) > out.at(arg, 0, 0))
                arg = k;
        truth.push_back(arg);
    }

    std::printf("=== Monte-Carlo noise tolerance (TinyCNN, %d "
                "inputs) ===\n\n",
                trials);
    std::printf("%-16s %12s %12s %14s\n", "case", "top-1 match",
                "adc clips", "faulty cells");
    for (const auto &c : kCases) {
        arch::IsaacConfig cfg;
        cfg.engine.noise.sigmaLsb = c.readSigma;
        cfg.engine.noise.writeSigmaLevels = c.writeSigma;
        cfg.engine.noise.stuckAtFraction = c.stuckFrac;
        cfg.engine.noise.seed = 555;
        core::Accelerator acc(cfg);
        core::CompileOptions opts;
        opts.format = fmt;
        const auto model = acc.compile(net, weights, opts);

        int match = 0;
        for (int t = 0; t < trials; ++t) {
            const auto out = model.infer(inputs[
                static_cast<std::size_t>(t)]);
            int arg = 0;
            for (int k = 1; k < out.channels(); ++k)
                if (out.at(k, 0, 0) > out.at(arg, 0, 0))
                    arg = k;
            match += arg == truth[static_cast<std::size_t>(t)];
        }
        // ADC saturation and the programming-time fault census put
        // numbers on *why* a case degrades: clips hit the high-order
        // slices, faulty cells shift whole columns.
        const auto summary = model.resilienceSummary();
        std::printf("%-16s %9d/%d %12llu %14lld\n", c.label, match,
                    trials,
                    static_cast<unsigned long long>(
                        summary.adcClips),
                    static_cast<long long>(
                        summary.faults.faultyCells));
    }
    std::printf("\nRead noise under ~0.1 LSB and sub-percent fault "
                "rates leave the classification intact; larger read "
                "noise hits the high-order weight slices and "
                "degrades fast -- the cliff that pins the paper at "
                "2-bit cells and 128 rows.\n\n");
}

void
BM_NoisyInference(benchmark::State &state)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 1);
    arch::IsaacConfig cfg;
    cfg.engine.noise.sigmaLsb = 0.1;
    core::Accelerator acc(cfg);
    core::CompileOptions opts;
    const auto model = acc.compile(net, weights, opts);
    const auto input = nn::synthesizeInput(16, 12, 12, 2, {12});
    for (auto _ : state)
        benchmark::DoNotOptimize(model.infer(input));
}
BENCHMARK(BM_NoisyInference);

} // namespace

int
main(int argc, char **argv)
{
    printNoiseStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
