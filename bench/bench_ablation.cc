/**
 * @file
 * Regenerates the Section VIII-A sensitivity studies:
 *
 *  - the flipped-column encoding scheme (vs. a 9-bit ADC, and vs.
 *    half-height arrays at 8 bits);
 *  - DAC resolution (1-bit vs 2-bit);
 *  - cell density (2-bit vs 4-bit cells, with the array height R
 *    pinned by the 8-bit ADC via Eqs. (1)/(2));
 *  - 32-bit fixed-point arithmetic;
 *  - a 200 ns crossbar read.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "energy/catalog.h"
#include "paper_reference.h"

using namespace isaac;

namespace {

/** Array rows allowed by an 8-bit encoded ADC at (v, w). */
int
rowsForEightBitAdc(int v, int w)
{
    // Invert Eqs. (1)/(2) plus the encoding bit.
    return (v > 1 && w > 1) ? 1 << (9 - v - w) : 1 << (10 - v - w);
}

energy::IsaacEnergyModel
model(arch::IsaacConfig cfg)
{
    return energy::IsaacEnergyModel(cfg);
}

void
printAblation()
{
    const auto base = arch::IsaacConfig::isaacCE();
    const auto m0 = model(base);
    std::printf("=== Section VIII-A sensitivity studies ===\n\n");
    std::printf("Baseline ISAAC-CE: CE %.1f GOPS/mm^2, PE %.1f "
                "GOPS/W, ADC %d bits\n\n",
                m0.ceGopsPerMm2(), m0.peGopsPerW(),
                base.engine.adcBits());

    // 1. Encoding scheme.
    auto noEnc = base;
    noEnc.engine.flipEncoding = false; // forces the 9-bit ADC
    const auto m1 = model(noEnc);
    auto halfRows = base;
    halfRows.engine.rows = 64;
    halfRows.engine.cols = 128;
    const auto m1b = model(halfRows);
    std::printf("[encoding] without the flip encoding:\n");
    std::printf("  9-bit ADC option:  CE %.1f (x%.2f), PE %.1f "
                "(x%.2f)\n",
                m1.ceGopsPerMm2(),
                m0.ceGopsPerMm2() / m1.ceGopsPerMm2(),
                m1.peGopsPerW(),
                m0.peGopsPerW() / m1.peGopsPerW());
    std::printf("  64-row option:     CE %.1f (x%.2f), PE %.1f "
                "(x%.2f)\n",
                m1b.ceGopsPerMm2(),
                m0.ceGopsPerMm2() / m1b.ceGopsPerMm2(),
                m1b.peGopsPerW(),
                m0.peGopsPerW() / m1b.peGopsPerW());
    std::printf("  paper: encoding buys +50%% CE and +87%% PE\n\n");

    // 2. DAC resolution.
    auto dac2 = base;
    dac2.engine.dacBits = 2;
    dac2.engine.inputMode = xbar::InputMode::Biased;
    dac2.engine.rows = rowsForEightBitAdc(2, 2);
    dac2.engine.cols = 128;
    const auto m2 = model(dac2);
    // The paper's claim isolates the DAC circuits themselves
    // ("without impacting overall throughput"): swap only the DAC
    // contribution at the baseline geometry.
    const energy::DacModel dacModel;
    const double nDacs = 168.0 * 12 * 8 * 128;
    const double areaDelta =
        nDacs * (dacModel.areaMm2(2) - dacModel.areaMm2(1));
    const double powerDeltaW =
        nDacs * (dacModel.powerMw(2) - dacModel.powerMw(1)) / 1e3;
    std::printf("[DAC] 2-bit DACs (DAC circuits swapped at the "
                "baseline geometry):\n");
    std::printf("  chip area  %.1f mm^2 (x%.2f; paper x%.2f)\n",
                m0.chipAreaMm2() + areaDelta,
                (m0.chipAreaMm2() + areaDelta) / m0.chipAreaMm2(),
                paper::kDac2AreaIncrease);
    std::printf("  chip power %.1f W (x%.2f; paper x%.2f)\n",
                m0.chipPowerW() + powerDeltaW,
                (m0.chipPowerW() + powerDeltaW) / m0.chipPowerW(),
                paper::kDac2PowerIncrease);
    std::printf("  with the 8-bit ADC bound the 2-bit DAC also "
                "shrinks R to %d rows: CE %.1f, PE %.1f\n\n",
                dac2.engine.rows, m2.ceGopsPerMm2(),
                m2.peGopsPerW());

    // 3. 4-bit cells.
    auto cell4 = base;
    cell4.engine.cellBits = 4;
    cell4.engine.rows = rowsForEightBitAdc(1, 4);
    cell4.engine.cols = 128;
    const auto m3 = model(cell4);
    std::printf("[cells] 4-bit cells (R pinned to %d rows by the "
                "8-bit ADC):\n",
                cell4.engine.rows);
    std::printf("  CE %.1f (x%.2f of baseline; paper x%.2f)\n",
                m3.ceGopsPerMm2(),
                m3.ceGopsPerMm2() / m0.ceGopsPerMm2(),
                paper::kCell4CeLoss);
    std::printf("  PE %.1f (x%.2f of baseline; paper x%.2f)\n\n",
                m3.peGopsPerW(),
                m3.peGopsPerW() / m0.peGopsPerW(),
                paper::kCell4PeLoss);

    // 4. 32-bit arithmetic (derivation: latency doubles -- 32 input
    // bits -- and storage doubles -- 16 cells per weight -- so at a
    // fixed crossbar budget throughput falls 4x).
    std::printf("[32-bit] 32 input bits x 2x storage per weight: "
                "throughput x%.2f (paper x%.2f)\n\n",
                0.5 * 0.5, paper::kBit32ThroughputLoss);

    // 5. 200 ns crossbar read.
    auto slow = base;
    slow.cycleNs = 200.0;
    slow.adcGsps = 0.64; // the ADC only needs half the rate
    const auto m5 = model(slow);
    std::printf("[200ns] slower crossbar: throughput x%.2f, CE %.1f "
                "(x%.2f; paper x%.2f -- the paper also simplifies "
                "the peripheral structures, which our model keeps "
                "fixed)\n\n",
                slow.peakGops() / base.peakGops(), m5.ceGopsPerMm2(),
                m5.ceGopsPerMm2() / m0.ceGopsPerMm2(),
                paper::kSlow200nsCeLoss);
}

void
BM_AblationModels(benchmark::State &state)
{
    for (auto _ : state) {
        auto cfg = arch::IsaacConfig::isaacCE();
        cfg.engine.flipEncoding = false;
        benchmark::DoNotOptimize(
            energy::IsaacEnergyModel(cfg).ceGopsPerMm2());
    }
}
BENCHMARK(BM_AblationModels);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
