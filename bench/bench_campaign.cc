/**
 * @file
 * The Monte Carlo fault-injection campaign lab: sweeps the default
 * scenario suite (write noise x read noise x stuck cells x spares x
 * ADC bits, plus a focused drift grid) on TinyCNN, scores every
 * scenario against the fixed-point reference, and emits
 * BENCH_campaign.json with the full per-scenario table, the
 * accuracy/energy/throughput Pareto frontier, and the
 * agreement-vs-stuck-rate curves at each spare-column budget.
 *
 * The batch size is host-aware: a clean-scenario calibration run
 * sizes the shared input batch so the whole suite fits a sane
 * runtime budget on slow hosts, clamped to [2, 6]. Override with
 * ISAAC_CAMPAIGN_BATCH=<n>.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "campaign/campaign.h"
#include "campaign/runner.h"
#include "core/json_writer.h"

using namespace isaac;

namespace {

constexpr std::uint64_t kMasterSeed = 0xCA3BA16ull;

/**
 * Size the batch for this host: time one clean scenario at batch 2
 * and scale so the suite lands near the budget. Deterministic output
 * either way — batch only changes how many inputs each scenario
 * scores, never how any one scenario draws its faults.
 */
int
chooseBatch(int scenarioCount)
{
    if (const char *env = std::getenv("ISAAC_CAMPAIGN_BATCH")) {
        const int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
    campaign::RunnerOptions probeOpts;
    probeOpts.batch = 2;
    probeOpts.threads = 1;
    const campaign::Runner probe("tinycnn", kMasterSeed, probeOpts);
    campaign::Scenario clean;
    clean.masterSeed = kMasterSeed;
    const auto t0 = std::chrono::steady_clock::now();
    (void)probe.runScenario(clean);
    const double secsPerImage =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        2.0;
    // Noisy scenarios take the scalar path (~25x a clean image);
    // budget ~120 s for the sweep assuming roughly half are noisy.
    constexpr double kBudgetSecs = 120.0;
    const double perScenario =
        kBudgetSecs / static_cast<double>(scenarioCount);
    const int batch = static_cast<int>(
        perScenario / (secsPerImage * 12.0));
    return std::min(6, std::max(2, batch));
}

void
writeJson(const campaign::Report &report)
{
    std::FILE *f = std::fopen("BENCH_campaign.json", "w");
    if (!f) {
        std::fprintf(stderr, "bench_campaign: cannot write "
                             "BENCH_campaign.json\n");
        return;
    }
    core::JsonObject root;
    root.field("bench", "campaign");
    root.raw("campaign", report.toJson());
    const std::string text = root.str();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

void
printStudy(const campaign::Report &report)
{
    std::printf("=== Monte Carlo fault-injection campaign "
                "(%s, %d scenarios, batch %d) ===\n\n",
                report.network.c_str(), report.gridPoints,
                report.batch);
    std::printf("zero-noise self-check: %d scenario(s), "
                "min agreement %.4f, max rel err %g\n",
                report.cleanScenarioCount(),
                report.cleanAgreementMin(), report.cleanMaxRel());
    std::printf("pareto frontier: %zu scenario(s)\n",
                report.paretoFrontier.size());
    std::printf("determinism fingerprint: %016llx\n\n",
                static_cast<unsigned long long>(
                    report.contentHash()));

    std::printf("%-10s %-8s %-7s %10s %10s %12s\n", "stuck", "mode",
                "spares", "agreement", "max rel",
                "energy/img (J)");
    for (const auto &r : report.scenarios) {
        const auto &s = r.scenario;
        // Print the stuck-cell axis rows (the headline curves);
        // the JSON carries every scenario.
        if (s.writeSigma != 0.0 || s.readSigma != 0.0 ||
            s.driftPerOp != 0.0 || s.adcBits != 0 || s.trial != 0)
            continue;
        std::printf("%-10g %-8s %-7d %10.4f %10.3g %12.3e\n",
                    s.stuckRate,
                    campaign::toToken(s.stuckMode).c_str(),
                    s.spareCols, r.agreement, r.maxRel,
                    r.energyPerImageJ);
    }
    std::printf(
        "\nStuck cells are the dominant axis: past a ~0.2%% rate "
        "the handful of uncorrectable cells that land on "
        "high-order digit columns swamp the outputs, and a small "
        "spare budget only remaps the worst few columns (the same "
        "cliff bench_resilience measures). Gaussian write/read "
        "noise, by contrast, mostly cancels across the bit-serial "
        "reduction. Reduced ADC resolution trades energy for "
        "clipping-driven divergence -- the frontier records which "
        "mixes are efficient.\n\n");
}

void
BM_ScenarioEvaluate(benchmark::State &state)
{
    campaign::RunnerOptions opts;
    opts.batch = 2;
    opts.threads = 1;
    const campaign::Runner runner("tinycnn", kMasterSeed, opts);
    campaign::Scenario s;
    s.masterSeed = kMasterSeed;
    s.stuckRate = 0.005;
    s.spareCols = 2;
    for (auto _ : state) {
        const auto res = runner.runScenario(s);
        benchmark::DoNotOptimize(res.agreement);
    }
}
BENCHMARK(BM_ScenarioEvaluate);

void
runCampaignStudy()
{
    const auto suite = campaign::Grid::defaultSuite();
    int scenarioCount = 0;
    for (const auto &grid : suite) {
        scenarioCount += static_cast<int>(
            grid.enumerate(kMasterSeed).size());
    }
    campaign::RunnerOptions opts;
    opts.batch = chooseBatch(scenarioCount);
    const campaign::Runner runner("tinycnn", kMasterSeed, opts);
    const auto report = runner.run(suite);
    printStudy(report);
    writeJson(report);
}

} // namespace

int
main(int argc, char **argv)
{
    runCampaignStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
