/**
 * @file
 * Regenerates Table I: the ISAAC tile/IMA power & area breakdown and
 * the DaDianNao chip breakdown, with measured-vs-paper totals.
 *
 * Also registers google-benchmark timings for the energy-model
 * evaluation itself.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "core/report.h"
#include "energy/dadiannao_catalog.h"
#include "paper_reference.h"

using namespace isaac;

namespace {

void
printTable1()
{
    const arch::IsaacConfig cfg = arch::IsaacConfig::isaacCE();
    const energy::IsaacEnergyModel model(cfg);

    std::printf("=== Table I: ISAAC parameters (%s) ===\n\n",
                cfg.label().c_str());
    std::printf("%s\n",
                core::formatBreakdown(model.tileBreakdown(),
                                      "ISAAC tile at 1.2 GHz")
                    .c_str());
    std::printf("%s\n",
                core::formatBreakdown(model.imaBreakdown(),
                                      "One IMA (12 per tile)")
                    .c_str());

    std::printf("Tile totals:   measured %7.1f mW / %7.4f mm^2   "
                "paper %7.1f mW / %7.4f mm^2\n",
                model.tilePowerMw(), model.tileAreaMm2(),
                paper::kTilePowerMw, paper::kTileAreaMm2);
    std::printf("Chip totals:   measured %7.1f W  / %7.1f mm^2   "
                "paper %7.1f W  / %7.1f mm^2\n",
                model.chipPowerW(), model.chipAreaMm2(),
                paper::kChipPowerW, paper::kChipAreaMm2);

    double adcPower = 0, adcArea = 0;
    for (const auto &c : model.imaBreakdown().items) {
        if (c.name == "ADC") {
            adcPower = c.powerMw;
            adcArea = c.areaMm2;
        }
    }
    std::printf("ADC share:     measured %4.1f%% power / %4.1f%% "
                "area   paper %4.1f%% / %4.1f%%\n\n",
                100.0 * 12 * adcPower / model.tilePowerMw(),
                100.0 * 12 * adcArea / model.tileAreaMm2(),
                100.0 * paper::kAdcTilePowerShare,
                100.0 * paper::kAdcTileAreaShare);

    const energy::DaDianNaoModel ddn;
    std::printf("%s\n",
                core::formatBreakdown(
                    ddn.chipBreakdown(),
                    "DaDianNao at 606 MHz scaled to 32 nm")
                    .c_str());
}

void
BM_TileBreakdown(benchmark::State &state)
{
    const energy::IsaacEnergyModel model(
        arch::IsaacConfig::isaacCE());
    for (auto _ : state)
        benchmark::DoNotOptimize(model.tileBreakdown());
}
BENCHMARK(BM_TileBreakdown);

void
BM_ChipPower(benchmark::State &state)
{
    const energy::IsaacEnergyModel model(
        arch::IsaacConfig::isaacCE());
    for (auto _ : state)
        benchmark::DoNotOptimize(model.chipPowerW());
}
BENCHMARK(BM_ChipPower);

} // namespace

int
main(int argc, char **argv)
{
    printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
