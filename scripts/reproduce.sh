#!/usr/bin/env bash
# Reproduce every exhibit: configure, build, run the test suite, run
# all benches and examples, and collect the outputs the repository's
# EXPERIMENTS.md refers to.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
    for b in build/bench/*; do
        if [ -x "$b" ] && [ -f "$b" ]; then
            echo "######## $(basename "$b")"
            "$b" --benchmark_min_time=0.01
        fi
    done
} 2>&1 | tee bench_output.txt

echo "== examples =="
for e in quickstart design_explorer noise_resilience train_insitu \
         vgg_pipeline; do
    echo "-------- $e"
    "build/examples/$e" >/dev/null && echo "OK"
done
build/examples/isaac_cli --network vgg1 --chips 16 --baseline --noc
build/examples/isaac_cli --file examples/networks/lenet.net --chips 1

echo "All exhibits regenerated: see test_output.txt, bench_output.txt"
