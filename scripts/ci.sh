#!/usr/bin/env bash
# CI gate: build + full test suite, then rebuild the concurrency-
# sensitive subsystems under ThreadSanitizer and rerun their suites,
# then under AddressSanitizer for the pointer-heavy fault-handling
# paths, then under UBSan for the transient-error layer's checksum /
# backoff / ECC bit arithmetic. TSan proves the BitSerialEngine
# thread-safety contract (docs/threading.md) rather than trusting
# code review; ASan guards the resilience layer's column remapping
# and fault-map indexing; UBSan guards the shift/modulo-heavy
# detect-and-retry machinery.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== normal build + full suite =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== ThreadSanitizer build =="
cmake -B build-tsan -S . -DISAAC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j \
    --target test_common test_xbar test_sim test_resilience \
    >/dev/null

echo "== TSan: thread pool / engine / sim / resilience suites =="
# TSAN_OPTIONS makes any reported race fail the run loudly.
export TSAN_OPTIONS="halt_on_error=1 abort_on_error=1"
./build-tsan/tests/test_common
./build-tsan/tests/test_xbar
./build-tsan/tests/test_sim
./build-tsan/tests/test_resilience

echo "== AddressSanitizer build =="
cmake -B build-asan -S . -DISAAC_SANITIZE=address >/dev/null
cmake --build build-asan -j \
    --target test_common test_xbar test_sim test_resilience \
    >/dev/null

echo "== ASan: thread pool / engine / sim / resilience suites =="
export ASAN_OPTIONS="halt_on_error=1 abort_on_error=1"
./build-asan/tests/test_common
./build-asan/tests/test_xbar
./build-asan/tests/test_sim
./build-asan/tests/test_resilience

echo "== ASan: transient-error campaigns (ABFT / ECC / NoC retry) =="
./build-asan/tests/test_xbar \
    --gtest_filter='Abft.*:Drift.*:Concurrency.Transient*'
./build-asan/tests/test_noc --gtest_filter='Crc.*:Packet.*:Ecc.*'
./build-asan/tests/test_core --gtest_filter='TransientE2e.*'

echo "== UndefinedBehaviorSanitizer build =="
cmake -B build-ubsan -S . -DISAAC_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j \
    --target test_xbar test_noc test_resilience test_sim test_core \
    >/dev/null

echo "== UBSan: transient-error campaigns + host suites =="
export UBSAN_OPTIONS="halt_on_error=1 abort_on_error=1 \
print_stacktrace=1"
./build-ubsan/tests/test_xbar
./build-ubsan/tests/test_noc
./build-ubsan/tests/test_resilience
./build-ubsan/tests/test_sim
./build-ubsan/tests/test_core --gtest_filter='TransientE2e.*'

echo "ci.sh: all green"
