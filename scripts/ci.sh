#!/usr/bin/env bash
# CI gate: build + full test suite, then rebuild the concurrency-
# sensitive subsystems under ThreadSanitizer and rerun their suites,
# then under AddressSanitizer for the pointer-heavy fault-handling
# paths, then under UBSan for the transient-error layer's checksum /
# backoff / ECC bit arithmetic. TSan proves the BitSerialEngine
# thread-safety contract (docs/threading.md) rather than trusting
# code review; ASan guards the resilience layer's column remapping
# and fault-map indexing; UBSan guards the shift/modulo-heavy
# detect-and-retry machinery.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== normal build + full suite =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== static layout audit: false-sharing padding =="
# tests/common/test_layout.cc is a wall of static_asserts on the
# cache-line geometry of the hot shared structures (EpochLog slots,
# StealDeque words, engine tiles/scratch/memo, session decks): it can
# only pass by compiling, so the build above already enforced it.
# Run the registered test anyway so the audit shows up green in CI
# output rather than passing silently.
./build/tests/test_common --gtest_filter='Layout.*'

echo "== perf-regression gate: packed fast path vs scalar =="
# bench_crossbar writes BENCH_crossbar.json (scalar and fast-path
# columns per thread count plus the gated clean-128 record) before
# running any google-benchmark cases; a filter matching nothing keeps
# this step fast. The packed bit-plane path must hold at least a 5x
# advantage over the scalar row loop on a clean 128x128 array — a
# drop below that means the fast path silently stopped engaging
# (dispatch regression) or its kernel degraded.
(cd build && ./bench/bench_crossbar \
    --benchmark_filter='^$' >/dev/null)
python3 - <<'EOF'
import json
with open("build/BENCH_crossbar.json") as f:
    bench = json.load(f)
gate = bench["clean_128"]
print("clean_128: scalar %.0f ns, fast %.0f ns, memo %.0f ns, "
      "batched %.0f ns/window [%s] "
      "(fast %.2fx, memo %.2fx, batched-vs-fast %.2fx)" %
      (gate["scalar_ns"], gate["fast_ns"], gate["memo_ns"],
       gate["batched_ns"], gate["kernel_tier"],
       gate["fast_speedup"], gate["memo_speedup"],
       gate["batched_speedup"]))
if gate["fast_speedup"] < 5.0:
    raise SystemExit(
        "perf gate FAILED: clean-128 fast path is only %.2fx over "
        "scalar (gate: 5x)" % gate["fast_speedup"])
# Host-aware batched-GEMM gate: with a SIMD dispatch tier compiled
# and detected, the plane-major batch must beat the per-window fast
# path >= 2x on 64 distinct windows; a host stuck on the scalar tier
# (no POPCNT/AVX2 compiled or detected) only has the hoisted packing
# to win with, so the gate degrades to no-regression there.
need = 2.0 if gate["kernel_tier"] != "scalar" else 1.0
if gate["batched_speedup"] < need:
    raise SystemExit(
        "perf gate FAILED: clean-128 batched GEMM is only %.2fx over "
        "the per-window fast path on kernel tier '%s' (gate: %.1fx)"
        % (gate["batched_speedup"], gate["kernel_tier"], need))
EOF

echo "== serving perf gate: pipelined session vs sequential batch =="
# bench_serving writes BENCH_serving.json (throughput + p50/p99 over
# queue depth x workers) before its google-benchmark cases; the gate
# is host-aware because the request pipeline only overlaps work — it
# adds none — so a single-hardware-thread host can at best tie the
# sequential walk (expected_speedup 0.9x no-regression there, 1.5x
# wherever >= 2 host threads exist).
(cd build && ./bench/bench_serving \
    --benchmark_filter='^$' >/dev/null)
python3 - <<'EOF'
import json
with open("build/BENCH_serving.json") as f:
    bench = json.load(f)
gate = bench["gate"]
print("serving: depth-%d pipelined %.1f img/s vs sequential %.1f "
      "img/s (%.2fx, expected >= %.2fx on %d host threads)" %
      (gate["queue_depth"], gate["pipelined_throughput"],
       bench["sequential_throughput"], gate["speedup"],
       gate["expected_speedup"], bench["host_threads"]))
if gate["speedup"] < gate["expected_speedup"]:
    raise SystemExit(
        "perf gate FAILED: depth-%d session pipeline is %.2fx over "
        "sequential inferBatch (gate: %.2fx)" %
        (gate["queue_depth"], gate["speedup"],
         gate["expected_speedup"]))
# Host-aware worker-scaling gate: the work-stealing scheduler must
# turn added workers into throughput. On a host with >= 8 hardware
# threads the 8-worker depth-16 point has to reach 6x the sequential
# walk; a smaller host cannot run 8 workers concurrently, so the gate
# degrades to the same no-regression floor as the pipeline gate.
# That disarmed floor proves nothing about scaling, so say so loudly
# instead of letting the green line imply an 8-worker win.
scaling = bench["scaling_gate"]
if bench["host_threads"] < 8:
    print("*" * 66)
    print("* NOTICE: only %d hardware threads — the 6x worker-"
          "scaling gate" % bench["host_threads"])
    print("* is DISARMED (no-regression floor only). Scaling is NOT "
          "being")
    print("* verified here; any committed reference record for "
          "bench_serving")
    print("* must come from a >= 8-core host (see bench/"
          "bench_serving.cc).")
    print("*" * 66)
print("scaling: depth-%d workers-%d %.1f img/s (%.2fx sequential, "
      "expected >= %.2fx on %d host threads)" %
      (scaling["queue_depth"], scaling["workers"],
       scaling["throughput"], scaling["speedup_vs_sequential"],
       scaling["expected_speedup"], bench["host_threads"]))
if scaling["speedup_vs_sequential"] < scaling["expected_speedup"]:
    raise SystemExit(
        "perf gate FAILED: %d-worker depth-%d session is %.2fx over "
        "sequential inferBatch (scaling gate: %.2fx on %d host "
        "threads)" %
        (scaling["workers"], scaling["queue_depth"],
         scaling["speedup_vs_sequential"],
         scaling["expected_speedup"], bench["host_threads"]))
for a, b in zip(bench["scaling"], bench["scaling"][1:]):
    if a["workers"] >= b["workers"]:
        raise SystemExit(
            "perf gate FAILED: scaling column is not swept in "
            "increasing worker order")
EOF

echo "== campaign gate: Monte Carlo fault-injection lab =="
# bench_campaign sweeps the default scenario suite (>= 500 grid
# points over write/read noise x stuck cells x spares x ADC bits,
# plus a focused drift grid) and writes BENCH_campaign.json before
# its google-benchmark cases. The gate pins the two invariants the
# lab stands on: the suite really is >= 500 scenarios, and the
# zero-noise scenarios agree with the fixed-point reference exactly
# (min agreement 1.0, zero relative error). Batch 2 bounds the
# sweep's runtime on slow hosts; the report content is deterministic
# at any batch, only the number of scored images changes.
(cd build && ISAAC_CAMPAIGN_BATCH=2 ./bench/bench_campaign \
    --benchmark_filter='^$' >/dev/null)
python3 - <<'EOF'
import json
with open("build/BENCH_campaign.json") as f:
    bench = json.load(f)
camp = bench["campaign"]
zero = camp["zero_noise"]
print("campaign: %d scenarios, zero-noise min agreement %.4f "
      "(max rel err %g), pareto frontier %d" %
      (camp["scenario_count"], zero["min_agreement"],
       zero["max_rel_err"], len(camp["pareto_frontier"])))
if camp["scenario_count"] < 500:
    raise SystemExit(
        "campaign gate FAILED: only %d scenarios (gate: >= 500)"
        % camp["scenario_count"])
if zero["min_agreement"] != 1.0 or zero["max_rel_err"] != 0:
    raise SystemExit(
        "campaign gate FAILED: zero-noise scenarios diverge from "
        "the fixed-point reference (min agreement %s, max rel err "
        "%s)" % (zero["min_agreement"], zero["max_rel_err"]))
EOF

echo "== DSE gate: adaptive-ADC frontier vs the paper design points =="
# bench_dse sweeps the Fig. 5 grid crossed with the ADC-policy and
# heterogeneous-IMA axes and writes BENCH_dse.json before its
# google-benchmark cases. The gate pins the two claims the policy
# surface stands on: at least one adaptive-policy frontier point
# strictly beats the fixed 8-bit ISAAC-CE replay on GOPS/W, and the
# lossless adaptive policy's functional run (TinyCNN, clean campaign
# scenario) shows a zero accuracy delta against the fixed-point
# reference. The sweep is deterministic, so the frontier is
# byte-identical at any thread count (tests/dse pins that too).
(cd build && ./bench/bench_dse --benchmark_filter='^$' >/dev/null)
python3 - <<'EOF'
import json
with open("build/BENCH_dse.json") as f:
    bench = json.load(f)
gate = bench["gate"]
print("dse: pareto frontier %d points; best adaptive %s at %.2f "
      "GOPS/W vs fixed ISAAC-CE %.2f; lossless max rel %g" %
      (len(bench["pareto_front"]), gate["best_adaptive_label"],
       gate["best_adaptive_pe_gops_w"], gate["fixed_ce_pe_gops_w"],
       gate["lossless_max_rel"]))
if not gate["pe_dominance"]:
    raise SystemExit(
        "dse gate FAILED: no adaptive frontier point beats the "
        "fixed 8-bit ISAAC-CE replay on GOPS/W (best adaptive "
        "%.2f vs %.2f)" % (gate["best_adaptive_pe_gops_w"],
                           gate["fixed_ce_pe_gops_w"]))
if not gate["lossless_exact"]:
    raise SystemExit(
        "dse gate FAILED: the lossless adaptive policy diverged "
        "from the fixed-point reference (max rel %s, agreement %s "
        "-- 'lossless' must mean bit-exact)" %
        (gate["lossless_max_rel"], gate["lossless_agreement"]))
EOF

echo "== self-heal gate: scripted faults repaired under live serving =="
# bench_selfheal soaks the streaming session through both scripted
# fault timelines (stuck-cell burst -> spare remap; tile kill ->
# degrade + plan migration) at 1/2/4 workers and writes
# BENCH_selfheal.json. The gate pins the three invariants the
# self-healing layer stands on: every scripted fault is detected and
# resolved while serving continues, every completed request is
# bit-exact against a fault-free twin (zero silently-wrong results),
# and the canonical recovery log is byte-identical across worker
# counts for the fixed seed.
(cd build && ./bench/bench_selfheal \
    --benchmark_filter='^$' >/dev/null)
python3 - <<'EOF'
import json
with open("build/BENCH_selfheal.json") as f:
    bench = json.load(f)
gate = bench["gate"]
resolved = bench["canonical"]["resolved"]
print("selfheal: %d faults resolved, recovery_complete=%s, "
      "incorrect_results=%d, canonical_invariant=%s" %
      (resolved, gate["recovery_complete"],
       gate["incorrect_results"], gate["canonical_invariant"]))
if not gate["recovery_complete"]:
    raise SystemExit(
        "selfheal gate FAILED: a scripted fault was not detected "
        "and repaired (or a request failed its heal retries)")
if gate["incorrect_results"] != 0:
    raise SystemExit(
        "selfheal gate FAILED: %d completed requests diverged from "
        "the fault-free twin (must be zero — silently-wrong results)"
        % gate["incorrect_results"])
if not gate["canonical_invariant"]:
    raise SystemExit(
        "selfheal gate FAILED: the canonical recovery log differs "
        "across worker counts (nondeterministic repair)")
if resolved != 2:
    raise SystemExit(
        "selfheal gate FAILED: expected both timeline events "
        "resolved, got %d" % resolved)
EOF

echo "== ThreadSanitizer build =="
cmake -B build-tsan -S . -DISAAC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j \
    --target test_common test_xbar test_sim test_resilience \
    test_plan test_serve test_selfheal \
    >/dev/null

echo "== TSan: thread pool / engine / sim / resilience suites =="
# TSAN_OPTIONS makes any reported race fail the run loudly.
export TSAN_OPTIONS="halt_on_error=1 abort_on_error=1"
./build-tsan/tests/test_common
./build-tsan/tests/test_xbar
./build-tsan/tests/test_sim
./build-tsan/tests/test_resilience

echo "== TSan: execution-plan IR + streaming session suites =="
# The session pipelines requests across pool workers while merging
# stats; TSan proves the scheduler's locking discipline instead of
# trusting the parity tests alone. (The VGG-1 walk is filtered: it
# is a single-threaded equivalence check and dominates runtime.)
./build-tsan/tests/test_plan --gtest_filter='-*Vgg1*'
./build-tsan/tests/test_serve

echo "== TSan: self-healing watchdog suite (repair lock discipline) =="
# The watchdog's exclusive repair quarantine races live layer-steps
# on the shared side of the repair lock, and the shutdown test
# races session teardown against an in-flight repair at 1/2/4/8
# workers; TSan proves the _repairMtx -> _mtx lock discipline.
./build-tsan/tests/test_selfheal

echo "== TSan: fast-path equivalence suite (memo under threads) =="
# The packed-path golden sweep runs engines at 1/2/4/8 threads with
# the digit-vector memo racing to populate, and the batched sweep
# fans window blocks across workers; TSan proves the lazy plane
# rebuild, the per-tile memo locking, and the batch partitioning
# hold the threading contract.
./build-tsan/tests/test_xbar --gtest_filter='FastPath.*:Batched.*'

echo "== AddressSanitizer build =="
cmake -B build-asan -S . -DISAAC_SANITIZE=address >/dev/null
cmake --build build-asan -j \
    --target test_common test_xbar test_sim test_resilience \
    test_plan test_serve test_selfheal test_campaign test_dse \
    test_energy \
    >/dev/null

echo "== ASan: thread pool / engine / sim / resilience suites =="
export ASAN_OPTIONS="halt_on_error=1 abort_on_error=1"
./build-asan/tests/test_common
./build-asan/tests/test_xbar
./build-asan/tests/test_sim
./build-asan/tests/test_resilience

echo "== ASan: execution-plan IR + streaming session suites =="
# Requests hand tensors between threads through the ready queue and
# promises; ASan guards the request lifetime across that hand-off.
./build-asan/tests/test_plan --gtest_filter='-*Vgg1*'
./build-asan/tests/test_serve

echo "== ASan: self-healing watchdog suite (request lifetimes) =="
# Heal retries re-queue requests through park/release hand-offs and
# the degrade path rebuilds engines under live traffic; ASan guards
# the request and engine lifetimes across both.
./build-asan/tests/test_selfheal

echo "== ASan: Monte Carlo smoke campaign (determinism + gate) =="
# The smoke-grid campaign (3 write-noise levels x 3 stuck rates on
# TinyCNN) runs at 1/2/4/8 workers and in a scrambled order inside
# this suite; the byte-identical-report assertion and the zero-noise
# exactness gate both execute under ASan, guarding the scenario
# fan-out's request/result lifetimes.
./build-asan/tests/test_campaign

echo "== ASan: DSE sweep + energy-pricing suites (policy surface) =="
# The DSE sweep fans candidate evaluations across the pool into a
# shared results vector and the energy catalog composes per-policy
# prices; ASan guards the candidate-grid indexing and the byte-
# stable-frontier comparisons.
./build-asan/tests/test_dse
./build-asan/tests/test_energy

echo "== ASan: transient-error campaigns (ABFT / ECC / NoC retry) =="
./build-asan/tests/test_xbar \
    --gtest_filter='Abft.*:Drift.*:Concurrency.Transient*'

echo "== ASan: fast-path equivalence suite (plane/memo buffers) =="
./build-asan/tests/test_xbar --gtest_filter='FastPath.*:Batched.*'
./build-asan/tests/test_noc --gtest_filter='Crc.*:Packet.*:Ecc.*'
./build-asan/tests/test_core --gtest_filter='TransientE2e.*'

echo "== UndefinedBehaviorSanitizer build =="
cmake -B build-ubsan -S . -DISAAC_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j \
    --target test_xbar test_noc test_resilience test_sim test_core \
    test_serve test_selfheal test_campaign test_dse test_energy \
    >/dev/null

echo "== UBSan: transient-error campaigns + host suites =="
export UBSAN_OPTIONS="halt_on_error=1 abort_on_error=1 \
print_stacktrace=1"
./build-ubsan/tests/test_xbar
./build-ubsan/tests/test_noc
./build-ubsan/tests/test_resilience
./build-ubsan/tests/test_sim
./build-ubsan/tests/test_core --gtest_filter='TransientE2e.*'

echo "== UBSan: serving + self-heal + campaign suites =="
# The self-heal layer leans on shift/mask arithmetic (layer bitmasks,
# generation counters, rail-level encoding) and the campaign parser
# on from_chars range handling; UBSan guards both, plus the session
# scheduler's index arithmetic under heal retries.
./build-ubsan/tests/test_serve
./build-ubsan/tests/test_selfheal
./build-ubsan/tests/test_campaign

echo "== UBSan: DSE sweep + energy-pricing suites (policy surface) =="
# The adaptive resolution law is shift-and-clamp arithmetic
# (log2Ceil bounds, (1 << bits) - 1 ceilings, fractional-bit energy
# interpolation); UBSan guards the whole ladder from resolutionFor
# through the catalog's expected-depth pricing.
./build-ubsan/tests/test_dse
./build-ubsan/tests/test_energy

echo "ci.sh: all green"
