#!/usr/bin/env bash
# CI gate: build + full test suite, then rebuild the concurrency-
# sensitive subsystems under ThreadSanitizer and rerun their suites,
# then under AddressSanitizer for the pointer-heavy fault-handling
# paths. TSan proves the BitSerialEngine thread-safety contract
# (docs/threading.md) rather than trusting code review; ASan guards
# the resilience layer's column remapping and fault-map indexing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== normal build + full suite =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== ThreadSanitizer build =="
cmake -B build-tsan -S . -DISAAC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j \
    --target test_common test_xbar test_sim test_resilience \
    >/dev/null

echo "== TSan: thread pool / engine / sim / resilience suites =="
# TSAN_OPTIONS makes any reported race fail the run loudly.
export TSAN_OPTIONS="halt_on_error=1 abort_on_error=1"
./build-tsan/tests/test_common
./build-tsan/tests/test_xbar
./build-tsan/tests/test_sim
./build-tsan/tests/test_resilience

echo "== AddressSanitizer build =="
cmake -B build-asan -S . -DISAAC_SANITIZE=address >/dev/null
cmake --build build-asan -j \
    --target test_common test_xbar test_sim test_resilience \
    >/dev/null

echo "== ASan: thread pool / engine / sim / resilience suites =="
export ASAN_OPTIONS="halt_on_error=1 abort_on_error=1"
./build-asan/tests/test_common
./build-asan/tests/test_xbar
./build-asan/tests/test_sim
./build-asan/tests/test_resilience

echo "ci.sh: all green"
