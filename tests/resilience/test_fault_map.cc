/**
 * @file
 * FaultMap tests: recording semantics, march-test extraction against
 * the statistical fault model, and per-seed determinism.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "resilience/fault_map.h"

namespace isaac::resilience {
namespace {

TEST(FaultMap, RecordsAndQueriesCells)
{
    FaultMap map(8, 4);
    EXPECT_EQ(map.count(), 0);
    EXPECT_FALSE(map.faulty(3, 2));
    EXPECT_EQ(map.frozenLevel(3, 2), -1);

    map.add(3, 2, 1);
    map.add(0, 2, 3);
    map.add(7, 0, 0);
    EXPECT_EQ(map.count(), 3);
    EXPECT_TRUE(map.faulty(3, 2));
    EXPECT_EQ(map.frozenLevel(3, 2), 1);
    EXPECT_EQ(map.countInColumn(2), 2);
    EXPECT_EQ(map.countInColumn(1), 0);

    // Entries come back sorted row-major.
    const auto &entries = map.entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0], (FaultEntry{0, 2, 3}));
    EXPECT_EQ(entries[1], (FaultEntry{3, 2, 1}));
    EXPECT_EQ(entries[2], (FaultEntry{7, 0, 0}));

    // Re-recording a cell updates its frozen level, not the count.
    map.add(3, 2, 2);
    EXPECT_EQ(map.count(), 3);
    EXPECT_EQ(map.frozenLevel(3, 2), 2);
}

TEST(FaultMap, EqualityComparesContent)
{
    FaultMap a(4, 4), b(4, 4);
    EXPECT_EQ(a, b);
    a.add(1, 1, 2);
    EXPECT_NE(a, b);
    b.add(1, 1, 2);
    EXPECT_EQ(a, b);
    b.add(1, 1, 3); // same cell, different frozen level
    EXPECT_NE(a, b);
}

TEST(FaultMap, RejectsOutOfRangeCells)
{
    FaultMap map(4, 4);
    EXPECT_THROW(map.add(4, 0, 1), FatalError);
    EXPECT_THROW(map.add(0, -1, 1), FatalError);
    EXPECT_THROW(map.frozenLevel(0, 4), FatalError);
}

TEST(FaultMap, MarchTestFindsEveryStuckCell)
{
    // Every frozen level fails at least one of the two rails, so the
    // march census must equal the injected stuck-cell count exactly,
    // and each entry must report the true frozen level.
    xbar::CrossbarArray xb(64, 32, 2);
    xbar::NoiseSpec spec;
    spec.stuckAtFraction = 0.05;
    spec.seed = 21;
    xb.setNoise(spec);
    ASSERT_GT(xb.stuckCells(), 0);

    const auto map = extractFaultMap(xb);
    EXPECT_EQ(map.count(), xb.stuckCells());
    for (const auto &e : map.entries()) {
        // A stuck cell keeps its frozen level whatever we program.
        xb.program(e.row, e.col, 0);
        EXPECT_EQ(xb.cell(e.row, e.col), e.frozenLevel);
    }
}

TEST(FaultMap, MarchTestOnCleanArrayIsEmpty)
{
    xbar::CrossbarArray xb(32, 16, 2);
    const auto map = extractFaultMap(xb);
    EXPECT_EQ(map.count(), 0);
}

TEST(FaultMap, DeterministicPerSeedAndSalt)
{
    auto extract = [](std::uint64_t seed, std::uint64_t salt) {
        xbar::CrossbarArray xb(64, 16, 2);
        xbar::NoiseSpec spec;
        spec.stuckAtFraction = 0.03;
        spec.seed = seed;
        xb.setNoise(spec, salt);
        return extractFaultMap(xb);
    };
    // Same (seed, salt) reproduces the identical map; changing
    // either decorrelates the fault positions.
    EXPECT_EQ(extract(5, 0), extract(5, 0));
    EXPECT_EQ(extract(5, 3), extract(5, 3));
    EXPECT_NE(extract(5, 0), extract(6, 0));
    EXPECT_NE(extract(5, 0), extract(5, 1));
}

} // namespace
} // namespace isaac::resilience
