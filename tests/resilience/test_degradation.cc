/**
 * @file
 * Graceful-degradation tests: hard tile failures migrate work onto
 * survivors and the simulation completes with a reported slowdown;
 * the structured resilience summary carries the full census.
 */

#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/accelerator.h"
#include "nn/zoo.h"
#include "pipeline/perf.h"
#include "resilience/summary.h"
#include "sim/chip_sim.h"

namespace isaac {
namespace {

arch::IsaacConfig
smallConfig()
{
    auto cfg = arch::IsaacConfig::isaacCE();
    cfg.tilesPerChip = 2;
    return cfg;
}

struct Setup
{
    nn::Network net;
    pipeline::PipelinePlan plan;
    pipeline::Placement placement;
};

Setup
makeSetup(const arch::IsaacConfig &cfg)
{
    auto net = nn::tinyCnn();
    auto plan = pipeline::planPipeline(net, cfg, 1);
    auto placement = pipeline::Placement::build(net, plan, cfg);
    return Setup{std::move(net), std::move(plan),
                 std::move(placement)};
}

/** Every distinct tile the placement uses, in layer order. */
std::vector<arch::TileCoord>
placedTiles(const Setup &s)
{
    std::vector<arch::TileCoord> tiles;
    for (std::size_t i = 0; i < s.net.size(); ++i) {
        const auto place = s.placement.layerPlacement(i);
        if (!place)
            continue;
        for (const auto &coord : place->tiles) {
            bool seen = false;
            for (const auto &t : tiles)
                seen = seen || t == coord;
            if (!seen)
                tiles.push_back(coord);
        }
    }
    return tiles;
}

TEST(Degradation, EmptyFailureSpecMatchesNominalRun)
{
    const auto cfg = smallConfig();
    const auto s = makeSetup(cfg);
    const auto nominal =
        sim::simulateChip(s.net, s.plan, s.placement, cfg, 6);
    const auto spec = sim::simulateChip(s.net, s.plan, s.placement,
                                        cfg, 6, sim::FailureSpec{});
    EXPECT_EQ(nominal.lastImageDone, spec.lastImageDone);
    EXPECT_EQ(nominal.measuredInterval, spec.measuredInterval);
    EXPECT_EQ(spec.deadTiles, 0);
    EXPECT_EQ(spec.remappedServers, 0);
}

TEST(Degradation, DeadTileCompletesWithReportedSlowdown)
{
    const auto cfg = smallConfig();
    const auto s = makeSetup(cfg);
    const auto tiles = placedTiles(s);
    ASSERT_GE(tiles.size(), 2u)
        << "need a multi-tile placement to kill one tile";

    const auto nominal =
        sim::simulateChip(s.net, s.plan, s.placement, cfg, 8);

    sim::FailureSpec failures;
    failures.deadTiles.push_back(tiles.front());
    const auto degraded = sim::simulateChip(
        s.net, s.plan, s.placement, cfg, 8, failures);

    // The run completes (no panic), work moved off the victim, and
    // the survivors serve more load so no image finishes earlier.
    EXPECT_EQ(degraded.deadTiles, 1);
    EXPECT_GT(degraded.remappedServers, 0);
    EXPECT_EQ(degraded.imageDone.size(), 8u);
    EXPECT_GE(degraded.lastImageDone, nominal.lastImageDone);

    const double retained = resilience::throughputRetained(
        nominal.measuredInterval, degraded.measuredInterval);
    EXPECT_GT(retained, 0.0);
    EXPECT_LE(retained, 1.0);
}

TEST(Degradation, AllTilesDeadIsFatal)
{
    const auto cfg = smallConfig();
    const auto s = makeSetup(cfg);
    sim::FailureSpec failures;
    failures.deadTiles = placedTiles(s);
    EXPECT_THROW(sim::simulateChip(s.net, s.plan, s.placement, cfg,
                                   2, failures),
                 FatalError);
}

TEST(Degradation, SummaryJsonCarriesEveryField)
{
    resilience::ResilienceSummary summary;
    summary.faults.stuckCells = 12;
    summary.faults.faultyCells = 9;
    summary.faults.remappedColumns = 3;
    summary.faults.uncorrectableCells = 2;
    summary.faults.programPulses = 4096;
    summary.adcClips = 7;
    summary.deadTiles = 1;
    summary.remappedServers = 5;
    summary.throughputRetained = 0.75;

    const std::string json = summary.toJson();
    for (const char *key :
         {"\"stuck_cells\": 12", "\"faulty_cells\": 9",
          "\"remapped_columns\": 3", "\"uncorrectable_cells\": 2",
          "\"program_pulses\": 4096", "\"adc_clips\": 7",
          "\"dead_tiles\": 1", "\"remapped_servers\": 5",
          "\"throughput_retained\": 0.75"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

TEST(Degradation, ThroughputRetainedClampsAndHandlesZero)
{
    EXPECT_DOUBLE_EQ(resilience::throughputRetained(100.0, 200.0),
                     0.5);
    EXPECT_DOUBLE_EQ(resilience::throughputRetained(100.0, 50.0),
                     1.0);
    EXPECT_DOUBLE_EQ(resilience::throughputRetained(0.0, 10.0), 1.0);
    EXPECT_DOUBLE_EQ(resilience::throughputRetained(10.0, 0.0), 1.0);
}

TEST(Degradation, CompiledModelReportsFaultCensus)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 4242);
    arch::IsaacConfig cfg;
    cfg.engine.spareCols = 2;
    cfg.engine.noise.stuckAtFraction = 0.005;
    cfg.engine.noise.seed = 99;
    core::Accelerator acc(cfg);
    const auto model = acc.compile(net, weights, {});

    const auto report = model.faultReport();
    EXPECT_GT(report.stuckCells, 0);
    EXPECT_GT(report.programPulses, 0);
    // Detection only sees faults under live content: never more
    // faulty cells than stuck ones exist.
    EXPECT_LE(report.faultyCells,
              report.stuckCells * 2); // probes may visit spares too
    EXPECT_GE(report.uncorrectableCells, 0);

    const auto summary = model.resilienceSummary();
    EXPECT_EQ(summary.faults, report);
    const auto stats = model.engineStats();
    EXPECT_EQ(summary.adcClips, stats.adcClips);
}

TEST(Degradation, CleanModelHasEmptyCensus)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 1);
    core::Accelerator acc;
    const auto model = acc.compile(net, weights, {});
    const auto report = model.faultReport();
    EXPECT_EQ(report.stuckCells, 0);
    EXPECT_EQ(report.faultyCells, 0);
    EXPECT_EQ(report.remappedColumns, 0);
    EXPECT_EQ(report.uncorrectableCells, 0);
    EXPECT_GT(report.programPulses, 0); // clean writes still pulse
    EXPECT_EQ(model.resilienceSummary().adcClips, 0u);
}

} // namespace
} // namespace isaac
