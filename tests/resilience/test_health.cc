/**
 * @file
 * TransientSpec validation, TransientStats merge/derived counters and
 * JSON shape, and the HealthMonitor roll-up contract.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/logging.h"
#include "resilience/health.h"

namespace isaac::resilience {
namespace {

TransientStats
sampleStats()
{
    TransientStats s;
    s.abftChecks = 100;
    s.abftMismatches = 7;
    s.abftRetries = 9;
    s.abftRetryCycles = 30;
    s.abftUncorrected = 2;
    s.driftRefreshes = 3;
    s.refreshPulses = 4096;
    s.eccWords = 500;
    s.eccBitFlips = 12;
    s.eccSingles = 10;
    s.eccDoubles = 1;
    s.eccRecomputedWords = 1;
    s.eccRecomputeCycles = 8;
    s.packetsSent = 64;
    s.packetsCorrupted = 5;
    s.packetsRetransmitted = 4;
    s.packetBackoffCycles = 14;
    s.packetsUncorrected = 1;
    s.deadLinks = 0;
    return s;
}

TEST(TransientSpec, DefaultsAreOffAndValid)
{
    TransientSpec spec;
    EXPECT_FALSE(spec.eccEnabled());
    EXPECT_FALSE(spec.nocEnabled());
    EXPECT_FALSE(spec.anyEnabled());
    spec.validate(); // must not die
}

TEST(TransientSpec, EnableFlagsTrackRates)
{
    TransientSpec spec;
    spec.edramFlipRate = 1e-4;
    EXPECT_TRUE(spec.eccEnabled());
    EXPECT_TRUE(spec.anyEnabled());
    EXPECT_FALSE(spec.nocEnabled());

    TransientSpec noc;
    noc.packetCorruptRate = 0.01;
    EXPECT_TRUE(noc.nocEnabled());
    EXPECT_FALSE(noc.eccEnabled());
    EXPECT_TRUE(noc.anyEnabled());
}

TEST(TransientSpec, RejectsBadValues)
{
    TransientSpec bad;
    bad.edramFlipRate = 1.5;
    EXPECT_THROW(bad.validate(), FatalError);

    TransientSpec negRetry;
    negRetry.maxPacketRetries = -1;
    EXPECT_THROW(negRetry.validate(), FatalError);

    TransientSpec zeroBackoff;
    zeroBackoff.packetBackoffCycles = 0;
    EXPECT_THROW(zeroBackoff.validate(), FatalError);

    TransientSpec emptyPacket;
    emptyPacket.wordsPerPacket = 0;
    EXPECT_THROW(emptyPacket.validate(), FatalError);
}

TEST(TransientStats, DerivedCountersFollowTheDefinition)
{
    const auto s = sampleStats();
    EXPECT_EQ(s.detected(), 7u + 10u + 1u + 5u);
    EXPECT_EQ(s.corrected(), (7u - 2u) + 10u + 1u + (5u - 1u));
    EXPECT_EQ(s.recoveryCycles(), 30u + 8u + 14u);
}

TEST(TransientStats, MergeIsFieldwiseAddition)
{
    auto a = sampleStats();
    const auto b = sampleStats();
    a.merge(b);
    EXPECT_EQ(a.abftChecks, 200u);
    EXPECT_EQ(a.abftMismatches, 14u);
    EXPECT_EQ(a.refreshPulses, 8192u);
    EXPECT_EQ(a.eccSingles, 20u);
    EXPECT_EQ(a.packetsSent, 128u);
    EXPECT_EQ(a.detected(), 2 * b.detected());
    EXPECT_EQ(a.recoveryCycles(), 2 * b.recoveryCycles());

    TransientStats zero;
    auto c = sampleStats();
    c.merge(zero);
    EXPECT_EQ(c, sampleStats());
}

TEST(TransientStats, JsonCarriesEveryCounter)
{
    const auto json = sampleStats().toJson();
    EXPECT_NE(json.find("\"abft_checks\": 100"), std::string::npos);
    EXPECT_NE(json.find("\"abft_mismatches\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"drift_refreshes\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"refresh_pulses\": 4096"),
              std::string::npos);
    EXPECT_NE(json.find("\"ecc_singles\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"packets_corrupted\": 5"),
              std::string::npos);
    EXPECT_NE(json.find("\"dead_links\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"detected\": 23"), std::string::npos);
    EXPECT_NE(json.find("\"corrected\": 20"), std::string::npos);
    EXPECT_NE(json.find("\"recovery_cycles\": 52"),
              std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(HealthMonitor, AccumulatesAndResets)
{
    HealthMonitor mon;
    EXPECT_EQ(mon.snapshot(), TransientStats{});
    mon.add(sampleStats());
    mon.add(sampleStats());
    EXPECT_EQ(mon.snapshot().abftChecks, 200u);
    mon.reset();
    EXPECT_EQ(mon.snapshot(), TransientStats{});
}

TEST(HealthMonitor, ConcurrentAddsSumExactly)
{
    HealthMonitor mon;
    constexpr int kThreads = 8;
    constexpr int kAddsPerThread = 200;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&] {
            TransientStats delta;
            delta.abftChecks = 1;
            delta.packetsSent = 3;
            for (int i = 0; i < kAddsPerThread; ++i)
                mon.add(delta);
        });
    }
    for (auto &w : workers)
        w.join();
    const auto total = mon.snapshot();
    EXPECT_EQ(total.abftChecks,
              static_cast<std::uint64_t>(kThreads * kAddsPerThread));
    EXPECT_EQ(total.packetsSent,
              static_cast<std::uint64_t>(3 * kThreads *
                                         kAddsPerThread));
}

} // namespace
} // namespace isaac::resilience
