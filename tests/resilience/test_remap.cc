/**
 * @file
 * Spare-column remapping tests: placement on healthy and defective
 * arrays, graceful reporting when spares run out, engine-level
 * bit-exactness whenever the spares suffice, and pulse-based write
 * accounting.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "resilience/remap.h"
#include "xbar/engine.h"
#include "xbar/write_model.h"

namespace isaac::resilience {
namespace {

/** rows x logicalCols target levels with a distinctive pattern. */
std::vector<int>
patternLevels(int rows, int logicalCols, int maxLevel)
{
    std::vector<int> v(static_cast<std::size_t>(rows) * logicalCols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < logicalCols; ++c)
            v[static_cast<std::size_t>(r) * logicalCols + c] =
                (r + 2 * c) % (maxLevel + 1);
    return v;
}

TEST(Remap, HealthyArrayKeepsPreferredColumns)
{
    xbar::CrossbarArray xb(16, 8, 2);
    const int logicalCols = 5;
    const auto intended = patternLevels(16, logicalCols, 3);
    const std::vector<int> preferred{0, 1, 2, 3, 7};
    const std::vector<int> spares{5, 6};

    const auto plan = assignColumns(xb, intended, 16, 16,
                                    logicalCols, preferred, spares);
    EXPECT_EQ(plan.colMap, preferred);
    EXPECT_EQ(plan.remappedColumns, 0);
    EXPECT_EQ(plan.uncorrectableCells, 0);
    EXPECT_EQ(plan.faults.count(), 0);
    EXPECT_EQ(plan.cellWrites, 16 * logicalCols);
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < logicalCols; ++c)
            EXPECT_EQ(xb.cell(r, plan.colMap[
                          static_cast<std::size_t>(c)]),
                      intended[static_cast<std::size_t>(r) *
                                   logicalCols +
                               c]);
}

TEST(Remap, DefectiveColumnMovesToSpare)
{
    xbar::CrossbarArray xb(16, 8, 2);
    const int logicalCols = 4;
    const auto intended = patternLevels(16, logicalCols, 3);
    // Freeze a cell in preferred column 2 at a level its content
    // never wants there.
    const int want =
        intended[static_cast<std::size_t>(5) * logicalCols + 2];
    xb.forceStuck(5, 2, (want + 1) % 4);

    const std::vector<int> preferred{0, 1, 2, 3};
    const std::vector<int> spares{6, 7};
    const auto plan = assignColumns(xb, intended, 16, 16,
                                    logicalCols, preferred, spares);
    EXPECT_EQ(plan.colMap[2], 6);
    EXPECT_EQ(plan.remappedColumns, 1);
    EXPECT_EQ(plan.uncorrectableCells, 0);
    // The probe of the bad column recorded the frozen cell.
    EXPECT_TRUE(plan.faults.faulty(5, 2));
    // Stored content through the map is bit-exact.
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < logicalCols; ++c)
            EXPECT_EQ(xb.cell(r, plan.colMap[
                          static_cast<std::size_t>(c)]),
                      intended[static_cast<std::size_t>(r) *
                                   logicalCols +
                               c]);
}

TEST(Remap, ContentAwareStuckCellNeedsNoSpare)
{
    // A stuck cell frozen at exactly the level the column wants is
    // not a mismatch: the preferred column is kept and no spare is
    // consumed (the content-aware observation of RxNN).
    xbar::CrossbarArray xb(16, 8, 2);
    const int logicalCols = 3;
    const auto intended = patternLevels(16, logicalCols, 3);
    xb.forceStuck(
        4, 1, intended[static_cast<std::size_t>(4) * logicalCols + 1]);

    const std::vector<int> preferred{0, 1, 2};
    const std::vector<int> spares{6};
    const auto plan = assignColumns(xb, intended, 16, 16,
                                    logicalCols, preferred, spares);
    EXPECT_EQ(plan.colMap, preferred);
    EXPECT_EQ(plan.remappedColumns, 0);
    EXPECT_EQ(plan.uncorrectableCells, 0);
}

TEST(Remap, SparesExhaustedReportsUncorrectable)
{
    xbar::CrossbarArray xb(16, 8, 2);
    const int logicalCols = 3;
    const auto intended = patternLevels(16, logicalCols, 3);
    auto freezeOff = [&](int r, int c) {
        xb.forceStuck(
            r, c,
            (intended[static_cast<std::size_t>(r) * logicalCols + c] +
             1) %
                4);
    };
    // Columns 0 and 1 are both defective (two bad cells vs one), but
    // only one spare exists: the worse column takes it, the other
    // keeps its least-bad assignment and reports the residue.
    freezeOff(2, 0);
    freezeOff(9, 0);
    freezeOff(3, 1);

    const std::vector<int> preferred{0, 1, 2};
    const std::vector<int> spares{7};
    const auto plan = assignColumns(xb, intended, 16, 16,
                                    logicalCols, preferred, spares);
    // Column 0 is probed first and wins the spare; column 1 finds it
    // consumed and stays put with one uncorrectable cell.
    EXPECT_EQ(plan.colMap[0], 7);
    EXPECT_EQ(plan.colMap[1], 1);
    EXPECT_EQ(plan.remappedColumns, 1);
    EXPECT_EQ(plan.uncorrectableCells, 1);
}

TEST(Remap, DefectsBelowUsedRowsAreIgnored)
{
    // Rows past usedRows are never read, so defects there must not
    // consume spares.
    xbar::CrossbarArray xb(16, 8, 2);
    const int logicalCols = 2;
    const auto intended = patternLevels(16, logicalCols, 3);
    xb.forceStuck(
        12, 0,
        (intended[static_cast<std::size_t>(12) * logicalCols] + 1) %
            4);

    const std::vector<int> preferred{0, 1};
    const std::vector<int> spares{6};
    const auto plan = assignColumns(xb, intended, 16, /*usedRows=*/8,
                                    logicalCols, preferred, spares);
    EXPECT_EQ(plan.colMap, preferred);
    EXPECT_EQ(plan.uncorrectableCells, 0);
}

TEST(Remap, ReprogramKeepsMapAndRecountsFaults)
{
    xbar::CrossbarArray xb(8, 6, 2);
    const int logicalCols = 3;
    const auto first = patternLevels(8, logicalCols, 3);
    const std::vector<int> preferred{0, 1, 2};
    const std::vector<int> spares{5};
    const auto plan = assignColumns(xb, first, 8, 8, logicalCols,
                                    preferred, spares);

    // New content; a cell that was fine before is now frozen wrong.
    auto second = first;
    for (auto &v : second)
        v = (v + 1) % 4;
    xb.forceStuck(
        1, 1,
        (second[static_cast<std::size_t>(1) * logicalCols + 1] + 2) %
            4);
    const auto re = reprogramColumns(xb, second, first, 8, 8,
                                     logicalCols, plan.colMap);
    EXPECT_EQ(re.colMap, plan.colMap); // placement never revisited
    EXPECT_EQ(re.uncorrectableCells, 1);
    EXPECT_TRUE(re.faults.faulty(1, 1));
    // Unchanged-target cells are skipped: every target changed here,
    // so the differential rewrite touches all cells once.
    EXPECT_EQ(re.cellWrites, 8 * logicalCols);
}

TEST(Remap, EngineBitExactWheneverSparesSuffice)
{
    // The acceptance sweep: 1% stuck cells, 2 spare columns. Over a
    // pool of seeds some arrays are fully correctable and some are
    // not; whenever the remapper reports zero uncorrectable cells
    // the faulty engine must match the clean engine bit for bit, and
    // otherwise the residue must be reported per tile.
    Rng rng(4242);
    const int n = 24, m = 2;
    std::vector<Word> weights(static_cast<std::size_t>(n) * m);
    for (auto &w : weights)
        w = static_cast<Word>(rng.uniform(-32768, 32767));
    std::vector<std::vector<Word>> probes;
    for (int i = 0; i < 3; ++i) {
        probes.emplace_back(static_cast<std::size_t>(n));
        for (auto &x : probes.back())
            x = static_cast<Word>(rng.uniform(-32768, 32767));
    }

    xbar::BitSerialEngine clean(xbar::EngineConfig{}, weights, n, m);
    std::vector<std::vector<Acc>> expected;
    for (const auto &probe : probes)
        expected.push_back(clean.dotProduct(probe));

    int correctable = 0, uncorrectable = 0, remapped = 0;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        xbar::EngineConfig cfg;
        cfg.spareCols = 2;
        cfg.noise.stuckAtFraction = 0.01;
        cfg.noise.seed = seed;
        xbar::BitSerialEngine faulty(cfg, weights, n, m);
        const auto report = faulty.faultReport();
        remapped += static_cast<int>(report.remappedColumns);
        if (report.uncorrectableCells == 0) {
            ++correctable;
            for (std::size_t i = 0; i < probes.size(); ++i)
                EXPECT_EQ(faulty.dotProduct(probes[i]), expected[i])
                    << "seed " << seed;
        } else {
            ++uncorrectable;
            // The per-tile census accounts for every residual cell.
            std::int64_t perTile = 0;
            for (int rs = 0; rs < faulty.rowSegments(); ++rs)
                for (int cs = 0; cs < faulty.colSegments(); ++cs)
                    perTile += faulty.tileFaultReport(rs, cs)
                                   .uncorrectableCells;
            EXPECT_EQ(perTile, report.uncorrectableCells);
        }
    }
    // The pool must exercise both branches and actually use spares.
    EXPECT_GT(correctable, 0);
    EXPECT_GT(uncorrectable, 0);
    EXPECT_GT(remapped, 0);
}

TEST(Remap, SparesRecoverAccuracyOverNoSpares)
{
    // With the same fault pattern, spare columns can only reduce the
    // number of cells left off-target.
    Rng rng(77);
    const int n = 96, m = 6;
    std::vector<Word> weights(static_cast<std::size_t>(n) * m);
    for (auto &w : weights)
        w = static_cast<Word>(rng.uniform(-32768, 32767));

    std::int64_t residue[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
        xbar::EngineConfig cfg;
        cfg.spareCols = pass == 0 ? 0 : 4;
        cfg.noise.stuckAtFraction = 0.02;
        cfg.noise.seed = 11;
        xbar::BitSerialEngine eng(cfg, weights, n, m);
        residue[pass] = eng.faultReport().uncorrectableCells;
    }
    EXPECT_GT(residue[0], 0);
    EXPECT_LT(residue[1], residue[0]);
}

TEST(Remap, PulseAccountingFeedsWriteModel)
{
    // Stuck cells burn the whole program-verify budget, so the
    // measured pulses-per-cell rises above the clean 1.0 and the
    // WriteModel's measured-cost methods scale linearly with it.
    xbar::EngineConfig cfg;
    cfg.noise.stuckAtFraction = 0.02;
    cfg.noise.seed = 3;
    Rng rng(8);
    const int n = 64, m = 4;
    std::vector<Word> weights(static_cast<std::size_t>(n) * m);
    for (auto &w : weights)
        w = static_cast<Word>(rng.uniform(-32768, 32767));
    xbar::BitSerialEngine eng(cfg, weights, n, m);

    const auto report = eng.faultReport();
    EXPECT_EQ(report.programPulses,
              static_cast<std::int64_t>(eng.programPulses()));
    EXPECT_GT(report.programPulses, 0);

    xbar::WriteModel wm;
    const double perCell = wm.measuredPulsesPerCell(
        report.programPulses, report.programPulses);
    EXPECT_DOUBLE_EQ(perCell, 1.0);
    // A clean engine issues exactly one pulse per written cell; the
    // faulty one retries, so its measured energy/time exceed the
    // same cell count at one pulse each.
    xbar::BitSerialEngine ideal(xbar::EngineConfig{}, weights, n, m);
    EXPECT_GT(eng.programPulses(), ideal.programPulses());
    EXPECT_GT(wm.pulsesEnergyJ(static_cast<std::int64_t>(
                  eng.programPulses())),
              wm.pulsesEnergyJ(static_cast<std::int64_t>(
                  ideal.programPulses())));
    EXPECT_GT(wm.pulsesSeconds(static_cast<std::int64_t>(
                  eng.programPulses())),
              0.0);
    // With no written cells the measured estimate falls back to the
    // static parameter.
    EXPECT_DOUBLE_EQ(wm.measuredPulsesPerCell(0, 0),
                     wm.pulsesPerCell);
}

} // namespace
} // namespace isaac::resilience
