/**
 * @file
 * ADC / DAC scaling-model tests.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "energy/adc_model.h"
#include "energy/dac_model.h"

namespace isaac::energy {
namespace {

TEST(AdcModel, ReferencePointIsExact)
{
    AdcModel m;
    EXPECT_DOUBLE_EQ(m.powerMw(8, 1.2), 2.0);
    EXPECT_DOUBLE_EQ(m.areaMm2(8), 0.0012);
}

TEST(AdcModel, PowerScalesWithRate)
{
    AdcModel m;
    EXPECT_DOUBLE_EQ(m.powerMw(8, 0.6), 1.0);
    EXPECT_DOUBLE_EQ(m.powerMw(8, 2.4), 4.0);
}

TEST(AdcModel, ResolutionGrowsSuperlinearly)
{
    AdcModel m;
    const double p8 = m.powerMw(8, 1.2);
    const double p9 = m.powerMw(9, 1.2);
    const double p10 = m.powerMw(10, 1.2);
    // One extra bit costs more than the linear share but less than
    // a full doubling.
    EXPECT_GT(p9 / p8, 9.0 / 8.0);
    EXPECT_LT(p9 / p8, 2.0);
    // The exponential term dominates as resolution grows.
    EXPECT_GT(p10 / p9, p9 / p8);
}

TEST(AdcModel, LowerResolutionIsCheaper)
{
    AdcModel m;
    EXPECT_LT(m.powerMw(6, 1.2), m.powerMw(8, 1.2));
    EXPECT_LT(m.areaMm2(6), m.areaMm2(8));
}

TEST(AdcModel, RejectsBadResolution)
{
    AdcModel m;
    EXPECT_THROW(m.powerMw(0, 1.2), FatalError);
    EXPECT_THROW(m.areaMm2(-1), FatalError);
}

TEST(AdcModel, FractionalResolutionInterpolates)
{
    // Adaptive pricing evaluates the scaling law at the policy's
    // expected conversion depth, which need not be an integer.
    AdcModel m;
    EXPECT_DOUBLE_EQ(m.energyPerSamplePj(8.0),
                     m.powerMw(8, 1.2) / 1.2);
    const double e7 = m.energyPerSamplePj(7.0);
    const double e75 = m.energyPerSamplePj(7.5);
    const double e8 = m.energyPerSamplePj(8.0);
    EXPECT_LT(e7, e75);
    EXPECT_LT(e75, e8);
    EXPECT_THROW(m.energyPerSamplePj(0.5), FatalError);
}

TEST(AdcModel, PolicyPricingChargesTheAdaptiveOverheads)
{
    AdcModel m;
    const xbar::AdcPolicy fixed;
    const auto adaptive = xbar::AdcPolicy::adaptive();

    // A fixed policy prices exactly as the plain scaling law.
    EXPECT_DOUBLE_EQ(m.policyPowerMw(fixed, 8, 1.2),
                     m.powerMw(8, 1.2));
    EXPECT_DOUBLE_EQ(m.policyAreaMm2(fixed, 8), m.areaMm2(8));

    // Adaptive power: expected depth (cap - 1 at the default 0.5
    // activity factor) plus the sequencing-logic overhead — a net
    // win. Area: full-resolution ladder plus the comparator-control
    // overhead — a net loss.
    const double pAd = m.policyPowerMw(adaptive, 8, 1.2);
    EXPECT_LT(pAd, m.powerMw(8, 1.2));
    EXPECT_DOUBLE_EQ(pAd, m.powerMw(adaptive.expectedBits(8), 1.2) *
                              (1.0 + AdcModel::kAdaptivePowerOverhead));
    const double aAd = m.policyAreaMm2(adaptive, 8);
    EXPECT_GT(aAd, m.areaMm2(8));
    EXPECT_DOUBLE_EQ(aAd, m.areaMm2(8) *
                              (1.0 + AdcModel::kAdaptiveAreaOverhead));
}

TEST(DacModel, ReferencePointMatchesTableI)
{
    DacModel d;
    // 1024 1-bit DACs cost 4 mW / 0.00017 mm^2 per IMA.
    EXPECT_NEAR(1024 * d.powerMw(1), 4.0, 1e-9);
    EXPECT_NEAR(1024 * d.areaMm2(1), 0.00017, 1e-9);
}

TEST(DacModel, TwoBitCalibrationMatchesAblation)
{
    // Sec. VIII-A: a 2-bit DAC increases chip area by 63% and chip
    // power by 7%. With 168 tiles x 12 IMAs x 1024 DACs:
    DacModel d;
    const double nDacs = 168.0 * 12 * 1024;
    const double areaDelta = nDacs * (d.areaMm2(2) - d.areaMm2(1));
    const double powerDeltaW =
        nDacs * (d.powerMw(2) - d.powerMw(1)) / 1000.0;
    EXPECT_NEAR(areaDelta / 85.4, 0.63, 0.03);
    EXPECT_NEAR(powerDeltaW / 65.8, 0.07, 0.01);
}

} // namespace
} // namespace isaac::energy
