/**
 * @file
 * Table I reproduction tests: at the ISAAC-CE design point the
 * catalog must match the paper's component, tile, and chip totals.
 */

#include <gtest/gtest.h>

#include "energy/catalog.h"

namespace isaac::energy {
namespace {

IsaacEnergyModel
ceModel()
{
    return IsaacEnergyModel(arch::IsaacConfig::isaacCE());
}

TEST(Catalog, ImaComponentsMatchTableI)
{
    const auto b = ceModel().imaBreakdown();
    auto find = [&](const std::string &name) -> const ComponentCost & {
        for (const auto &c : b.items)
            if (c.name == name)
                return c;
        ADD_FAILURE() << "missing component " << name;
        static ComponentCost none;
        return none;
    };
    EXPECT_NEAR(find("ADC").powerMw, 16.0, 0.01);
    EXPECT_NEAR(find("ADC").areaMm2, 0.0096, 1e-5);
    EXPECT_NEAR(find("DAC").powerMw, 4.0, 0.01);
    EXPECT_NEAR(find("DAC").areaMm2, 0.00017, 1e-6);
    EXPECT_NEAR(find("S+H").powerMw, 0.01, 1e-4);
    EXPECT_NEAR(find("Memristor arrays").powerMw, 2.4, 0.01);
    EXPECT_NEAR(find("Memristor arrays").areaMm2, 0.0002, 1e-6);
    EXPECT_NEAR(find("S+A").powerMw, 0.2, 0.01);
    EXPECT_NEAR(find("IR").powerMw, 1.24, 0.01);
    EXPECT_NEAR(find("OR").powerMw, 0.23, 0.01);
}

TEST(Catalog, ImaTotalsMatchTableI)
{
    const auto m = ceModel();
    // Table I: 12 IMAs total 289 mW / 0.157 mm^2.
    EXPECT_NEAR(12 * m.imaPowerMw(), 289.0, 1.5);
    EXPECT_NEAR(12 * m.imaAreaMm2(), 0.157, 0.002);
}

TEST(Catalog, TileTotalsMatchTableI)
{
    const auto m = ceModel();
    EXPECT_NEAR(m.tilePowerMw(), 330.0, 2.0);
    EXPECT_NEAR(m.tileAreaMm2(), 0.372, 0.004);
}

TEST(Catalog, ChipTotalsMatchTableI)
{
    const auto m = ceModel();
    // 168 tiles: 55.4 W / 62.5 mm^2; chip with HT: 65.8 W / 85.4 mm^2.
    EXPECT_NEAR(m.chipPowerW(), 65.8, 0.5);
    EXPECT_NEAR(m.chipAreaMm2(), 85.4, 0.5);
}

TEST(Catalog, AdcDominatesTilePower)
{
    // Sec. VIII-A: "the ADCs account for 58% of tile power and 31%
    // of tile area".
    const auto m = ceModel();
    const auto ima = m.imaBreakdown();
    double adcPower = 0, adcArea = 0;
    for (const auto &c : ima.items) {
        if (c.name == "ADC") {
            adcPower = c.powerMw;
            adcArea = c.areaMm2;
        }
    }
    const double powerShare = 12 * adcPower / m.tilePowerMw();
    const double areaShare = 12 * adcArea / m.tileAreaMm2();
    EXPECT_NEAR(powerShare, 0.58, 0.02);
    EXPECT_NEAR(areaShare, 0.31, 0.02);
}

TEST(Catalog, EdramAndBusShareOfTileArea)
{
    // Sec. VIII-A: eDRAM buffer + bus take 47% of tile area.
    const auto m = ceModel();
    const auto tile = m.tileBreakdown();
    double share = 0;
    for (const auto &c : tile.items) {
        if (c.name == "eDRAM buffer" || c.name == "eDRAM-to-IMA bus")
            share += c.areaMm2;
    }
    EXPECT_NEAR(share / m.tileAreaMm2(), 0.47, 0.02);
}

TEST(Catalog, PeakMetricsMatchTableIV)
{
    const auto m = ceModel();
    // Table IV: ISAAC-CE CE = 479 GOPS/mm^2, SE = 0.74 MB/mm^2.
    EXPECT_NEAR(m.ceGopsPerMm2(), 478.95, 6.0);
    EXPECT_NEAR(m.seMBPerMm2(), 0.74, 0.01);
    // Our analytic PE from Table I power is ~620 GOPS/W; the paper's
    // Table IV quotes 363.7 (see EXPERIMENTS.md). Assert the analytic
    // value so regressions are caught.
    EXPECT_NEAR(m.peGopsPerW(), 622.0, 10.0);
}

TEST(Catalog, PerEventEnergiesAreSane)
{
    const auto m = ceModel();
    // ADC: 2 mW at 1.2 GSps = 1.67 pJ/sample.
    EXPECT_NEAR(m.adcEnergyPerSamplePj(), 1.67, 0.01);
    // Crossbar read: 0.3 mW x 100 ns = 30 pJ.
    EXPECT_NEAR(m.xbarEnergyPerReadPj(), 30.0, 0.1);
    // eDRAM: ~2 pJ/B at 1 KB per cycle.
    EXPECT_NEAR(m.edramEnergyPerBytePj(), 2.02, 0.05);
    EXPECT_GT(m.htEnergyPerBytePj(), 100.0); // HT is expensive
    EXPECT_LT(m.sigmoidEnergyPerOpPj(), 1.0);
}

TEST(Catalog, AdaptivePolicyRepricesTheAdcLine)
{
    // The same chip under an adaptive converter policy: cheaper
    // per-sample ADC energy (expected depth below the cap), a small
    // area tax, and — composed through the whole Table I roll-up —
    // better GOPS/W at slightly worse GOPS/mm^2. The fixed default
    // must keep the 1.67 pJ Table I pin exactly.
    auto cfg = arch::IsaacConfig::isaacCE();
    const IsaacEnergyModel fixed(cfg);
    cfg.engine.adcPolicy = xbar::AdcPolicy::adaptive();
    const IsaacEnergyModel adaptive(cfg);

    EXPECT_NEAR(fixed.adcEnergyPerSamplePj(), 1.67, 0.01);
    EXPECT_LT(adaptive.adcEnergyPerSamplePj(),
              fixed.adcEnergyPerSamplePj());
    EXPECT_GT(adaptive.peGopsPerW(), fixed.peGopsPerW());
    EXPECT_LT(adaptive.ceGopsPerMm2(), fixed.ceGopsPerMm2());

    // Measured per-cycle accounting: pricing a run at its observed
    // mean conversion depth reproduces the fixed pin at 8.0 bits
    // and decreases monotonically as phases certify shorter.
    EXPECT_NEAR(fixed.adcEnergyPerSampleAtPj(8.0), 1.67, 0.01);
    EXPECT_LT(adaptive.adcEnergyPerSampleAtPj(6.5),
              adaptive.adcEnergyPerSampleAtPj(7.5));
    // The adaptive sequencing overhead applies to measured pricing
    // too, so at the full cap it costs slightly more than fixed.
    EXPECT_GT(adaptive.adcEnergyPerSampleAtPj(8.0),
              fixed.adcEnergyPerSampleAtPj(8.0));
}

TEST(Catalog, BiggerEdramCostsMore)
{
    auto cfg = arch::IsaacConfig::isaacCE();
    cfg.edramKBPerTile = 128;
    IsaacEnergyModel big(cfg);
    EXPECT_GT(big.tileAreaMm2(), ceModel().tileAreaMm2());
    EXPECT_GT(big.tilePowerMw(), ceModel().tilePowerMw());
}

TEST(Catalog, SeDesignHasHigherStorageDensity)
{
    IsaacEnergyModel se(arch::IsaacConfig::isaacSE());
    const auto ce = ceModel();
    EXPECT_GT(se.seMBPerMm2(), 10 * ce.seMBPerMm2());
    EXPECT_LT(se.ceGopsPerMm2(), ce.ceGopsPerMm2());
}

} // namespace
} // namespace isaac::energy
