/**
 * @file
 * DaDianNao baseline catalog tests against Table I / Table IV.
 */

#include <gtest/gtest.h>

#include "energy/dadiannao_catalog.h"

namespace isaac::energy {
namespace {

TEST(DaDianNao, ChipTotalsMatchTableI)
{
    DaDianNaoModel m;
    EXPECT_NEAR(m.chipPowerW(), 20.1, 0.1);
    EXPECT_NEAR(m.chipAreaMm2(), 88.0, 0.2);
}

TEST(DaDianNao, PeakMetricsMatchTableIV)
{
    DaDianNaoModel m;
    EXPECT_NEAR(m.peakGops(), 5585.0, 20.0);
    EXPECT_NEAR(m.ceGopsPerMm2(), 63.46, 0.7);
    EXPECT_NEAR(m.peGopsPerW(), 286.4, 10.0);
    EXPECT_NEAR(m.seMBPerMm2(), 0.41, 0.01);
}

TEST(DaDianNao, BreakdownSumsToChip)
{
    DaDianNaoModel m;
    const auto b = m.chipBreakdown();
    EXPECT_NEAR(b.totalPowerMw() / 1000.0, m.chipPowerW(), 1e-6);
    EXPECT_NEAR(b.totalAreaMm2(), m.chipAreaMm2(), 1e-6);
}

TEST(DaDianNao, PerEventEnergies)
{
    DaDianNaoModel m;
    // NFU: ~1.75 pJ/MAC.
    EXPECT_NEAR(m.nfuEnergyPerMacPj(), 1.75, 0.05);
    // eDRAM streams 8 KB/cycle at 606 MHz: ~5 TB/s internal.
    EXPECT_NEAR(m.edramGBps() / 1000.0, 4.96, 0.05);
    EXPECT_GT(m.edramEnergyPerBytePj(), 0.5);
    EXPECT_LT(m.edramEnergyPerBytePj(), 2.0);
}

TEST(DaDianNao, IsaacCeAdvantageIs7x)
{
    // Sec. I: ISAAC improves computational density by 7.5x.
    DaDianNaoModel ddn;
    IsaacEnergyModel isaac(arch::IsaacConfig::isaacCE());
    EXPECT_NEAR(isaac.ceGopsPerMm2() / ddn.ceGopsPerMm2(), 7.5, 0.3);
}

} // namespace
} // namespace isaac::energy
