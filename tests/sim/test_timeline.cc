/**
 * @file
 * Timeline renderer tests: the single-op chart must reproduce the
 * Fig. 4b schedule glyph by glyph.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/timeline.h"

namespace isaac::sim {
namespace {

TEST(Timeline, SingleOpReproducesFig4b)
{
    TileSim sim(arch::IsaacConfig::isaacCE());
    const auto times = sim.run({TileOp{0, 1, 512, 32}});
    const auto chart = renderTimeline(times);

    // Find the op row.
    const auto rowStart = chart.find("op0");
    ASSERT_NE(rowStart, std::string::npos);
    const auto row = chart.substr(
        rowStart, chart.find('\n', rowStart) - rowStart);
    // Row text after the 11-char label: cycle 1 is the E, cycles
    // 2..17 are X, 18 A, 19 S, 20 O, 21 V, 22 W.
    const auto cells = row.substr(11);
    EXPECT_EQ(cells[0], 'E');
    for (int c = 2; c <= 17; ++c)
        EXPECT_EQ(cells[static_cast<std::size_t>(c - 1)], 'X')
            << "cycle " << c;
    EXPECT_EQ(cells[17], 'A');
    EXPECT_EQ(cells[18], 'S');
    EXPECT_EQ(cells[19], 'O');
    EXPECT_EQ(cells[20], 'V');
    EXPECT_EQ(cells[21], 'W');
}

TEST(Timeline, BackToBackOpsOverlap)
{
    TileSim sim(arch::IsaacConfig::isaacCE());
    const auto times =
        sim.run({TileOp{0, 1, 512, 32}, TileOp{0, 1, 512, 32}});
    const auto chart = renderTimeline(times);
    // Two op rows plus a header.
    EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 3);
    EXPECT_NE(chart.find("op1"), std::string::npos);
    // The second op's crossbar phase begins right after the first's
    // (cycle 18): its row has an X at column 18.
    const auto rowStart = chart.find("op1");
    const auto row = chart.substr(
        rowStart, chart.find('\n', rowStart) - rowStart);
    EXPECT_EQ(row.substr(11)[17], 'X');
}

TEST(Timeline, ClipsToMaxCycles)
{
    TileSim sim(arch::IsaacConfig::isaacCE());
    const auto times = sim.run({TileOp{0, 1, 512, 32}});
    const auto chart = renderTimeline(times, 10);
    const auto header = chart.substr(0, chart.find('\n'));
    EXPECT_EQ(header.size(), std::string("cycle      ").size() + 10);
}

TEST(Timeline, RejectsEmpty)
{
    EXPECT_THROW(renderTimeline({}), FatalError);
}

} // namespace
} // namespace isaac::sim
