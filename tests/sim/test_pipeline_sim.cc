/**
 * @file
 * Inter-layer pipeline simulator tests: the cycle-level simulation
 * must corroborate the analytic model's steady-state interval.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/zoo.h"
#include "sim/pipeline_sim.h"

namespace isaac::sim {
namespace {

const arch::IsaacConfig kCE = arch::IsaacConfig::isaacCE();

TEST(PipelineSim, TinyCnnMatchesAnalyticInterval)
{
    const auto net = nn::tinyCnn();
    const auto plan = pipeline::planPipeline(net, kCE, 1);
    const auto result = simulatePipeline(net, plan, 8);
    // The measured steady-state interval must agree with the
    // analytic prediction within the pipeline-tail slack.
    EXPECT_NEAR(result.measuredInterval, result.analyticInterval,
                0.25 * result.analyticInterval + 8.0);
}

TEST(PipelineSim, FillLatencyExceedsInterval)
{
    const auto net = nn::tinyCnn();
    const auto plan = pipeline::planPipeline(net, kCE, 1);
    const auto result = simulatePipeline(net, plan, 6);
    EXPECT_GT(static_cast<double>(result.firstImageDone),
              result.measuredInterval);
}

TEST(PipelineSim, ImagesCompleteInOrder)
{
    const auto net = nn::tinyCnn();
    const auto plan = pipeline::planPipeline(net, kCE, 1);
    const auto result = simulatePipeline(net, plan, 6);
    for (std::size_t i = 1; i < result.imageDone.size(); ++i)
        EXPECT_GE(result.imageDone[i], result.imageDone[i - 1]);
}

TEST(PipelineSim, FewerServersStretchTheInterval)
{
    // Starve the plan: force replication 1 everywhere and compare.
    const auto net = nn::tinyCnn();
    auto plan = pipeline::planPipeline(net, kCE, 1);
    auto starved = plan;
    for (auto &lp : starved.layers) {
        if (lp.isDot)
            lp.effectiveRate = 1.0;
    }
    const auto fast = simulatePipeline(net, plan, 6);
    const auto slow = simulatePipeline(net, starved, 6);
    EXPECT_GT(slow.measuredInterval, 2.0 * fast.measuredInterval);
}

TEST(PipelineSim, DeeperNetworkStillTracksAnalytic)
{
    // A deeper CNN with pooling between stages.
    nn::NetworkBuilder b("sim-net", 4, 16, 16);
    b.conv(3, 8, 1, 0).maxPool(2, 2).conv(3, 16, 1, 0).fc(10);
    const auto net = b.build();
    const auto plan = pipeline::planPipeline(net, kCE, 1);
    const auto result = simulatePipeline(net, plan, 8);
    EXPECT_NEAR(result.measuredInterval, result.analyticInterval,
                0.35 * result.analyticInterval + 10.0);
}

TEST(PipelineSim, RejectsBadArguments)
{
    const auto net = nn::tinyCnn();
    auto plan = pipeline::planPipeline(net, kCE, 1);
    EXPECT_THROW(simulatePipeline(net, plan, 0), FatalError);
    plan.fits = false;
    EXPECT_THROW(simulatePipeline(net, plan, 4), FatalError);
}

} // namespace
} // namespace isaac::sim
