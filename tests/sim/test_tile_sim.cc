/**
 * @file
 * Intra-tile pipeline simulator tests against the Fig. 4b schedule.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/tile_sim.h"

namespace isaac::sim {
namespace {

arch::IsaacConfig kCfg = arch::IsaacConfig::isaacCE();

TEST(TileSim, Fig4bSingleOpSchedule)
{
    // Sec. VI's example: eDRAM read in cycle 1, crossbar cycles
    // 2..17, ADC done 18, S+A 19, OR transfer 20, sigmoid 21, eDRAM
    // write 22.
    TileSim sim(kCfg);
    const auto times = sim.run({TileOp{0, 1, 512, 32}});
    ASSERT_EQ(times.size(), 1u);
    const auto &t = times[0];
    EXPECT_EQ(t.edramRead, 1u);
    EXPECT_EQ(t.xbarStart, 2u);
    EXPECT_EQ(t.adcDone, 18u);
    EXPECT_EQ(t.saDone, 19u);
    EXPECT_EQ(t.orTransfer, 20u);
    EXPECT_EQ(t.sigmoid, 21u);
    EXPECT_EQ(t.edramWrite, 22u);
}

TEST(TileSim, SteadyStateOneOpPer16CyclesPerIma)
{
    // Back-to-back ops on one IMA: the crossbar is the bottleneck,
    // one result every 16 cycles, with the IMA busy every cycle.
    TileSim sim(kCfg);
    std::vector<TileOp> ops(10, TileOp{0, 0, 512, 32});
    const auto times = sim.run(ops);
    for (std::size_t i = 1; i < times.size(); ++i) {
        EXPECT_EQ(times[i].xbarStart - times[i - 1].xbarStart, 16u)
            << "op " << i;
    }
}

TEST(TileSim, TwelveImasShareResourcesWithoutStalls)
{
    // All 12 IMAs streaming concurrently: the 4-bank eDRAM and the
    // bus sustain the traffic, so every IMA still issues one op per
    // 16 cycles in the steady state.
    TileSim sim(kCfg);
    std::vector<TileOp> ops;
    for (int round = 0; round < 8; ++round)
        for (int ima = 0; ima < 12; ++ima)
            ops.push_back(TileOp{ima, 0, 512, 32});
    const auto times = sim.run(ops);

    // Compare each IMA's last and first xbarStart: 7 rounds apart.
    for (int ima = 0; ima < 12; ++ima) {
        std::vector<Cycle> starts;
        for (std::size_t i = 0; i < ops.size(); ++i)
            if (ops[i].ima == ima)
                starts.push_back(times[i].xbarStart);
        EXPECT_LE(starts.back() - starts.front(), 7u * 16u + 13u)
            << "IMA " << ima;
    }
}

TEST(TileSim, BusSerializesIrLoads)
{
    // Four ops on different IMAs, all ready at cycle 1: the shared
    // bus carries three IR copies per 100 ns cycle, so the fourth
    // op's eDRAM read spills into the next cycle.
    TileSim sim(kCfg);
    const auto times = sim.run({TileOp{0, 1, 512, 32},
                                TileOp{1, 1, 512, 32},
                                TileOp{2, 1, 512, 32},
                                TileOp{3, 1, 512, 32}});
    EXPECT_EQ(times[0].edramRead, 1u);
    EXPECT_EQ(times[1].edramRead, 1u);
    EXPECT_EQ(times[2].edramRead, 1u);
    EXPECT_EQ(times[3].edramRead, 2u);
}

TEST(TileSim, TraceCountsActivity)
{
    TileSim sim(kCfg);
    sim.run({TileOp{0, 1, 512, 32}});
    const auto &tr = sim.trace();
    EXPECT_EQ(tr.edramReadBytes, 512u);
    EXPECT_EQ(tr.edramWriteBytes, 64u);
    EXPECT_EQ(tr.xbarReads, 16u * 8u);
    EXPECT_EQ(tr.adcSamples, 16u * 8u * 129u);
    EXPECT_EQ(tr.sigmoidOps, 32u);
}

TEST(TileSim, RejectsBadImaIndex)
{
    TileSim sim(kCfg);
    EXPECT_THROW(sim.run({TileOp{12, 0, 512, 32}}), FatalError);
}

TEST(SlotResource, PacksSlotsPerCycle)
{
    SlotResource r(2);
    EXPECT_EQ(r.reserve(5), 5u);
    EXPECT_EQ(r.reserve(5), 5u);
    EXPECT_EQ(r.reserve(5), 6u);
    EXPECT_EQ(r.reserve(0), 0u);
    EXPECT_EQ(r.totalReservations(), 4u);
}

TEST(SlotResource, RejectsZeroSlots)
{
    EXPECT_THROW(SlotResource(0), FatalError);
}

} // namespace
} // namespace isaac::sim
