/**
 * @file
 * Trace / SlotResource utility tests.
 */

#include <gtest/gtest.h>

#include "sim/trace.h"

namespace isaac::sim {
namespace {

TEST(Trace, MergeAccumulatesEveryCounter)
{
    Trace a;
    a.edramReadBytes = 1;
    a.edramWriteBytes = 2;
    a.busBytes = 3;
    a.xbarReads = 4;
    a.adcSamples = 5;
    a.shiftAdds = 6;
    a.sigmoidOps = 7;
    a.maxPoolValues = 8;
    a.orWrites = 9;

    Trace b = a;
    b.merge(a);
    EXPECT_EQ(b.edramReadBytes, 2u);
    EXPECT_EQ(b.edramWriteBytes, 4u);
    EXPECT_EQ(b.busBytes, 6u);
    EXPECT_EQ(b.xbarReads, 8u);
    EXPECT_EQ(b.adcSamples, 10u);
    EXPECT_EQ(b.shiftAdds, 12u);
    EXPECT_EQ(b.sigmoidOps, 14u);
    EXPECT_EQ(b.maxPoolValues, 16u);
    EXPECT_EQ(b.orWrites, 18u);
}

TEST(SlotResource, BacklogDrainsForward)
{
    SlotResource r(1);
    // Saturate cycles 10..14, then ask for cycle 10 again: lands 15.
    for (Cycle c = 10; c < 15; ++c)
        EXPECT_EQ(r.reserve(c), c);
    EXPECT_EQ(r.reserve(10), 15u);
    // Earlier cycles remain available.
    EXPECT_EQ(r.reserve(3), 3u);
}

TEST(SlotResource, ManyReservationsStayBounded)
{
    SlotResource r(2);
    Cycle last = 0;
    for (int i = 0; i < 100000; ++i)
        last = r.reserve(static_cast<Cycle>(i / 4));
    EXPECT_GE(last, 100000u / 4);
    EXPECT_EQ(r.totalReservations(), 100000u);
}

} // namespace
} // namespace isaac::sim
