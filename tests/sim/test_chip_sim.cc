/**
 * @file
 * Placed full-chip simulator tests: agreement with the analytic
 * model, structural-hazard sensitivity, and activity accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/zoo.h"
#include "pipeline/perf.h"
#include "sim/chip_sim.h"

namespace isaac::sim {
namespace {

arch::IsaacConfig
singleTileConfig()
{
    auto cfg = arch::IsaacConfig::isaacCE();
    cfg.tilesPerChip = 2;
    return cfg;
}

struct Setup
{
    nn::Network net;
    pipeline::PipelinePlan plan;
    pipeline::Placement placement;
};

Setup
makeSetup(const arch::IsaacConfig &cfg)
{
    auto net = nn::tinyCnn();
    auto plan = pipeline::planPipeline(net, cfg, 1);
    auto placement = pipeline::Placement::build(net, plan, cfg);
    return Setup{std::move(net), std::move(plan),
                 std::move(placement)};
}

TEST(ChipSim, TracksAnalyticInterval)
{
    const auto cfg = singleTileConfig();
    const auto s = makeSetup(cfg);
    const auto r = simulateChip(s.net, s.plan, s.placement, cfg, 10);
    EXPECT_NEAR(r.measuredInterval, r.analyticInterval,
                0.45 * r.analyticInterval + 10.0);
    EXPECT_GT(r.firstImageDone, 0u);
}

TEST(ChipSim, ImagesCompleteMonotonically)
{
    const auto cfg = singleTileConfig();
    const auto s = makeSetup(cfg);
    const auto r = simulateChip(s.net, s.plan, s.placement, cfg, 8);
    for (std::size_t i = 1; i < r.imageDone.size(); ++i)
        EXPECT_GE(r.imageDone[i], r.imageDone[i - 1]);
}

TEST(ChipSim, SingleBankEdramSlowsThePipeline)
{
    // Structural hazards matter: with one eDRAM bank per tile the
    // IR loads and result writes contend and the interval grows.
    auto cfg = singleTileConfig();
    const auto fast = makeSetup(cfg);
    const auto rFast =
        simulateChip(fast.net, fast.plan, fast.placement, cfg, 8);

    auto starved = cfg;
    starved.edramBanks = 1;
    // Same plan/placement shape, fewer banks in the simulator.
    const auto rSlow = simulateChip(fast.net, fast.plan,
                                    fast.placement, starved, 8);
    EXPECT_GE(rSlow.measuredInterval,
              rFast.measuredInterval * 0.999);
    EXPECT_GE(rSlow.lastImageDone, rFast.lastImageDone);
}

TEST(ChipSim, TraceCountsScaleWithWork)
{
    const auto cfg = singleTileConfig();
    const auto s = makeSetup(cfg);
    const auto r1 = simulateChip(s.net, s.plan, s.placement, cfg, 1);
    const auto r4 = simulateChip(s.net, s.plan, s.placement, cfg, 4);
    EXPECT_EQ(r4.trace.xbarReads, 4 * r1.trace.xbarReads);
    EXPECT_EQ(r4.trace.adcSamples, 4 * r1.trace.adcSamples);
    // Per image: conv has 81 windows x 16 phases x 4 arrays, fc has
    // 1 op x 16 phases x 3 arrays.
    EXPECT_EQ(r1.trace.xbarReads, 81u * 16 * 4 + 16 * 3);
}

TEST(ChipSim, TraceAgreesWithAnalyticActivityModel)
{
    // The simulator's per-image ADC-sample count must equal the
    // analytic activity model's: both count
    // windows x phases x arrays x (cols + 1) per dot layer.
    const auto cfg = singleTileConfig();
    const auto s = makeSetup(cfg);
    const auto r = simulateChip(s.net, s.plan, s.placement, cfg, 1);

    const energy::IsaacEnergyModel model(cfg);
    const auto perf = pipeline::analyzeIsaac(s.net, s.plan, model);
    const double analyticSamples = perf.activity.adcJ /
        (model.adcEnergyPerSamplePj() * 1e-12);
    EXPECT_NEAR(static_cast<double>(r.trace.adcSamples),
                analyticSamples, 0.5);

    const double analyticReads = perf.activity.xbarJ /
        (model.xbarEnergyPerReadPj() * 1e-12);
    EXPECT_NEAR(static_cast<double>(r.trace.xbarReads),
                analyticReads, 0.5);
}

TEST(ChipSim, UtilizationIsAFraction)
{
    const auto cfg = singleTileConfig();
    const auto s = makeSetup(cfg);
    const auto r = simulateChip(s.net, s.plan, s.placement, cfg, 8);
    EXPECT_GT(r.maxImaUtilization, 0.0);
    EXPECT_LE(r.maxImaUtilization, 1.0);
}

TEST(ChipSim, RejectsBadArguments)
{
    const auto cfg = singleTileConfig();
    const auto s = makeSetup(cfg);
    EXPECT_THROW(
        simulateChip(s.net, s.plan, s.placement, cfg, 0),
        FatalError);
    auto broken = s.plan;
    broken.fits = false;
    EXPECT_THROW(
        simulateChip(s.net, broken, s.placement, cfg, 2),
        FatalError);
}

} // namespace
} // namespace isaac::sim
