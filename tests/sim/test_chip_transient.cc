/**
 * @file
 * Transient errors in the placed chip simulator: deterministic
 * soft-error injection, recovery latency folded into the interval,
 * and link-kill escalation into the server-migration path.
 */

#include <gtest/gtest.h>

#include "nn/zoo.h"
#include "pipeline/perf.h"
#include "sim/chip_sim.h"

namespace isaac::sim {
namespace {

struct Setup
{
    nn::Network net;
    pipeline::PipelinePlan plan;
    pipeline::Placement placement;
};

Setup
makeSetup(const arch::IsaacConfig &cfg)
{
    auto net = nn::tinyCnn();
    auto plan = pipeline::planPipeline(net, cfg, 1);
    auto placement = pipeline::Placement::build(net, plan, cfg);
    return Setup{std::move(net), std::move(plan),
                 std::move(placement)};
}

arch::IsaacConfig
baseConfig()
{
    auto cfg = arch::IsaacConfig::isaacCE();
    cfg.tilesPerChip = 2;
    return cfg;
}

TEST(ChipTransient, DisabledSpecMatchesCleanRunExactly)
{
    const auto cfg = baseConfig();
    const auto s = makeSetup(cfg);
    const auto clean =
        simulateChip(s.net, s.plan, s.placement, cfg, 6);
    const auto viaSpec = simulateChip(s.net, s.plan, s.placement,
                                      cfg, 6, FailureSpec{});
    EXPECT_EQ(viaSpec.lastImageDone, clean.lastImageDone);
    EXPECT_EQ(viaSpec.imageDone, clean.imageDone);
    EXPECT_EQ(viaSpec.transient, resilience::TransientStats{});
    EXPECT_EQ(viaSpec.remappedServers, 0);
}

TEST(ChipTransient, InjectionIsDeterministicAndChargesRecovery)
{
    const auto cfg = baseConfig();
    const auto s = makeSetup(cfg);
    FailureSpec failures;
    failures.transient.edramFlipRate = 1e-3;
    failures.transient.packetCorruptRate = 0.05;
    failures.transient.seed = 0x5EED;

    const auto a = simulateChip(s.net, s.plan, s.placement, cfg, 6,
                                failures);
    const auto b = simulateChip(s.net, s.plan, s.placement, cfg, 6,
                                failures);
    EXPECT_EQ(a.transient, b.transient);
    EXPECT_EQ(a.imageDone, b.imageDone);

    EXPECT_GT(a.transient.eccWords, 0u);
    EXPECT_GT(a.transient.packetsSent, 0u);
    EXPECT_GT(a.transient.packetsCorrupted, 0u);

    // Recovery latency is folded into the completion times: the
    // injected run can never finish before the clean one.
    const auto clean =
        simulateChip(s.net, s.plan, s.placement, cfg, 6);
    EXPECT_GE(a.lastImageDone, clean.lastImageDone);
    EXPECT_GT(a.transient.recoveryCycles(), 0u);
}

TEST(ChipTransient, ExhaustedLinkBudgetMigratesTheServer)
{
    // A link that corrupts every packet blows through its retry
    // budget, is declared dead, and the server migrates — the same
    // degradation path a dead tile takes, so the run completes.
    const auto cfg = baseConfig();
    const auto s = makeSetup(cfg);
    FailureSpec failures;
    failures.transient.packetCorruptRate = 1.0;
    failures.transient.maxPacketRetries = 1;
    failures.transient.linkRetryBudget = 4;

    const auto r = simulateChip(s.net, s.plan, s.placement, cfg, 4,
                                failures);
    EXPECT_GT(r.transient.deadLinks, 0u);
    // Migration needs a sibling tile with a live link; it fires iff
    // some dot layer is placed across more than one tile.
    bool multiTileLayer = false;
    for (std::size_t i = 0; i < s.net.size(); ++i) {
        const auto place = s.placement.layerPlacement(i);
        if (place && place->tiles.size() > 1)
            multiTileLayer = true;
    }
    if (multiTileLayer)
        EXPECT_GT(r.remappedServers, 0);
    EXPECT_GT(r.lastImageDone, 0u);
    // Every image still completes, monotonically.
    ASSERT_EQ(r.imageDone.size(), 4u);
    for (std::size_t i = 1; i < r.imageDone.size(); ++i)
        EXPECT_GE(r.imageDone[i], r.imageDone[i - 1]);
}

TEST(ChipTransient, ComposesWithDeadTiles)
{
    // Hard failures and soft errors share the degradation machinery.
    const auto cfg = baseConfig();
    const auto s = makeSetup(cfg);
    ASSERT_FALSE(s.placement.layers().empty());
    ASSERT_FALSE(s.placement.layers().front().tiles.empty());

    FailureSpec failures;
    failures.deadTiles.push_back(
        s.placement.layers().front().tiles.front());
    failures.transient.edramFlipRate = 1e-3;
    failures.transient.packetCorruptRate = 0.02;

    const auto r = simulateChip(s.net, s.plan, s.placement, cfg, 4,
                                failures);
    EXPECT_EQ(r.deadTiles, 1);
    EXPECT_GT(r.remappedServers, 0);
    EXPECT_GT(r.transient.eccWords, 0u);
    EXPECT_GT(r.lastImageDone, 0u);
}

} // namespace
} // namespace isaac::sim
