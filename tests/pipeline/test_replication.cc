/**
 * @file
 * Replication-planner tests: desired replication, slowdown/speedup
 * search, and capacity behaviour on the paper's benchmarks.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/zoo.h"
#include "pipeline/replication.h"

namespace isaac::pipeline {
namespace {

const arch::IsaacConfig kCE = arch::IsaacConfig::isaacCE();

TEST(Replication, Vgg1FirstLayerWants50kCopies)
{
    // Sec. VIII-B: "the first layer has to be replicated more than
    // 50K times to keep the last layer busy in every cycle."
    const auto net = nn::vgg(1);
    const auto plan = planPipeline(net, kCE, 16);
    EXPECT_EQ(plan.layers[0].desiredReplication, 224LL * 224);
    EXPECT_GT(plan.layers[0].desiredReplication, 50000);
    // With only 16 chips the grant is far below the desire.
    EXPECT_LT(plan.layers[0].replication,
              plan.layers[0].desiredReplication);
    EXPECT_GT(plan.slowdown, 1);
}

TEST(Replication, DesiredFollowsWindowRatio)
{
    const auto net = nn::tinyCnn();
    const auto plan = planPipeline(net, kCE, 1);
    // conv windows 9x9=81; fc windows 1 -> desired 81.
    EXPECT_EQ(plan.layers[0].desiredReplication, 81);
    EXPECT_EQ(plan.layers[2].desiredReplication, 1);
    // One chip has plenty of room: full replication plus speedup
    // (the greedy rebalancer may add a little on top).
    EXPECT_EQ(plan.slowdown, 1);
    EXPECT_GE(plan.speedup, 1);
    EXPECT_GE(plan.layers[0].replication, 81 * plan.speedup);
    EXPECT_LE(plan.layers[0].replication,
              81 * (plan.speedup + 1));
}

TEST(Replication, BalancedPipelineHasEqualLayerCycles)
{
    // With full grants every dot layer's compute time matches the
    // last layer's (that is the definition of balance).
    const auto net = nn::tinyCnn();
    const auto plan = planPipeline(net, kCE, 1);
    const double t0 = plan.layers[0].computeCyclesPerImage;
    const double t2 = plan.layers[2].computeCyclesPerImage;
    EXPECT_NEAR(t0, t2, 0.02 * t2);
}

TEST(Replication, SlowdownShrinksWithMoreChips)
{
    const auto net = nn::vgg(2);
    const auto p8 = planPipeline(net, kCE, 8);
    const auto p16 = planPipeline(net, kCE, 16);
    const auto p64 = planPipeline(net, kCE, 64);
    EXPECT_GE(p8.slowdown, p16.slowdown);
    EXPECT_GE(p16.slowdown, p64.slowdown);
    // Doubling the chips should roughly halve the interval (grant
    // rounding and fixed classifier costs allow some slack).
    EXPECT_GE(p8.cyclesPerImage, p16.cyclesPerImage);
    EXPECT_LE(p8.cyclesPerImage / p16.cyclesPerImage, 4.0);
    EXPECT_GT(p16.cyclesPerImage, 0);
}

TEST(Replication, UsageNeverExceedsBudget)
{
    for (int chips : {8, 16, 64}) {
        for (const auto &net : nn::allBenchmarks()) {
            const auto plan = planPipeline(net, kCE, chips);
            if (!plan.fits)
                continue;
            EXPECT_LE(plan.xbarsUsed, plan.xbarsAvailable)
                << net.name() << " @ " << chips;
        }
    }
}

TEST(Replication, DnnCapacityMatchesPaper)
{
    // Sec. VIII-A: the large DNN fits on 32 ISAAC-CE chips (not 16).
    const auto net = nn::largeDnn();
    EXPECT_FALSE(planPipeline(net, kCE, 16).fits);
    EXPECT_TRUE(planPipeline(net, kCE, 32).fits);
}

TEST(Replication, DnnFitsOnOneSeChip)
{
    // Sec. VIII-A: the large DNN fits in just one ISAAC-SE chip.
    const auto net = nn::largeDnn();
    const auto se = arch::IsaacConfig::isaacSE();
    EXPECT_TRUE(planPipeline(net, se, 1).fits);
}

TEST(Replication, PipelineIntervalIsMaxLayerTime)
{
    const auto net = nn::vgg(1);
    const auto plan = planPipeline(net, kCE, 16);
    double maxCycles = 0, sumCycles = 0;
    for (const auto &lp : plan.layers) {
        maxCycles = std::max(maxCycles, lp.cyclesPerImage);
        sumCycles += lp.cyclesPerImage;
    }
    EXPECT_DOUBLE_EQ(plan.cyclesPerImage, maxCycles);
    EXPECT_DOUBLE_EQ(plan.unpipelinedCyclesPerImage, sumCycles);
}

TEST(Replication, UtilizationIsAtMostOne)
{
    const auto net = nn::msra(1);
    const auto plan = planPipeline(net, kCE, 16);
    for (const auto &lp : plan.layers) {
        EXPECT_LE(lp.utilization, 1.0 + 1e-9);
        EXPECT_GE(lp.utilization, 0.0);
    }
}

TEST(Replication, BufferNeverExceedsAllocatedEdram)
{
    for (const auto &net : nn::allBenchmarks()) {
        const auto plan = planPipeline(net, kCE, 64);
        if (!plan.fits)
            continue;
        for (const auto &lp : plan.layers) {
            if (!lp.isDot)
                continue;
            EXPECT_LE(lp.bufferBytes,
                      lp.tiles * kCE.edramKBPerTile * 1024)
                << net.name();
        }
    }
}

TEST(Replication, RejectsZeroChips)
{
    const auto net = nn::tinyCnn();
    EXPECT_THROW(planPipeline(net, kCE, 0), FatalError);
}

} // namespace
} // namespace isaac::pipeline
