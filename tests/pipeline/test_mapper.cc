/**
 * @file
 * Layer-to-crossbar footprint tests.
 */

#include <gtest/gtest.h>

#include "nn/zoo.h"
#include "pipeline/mapper.h"

namespace isaac::pipeline {
namespace {

const arch::IsaacConfig kCE = arch::IsaacConfig::isaacCE();

TEST(Mapper, Fig4ExampleUsesFourArrays)
{
    // Sec. VI: a 4x4x16 convolution with 32 output filters needs a
    // 256x256 logical crossbar = four 128x128 physical arrays.
    const auto net = nn::tinyCnn();
    const auto f = layerFootprint(net.layer(0), 0, kCE);
    EXPECT_EQ(f.rowSegments, 2);
    EXPECT_EQ(f.colSegments, 2);
    EXPECT_EQ(f.xbarsPerCopy, 4);
    EXPECT_EQ(f.inherentParallelism, 1);
}

TEST(Mapper, VggFc1Footprint)
{
    // VGG fc1: 25088 inputs x 4096 outputs = 196 x 256 arrays.
    const auto net = nn::vgg(1);
    const auto &fc1 = net.layer(net.dotProductLayers()[8]);
    ASSERT_EQ(fc1.kind, nn::LayerKind::Classifier);
    const auto f = layerFootprint(fc1, 0, kCE);
    EXPECT_EQ(f.rowSegments, 196);
    EXPECT_EQ(f.colSegments, 256);
    EXPECT_EQ(f.xbarsPerCopy, 196 * 256);
}

TEST(Mapper, PoolLayersUseNoXbars)
{
    const auto net = nn::tinyCnn();
    const auto f = layerFootprint(net.layer(1), 1, kCE);
    EXPECT_FALSE(f.isDot);
    EXPECT_EQ(f.xbarsPerCopy, 0);
}

TEST(Mapper, PrivateKernelPacksWindows)
{
    // The DNN layer: 8 outputs x 8 slices = 64 columns per window,
    // so two windows pack per array; 2592 rows -> 21 row segments.
    const auto net = nn::largeDnn();
    const auto f = layerFootprint(net.layer(0), 0, kCE);
    const std::int64_t windows = 183LL * 183;
    EXPECT_EQ(f.windows, windows);
    const std::int64_t groups = (windows + 1) / 2;
    EXPECT_EQ(f.inherentParallelism, groups);
    EXPECT_EQ(f.xbarsPerCopy, 21 * groups);
}

TEST(Mapper, PrivateWideWindowsDontPack)
{
    // DeepFace L4: 16 outputs x 8 slices = 128 columns fill the
    // array exactly; no packing possible.
    const auto net = nn::deepFace();
    const auto &l4 = net.layer(3);
    ASSERT_TRUE(l4.privateKernel);
    const auto f = layerFootprint(l4, 3, kCE);
    EXPECT_EQ(f.inherentParallelism, f.windows);
    // 9x9x16 = 1296 rows -> 11 segments per window.
    EXPECT_EQ(f.xbarsPerCopy, 11 * f.windows);
}

TEST(Mapper, TotalXbarsScalesWithChips)
{
    EXPECT_EQ(totalXbars(kCE, 1), 168LL * 12 * 8);
    EXPECT_EQ(totalXbars(kCE, 16), 16LL * 168 * 12 * 8);
}

TEST(Mapper, FootprintCoversWholeNetwork)
{
    const auto net = nn::vgg(1);
    const auto fps = footprint(net, kCE);
    ASSERT_EQ(fps.size(), net.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
        EXPECT_EQ(fps[i].layerIdx, i);
        EXPECT_EQ(fps[i].isDot, net.layer(i).isDotProduct());
    }
}

TEST(Mapper, StorageRoughlyMatchesWeights)
{
    // Crossbar cell capacity must be >= the raw weight bytes, and
    // within a modest packing-overhead factor for dense layers.
    const auto net = nn::vgg(3);
    const auto fps = footprint(net, kCE);
    for (std::size_t i = 0; i < fps.size(); ++i) {
        const auto &l = net.layer(i);
        if (!l.isDotProduct())
            continue;
        const double xbarBytes = static_cast<double>(
            fps[i].xbarsPerCopy * kCE.weightsPerXbar() * 2);
        EXPECT_GE(xbarBytes, static_cast<double>(l.weightBytes()));
        if (l.dotLength() >= 512) {
            EXPECT_LE(xbarBytes,
                      3.0 * static_cast<double>(l.weightBytes()))
                << l.name;
        }
    }
}

} // namespace
} // namespace isaac::pipeline
