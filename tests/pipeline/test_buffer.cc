/**
 * @file
 * Buffer-model tests against the Section IV formula and Table III.
 */

#include <gtest/gtest.h>

#include "nn/zoo.h"
#include "pipeline/buffer.h"

namespace isaac::pipeline {
namespace {

nn::LayerDesc
convLayer(int ni, int k, int nx)
{
    nn::LayerDesc d;
    d.kind = nn::LayerKind::Conv;
    d.name = "t";
    d.ni = ni;
    d.no = ni;
    d.nx = d.ny = nx;
    d.kx = d.ky = k;
    d.px = d.py = (k - 1) / 2;
    return d;
}

TEST(Buffer, SectionIvFormula)
{
    // ((Nx*(Ky-1)) + Kx) * Nif values.
    const auto l = convLayer(16, 4, 12);
    EXPECT_EQ(pipelinedBufferValues(l), (12 * 3 + 4) * 16);
    EXPECT_EQ(pipelinedBufferBytes(l), (12 * 3 + 4) * 16 * 2);
    EXPECT_EQ(unpipelinedBufferBytes(l), 12 * 12 * 16 * 2);
}

TEST(Buffer, Fig3Example)
{
    // 6x6 input feature map with a 2x2 kernel: one full row plus two
    // values must be buffered before the first output can fire.
    const auto l = convLayer(1, 2, 6);
    EXPECT_EQ(pipelinedBufferValues(l), 6 * 1 + 2);
}

struct TableIIIRow
{
    int ni, k, nx;
    double pipelinedKB;   // published
    double unpipelinedKB; // published
};

class TableIII : public ::testing::TestWithParam<TableIIIRow> {};

TEST_P(TableIII, PublishedNumbersReproduce)
{
    const auto row = GetParam();
    const auto l = convLayer(row.ni, row.k, row.nx);
    EXPECT_NEAR(paperTablePipelinedKB(l), row.pipelinedKB,
                0.03 * row.pipelinedKB + 0.5);
    EXPECT_NEAR(paperTableUnpipelinedKB(l), row.unpipelinedKB,
                0.02 * row.unpipelinedKB + 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIII,
    ::testing::Values(
        // (Ni, k, Nx, pipelined KB, unpipelined KB) from Table III.
        TableIIIRow{3, 3, 224, 1.96, 147},
        TableIIIRow{96, 7, 112, 74, 1176},
        TableIIIRow{64, 3, 112, 21, 784},
        TableIIIRow{128, 3, 56, 21, 392},
        TableIIIRow{256, 3, 28, 21, 196},
        TableIIIRow{384, 3, 28, 32, 294},
        TableIIIRow{512, 3, 14, 21, 98},
        TableIIIRow{768, 3, 14, 32, 150},
        TableIIIRow{142, 11, 32, 48, 142},
        TableIIIRow{63, 9, 16, 8.8, 15.75},
        TableIIIRow{55, 9, 16, 7.7, 13.57},
        TableIIIRow{25, 7, 16, 2.7, 6.25}));

TEST(Buffer, NoLayerNeedsMoreThan74KB)
{
    // Sec. VIII-A: with pipelining no convolutional layer needs more
    // than 74 KB of input buffering (basis for the 64 KB per-tile
    // eDRAM). Classifier layers buffer their whole input but always
    // span many tiles.
    for (const auto &net : nn::allBenchmarks()) {
        for (const auto &l : net.layers()) {
            if (l.kind != nn::LayerKind::Conv)
                continue;
            EXPECT_LE(paperTablePipelinedKB(l), 74.5)
                << net.name() << " / " << l.name;
        }
    }
}

TEST(Buffer, ReductionIsRoughlyNyOverKy)
{
    // Sec. IV: "pipelining helps reduce the buffering requirement by
    // approximately Ny / Ky" -- the exact value lands between
    // Ny / Ky and Ny / (Ky - 1).
    const auto l = convLayer(64, 3, 112);
    const double r = pipelineBufferReduction(l);
    EXPECT_GE(r, 112.0 / 3.0);
    EXPECT_LE(r, 112.0 / 2.0);
}

TEST(Buffer, ClassifierBuffersWholeInput)
{
    nn::LayerDesc d;
    d.kind = nn::LayerKind::Classifier;
    d.name = "fc";
    d.ni = 512;
    d.no = 4096;
    d.nx = d.ny = 7;
    d.kx = d.ky = 7;
    EXPECT_EQ(pipelinedBufferBytes(d), 512LL * 49 * 2);
}

} // namespace
} // namespace isaac::pipeline
