/**
 * @file
 * Placement tests: every planned crossbar and buffer byte must land
 * on a physical IMA / eDRAM, layers stay contiguous, and IMAs stay
 * single-layer.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/zoo.h"
#include "pipeline/placement.h"

namespace isaac::pipeline {
namespace {

const arch::IsaacConfig kCE = arch::IsaacConfig::isaacCE();

TEST(Placement, TinyCnnPlacesEverything)
{
    const auto net = nn::tinyCnn();
    const auto plan = planPipeline(net, kCE, 1);
    const auto placement = Placement::build(net, plan, kCE);

    ASSERT_EQ(placement.layers().size(), 2u); // two dot layers
    for (const auto &lp : placement.layers()) {
        const auto &planned = plan.layers[lp.layerIdx];
        EXPECT_EQ(lp.xbarsPlaced, planned.xbars);
        EXPECT_EQ(lp.bufferBytesPlaced, planned.bufferBytes);
        EXPECT_FALSE(lp.tiles.empty());
    }
}

TEST(Placement, EveryBenchmarkPlacesWhenItFits)
{
    for (const auto &net : nn::allBenchmarks()) {
        for (int chips : {16, 64}) {
            const auto plan = planPipeline(net, kCE, chips);
            if (!plan.fits)
                continue;
            const auto placement =
                Placement::build(net, plan, kCE);
            std::int64_t placed = 0, buffered = 0, wantedBuf = 0;
            for (const auto &lp : placement.layers()) {
                placed += lp.xbarsPlaced;
                buffered += lp.bufferBytesPlaced;
                wantedBuf += plan.layers[lp.layerIdx].bufferBytes;
            }
            EXPECT_EQ(placed, plan.xbarsUsed)
                << net.name() << " @ " << chips;
            EXPECT_EQ(buffered, wantedBuf)
                << net.name() << " @ " << chips;
        }
    }
}

TEST(Placement, ImasServeOneLayer)
{
    const auto net = nn::vgg(1);
    const auto plan = planPipeline(net, kCE, 16);
    const auto placement = Placement::build(net, plan, kCE);
    for (const auto &chip : placement.chips()) {
        for (const auto &tile : chip.tiles()) {
            for (const auto &ima : tile.imas()) {
                // Ownership is either empty or a valid dot layer.
                if (ima.layer()) {
                    EXPECT_TRUE(
                        net.layer(*ima.layer()).isDotProduct());
                }
            }
        }
    }
}

TEST(Placement, LayersAreContiguousRunsPerChip)
{
    // Every chip hosts a vertical slice of the whole pipeline;
    // within one chip each layer's IMA span is a single contiguous
    // run in network order (pipeline neighbours sit together, which
    // keeps the inter-layer traffic local).
    const auto net = nn::vgg(2);
    const auto plan = planPipeline(net, kCE, 16);
    const auto placement = Placement::build(net, plan, kCE);

    for (const auto &chip : placement.chips()) {
        std::vector<std::size_t> sequence;
        for (const auto &tile : chip.tiles()) {
            for (const auto &ima : tile.imas()) {
                if (!ima.layer())
                    continue;
                if (sequence.empty() ||
                    sequence.back() != *ima.layer()) {
                    sequence.push_back(*ima.layer());
                }
            }
        }
        auto sorted = sequence;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                  sorted.end())
            << "chip " << chip.id();
        EXPECT_TRUE(
            std::is_sorted(sequence.begin(), sequence.end()))
            << "chip " << chip.id();
        // Every dot layer is present on every chip.
        EXPECT_EQ(sequence.size(),
                  static_cast<std::size_t>(net.weightLayerCount()))
            << "chip " << chip.id();
    }
}

TEST(Placement, TilesUsedMatchesReport)
{
    const auto net = nn::tinyCnn();
    const auto plan = planPipeline(net, kCE, 1);
    const auto placement = Placement::build(net, plan, kCE);
    EXPECT_GT(placement.tilesUsed(), 0);
    EXPECT_LE(placement.tilesUsed(), 168);
}

TEST(Placement, RefusesUnfitPlan)
{
    const auto net = nn::largeDnn();
    const auto plan = planPipeline(net, kCE, 8);
    ASSERT_FALSE(plan.fits);
    EXPECT_THROW(Placement::build(net, plan, kCE), FatalError);
}

} // namespace
} // namespace isaac::pipeline
