/**
 * @file
 * Execution-plan IR lowering tests: node/edge shape for every Table
 * II benchmark, topological validity, node-id stability across
 * recompiles, resource annotation from the pipeline plan, and
 * IR-walk vs legacy layer-loop equivalence on TinyCNN and VGG-1.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/accelerator.h"
#include "nn/reference.h"
#include "nn/zoo.h"
#include "pipeline/execution_plan.h"
#include "pipeline/replication.h"

namespace isaac::pipeline {
namespace {

/** Expected node count: dot layers lower to 4 steps, others to 1. */
std::size_t
expectedNodes(const nn::Network &net)
{
    std::size_t nodes = 0;
    for (std::size_t i = 0; i < net.size(); ++i)
        nodes += net.layer(i).isDotProduct() ? 4 : 1;
    return nodes;
}

/** Expected edges: 3 intra-layer per dot chain + 1 between layers. */
std::size_t
expectedEdges(const nn::Network &net)
{
    std::size_t edges = net.size() - 1;
    for (std::size_t i = 0; i < net.size(); ++i)
        if (net.layer(i).isDotProduct())
            edges += 3;
    return edges;
}

TEST(ExecutionPlan, TableIINetworksLowerToExpectedShape)
{
    for (const auto &net : nn::allBenchmarks()) {
        SCOPED_TRACE(net.name());
        const auto ir = ExecutionPlan::lower(net);
        EXPECT_EQ(ir.size(), expectedNodes(net));
        EXPECT_EQ(ir.edgeCount(), expectedEdges(net));
        EXPECT_EQ(ir.computeOrder().size(), net.size());
        EXPECT_FALSE(ir.annotated());
        EXPECT_TRUE(ir.topologicallyOrdered());

        // Per-layer chain shape and stream keying.
        for (std::size_t i = 0; i < net.size(); ++i) {
            const int computeId = ir.computeOrder()[i];
            const auto &compute = ir.node(computeId);
            EXPECT_TRUE(compute.compute);
            EXPECT_EQ(compute.layer, i);
            if (net.layer(i).isDotProduct()) {
                EXPECT_EQ(compute.kind, StepKind::Dot);
                const auto &in = ir.node(computeId - 1);
                const auto &out = ir.node(computeId + 1);
                const auto &tr = ir.node(computeId + 2);
                EXPECT_EQ(in.kind, StepKind::StageIn);
                EXPECT_EQ(out.kind, StepKind::StageOut);
                EXPECT_EQ(tr.kind, StepKind::Transfer);
                EXPECT_EQ(in.transferKind, 0);
                EXPECT_EQ(out.transferKind, 1);
                EXPECT_EQ(tr.transferKind, 2);
                EXPECT_EQ(compute.transferKind, -1);
                EXPECT_FALSE(in.layerOutput);
                EXPECT_FALSE(compute.layerOutput);
                EXPECT_FALSE(out.layerOutput);
                EXPECT_TRUE(tr.layerOutput);
            } else {
                EXPECT_EQ(compute.kind, StepKind::Pool);
                EXPECT_TRUE(compute.layerOutput);
            }
        }

        // Exactly one layerOutput node per layer, in layer order.
        std::size_t outputs = 0;
        for (const auto &n : ir.nodes()) {
            if (n.layerOutput) {
                EXPECT_EQ(n.layer, outputs);
                ++outputs;
            }
        }
        EXPECT_EQ(outputs, net.size());
    }
}

TEST(ExecutionPlan, NodeIdsAreStableAcrossRecompiles)
{
    const auto net = nn::tinyCnn();
    const auto a = ExecutionPlan::lower(net);
    const auto b = ExecutionPlan::lower(net);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto &na = a.nodes()[i];
        const auto &nb = b.nodes()[i];
        EXPECT_EQ(na.id, static_cast<int>(i));
        EXPECT_EQ(na.id, nb.id);
        EXPECT_EQ(na.kind, nb.kind);
        EXPECT_EQ(na.layer, nb.layer);
        EXPECT_EQ(na.transferKind, nb.transferKind);
        EXPECT_EQ(na.producers, nb.producers);
        EXPECT_EQ(na.consumers, nb.consumers);
    }

    // The same holds through the compiled-model front door (the
    // annotated lowering), run twice.
    const auto weights = nn::WeightStore::synthesize(net, 3);
    core::Accelerator acc;
    const auto m1 = acc.compile(net, weights);
    const auto m2 = acc.compile(net, weights);
    ASSERT_EQ(m1.executionPlan().size(), m2.executionPlan().size());
    for (std::size_t i = 0; i < m1.executionPlan().size(); ++i) {
        EXPECT_EQ(m1.executionPlan().nodes()[i].id,
                  m2.executionPlan().nodes()[i].id);
        EXPECT_EQ(m1.executionPlan().nodes()[i].kind,
                  m2.executionPlan().nodes()[i].kind);
    }
}

TEST(ExecutionPlan, AnnotatedLoweringCarriesPlanResources)
{
    const auto net = nn::tinyCnn();
    arch::IsaacConfig cfg;
    const auto plan = planPipeline(net, cfg, 1);
    const auto ir = ExecutionPlan::lower(net, plan);
    ASSERT_TRUE(ir.annotated());
    EXPECT_TRUE(ir.topologicallyOrdered());

    for (const auto &n : ir.nodes()) {
        const auto &lp = plan.layers[n.layer];
        if (!net.layer(n.layer).isDotProduct())
            continue;
        EXPECT_EQ(n.replication, lp.replication);
        EXPECT_EQ(n.tiles, lp.tiles);
        EXPECT_GT(n.tiles, 0);
        if (n.kind == StepKind::StageIn)
            EXPECT_EQ(n.bufferBytes, lp.bufferBytes);
        if (n.kind == StepKind::Dot) {
            const auto &l = net.layer(n.layer);
            EXPECT_EQ(n.engineGroups,
                      l.privateKernel ? l.windowsPerImage() : 1);
        }
    }
}

TEST(ExecutionPlan, MismatchedPlanIsFatal)
{
    const auto net = nn::tinyCnn();
    arch::IsaacConfig cfg;
    auto plan = planPipeline(net, cfg, 1);
    plan.layers.pop_back();
    EXPECT_THROW(ExecutionPlan::lower(net, plan), FatalError);
}

TEST(ExecutionPlan, WindowReadyTimesValidatesProducerShape)
{
    const auto net = nn::tinyCnn();
    const auto ir = ExecutionPlan::lower(net);

    // First layer: no producer, all-zero ready times.
    const auto &first = ir.node(ir.computeOrder()[0]);
    const auto &l0 = net.layer(0);
    const auto ready0 = ir.windowReadyTimes(first, {}, 1);
    EXPECT_EQ(ready0.size(),
              static_cast<std::size_t>(l0.outNx()) * l0.outNy());
    for (const Cycle c : ready0)
        EXPECT_EQ(c, 0);

    // Later layer with a wrong-sized completion array is fatal.
    const auto &second = ir.node(ir.computeOrder()[1]);
    const std::vector<Cycle> bogus(3, 1);
    EXPECT_THROW(
        ir.windowReadyTimes(
            second, std::span<const Cycle>(bogus), 1),
        FatalError);
}

/** IR walk (runAll) must equal the legacy per-layer loop exactly. */
void
expectIrWalkMatchesLayerLoop(const nn::Network &net,
                             std::uint64_t seed)
{
    const auto weights = nn::WeightStore::synthesize(net, seed);
    const FixedFormat fmt{12};
    const nn::ReferenceExecutor ref(net, weights, fmt);
    const auto &l0 = net.layer(0);
    const auto input =
        nn::synthesizeInput(l0.ni, l0.nx, l0.ny, seed + 1, fmt);

    // Legacy walk: the hand-rolled layer loop runAll() used to be.
    std::vector<nn::Tensor> want;
    nn::Tensor cur = input;
    for (std::size_t i = 0; i < net.size(); ++i) {
        cur = ref.runLayer(i, cur);
        want.push_back(cur);
    }

    const auto got = ref.runAll(input);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].raw(), want[i].raw())
            << net.name() << " layer " << i;
    }
    EXPECT_EQ(ref.run(input).raw(), want.back().raw());
}

TEST(ExecutionPlan, IrWalkMatchesLegacyWalkOnTinyCnn)
{
    expectIrWalkMatchesLayerLoop(nn::tinyCnn(), 11);
}

TEST(ExecutionPlan, IrWalkMatchesLegacyWalkOnVgg1)
{
    expectIrWalkMatchesLayerLoop(nn::vgg(1), 5);
}

} // namespace
} // namespace isaac::pipeline
