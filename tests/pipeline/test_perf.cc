/**
 * @file
 * ISAAC analytic performance-model tests.
 */

#include <gtest/gtest.h>

#include "nn/zoo.h"
#include "pipeline/perf.h"

namespace isaac::pipeline {
namespace {

const arch::IsaacConfig kCE = arch::IsaacConfig::isaacCE();

TEST(IsaacPerf, PipeliningSpeedsUpVgg1Roughly16x)
{
    // Sec. VIII-A: "VGG-1 has 16 layers and the pipelined version is
    // able to achieve a throughput improvement of 16x over an
    // unpipelined version of ISAAC." The paper's factor assumes all
    // 16 layers take equal time; in our model the classifier and
    // pooling layers are much faster than the conv layers, so the
    // factor tracks the nine balanced conv layers (~8-9x) rather
    // than the full layer count. It must stay the same order.
    const auto net = nn::vgg(1);
    const auto perf = analyzeIsaac(net, kCE, 16);
    const double speedup =
        perf.unpipelinedCyclesPerImage / perf.cyclesPerImage;
    EXPECT_GT(speedup, 6.0);
    EXPECT_LT(speedup, 22.0);
}

TEST(IsaacPerf, PipeliningSavesHtEnergy)
{
    // The unpipelined run takes longer, so the constant HT power
    // integrates to more energy (Sec. VIII-A).
    const auto net = nn::vgg(1);
    const auto perf = analyzeIsaac(net, kCE, 16);
    EXPECT_GT(perf.unpipelinedEnergyPerImageJ,
              perf.energyPerImageJ);
}

TEST(IsaacPerf, ThroughputScalesWithChips)
{
    const auto net = nn::vgg(2);
    const auto p16 = analyzeIsaac(net, kCE, 16);
    const auto p64 = analyzeIsaac(net, kCE, 64);
    EXPECT_GT(p64.imagesPerSec, 2.0 * p16.imagesPerSec);
    EXPECT_LE(p64.imagesPerSec, 8.0 * p16.imagesPerSec + 1);
}

TEST(IsaacPerf, PowerBoundedByFullChips)
{
    for (const auto &net : nn::allBenchmarks()) {
        const auto perf = analyzeIsaac(net, kCE, 64);
        if (!perf.fits)
            continue;
        const energy::IsaacEnergyModel m(kCE);
        EXPECT_LE(perf.powerW, 64.0 * m.chipPowerW() * 1.001)
            << net.name();
        EXPECT_GT(perf.powerW, 64.0 * m.htPowerW() * 0.99)
            << net.name();
    }
}

TEST(IsaacPerf, UtilizationIsAFraction)
{
    for (const auto &net : nn::allBenchmarks()) {
        const auto perf = analyzeIsaac(net, kCE, 64);
        if (!perf.fits)
            continue;
        EXPECT_GT(perf.macUtilization, 0.0) << net.name();
        EXPECT_LE(perf.macUtilization, 1.0 + 1e-6) << net.name();
    }
}

TEST(IsaacPerf, ActivityEnergyBelowPowerBasedEnergy)
{
    // Activity accounting charges only switching events; it must be
    // a lower bound on the full-tile-power figure.
    for (const auto &net : nn::allBenchmarks()) {
        const auto perf = analyzeIsaac(net, kCE, 64);
        if (!perf.fits)
            continue;
        EXPECT_LT(perf.activity.totalJ(),
                  perf.energyPerImageJ * 1.05)
            << net.name();
        EXPECT_GT(perf.activity.totalJ(), 0.0);
    }
}

TEST(IsaacPerf, AdcAndXbarDominateActivityEnergy)
{
    // The ADC is the dominant dynamic consumer (Sec. VIII-A); within
    // the activity accounting ADC+DAC+crossbar must dwarf the
    // digital helpers.
    const auto net = nn::vgg(1);
    const auto perf = analyzeIsaac(net, kCE, 16);
    const auto &a = perf.activity;
    EXPECT_GT(a.adcJ + a.dacJ + a.xbarJ, 5.0 * a.digitalJ);
}

TEST(IsaacPerf, InputIoCapsDeliveredThroughput)
{
    // Image delivery through the I/O interface is capped at the
    // HyperTransport budget; throughput reports never exceed it.
    const double htBudget = kCE.htLinks * kCE.htLinkGBps;
    for (const auto &net : nn::allBenchmarks()) {
        const auto perf = analyzeIsaac(net, kCE, 16);
        if (!perf.fits)
            continue;
        EXPECT_GT(perf.inputIoGBps, 0.0) << net.name();
        EXPECT_LE(perf.inputIoGBps, htBudget + 1e-9) << net.name();
    }

    // DeepFace's small, shallow frames make its crossbar pipeline
    // outrun the interface: it is I/O-bound at 16 chips, and the
    // cap engages.
    const auto df = analyzeIsaac(nn::deepFace(), kCE, 16);
    EXPECT_TRUE(df.ioBound);
    EXPECT_NEAR(df.inputIoGBps, htBudget, 0.1);
    // The big ImageNet CNNs are compute-bound.
    EXPECT_FALSE(analyzeIsaac(nn::vgg(1), kCE, 16).ioBound);
}

TEST(IsaacPerf, UnfittingNetworkIsFlagged)
{
    const auto net = nn::largeDnn();
    const auto perf = analyzeIsaac(net, kCE, 8);
    EXPECT_FALSE(perf.fits);
    EXPECT_EQ(perf.imagesPerSec, 0.0);
}

} // namespace
} // namespace isaac::pipeline
