/**
 * @file
 * Concentrated-mesh tests: concentration, XY routing, link loads,
 * and cross-chip HyperTransport accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "noc/cmesh.h"

namespace isaac::noc {
namespace {

const arch::IsaacConfig kCfg = arch::IsaacConfig::isaacCE();

TEST(CMesh, RouterGridIsHalfTheTileGrid)
{
    CMesh mesh(kCfg, 1);
    // 14x12 tiles -> 7x6 routers (2x2 concentration).
    EXPECT_EQ(mesh.routerCols(), 7);
    EXPECT_EQ(mesh.routerRows(), 6);
}

TEST(CMesh, FourTilesShareARouter)
{
    CMesh mesh(kCfg, 1);
    const auto r = mesh.routerOf({0, 4, 6});
    EXPECT_EQ(mesh.routerOf({0, 5, 6}), r);
    EXPECT_EQ(mesh.routerOf({0, 4, 7}), r);
    EXPECT_EQ(mesh.routerOf({0, 5, 7}), r);
    EXPECT_NE(mesh.routerOf({0, 6, 6}), r);
}

TEST(CMesh, IntraRouterFlowUsesNoLinks)
{
    CMesh mesh(kCfg, 1);
    mesh.addFlow({0, 0, 0}, {0, 1, 1}, 2.0);
    EXPECT_EQ(mesh.maxLinkLoadGBps(), 0.0);
    EXPECT_EQ(mesh.hopGBps(), 0.0);
}

TEST(CMesh, XyRoutingTakesManhattanHops)
{
    CMesh mesh(kCfg, 1);
    // Tile (0,0) router (0,0) -> tile (8,6) router (4,3): 7 hops.
    mesh.addFlow({0, 0, 0}, {0, 8, 6}, 1.0);
    EXPECT_DOUBLE_EQ(mesh.hopGBps(), 7.0);
    EXPECT_DOUBLE_EQ(mesh.maxLinkLoadGBps(), 1.0);
    // Every traversed link carries exactly the flow.
    for (const auto &[link, load] : mesh.linkLoads())
        EXPECT_DOUBLE_EQ(load, 1.0);
}

TEST(CMesh, FlowsAccumulateOnSharedLinks)
{
    CMesh mesh(kCfg, 1);
    mesh.addFlow({0, 0, 0}, {0, 4, 0}, 1.5);
    mesh.addFlow({0, 0, 0}, {0, 4, 0}, 1.0);
    EXPECT_DOUBLE_EQ(mesh.maxLinkLoadGBps(), 2.5);
}

TEST(CMesh, CrossChipUsesHt)
{
    CMesh mesh(kCfg, 2);
    mesh.addFlow({0, 2, 2}, {1, 2, 2}, 3.0);
    EXPECT_DOUBLE_EQ(mesh.htLoadGBps(0), 3.0);
    EXPECT_DOUBLE_EQ(mesh.htLoadGBps(1), 3.0);
    EXPECT_DOUBLE_EQ(mesh.maxHtLoadGBps(), 3.0);
    // On-chip legs to/from the I/O routers exist on both chips.
    EXPECT_GT(mesh.hopGBps(), 0.0);
}

TEST(CMesh, SchedulabilityFollowsCapacity)
{
    CMesh mesh(kCfg, 1);
    mesh.addFlow({0, 0, 0}, {0, 4, 0}, kCfg.cmeshLinkGBps - 0.5);
    EXPECT_TRUE(mesh.schedulable());
    mesh.addFlow({0, 0, 0}, {0, 4, 0}, 1.0);
    EXPECT_FALSE(mesh.schedulable());
}

TEST(CMesh, HtOverloadBreaksSchedule)
{
    CMesh mesh(kCfg, 2);
    mesh.addFlow({0, 0, 0}, {1, 0, 0},
                 mesh.htCapacityGBps() + 1.0);
    EXPECT_FALSE(mesh.schedulable());
}

TEST(CMesh, BoardGridRoutesMultiHop)
{
    // 16 chips form a 4x4 board; chip 0 -> chip 15 takes 3 + 3 HT
    // hops, loading every link on the path.
    CMesh mesh(kCfg, 16);
    EXPECT_EQ(mesh.boardCols(), 4);
    EXPECT_EQ(mesh.boardRows(), 4);
    mesh.addFlow({0, 0, 0}, {15, 0, 0}, 2.0);
    EXPECT_DOUBLE_EQ(mesh.maxHtLinkGBps(), 2.0);
    EXPECT_TRUE(mesh.schedulable());
}

TEST(CMesh, SingleHtLinkSaturates)
{
    // One 6.4 GB/s link between adjacent chips is the board-level
    // bottleneck even though the aggregate per-chip HT budget
    // (4 links) is larger.
    CMesh mesh(kCfg, 4);
    mesh.addFlow({0, 0, 0}, {1, 0, 0},
                 mesh.htLinkCapacityGBps() + 0.5);
    EXPECT_GT(mesh.maxHtLinkGBps(), mesh.htLinkCapacityGBps());
    EXPECT_LT(mesh.maxHtLoadGBps(), mesh.htCapacityGBps());
    EXPECT_FALSE(mesh.schedulable());
}

TEST(CMesh, RejectsBadArguments)
{
    EXPECT_THROW(CMesh(kCfg, 0), FatalError);
    CMesh mesh(kCfg, 1);
    EXPECT_THROW(mesh.routerOf({1, 0, 0}), FatalError);
    EXPECT_THROW(mesh.addFlow({0, 0, 0}, {0, 1, 0}, -1.0),
                 FatalError);
    EXPECT_THROW(mesh.htLoadGBps(5), FatalError);
}

} // namespace
} // namespace isaac::noc
