/**
 * @file
 * CRC-tagged packet transport: CRC correctness, the
 * retransmit-and-backoff protocol, the per-link corruption budget,
 * and determinism of the whole state machine.
 */

#include <gtest/gtest.h>

#include <array>

#include "noc/packet.h"

namespace isaac::noc {
namespace {

TEST(Crc, MatchesKnownVector)
{
    // CRC32("123456789") is the classic check value 0xCBF43926.
    const std::array<std::uint8_t, 9> check = {'1', '2', '3', '4',
                                               '5', '6', '7', '8',
                                               '9'};
    EXPECT_EQ(crc32(check), 0xCBF43926u);
}

TEST(Crc, WordTagSeesEveryBit)
{
    std::vector<Word> payload(32, 0);
    const auto base = crc32Words(payload);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        for (int b = 0; b < 16; ++b) {
            auto tampered = payload;
            tampered[i] = static_cast<Word>(
                static_cast<std::uint16_t>(tampered[i]) ^ (1u << b));
            EXPECT_NE(crc32Words(tampered), base)
                << "word " << i << " bit " << b;
        }
    }
}

TEST(Packet, CleanChannelNeverRetries)
{
    resilience::TransientSpec spec;
    spec.packetCorruptRate = 0.0;
    LinkState link;
    resilience::TransientStats stats;
    const auto r = sendTransfer(1000, 7, spec, link, stats);
    EXPECT_EQ(r.packets,
              static_cast<std::uint64_t>(
                  (1000 + spec.wordsPerPacket - 1) /
                  spec.wordsPerPacket));
    EXPECT_EQ(stats.packetsSent, r.packets);
    EXPECT_EQ(stats.packetsCorrupted, 0u);
    EXPECT_EQ(stats.packetsRetransmitted, 0u);
    EXPECT_EQ(stats.packetBackoffCycles, 0u);
    EXPECT_EQ(stats.deadLinks, 0u);
    EXPECT_FALSE(link.dead);
}

TEST(Packet, AlwaysCorruptChannelExhaustsRetriesAndKillsLink)
{
    resilience::TransientSpec spec;
    spec.packetCorruptRate = 1.0;
    spec.maxPacketRetries = 3;
    spec.linkRetryBudget = 5;
    spec.packetBackoffCycles = 2;
    LinkState link;
    resilience::TransientStats stats;
    const auto r = sendTransfer(2 * spec.wordsPerPacket, 3, spec,
                                link, stats);
    // Packet 0 burns the whole retry budget (1 + 3 transmissions,
    // all corrupted), crossing the link budget mid-flight.
    EXPECT_TRUE(link.dead);
    EXPECT_TRUE(r.linkDied);
    EXPECT_EQ(stats.deadLinks, 1u);
    EXPECT_GE(stats.packetsUncorrected, 0u);
    EXPECT_GT(stats.packetsCorrupted, 0u);
    // Exponential backoff: attempts 0..k charge base << attempt.
    EXPECT_GT(stats.packetBackoffCycles, 0u);
    // A dead link still accounts the remaining packets (they ship
    // on the migrated route).
    EXPECT_GE(stats.packetsSent, r.packets);
}

TEST(Packet, BackoffDoublesPerAttempt)
{
    resilience::TransientSpec spec;
    spec.packetCorruptRate = 1.0;
    spec.maxPacketRetries = 3;
    spec.linkRetryBudget = 1000; // never dies here
    spec.packetBackoffCycles = 2;
    spec.wordsPerPacket = 8;
    LinkState link;
    resilience::TransientStats stats;
    sendTransfer(8, 11, spec, link, stats); // exactly one packet
    // Retries at attempts 0, 1, 2 charge 2 + 4 + 8 cycles; the
    // fourth transmission exhausts the budget.
    EXPECT_EQ(stats.packetsSent, 4u);
    EXPECT_EQ(stats.packetsRetransmitted, 3u);
    EXPECT_EQ(stats.packetBackoffCycles, 2u + 4u + 8u);
    EXPECT_EQ(stats.packetsUncorrected, 1u);
    EXPECT_FALSE(link.dead);
}

TEST(Packet, DeterministicPerSeedAndKey)
{
    resilience::TransientSpec spec;
    spec.packetCorruptRate = 0.2;
    spec.seed = 1234;
    for (int rep = 0; rep < 3; ++rep) {
        LinkState a, b;
        resilience::TransientStats sa, sb;
        for (std::uint64_t key = 0; key < 20; ++key) {
            sendTransfer(100, key, spec, a, sa);
            sendTransfer(100, key, spec, b, sb);
        }
        EXPECT_EQ(sa, sb);
        EXPECT_EQ(a.corrupted, b.corrupted);
        EXPECT_EQ(a.dead, b.dead);
    }
}

TEST(Packet, DeadLinkInjectsNothingFurther)
{
    resilience::TransientSpec spec;
    spec.packetCorruptRate = 1.0;
    spec.maxPacketRetries = 0;
    spec.linkRetryBudget = 1;
    LinkState link;
    resilience::TransientStats stats;
    sendTransfer(10 * spec.wordsPerPacket, 1, spec, link, stats);
    ASSERT_TRUE(link.dead);
    const auto corruptedBefore = stats.packetsCorrupted;
    sendTransfer(10 * spec.wordsPerPacket, 2, spec, link, stats);
    EXPECT_EQ(stats.packetsCorrupted, corruptedBefore);
    EXPECT_EQ(stats.deadLinks, 1u);
}

} // namespace
} // namespace isaac::noc
