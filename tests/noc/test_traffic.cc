/**
 * @file
 * Inter-layer traffic tests: the statically scheduled c-mesh must
 * carry every benchmark's steady-state traffic, and the paper's
 * Sec. VIII-A estimate ("the inter-tile link bandwidth requirement
 * never exceeds 3.2 GB/s") must reproduce as the per-tile egress
 * bound.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/zoo.h"
#include "noc/traffic.h"
#include "pipeline/perf.h"

namespace isaac::noc {
namespace {

const arch::IsaacConfig kCE = arch::IsaacConfig::isaacCE();

TrafficReport
reportFor(const nn::Network &net, int chips)
{
    const auto plan = pipeline::planPipeline(net, kCE, chips);
    const auto placement = pipeline::Placement::build(net, plan, kCE);
    return analyzeTraffic(net, plan, placement, kCE);
}

TEST(Traffic, Vgg1At16ChipsIsStaticallySchedulable)
{
    const auto report = reportFor(nn::vgg(1), 16);
    EXPECT_TRUE(report.schedulable);
    EXPECT_LE(report.maxLinkGBps, report.linkCapacityGBps + 1e-9);
    EXPECT_LE(report.maxHtGBps, report.htCapacityGBps + 1e-9);
}

TEST(Traffic, TileEgressStaysUnderPaperBound)
{
    // Sec. VIII-A: no tile needs to source more than 3.2 GB/s.
    for (const auto &net : nn::allBenchmarks()) {
        const auto plan = pipeline::planPipeline(net, kCE, 16);
        if (!plan.fits)
            continue;
        const auto placement =
            pipeline::Placement::build(net, plan, kCE);
        const auto report =
            analyzeTraffic(net, plan, placement, kCE);
        EXPECT_LE(report.maxTileEgressGBps, 3.2) << net.name();
    }
}

TEST(Traffic, HotLinksStayWithinTwiceCapacity)
{
    // The contiguous-slice placement leaves a few hot links on the
    // deep VGG variants; they stay within 2x the 4 GB/s links (a
    // smarter placement or one extra link lane absorbs them).
    for (const auto &net : nn::allBenchmarks()) {
        const auto plan = pipeline::planPipeline(net, kCE, 16);
        if (!plan.fits)
            continue;
        const auto placement =
            pipeline::Placement::build(net, plan, kCE);
        const auto report =
            analyzeTraffic(net, plan, placement, kCE);
        EXPECT_LE(report.maxLinkGBps,
                  2.0 * report.linkCapacityGBps)
            << net.name();
    }
}

TEST(Traffic, HyperTransportIsNeverTheBottleneck)
{
    // The per-chip vertical slicing keeps inter-layer traffic
    // on-chip; HT carries only the slices' residual coupling.
    for (const auto &net : nn::allBenchmarks()) {
        const auto plan = pipeline::planPipeline(net, kCE, 16);
        if (!plan.fits)
            continue;
        const auto placement =
            pipeline::Placement::build(net, plan, kCE);
        const auto report =
            analyzeTraffic(net, plan, placement, kCE);
        EXPECT_LT(report.maxHtGBps, 0.5 * report.htCapacityGBps)
            << net.name();
    }
}

TEST(Traffic, NocEnergyIsSmallAgainstTileEnergy)
{
    // The c-mesh routers move the inter-layer data for a tiny cost
    // relative to the analog datapath (Table I: routers are ~3% of
    // tile power).
    const auto net = nn::vgg(1);
    const auto plan = pipeline::planPipeline(net, kCE, 16);
    const auto placement = pipeline::Placement::build(net, plan, kCE);
    const auto report = analyzeTraffic(net, plan, placement, kCE);
    const auto perf = pipeline::analyzeIsaac(net, kCE, 16);
    EXPECT_GT(report.nocEnergyPerImageJ, 0.0);
    EXPECT_LT(report.nocEnergyPerImageJ,
              0.05 * perf.energyPerImageJ);
}

TEST(Traffic, RatesScaleWithThroughput)
{
    const auto net = nn::vgg(1);
    const auto r16 = reportFor(net, 16);
    const auto r64 = reportFor(net, 64);
    // 4x the chips -> higher image rate -> more layer bandwidth.
    EXPECT_GT(r64.maxLayerRateGBps, r16.maxLayerRateGBps);
}

TEST(Traffic, RefusesUnfitPlan)
{
    const auto net = nn::largeDnn();
    const auto plan = pipeline::planPipeline(net, kCE, 8);
    ASSERT_FALSE(plan.fits);
    const auto tinyPlan =
        pipeline::planPipeline(nn::tinyCnn(), kCE, 1);
    const auto placementDummy =
        pipeline::Placement::build(nn::tinyCnn(), tinyPlan, kCE);
    EXPECT_THROW(analyzeTraffic(net, plan, placementDummy, kCE),
                 FatalError);
}

} // namespace
} // namespace isaac::noc
