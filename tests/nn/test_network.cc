/**
 * @file
 * Network and builder tests: dimension chaining and aggregates.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/network.h"

namespace isaac::nn {
namespace {

TEST(NetworkBuilder, ChainsShapes)
{
    NetworkBuilder b("t", 3, 32, 32);
    b.conv(3, 8); // same padding keeps 32x32
    EXPECT_EQ(b.curChannels(), 8);
    EXPECT_EQ(b.curRows(), 32);
    b.maxPool(2, 2);
    EXPECT_EQ(b.curRows(), 16);
    b.conv(5, 16, 1, 0); // valid: 16 -> 12
    EXPECT_EQ(b.curRows(), 12);
    b.fc(10);
    EXPECT_EQ(b.curChannels(), 10);
    EXPECT_EQ(b.curRows(), 1);
    auto net = b.build();
    EXPECT_EQ(net.size(), 4u);
    EXPECT_EQ(net.weightLayerCount(), 3);
}

TEST(NetworkBuilder, FcAfterConvFlattens)
{
    NetworkBuilder b("t", 4, 6, 6);
    b.fc(5);
    auto net = b.build();
    EXPECT_EQ(net.layer(0).dotLength(), 4 * 6 * 6);
    EXPECT_EQ(net.layer(0).weightCount(), 4 * 6 * 6 * 5);
}

TEST(Network, AggregatesSumLayers)
{
    NetworkBuilder b("t", 3, 8, 8);
    b.conv(3, 4, 1, 0); // 8->6, weights 3*3*3*4=108
    b.fc(10);           // weights 4*6*6*10=1440
    auto net = b.build();
    EXPECT_EQ(net.totalWeights(), 108 + 1440);
    EXPECT_EQ(net.totalWeightBytes(), (108 + 1440) * 2);
    const std::int64_t convMacs = 6LL * 6 * 4 * 27;
    const std::int64_t fcMacs = 10LL * 144;
    EXPECT_EQ(net.totalMacs(), convMacs + fcMacs);
    EXPECT_EQ(net.dotProductLayers(), (std::vector<std::size_t>{0, 1}));
}

TEST(Network, RejectsBrokenChain)
{
    LayerDesc a;
    a.kind = LayerKind::Conv;
    a.name = "a";
    a.ni = 3;
    a.no = 8;
    a.nx = a.ny = 8;
    a.kx = a.ky = 3;

    LayerDesc bad = a;
    bad.name = "b";
    bad.ni = 5; // should be 8
    bad.nx = bad.ny = a.outNx();
    EXPECT_THROW(Network("broken", {a, bad}), FatalError);

    LayerDesc badShape = a;
    badShape.name = "c";
    badShape.ni = 8;
    badShape.nx = badShape.ny = 99;
    EXPECT_THROW(Network("broken2", {a, badShape}), FatalError);
}

TEST(Network, RejectsEmpty)
{
    EXPECT_THROW(Network("empty", {}), FatalError);
}

} // namespace
} // namespace isaac::nn
