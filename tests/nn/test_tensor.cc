/**
 * @file
 * Tensor unit tests.
 */

#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace isaac::nn {
namespace {

TEST(Tensor, ZeroInitialized)
{
    Tensor t(2, 3, 4);
    EXPECT_EQ(t.channels(), 2);
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 4);
    EXPECT_EQ(t.size(), 24u);
    for (int c = 0; c < 2; ++c)
        for (int y = 0; y < 3; ++y)
            for (int x = 0; x < 4; ++x)
                EXPECT_EQ(t.at(c, y, x), 0);
}

TEST(Tensor, LayoutIsChannelMajorRowMajor)
{
    Tensor t(2, 2, 3);
    Word v = 1;
    for (int c = 0; c < 2; ++c)
        for (int y = 0; y < 2; ++y)
            for (int x = 0; x < 3; ++x)
                t.at(c, y, x) = v++;
    // Flat order must walk x fastest, then y, then c.
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.flat(i), static_cast<Word>(i + 1));
}

TEST(Tensor, FillSetsEveryElement)
{
    Tensor t(3, 5, 7);
    t.fill(-123);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.flat(i), -123);
}

TEST(Tensor, EmptyTensorHasZeroSize)
{
    Tensor t;
    EXPECT_EQ(t.size(), 0u);
}

} // namespace
} // namespace isaac::nn
