/**
 * @file
 * Model-zoo tests: the Table II networks must match the layer and
 * parameter counts quoted in the paper text.
 */

#include <gtest/gtest.h>

#include "nn/zoo.h"

namespace isaac::nn {
namespace {

TEST(Zoo, VggWeightLayerCounts)
{
    EXPECT_EQ(vgg(1).weightLayerCount(), 11);
    EXPECT_EQ(vgg(2).weightLayerCount(), 13);
    EXPECT_EQ(vgg(3).weightLayerCount(), 16);
    EXPECT_EQ(vgg(4).weightLayerCount(), 19);
}

TEST(Zoo, Vgg1HasSixteenLayersTotal)
{
    // Sec. VIII: "VGG-1 has 16 layers" (11 weight layers + 5 pools),
    // the basis of its 16x pipelining speedup.
    EXPECT_EQ(vgg(1).size(), 16u);
}

TEST(Zoo, VggParameterCounts)
{
    // The paper quotes 138M parameters for the 16-layer VGG net.
    // Config C (our VGG-3) is slightly smaller; config E larger.
    const double m3 = static_cast<double>(vgg(3).totalWeights()) / 1e6;
    const double m4 = static_cast<double>(vgg(4).totalWeights()) / 1e6;
    EXPECT_NEAR(m3, 134.0, 4.0);
    EXPECT_NEAR(m4, 144.0, 4.0);
}

TEST(Zoo, MsraWeightLayerCounts)
{
    // Models A/B/C: 19 / 22 / 22 weight layers.
    EXPECT_EQ(msra(1).weightLayerCount(), 19);
    EXPECT_EQ(msra(2).weightLayerCount(), 22);
    EXPECT_EQ(msra(3).weightLayerCount(), 22);
}

TEST(Zoo, MsraParameterCounts)
{
    // Paper: model A 178M, model B 183M, model C 330M parameters.
    const double a = static_cast<double>(msra(1).totalWeights()) / 1e6;
    const double b = static_cast<double>(msra(2).totalWeights()) / 1e6;
    const double c = static_cast<double>(msra(3).totalWeights()) / 1e6;
    EXPECT_NEAR(a, 178.0, 8.0);
    EXPECT_NEAR(b, 183.0, 8.0);
    EXPECT_NEAR(c, 330.0, 20.0);
}

TEST(Zoo, MsraUsesSppBeforeClassifiers)
{
    const auto net = msra(1);
    bool sawSpp = false;
    for (const auto &l : net.layers()) {
        if (l.kind == LayerKind::Spp) {
            sawSpp = true;
            EXPECT_EQ(l.outNx(), 63); // 7^2 + 3^2 + 2^2 + 1^2
        }
        if (l.kind == LayerKind::Classifier) {
            EXPECT_TRUE(sawSpp);
        }
    }
    EXPECT_TRUE(sawSpp);
}

TEST(Zoo, DeepFaceStructure)
{
    const auto net = deepFace();
    // "8 weight layers" in the ISAAC text counts the max-pool stage;
    // DeepFace has 7 weight-bearing layers (C1, C3, L4-L6, F7, F8)
    // and 8 layers in total.
    EXPECT_EQ(net.size(), 8u);
    EXPECT_EQ(net.weightLayerCount(), 7);
    int privates = 0;
    for (const auto &l : net.layers())
        privates += l.privateKernel;
    EXPECT_EQ(privates, 3);
    // Paper: ~120M parameters.
    const double m = static_cast<double>(net.totalWeights()) / 1e6;
    EXPECT_NEAR(m, 115.0, 12.0);
    // Final layer is the 4030-way classifier.
    EXPECT_EQ(net.layers().back().no, 4030);
}

TEST(Zoo, LargeDnnMatchesTableII)
{
    const auto net = largeDnn();
    ASSERT_EQ(net.size(), 1u);
    const auto &l = net.layer(0);
    EXPECT_EQ(l.nx, 200);
    EXPECT_EQ(l.kx, 18);
    EXPECT_EQ(l.ni, 8);
    EXPECT_EQ(l.no, 8);
    EXPECT_TRUE(l.privateKernel);
    EXPECT_EQ(l.outNx(), 183);
}

TEST(Zoo, AllBenchmarksReturnsNine)
{
    const auto nets = allBenchmarks();
    ASSERT_EQ(nets.size(), 9u);
    EXPECT_EQ(nets[0].name(), "VGG-1");
    EXPECT_EQ(nets[4].name(), "MSRA-1");
    EXPECT_EQ(nets[7].name(), "DeepFace");
    EXPECT_EQ(nets[8].name(), "DNN");
}

TEST(Zoo, AllBenchmarksValidateAndChain)
{
    // Construction itself runs validate(); also sanity-check sizes.
    for (const auto &net : allBenchmarks()) {
        EXPECT_GT(net.totalMacs(), 0) << net.name();
        EXPECT_GT(net.totalWeights(), 0) << net.name();
    }
}

TEST(Zoo, AlexNetNoLrnMatchesKnownCounts)
{
    const auto net = alexNetNoLrn();
    EXPECT_EQ(net.weightLayerCount(), 8);
    // ~61M parameters; ~1.1 GMACs (the reference 0.72 GMACs figure
    // assumes the original two-GPU grouped convolutions, which the
    // substrate does not model).
    EXPECT_NEAR(static_cast<double>(net.totalWeights()) / 1e6, 61.0,
                3.0);
    EXPECT_NEAR(static_cast<double>(net.totalMacs()) / 1e9, 1.13,
                0.1);
    // No LRN-style layer kind exists in the substrate at all.
    for (const auto &l : net.layers()) {
        EXPECT_TRUE(l.kind == LayerKind::Conv ||
                    l.kind == LayerKind::Classifier ||
                    l.kind == LayerKind::MaxPool);
    }
}

TEST(Zoo, TinyCnnMatchesFig4Shape)
{
    const auto net = tinyCnn();
    EXPECT_EQ(net.layer(0).kx, 4);
    EXPECT_EQ(net.layer(0).ni, 16);
    EXPECT_EQ(net.layer(0).no, 32);
    EXPECT_EQ(net.layer(0).dotLength(), 256); // 4x4x16 (Sec. VI)
}

} // namespace
} // namespace isaac::nn
