/**
 * @file
 * Activation / sigmoid-LUT tests.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "nn/activation.h"

namespace isaac::nn {
namespace {

TEST(Sigmoid, ApproximatesTanh)
{
    const FixedFormat fmt{12};
    SigmoidLut lut(fmt);
    // 16 chords over [-4,4]: worst-case error ~2.4% (near the knee
    // of tanh), so 3% everywhere.
    for (double x = -6.0; x <= 6.0; x += 0.037) {
        const Word xf = toFixed(x, fmt);
        const double got = fromFixed(lut.apply(xf), fmt);
        EXPECT_NEAR(got, std::tanh(fromFixed(xf, fmt)), 0.03)
            << "x=" << x;
    }
}

TEST(Sigmoid, SaturatesOutsideDomain)
{
    const FixedFormat fmt{10};
    SigmoidLut lut(fmt);
    const Word big = toFixed(7.9, fmt);
    const Word neg = toFixed(-7.9, fmt);
    EXPECT_EQ(lut.apply(big), toFixed(std::tanh(4.0), fmt));
    EXPECT_EQ(lut.apply(neg), toFixed(std::tanh(-4.0), fmt));
}

TEST(Sigmoid, MonotonicWithinQuantization)
{
    // Coefficient quantization can introduce a <=2-ulp dip exactly at
    // a segment boundary (the same artifact a hardware coefficient
    // SRAM exhibits); the function must otherwise be non-decreasing.
    const FixedFormat fmt{12};
    SigmoidLut lut(fmt);
    Word prev = lut.apply(-32768);
    for (int x = -32768 + 7; x <= 32767; x += 7) {
        const Word cur = lut.apply(static_cast<Word>(x));
        EXPECT_GE(cur, prev - 2) << "x=" << x;
        prev = std::max(prev, cur);
    }
}

TEST(Activation, ReluClampsNegatives)
{
    const FixedFormat fmt{12};
    SigmoidLut lut(fmt);
    EXPECT_EQ(applyActivation(Activation::ReLU, -5, lut), 0);
    EXPECT_EQ(applyActivation(Activation::ReLU, 0, lut), 0);
    EXPECT_EQ(applyActivation(Activation::ReLU, 77, lut), 77);
}

TEST(Activation, NoneIsIdentity)
{
    const FixedFormat fmt{12};
    SigmoidLut lut(fmt);
    for (Word w : {Word(-32768), Word(-1), Word(0), Word(32767)})
        EXPECT_EQ(applyActivation(Activation::None, w, lut), w);
}

TEST(Activation, SigmoidIsOddWithinQuantization)
{
    const FixedFormat fmt{12};
    SigmoidLut lut(fmt);
    for (int x = -4000; x <= 4000; x += 97) {
        const Word pos = lut.apply(static_cast<Word>(x));
        const Word neg = lut.apply(static_cast<Word>(-x));
        // tanh is odd; the fixed-point version matches to 2 ulps.
        EXPECT_NEAR(pos, -neg, 2) << "x=" << x;
    }
}

} // namespace
} // namespace isaac::nn
