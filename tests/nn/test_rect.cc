/**
 * @file
 * Rectangular-kernel tests: the substrate tracks kx/ky, sx/sy, and
 * px/py independently; verify geometry and end-to-end exactness.
 */

#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "nn/network.h"
#include "nn/reference.h"

namespace isaac::nn {
namespace {

TEST(RectKernel, GeometryFollowsEachAxis)
{
    NetworkBuilder b("rect", 2, 16, 20);
    b.convRect(3, 5, 4, 1, 2, 0, 0); // rows: 16-2=14; cols: (20-5)/2+1=8
    EXPECT_EQ(b.curRows(), 14);
    EXPECT_EQ(b.curCols(), 8);
    const auto net = b.fc(3, Activation::None).build();
    EXPECT_EQ(net.layer(0).dotLength(), 3 * 5 * 2);
}

TEST(RectKernel, SamePaddingPerAxis)
{
    NetworkBuilder b("rect2", 1, 9, 9);
    b.convRect(1, 7, 2, 1, 1); // same padding: px=0, py=3
    EXPECT_EQ(b.curRows(), 9);
    EXPECT_EQ(b.curCols(), 9);
    const auto net = b.build();
    EXPECT_EQ(net.layer(0).px, 0);
    EXPECT_EQ(net.layer(0).py, 3);
}

TEST(RectKernel, AnalogPipelineStaysBitExact)
{
    NetworkBuilder b("rect3", 3, 10, 14);
    b.convRect(2, 4, 6, 2, 1, 0, 0);
    b.fc(5, Activation::None);
    const auto net = b.build();
    const auto weights = WeightStore::synthesize(net, 71);
    const FixedFormat fmt{11};

    core::Accelerator acc;
    core::CompileOptions opts;
    opts.format = fmt;
    const auto model = acc.compile(net, weights, opts);
    ReferenceExecutor ref(net, weights, fmt);
    const auto input = synthesizeInput(3, 10, 14, 5, fmt);
    EXPECT_EQ(model.infer(input).raw(), ref.run(input).raw());
}

} // namespace
} // namespace isaac::nn
