/**
 * @file
 * Network-description parser tests.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/parser.h"
#include "pipeline/replication.h"
#include "nn/zoo.h"

namespace isaac::nn {
namespace {

TEST(Parser, ParsesTinyCnnEquivalent)
{
    const auto net = parseNetwork(R"(
        network TinyCNN
        input 16 12 12
        conv 4 32 pad 0
        maxpool 3 stride 3
        fc 10 linear
    )");
    const auto ref = tinyCnn();
    ASSERT_EQ(net.size(), ref.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &a = net.layer(i);
        const auto &b = ref.layer(i);
        EXPECT_EQ(a.kind, b.kind) << i;
        EXPECT_EQ(a.ni, b.ni) << i;
        EXPECT_EQ(a.no, b.no) << i;
        EXPECT_EQ(a.kx, b.kx) << i;
        EXPECT_EQ(a.sx, b.sx) << i;
        EXPECT_EQ(a.activation, b.activation) << i;
    }
    EXPECT_EQ(net.name(), "TinyCNN");
}

TEST(Parser, HandlesCommentsAndOptions)
{
    const auto net = parseNetwork(R"(
        # a comment
        network t
        input 3 32 32   # trailing comment
        conv 3 8 stride 2 pad 1 relu
        conv 3 8 pad same
        spp 2 1
        fc 5
    )");
    EXPECT_EQ(net.layer(0).sx, 2);
    EXPECT_EQ(net.layer(0).px, 1);
    EXPECT_EQ(net.layer(0).activation, Activation::ReLU);
    EXPECT_EQ(net.layer(1).px, 1); // same padding for 3x3
    EXPECT_EQ(net.layer(2).kind, LayerKind::Spp);
    EXPECT_EQ(net.layer(3).activation, Activation::Sigmoid);
}

TEST(Parser, PrivateConvolutions)
{
    const auto net = parseNetwork(R"(
        input 4 10 10
        conv 3 6 pad 0 private
    )");
    EXPECT_TRUE(net.layer(0).privateKernel);
}

TEST(Parser, AvgPoolAndDefaultName)
{
    const auto net = parseNetwork(R"(
        input 2 8 8
        avgpool 2 stride 2
        fc 3 linear
    )");
    EXPECT_EQ(net.name(), "unnamed");
    EXPECT_EQ(net.layer(0).kind, LayerKind::AvgPool);
}

TEST(Parser, ErrorsCarryLineNumbers)
{
    try {
        parseNetwork("network t\ninput 3 8 8\nconv nonsense 4\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(Parser, RejectsMalformedDescriptions)
{
    EXPECT_THROW(parseNetwork(""), FatalError);
    EXPECT_THROW(parseNetwork("network t\nconv 3 8\n"), FatalError);
    EXPECT_THROW(parseNetwork("input 3 8 8\nwat 1\n"), FatalError);
    EXPECT_THROW(parseNetwork("input 3 8 8\nmaxpool 2\n"),
                 FatalError);
    EXPECT_THROW(parseNetwork("input 3 8 8\nfc 10 bogus\n"),
                 FatalError);
    EXPECT_THROW(parseNetwork("input 3 8 8\nconv 3 8 warp\n"),
                 FatalError);
}

TEST(Parser, LoadsFromFile)
{
    const std::string path = "/tmp/isaac_parser_test.net";
    {
        std::ofstream out(path);
        out << "network filed\ninput 1 4 4\nfc 2 linear\n";
    }
    const auto net = loadNetworkFile(path);
    EXPECT_EQ(net.name(), "filed");
    EXPECT_EQ(net.layer(0).no, 2);
    std::remove(path.c_str());
    EXPECT_THROW(loadNetworkFile("/nonexistent/x.net"), FatalError);
}

TEST(Parser, ParsedNetworksPlanLikeBuiltOnes)
{
    // A parsed description runs through the whole analytic stack.
    const auto net = parseNetwork(R"(
        network parsed
        input 8 16 16
        conv 3 16 pad 0
        maxpool 2 stride 2
        fc 10 linear
    )");
    const auto plan = isaac::pipeline::planPipeline(
        net, isaac::arch::IsaacConfig::isaacCE(), 1);
    EXPECT_TRUE(plan.fits);
    EXPECT_GT(plan.cyclesPerImage, 0);
}

} // namespace
} // namespace isaac::nn
