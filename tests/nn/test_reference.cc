/**
 * @file
 * Reference-executor tests: hand-computed layers, padding, pooling,
 * SPP, and end-to-end runs on the tiny CNN.
 */

#include <gtest/gtest.h>

#include "nn/reference.h"
#include "nn/zoo.h"

namespace isaac::nn {
namespace {

constexpr FixedFormat kFmt{12};

TEST(GatherWindow, WalksChannelMajor)
{
    LayerDesc l;
    l.kind = LayerKind::Conv;
    l.name = "g";
    l.ni = 2;
    l.nx = l.ny = 3;
    l.no = 1;
    l.kx = l.ky = 2;

    Tensor in(2, 3, 3);
    Word v = 1;
    for (int c = 0; c < 2; ++c)
        for (int y = 0; y < 3; ++y)
            for (int x = 0; x < 3; ++x)
                in.at(c, y, x) = v++;

    const auto vec = gatherWindow(in, l, 0, 0);
    // Channel 0 window, then channel 1 window, each row-major.
    const std::vector<Word> expect{1, 2, 4, 5, 10, 11, 13, 14};
    EXPECT_EQ(vec, expect);

    const auto vec2 = gatherWindow(in, l, 1, 1);
    const std::vector<Word> expect2{5, 6, 8, 9, 14, 15, 17, 18};
    EXPECT_EQ(vec2, expect2);
}

TEST(GatherWindow, ZeroPadsOutside)
{
    LayerDesc l;
    l.kind = LayerKind::Conv;
    l.name = "g";
    l.ni = 1;
    l.nx = l.ny = 2;
    l.no = 1;
    l.kx = l.ky = 3;
    l.px = l.py = 1;

    Tensor in(1, 2, 2);
    in.at(0, 0, 0) = 1;
    in.at(0, 0, 1) = 2;
    in.at(0, 1, 0) = 3;
    in.at(0, 1, 1) = 4;

    // Window at (0,0) covers rows/cols -1..1 -> padded border of 0s.
    const auto vec = gatherWindow(in, l, 0, 0);
    const std::vector<Word> expect{0, 0, 0, 0, 1, 2, 0, 3, 4};
    EXPECT_EQ(vec, expect);
}

TEST(Reference, HandComputedConv)
{
    // 1 input map 2x2, one 2x2 kernel, identity-ish check with
    // activation disabled.
    NetworkBuilder b("t", 1, 2, 2);
    b.conv(2, 1, 1, 0);
    auto net = b.build();
    WeightStore ws(net.size());
    // Weights = [1, 2, 3, 4] in Q12; inputs = [1, 1, 1, 1] in Q12.
    auto &w = ws.layerMutable(0);
    w = {toFixed(1, kFmt), toFixed(2, kFmt), toFixed(3, kFmt),
         toFixed(4, kFmt)};

    Tensor in(1, 2, 2);
    in.fill(toFixed(0.25, kFmt));

    // Expected pre-activation: 0.25*(1+2+3+4) = 2.5; sigmoid(tanh)
    // then applies. Use a copy of the LUT to compute the expectation.
    ReferenceExecutor exec(net, ws, kFmt);
    const auto out = exec.run(in);
    ASSERT_EQ(out.size(), 1u);

    SigmoidLut lut(kFmt);
    EXPECT_EQ(out.flat(0), lut.apply(toFixed(2.5, kFmt)));
}

TEST(Reference, ConvNoActivationExactDot)
{
    NetworkBuilder b("t", 2, 2, 2);
    b.fc(1, Activation::None);
    auto net = b.build();
    WeightStore ws(net.size());
    auto &w = ws.layerMutable(0);
    w.assign(8, 0);
    // Dot product of per-element products: sum_i in_i * w_i / 2^12.
    for (int i = 0; i < 8; ++i)
        w[i] = static_cast<Word>(256 * (i + 1));

    Tensor in(2, 2, 2);
    for (int i = 0; i < 8; ++i)
        in.flat(i) = static_cast<Word>(128 * (i - 4));

    Acc acc = 0;
    for (int i = 0; i < 8; ++i)
        acc += static_cast<Acc>(in.flat(i)) * w[i];

    ReferenceExecutor exec(net, ws, kFmt);
    const auto out = exec.run(in);
    EXPECT_EQ(out.flat(0), requantizeAcc(acc, kFmt));
}

TEST(Reference, MaxPoolPicksMaximum)
{
    NetworkBuilder b("t", 1, 4, 4);
    b.maxPool(2, 2);
    auto net = b.build();
    WeightStore ws(net.size());

    Tensor in(1, 4, 4);
    Word v = -8;
    for (std::size_t i = 0; i < in.size(); ++i)
        in.flat(i) = v++;

    ReferenceExecutor exec(net, ws, kFmt);
    const auto out = exec.run(in);
    ASSERT_EQ(out.rows(), 2);
    // Max of each 2x2 block is its bottom-right element.
    EXPECT_EQ(out.at(0, 0, 0), in.at(0, 1, 1));
    EXPECT_EQ(out.at(0, 0, 1), in.at(0, 1, 3));
    EXPECT_EQ(out.at(0, 1, 0), in.at(0, 3, 1));
    EXPECT_EQ(out.at(0, 1, 1), in.at(0, 3, 3));
}

TEST(Reference, AvgPoolRounds)
{
    NetworkBuilder b("t", 1, 2, 2);
    b.avgPool(2, 2);
    auto net = b.build();
    WeightStore ws(net.size());

    Tensor in(1, 2, 2);
    in.flat(0) = 1;
    in.flat(1) = 2;
    in.flat(2) = 2;
    in.flat(3) = 2;

    ReferenceExecutor exec(net, ws, kFmt);
    const auto out = exec.run(in);
    EXPECT_EQ(out.flat(0), 2); // 7/4 rounds to 2
}

TEST(Reference, SppProducesPyramid)
{
    NetworkBuilder b("t", 1, 4, 4);
    b.spp({2, 1});
    auto net = b.build();
    WeightStore ws(net.size());

    Tensor in(1, 4, 4);
    Word v = 1;
    for (std::size_t i = 0; i < in.size(); ++i)
        in.flat(i) = v++;

    ReferenceExecutor exec(net, ws, kFmt);
    const auto out = exec.run(in);
    ASSERT_EQ(out.rows(), 5); // 2x2 + 1x1 bins
    // Level 2 bins are quadrant maxima.
    EXPECT_EQ(out.at(0, 0, 0), 6);
    EXPECT_EQ(out.at(0, 1, 0), 8);
    EXPECT_EQ(out.at(0, 2, 0), 14);
    EXPECT_EQ(out.at(0, 3, 0), 16);
    // Level 1 bin is the global max.
    EXPECT_EQ(out.at(0, 4, 0), 16);
}

TEST(Reference, TinyCnnEndToEndRuns)
{
    const auto net = tinyCnn();
    const auto ws = WeightStore::synthesize(net, 123);
    const auto in = synthesizeInput(16, 12, 12, 9, kFmt);
    ReferenceExecutor exec(net, ws, kFmt);
    const auto outs = exec.runAll(in);
    ASSERT_EQ(outs.size(), net.size());
    EXPECT_EQ(outs.back().channels(), 10);
    EXPECT_EQ(outs.back().rows(), 1);
    // Deterministic across runs.
    const auto again = exec.run(in);
    EXPECT_EQ(again.raw(), outs.back().raw());
}

TEST(Reference, PrivateKernelUsesPerWindowWeights)
{
    NetworkBuilder b("t", 1, 3, 3);
    b.localConv(2, 1, 1, 0); // 2x2 windows over 3x3 -> 2x2 outputs
    auto net = b.build();
    WeightStore ws(net.size());
    auto &w = ws.layerMutable(0);
    // 4 windows x 1 map x 4 weights. Window k has weight 2^k on the
    // top-left tap only.
    w.assign(16, 0);
    for (int win = 0; win < 4; ++win)
        w[win * 4] = static_cast<Word>(toFixed(1, kFmt) * (win + 1));

    Tensor in(1, 3, 3);
    in.fill(toFixed(0.5, kFmt));

    // Disable activation for exactness.
    auto layers = net.layers();
    layers[0].activation = Activation::None;
    Network net2("t2", layers);

    ReferenceExecutor exec(net2, ws, kFmt);
    const auto out = exec.run(in);
    // Window order: window = ox * outNy + oy.
    EXPECT_EQ(out.at(0, 0, 0), toFixed(0.5, kFmt));
    EXPECT_EQ(out.at(0, 0, 1), toFixed(1.0, kFmt));
    EXPECT_EQ(out.at(0, 1, 0), toFixed(1.5, kFmt));
    EXPECT_EQ(out.at(0, 1, 1), toFixed(2.0, kFmt));
}

} // namespace
} // namespace isaac::nn
