/**
 * @file
 * Regression tests for the shipped example network descriptions:
 * they must parse, validate, plan, and (for the small ones) run
 * bit-exactly through the functional model.
 */

#include <fstream>

#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "nn/parser.h"

namespace isaac::nn {
namespace {

std::string
assetPath(const std::string &name)
{
    // Tests run from the build tree; assets live in the source tree.
    for (const char *prefix :
         {"../examples/networks/", "../../examples/networks/",
          "examples/networks/",
          "/root/repo/examples/networks/"}) {
        const std::string candidate = prefix + name;
        if (std::ifstream(candidate).good())
            return candidate;
    }
    ADD_FAILURE() << "asset not found: " << name;
    return name;
}

class NetworkAsset : public ::testing::TestWithParam<const char *>
{};

TEST_P(NetworkAsset, ParsesAndPlans)
{
    const auto net = loadNetworkFile(assetPath(GetParam()));
    EXPECT_GT(net.totalWeights(), 0);
    const auto plan = pipeline::planPipeline(
        net, arch::IsaacConfig::isaacCE(), 1);
    EXPECT_TRUE(plan.fits) << GetParam();
    EXPECT_GT(plan.cyclesPerImage, 0.0);
}

INSTANTIATE_TEST_SUITE_P(ShippedAssets, NetworkAsset,
                         ::testing::Values("lenet.net", "mlp.net",
                                           "face_local.net"));

TEST(NetworkAsset, LeNetRunsBitExactly)
{
    const auto net = loadNetworkFile(assetPath("lenet.net"));
    const auto weights = WeightStore::synthesize(net, 55);
    const FixedFormat fmt{12};
    core::Accelerator acc;
    core::CompileOptions opts;
    opts.format = fmt;
    const auto model = acc.compile(net, weights, opts);
    ReferenceExecutor ref(net, weights, fmt);
    const auto input = synthesizeInput(1, 32, 32, 8, fmt);
    EXPECT_EQ(model.infer(input).raw(), ref.run(input).raw());
    EXPECT_EQ(model.adcClips(), 0u);
}

} // namespace
} // namespace isaac::nn
