/**
 * @file
 * Weight-file I/O tests: raw16 round trip, float32 quantization,
 * and size validation.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/reference.h"
#include "nn/weights_io.h"
#include "nn/zoo.h"

namespace isaac::nn {
namespace {

class WeightsIo : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        std::remove(kPath);
    }

    static constexpr const char *kPath = "/tmp/isaac_weights_test";
};

TEST_F(WeightsIo, Raw16RoundTrips)
{
    const auto net = tinyCnn();
    const auto store = WeightStore::synthesize(net, 17);
    saveWeightsRaw16(store, net, kPath);
    const auto loaded = loadWeightsRaw16(net, kPath);
    for (std::size_t i = 0; i < net.size(); ++i)
        EXPECT_EQ(loaded.layer(i), store.layer(i)) << "layer " << i;
}

TEST_F(WeightsIo, Raw16RejectsWrongSize)
{
    const auto net = tinyCnn();
    {
        std::ofstream out(kPath, std::ios::binary);
        const Word w = 7;
        out.write(reinterpret_cast<const char *>(&w), sizeof(w));
    }
    EXPECT_THROW(loadWeightsRaw16(net, kPath), FatalError);
    EXPECT_THROW(loadWeightsRaw16(net, "/nonexistent/w.bin"),
                 FatalError);
}

TEST_F(WeightsIo, Float32QuantizesAndCountsSaturation)
{
    // A tiny fully connected network with hand-written floats.
    NetworkBuilder b("t", 1, 2, 2);
    b.fc(1, Activation::None);
    const auto net = b.build();

    const FixedFormat fmt{12}; // range ~[-8, 8)
    {
        std::ofstream out(kPath, std::ios::binary);
        const float values[4] = {0.5f, -1.25f, 100.0f, -0.125f};
        out.write(reinterpret_cast<const char *>(values),
                  sizeof(values));
    }
    std::int64_t saturated = -1;
    const auto store =
        loadWeightsFloat32(net, kPath, fmt, &saturated);
    EXPECT_EQ(saturated, 1); // the 100.0 clips
    const auto &w = store.layer(0);
    EXPECT_EQ(w[0], toFixed(0.5, fmt));
    EXPECT_EQ(w[1], toFixed(-1.25, fmt));
    EXPECT_EQ(w[2], 32767); // saturated
    EXPECT_EQ(w[3], toFixed(-0.125, fmt));
}

TEST_F(WeightsIo, LoadedWeightsDriveTheAcceleratorIdentically)
{
    // Saving and reloading must not change inference results.
    const auto net = tinyCnn();
    const auto store = WeightStore::synthesize(net, 23);
    saveWeightsRaw16(store, net, kPath);
    const auto loaded = loadWeightsRaw16(net, kPath);

    const FixedFormat fmt{12};
    ReferenceExecutor a(net, store, fmt);
    ReferenceExecutor b(net, loaded, fmt);
    const auto input = synthesizeInput(16, 12, 12, 3, fmt);
    EXPECT_EQ(a.run(input).raw(), b.run(input).raw());
}

} // namespace
} // namespace isaac::nn
