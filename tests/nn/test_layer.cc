/**
 * @file
 * Layer-descriptor unit tests: spatial math, weight counts, MAC
 * counts, and validation.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/layer.h"

namespace isaac::nn {
namespace {

LayerDesc
convLayer(int ni, int nx, int k, int no, int stride = 1, int pad = 0)
{
    LayerDesc d;
    d.kind = LayerKind::Conv;
    d.name = "test";
    d.ni = ni;
    d.no = no;
    d.nx = d.ny = nx;
    d.kx = d.ky = k;
    d.sx = d.sy = stride;
    d.px = d.py = pad;
    return d;
}

TEST(Layer, ConvOutputDims)
{
    // The Fig. 3 example: 6x6 input, 2x2 kernel, stride 1 -> 5x5
    // valid output (the paper pads to keep 6x6; both are covered).
    auto d = convLayer(1, 6, 2, 1);
    EXPECT_EQ(d.outNx(), 5);
    EXPECT_EQ(d.outNy(), 5);

    auto same = convLayer(16, 224, 3, 64, 1, 1);
    EXPECT_EQ(same.outNx(), 224);

    auto strided = convLayer(3, 224, 7, 96, 2, 3);
    EXPECT_EQ(strided.outNx(), 112);
}

TEST(Layer, SharedConvCounts)
{
    // Fig. 4's layer i: 4x4 kernel, 16 input maps, 32 outputs.
    auto d = convLayer(16, 19, 4, 32);
    EXPECT_EQ(d.dotLength(), 4 * 4 * 16);
    EXPECT_EQ(d.weightCount(), 4 * 4 * 16 * 32);
    EXPECT_EQ(d.outNx(), 16);
    EXPECT_EQ(d.outputsPerImage(), 16 * 16 * 32);
    EXPECT_EQ(d.macsPerImage(), d.outputsPerImage() * d.dotLength());
}

TEST(Layer, PrivateKernelMultipliesByWindows)
{
    auto d = convLayer(8, 200, 18, 8);
    d.privateKernel = true;
    const std::int64_t windows = 183LL * 183;
    EXPECT_EQ(d.windowsPerImage(), windows);
    EXPECT_EQ(d.weightCount(), windows * 18 * 18 * 8 * 8);
    // MACs are unchanged by kernel privacy.
    auto shared = convLayer(8, 200, 18, 8);
    EXPECT_EQ(d.macsPerImage(), shared.macsPerImage());
}

TEST(Layer, ClassifierIsFullKernel)
{
    LayerDesc d;
    d.kind = LayerKind::Classifier;
    d.name = "fc";
    d.ni = 512;
    d.no = 4096;
    d.nx = d.ny = 7;
    d.kx = d.ky = 7;
    EXPECT_EQ(d.outNx(), 1);
    EXPECT_EQ(d.outNy(), 1);
    EXPECT_EQ(d.dotLength(), 7 * 7 * 512);
    EXPECT_EQ(d.weightCount(), 7LL * 7 * 512 * 4096);
    EXPECT_EQ(d.outputsPerImage(), 4096);
}

TEST(Layer, PoolHasNoWeights)
{
    LayerDesc d;
    d.kind = LayerKind::MaxPool;
    d.name = "pool";
    d.ni = d.no = 32;
    d.nx = d.ny = 16;
    d.kx = d.ky = 2;
    d.sx = d.sy = 2;
    EXPECT_EQ(d.weightCount(), 0);
    EXPECT_EQ(d.macsPerImage(), 0);
    EXPECT_EQ(d.outNx(), 8);
}

TEST(Layer, SppOutputIsPyramidBins)
{
    LayerDesc d;
    d.kind = LayerKind::Spp;
    d.name = "spp";
    d.ni = d.no = 512;
    d.nx = d.ny = 14;
    d.sppLevels = {7, 3, 2, 1};
    EXPECT_EQ(d.outNx(), 49 + 9 + 4 + 1);
    EXPECT_EQ(d.outNy(), 1);
}

TEST(Layer, ValidateRejectsBadConfigs)
{
    auto tooBig = convLayer(1, 4, 9, 1);
    EXPECT_THROW(tooBig.validate(), FatalError);

    auto noInput = convLayer(0, 6, 2, 1);
    EXPECT_THROW(noInput.validate(), FatalError);

    LayerDesc badPool;
    badPool.kind = LayerKind::MaxPool;
    badPool.name = "p";
    badPool.ni = 4;
    badPool.no = 8; // pooling cannot change channel count
    badPool.nx = badPool.ny = 8;
    badPool.kx = badPool.ky = 2;
    badPool.sx = badPool.sy = 2;
    EXPECT_THROW(badPool.validate(), FatalError);
}

TEST(Layer, WeightBytesAreTwoPerWeight)
{
    auto d = convLayer(16, 19, 4, 32);
    EXPECT_EQ(d.weightBytes(), d.weightCount() * 2);
}

} // namespace
} // namespace isaac::nn
