/**
 * @file
 * Randomized end-to-end property tests: for arbitrary small
 * networks, random weights, and random inputs, the analog crossbar
 * pipeline must be bit-identical to the software reference across
 * every layer. This exercises the full stack (gather, slicing, bias,
 * flipping, unit column, ADC, shift-and-add, multi-array tiling,
 * requantization, activations, pooling) against randomly shaped
 * structures rather than hand-picked ones.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/accelerator.h"
#include "nn/zoo.h"

namespace isaac::core {
namespace {

/** Build a random, valid small network from a seed. */
nn::Network
randomNetwork(std::uint64_t seed)
{
    Rng rng(seed);
    const int channels = static_cast<int>(rng.uniform(1, 6));
    const int size = static_cast<int>(rng.uniform(6, 14));
    nn::NetworkBuilder b("fuzz" + std::to_string(seed), channels,
                         size, size);

    const int stages = static_cast<int>(rng.uniform(1, 3));
    for (int s = 0; s < stages; ++s) {
        const int maxK = std::min(5, b.curRows());
        const int k = static_cast<int>(rng.uniform(1, maxK));
        const int maps = static_cast<int>(rng.uniform(1, 10));
        const int stride =
            1 + static_cast<int>(rng.uniform(0, 1)) *
                (b.curRows() > k + 1 ? 1 : 0);
        const bool samePad = rng.uniform(0, 1) == 1 && stride == 1;
        const bool isPrivate =
            rng.uniform(0, 3) == 0 && !samePad; // occasionally
        if (isPrivate)
            b.localConv(k, maps, stride, 0);
        else
            b.conv(k, maps, stride, samePad ? -1 : 0);
        if (rng.uniform(0, 1) == 1) {
            const auto acts = {nn::Activation::Sigmoid,
                               nn::Activation::ReLU,
                               nn::Activation::None};
            b.setLastActivation(
                *(acts.begin() + rng.uniform(0, 2)));
        }
        if (b.curRows() >= 4 && rng.uniform(0, 1) == 1)
            b.maxPool(2, 2);
    }
    b.fc(static_cast<int>(rng.uniform(2, 8)),
         nn::Activation::None);
    return b.build();
}

class FuzzEndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEndToEnd, AnalogMatchesReferenceBitExactly)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const auto net = randomNetwork(seed);
    const auto weights =
        nn::WeightStore::synthesize(net, seed * 31 + 1);
    const FixedFormat fmt{
        static_cast<int>(Rng(seed).uniform(6, 14))};

    Accelerator acc;
    CompileOptions opts;
    opts.format = fmt;
    const auto model = acc.compile(net, weights, opts);
    nn::ReferenceExecutor ref(net, weights, fmt);

    const auto input =
        nn::synthesizeInput(net.layer(0).ni, net.layer(0).nx,
                            net.layer(0).ny, seed * 7 + 3, fmt);
    const auto got = model.inferAll(input);
    const auto want = ref.runAll(input);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].raw(), want[i].raw())
            << net.name() << " layer " << i << " ("
            << net.layer(i).name << ")";
    }
    EXPECT_EQ(model.adcClips(), 0u) << net.name();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEndToEnd,
                         ::testing::Range(1, 33));

class FuzzEngineGeometry : public ::testing::TestWithParam<int> {};

TEST_P(FuzzEngineGeometry, RandomGeometryStaysExact)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    Rng rng(seed * 977);
    xbar::EngineConfig cfg;
    cfg.rows = 1 << rng.uniform(4, 8);         // 16..256
    cfg.cols = 1 << rng.uniform(4, 8);
    const int wChoices[] = {1, 2, 4};
    cfg.cellBits =
        wChoices[rng.uniform(0, 2)];
    if (cfg.cols < cfg.slicesPerWeight())
        cfg.cols = cfg.slicesPerWeight();
    cfg.flipEncoding = rng.uniform(0, 1) == 1;
    if (rng.uniform(0, 1) == 1) {
        cfg.inputMode = xbar::InputMode::Biased;
        const int vChoices[] = {1, 2, 4};
        cfg.dacBits = vChoices[rng.uniform(0, 2)];
    }

    const int n = static_cast<int>(rng.uniform(1, 300));
    const int m = static_cast<int>(rng.uniform(1, 40));
    std::vector<Word> weights(static_cast<std::size_t>(n) * m);
    for (auto &w : weights)
        w = static_cast<Word>(rng.uniform(-32768, 32767));
    xbar::BitSerialEngine engine(cfg, weights, n, m);

    for (int trial = 0; trial < 4; ++trial) {
        std::vector<Word> inputs(static_cast<std::size_t>(n));
        for (auto &x : inputs)
            x = static_cast<Word>(rng.uniform(-32768, 32767));
        std::vector<Acc> expect(static_cast<std::size_t>(m), 0);
        for (int k = 0; k < m; ++k)
            for (int r = 0; r < n; ++r)
                expect[static_cast<std::size_t>(k)] +=
                    static_cast<Acc>(
                        weights[static_cast<std::size_t>(k) * n +
                                r]) *
                    inputs[static_cast<std::size_t>(r)];
        EXPECT_EQ(engine.dotProduct(inputs), expect)
            << "rows=" << cfg.rows << " cols=" << cfg.cols
            << " w=" << cfg.cellBits << " v=" << cfg.dacBits
            << " n=" << n << " m=" << m;
    }
    EXPECT_EQ(engine.adcClips(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEngineGeometry,
                         ::testing::Range(1, 41));

class FuzzReprogram : public ::testing::TestWithParam<int> {};

TEST_P(FuzzReprogram, ReprogramMatchesFreshEngine)
{
    // After an in-place reprogram the engine must behave exactly as
    // one freshly built with the new weights.
    const auto seed = static_cast<std::uint64_t>(GetParam());
    Rng rng(seed * 131 + 7);
    xbar::EngineConfig cfg;
    const int n = static_cast<int>(rng.uniform(10, 200));
    const int m = static_cast<int>(rng.uniform(1, 24));

    auto randWeights = [&] {
        std::vector<Word> w(static_cast<std::size_t>(n) * m);
        for (auto &v : w)
            v = static_cast<Word>(rng.uniform(-32768, 32767));
        return w;
    };
    const auto w1 = randWeights();
    const auto w2 = randWeights();

    xbar::BitSerialEngine evolving(cfg, w1, n, m);
    const auto writes = evolving.reprogram(w2);
    EXPECT_GT(writes, 0);
    xbar::BitSerialEngine fresh(cfg, w2, n, m);

    std::vector<Word> inputs(static_cast<std::size_t>(n));
    for (auto &x : inputs)
        x = static_cast<Word>(rng.uniform(-32768, 32767));
    EXPECT_EQ(evolving.dotProduct(inputs),
              fresh.dotProduct(inputs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzReprogram,
                         ::testing::Range(1, 13));

} // namespace
} // namespace isaac::core
