/**
 * @file
 * End-to-end transient-error campaigns on the compiled model: with
 * drift + ABFT + eDRAM/OR ECC + NoC retry all enabled, inference
 * stays bit-identical to the software reference (every injected
 * error is detected and recovered), the counters are deterministic
 * and batch/thread-order invariant, and the top-level report agrees
 * with the fault census.
 */

#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "core/report.h"
#include "nn/zoo.h"

namespace isaac::core {
namespace {

/** A design point with every transient-error class switched on but
 *  sized so the recovery layer keeps the data path exact: drift under
 *  the refresh sizing rule, ECC flip rates far from the triple-flip
 *  regime, and NoC corruption that only costs retransmissions. */
arch::IsaacConfig
protectedConfig()
{
    arch::IsaacConfig cfg;
    cfg.engine.abftChecksum = true;
    cfg.engine.noise.driftLevelsPerOp = 0.05;
    cfg.engine.noise.refreshIntervalOps = 16; // 0.05 * 15 < 1
    cfg.transient.edramFlipRate = 2e-3;
    cfg.transient.orFlipRate = 1e-3;
    cfg.transient.packetCorruptRate = 0.05;
    cfg.transient.seed = 0xBEEF;
    return cfg;
}

TEST(TransientE2e, TinyCnnStaysBitExactUnderFullInjection)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 42);
    const CompileOptions opts;

    Accelerator acc(protectedConfig());
    const auto model = acc.compile(net, weights, opts);
    nn::ReferenceExecutor ref(net, weights, opts.format);

    const auto input =
        nn::synthesizeInput(16, 12, 12, 7, opts.format);
    const auto got = model.inferAll(input);
    const auto want = ref.runAll(input);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].raw(), want[i].raw())
            << "layer " << i << " diverged under injection";
    }

    // Every protection layer actually exercised something.
    const auto ts = model.transientStats();
    EXPECT_GT(ts.abftChecks, 0u);
    EXPECT_EQ(ts.abftMismatches, 0u); // drift held under the rule
    EXPECT_GT(ts.driftRefreshes, 0u);
    EXPECT_GT(ts.eccWords, 0u);
    EXPECT_GT(ts.eccSingles, 0u); // flips injected AND corrected
    EXPECT_GT(ts.packetsSent, 0u);
    EXPECT_GT(ts.packetsCorrupted, 0u);
    EXPECT_GT(ts.packetsRetransmitted, 0u);
    EXPECT_EQ(ts.packetsUncorrected, 0u);
    EXPECT_EQ(ts.detected(), ts.corrected()); // full recovery
    EXPECT_GT(ts.recoveryCycles(), 0u);
}

TEST(TransientE2e, CountersAreBatchOrderInvariant)
{
    // inferBatch claims a contiguous block of image keys up front,
    // so a parallel batch must reproduce the sequential per-image
    // results and land on the identical counter totals.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 9);
    const CompileOptions opts;

    Accelerator acc(protectedConfig());
    const auto seqModel = acc.compile(net, weights, opts);
    const auto batchModel = acc.compile(net, weights, opts);

    std::vector<nn::Tensor> inputs;
    for (int i = 0; i < 4; ++i)
        inputs.push_back(
            nn::synthesizeInput(16, 12, 12, 100 + i, opts.format));

    std::vector<nn::Tensor> seqOut;
    for (const auto &in : inputs)
        seqOut.push_back(seqModel.infer(in));
    const auto batchOut = batchModel.inferBatch(inputs);

    ASSERT_EQ(batchOut.size(), seqOut.size());
    for (std::size_t i = 0; i < seqOut.size(); ++i)
        EXPECT_EQ(batchOut[i].raw(), seqOut[i].raw())
            << "image " << i;
    EXPECT_EQ(batchModel.transientStats(),
              seqModel.transientStats());
}

TEST(TransientE2e, ResetStatsReplaysTheIdenticalRun)
{
    // Satellite regression: a second run from the same model after
    // resetStats() must report byte-identical stats to a fresh one —
    // image keys, op counters, and noise/injection streams rewind.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 15);
    const CompileOptions opts;

    Accelerator acc(protectedConfig());
    auto model = acc.compile(net, weights, opts);
    const auto fresh = acc.compile(net, weights, opts);

    std::vector<nn::Tensor> inputs;
    for (int i = 0; i < 3; ++i)
        inputs.push_back(
            nn::synthesizeInput(16, 12, 12, 50 + i, opts.format));

    std::vector<nn::Tensor> first;
    for (const auto &in : inputs)
        first.push_back(model.infer(in));
    const auto firstTransient = model.transientStats();
    const auto firstStats = model.engineStats();
    ASSERT_GT(firstTransient.detected(), 0u);

    model.resetStats();
    EXPECT_EQ(model.transientStats(),
              resilience::TransientStats{});
    EXPECT_EQ(model.engineStats().ops, 0u);

    for (std::size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(model.infer(inputs[i]).raw(), first[i].raw())
            << "image " << i << " after reset";
    EXPECT_EQ(model.transientStats(), firstTransient);
    EXPECT_EQ(model.engineStats().ops, firstStats.ops);
    EXPECT_EQ(model.engineStats().adcSamples, firstStats.adcSamples);

    // A fresh model replays the same realization too.
    for (std::size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(fresh.infer(inputs[i]).raw(), first[i].raw());
    EXPECT_EQ(fresh.transientStats(), firstTransient);
}

TEST(TransientE2e, ReportAgreesWithFaultCensusAndHealth)
{
    // Satellite: the top-level JSON report embeds the same
    // ResilienceSummary faultReport() and transientStats() feed, so
    // the numbers can never disagree.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 4);

    auto cfg = protectedConfig();
    cfg.engine.noise.stuckAtFraction = 0.002; // some permanent faults
    cfg.engine.noise.seed = 77;
    Accelerator acc(cfg);
    const auto model = acc.compile(net, weights);
    model.infer(nn::synthesizeInput(16, 12, 12, 1, {12}));

    const auto summary = model.resilienceSummary();
    EXPECT_EQ(summary.faults, model.faultReport());
    EXPECT_EQ(summary.transient, model.transientStats());

    const auto json = runReportJson(model);
    EXPECT_NE(json.find("\"resilience\": " + summary.toJson()),
              std::string::npos);
    EXPECT_NE(json.find("\"uncorrectable_cells\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"transient\": "), std::string::npos);
    EXPECT_NE(json.find("\"recovery_cycles\": "),
              std::string::npos);
}

TEST(TransientE2e, DisabledSpecInjectsNothing)
{
    // All rates default to zero: the transient layer must be
    // entirely invisible — no counters, no extra work.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 2);
    Accelerator acc;
    const auto model = acc.compile(net, weights);
    model.infer(nn::synthesizeInput(16, 12, 12, 3, {12}));
    EXPECT_EQ(model.transientStats(), resilience::TransientStats{});
}

} // namespace
} // namespace isaac::core
