/**
 * @file
 * Report-formatting and cross-module consistency tests.
 */

#include <gtest/gtest.h>

#include "baseline/dadiannao_perf.h"
#include "core/accelerator.h"
#include "core/report.h"
#include "nn/zoo.h"
#include "pipeline/mapper.h"

namespace isaac::core {
namespace {

TEST(Report, DescribeNetworkMentionsNameAndCounts)
{
    const auto s = describeNetwork(nn::vgg(1));
    EXPECT_NE(s.find("VGG-1"), std::string::npos);
    EXPECT_NE(s.find("11 with weights"), std::string::npos);
}

TEST(Report, IsaacPerfFormatsBothOutcomes)
{
    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto net = nn::vgg(1);
    const auto fit = pipeline::analyzeIsaac(net, cfg, 16);
    const auto ok = formatIsaacPerf(net, fit, 16);
    EXPECT_NE(ok.find("throughput"), std::string::npos);
    EXPECT_NE(ok.find("energy"), std::string::npos);

    const auto big = nn::largeDnn();
    const auto nofit = pipeline::analyzeIsaac(big, cfg, 8);
    EXPECT_NE(formatIsaacPerf(big, nofit, 8).find("does not fit"),
              std::string::npos);
}

TEST(Report, DdnPerfFormatsBothOutcomes)
{
    const energy::DaDianNaoModel ddn;
    const auto net = nn::vgg(1);
    EXPECT_NE(formatDdnPerf(net,
                            baseline::analyzeDaDianNao(net, ddn, 16))
                  .find("NFU util"),
              std::string::npos);
    EXPECT_NE(formatDdnPerf(net,
                            baseline::analyzeDaDianNao(net, ddn, 2))
                  .find("exceed"),
              std::string::npos);
}

TEST(Report, BreakdownTableHasTotalRow)
{
    const energy::IsaacEnergyModel m(arch::IsaacConfig::isaacCE());
    const auto s = formatBreakdown(m.tileBreakdown(), "tile");
    EXPECT_NE(s.find("TOTAL"), std::string::npos);
    EXPECT_NE(s.find("eDRAM buffer"), std::string::npos);
}

TEST(Consistency, EngineArraysMatchMapperFootprint)
{
    // The functional engine's physical array count must agree with
    // the mapper's footprint arithmetic for shared-kernel layers.
    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 4);
    Accelerator acc(cfg);
    const auto model = acc.compile(net, weights);

    std::int64_t expected = 0;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto f = pipeline::layerFootprint(net.layer(i), i, cfg);
        if (f.isDot)
            expected += f.xbarsPerCopy;
    }
    EXPECT_EQ(model.functionalArrays(), expected);
}

TEST(Consistency, BatchEqualsPerImage)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 8);
    Accelerator acc;
    const auto model = acc.compile(net, weights);
    const FixedFormat fmt{12};

    std::vector<nn::Tensor> batch;
    for (int i = 0; i < 3; ++i)
        batch.push_back(
            nn::synthesizeInput(16, 12, 12, 100 + i, fmt));
    const auto outs = model.inferBatch(batch);
    ASSERT_EQ(outs.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(outs[i].raw(), model.infer(batch[i]).raw());
}

} // namespace
} // namespace isaac::core
