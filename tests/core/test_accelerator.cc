/**
 * @file
 * End-to-end integration tests: the analog pipeline model must be
 * bit-identical to the software reference executor across whole
 * networks, and the compiled plan/report must be coherent.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/accelerator.h"
#include "nn/zoo.h"

namespace isaac::core {
namespace {

TEST(Accelerator, TinyCnnBitExactAgainstReference)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 42);
    const CompileOptions opts;

    Accelerator acc;
    const auto model = acc.compile(net, weights, opts);

    nn::ReferenceExecutor ref(net, weights, opts.format);
    const auto input = nn::synthesizeInput(16, 12, 12, 7, opts.format);

    const auto got = model.inferAll(input);
    const auto want = ref.runAll(input);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].raw(), want[i].raw())
            << "layer " << i << " diverged";
    }
    EXPECT_EQ(model.adcClips(), 0u);
}

TEST(Accelerator, PrivateKernelNetworkBitExact)
{
    // A small DNN-style network with a locally connected layer.
    nn::NetworkBuilder b("private-net", 4, 10, 10);
    b.conv(3, 8, 1, 0);       // 10 -> 8
    b.localConv(3, 6, 1, 0);  // 8 -> 6, private kernels
    b.fc(5, nn::Activation::None);
    const auto net = b.build();
    const auto weights = nn::WeightStore::synthesize(net, 99);
    const CompileOptions opts;

    Accelerator acc;
    const auto model = acc.compile(net, weights, opts);
    nn::ReferenceExecutor ref(net, weights, opts.format);

    const auto input = nn::synthesizeInput(4, 10, 10, 3, opts.format);
    EXPECT_EQ(model.infer(input).raw(), ref.run(input).raw());
    EXPECT_EQ(model.adcClips(), 0u);
}

TEST(Accelerator, MultiSegmentLayersBitExact)
{
    // Dot lengths beyond 128 rows and output counts beyond one
    // array's columns force row/column tiling in the engines.
    nn::NetworkBuilder b("wide-net", 8, 8, 8);
    b.conv(5, 24, 1, 0); // dot length 200, 24 outputs
    b.fc(40, nn::Activation::Sigmoid);
    const auto net = b.build();
    const auto weights = nn::WeightStore::synthesize(net, 5);
    const CompileOptions opts;

    Accelerator acc;
    const auto model = acc.compile(net, weights, opts);
    nn::ReferenceExecutor ref(net, weights, opts.format);

    const auto input = nn::synthesizeInput(8, 8, 8, 11, opts.format);
    EXPECT_EQ(model.infer(input).raw(), ref.run(input).raw());
}

TEST(Accelerator, BatchedWindowExecutionIsInvisible)
{
    // engine.batchWindows only changes how a layer's windows are
    // driven (one dotProductBatch() vs per-window dotProduct());
    // every layer output and every engine counter must be identical.
    // Multi-segment conv layers stress the tiled path.
    nn::NetworkBuilder b("batch-net", 8, 8, 8);
    b.conv(5, 24, 1, 0); // dot length 200, 24 outputs, 16 windows
    b.conv(3, 8, 1, 0);
    b.fc(10, nn::Activation::None);
    const auto net = b.build();
    const auto weights = nn::WeightStore::synthesize(net, 17);
    const CompileOptions opts;
    const auto input = nn::synthesizeInput(8, 8, 8, 9, opts.format);

    arch::IsaacConfig batched; // default: batchWindows on
    ASSERT_TRUE(batched.engine.batchWindows);
    arch::IsaacConfig perWindow;
    perWindow.engine.batchWindows = false;

    const auto ma = Accelerator(batched).compile(net, weights, opts);
    const auto mb = Accelerator(perWindow).compile(net, weights, opts);
    const auto ra = ma.inferAll(input);
    const auto rb = mb.inferAll(input);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(ra[i].raw(), rb[i].raw()) << "layer " << i;
    EXPECT_TRUE(ma.engineStats() == mb.engineStats());
    EXPECT_EQ(ma.adcClips(), mb.adcClips());
}

TEST(Accelerator, DeterministicAcrossRuns)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 1);
    Accelerator acc;
    const auto model = acc.compile(net, weights);
    const auto input = nn::synthesizeInput(16, 12, 12, 2, {12});
    const auto a = model.infer(input);
    const auto b = model.infer(input);
    EXPECT_EQ(a.raw(), b.raw());
}

TEST(Accelerator, NoisyCompilationPerturbsResults)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 8);

    arch::IsaacConfig noisy;
    noisy.engine.noise.sigmaLsb = 1.0;
    noisy.engine.noise.seed = 1234;
    Accelerator acc(noisy);
    const auto model = acc.compile(net, weights);

    nn::ReferenceExecutor ref(net, weights, FixedFormat{12});
    const auto input = nn::synthesizeInput(16, 12, 12, 5, {12});
    const auto got = model.infer(input);
    const auto want = ref.run(input);
    int diffs = 0;
    for (std::size_t i = 0; i < got.size(); ++i)
        diffs += got.flat(i) != want.flat(i);
    EXPECT_GT(diffs, 0);
}

TEST(Accelerator, EngineStatsAccumulate)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 3);
    Accelerator acc;
    const auto model = acc.compile(net, weights);
    const auto input = nn::synthesizeInput(16, 12, 12, 4, {12});
    model.infer(input);
    const auto stats = model.engineStats();
    // conv: 81 windows; fc: 1 op.
    EXPECT_EQ(stats.ops, 82u);
    EXPECT_GT(stats.crossbarReads, 82u * 16u);
    EXPECT_GT(stats.adcSamples, stats.crossbarReads);
}

TEST(Accelerator, AnalyticOnlyCompilationSkipsEngines)
{
    const auto net = nn::vgg(1);
    nn::WeightStore empty(net.size());
    Accelerator acc;
    CompileOptions opts;
    opts.chips = 16;
    opts.functional = false;
    const auto model = acc.compile(net, empty, opts);
    EXPECT_TRUE(model.perf().fits);
    EXPECT_GT(model.perf().imagesPerSec, 0.0);
    EXPECT_EQ(model.functionalArrays(), 0);
    const auto input = nn::synthesizeInput(3, 224, 224, 1, {12});
    EXPECT_THROW(model.infer(input), FatalError);
}

TEST(Accelerator, FunctionalArraysMatchFootprint)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 6);
    Accelerator acc;
    const auto model = acc.compile(net, weights);
    // conv: 2x2 segments = 4 arrays; fc: 288 inputs x 10 outputs
    // -> 3 row segments x 1 col segment = 3 arrays.
    EXPECT_EQ(model.functionalArrays(), 7);
}

} // namespace
} // namespace isaac::core
