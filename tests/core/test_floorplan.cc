/**
 * @file
 * Floorplan renderer and DSE Pareto-front tests.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/floorplan.h"
#include "dse/dse.h"
#include "nn/zoo.h"

namespace isaac::core {
namespace {

TEST(Floorplan, RendersGridWithLayersAndIdleTiles)
{
    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto net = nn::tinyCnn();
    const auto plan = pipeline::planPipeline(net, cfg, 1);
    const auto placement = pipeline::Placement::build(net, plan, cfg);

    const auto s = renderFloorplan(placement, 0);
    EXPECT_NE(s.find("chip 0 (14x12 tiles)"), std::string::npos);
    // Layer 0 appears somewhere on the floorplan.
    EXPECT_NE(s.find("  0"), std::string::npos);
    // 12 grid rows plus the header line.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 13);
}

TEST(Floorplan, IdleTilesAreDotted)
{
    // The DNN benchmark cannot replicate into the slack (a second
    // copy of its private windows would not fit), leaving idle
    // tiles on every chip.
    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto net = nn::largeDnn();
    const auto plan = pipeline::planPipeline(net, cfg, 32);
    ASSERT_TRUE(plan.fits);
    const auto placement = pipeline::Placement::build(net, plan, cfg);
    const auto s = renderFloorplan(placement, 0);
    EXPECT_NE(s.find(" .. "), std::string::npos);
}

TEST(Floorplan, SharedTilesAreStarred)
{
    // On a chip that forces sharing (tiny chip), consecutive layers
    // land in the same tile and the cell gets a '*'.
    auto cfg = arch::IsaacConfig::isaacCE();
    cfg.tilesPerChip = 1;
    const auto net = nn::tinyCnn();
    const auto plan = pipeline::planPipeline(net, cfg, 1);
    const auto placement = pipeline::Placement::build(net, plan, cfg);
    const auto s = renderFloorplan(placement, 0);
    EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(Floorplan, LegendListsEveryDotLayer)
{
    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto net = nn::tinyCnn();
    const auto plan = pipeline::planPipeline(net, cfg, 1);
    const auto placement = pipeline::Placement::build(net, plan, cfg);
    const auto s = renderFloorplanLegend(net, placement);
    EXPECT_NE(s.find("conv0"), std::string::npos);
    EXPECT_NE(s.find("fc2"), std::string::npos);
}

TEST(Floorplan, RejectsBadChip)
{
    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto net = nn::tinyCnn();
    const auto plan = pipeline::planPipeline(net, cfg, 1);
    const auto placement = pipeline::Placement::build(net, plan, cfg);
    EXPECT_THROW(renderFloorplan(placement, 1), FatalError);
    EXPECT_THROW(renderFloorplan(placement, -1), FatalError);
}

TEST(Pareto, FrontIsNonDominatedAndCoversOptima)
{
    const auto points = dse::sweep();
    const auto front = dse::paretoFront(points);
    ASSERT_FALSE(front.empty());
    // The per-metric optima are on the front.
    const auto &ce = dse::best(points, dse::Metric::CE);
    bool foundCe = false;
    for (const auto &p : front)
        foundCe |= p.config.label() == ce.config.label();
    EXPECT_TRUE(foundCe);
    // No front member dominates another.
    for (const auto &a : front) {
        for (const auto &b : front) {
            const bool dominates = a.ce >= b.ce && a.pe >= b.pe &&
                a.se >= b.se &&
                (a.ce > b.ce || a.pe > b.pe || a.se > b.se);
            if (&a != &b)
                EXPECT_FALSE(dominates)
                    << a.config.label() << " dominates "
                    << b.config.label();
        }
    }
    EXPECT_LT(front.size(), points.size() / 2);
}

} // namespace
} // namespace isaac::core
