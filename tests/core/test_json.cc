/**
 * @file
 * JSON serialization tests: structural validity and key coverage.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/dadiannao_perf.h"
#include "core/json.h"
#include "core/json_writer.h"
#include "nn/zoo.h"

namespace isaac::core {
namespace {

/** Minimal structural check: balanced braces/brackets, quotes. */
bool
balanced(const std::string &s)
{
    int braces = 0, brackets = 0;
    bool inString = false;
    for (char c : s) {
        if (c == '"')
            inString = !inString;
        if (inString)
            continue;
        if (c == '{')
            ++braces;
        if (c == '}')
            --braces;
        if (c == '[')
            ++brackets;
        if (c == ']')
            --brackets;
        if (braces < 0 || brackets < 0)
            return false;
    }
    return braces == 0 && brackets == 0 && !inString;
}

TEST(Json, ConfigSerializes)
{
    const auto json = toJson(arch::IsaacConfig::isaacCE());
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("\"label\": \"H128-A8-C8-I12\""),
              std::string::npos);
    EXPECT_NE(json.find("\"adcBits\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"flipEncoding\": true"),
              std::string::npos);
}

TEST(Json, PlanSerializesWithLayers)
{
    const auto net = nn::tinyCnn();
    const auto plan = pipeline::planPipeline(
        net, arch::IsaacConfig::isaacCE(), 1);
    const auto json = toJson(net, plan);
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("\"network\": \"TinyCNN\""),
              std::string::npos);
    EXPECT_NE(json.find("\"layers\": ["), std::string::npos);
    EXPECT_NE(json.find("\"replication\""), std::string::npos);
}

TEST(Json, PerfSerializesActivity)
{
    const auto net = nn::tinyCnn();
    const auto perf = pipeline::analyzeIsaac(
        net, arch::IsaacConfig::isaacCE(), 1);
    const auto json = toJson(perf);
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("\"imagesPerSec\""), std::string::npos);
    EXPECT_NE(json.find("\"activity\": {"), std::string::npos);
    EXPECT_NE(json.find("\"adcJ\""), std::string::npos);
}

TEST(Json, BaselineAndTrafficSerialize)
{
    const energy::DaDianNaoModel ddn;
    const auto net = nn::vgg(1);
    const auto dp = baseline::analyzeDaDianNao(net, ddn, 16);
    EXPECT_TRUE(balanced(toJson(dp)));

    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto plan = pipeline::planPipeline(net, cfg, 16);
    const auto placement = pipeline::Placement::build(net, plan, cfg);
    const auto traffic =
        noc::analyzeTraffic(net, plan, placement, cfg);
    const auto json = toJson(traffic);
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("\"schedulable\""), std::string::npos);
}

TEST(Json, UnfitPerfSerializesFalse)
{
    const auto net = nn::largeDnn();
    const auto perf = pipeline::analyzeIsaac(
        net, arch::IsaacConfig::isaacCE(), 8);
    const auto json = toJson(perf);
    EXPECT_NE(json.find("\"fits\": false"), std::string::npos);
}

/** Inverse of jsonEscape, for the round-trip regression below. */
std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        ++i;
        switch (s[i]) {
        case '"':  out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u':
            out += static_cast<char>(
                std::stoi(s.substr(i + 1, 4), nullptr, 16));
            i += 4;
            break;
        default:
            ADD_FAILURE() << "unknown escape \\" << s[i];
        }
    }
    return out;
}

TEST(Json, StringEscapingRoundTripsHostileStrings)
{
    // Regression for the string-escaping path of json_writer.h:
    // quotes, backslashes, newlines, and raw control bytes must
    // survive an escape/unescape round trip, and the emitted field
    // must keep the document structurally valid.
    const std::vector<std::string> hostile = {
        "plain",
        "a \"quoted\" name",
        "back\\slash\\path",
        "line\nbreak\r\ttab",
        std::string("nul\0byte", 8),
        std::string(1, '\x1f') + "control",
        "net=tinycnn;w=0.3;r=0;d=0;a=0;k=0.005;m=on;sp=2;adc=0;"
        "t=1;s=15aac",
        "model \"v2\\final\"\n(really)",
    };
    for (const auto &s : hostile) {
        const auto escaped = jsonEscape(s);
        // No raw control byte and no unescaped quote survives in the
        // literal (every '"' is preceded by its escaping backslash).
        for (std::size_t i = 0; i < escaped.size(); ++i) {
            EXPECT_GE(static_cast<unsigned char>(escaped[i]), 0x20u);
            if (escaped[i] == '"') {
                ASSERT_GT(i, 0u);
                EXPECT_EQ(escaped[i - 1], '\\');
            }
        }
        EXPECT_EQ(jsonUnescape(escaped), s) << "string: " << escaped;

        const auto json = JsonObject().field("name", s).str();
        EXPECT_TRUE(balanced(json)) << json;
        EXPECT_NE(json.find("\"name\": \"" + escaped + "\""),
                  std::string::npos)
            << json;
    }
}

} // namespace
} // namespace isaac::core
