/**
 * @file
 * JSON serialization tests: structural validity and key coverage.
 */

#include <gtest/gtest.h>

#include "baseline/dadiannao_perf.h"
#include "core/json.h"
#include "nn/zoo.h"

namespace isaac::core {
namespace {

/** Minimal structural check: balanced braces/brackets, quotes. */
bool
balanced(const std::string &s)
{
    int braces = 0, brackets = 0;
    bool inString = false;
    for (char c : s) {
        if (c == '"')
            inString = !inString;
        if (inString)
            continue;
        if (c == '{')
            ++braces;
        if (c == '}')
            --braces;
        if (c == '[')
            ++brackets;
        if (c == ']')
            --brackets;
        if (braces < 0 || brackets < 0)
            return false;
    }
    return braces == 0 && brackets == 0 && !inString;
}

TEST(Json, ConfigSerializes)
{
    const auto json = toJson(arch::IsaacConfig::isaacCE());
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("\"label\": \"H128-A8-C8-I12\""),
              std::string::npos);
    EXPECT_NE(json.find("\"adcBits\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"flipEncoding\": true"),
              std::string::npos);
}

TEST(Json, PlanSerializesWithLayers)
{
    const auto net = nn::tinyCnn();
    const auto plan = pipeline::planPipeline(
        net, arch::IsaacConfig::isaacCE(), 1);
    const auto json = toJson(net, plan);
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("\"network\": \"TinyCNN\""),
              std::string::npos);
    EXPECT_NE(json.find("\"layers\": ["), std::string::npos);
    EXPECT_NE(json.find("\"replication\""), std::string::npos);
}

TEST(Json, PerfSerializesActivity)
{
    const auto net = nn::tinyCnn();
    const auto perf = pipeline::analyzeIsaac(
        net, arch::IsaacConfig::isaacCE(), 1);
    const auto json = toJson(perf);
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("\"imagesPerSec\""), std::string::npos);
    EXPECT_NE(json.find("\"activity\": {"), std::string::npos);
    EXPECT_NE(json.find("\"adcJ\""), std::string::npos);
}

TEST(Json, BaselineAndTrafficSerialize)
{
    const energy::DaDianNaoModel ddn;
    const auto net = nn::vgg(1);
    const auto dp = baseline::analyzeDaDianNao(net, ddn, 16);
    EXPECT_TRUE(balanced(toJson(dp)));

    const auto cfg = arch::IsaacConfig::isaacCE();
    const auto plan = pipeline::planPipeline(net, cfg, 16);
    const auto placement = pipeline::Placement::build(net, plan, cfg);
    const auto traffic =
        noc::analyzeTraffic(net, plan, placement, cfg);
    const auto json = toJson(traffic);
    EXPECT_TRUE(balanced(json));
    EXPECT_NE(json.find("\"schedulable\""), std::string::npos);
}

TEST(Json, UnfitPerfSerializesFalse)
{
    const auto net = nn::largeDnn();
    const auto perf = pipeline::analyzeIsaac(
        net, arch::IsaacConfig::isaacCE(), 8);
    const auto json = toJson(perf);
    EXPECT_NE(json.find("\"fits\": false"), std::string::npos);
}

} // namespace
} // namespace isaac::core
