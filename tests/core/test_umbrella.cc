/**
 * @file
 * Umbrella-header test: `#include "isaac.h"` alone must expose the
 * whole public API, including the error type consumers catch and
 * the weight-file loaders (a regression verification once caught).
 */

#include "isaac.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, PublicApiIsReachable)
{
    using namespace isaac;

    // common/: the error type, fixed point, RNG.
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_EQ(toFixed(1.0, FixedFormat{12}), 4096);
    EXPECT_EQ(Rng(1).uniform(0, 0), 0);

    // nn/: zoo, parser, weights, reference.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 1);
    (void)nn::parseNetwork("input 1 4 4\nfc 2 linear\n");

    // xbar/ + core/: compile and run.
    core::Accelerator acc(arch::IsaacConfig::isaacCE());
    const auto model = acc.compile(net, weights);
    const auto out =
        model.infer(nn::synthesizeInput(16, 12, 12, 2, {12}));
    EXPECT_EQ(out.channels(), 10);

    // Weight-file I/O symbols link.
    EXPECT_THROW(nn::loadWeightsRaw16(net, "/nonexistent"),
                 FatalError);
    EXPECT_THROW(nn::loadWeightsFloat32(net, "/nonexistent", {12}),
                 FatalError);

    // Analytic/side modules.
    EXPECT_GT(energy::DaDianNaoModel{}.peakGops(), 0.0);
    EXPECT_FALSE(dse::sweep().empty());
    EXPECT_GT(xbar::WriteModel{}.cellsEnergyJ(1), 0.0);
}

} // namespace
