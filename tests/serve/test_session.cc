/**
 * @file
 * Streaming inference session tests: bit-exact parity with the
 * sequential keyed walk at every worker count (results, EngineStats,
 * TransientStats, per-tile ADC tallies), submission-order key
 * claiming under arbitrary orders, stats-reset replay, backpressure
 * and shutdown semantics, and the functional=false front-door fatal.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/accelerator.h"
#include "nn/zoo.h"
#include "serve/session.h"

namespace isaac::serve {
namespace {

/** Every transient-error class on, sized for exact recovery (the
 *  same recipe the end-to-end transient tests use). */
arch::IsaacConfig
protectedConfig()
{
    arch::IsaacConfig cfg;
    cfg.engine.abftChecksum = true;
    cfg.engine.noise.driftLevelsPerOp = 0.05;
    cfg.engine.noise.refreshIntervalOps = 16;
    cfg.transient.edramFlipRate = 2e-3;
    cfg.transient.orFlipRate = 1e-3;
    cfg.transient.packetCorruptRate = 0.05;
    cfg.transient.seed = 0xBEEF;
    return cfg;
}

std::vector<nn::Tensor>
makeInputs(const nn::Network &net, int count, FixedFormat fmt)
{
    const auto &l0 = net.layer(0);
    std::vector<nn::Tensor> inputs;
    for (int i = 0; i < count; ++i)
        inputs.push_back(nn::synthesizeInput(
            l0.ni, l0.nx, l0.ny,
            static_cast<std::uint64_t>(100 + i), fmt));
    return inputs;
}

/** Per-tile ADC tallies of every engine, in deterministic order. */
std::vector<xbar::AdcTally>
allTileTallies(const core::CompiledModel &model)
{
    std::vector<xbar::AdcTally> tallies;
    for (std::size_t i = 0; i < model.network().size(); ++i) {
        for (std::int64_t g = 0; g < model.engineGroupCount(i); ++g) {
            const auto *e = model.engine(i, g);
            for (int rs = 0; rs < e->rowSegments(); ++rs)
                for (int cs = 0; cs < e->colSegments(); ++cs)
                    tallies.push_back(e->tileAdcTally(rs, cs));
        }
    }
    return tallies;
}

TEST(Session, PipelinedRunMatchesSequentialWalkAtEveryWorkerCount)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 42);
    const core::CompileOptions opts;
    const core::Accelerator acc(protectedConfig());
    const auto inputs = makeInputs(net, 6, opts.format);

    // Ground truth: a sequential keyed walk on a twin model.
    const auto seq = acc.compile(net, weights, opts);
    std::vector<nn::Tensor> want;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const auto key = seq.claimImageKeys(1);
        want.push_back(seq.inferAllKeyed(inputs[i], key).back());
    }
    const auto wantEngine = seq.engineStats();
    const auto wantTransient = seq.transientStats();
    const auto wantTiles = allTileTallies(seq);

    for (const int workers : {1, 2, 4, 8, 16}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        const auto model = acc.compile(net, weights, opts);
        SessionOptions sopts;
        sopts.queueDepth = inputs.size();
        sopts.workers = workers;
        InferenceSession session(model, sopts);
        const auto got = session.run(inputs);

        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i].raw(), want[i].raw()) << "image " << i;
        EXPECT_TRUE(model.engineStats() == wantEngine);
        EXPECT_TRUE(model.transientStats() == wantTransient);
        const auto tiles = allTileTallies(model);
        ASSERT_EQ(tiles.size(), wantTiles.size());
        for (std::size_t t = 0; t < tiles.size(); ++t)
            EXPECT_TRUE(tiles[t] == wantTiles[t]) << "tile " << t;

        const auto stats = session.stats();
        EXPECT_EQ(stats.submitted, inputs.size());
        EXPECT_EQ(stats.completed, inputs.size());
        EXPECT_EQ(stats.rejected, 0u);
        EXPECT_EQ(stats.stepsExecuted,
                  inputs.size() * model.executionPlan().size());
        EXPECT_GE(stats.peakInFlight, 1u);
        EXPECT_LE(stats.peakInFlight, inputs.size());
        EXPECT_EQ(session.inFlight(), 0u);
    }
}

TEST(Session, SubmissionOrderKeysTheStreamsUnderAnyOrder)
{
    // Submitting the same tensors in a scrambled order must key each
    // request by its *submission* position: request j (whatever
    // tensor it carries) replays the injection streams of sequential
    // image j.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 7);
    const core::CompileOptions opts;
    const core::Accelerator acc(protectedConfig());
    const auto inputs = makeInputs(net, 5, opts.format);
    const std::vector<std::size_t> perm = {3, 0, 4, 2, 1};

    const auto seq = acc.compile(net, weights, opts);
    std::vector<nn::Tensor> want;
    for (std::size_t j = 0; j < perm.size(); ++j) {
        want.push_back(
            seq.inferAllKeyed(inputs[perm[j]], j).back());
    }

    const auto model = acc.compile(net, weights, opts);
    SessionOptions sopts;
    sopts.queueDepth = perm.size();
    sopts.workers = 4;
    InferenceSession session(model, sopts);
    std::vector<std::future<nn::Tensor>> futs;
    for (const std::size_t p : perm)
        futs.push_back(session.submit(inputs[p]));
    session.drain();
    for (std::size_t j = 0; j < futs.size(); ++j) {
        EXPECT_EQ(futs[j].get().raw(), want[j].raw())
            << "submission " << j;
    }
    EXPECT_TRUE(model.transientStats() == seq.transientStats());
}

TEST(Session, SubmitAllStreamsEveryLayerOutput)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 21);
    const core::CompileOptions opts;
    const core::Accelerator acc;
    const auto model = acc.compile(net, weights, opts);
    const auto input = makeInputs(net, 1, opts.format)[0];

    const auto want = model.inferAllKeyed(input, 12345);

    InferenceSession session(model);
    auto fut = session.submitAll(input);
    session.drain();
    const auto got = fut.get();
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(got.size(), net.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].raw(), want[i].raw()) << "layer " << i;
}

TEST(Session, ResetStatsRewindsTheImageSequenceForExactReplay)
{
    // resetStats() must rewind the shared image-key counter, so a
    // replayed workload reproduces results AND counters exactly —
    // through any front door (session, inferBatch, infer).
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 13);
    const core::CompileOptions opts;
    const core::Accelerator acc(protectedConfig());
    auto model = acc.compile(net, weights, opts);
    const auto inputs = makeInputs(net, 4, opts.format);

    const auto first = model.inferBatch(inputs);
    const auto firstEngine = model.engineStats();
    const auto firstTransient = model.transientStats();

    model.resetStats();
    const auto second = model.inferBatch(inputs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].raw(), second[i].raw()) << "image " << i;
    EXPECT_TRUE(model.engineStats() == firstEngine);
    EXPECT_TRUE(model.transientStats() == firstTransient);
}

TEST(Session, NonFunctionalModelIsFatalOnEveryInferencePath)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 1);
    core::CompileOptions opts;
    opts.functional = false;
    const core::Accelerator acc;
    const auto model = acc.compile(net, weights, opts);
    const auto input = makeInputs(net, 1, opts.format)[0];

    EXPECT_FALSE(model.isFunctional());
    const auto expectFunctionalFatal = [](const auto &fn) {
        try {
            fn();
            FAIL() << "expected FatalError";
        } catch (const FatalError &e) {
            EXPECT_NE(
                std::string(e.what()).find(
                    "CompileOptions::functional"),
                std::string::npos)
                << "message must name the knob: " << e.what();
        }
    };
    expectFunctionalFatal([&] { (void)model.infer(input); });
    expectFunctionalFatal([&] { (void)model.inferAll(input); });
    expectFunctionalFatal([&] { (void)model.inferBatch({input}); });
    expectFunctionalFatal([&] { InferenceSession session(model); });
}

TEST(Session, BackpressureAndShutdownSemantics)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 2);
    const core::CompileOptions opts;
    const core::Accelerator acc;
    const auto model = acc.compile(net, weights, opts);
    const auto input = makeInputs(net, 1, opts.format)[0];

    SessionOptions sopts;
    sopts.queueDepth = 2;
    sopts.workers = 1;
    InferenceSession session(model, sopts);
    EXPECT_FALSE(session.closed());

    // A blocking submit on a full session makes progress by helping,
    // so submitting more than queueDepth requests cannot deadlock.
    std::vector<std::future<nn::Tensor>> futs;
    for (int i = 0; i < 5; ++i)
        futs.push_back(session.submit(input));
    session.drain();
    EXPECT_EQ(session.inFlight(), 0u);
    const auto want = futs.front().get().raw();
    for (std::size_t i = 1; i < futs.size(); ++i)
        EXPECT_EQ(futs[i].get().raw(), want);

    session.shutdown();
    EXPECT_TRUE(session.closed());

    // Closed: trySubmit refuses (counted), submit is fatal.
    std::future<nn::Tensor> out;
    EXPECT_FALSE(session.trySubmit(input, out));
    EXPECT_EQ(session.stats().rejected, 1u);
    EXPECT_THROW((void)session.submit(input), FatalError);

    const auto stats = session.stats();
    EXPECT_EQ(stats.submitted, 5u);
    EXPECT_EQ(stats.completed, 5u);
    EXPECT_LE(stats.peakInFlight, 2u);
}

TEST(Session, TrySubmitRacingShutdownNeverLosesARequest)
{
    // Admission and the shutdown seal share one critical section, so
    // a trySubmit() racing shutdown() either lands *before* the seal
    // (its future resolves — shutdown drains it) or is refused. What
    // must never happen: an accepted future that hangs, or a request
    // admitted after the drain decision. Eight submitter threads spam
    // trySubmit() while the main thread shuts the session down.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 77);
    const core::CompileOptions opts;
    const core::Accelerator acc;
    const auto model = acc.compile(net, weights, opts);
    const auto input = makeInputs(net, 1, opts.format)[0];

    SessionOptions sopts;
    sopts.queueDepth = 4;
    sopts.workers = 2;
    InferenceSession session(model, sopts);

    constexpr int kThreads = 8;
    constexpr int kMaxAcceptedPerThread = 4;
    std::atomic<bool> go{false};
    std::vector<std::vector<std::future<nn::Tensor>>> accepted(
        kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load()) {
                std::this_thread::yield();
            }
            auto &mine = accepted[static_cast<std::size_t>(t)];
            while (!session.closed() &&
                   mine.size() <
                       static_cast<std::size_t>(
                           kMaxAcceptedPerThread)) {
                std::future<nn::Tensor> fut;
                if (session.trySubmit(input, fut))
                    mine.push_back(std::move(fut));
                else
                    std::this_thread::yield();
            }
            // Past the seal every further attempt must refuse.
            if (session.closed()) {
                std::future<nn::Tensor> fut;
                EXPECT_FALSE(session.trySubmit(input, fut));
            }
        });
    }
    go.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    session.shutdown();
    EXPECT_TRUE(session.closed());
    for (auto &th : threads)
        th.join();

    // Every accepted future resolves (shutdown drained them all) and
    // every request produced the same clean-model result.
    std::size_t total = 0;
    const auto want = model.infer(input).raw();
    for (auto &mine : accepted) {
        for (auto &fut : mine) {
            ++total;
            EXPECT_EQ(fut.get().raw(), want);
        }
    }
    const auto stats = session.stats();
    EXPECT_EQ(stats.submitted, total);
    EXPECT_EQ(stats.completed, total);
    EXPECT_EQ(session.inFlight(), 0u);
}

TEST(Session, InvalidOptionsAreFatal)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 2);
    const core::Accelerator acc;
    const auto model = acc.compile(net, weights);
    EXPECT_THROW(InferenceSession(model, {.queueDepth = 0}),
                 FatalError);
    EXPECT_THROW(InferenceSession(model, {.workers = -1}),
                 FatalError);
    EXPECT_THROW(InferenceSession(model, {.stepsPerSlice = 0}),
                 FatalError);
}

TEST(Session, TrySubmitForAdmitsWhenThereIsRoom)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 3);
    const core::CompileOptions opts;
    const core::Accelerator acc;
    const auto model = acc.compile(net, weights, opts);
    const auto input = makeInputs(net, 1, opts.format)[0];

    InferenceSession session(model);
    std::future<nn::Tensor> fut;
    ASSERT_TRUE(session.trySubmitFor(input, fut,
                                     std::chrono::seconds(10)));
    session.drain();
    EXPECT_EQ(fut.get().raw(), model.infer(input).raw());
    EXPECT_EQ(session.stats().rejected, 0u);
    EXPECT_EQ(session.stats().timedOut, 0u);
}

TEST(Session, TrySubmitForGivesUpOnAPersistentlyFullQueue)
{
    // queueDepth 1 with an in-flight image: a bounded wait shorter
    // than one inference must give up (counted rejected), even
    // though the waiter helps execute steps while it waits — helping
    // cannot finish the image before the timeout. Read noise forces
    // the scalar path (tens of ms per image), so no scheduler stall
    // can complete the in-flight image under the 1 ms budget.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 4);
    const core::CompileOptions opts;
    arch::IsaacConfig cfg;
    cfg.engine.noise.sigmaLsb = 0.3;
    cfg.engine.noise.seed = 99;
    const core::Accelerator acc(cfg);
    const auto model = acc.compile(net, weights, opts);
    const auto input = makeInputs(net, 1, opts.format)[0];

    SessionOptions sopts;
    sopts.queueDepth = 1;
    sopts.workers = 1;
    InferenceSession session(model, sopts);
    std::future<nn::Tensor> first;
    ASSERT_TRUE(session.trySubmit(input, first));
    std::future<nn::Tensor> second;
    EXPECT_FALSE(session.trySubmitFor(
        input, second, std::chrono::milliseconds(1)));
    EXPECT_EQ(session.stats().rejected, 1u);
    session.drain();
    EXPECT_NO_THROW((void)first.get());
}

TEST(Session, TrySubmitForOnAClosedSessionRefusesInsteadOfFatal)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 5);
    const core::Accelerator acc;
    const auto model = acc.compile(net, weights);
    const auto input = makeInputs(net, 1, {12})[0];

    InferenceSession session(model);
    session.shutdown();
    std::future<nn::Tensor> out;
    EXPECT_FALSE(session.trySubmitFor(input, out,
                                      std::chrono::seconds(1)));
    EXPECT_EQ(session.stats().rejected, 1u);
}

TEST(Session, ExpiredDefaultDeadlineFailsTheFutureAndCounts)
{
    // A deadline that has already passed when the first slice runs:
    // the request completes as timed out — its future carries
    // DeadlineExceeded, no partial result leaks, and the session
    // still drains cleanly.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 6);
    const core::CompileOptions opts;
    const core::Accelerator acc;
    const auto model = acc.compile(net, weights, opts);
    const auto inputs = makeInputs(net, 2, opts.format);

    SessionOptions sopts;
    sopts.queueDepth = 2;
    sopts.workers = 1;
    sopts.defaultDeadline = std::chrono::nanoseconds(1);
    InferenceSession session(model, sopts);
    auto futA = session.submit(inputs[0]);
    auto futAll = session.submitAll(inputs[1]);
    session.drain();
    EXPECT_THROW((void)futA.get(), DeadlineExceeded);
    EXPECT_THROW((void)futAll.get(), DeadlineExceeded);

    const auto stats = session.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.timedOut, 2u);
    EXPECT_EQ(session.inFlight(), 0u);
}

TEST(Session, ExpiredRequestsSkipTheirRemainingLayerSteps)
{
    // The expiry fast path: once a request is past its deadline the
    // scheduler drops its remaining IR nodes instead of burning Dot
    // work on a result nobody will read — visible as
    // expiredStepsSkipped, which together with stepsExecuted must
    // account for every node of every request.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 9);
    const core::CompileOptions opts;
    const core::Accelerator acc;
    const auto model = acc.compile(net, weights, opts);
    const auto inputs = makeInputs(net, 3, opts.format);

    SessionOptions sopts;
    sopts.queueDepth = inputs.size();
    sopts.workers = 1;
    sopts.defaultDeadline = std::chrono::nanoseconds(1);
    InferenceSession session(model, sopts);
    std::vector<std::future<nn::Tensor>> futs;
    for (const auto &input : inputs)
        futs.push_back(session.submit(input));
    session.drain();
    for (auto &fut : futs)
        EXPECT_THROW((void)fut.get(), DeadlineExceeded);

    const auto stats = session.stats();
    EXPECT_EQ(stats.timedOut, inputs.size());
    EXPECT_GT(stats.expiredStepsSkipped, 0u);
    EXPECT_EQ(stats.stepsExecuted + stats.expiredStepsSkipped,
              inputs.size() * model.executionPlan().size());
}

TEST(Session, GenerousDeadlineNeverFiresAndPreservesResults)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 8);
    const core::CompileOptions opts;
    const core::Accelerator acc(protectedConfig());
    const auto inputs = makeInputs(net, 3, opts.format);

    const auto seq = acc.compile(net, weights, opts);
    const auto want = seq.inferBatch(inputs);

    const auto model = acc.compile(net, weights, opts);
    SessionOptions sopts;
    sopts.queueDepth = inputs.size();
    sopts.workers = 2;
    sopts.defaultDeadline = std::chrono::minutes(10);
    InferenceSession session(model, sopts);
    const auto got = session.run(inputs);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].raw(), want[i].raw());
    EXPECT_EQ(session.stats().timedOut, 0u);
}

TEST(Session, WiderSlicesPreserveResults)
{
    // stepsPerSlice only trades scheduling granularity; results and
    // counters cannot move.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 31);
    const core::CompileOptions opts;
    const core::Accelerator acc(protectedConfig());
    const auto inputs = makeInputs(net, 3, opts.format);

    const auto seq = acc.compile(net, weights, opts);
    const auto want = seq.inferBatch(inputs);
    const auto wantTransient = seq.transientStats();

    const auto model = acc.compile(net, weights, opts);
    SessionOptions sopts;
    sopts.queueDepth = inputs.size();
    sopts.workers = 2;
    sopts.stepsPerSlice = 3;
    InferenceSession session(model, sopts);
    const auto got = session.run(inputs);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].raw(), want[i].raw());
    EXPECT_TRUE(model.transientStats() == wantTransient);
}

TEST(Session, WorkStealingScrambledSubmissionIsExactAtEveryWorkerCount)
{
    // The work-stealing stress version of the scrambled-order test:
    // a full-depth burst of permuted submissions at every worker
    // count, stepsPerSlice = 1 for maximal requeue churn. Pumps batch
    // the burst into their decks, late pumps find the inbox empty and
    // must steal — and none of that may move a bit: request j replays
    // sequential image j exactly.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 23);
    const core::CompileOptions opts;
    const core::Accelerator acc(protectedConfig());
    const auto inputs = makeInputs(net, 12, opts.format);
    const std::vector<std::size_t> perm = {7, 2, 11, 0, 9,  4,
                                           1, 8, 3,  10, 5, 6};

    const auto seq = acc.compile(net, weights, opts);
    std::vector<nn::Tensor> want;
    for (std::size_t j = 0; j < perm.size(); ++j)
        want.push_back(seq.inferAllKeyed(inputs[perm[j]], j).back());
    const auto wantEngine = seq.engineStats();
    const auto wantTransient = seq.transientStats();
    const auto wantTiles = allTileTallies(seq);

    for (const int workers : {1, 2, 4, 8, 16}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        const auto model = acc.compile(net, weights, opts);
        SessionOptions sopts;
        sopts.queueDepth = perm.size();
        sopts.workers = workers;
        sopts.stepsPerSlice = 1;
        InferenceSession session(model, sopts);
        std::vector<std::future<nn::Tensor>> futs;
        for (const std::size_t p : perm)
            futs.push_back(session.submit(inputs[p]));
        session.drain();
        for (std::size_t j = 0; j < futs.size(); ++j)
            EXPECT_EQ(futs[j].get().raw(), want[j].raw())
                << "submission " << j;
        EXPECT_TRUE(model.engineStats() == wantEngine);
        EXPECT_TRUE(model.transientStats() == wantTransient);
        const auto tiles = allTileTallies(model);
        ASSERT_EQ(tiles.size(), wantTiles.size());
        for (std::size_t t = 0; t < tiles.size(); ++t)
            EXPECT_TRUE(tiles[t] == wantTiles[t]) << "tile " << t;
        EXPECT_EQ(session.stats().stepsExecuted,
                  perm.size() * model.executionPlan().size());
    }
}

TEST(Session, StealHeavySkewedWorkloadStaysBitExact)
{
    // Skew the load so stealing must happen: many more workers than
    // the inbox batch leaves behind. The first pumps each swallow a
    // batch of the burst into their decks; the rest find the inbox
    // empty and can only make progress by stealing the oldest work
    // out of those decks. Repeat a few rounds to also exercise pump
    // retirement and respawn between bursts.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 57);
    const core::CompileOptions opts;
    const core::Accelerator acc(protectedConfig());
    constexpr int kRounds = 3;
    constexpr int kPerRound = 8;
    const auto inputs =
        makeInputs(net, kRounds * kPerRound, opts.format);

    const auto seq = acc.compile(net, weights, opts);
    const auto want = seq.inferBatch(inputs);
    const auto wantTransient = seq.transientStats();

    const auto model = acc.compile(net, weights, opts);
    SessionOptions sopts;
    sopts.queueDepth = kPerRound;
    sopts.workers = 16;
    sopts.stepsPerSlice = 1;
    InferenceSession session(model, sopts);
    std::vector<std::future<nn::Tensor>> futs;
    for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kPerRound; ++i)
            futs.push_back(
                session.submit(inputs[round * kPerRound + i]));
        session.drain();
    }
    ASSERT_EQ(futs.size(), want.size());
    for (std::size_t i = 0; i < futs.size(); ++i)
        EXPECT_EQ(futs[i].get().raw(), want[i].raw()) << "image " << i;
    EXPECT_TRUE(model.transientStats() == wantTransient);
    const auto stats = session.stats();
    EXPECT_EQ(stats.completed, inputs.size());
    EXPECT_EQ(stats.timedOut, 0u);
}

TEST(Session, ShutdownRacesStealingPumpsWithoutLosingRequests)
{
    // Several submitter threads hammer trySubmit() while the main
    // thread shuts the session down mid-flight, with enough workers
    // that pumps are stealing when the seal lands. The shutdown
    // atomicity contract must hold exactly as it did with the single
    // ready queue: every admitted future resolves (value or error),
    // every refusal is counted, and nothing is admitted after the
    // seal.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 91);
    const core::CompileOptions opts;
    const core::Accelerator acc(protectedConfig());
    const auto inputs = makeInputs(net, 4, opts.format);

    const auto model = acc.compile(net, weights, opts);
    SessionOptions sopts;
    sopts.queueDepth = 8;
    sopts.workers = 8;
    sopts.stepsPerSlice = 1;
    InferenceSession session(model, sopts);

    constexpr int kSubmitters = 4;
    constexpr int kPerSubmitter = 24;
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> refused{0};
    std::atomic<std::uint64_t> resolved{0};
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            for (int i = 0; i < kPerSubmitter; ++i) {
                std::future<nn::Tensor> fut;
                if (session.trySubmit(
                        inputs[static_cast<std::size_t>(
                            (s + i) % inputs.size())],
                        fut)) {
                    admitted.fetch_add(1);
                    // Every admitted future must resolve — value or
                    // exception — even when shutdown lands mid-step.
                    try {
                        fut.get();
                    } catch (const std::exception &) {
                    }
                    resolved.fetch_add(1);
                } else {
                    refused.fetch_add(1);
                }
            }
        });
    }
    // Let the race actually overlap execution, then seal.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    session.shutdown();
    for (auto &t : submitters)
        t.join();

    EXPECT_EQ(resolved.load(), admitted.load());
    EXPECT_EQ(admitted.load() + refused.load(),
              static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
    const auto stats = session.stats();
    EXPECT_EQ(stats.submitted, admitted.load());
    EXPECT_EQ(stats.completed, admitted.load());
    EXPECT_EQ(stats.rejected, refused.load());
    EXPECT_EQ(session.inFlight(), 0u);
}

} // namespace
} // namespace isaac::serve
