/**
 * @file
 * Self-healing serving tests: scripted mid-soak faults are detected,
 * quarantined, march-repaired (or degraded around) while the session
 * keeps serving, and every completed request is bit-exact against a
 * fault-free twin — zero silently-wrong results. The canonical
 * recovery log must be byte-identical across worker counts for a
 * fixed seed, and shutdown racing an in-progress repair must resolve
 * every accepted future.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/accelerator.h"
#include "nn/zoo.h"
#include "pipeline/execution_plan.h"
#include "serve/session.h"
#include "serve/supervisor.h"

namespace isaac::serve {
namespace {

/**
 * The self-heal recipe: ABFT detection, spare columns for the remap,
 * and the buffer/NoC transient classes (imageKey-keyed, so healed
 * retries replay them exactly). Deliberately no drift and no write
 * noise — the watchdog's determinism preconditions.
 */
arch::IsaacConfig
selfhealConfig()
{
    arch::IsaacConfig cfg;
    cfg.engine.abftChecksum = true;
    cfg.engine.spareCols = 4;
    cfg.transient.edramFlipRate = 2e-3;
    cfg.transient.orFlipRate = 1e-3;
    cfg.transient.packetCorruptRate = 0.05;
    cfg.transient.seed = 0xBEEF;
    return cfg;
}

std::vector<nn::Tensor>
makeInputs(const nn::Network &net, int count, FixedFormat fmt)
{
    const auto &l0 = net.layer(0);
    std::vector<nn::Tensor> inputs;
    for (int i = 0; i < count; ++i)
        inputs.push_back(nn::synthesizeInput(
            l0.ni, l0.nx, l0.ny,
            static_cast<std::uint64_t>(100 + i), fmt));
    return inputs;
}

/** Fault-free ground truth, one result per submission position. */
std::vector<nn::Tensor>
twinReference(const core::Accelerator &acc, const nn::Network &net,
              const nn::WeightStore &weights,
              const core::CompileOptions &opts,
              const std::vector<nn::Tensor> &inputs)
{
    const auto twin = acc.compile(net, weights, opts);
    std::vector<nn::Tensor> want;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        want.push_back(twin.inferAllKeyed(inputs[i], i).back());
    return want;
}

/**
 * The soak driver: admit every input with one watchdog poll per
 * admission (the epoch boundary), then poll until the session drains.
 * Never a bare drain(): parked requests wait on the watchdog, so the
 * final wait must keep polling.
 */
std::vector<std::future<nn::Tensor>>
runSoak(InferenceSession &session, HealthWatchdog &watchdog,
        const std::vector<nn::Tensor> &inputs)
{
    std::vector<std::future<nn::Tensor>> futs;
    for (const auto &input : inputs) {
        futs.push_back(session.submit(input));
        watchdog.poll();
    }
    while (session.inFlight() > 0) {
        watchdog.poll();
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return futs;
}

TEST(SelfHeal, StuckBurstRecoveryIsBitExactAtEveryWorkerCount)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 42);
    const core::CompileOptions opts;
    const core::Accelerator acc(selfhealConfig());
    const auto inputs = makeInputs(net, 12, opts.format);
    const auto want = twinReference(acc, net, weights, opts, inputs);

    FaultTimeline timeline;
    timeline.events.push_back(FaultEvent{FaultKind::StuckBurst,
                                         /*atAdmission=*/3,
                                         /*layer=*/0, /*group=*/0,
                                         /*rs=*/0, /*cs=*/0,
                                         /*cells=*/3, /*seed=*/99});
    WatchdogPolicy policy;
    policy.detectionGraceAdmissions = 4;

    std::vector<std::string> canonicals;
    for (const int workers : {1, 2, 4, 8, 16}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        auto model = acc.compile(net, weights, opts);
        SessionOptions sopts;
        sopts.queueDepth = 4;
        sopts.workers = workers;
        InferenceSession session(model, sopts);
        HealthWatchdog watchdog(model, session, timeline, policy);

        auto futs = runSoak(session, watchdog, inputs);

        EXPECT_TRUE(watchdog.idle());
        EXPECT_EQ(session.state(), SessionState::Healthy);
        for (std::size_t i = 0; i < futs.size(); ++i) {
            EXPECT_EQ(futs[i].get().raw(), want[i].raw())
                << "image " << i;
        }
        const auto log = watchdog.log();
        ASSERT_EQ(log.records.size(), 1u);
        EXPECT_EQ(log.records[0].faultsFound, 3);
        EXPECT_GE(log.records[0].remappedColumns, 1);
        EXPECT_EQ(log.records[0].uncorrectableCells, 0);
        EXPECT_FALSE(log.records[0].degraded);
        EXPECT_GT(log.breachesDetected + log.forcedRepairs, 0u);
        canonicals.push_back(log.canonicalJson());

        const auto stats = session.stats();
        EXPECT_EQ(stats.completed, inputs.size());
        EXPECT_EQ(stats.healFailed, 0u);
        EXPECT_EQ(stats.timedOut, 0u);
    }
    // The canonical recovery record is byte-identical across worker
    // counts — the determinism acceptance gate.
    for (std::size_t i = 1; i < canonicals.size(); ++i)
        EXPECT_EQ(canonicals[i], canonicals[0]) << "worker set " << i;
}

TEST(SelfHeal, TileKillDegradesAroundTheTileAndStaysBitExact)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 42);
    const core::CompileOptions opts;
    const core::Accelerator acc(selfhealConfig());
    const auto inputs = makeInputs(net, 10, opts.format);
    const auto want = twinReference(acc, net, weights, opts, inputs);

    FaultTimeline timeline;
    timeline.events.push_back(FaultEvent{FaultKind::TileKill,
                                         /*atAdmission=*/2,
                                         /*layer=*/0, /*group=*/0,
                                         /*rs=*/0, /*cs=*/0,
                                         /*cells=*/1, /*seed=*/7});
    WatchdogPolicy policy;
    policy.detectionGraceAdmissions = 4;

    auto model = acc.compile(net, weights, opts);
    SessionOptions sopts;
    sopts.queueDepth = 4;
    sopts.workers = 2;
    InferenceSession session(model, sopts);
    HealthWatchdog watchdog(model, session, timeline, policy);

    auto futs = runSoak(session, watchdog, inputs);

    EXPECT_TRUE(watchdog.idle());
    EXPECT_EQ(session.state(), SessionState::Degraded);
    // The rebuilt engine serves from pristine weights: capacity-only
    // loss, every result still bit-exact.
    for (std::size_t i = 0; i < futs.size(); ++i)
        EXPECT_EQ(futs[i].get().raw(), want[i].raw()) << "image " << i;

    const auto log = watchdog.log();
    ASSERT_EQ(log.records.size(), 1u);
    EXPECT_TRUE(log.records[0].degraded);
    EXPECT_GT(log.records[0].uncorrectableCells, 0);
    EXPECT_GE(log.records[0].migratedCopies, 1);

    // The migration is visible in the lowered plan: the layer's Dot
    // node lost a tile and carries the re-placed copies.
    bool found = false;
    for (const auto &node : model.executionPlan().nodes()) {
        if (node.kind != pipeline::StepKind::Dot || node.layer != 0)
            continue;
        found = true;
        EXPECT_TRUE(node.degraded);
        EXPECT_GE(node.migratedCopies, 1);
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(session.stats().healFailed, 0u);
}

TEST(SelfHeal, FaultBeforeFirstAdmissionParksAndHeals)
{
    // Injection before any request runs: every request admitted
    // before the repair overlaps the faulty epoch, so at least one
    // must go through the park/heal retry path — and still land
    // bit-exact on its original image key.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 11);
    const core::CompileOptions opts;
    const core::Accelerator acc(selfhealConfig());
    const auto inputs = makeInputs(net, 8, opts.format);
    const auto want = twinReference(acc, net, weights, opts, inputs);

    FaultTimeline timeline;
    timeline.events.push_back(FaultEvent{FaultKind::StuckBurst,
                                         /*atAdmission=*/0,
                                         /*layer=*/0, /*group=*/0,
                                         /*rs=*/0, /*cs=*/0,
                                         /*cells=*/4, /*seed=*/31});
    WatchdogPolicy policy;
    policy.detectionGraceAdmissions = 2;

    auto model = acc.compile(net, weights, opts);
    SessionOptions sopts;
    sopts.queueDepth = 2;
    sopts.workers = 2;
    InferenceSession session(model, sopts);
    HealthWatchdog watchdog(model, session, timeline, policy);

    watchdog.poll(); // injects before the first admission
    auto futs = runSoak(session, watchdog, inputs);

    EXPECT_TRUE(watchdog.idle());
    for (std::size_t i = 0; i < futs.size(); ++i)
        EXPECT_EQ(futs[i].get().raw(), want[i].raw()) << "image " << i;

    const auto stats = session.stats();
    EXPECT_GE(stats.healedRetries, 1u);
    EXPECT_EQ(stats.healFailed, 0u);
    EXPECT_EQ(stats.completed, inputs.size());
}

TEST(SelfHeal, ShutdownRacingARepairResolvesEveryFuture)
{
    // Shutdown while a fault is pending and a poller races repairs:
    // every accepted future must resolve — with a (bit-exact) value,
    // or explicitly with RetriesExhausted — and nothing may hang.
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 23);
    const core::CompileOptions opts;
    const core::Accelerator acc(selfhealConfig());
    const auto inputs = makeInputs(net, 6, opts.format);
    const auto want = twinReference(acc, net, weights, opts, inputs);

    for (const int workers : {1, 2, 4, 8}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        FaultTimeline timeline;
        timeline.events.push_back(
            FaultEvent{FaultKind::StuckBurst, /*atAdmission=*/0,
                       /*layer=*/0, /*group=*/0, /*rs=*/0, /*cs=*/0,
                       /*cells=*/4, /*seed=*/51});
        WatchdogPolicy policy;
        policy.detectionGraceAdmissions = 1000; // breach-only repair

        auto model = acc.compile(net, weights, opts);
        SessionOptions sopts;
        sopts.queueDepth = inputs.size();
        sopts.workers = workers;
        InferenceSession session(model, sopts);
        HealthWatchdog watchdog(model, session, timeline, policy);

        watchdog.poll(); // inject; repair left to the racing poller
        std::vector<std::future<nn::Tensor>> futs;
        for (const auto &input : inputs)
            futs.push_back(session.submit(input));

        std::thread poller([&] {
            for (int i = 0; i < 200; ++i) {
                watchdog.poll();
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            }
        });
        session.shutdown();
        poller.join();

        EXPECT_TRUE(session.closed());
        EXPECT_EQ(session.inFlight(), 0u);
        std::size_t values = 0, failed = 0;
        for (std::size_t i = 0; i < futs.size(); ++i) {
            try {
                const auto got = futs[i].get();
                ++values;
                EXPECT_EQ(got.raw(), want[i].raw()) << "image " << i;
            } catch (const RetriesExhausted &) {
                ++failed;
            }
        }
        EXPECT_EQ(values + failed, futs.size());
        const auto stats = session.stats();
        EXPECT_EQ(stats.completed, futs.size());
        EXPECT_EQ(stats.healFailed, failed);
    }
}

TEST(SelfHeal, WatchdogRejectsUnsafeConfigurations)
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 3);
    const core::CompileOptions opts;

    FaultTimeline timeline;
    timeline.events.push_back(FaultEvent{});

    { // drift breaks replay determinism across a repair
        arch::IsaacConfig cfg = selfhealConfig();
        cfg.engine.noise.driftLevelsPerOp = 0.05;
        cfg.engine.noise.refreshIntervalOps = 16;
        const core::Accelerator acc(cfg);
        auto model = acc.compile(net, weights, opts);
        InferenceSession session(model);
        EXPECT_THROW(
            HealthWatchdog(model, session, timeline, {}),
            FatalError);
    }
    { // the march cannot see through write noise
        arch::IsaacConfig cfg = selfhealConfig();
        cfg.engine.noise.writeSigmaLevels = 0.3;
        cfg.engine.noise.seed = 9;
        const core::Accelerator acc(cfg);
        auto model = acc.compile(net, weights, opts);
        InferenceSession session(model);
        EXPECT_THROW(
            HealthWatchdog(model, session, timeline, {}),
            FatalError);
    }
    { // a timeline event must target a real engine tile
        const core::Accelerator acc(selfhealConfig());
        auto model = acc.compile(net, weights, opts);
        InferenceSession session(model);
        FaultTimeline bad;
        bad.events.push_back(FaultEvent{FaultKind::StuckBurst, 0,
                                        /*layer=*/0, /*group=*/0,
                                        /*rs=*/999, /*cs=*/0,
                                        /*cells=*/1, /*seed=*/1});
        EXPECT_THROW(
            HealthWatchdog(model, session, bad, {}),
            FatalError);
        // A watchdog must supervise the model its session serves.
        auto other = acc.compile(net, weights, opts);
        InferenceSession otherSession(other);
        EXPECT_THROW(
            HealthWatchdog(model, otherSession, timeline, {}),
            FatalError);
    }
}

} // namespace
} // namespace isaac::serve
