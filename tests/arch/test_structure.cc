/**
 * @file
 * Structural model tests: IMA/tile/chip allocation semantics.
 */

#include <gtest/gtest.h>

#include "arch/chip.h"
#include "common/logging.h"

namespace isaac::arch {
namespace {

const IsaacConfig kCfg = IsaacConfig::isaacCE();

TEST(Ima, AllocatesUpToCapacity)
{
    Ima ima(kCfg, 0);
    EXPECT_TRUE(ima.idle());
    EXPECT_EQ(ima.freeXbars(), 8);
    EXPECT_EQ(ima.allocate(5, 3), 5);
    EXPECT_EQ(ima.freeXbars(), 3);
    EXPECT_EQ(*ima.layer(), 3u);
    // Same layer may take the rest, but no more than remains.
    EXPECT_EQ(ima.allocate(8, 3), 3);
    EXPECT_EQ(ima.freeXbars(), 0);
}

TEST(Ima, RefusesSecondLayer)
{
    Ima ima(kCfg, 0);
    EXPECT_EQ(ima.allocate(2, 1), 2);
    // A different layer gets nothing: the IMA is dedicated.
    EXPECT_EQ(ima.allocate(2, 2), 0);
    EXPECT_EQ(*ima.layer(), 1u);
}

TEST(Ima, RejectsBadRequest)
{
    Ima ima(kCfg, 0);
    EXPECT_THROW(ima.allocate(0, 1), FatalError);
    EXPECT_THROW(ima.allocate(-1, 1), FatalError);
}

TEST(Tile, TracksEdramAndImas)
{
    Tile tile(kCfg, TileCoord{0, 3, 2});
    EXPECT_EQ(tile.coord().x, 3);
    EXPECT_EQ(tile.imas().size(), 12u);
    EXPECT_EQ(tile.freeXbars(), 96);
    EXPECT_EQ(tile.edramFreeBytes(), 64 * 1024);

    EXPECT_TRUE(tile.reserveBuffer(40 * 1024, 7));
    EXPECT_EQ(tile.edramFreeBytes(), 24 * 1024);
    // Over-reservation is refused, not clipped.
    EXPECT_FALSE(tile.reserveBuffer(30 * 1024, 8));
    EXPECT_EQ(tile.edramFreeBytes(), 24 * 1024);
}

TEST(Tile, ResidentLayersCombineImasAndBuffers)
{
    Tile tile(kCfg, TileCoord{0, 0, 0});
    tile.imas()[0].allocate(4, 11);
    tile.reserveBuffer(1024, 22);
    const auto layers = tile.residentLayers();
    ASSERT_EQ(layers.size(), 2u);
    EXPECT_NE(std::find(layers.begin(), layers.end(), 11u),
              layers.end());
    EXPECT_NE(std::find(layers.begin(), layers.end(), 22u),
              layers.end());
}

TEST(Chip, GridIs14By12For168Tiles)
{
    // Sec. VII: "one ISAAC chip can accommodate 14 x 12 tiles."
    const auto [cols, rows] = Chip::gridFor(168);
    EXPECT_EQ(cols, 14);
    EXPECT_EQ(rows, 12);

    Chip chip(kCfg, 0);
    EXPECT_EQ(chip.gridCols(), 14);
    EXPECT_EQ(chip.gridRows(), 12);
    EXPECT_EQ(chip.tiles().size(), 168u);
    EXPECT_EQ(chip.tile(13, 11).coord().x, 13);
    EXPECT_THROW(chip.tile(14, 0), FatalError);
}

TEST(Chip, GridForOddCounts)
{
    EXPECT_EQ(Chip::gridFor(1), (std::pair<int, int>{1, 1}));
    EXPECT_EQ(Chip::gridFor(12), (std::pair<int, int>{4, 3}));
    EXPECT_EQ(Chip::gridFor(7), (std::pair<int, int>{7, 1}));
    EXPECT_THROW(Chip::gridFor(0), FatalError);
}

} // namespace
} // namespace isaac::arch
