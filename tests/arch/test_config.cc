/**
 * @file
 * IsaacConfig tests: derived quantities must match the paper's
 * stated figures for the ISAAC-CE design point.
 */

#include <gtest/gtest.h>

#include "arch/config.h"
#include "common/logging.h"

namespace isaac::arch {
namespace {

TEST(Config, DefaultsAreIsaacCE)
{
    const auto cfg = IsaacConfig::isaacCE();
    EXPECT_EQ(cfg.label(), "H128-A8-C8-I12");
    EXPECT_EQ(cfg.engine.adcBits(), 8);
    // Sec. VI: IR is 2 KB ("maximum capacity of 1KB" per 128-row
    // half; 8 arrays x 128 rows x 2 B), OR is 256 B.
    EXPECT_EQ(cfg.irBytesPerIma(), 2048);
    EXPECT_EQ(cfg.orBytesPerIma(), 256);
}

TEST(Config, WeightCapacityMatchesTableI)
{
    const auto cfg = IsaacConfig::isaacCE();
    // 128 rows x 16 weight columns per array.
    EXPECT_EQ(cfg.weightsPerXbar(), 128 * 16);
    // 2048 weights x 8 arrays x 12 IMAs x 168 tiles.
    EXPECT_EQ(cfg.weightsPerChip(), 2048LL * 8 * 12 * 168);
    // ~63 MB of synaptic storage per chip (SE ~0.74 MB/mm^2).
    const double mb = static_cast<double>(cfg.storageBytesPerChip()) /
        (1024.0 * 1024.0);
    EXPECT_NEAR(mb, 63.0, 1.0);
}

TEST(Config, PeakThroughputMatchesPaper)
{
    const auto cfg = IsaacConfig::isaacCE();
    // The ADC drains 128 of the 129 columns' worth per cycle:
    // effective crossbars = min(8, 8 * 128 / 129) = 7.94.
    EXPECT_NEAR(cfg.effectiveXbarsPerIma(), 7.938, 0.001);
    // Peak ~41 TOPS per chip -> CE of ~479 GOPS/mm^2 at 85.4 mm^2.
    EXPECT_NEAR(cfg.peakGops() / 1000.0, 41.0, 0.5);
}

TEST(Config, AdcLimitedConfigsScaleDown)
{
    IsaacConfig cfg;
    cfg.adcsPerIma = 4; // half the ADCs -> half the effective reads
    EXPECT_NEAR(cfg.effectiveXbarsPerIma(), 3.969, 0.001);

    IsaacConfig wide;
    wide.adcsPerIma = 16; // crossbar-limited instead
    EXPECT_DOUBLE_EQ(wide.effectiveXbarsPerIma(), 8.0);
}

TEST(Config, SeConfigTradesThroughputForStorage)
{
    const auto se = IsaacConfig::isaacSE();
    const auto ce = IsaacConfig::isaacCE();
    EXPECT_GT(se.storageBytesPerChip(), 10 * ce.storageBytesPerChip());
    EXPECT_LT(se.effectiveXbarsPerIma() / se.xbarsPerIma,
              ce.effectiveXbarsPerIma() / ce.xbarsPerIma);
}

TEST(Config, ValidateCatchesNonsense)
{
    IsaacConfig cfg;
    cfg.adcsPerIma = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    IsaacConfig cfg2;
    cfg2.cycleNs = -1;
    EXPECT_THROW(cfg2.validate(), FatalError);

    IsaacConfig cfg3;
    cfg3.engine.dacBits = 3;
    EXPECT_THROW(cfg3.validate(), FatalError);
}

} // namespace
} // namespace isaac::arch
