/**
 * @file
 * SECDED (22,16) codec properties: clean round trips, every
 * single-bit flip corrected, every double-bit flip detected.
 */

#include <gtest/gtest.h>

#include "arch/ecc.h"
#include "common/rng.h"

namespace isaac::arch {
namespace {

TEST(Ecc, CleanRoundTripAllWords)
{
    for (std::uint32_t w = 0; w <= 0xFFFF; ++w) {
        const auto code = eccEncode(static_cast<std::uint16_t>(w));
        std::uint16_t data = 0xBEEF;
        ASSERT_EQ(eccDecode(code, data), EccOutcome::Clean);
        ASSERT_EQ(data, static_cast<std::uint16_t>(w));
    }
}

TEST(Ecc, EverySingleBitFlipIsCorrected)
{
    Rng rng(42);
    for (int trial = 0; trial < 64; ++trial) {
        const auto word = static_cast<std::uint16_t>(
            rng.uniform(0, 0xFFFF));
        const auto code = eccEncode(word);
        for (int b = 0; b < kEccCodeBits; ++b) {
            std::uint16_t data = 0;
            ASSERT_EQ(eccDecode(code ^ (1u << b), data),
                      EccOutcome::Corrected)
                << "word " << word << " bit " << b;
            ASSERT_EQ(data, word)
                << "word " << word << " bit " << b;
        }
    }
}

TEST(Ecc, EveryDoubleBitFlipIsDetected)
{
    Rng rng(43);
    for (int trial = 0; trial < 16; ++trial) {
        const auto word = static_cast<std::uint16_t>(
            rng.uniform(0, 0xFFFF));
        const auto code = eccEncode(word);
        for (int b1 = 0; b1 < kEccCodeBits; ++b1) {
            for (int b2 = b1 + 1; b2 < kEccCodeBits; ++b2) {
                std::uint16_t data = 0;
                ASSERT_EQ(eccDecode(
                              code ^ (1u << b1) ^ (1u << b2), data),
                          EccOutcome::Uncorrectable)
                    << "word " << word << " bits " << b1 << ","
                    << b2;
            }
        }
    }
}

TEST(Ecc, CodewordsOfDistinctWordsDiffer)
{
    // Sanity: the encoder is injective (guaranteed by clean
    // round-tripping, but cheap to assert directly on a sample).
    Rng rng(44);
    for (int trial = 0; trial < 256; ++trial) {
        const auto a = static_cast<std::uint16_t>(
            rng.uniform(0, 0xFFFF));
        const auto b = static_cast<std::uint16_t>(
            rng.uniform(0, 0xFFFF));
        if (a != b)
            EXPECT_NE(eccEncode(a), eccEncode(b));
    }
}

} // namespace
} // namespace isaac::arch
