/**
 * @file
 * Tile sigmoid-unit tests.
 */

#include <gtest/gtest.h>

#include "arch/sigmoid.h"

namespace isaac::arch {
namespace {

TEST(SigmoidUnit, MatchesSharedLut)
{
    const FixedFormat fmt{12};
    SigmoidUnit unit(fmt);
    nn::SigmoidLut lut(fmt);
    for (int x = -20000; x <= 20000; x += 997) {
        const Word w = static_cast<Word>(x);
        EXPECT_EQ(unit.apply(nn::Activation::Sigmoid, w),
                  lut.apply(w));
        EXPECT_EQ(unit.apply(nn::Activation::ReLU, w),
                  w > 0 ? w : 0);
    }
}

TEST(SigmoidUnit, CountsOps)
{
    SigmoidUnit unit(FixedFormat{10});
    EXPECT_EQ(unit.ops(), 0u);
    unit.apply(nn::Activation::Sigmoid, 100);
    unit.apply(nn::Activation::None, 3);
    EXPECT_EQ(unit.ops(), 2u);
    unit.resetStats();
    EXPECT_EQ(unit.ops(), 0u);
}

TEST(SigmoidUnit, ThroughputCoversTheTile)
{
    // Sec. VI: one IMA wave produces up to 64 16-bit values per
    // 100 ns cycle; the two sigmoid units at 1.2 GHz handle 240.
    EXPECT_GE(SigmoidUnit::opsPerIsaacCycle(), 64);
    EXPECT_EQ(SigmoidUnit::opsPerIsaacCycle(), 240);
}

} // namespace
} // namespace isaac::arch
