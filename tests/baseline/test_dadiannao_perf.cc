/**
 * @file
 * DaDianNao analytic-model tests.
 */

#include <gtest/gtest.h>

#include "baseline/dadiannao_perf.h"
#include "nn/zoo.h"
#include "pipeline/perf.h"

namespace isaac::baseline {
namespace {

const energy::DaDianNaoModel kDdn;

TEST(DdnPerf, CapacityRulesMatchPaper)
{
    // Sec. VIII-A: the large DNN needs 64 DaDianNao chips.
    const auto dnn = nn::largeDnn();
    EXPECT_FALSE(analyzeDaDianNao(dnn, kDdn, 32).fits);
    EXPECT_TRUE(analyzeDaDianNao(dnn, kDdn, 64).fits);

    // VGG-1 (~265 MB of weights) needs at least 8 chips.
    const auto vgg = nn::vgg(1);
    EXPECT_FALSE(analyzeDaDianNao(vgg, kDdn, 4).fits);
    EXPECT_TRUE(analyzeDaDianNao(vgg, kDdn, 8).fits);
}

TEST(DdnPerf, ConvLayersAreComputeBound)
{
    const auto net = nn::vgg(1);
    const auto perf = analyzeDaDianNao(net, kDdn, 16);
    ASSERT_TRUE(perf.fits);
    // A mid-network conv layer: NFU utilization near 1.
    const auto &conv4 = perf.layers[4];
    EXPECT_GT(conv4.nfuUtilization, 0.9);
}

TEST(DdnPerf, ClassifierLayersAreCommBound)
{
    // Sec. VIII-B: "DaDianNao suffers from the all-to-all
    // communication bottleneck during the last classifier layers."
    const auto net = nn::vgg(1);
    const auto perf = analyzeDaDianNao(net, kDdn, 64);
    ASSERT_TRUE(perf.fits);
    const auto &fc1 = perf.layers[net.dotProductLayers()[8]];
    EXPECT_GT(fc1.commCycles, fc1.computeCycles);
    EXPECT_LT(fc1.nfuUtilization, 0.5);
}

TEST(DdnPerf, ThroughputScalesSublinearly)
{
    const auto net = nn::vgg(1);
    const auto p16 = analyzeDaDianNao(net, kDdn, 16);
    const auto p64 = analyzeDaDianNao(net, kDdn, 64);
    EXPECT_GT(p64.imagesPerSec, p16.imagesPerSec);
    // Communication keeps 64 chips below perfect 4x scaling.
    EXPECT_LT(p64.imagesPerSec, 4.0 * p16.imagesPerSec);
}

TEST(DdnPerf, EnergyAndPowerArePositiveAndBounded)
{
    const auto net = nn::msra(1);
    const auto perf = analyzeDaDianNao(net, kDdn, 64);
    ASSERT_TRUE(perf.fits);
    EXPECT_GT(perf.energyPerImageJ, 0.0);
    EXPECT_LE(perf.powerW, 64.0 * kDdn.chipPowerW() * 1.001);
}

TEST(DdnPerf, IsaacBeatsDaDianNaoOnEveryFittingBenchmark)
{
    // The headline comparison (Sec. VIII-B / Fig. 6): ISAAC-CE wins
    // throughput and energy on every benchmark both can run at 16
    // chips. (Our measured margins are smaller than the paper's
    // 14.8x/5.5x averages; see EXPERIMENTS.md.)
    const auto cfg = arch::IsaacConfig::isaacCE();
    for (const auto &net : nn::allBenchmarks()) {
        const auto ddn = analyzeDaDianNao(net, kDdn, 16);
        const auto isaac = pipeline::analyzeIsaac(net, cfg, 16);
        if (!ddn.fits || !isaac.fits)
            continue;
        EXPECT_GT(isaac.imagesPerSec, 2.0 * ddn.imagesPerSec)
            << net.name();
        EXPECT_LT(isaac.energyPerImageJ, ddn.energyPerImageJ)
            << net.name();
    }
}

TEST(DdnPerf, NfuGranularityChargesSkinnyLayers)
{
    // VGG's first layer has only 3 input channels: its 27-long dot
    // products fill under 2 of every Ti=16 lanes-wave, so its NFU
    // cycles exceed the ideal macs/peak by the padding factor.
    const auto net = nn::vgg(1);
    const auto &conv1 = net.layer(0);
    const double ideal = static_cast<double>(conv1.macsPerImage()) /
        (kDdn.macsPerCycle() * 16);
    const double actual = nfuCyclesForLayer(conv1, kDdn, 16);
    // ceil(64/16) * ceil(27/16) * 256 = 2048 lane-MACs per window
    // vs 1728 useful: ~1.19x padding.
    EXPECT_NEAR(actual / ideal, 2048.0 / 1728.0, 1e-6);

    // A well-shaped mid-network layer is nearly padding-free.
    const auto &conv5 = net.layer(7);
    ASSERT_EQ(conv5.ni, 256);
    EXPECT_NEAR(nfuCyclesForLayer(conv5, kDdn, 16) /
                    (static_cast<double>(conv5.macsPerImage()) /
                     (kDdn.macsPerCycle() * 16)),
                1.0, 1e-6);
}

TEST(DdnPerf, LocalityParameterReducesComm)
{
    const auto net = nn::vgg(1);
    const auto loose = analyzeDaDianNao(net, kDdn, 16, 1.0);
    const auto tight = analyzeDaDianNao(net, kDdn, 16, 0.1);
    EXPECT_GE(loose.cyclesPerImage, tight.cyclesPerImage);
}

} // namespace
} // namespace isaac::baseline
