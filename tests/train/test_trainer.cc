/**
 * @file
 * In-situ training extension tests: learning through the quantized
 * analog forward pass must converge, and the write cost must be
 * tracked.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "train/trainer.h"

namespace isaac::train {
namespace {

Dataset
easyDataset()
{
    return makeClusterDataset(160, 16, 3, 7, FixedFormat{12}, 0.08);
}

TEST(Dataset, ShapesAndDeterminism)
{
    const auto a = easyDataset();
    EXPECT_EQ(a.samples(), 160);
    EXPECT_EQ(a.features, 16);
    EXPECT_EQ(a.classes, 3);
    const auto b = easyDataset();
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.labels, b.labels);
    // All classes represented.
    for (int k = 0; k < 3; ++k) {
        EXPECT_NE(std::count(a.labels.begin(), a.labels.end(), k), 0)
            << "class " << k;
    }
}

TEST(Dataset, RejectsDegenerateShapes)
{
    EXPECT_THROW(makeClusterDataset(0, 4, 2, 1, FixedFormat{12}),
                 FatalError);
    EXPECT_THROW(makeClusterDataset(10, 4, 1, 1, FixedFormat{12}),
                 FatalError);
}

TEST(Trainer, LearnsSeparableClusters)
{
    const auto data = easyDataset();
    TrainConfig cfg;
    cfg.epochs = 12;
    InSituTrainer trainer(xbar::EngineConfig{}, cfg, data.features,
                          data.classes);
    const double before = trainer.evaluate(data);
    const auto result = trainer.fit(data);
    EXPECT_GT(result.finalAccuracy, 0.95);
    EXPECT_GT(result.finalAccuracy, before);
    // Loss decreases over training.
    EXPECT_LT(result.epochs.back().loss,
              0.5 * result.epochs.front().loss);
}

TEST(Trainer, CountsCrossbarWrites)
{
    const auto data = easyDataset();
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.reprogramInterval = 16;
    InSituTrainer trainer(xbar::EngineConfig{}, cfg, data.features,
                          data.classes);
    const auto result = trainer.fit(data);
    // 160 samples / 16 per sync + the per-epoch sync.
    EXPECT_EQ(result.reprograms, 2 * (160 / 16 + 1));
    EXPECT_GT(result.cellWrites, 0);
}

TEST(Trainer, DifferentialReprogrammingIsCheaperThanFull)
{
    // With small learning rates most quantized digits are stable
    // between syncs, so differential writes are far fewer than
    // rewriting every cell every time.
    const auto data = easyDataset();
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.learningRate = 0.05;
    InSituTrainer trainer(xbar::EngineConfig{}, cfg, data.features,
                          data.classes);
    const auto result = trainer.fit(data);
    const xbar::EngineConfig ecfg;
    const std::int64_t cellsPerFull =
        static_cast<std::int64_t>(ecfg.rows) * (ecfg.cols + 1);
    EXPECT_LT(result.cellWrites,
              result.reprograms * cellsPerFull / 2);
}

TEST(Trainer, SurvivesModerateWriteNoise)
{
    const auto data = easyDataset();
    xbar::EngineConfig ecfg;
    ecfg.noise.writeSigmaLevels = 0.2;
    ecfg.noise.seed = 11;
    TrainConfig cfg;
    cfg.epochs = 12;
    InSituTrainer trainer(ecfg, cfg, data.features, data.classes);
    const auto result = trainer.fit(data);
    EXPECT_GT(result.finalAccuracy, 0.8);
}

TEST(Trainer, RejectsMismatchedDataset)
{
    TrainConfig cfg;
    InSituTrainer trainer(xbar::EngineConfig{}, cfg, 8, 3);
    const auto data = easyDataset(); // 16 features
    EXPECT_THROW(trainer.fit(data), FatalError);
}

} // namespace
} // namespace isaac::train
