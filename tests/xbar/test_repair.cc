/**
 * @file
 * Online tile-repair tests (BitSerialEngine::repairTile): the march +
 * spare-remap pass must restore bit-exact results after an injected
 * stuck burst, re-arm the packed fast path, behave as an identity on
 * healthy tiles, report uncorrectable damage when the spares cannot
 * cover it, and refuse to run under write noise (the march cannot
 * tell transient programming errors from permanent faults).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "xbar/engine.h"

namespace isaac::xbar {
namespace {

std::vector<Word>
randomWords(Rng &rng, int n)
{
    std::vector<Word> v(static_cast<std::size_t>(n));
    for (auto &w : v)
        w = static_cast<Word>(rng.uniform(-32768, 32767));
    return v;
}

TEST(Repair, StuckBurstIsRemappedAndResultsReturnExact)
{
    // Inject a rail-max burst into mapped data columns of a spared
    // engine, verify the corruption is visible, repair, and demand
    // bit-exactness against an untouched twin on fresh inputs.
    Rng rng(901);
    const int n = 96, m = 12;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 1;
    cfg.abftChecksum = true;
    cfg.spareCols = 4;
    BitSerialEngine eng(cfg, weights, n, m);
    BitSerialEngine twin(cfg, weights, n, m);
    ASSERT_TRUE(eng.fastPathActive());

    const auto probe = randomWords(rng, n);
    ASSERT_EQ(eng.dotProduct(probe), twin.dotProduct(probe));

    const int railMax = (1 << cfg.cellBits) - 1;
    // Three distinct data columns: well within the spare budget.
    for (int c : {0, 5, 11})
        eng.injectCellFault(0, 0, /*row=*/c + 1, c, railMax);
    EXPECT_FALSE(eng.fastPathActive()); // taint forces scalar reads

    const auto report = eng.repairTile(0, 0);
    // A rail-max cell can coincide with its intended level, so the
    // census is bounded, not pinned.
    EXPECT_GE(report.faultsFound, 1);
    EXPECT_LE(report.faultsFound, 3);
    EXPECT_EQ(report.remappedColumns, report.faultsFound);
    EXPECT_EQ(report.uncorrectableCells, 0);
    EXPECT_TRUE(report.abftOk);
    EXPECT_TRUE(eng.fastPathActive()); // repair re-arms the fast path

    for (int op = 0; op < 4; ++op) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(eng.dotProduct(inputs), twin.dotProduct(inputs))
            << "op " << op;
    }
    EXPECT_EQ(eng.transientStats().abftUncorrected, 0u);
}

TEST(Repair, HealthyTileRepairIsAnIdentity)
{
    Rng rng(902);
    const int n = 64, m = 8;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 1;
    cfg.spareCols = 2;
    BitSerialEngine eng(cfg, weights, n, m);
    BitSerialEngine twin(cfg, weights, n, m);

    const auto report = eng.repairTile(0, 0);
    EXPECT_EQ(report.faultsFound, 0);
    EXPECT_EQ(report.remappedColumns, 0);
    EXPECT_EQ(report.uncorrectableCells, 0);

    const auto inputs = randomWords(rng, n);
    EXPECT_EQ(eng.dotProduct(inputs), twin.dotProduct(inputs));
}

TEST(Repair, TotalTileCorruptionReportsUncorrectableCells)
{
    // Kill every physical column — data, spares, unit, checksum — at
    // the ON rail. No remap target survives, so the repair must own
    // up to uncorrectable damage instead of claiming success.
    Rng rng(903);
    const int n = 64, m = 8;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 1;
    cfg.abftChecksum = true;
    cfg.spareCols = 2;
    BitSerialEngine eng(cfg, weights, n, m);

    const int railMax = (1 << cfg.cellBits) - 1;
    const int totalCols = cfg.cols + cfg.spareCols + 1 + 1;
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < totalCols; ++c)
            eng.injectCellFault(0, 0, r, c, railMax);

    const auto report = eng.repairTile(0, 0);
    EXPECT_GT(report.faultsFound, 0);
    EXPECT_GT(report.uncorrectableCells, 0);
}

TEST(Repair, SparesExhaustedLeavesUncorrectableResidue)
{
    // More faulted columns than spares: the planner remaps what it
    // can and the rest surfaces as uncorrectable cells.
    Rng rng(904);
    const int n = 96, m = 12;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 1;
    cfg.spareCols = 1;
    BitSerialEngine eng(cfg, weights, n, m);

    // Force two distinct levels per column so at least one cell per
    // column genuinely mismatches its intended value.
    for (int c : {0, 3, 7}) {
        eng.injectCellFault(0, 0, 0, c, 0);
        eng.injectCellFault(0, 0, 1, c, (1 << cfg.cellBits) - 1);
    }
    const auto report = eng.repairTile(0, 0);
    EXPECT_EQ(report.faultsFound, 6); // census counts stuck cells
    EXPECT_LE(report.remappedColumns, cfg.spareCols);
    EXPECT_GT(report.uncorrectableCells, 0);
}

TEST(Repair, WriteNoiseIsFatal)
{
    Rng rng(905);
    const int n = 32, m = 4;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 1;
    cfg.noise.writeSigmaLevels = 0.4;
    cfg.noise.seed = 5;
    BitSerialEngine eng(cfg, weights, n, m);
    EXPECT_THROW((void)eng.repairTile(0, 0), FatalError);
}

TEST(Repair, OutOfRangeTileIsFatal)
{
    Rng rng(906);
    const int n = 32, m = 4;
    const auto weights = randomWords(rng, n * m);
    EngineConfig cfg;
    cfg.threads = 1;
    BitSerialEngine eng(cfg, weights, n, m);
    EXPECT_THROW((void)eng.repairTile(-1, 0), FatalError);
    EXPECT_THROW((void)eng.repairTile(0, eng.colSegments()),
                 FatalError);
}

} // namespace
} // namespace isaac::xbar
