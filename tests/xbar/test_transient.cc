/**
 * @file
 * ABFT checksum-column campaigns: zero false positives on a clean
 * engine, injected-fault detection with the bounded retry budget,
 * drift caught when unrefreshed and exact under the refresh sizing
 * rule, and the resetStats() replay contract.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "xbar/engine.h"

namespace isaac::xbar {
namespace {

std::vector<Word>
randomWords(Rng &rng, int n)
{
    std::vector<Word> v(static_cast<std::size_t>(n));
    for (auto &w : v)
        w = static_cast<Word>(rng.uniform(-32768, 32767));
    return v;
}

TEST(Abft, ZeroNoiseHasZeroFalsePositives)
{
    // The checksum column must be an exact invariant of the encoded
    // arrays: with analog noise off, every check passes and the
    // outputs are bit-identical to an engine running without ABFT.
    Rng rng(811);
    const int n = 300, m = 48; // multi-tile
    const auto weights = randomWords(rng, n * m);

    EngineConfig plain;
    plain.threads = 1;
    EngineConfig checked = plain;
    checked.abftChecksum = true;

    BitSerialEngine ref(plain, weights, n, m);
    BitSerialEngine abft(checked, weights, n, m);

    for (int trial = 0; trial < 6; ++trial) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(ref.dotProduct(inputs), abft.dotProduct(inputs));
    }
    const auto ts = abft.transientStats();
    EXPECT_GT(ts.abftChecks, 0u);
    EXPECT_EQ(ts.abftMismatches, 0u);
    EXPECT_EQ(ts.abftRetries, 0u);
    EXPECT_EQ(ts.abftUncorrected, 0u);
    EXPECT_EQ(ts.abftDisabledTiles, 0u);
    EXPECT_EQ(ref.transientStats(), resilience::TransientStats{});
}

TEST(Abft, InjectedFaultIsDetectedAndChargesTheRetryBudget)
{
    // Corrupt one mapped data cell after programming. Every phase
    // that drives the row now fails its check; with zero read noise
    // the re-reads see the same value, so each flagged tile-phase
    // burns exactly maxReadRetries retries, charges the doubling
    // backoff, and lands in abftUncorrected.
    Rng rng(812);
    const int n = 32, m = 8; // single tile, identity column map
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 1;
    cfg.abftChecksum = true;
    cfg.maxReadRetries = 3;
    cfg.retryBackoffCycles = 2;
    BitSerialEngine eng(cfg, weights, n, m);
    ASSERT_TRUE(eng.abftActive(0, 0));

    auto inputs = randomWords(rng, n);
    inputs[0] = static_cast<Word>(-1); // drive row 0 in every phase
    eng.dotProduct(inputs);
    std::uint64_t opsRun = 1;
    const auto clean = eng.transientStats();
    ASSERT_EQ(clean.abftMismatches, 0u);
    const std::uint64_t checksPerOp = clean.abftChecks;

    // The stored level at (0, 0) is unknown; at most one of two
    // distinct forced levels can coincide with it.
    std::uint64_t mismatches = 0;
    for (int level : {0, 1}) {
        eng.injectCellFault(0, 0, /*row=*/0, /*col=*/0, level);
        eng.dotProduct(inputs);
        ++opsRun;
        mismatches = eng.transientStats().abftMismatches;
        if (mismatches > 0)
            break;
    }
    ASSERT_GT(mismatches, 0u);

    const auto ts = eng.transientStats();
    // Nothing is recoverable by re-reading a persistent fault.
    EXPECT_EQ(ts.abftUncorrected, mismatches);
    EXPECT_EQ(ts.abftRetries,
              mismatches * static_cast<std::uint64_t>(
                               cfg.maxReadRetries));
    // Backoff 2 << {0,1,2} = 14 cycles per flagged tile-phase.
    EXPECT_EQ(ts.abftRetryCycles, mismatches * 14u);
    // Each flagged tile-phase re-checks maxReadRetries extra times.
    EXPECT_EQ(ts.abftChecks,
              checksPerOp * opsRun +
                  mismatches * static_cast<std::uint64_t>(
                                   cfg.maxReadRetries));

    // The detection is persistent, not a one-shot alarm.
    eng.dotProduct(inputs);
    EXPECT_GT(eng.transientStats().abftMismatches, mismatches);
}

TEST(Abft, DetectOnlyModeSkipsRetries)
{
    Rng rng(813);
    const int n = 32, m = 8;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 1;
    cfg.abftChecksum = true;
    cfg.maxReadRetries = 0; // detect, never re-read
    BitSerialEngine eng(cfg, weights, n, m);

    auto inputs = randomWords(rng, n);
    inputs[0] = static_cast<Word>(-1);
    for (int level : {0, 1}) {
        eng.injectCellFault(0, 0, 0, 0, level);
        eng.dotProduct(inputs);
        if (eng.transientStats().abftMismatches > 0)
            break;
    }
    const auto ts = eng.transientStats();
    ASSERT_GT(ts.abftMismatches, 0u);
    EXPECT_EQ(ts.abftRetries, 0u);
    EXPECT_EQ(ts.abftRetryCycles, 0u);
    EXPECT_EQ(ts.abftUncorrected, ts.abftMismatches);
}

TEST(Drift, RefreshSizingRuleKeepsReadsExact)
{
    // driftLevelsPerOp * (refreshIntervalOps - 1) < 1 guarantees no
    // read ever sees a drifted level: outputs stay bit-identical to
    // a drift-free engine while the refresh accounting accrues.
    Rng rng(814);
    const int n = 256, m = 16; // 2 row segments x 1 col segment
    const auto weights = randomWords(rng, n * m);

    EngineConfig clean;
    clean.threads = 1;
    EngineConfig drifty = clean;
    drifty.abftChecksum = true;
    drifty.noise.driftLevelsPerOp = 0.1;
    drifty.noise.refreshIntervalOps = 10; // 0.1 * 9 = 0.9 < 1

    BitSerialEngine ref(clean, weights, n, m);
    BitSerialEngine eng(drifty, weights, n, m);

    for (int op = 0; op < 25; ++op) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(ref.dotProduct(inputs), eng.dotProduct(inputs))
            << "op " << op;
    }
    const auto ts = eng.transientStats();
    EXPECT_EQ(ts.abftMismatches, 0u);
    // Refresh fires after ops 10 and 20 (opSeq 9 and 19), per tile.
    EXPECT_EQ(ts.driftRefreshes,
              2u * static_cast<std::uint64_t>(eng.physicalArrays()));
    EXPECT_GT(ts.refreshPulses, 0u);
}

TEST(Drift, UnrefreshedDriftIsFlaggedAndUncorrectable)
{
    // With refresh off the cell age grows without bound; once cells
    // drop a level the checksum flags the read, and because a retry
    // keeps the same drift clock (only noise redraws), every
    // mismatch exhausts the budget.
    Rng rng(815);
    const int n = 128, m = 16;
    const auto weights = randomWords(rng, n * m);

    EngineConfig clean;
    clean.threads = 1;
    EngineConfig drifty = clean;
    drifty.abftChecksum = true;
    drifty.maxReadRetries = 2;
    drifty.noise.driftLevelsPerOp = 0.5;
    drifty.noise.refreshIntervalOps = 0; // never refresh

    BitSerialEngine ref(clean, weights, n, m);
    BitSerialEngine eng(drifty, weights, n, m);

    int corruptedOps = 0;
    for (int op = 0; op < 30; ++op) {
        const auto inputs = randomWords(rng, n);
        if (ref.dotProduct(inputs) != eng.dotProduct(inputs))
            ++corruptedOps;
    }
    const auto ts = eng.transientStats();
    EXPECT_GT(ts.abftMismatches, 0u);
    EXPECT_EQ(ts.abftUncorrected, ts.abftMismatches);
    EXPECT_GT(corruptedOps, 0);
    EXPECT_EQ(ts.driftRefreshes, 0u);
}

TEST(Abft, ReadNoiseRetriesAreDeterministicPerSeed)
{
    // Large read noise makes checks flag; the bounded re-read draws
    // a fresh noise sequence per attempt. Two identical engines must
    // realize the identical mismatch/retry/recovery history.
    Rng rng(816);
    const int n = 128, m = 16;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 1;
    cfg.abftChecksum = true;
    cfg.noise.sigmaLsb = 3.0;
    cfg.noise.seed = 55;

    BitSerialEngine a(cfg, weights, n, m);
    BitSerialEngine b(cfg, weights, n, m);
    for (int op = 0; op < 6; ++op) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(a.dotProduct(inputs), b.dotProduct(inputs));
    }
    const auto ta = a.transientStats();
    EXPECT_EQ(ta, b.transientStats());
    EXPECT_GT(ta.abftMismatches, 0u);
    EXPECT_GT(ta.abftRetries, 0u);
    // Some noise excursions recover on re-read.
    EXPECT_GE(ta.abftMismatches, ta.abftUncorrected);
}

TEST(Abft, DefectiveChecksumColumnDisablesTheTileNotTheEngine)
{
    // A heavy stuck-cell population corrupts some checksum columns
    // at program time; those tiles run unchecked (structural count)
    // while healthy tiles keep verifying — and because targets come
    // from stored readback, permanent data-cell defects never raise
    // transient alarms.
    Rng rng(817);
    const int n = 300, m = 48;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 1;
    cfg.abftChecksum = true;
    cfg.noise.stuckAtFraction = 0.3;
    cfg.noise.seed = 7;

    BitSerialEngine eng(cfg, weights, n, m);
    std::uint64_t disabled = 0;
    for (int rs = 0; rs < eng.rowSegments(); ++rs)
        for (int cs = 0; cs < eng.colSegments(); ++cs)
            disabled += !eng.abftActive(rs, cs);
    ASSERT_GT(disabled, 0u);
    EXPECT_EQ(eng.transientStats().abftDisabledTiles, disabled);

    for (int op = 0; op < 4; ++op)
        eng.dotProduct(randomWords(rng, n));
    const auto ts = eng.transientStats();
    EXPECT_EQ(ts.abftMismatches, 0u);
    EXPECT_EQ(ts.abftDisabledTiles, disabled); // survives running

    eng.resetStats();
    EXPECT_EQ(eng.transientStats().abftDisabledTiles, disabled);
}

TEST(Abft, ResetStatsReplaysTheIdenticalRealization)
{
    // Satellite regression: after resetStats() the engine must
    // reproduce a fresh engine's results AND counters on the same
    // workload — op sequence, noise streams, and drift clocks all
    // rewind together.
    Rng rng(818);
    const int n = 256, m = 16;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 2;
    cfg.abftChecksum = true;
    cfg.noise.sigmaLsb = 2.0;
    cfg.noise.driftLevelsPerOp = 0.1;
    cfg.noise.refreshIntervalOps = 4;
    cfg.noise.seed = 21;

    std::vector<std::vector<Word>> workload;
    for (int op = 0; op < 8; ++op)
        workload.push_back(randomWords(rng, n));

    BitSerialEngine eng(cfg, weights, n, m);
    std::vector<std::vector<Acc>> firstRun;
    for (const auto &inputs : workload)
        firstRun.push_back(eng.dotProduct(inputs));
    const auto firstTransient = eng.transientStats();
    const auto firstStats = eng.stats();
    ASSERT_GT(firstTransient.driftRefreshes, 0u);

    eng.resetStats();
    EXPECT_EQ(eng.transientStats(), resilience::TransientStats{});

    for (std::size_t op = 0; op < workload.size(); ++op)
        EXPECT_EQ(eng.dotProduct(workload[op]), firstRun[op])
            << "op " << op;
    EXPECT_EQ(eng.transientStats(), firstTransient);
    EXPECT_EQ(eng.stats().crossbarReads, firstStats.crossbarReads);
    EXPECT_EQ(eng.stats().adcSamples, firstStats.adcSamples);

    // And a fresh engine agrees with both runs.
    BitSerialEngine fresh(cfg, weights, n, m);
    for (std::size_t op = 0; op < workload.size(); ++op)
        EXPECT_EQ(fresh.dotProduct(workload[op]), firstRun[op]);
    EXPECT_EQ(fresh.transientStats(), firstTransient);
}

} // namespace
} // namespace isaac::xbar
