/**
 * @file
 * Encoding-scheme tests: weight bias, slicing, and column flipping.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "xbar/encoding.h"

namespace isaac::xbar {
namespace {

TEST(Encoding, BiasRoundTripsFullRange)
{
    for (std::int32_t w = -32768; w <= 32767; w += 13) {
        const auto word = static_cast<Word>(w);
        EXPECT_EQ(unbiasWeight(biasWeight(word)), word);
    }
    // The bias maps the signed range onto [0, 65535] monotonically.
    EXPECT_EQ(biasWeight(-32768), 0);
    EXPECT_EQ(biasWeight(0), 32768);
    EXPECT_EQ(biasWeight(32767), 65535);
}

TEST(Encoding, SliceRoundTripsForAllCellWidths)
{
    Rng rng(3);
    for (int w : {1, 2, 4, 8, 16}) {
        for (int i = 0; i < 500; ++i) {
            const auto u = static_cast<std::uint16_t>(
                rng.uniform(0, 65535));
            const auto digits = sliceWeight(u, w);
            EXPECT_EQ(digits.size(),
                      static_cast<std::size_t>(16 / w));
            for (int d : digits) {
                EXPECT_GE(d, 0);
                EXPECT_LT(d, 1 << w);
            }
            EXPECT_EQ(unsliceWeight(digits, w), u);
        }
    }
}

TEST(Encoding, SliceRejectsNonDivisors)
{
    EXPECT_THROW(sliceWeight(0, 3), FatalError);
    EXPECT_THROW(sliceWeight(0, 5), FatalError);
    EXPECT_THROW(sliceWeight(0, 0), FatalError);
}

TEST(Encoding, SliceIsLittleEndian)
{
    const auto digits = sliceWeight(0b10'01'00'11'01'10'11'00, 2);
    // LSB digit first.
    const std::vector<int> expect{0b00, 0b11, 0b10, 0b01,
                                  0b11, 0b00, 0b01, 0b10};
    EXPECT_EQ(digits, expect);
}

TEST(Encoding, FlipDecisionIsHalfSum)
{
    const std::vector<int> low{0, 1, 1, 0};   // sum 2 <= 6
    const std::vector<int> high{3, 3, 2, 3};  // sum 11 > 6
    const std::vector<int> half{3, 3, 0, 0};  // sum 6 == 6 -> no flip
    EXPECT_FALSE(shouldFlipColumn(low, 2));
    EXPECT_TRUE(shouldFlipColumn(high, 2));
    EXPECT_FALSE(shouldFlipColumn(half, 2));
}

TEST(Encoding, FlipLevelIsInvolution)
{
    for (int w : {1, 2, 4}) {
        for (int level = 0; level < (1 << w); ++level)
            EXPECT_EQ(flipLevel(flipLevel(level, w), w), level);
    }
}

TEST(Encoding, UnflipRecoversTrueSum)
{
    // Property (Sec. V): sum(a*Wbar) = (2^w-1)*sum(a) - sum(a*W).
    Rng rng(5);
    const int w = 2;
    for (int trial = 0; trial < 300; ++trial) {
        const int rows = static_cast<int>(rng.uniform(1, 128));
        Acc trueSum = 0, flippedSum = 0, unit = 0;
        for (int r = 0; r < rows; ++r) {
            const int a = static_cast<int>(rng.uniform(0, 1));
            const int level = static_cast<int>(rng.uniform(0, 3));
            trueSum += static_cast<Acc>(a) * level;
            flippedSum += static_cast<Acc>(a) * flipLevel(level, w);
            unit += a;
        }
        EXPECT_EQ(unflipColumnSum(flippedSum, unit, w), trueSum);
    }
}

TEST(Encoding, FlippedColumnsRespectCeiling)
{
    // Property: after applying the flip decision, the worst-case
    // bitline current (all inputs maximal) never exceeds the
    // encoded ceiling -- the invariant that buys the 8-bit ADC.
    Rng rng(7);
    const int w = 2, rows = 128, v = 1;
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<int> levels(rows);
        for (auto &l : levels)
            l = static_cast<int>(rng.uniform(0, 3));
        if (shouldFlipColumn(levels, w)) {
            for (auto &l : levels)
                l = flipLevel(l, w);
        }
        Acc worst = 0;
        for (int l : levels)
            worst += l;
        EXPECT_LE(worst, encodedColumnCeiling(rows, v, w));
    }
}

TEST(Encoding, CeilingFitsEightBitAdc)
{
    // 128 rows, 1-bit inputs, 2-bit cells: ceiling 192 < 256.
    EXPECT_EQ(encodedColumnCeiling(128, 1, 2), 192);
    EXPECT_LT(encodedColumnCeiling(128, 1, 2), 256);
    // Without the encoding the worst case is 384: needs 9 bits.
    EXPECT_EQ(128LL * 3, 384);
}

} // namespace
} // namespace isaac::xbar
