/**
 * @file
 * Packed bit-plane fast path + digit-vector memoization: the golden
 * equivalence suite. The fast path is only allowed to exist because
 * it is *invisible* — results, EngineStats, per-tile AdcTally, and
 * TransientStats must be bit-identical to the legacy scalar path for
 * every configuration and thread count, memo hits included. These
 * tests sweep the encoding space, prove the dispatch rules
 * (noisy/drifting/injected configs fall back to scalar), and prove
 * invalidation on reprogramming.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "xbar/engine.h"

namespace isaac::xbar {
namespace {

std::vector<Word>
randomWords(Rng &rng, int n, int lo = -32768, int hi = 32767)
{
    std::vector<Word> v(static_cast<std::size_t>(n));
    for (auto &w : v)
        w = static_cast<Word>(rng.uniform(lo, hi));
    return v;
}

/** Everything an engine run is observable by. */
struct RunTrace
{
    std::vector<std::vector<Acc>> results;
    EngineStats stats;
    resilience::TransientStats transient;
    std::vector<AdcTally> tiles;
    std::uint64_t readCycles = 0;
    std::uint64_t adcClips = 0;
};

/** Run a sequence of inputs (with repeats) and trace everything. */
RunTrace
runSequence(const EngineConfig &cfg, std::span<const Word> weights,
            int n, int m,
            const std::vector<std::vector<Word>> &inputs)
{
    BitSerialEngine engine(cfg, weights, n, m);
    RunTrace trace;
    for (const auto &x : inputs)
        trace.results.push_back(engine.dotProduct(x));
    trace.stats = engine.stats();
    trace.transient = engine.transientStats();
    for (int rs = 0; rs < engine.rowSegments(); ++rs)
        for (int cs = 0; cs < engine.colSegments(); ++cs)
            trace.tiles.push_back(engine.tileAdcTally(rs, cs));
    trace.readCycles = engine.readCycles();
    trace.adcClips = engine.adcClips();
    return trace;
}

void
expectTracesEqual(const RunTrace &a, const RunTrace &b,
                  const std::string &label)
{
    SCOPED_TRACE(label);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i)
        EXPECT_EQ(a.results[i], b.results[i]) << "op " << i;
    EXPECT_TRUE(a.stats == b.stats);
    EXPECT_EQ(a.transient.abftChecks, b.transient.abftChecks);
    EXPECT_EQ(a.transient.abftMismatches, b.transient.abftMismatches);
    EXPECT_EQ(a.transient.abftRetries, b.transient.abftRetries);
    EXPECT_EQ(a.transient.abftRetryCycles,
              b.transient.abftRetryCycles);
    EXPECT_EQ(a.transient.abftUncorrected,
              b.transient.abftUncorrected);
    EXPECT_EQ(a.transient.abftDisabledTiles,
              b.transient.abftDisabledTiles);
    ASSERT_EQ(a.tiles.size(), b.tiles.size());
    for (std::size_t i = 0; i < a.tiles.size(); ++i) {
        EXPECT_EQ(a.tiles[i].samples, b.tiles[i].samples)
            << "tile " << i;
        EXPECT_EQ(a.tiles[i].clips, b.tiles[i].clips) << "tile " << i;
    }
    EXPECT_EQ(a.readCycles, b.readCycles);
    EXPECT_EQ(a.adcClips, b.adcClips);
}

/** A named configuration point of the equivalence sweep. */
struct SweepPoint
{
    const char *name;
    EngineConfig cfg;
};

/**
 * The sweep: {cellBits, dacBits, flipEncoding, spares, ABFT on/off,
 * TwosComplement/Biased} plus programming-time non-idealities
 * (write noise, stuck cells) that the packed path must read through
 * exactly because they only shape the *stored* levels.
 */
std::vector<SweepPoint>
sweepPoints()
{
    std::vector<SweepPoint> points;
    {
        SweepPoint p{"default-ce", {}};
        points.push_back(p);
    }
    {
        SweepPoint p{"w1-unflipped", {}};
        p.cfg.cellBits = 1;
        p.cfg.flipEncoding = false;
        points.push_back(p);
    }
    {
        SweepPoint p{"w4-abft", {}};
        p.cfg.cellBits = 4;
        p.cfg.abftChecksum = true;
        points.push_back(p);
    }
    {
        SweepPoint p{"biased-dac2", {}};
        p.cfg.dacBits = 2;
        p.cfg.inputMode = InputMode::Biased;
        points.push_back(p);
    }
    {
        SweepPoint p{"biased-dac4-w4", {}};
        p.cfg.dacBits = 4;
        p.cfg.cellBits = 4;
        p.cfg.inputMode = InputMode::Biased;
        points.push_back(p);
    }
    {
        // Stuck cells + spares: the remapper moves columns, the
        // checksum derives from stored levels, and the packed planes
        // must capture exactly what landed.
        SweepPoint p{"stuck-spares-abft", {}};
        p.cfg.spareCols = 4;
        p.cfg.abftChecksum = true;
        p.cfg.noise.stuckAtFraction = 0.01;
        p.cfg.noise.stuckMode = StuckMode::RandomLevel;
        points.push_back(p);
    }
    {
        SweepPoint p{"write-noise", {}};
        p.cfg.noise.writeSigmaLevels = 0.4;
        p.cfg.noise.maxProgramPulses = 6;
        points.push_back(p);
    }
    return points;
}

TEST(FastPath, GoldenEquivalenceSweep)
{
    const int n = 200, m = 20; // 2 row segments x >=2 col segments
    Rng rng(0xFA57);
    const auto weights = randomWords(rng, n * m);
    // Sequence with repeats and a small-magnitude vector: exercises
    // memo hits within a call (sign-extended phases), across calls,
    // and across distinct keys.
    std::vector<std::vector<Word>> inputs;
    inputs.push_back(randomWords(rng, n));
    inputs.push_back(randomWords(rng, n, -50, 50));
    inputs.push_back(inputs[0]);
    inputs.push_back(randomWords(rng, n));
    inputs.push_back(inputs[1]);

    for (const auto &point : sweepPoints()) {
        EngineConfig scalar = point.cfg;
        scalar.threads = 1;
        scalar.fastPath = false;
        scalar.memoEntries = 0;
        const auto golden =
            runSequence(scalar, weights, n, m, inputs);

        for (const int threads : {1, 2, 4, 8}) {
            EngineConfig fast = point.cfg;
            fast.threads = threads;
            fast.fastPath = true;
            fast.memoEntries = 0;
            expectTracesEqual(
                golden, runSequence(fast, weights, n, m, inputs),
                std::string(point.name) + " fast t" +
                    std::to_string(threads));

            EngineConfig memo = point.cfg;
            memo.threads = threads;
            memo.fastPath = true;
            memo.memoEntries = 64;
            expectTracesEqual(
                golden, runSequence(memo, weights, n, m, inputs),
                std::string(point.name) + " memo t" +
                    std::to_string(threads));
        }
    }
}

TEST(FastPath, MemoActuallyEngagesAndStaysExact)
{
    EngineConfig cfg;
    cfg.threads = 1;
    Rng rng(0x5EED);
    const auto weights = randomWords(rng, 128 * 16);
    const auto x = randomWords(rng, 128);
    BitSerialEngine engine(cfg, weights, 128, 16);
    ASSERT_TRUE(engine.fastPathActive());

    const auto first = engine.dotProduct(x);
    const auto missesAfterFirst = engine.memoMisses();
    EXPECT_GT(missesAfterFirst, 0u);
    // The second identical call replays every (phase, tile) reading.
    const auto second = engine.dotProduct(x);
    EXPECT_EQ(first, second);
    EXPECT_EQ(engine.memoMisses(), missesAfterFirst);
    EXPECT_EQ(engine.memoHits(), missesAfterFirst);
    // Counter parity with an unmemoized engine over the same ops.
    EngineConfig plain = cfg;
    plain.memoEntries = 0;
    BitSerialEngine reference(plain, weights, 128, 16);
    reference.dotProduct(x);
    reference.dotProduct(x);
    EXPECT_TRUE(engine.stats() == reference.stats());
    EXPECT_EQ(engine.readCycles(), reference.readCycles());
}

TEST(FastPath, SmallMagnitudeInputsShareSignPhases)
{
    // Non-negative small activations (a ReLU'd, quantized layer's
    // reality): bits 7..15 are all zero, so 9 of the 16 phases
    // present the all-zero digit vector and hit one memo entry.
    EngineConfig cfg;
    cfg.threads = 1;
    Rng rng(0xAC71);
    const auto weights = randomWords(rng, 128 * 16);
    const auto x = randomWords(rng, 128, 0, 127);
    BitSerialEngine engine(cfg, weights, 128, 16);
    engine.dotProduct(x);
    EXPECT_GE(engine.memoHits(), 8u);
}

TEST(FastPath, InvalidationOnReprogram)
{
    const int n = 200, m = 20;
    Rng rng(0x4EBD);
    const auto w1 = randomWords(rng, n * m);
    const auto w2 = randomWords(rng, n * m);
    const auto x = randomWords(rng, n);

    EngineConfig cfg;
    cfg.threads = 1;
    BitSerialEngine engine(cfg, w1, n, m);
    EngineConfig scalar = cfg;
    scalar.fastPath = false;
    scalar.memoEntries = 0;

    // program -> read -> reprogram -> read: the second read must see
    // the new weights, not a memoized reading of the old ones.
    {
        BitSerialEngine ref(scalar, w1, n, m);
        EXPECT_EQ(engine.dotProduct(x), ref.dotProduct(x));
    }
    engine.reprogram(w2);
    {
        BitSerialEngine ref(scalar, w2, n, m);
        EXPECT_EQ(engine.dotProduct(x), ref.dotProduct(x));
    }
}

TEST(FastPath, NoisyConfigFallsBackToScalar)
{
    EngineConfig noisy;
    noisy.threads = 1;
    noisy.noise.sigmaLsb = 0.5;
    Rng rng(0x0157);
    const auto weights = randomWords(rng, 128 * 16);
    const auto x = randomWords(rng, 128);

    BitSerialEngine engine(noisy, weights, 128, 16);
    EXPECT_FALSE(engine.fastPathActive());
    const auto got = engine.dotProduct(x);
    EXPECT_EQ(engine.memoHits() + engine.memoMisses(), 0u);

    // The knob is inert under noise: identical noise realization.
    EngineConfig legacy = noisy;
    legacy.fastPath = false;
    legacy.memoEntries = 0;
    BitSerialEngine ref(legacy, weights, 128, 16);
    EXPECT_EQ(got, ref.dotProduct(x));
    EXPECT_TRUE(engine.stats() == ref.stats());
}

TEST(FastPath, DriftConfigFallsBackToScalar)
{
    EngineConfig drifty;
    drifty.threads = 1;
    drifty.noise.driftLevelsPerOp = 0.01;
    drifty.noise.refreshIntervalOps = 16;
    Rng rng(0xD21F);
    const auto weights = randomWords(rng, 128 * 16);
    BitSerialEngine engine(drifty, weights, 128, 16);
    EXPECT_FALSE(engine.fastPathActive());
}

TEST(FastPath, InjectionDisablesFastPath)
{
    EngineConfig cfg;
    cfg.threads = 1;
    cfg.abftChecksum = true;
    Rng rng(0x1412);
    const auto weights = randomWords(rng, 128 * 16);
    const auto x = randomWords(rng, 128);

    BitSerialEngine engine(cfg, weights, 128, 16);
    engine.dotProduct(x); // populate the memo while clean
    ASSERT_TRUE(engine.fastPathActive());
    engine.injectCellFault(0, 0, 3, 5, 0);
    EXPECT_FALSE(engine.fastPathActive());

    // Post-injection reads must match a scalar engine with the same
    // injection — the memoized clean readings must not leak through.
    EngineConfig scalar = cfg;
    scalar.fastPath = false;
    scalar.memoEntries = 0;
    BitSerialEngine ref(scalar, weights, 128, 16);
    ref.dotProduct(x);
    ref.injectCellFault(0, 0, 3, 5, 0);
    EXPECT_EQ(engine.dotProduct(x), ref.dotProduct(x));
    const auto ts = engine.transientStats();
    const auto rts = ref.transientStats();
    EXPECT_EQ(ts.abftMismatches, rts.abftMismatches);
    EXPECT_EQ(ts.abftRetries, rts.abftRetries);
}

TEST(FastPath, CrossbarPackedMatchesScalar)
{
    // Array-level equivalence, including stuck cells frozen at
    // arbitrary levels and multi-bit digits.
    const int rows = 100, cols = 37, cellBits = 3;
    CrossbarArray xb(rows, cols, cellBits);
    Rng rng(0xB17);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            xb.program(r, c,
                       static_cast<int>(rng.uniform(0, 7)));
    xb.forceStuck(5, 7, 6);
    xb.forceStuck(63, 0, 1);
    xb.forceStuck(64, 36, 5);

    for (const int digitBits : {1, 2, 4}) {
        std::vector<int> digits(static_cast<std::size_t>(rows));
        for (auto &d : digits)
            d = static_cast<int>(
                rng.uniform(0, (1 << digitBits) - 1));
        const int words = xb.planeWords();
        std::vector<std::uint64_t> planes(
            static_cast<std::size_t>(digitBits) * words, 0);
        for (int r = 0; r < rows; ++r)
            for (int j = 0; j < digitBits; ++j)
                if ((digits[static_cast<std::size_t>(r)] >> j) & 1)
                    planes[static_cast<std::size_t>(j) * words +
                           r / 64] |= std::uint64_t{1} << (r % 64);

        const auto scalar = xb.readAllBitlines(digits, 0);
        std::vector<Acc> packed;
        xb.readAllBitlinesPacked(planes, digitBits, packed);
        EXPECT_EQ(scalar, packed) << "digitBits " << digitBits;
    }
}

TEST(FastPath, PlaneRebuildAfterMutation)
{
    CrossbarArray xb(70, 5, 2);
    std::vector<int> digits(70, 1);
    std::vector<std::uint64_t> planes(2, 0); // 70 rows -> 2 words
    planes[0] = ~std::uint64_t{0};
    planes[1] = (std::uint64_t{1} << (70 - 64)) - 1;

    std::vector<Acc> out;
    xb.readAllBitlinesPacked(planes, 1, out);
    EXPECT_EQ(out[2], 0);

    xb.program(69, 2, 3); // last row: exercises the word boundary
    xb.readAllBitlinesPacked(planes, 1, out);
    EXPECT_EQ(out[2], 3);

    xb.forceStuck(69, 2, 1);
    xb.readAllBitlinesPacked(planes, 1, out);
    EXPECT_EQ(out[2], 1);
}

TEST(FastPath, PackedRefusesNoisyArrays)
{
    CrossbarArray xb(8, 2, 2);
    NoiseSpec spec;
    spec.sigmaLsb = 0.1;
    xb.setNoise(spec);
    std::vector<std::uint64_t> planes(1, 0xFF);
    std::vector<Acc> out;
    EXPECT_THROW(xb.readAllBitlinesPacked(planes, 1, out),
                 FatalError);
    EXPECT_FALSE(xb.packedReadExact());
}

TEST(FastPath, MemoEntriesZeroDisablesMemo)
{
    EngineConfig cfg;
    cfg.threads = 1;
    cfg.memoEntries = 0;
    Rng rng(0x0FF);
    const auto weights = randomWords(rng, 128 * 16);
    const auto x = randomWords(rng, 128);
    BitSerialEngine engine(cfg, weights, 128, 16);
    EXPECT_TRUE(engine.fastPathActive()); // packed path, no memo
    engine.dotProduct(x);
    engine.dotProduct(x);
    EXPECT_EQ(engine.memoHits() + engine.memoMisses(), 0u);
}

TEST(FastPath, HashCollisionsAreMissesNotWrongReplays)
{
    // Two distinct digit-plane keys engineered to share their FNV-1a
    // hash: the memo index is a multimap and replay verifies the full
    // key, so the second key must *miss* (and insert its own entry),
    // never replay the first key's reading. The hash is FNV-1a over
    // the plane words (h ^= w; h *= P), so for two-word keys
    //   hash(a0, a1) == hash(b0, b1)  iff
    //   ((OFF ^ a0) * P) ^ a1 == ((OFF ^ b0) * P) ^ b1.
    constexpr std::uint64_t kOff = 14695981039346656037ull;
    constexpr std::uint64_t kPrime = 1099511628211ull;
    const std::uint64_t a0 = 0x0123456789ABCDEFull;
    const std::uint64_t b0 = 0xFEDCBA9876543210ull;
    const std::uint64_t b1 = 0x5555AAAA3333CCCCull;
    const std::uint64_t a1 =
        ((kOff ^ a0) * kPrime) ^ ((kOff ^ b0) * kPrime) ^ b1;
    ASSERT_NE(a0, b0);

    // Realize the keys as inputs: 128 rows = exactly two plane
    // words, and inputs in {0, 1} put the key in phase 0's plane
    // while phases 1..15 all present the all-zero plane.
    const auto inputsFor = [](std::uint64_t w0, std::uint64_t w1) {
        std::vector<Word> x(128, 0);
        for (int r = 0; r < 64; ++r) {
            x[static_cast<std::size_t>(r)] =
                static_cast<Word>((w0 >> r) & 1);
            x[static_cast<std::size_t>(64 + r)] =
                static_cast<Word>((w1 >> r) & 1);
        }
        return x;
    };
    const auto xa = inputsFor(a0, a1);
    const auto xb = inputsFor(b0, b1);

    EngineConfig cfg;
    cfg.threads = 1;
    Rng rng(0xC0111);
    const auto weights = randomWords(rng, 128 * 16);
    BitSerialEngine engine(cfg, weights, 128, 16);
    ASSERT_EQ(engine.rowSegments() * engine.colSegments(), 1);
    ASSERT_TRUE(engine.fastPathActive());

    // Call 1: phase 0 misses (key A), phase 1 misses (all-zero),
    // phases 2..15 hit the all-zero entry.
    engine.dotProduct(xa);
    EXPECT_EQ(engine.memoMisses(), 2u);
    EXPECT_EQ(engine.memoHits(), 14u);

    // Call 2: phase 0 collides with key A's hash but fails the full
    // key compare -> a third miss, NOT a replay of A's reading.
    const auto got = engine.dotProduct(xb);
    EXPECT_EQ(engine.memoMisses(), 3u);
    EXPECT_EQ(engine.memoHits(), 29u);

    EngineConfig scalar = cfg;
    scalar.fastPath = false;
    scalar.memoEntries = 0;
    BitSerialEngine oracle(scalar, weights, 128, 16);
    oracle.dotProduct(xa);
    EXPECT_EQ(got, oracle.dotProduct(xb));
}

TEST(FastPath, ResetStatsClearsTheMemoForExactReplay)
{
    // resetStats() promises a replayed campaign reports what a fresh
    // engine would — which requires dropping the cached entries AND
    // the hit/miss diagnostics, not just the EngineStats tallies.
    EngineConfig cfg;
    cfg.threads = 1;
    Rng rng(0x2E5E7);
    const auto weights = randomWords(rng, 128 * 16);
    const auto x = randomWords(rng, 128);
    const auto y = randomWords(rng, 128, -50, 50);

    BitSerialEngine engine(cfg, weights, 128, 16);
    engine.dotProduct(x);
    engine.dotProduct(y);
    engine.dotProduct(x);
    const auto firstResults = engine.dotProduct(y);
    const auto firstStats = engine.stats();
    const auto firstHits = engine.memoHits();
    const auto firstMisses = engine.memoMisses();
    const auto firstCycles = engine.readCycles();
    EXPECT_GT(firstHits, 0u);
    EXPECT_GT(firstMisses, 0u);

    engine.resetStats();
    EXPECT_EQ(engine.memoHits(), 0u);
    EXPECT_EQ(engine.memoMisses(), 0u);
    EXPECT_EQ(engine.readCycles(), 0u);
    EXPECT_EQ(engine.stats(), EngineStats{});

    // The replay is indistinguishable from the first run: same
    // results, same counters, same hit/miss split (entries were
    // dropped, so the misses really recompute).
    engine.dotProduct(x);
    engine.dotProduct(y);
    engine.dotProduct(x);
    EXPECT_EQ(engine.dotProduct(y), firstResults);
    EXPECT_TRUE(engine.stats() == firstStats);
    EXPECT_EQ(engine.memoHits(), firstHits);
    EXPECT_EQ(engine.memoMisses(), firstMisses);
    EXPECT_EQ(engine.readCycles(), firstCycles);
}

TEST(FastPath, LruEvictionKeepsResultsExact)
{
    // More distinct digit vectors than memo entries: eviction churn
    // must never change a result.
    EngineConfig tiny;
    tiny.threads = 1;
    tiny.memoEntries = 2;
    EngineConfig scalar;
    scalar.threads = 1;
    scalar.fastPath = false;
    scalar.memoEntries = 0;
    Rng rng(0x174);
    const auto weights = randomWords(rng, 128 * 16);
    BitSerialEngine a(tiny, weights, 128, 16);
    BitSerialEngine b(scalar, weights, 128, 16);
    for (int i = 0; i < 8; ++i) {
        const auto x = randomWords(rng, 128);
        EXPECT_EQ(a.dotProduct(x), b.dotProduct(x)) << "op " << i;
    }
    EXPECT_TRUE(a.stats() == b.stats());
}

} // namespace
} // namespace isaac::xbar
