/**
 * @file
 * Crossbar-array tests: programming, Kirchhoff bitline sums, noise.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "xbar/crossbar.h"

namespace isaac::xbar {
namespace {

TEST(Crossbar, ProgramsAndReadsBack)
{
    CrossbarArray xb(4, 3, 2);
    xb.program(0, 0, 3);
    xb.program(3, 2, 1);
    EXPECT_EQ(xb.cell(0, 0), 3);
    EXPECT_EQ(xb.cell(3, 2), 1);
    EXPECT_EQ(xb.cell(1, 1), 0);
    EXPECT_EQ(xb.programmedCells(), 2);
}

TEST(Crossbar, RejectsBadProgramming)
{
    CrossbarArray xb(4, 3, 2);
    EXPECT_THROW(xb.program(4, 0, 1), FatalError);
    EXPECT_THROW(xb.program(0, 3, 1), FatalError);
    EXPECT_THROW(xb.program(0, 0, 4), FatalError); // > 2^2 - 1
    EXPECT_THROW(xb.program(0, 0, -1), FatalError);
}

TEST(Crossbar, BitlineIsSumOfProducts)
{
    // Fig. 1a: I = V1*G1 + V2*G2.
    CrossbarArray xb(2, 1, 2);
    xb.program(0, 0, 3); // G1
    xb.program(1, 0, 2); // G2
    const int inputs[] = {1, 1};
    EXPECT_EQ(xb.readBitline(0, inputs), 5);
    const int in2[] = {0, 1};
    EXPECT_EQ(xb.readBitline(0, in2), 2);
    const int in3[] = {3, 2}; // multi-bit DAC digits
    EXPECT_EQ(xb.readBitline(0, in3), 13);
}

TEST(Crossbar, ReadAllMatchesPerColumn)
{
    Rng rng(17);
    CrossbarArray xb(128, 129, 2);
    for (int r = 0; r < 128; ++r)
        for (int c = 0; c < 129; ++c)
            xb.program(r, c, static_cast<int>(rng.uniform(0, 3)));
    std::vector<int> inputs(128);
    for (auto &i : inputs)
        i = static_cast<int>(rng.uniform(0, 1));
    const auto all = xb.readAllBitlines(inputs);
    ASSERT_EQ(all.size(), 129u);
    for (int c = 0; c < 129; ++c)
        EXPECT_EQ(all[static_cast<std::size_t>(c)],
                  xb.readBitline(c, inputs));
}

TEST(Crossbar, ShortInputVectorTreatsMissingRowsAsZero)
{
    CrossbarArray xb(4, 1, 2);
    for (int r = 0; r < 4; ++r)
        xb.program(r, 0, 1);
    const int inputs[] = {1, 1};
    EXPECT_EQ(xb.readBitline(0, inputs), 2);
}

TEST(Crossbar, ReadCyclesCounted)
{
    CrossbarArray xb(4, 2, 2);
    const int inputs[] = {1, 0, 1, 0};
    xb.readAllBitlines(inputs);
    xb.readAllBitlines(inputs);
    EXPECT_EQ(xb.readCycles(), 2u);
}

TEST(Crossbar, NoiseShiftsReadsButStaysNonNegative)
{
    CrossbarArray xb(16, 1, 2);
    for (int r = 0; r < 16; ++r)
        xb.program(r, 0, 2);
    std::vector<int> inputs(16, 1);
    const Acc clean = xb.readBitline(0, inputs);
    EXPECT_EQ(clean, 32);

    NoiseSpec spec;
    spec.sigmaLsb = 2.0;
    spec.seed = 99;
    xb.setNoise(spec);
    int different = 0;
    for (int i = 0; i < 200; ++i) {
        const Acc noisy = xb.readBitline(0, inputs);
        EXPECT_GE(noisy, 0);
        different += noisy != clean;
    }
    // With sigma = 2 LSB most reads differ from the clean value.
    EXPECT_GT(different, 100);
}

TEST(Crossbar, NoiseIsDeterministicPerSeed)
{
    auto runOnce = [] {
        CrossbarArray xb(8, 1, 2);
        for (int r = 0; r < 8; ++r)
            xb.program(r, 0, 1);
        NoiseSpec spec;
        spec.sigmaLsb = 1.5;
        spec.seed = 1234;
        xb.setNoise(spec);
        std::vector<int> inputs(8, 1);
        std::vector<Acc> reads;
        for (int i = 0; i < 32; ++i)
            reads.push_back(xb.readBitline(0, inputs));
        return reads;
    };
    EXPECT_EQ(runOnce(), runOnce());
}

} // namespace
} // namespace isaac::xbar
