/**
 * @file
 * The plane-major batched popcount GEMM: kernel-level bit-exactness
 * of every compiled dispatch tier against a direct triple-loop
 * oracle, and engine-level equivalence of dotProductBatch() with N
 * sequential dotProduct() calls — results, EngineStats, per-tile
 * AdcTally, TransientStats, and read cycles, at every thread count,
 * every forced tier, and across the encoding sweep. The batched path
 * is only allowed to exist because these never move.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "xbar/batch_kernel.h"
#include "xbar/engine.h"

namespace isaac::xbar {
namespace {

/** Restore the dispatch tier even when an assertion throws. */
struct TierGuard
{
    ~TierGuard() { kernel::resetTierOverride(); }
};

std::vector<std::uint64_t>
randomPlanes(Rng &rng, std::size_t n)
{
    std::vector<std::uint64_t> v(n);
    for (auto &w : v)
        w = rng.next();
    return v;
}

/** The kernel contract, evaluated the slow obvious way. */
std::vector<Acc>
referenceGemm(const std::vector<std::uint64_t> &cellPlanes, int cols,
              int cellBits, int words,
              const std::vector<std::uint64_t> &dig, int digitBits,
              int n)
{
    std::vector<Acc> out(static_cast<std::size_t>(cols) * n, 0);
    for (int c = 0; c < cols; ++c) {
        for (int i = 0; i < n; ++i) {
            Acc v = 0;
            for (int b = 0; b < cellBits; ++b)
                for (int j = 0; j < digitBits; ++j)
                    for (int w = 0; w < words; ++w) {
                        const auto d =
                            dig[(static_cast<std::size_t>(j) * words +
                                 w) * n + i];
                        const auto p = cellPlanes
                            [(static_cast<std::size_t>(c) * cellBits +
                              b) * words + w];
                        v += static_cast<Acc>(std::popcount(d & p))
                             << (b + j);
                    }
            out[static_cast<std::size_t>(c) * n + i] = v;
        }
    }
    return out;
}

TEST(Batched, KernelMatchesOracleAtEveryCompiledTier)
{
    struct Geometry
    {
        int cols, cellBits, words, digitBits, n;
    };
    // n values straddle the SIMD lane widths (4 and 8) and their
    // tails; words straddle the register-resident n == 1 specials.
    const Geometry geoms[] = {
        {1, 1, 1, 1, 1},   {5, 1, 3, 1, 1},  {16, 2, 2, 1, 1},
        {16, 2, 2, 1, 3},  {8, 4, 1, 2, 8},  {37, 3, 2, 4, 5},
        {12, 2, 3, 2, 31}, {3, 2, 4, 4, 33}, {64, 2, 2, 1, 100},
    };

    Rng rng(0xBA7C);
    const auto top = static_cast<int>(kernel::detectedTier());
    TierGuard guard;
    for (const auto &g : geoms) {
        const auto cellPlanes = randomPlanes(
            rng, static_cast<std::size_t>(g.cols) * g.cellBits *
                     g.words);
        const auto dig = randomPlanes(
            rng,
            static_cast<std::size_t>(g.digitBits) * g.words * g.n);
        const auto want = referenceGemm(cellPlanes, g.cols, g.cellBits,
                                        g.words, dig, g.digitBits,
                                        g.n);
        for (int t = 0; t <= top; ++t) {
            kernel::forceTier(static_cast<kernel::Tier>(t));
            std::vector<Acc> got(want.size(), -1);
            kernel::batchedBitlineSums(cellPlanes.data(), g.cols,
                                       g.cellBits, g.words, dig.data(),
                                       g.digitBits, g.n, got.data());
            EXPECT_EQ(want, got)
                << "tier "
                << kernel::tierName(static_cast<kernel::Tier>(t))
                << " cols=" << g.cols << " cellBits=" << g.cellBits
                << " words=" << g.words << " digitBits=" << g.digitBits
                << " n=" << g.n;
        }
        kernel::resetTierOverride();
    }
}

TEST(Batched, TierApiIsSane)
{
    TierGuard guard;
    const auto detected = kernel::detectedTier();
    EXPECT_EQ(kernel::activeTier(), detected);
    // Every tier up to the detected one is forceable and sticky.
    for (int t = 0; t <= static_cast<int>(detected); ++t) {
        kernel::forceTier(static_cast<kernel::Tier>(t));
        EXPECT_EQ(kernel::activeTier(), static_cast<kernel::Tier>(t));
    }
    kernel::resetTierOverride();
    EXPECT_EQ(kernel::activeTier(), detected);
    // Forcing past what the host supports would trap on execution,
    // so the hook refuses it up front.
    if (detected != kernel::Tier::Avx512) {
        EXPECT_THROW(
            kernel::forceTier(static_cast<kernel::Tier>(
                static_cast<int>(detected) + 1)),
            FatalError);
        EXPECT_EQ(kernel::activeTier(), detected);
    }
    EXPECT_STREQ(kernel::tierName(kernel::Tier::Scalar), "scalar");
}

std::vector<Word>
randomWords(Rng &rng, int n, int lo = -32768, int hi = 32767)
{
    std::vector<Word> v(static_cast<std::size_t>(n));
    for (auto &w : v)
        w = static_cast<Word>(rng.uniform(lo, hi));
    return v;
}

/** Everything one engine run is observable by. */
struct RunTrace
{
    std::vector<Acc> results; ///< count * numOutputs, window-major.
    EngineStats stats;
    resilience::TransientStats transient;
    std::vector<AdcTally> tiles;
    std::uint64_t readCycles = 0;
    std::uint64_t adcClips = 0;
};

void
captureCounters(const BitSerialEngine &engine, RunTrace &trace)
{
    trace.stats = engine.stats();
    trace.transient = engine.transientStats();
    for (int rs = 0; rs < engine.rowSegments(); ++rs)
        for (int cs = 0; cs < engine.colSegments(); ++cs)
            trace.tiles.push_back(engine.tileAdcTally(rs, cs));
    trace.readCycles = engine.readCycles();
    trace.adcClips = engine.adcClips();
}

/** count windows through sequential dotProduct() calls. */
RunTrace
runSequential(const EngineConfig &cfg, std::span<const Word> weights,
              int n, int m, const std::vector<Word> &inputs,
              int count)
{
    BitSerialEngine engine(cfg, weights, n, m);
    RunTrace trace;
    for (int i = 0; i < count; ++i) {
        const auto r = engine.dotProduct(std::span<const Word>(
            inputs.data() + static_cast<std::size_t>(i) * n,
            static_cast<std::size_t>(n)));
        trace.results.insert(trace.results.end(), r.begin(), r.end());
    }
    captureCounters(engine, trace);
    return trace;
}

/** The same windows through one dotProductBatch() call. */
RunTrace
runBatched(const EngineConfig &cfg, std::span<const Word> weights,
           int n, int m, const std::vector<Word> &inputs, int count)
{
    BitSerialEngine engine(cfg, weights, n, m);
    RunTrace trace;
    trace.results = engine.dotProductBatch(inputs, count);
    captureCounters(engine, trace);
    return trace;
}

void
expectTracesEqual(const RunTrace &a, const RunTrace &b,
                  const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.results, b.results);
    EXPECT_TRUE(a.stats == b.stats);
    EXPECT_EQ(a.transient.abftChecks, b.transient.abftChecks);
    EXPECT_EQ(a.transient.abftMismatches, b.transient.abftMismatches);
    EXPECT_EQ(a.transient.abftRetries, b.transient.abftRetries);
    EXPECT_EQ(a.transient.abftRetryCycles,
              b.transient.abftRetryCycles);
    EXPECT_EQ(a.transient.abftUncorrected,
              b.transient.abftUncorrected);
    EXPECT_EQ(a.transient.abftDisabledTiles,
              b.transient.abftDisabledTiles);
    ASSERT_EQ(a.tiles.size(), b.tiles.size());
    for (std::size_t i = 0; i < a.tiles.size(); ++i) {
        EXPECT_EQ(a.tiles[i].samples, b.tiles[i].samples)
            << "tile " << i;
        EXPECT_EQ(a.tiles[i].clips, b.tiles[i].clips) << "tile " << i;
    }
    EXPECT_EQ(a.readCycles, b.readCycles);
    EXPECT_EQ(a.adcClips, b.adcClips);
}

/** A named configuration point of the equivalence sweep. */
struct SweepPoint
{
    const char *name;
    EngineConfig cfg;
};

/** Same encoding sweep the single-window fast path is proved on. */
std::vector<SweepPoint>
sweepPoints()
{
    std::vector<SweepPoint> points;
    {
        SweepPoint p{"default-ce", {}};
        points.push_back(p);
    }
    {
        SweepPoint p{"w1-unflipped", {}};
        p.cfg.cellBits = 1;
        p.cfg.flipEncoding = false;
        points.push_back(p);
    }
    {
        SweepPoint p{"w4-abft", {}};
        p.cfg.cellBits = 4;
        p.cfg.abftChecksum = true;
        points.push_back(p);
    }
    {
        SweepPoint p{"biased-dac2", {}};
        p.cfg.dacBits = 2;
        p.cfg.inputMode = InputMode::Biased;
        points.push_back(p);
    }
    {
        SweepPoint p{"biased-dac4-w4", {}};
        p.cfg.dacBits = 4;
        p.cfg.cellBits = 4;
        p.cfg.inputMode = InputMode::Biased;
        points.push_back(p);
    }
    {
        SweepPoint p{"stuck-spares-abft", {}};
        p.cfg.spareCols = 4;
        p.cfg.abftChecksum = true;
        p.cfg.noise.stuckAtFraction = 0.01;
        p.cfg.noise.stuckMode = StuckMode::RandomLevel;
        points.push_back(p);
    }
    {
        SweepPoint p{"write-noise", {}};
        p.cfg.noise.writeSigmaLevels = 0.4;
        p.cfg.noise.maxProgramPulses = 6;
        points.push_back(p);
    }
    return points;
}

TEST(Batched, GoldenEquivalenceSweep)
{
    const int n = 200, m = 20; // 2 row segments x >=2 col segments
    Rng rng(0xBA7C4);
    const auto weights = randomWords(rng, n * m);

    for (const auto &point : sweepPoints()) {
        // Ground truth: the legacy scalar path, window by window.
        EngineConfig scalar = point.cfg;
        scalar.threads = 1;
        scalar.fastPath = false;
        scalar.memoEntries = 0;

        // Counts straddle the block-size clamp (min 8) and include a
        // repeated window (the memo-free batch must not care).
        for (const int count : {1, 5, 13}) {
            auto inputs = randomWords(rng, n * count);
            if (count >= 3)
                std::copy(inputs.begin(), inputs.begin() + n,
                          inputs.begin() +
                              static_cast<std::size_t>(2) * n);
            const auto golden = runSequential(scalar, weights, n, m,
                                              inputs, count);

            for (const int threads : {1, 2, 4, 8}) {
                EngineConfig fast = point.cfg;
                fast.threads = threads;
                fast.fastPath = true;
                expectTracesEqual(
                    golden,
                    runBatched(fast, weights, n, m, inputs, count),
                    std::string(point.name) + " count" +
                        std::to_string(count) + " t" +
                        std::to_string(threads));
            }
        }
    }
}

TEST(Batched, EveryCompiledTierIsInvisibleAtEngineLevel)
{
    const int n = 200, m = 20;
    const int count = 13;
    Rng rng(0x71E2);
    const auto weights = randomWords(rng, n * m);
    const auto inputs = randomWords(rng, n * count);

    EngineConfig scalar;
    scalar.threads = 1;
    scalar.fastPath = false;
    scalar.memoEntries = 0;
    const auto golden =
        runSequential(scalar, weights, n, m, inputs, count);

    EngineConfig fast;
    fast.threads = 4;
    TierGuard guard;
    for (int t = 0; t <= static_cast<int>(kernel::detectedTier());
         ++t) {
        kernel::forceTier(static_cast<kernel::Tier>(t));
        expectTracesEqual(
            golden, runBatched(fast, weights, n, m, inputs, count),
            std::string("tier ") +
                kernel::tierName(static_cast<kernel::Tier>(t)));
    }
}

TEST(Batched, NoisyConfigFallsBackPerWindow)
{
    // Read noise forces the scalar path; the batch entry point must
    // still be safe and must replay the exact per-window noise
    // streams a sequential caller would see.
    EngineConfig noisy;
    noisy.threads = 1;
    noisy.noise.sigmaLsb = 0.5;
    const int n = 128, m = 16, count = 3;
    Rng rng(0x0157);
    const auto weights = randomWords(rng, n * m);
    const auto inputs = randomWords(rng, n * count);

    BitSerialEngine batched(noisy, weights, n, m);
    ASSERT_FALSE(batched.fastPathActive());
    const auto got = batched.dotProductBatch(inputs, count);

    BitSerialEngine seq(noisy, weights, n, m);
    std::vector<Acc> want;
    for (int i = 0; i < count; ++i) {
        const auto r = seq.dotProduct(std::span<const Word>(
            inputs.data() + static_cast<std::size_t>(i) * n,
            static_cast<std::size_t>(n)));
        want.insert(want.end(), r.begin(), r.end());
    }
    EXPECT_EQ(got, want);
    EXPECT_TRUE(batched.stats() == seq.stats());
}

TEST(Batched, MixedBatchAndSequentialCallsShareTheOpStream)
{
    // A batch of k windows advances the op sequence by k, so later
    // per-window calls land on the same op numbers either way.
    EngineConfig cfg;
    cfg.threads = 1;
    const int n = 128, m = 16;
    Rng rng(0x3A7);
    const auto weights = randomWords(rng, n * m);
    const auto inputs = randomWords(rng, n * 5);
    const auto tail = randomWords(rng, n);

    BitSerialEngine a(cfg, weights, n, m);
    auto gotBatch = a.dotProductBatch(inputs, 5);
    const auto gotTail = a.dotProduct(tail);

    BitSerialEngine b(cfg, weights, n, m);
    std::vector<Acc> wantBatch;
    for (int i = 0; i < 5; ++i) {
        const auto r = b.dotProduct(std::span<const Word>(
            inputs.data() + static_cast<std::size_t>(i) * n,
            static_cast<std::size_t>(n)));
        wantBatch.insert(wantBatch.end(), r.begin(), r.end());
    }
    const auto wantTail = b.dotProduct(tail);
    EXPECT_EQ(gotBatch, wantBatch);
    EXPECT_EQ(gotTail, wantTail);
    EXPECT_TRUE(a.stats() == b.stats());
    EXPECT_EQ(a.readCycles(), b.readCycles());
}

TEST(Batched, EmptyBatchIsANoOp)
{
    EngineConfig cfg;
    cfg.threads = 1;
    Rng rng(0xE);
    const auto weights = randomWords(rng, 128 * 16);
    BitSerialEngine engine(cfg, weights, 128, 16);
    const auto out = engine.dotProductBatch({}, 0);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(engine.stats().ops, 0u);
    EXPECT_EQ(engine.readCycles(), 0u);
}

TEST(Batched, BadBatchArgumentsAreFatal)
{
    EngineConfig cfg;
    cfg.threads = 1;
    Rng rng(0xBAD);
    const auto weights = randomWords(rng, 128 * 16);
    BitSerialEngine engine(cfg, weights, 128, 16);
    const auto x = randomWords(rng, 128);
    EXPECT_THROW((void)engine.dotProductBatch(x, -1), FatalError);
    EXPECT_THROW((void)engine.dotProductBatch(x, 2), FatalError);
}

} // namespace
} // namespace isaac::xbar
