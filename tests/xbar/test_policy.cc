/**
 * @file
 * The pluggable ADC policy surface: validation at config time, the
 * truncated-SAR conversion primitive, and the headline losslessness
 * guarantee — a Newton-style adaptive policy whose cap covers the
 * certified per-phase bound is bit-exact AND counter-exact (every
 * counter except the comparator-cycle tally it exists to shrink)
 * against the fixed baseline, from a bare engine all the way through
 * CompiledModel and serve::InferenceSession at 1/2/4/8 workers.
 * Lossy and noisy adaptive runs must instead be deterministic and
 * tier/thread-invariant, with every clip counted.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "campaign/runner.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/accelerator.h"
#include "nn/weights.h"
#include "nn/zoo.h"
#include "serve/session.h"
#include "xbar/adc_policy.h"
#include "xbar/batch_kernel.h"
#include "xbar/engine.h"

namespace isaac::xbar {
namespace {

/** Restore the dispatch tier even when an assertion throws. */
struct TierGuard
{
    ~TierGuard() { kernel::resetTierOverride(); }
};

std::vector<Word>
randomWords(Rng &rng, int n, int lo = -32768, int hi = 32767)
{
    std::vector<Word> v(static_cast<std::size_t>(n));
    for (auto &w : v)
        w = static_cast<Word>(rng.uniform(lo, hi));
    return v;
}

/** Everything one engine run is observable by. */
struct RunTrace
{
    std::vector<Acc> results; ///< count * numOutputs, window-major.
    EngineStats stats;
    resilience::TransientStats transient;
    std::vector<AdcTally> tiles;
    std::uint64_t readCycles = 0;
    std::uint64_t adcClips = 0;
};

void
captureCounters(const BitSerialEngine &engine, RunTrace &trace)
{
    trace.stats = engine.stats();
    trace.transient = engine.transientStats();
    for (int rs = 0; rs < engine.rowSegments(); ++rs)
        for (int cs = 0; cs < engine.colSegments(); ++cs)
            trace.tiles.push_back(engine.tileAdcTally(rs, cs));
    trace.readCycles = engine.readCycles();
    trace.adcClips = engine.adcClips();
}

/** count windows through sequential dotProduct() calls. */
RunTrace
runSequential(const EngineConfig &cfg, std::span<const Word> weights,
              int n, int m, const std::vector<Word> &inputs,
              int count)
{
    BitSerialEngine engine(cfg, weights, n, m);
    RunTrace trace;
    for (int i = 0; i < count; ++i) {
        const auto r = engine.dotProduct(std::span<const Word>(
            inputs.data() + static_cast<std::size_t>(i) * n,
            static_cast<std::size_t>(n)));
        trace.results.insert(trace.results.end(), r.begin(), r.end());
    }
    captureCounters(engine, trace);
    return trace;
}

/** The same windows through one dotProductBatch() call. */
RunTrace
runBatched(const EngineConfig &cfg, std::span<const Word> weights,
           int n, int m, const std::vector<Word> &inputs, int count)
{
    BitSerialEngine engine(cfg, weights, n, m);
    RunTrace trace;
    trace.results = engine.dotProductBatch(inputs, count);
    captureCounters(engine, trace);
    return trace;
}

void
expectTracesEqual(const RunTrace &a, const RunTrace &b,
                  const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.results, b.results);
    EXPECT_TRUE(a.stats == b.stats);
    EXPECT_EQ(a.transient.abftChecks, b.transient.abftChecks);
    EXPECT_EQ(a.transient.abftMismatches, b.transient.abftMismatches);
    EXPECT_EQ(a.transient.abftRetries, b.transient.abftRetries);
    EXPECT_EQ(a.transient.abftRetryCycles,
              b.transient.abftRetryCycles);
    EXPECT_EQ(a.transient.abftUncorrected,
              b.transient.abftUncorrected);
    ASSERT_EQ(a.tiles.size(), b.tiles.size());
    for (std::size_t i = 0; i < a.tiles.size(); ++i) {
        EXPECT_EQ(a.tiles[i].samples, b.tiles[i].samples)
            << "tile " << i;
        EXPECT_EQ(a.tiles[i].clips, b.tiles[i].clips) << "tile " << i;
        EXPECT_EQ(a.tiles[i].bitCycles, b.tiles[i].bitCycles)
            << "tile " << i;
    }
    EXPECT_EQ(a.readCycles, b.readCycles);
    EXPECT_EQ(a.adcClips, b.adcClips);
}

TEST(AdcPolicy, ValidationRejectsBadPolicies)
{
    // An explicit 0-bit fixed resolution is a config error; the
    // default AdcPolicy{} (bits == 0) is the derive-from-geometry
    // spelling and must stay valid.
    EXPECT_THROW(AdcPolicy::fixed(0), FatalError);
    EXPECT_NO_THROW(AdcPolicy{}.validate());
    EXPECT_NO_THROW(AdcPolicy::adaptive().validate());

    // Beyond the SAR model's range and beyond the accumulator.
    EXPECT_THROW(AdcPolicy::fixed(25), FatalError);
    EXPECT_THROW(AdcPolicy::fixed(63), FatalError);
    EXPECT_THROW(AdcPolicy::fixed(-1), FatalError);
    EXPECT_THROW(AdcPolicy::adaptive(8, 0), FatalError);
    EXPECT_THROW(AdcPolicy::adaptive(8, 25), FatalError);
    {
        AdcPolicy p = AdcPolicy::adaptive();
        p.activityFactor = 0.0;
        EXPECT_THROW(p.validate(), FatalError);
        p.activityFactor = 1.5;
        EXPECT_THROW(p.validate(), FatalError);
    }

    // The engine validates its policy at construction, so a bad
    // resolution is rejected before any weights are programmed.
    Rng rng(0xAD0C11CE);
    const auto weights = randomWords(rng, 8 * 2);
    EngineConfig cfg;
    cfg.adcPolicy.bits = 25;
    EXPECT_THROW(BitSerialEngine(cfg, weights, 8, 2), FatalError);
}

TEST(AdcPolicy, ResolutionAndLosslessnessLaws)
{
    const AdcPolicy fixed;                 // Derived fixed default.
    const AdcPolicy ad = AdcPolicy::adaptive();

    // Fixed policies convert at the cap no matter the bound.
    EXPECT_EQ(fixed.resolutionFor(0, 8), 8);
    EXPECT_EQ(fixed.resolutionFor(1000000, 8), 8);

    // Adaptive: ceil(log2(bound + 1)) clamped to [minBits, cap].
    EXPECT_EQ(ad.resolutionFor(0, 8), 1);
    EXPECT_EQ(ad.resolutionFor(1, 8), 1);
    EXPECT_EQ(ad.resolutionFor(2, 8), 2);
    EXPECT_EQ(ad.resolutionFor(129, 8), 8);
    EXPECT_EQ(ad.resolutionFor(255, 8), 8);
    EXPECT_EQ(ad.resolutionFor(100000, 8), 8);

    // capBits: an explicit cap wins, 0 defers to the derived bits.
    EXPECT_EQ(ad.capBits(8), 8);
    EXPECT_EQ(AdcPolicy::adaptive(6).capBits(8), 6);
    EXPECT_EQ(AdcPolicy::fixed(7).capBits(8), 7);

    // Losslessness: covering the derived requirement is lossless.
    EXPECT_TRUE(fixed.lossless(8));
    EXPECT_TRUE(ad.lossless(8));
    EXPECT_TRUE(AdcPolicy::adaptive(9).lossless(8));
    EXPECT_FALSE(AdcPolicy::adaptive(7).lossless(8));
    EXPECT_FALSE(AdcPolicy::fixed(7).lossless(8));

    // Expected conversion depth at the default 0.5 activity factor
    // is one cycle under the cap, floored at minBits.
    EXPECT_EQ(ad.expectedBits(8), 7);
    EXPECT_EQ(ad.expectedBits(1), 1);
    EXPECT_EQ(AdcPolicy::adaptive(0, 8).expectedBits(8), 8);

    EXPECT_EQ(AdcPolicy{}.label(), "fixed");
    EXPECT_EQ(AdcPolicy::fixed(8).label(), "fixed8");
    EXPECT_EQ(AdcPolicy::adaptive().label(), "adaptive");
    EXPECT_EQ(AdcPolicy::adaptive(7).label(), "adaptive7");
}

TEST(AdcPolicy, TruncatedConversionChargesAndClips)
{
    const Adc adc(8, /*noisy=*/true);
    AdcTally tally;

    // Full-resolution truncation is exactly quantize().
    EXPECT_EQ(adc.quantizeAt(200, 8, tally), 200);
    EXPECT_EQ(tally.samples, 1u);
    EXPECT_EQ(tally.clips, 0u);
    EXPECT_EQ(tally.bitCycles, 8u);

    // A 3-bit conversion clips at 7 and charges 3 cycles.
    EXPECT_EQ(adc.quantizeAt(6, 3, tally), 6);
    EXPECT_EQ(adc.quantizeAt(9, 3, tally), 7);
    EXPECT_EQ(tally.samples, 3u);
    EXPECT_EQ(tally.clips, 1u);
    EXPECT_EQ(tally.bitCycles, 8u + 3u + 3u);

    // Noisy negatives saturate to zero (and count) at any depth.
    EXPECT_EQ(adc.quantizeAt(-5, 4, tally), 0);
    EXPECT_EQ(tally.clips, 2u);
}

/** The clean encoding sweep whose per-phase bound certification is
 *  provably lossless (no noise: every packed reading obeys the
 *  (2^w - 1) * unit bound the adaptive ladder truncates against). */
std::vector<std::pair<const char *, EngineConfig>>
losslessSweep()
{
    std::vector<std::pair<const char *, EngineConfig>> points;
    points.push_back({"default-ce", {}});
    {
        EngineConfig c;
        c.cellBits = 1;
        c.flipEncoding = false;
        points.push_back({"w1-unflipped", c});
    }
    {
        EngineConfig c;
        c.cellBits = 4;
        c.abftChecksum = true;
        points.push_back({"w4-abft", c});
    }
    {
        EngineConfig c;
        c.dacBits = 2;
        c.inputMode = InputMode::Biased;
        points.push_back({"biased-dac2", c});
    }
    {
        EngineConfig c;
        c.dacBits = 4;
        c.cellBits = 4;
        c.inputMode = InputMode::Biased;
        points.push_back({"biased-dac4-w4", c});
    }
    return points;
}

/**
 * The headline guarantee at the engine level: a lossless adaptive
 * policy returns bit-identical results with every counter equal to
 * the fixed baseline's except adcBitCycles — which must not exceed
 * samples * cap and, on real data, must beat it.
 */
TEST(AdcPolicy, LosslessAdaptiveIsBitAndCounterExact)
{
    const int n = 200, m = 20; // 2 row segments x >= 2 col segments.
    Rng rng(0xAD0C);
    const auto weights = randomWords(rng, n * m);

    for (const auto &[name, base] : losslessSweep()) {
        for (const int count : {1, 9}) {
            const auto inputs = randomWords(rng, n * count);
            for (const int threads : {1, 4}) {
                EngineConfig fixedCfg = base;
                fixedCfg.threads = threads;
                EngineConfig adCfg = fixedCfg;
                adCfg.adcPolicy = AdcPolicy::adaptive();
                ASSERT_TRUE(adCfg.adcPolicy.lossless(
                    fixedCfg.adcBits()));

                for (const bool batched : {false, true}) {
                    const std::string label = std::string(name) +
                        " count=" + std::to_string(count) +
                        " threads=" + std::to_string(threads) +
                        (batched ? " batched" : " sequential");
                    SCOPED_TRACE(label);
                    const RunTrace f = batched
                        ? runBatched(fixedCfg, weights, n, m, inputs,
                                     count)
                        : runSequential(fixedCfg, weights, n, m,
                                        inputs, count);
                    const RunTrace a = batched
                        ? runBatched(adCfg, weights, n, m, inputs,
                                     count)
                        : runSequential(adCfg, weights, n, m, inputs,
                                        count);

                    // Bit-exact results, no clipping either side.
                    EXPECT_EQ(f.results, a.results);
                    EXPECT_EQ(f.adcClips, 0u);
                    EXPECT_EQ(a.adcClips, 0u);

                    // Counter-exact: everything but the comparator
                    // cycles the adaptive policy exists to save.
                    EngineStats masked = a.stats;
                    masked.adcBitCycles = f.stats.adcBitCycles;
                    EXPECT_TRUE(masked == f.stats);
                    ASSERT_EQ(f.tiles.size(), a.tiles.size());
                    for (std::size_t i = 0; i < f.tiles.size(); ++i) {
                        EXPECT_EQ(f.tiles[i].samples,
                                  a.tiles[i].samples);
                        EXPECT_EQ(f.tiles[i].clips,
                                  a.tiles[i].clips);
                    }
                    EXPECT_EQ(f.readCycles, a.readCycles);

                    // Fixed charges exactly samples * cap; adaptive
                    // never exceeds that and beats it on this data.
                    const auto cap = static_cast<std::uint64_t>(
                        fixedCfg.adcBits());
                    EXPECT_EQ(f.stats.adcBitCycles,
                              f.stats.adcSamples * cap);
                    EXPECT_LT(a.stats.adcBitCycles,
                              f.stats.adcBitCycles);
                    EXPECT_GE(a.stats.adcBitCycles,
                              a.stats.adcSamples);
                }
            }
        }
    }
}

/**
 * Where losslessness is NOT provable — noisy arrays, stuck cells,
 * an under-capped converter — the adaptive policy must still be
 * deterministic and identical across the scalar walk, the batched
 * path, every compiled kernel tier, and every thread count, with
 * clips flowing into the same counters.
 */
TEST(AdcPolicy, AdaptiveDeltasAreSeedStableAcrossTiers)
{
    const int n = 200, m = 20;
    Rng rng(0xAD0C2);
    const auto weights = randomWords(rng, n * m);
    const int count = 13;
    const auto inputs = randomWords(rng, n * count);

    std::vector<std::pair<const char *, EngineConfig>> points;
    {
        EngineConfig c; // Lossy: cap below the 8-bit requirement.
        c.adcPolicy = AdcPolicy::adaptive(6);
        points.push_back({"adaptive6-clean", c});
    }
    {
        EngineConfig c;
        c.adcPolicy = AdcPolicy::adaptive();
        c.spareCols = 4;
        c.abftChecksum = true;
        c.noise.stuckAtFraction = 0.01;
        c.noise.stuckMode = StuckMode::RandomLevel;
        points.push_back({"adaptive-stuck-abft", c});
    }
    {
        EngineConfig c;
        c.adcPolicy = AdcPolicy::adaptive();
        c.noise.writeSigmaLevels = 0.4;
        c.noise.maxProgramPulses = 6;
        points.push_back({"adaptive-write-noise", c});
    }

    TierGuard guard;
    const auto top = static_cast<int>(kernel::detectedTier());
    for (const auto &[name, base] : points) {
        EngineConfig scalar = base;
        scalar.threads = 1;
        scalar.fastPath = false;
        scalar.memoEntries = 0;
        const auto golden =
            runSequential(scalar, weights, n, m, inputs, count);

        // The under-capped converter must actually clip (and count).
        if (std::string(name) == "adaptive6-clean") {
            EXPECT_GT(golden.adcClips, 0u);
        }

        for (const int threads : {1, 2, 4, 8}) {
            EngineConfig cfg = base;
            cfg.threads = threads;
            expectTracesEqual(
                golden,
                runSequential(cfg, weights, n, m, inputs, count),
                std::string(name) + " sequential threads=" +
                    std::to_string(threads));
            expectTracesEqual(
                golden, runBatched(cfg, weights, n, m, inputs, count),
                std::string(name) + " batched threads=" +
                    std::to_string(threads));
        }
        for (int t = 0; t <= top; ++t) {
            kernel::forceTier(static_cast<kernel::Tier>(t));
            EngineConfig cfg = base;
            cfg.threads = 2;
            expectTracesEqual(
                golden, runBatched(cfg, weights, n, m, inputs, count),
                std::string(name) + " tier " +
                    kernel::tierName(static_cast<kernel::Tier>(t)));
        }
        kernel::resetTierOverride();
    }
}

/**
 * The end-to-end acceptance: TinyCNN through CompiledModel and
 * serve::InferenceSession yields bit-identical outputs under the
 * lossless adaptive policy at 1/2/4/8 workers.
 */
TEST(AdcPolicy, TinyCnnSessionIsBitExactAtEveryWorkerCount)
{
    const nn::Network net = nn::tinyCnn();
    const auto weights =
        campaign::synthesizeStructuredWeights(net, 0xF00D);
    const auto &first = net.layer(0);
    std::vector<nn::Tensor> inputs;
    for (int i = 0; i < 3; ++i) {
        inputs.push_back(nn::synthesizeInput(
            first.ni, first.nx, first.ny, 0xBEEF + i,
            FixedFormat{12}));
    }

    auto serveAll = [&](const arch::IsaacConfig &cfg, int workers) {
        core::Accelerator acc(cfg);
        auto model = acc.compile(net, weights, {});
        serve::SessionOptions so;
        so.queueDepth = inputs.size();
        so.workers = workers;
        serve::InferenceSession session(model, so);
        std::vector<std::future<std::vector<nn::Tensor>>> futs;
        for (const auto &input : inputs)
            futs.push_back(session.submitAll(input));
        session.drain();
        std::vector<std::vector<Word>> finals;
        for (auto &f : futs)
            finals.push_back(f.get().back().raw());
        return finals;
    };

    arch::IsaacConfig fixedCfg;
    fixedCfg.engine.threads = 1;
    arch::IsaacConfig adCfg = fixedCfg;
    adCfg.engine.adcPolicy = AdcPolicy::adaptive();

    const auto want = serveAll(fixedCfg, 1);
    for (const int workers : {1, 2, 4, 8}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        EXPECT_EQ(serveAll(fixedCfg, workers), want);
        EXPECT_EQ(serveAll(adCfg, workers), want);
    }
}

} // namespace
} // namespace isaac::xbar
