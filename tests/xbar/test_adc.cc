/**
 * @file
 * ADC resolution-law and quantizer tests.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "xbar/adc.h"

namespace isaac::xbar {
namespace {

TEST(AdcResolution, MatchesPaperEquations)
{
    // Eq. (2): v = 1 -> log2(R) + v + w - 1.
    EXPECT_EQ(adcResolution(128, 1, 2, false), 9);
    // The encoding scheme saves one bit: the paper's 8-bit ADC.
    EXPECT_EQ(adcResolution(128, 1, 2, true), 8);
    // Eq. (1): v > 1 and w > 1 -> log2(R) + v + w.
    EXPECT_EQ(adcResolution(128, 2, 2, false), 11);
    EXPECT_EQ(adcResolution(128, 2, 2, true), 10);
    // w = 1 also uses Eq. (2).
    EXPECT_EQ(adcResolution(128, 2, 1, false), 9);
}

TEST(AdcResolution, HalvingRowsSavesOneBit)
{
    // Sec. VIII-A: without the encoding we'd need a 9-bit ADC "or
    // half as many rows per crossbar array".
    EXPECT_EQ(adcResolution(64, 1, 2, false),
              adcResolution(128, 1, 2, true));
}

TEST(AdcResolution, RejectsBadArgs)
{
    EXPECT_THROW(adcResolution(0, 1, 2, false), FatalError);
    EXPECT_THROW(adcResolution(128, 0, 2, false), FatalError);
    EXPECT_THROW(adcResolution(128, 1, 0, false), FatalError);
}

TEST(Adc, ExactWithinRange)
{
    Adc adc(8);
    for (Acc v = 0; v <= adc.maxCode(); ++v)
        EXPECT_EQ(adc.convert(v), v);
    EXPECT_EQ(adc.clips(), 0u);
    EXPECT_EQ(adc.samples(), 256u);
}

TEST(Adc, ClipsOverRange)
{
    Adc adc(8);
    EXPECT_EQ(adc.convert(256), 255);
    EXPECT_EQ(adc.convert(100000), 255);
    EXPECT_EQ(adc.clips(), 2u);
}

TEST(AdcDeathTest, NegativeLevelPanicsWithNoiseDisabled)
{
    // A negative bitline sum cannot come off clean hardware (inputs
    // and conductances are non-negative): it means the encoding
    // pipeline broke, and silently clipping to 0 would hide the bug.
    Adc adc(8);
    EXPECT_DEATH(adc.convert(-3), "negative bitline sum");
}

TEST(Adc, NoisyAdcSaturatesNegativesToZero)
{
    // With an analog noise path a slightly negative sample is
    // expected occasionally; the saturating front end clips it.
    Adc adc(8, true);
    EXPECT_TRUE(adc.noisy());
    EXPECT_EQ(adc.convert(-3), 0);
    EXPECT_EQ(adc.clips(), 1u);
}

TEST(Adc, TalliesBatchIntoCounters)
{
    Adc adc(8);
    AdcTally tally;
    EXPECT_EQ(adc.quantize(7, tally), 7);
    EXPECT_EQ(adc.quantize(1000, tally), 255);
    // quantize() leaves the shared counters untouched...
    EXPECT_EQ(adc.samples(), 0u);
    EXPECT_EQ(adc.clips(), 0u);
    // ...until the caller merges its tally.
    adc.addTally(tally);
    EXPECT_EQ(adc.samples(), 2u);
    EXPECT_EQ(adc.clips(), 1u);
}

TEST(Adc, StatsReset)
{
    Adc adc(6);
    adc.convert(5);
    adc.convert(1000);
    adc.resetStats();
    EXPECT_EQ(adc.samples(), 0u);
    EXPECT_EQ(adc.clips(), 0u);
}

TEST(Adc, RejectsSillyResolutions)
{
    EXPECT_THROW(Adc(0), FatalError);
    EXPECT_THROW(Adc(25), FatalError);
}

} // namespace
} // namespace isaac::xbar
