/**
 * @file
 * Device non-ideality tests: write variation and stuck-at faults.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xbar/engine.h"

namespace isaac::xbar {
namespace {

TEST(WriteNoise, PerturbsStoredLevels)
{
    // A single open-loop pulse (no verify retries) leaves a healthy
    // fraction of cells off-target at sigma 0.6.
    CrossbarArray xb(64, 4, 2);
    NoiseSpec spec;
    spec.writeSigmaLevels = 0.6;
    spec.maxProgramPulses = 1;
    spec.seed = 5;
    xb.setNoise(spec);
    int offTarget = 0;
    for (int r = 0; r < 64; ++r) {
        xb.program(r, 0, 2);
        offTarget += xb.cell(r, 0) != 2;
        // Stored levels always stay within the cell range.
        EXPECT_GE(xb.cell(r, 0), 0);
        EXPECT_LE(xb.cell(r, 0), 3);
    }
    EXPECT_GT(offTarget, 5);
    EXPECT_LT(offTarget, 60);
}

TEST(WriteNoise, ProgramVerifyRetriesConverge)
{
    // With the default pulse budget the program-verify loop lands
    // nearly every healthy cell on target even at high sigma, at the
    // cost of extra pulses that the lifetime counter records.
    CrossbarArray xb(64, 4, 2);
    NoiseSpec spec;
    spec.writeSigmaLevels = 0.6;
    spec.seed = 5;
    xb.setNoise(spec);
    ASSERT_EQ(spec.maxProgramPulses, 8);
    int offTarget = 0;
    std::uint64_t pulses = 0;
    for (int r = 0; r < 64; ++r) {
        pulses += static_cast<std::uint64_t>(xb.program(r, 0, 2));
        offTarget += xb.cell(r, 0) != 2;
    }
    EXPECT_LT(offTarget, 3); // ~0.4^8 residual per cell
    // Retries happened (more pulses than cells) and the array-level
    // counter saw every one of them.
    EXPECT_GT(pulses, 64u);
    EXPECT_EQ(xb.programPulses(), pulses);
}

TEST(WriteNoise, CleanWritesTakeOnePulse)
{
    CrossbarArray xb(16, 2, 2);
    NoiseSpec spec; // all off
    xb.setNoise(spec);
    for (int r = 0; r < 16; ++r)
        EXPECT_EQ(xb.program(r, 0, 3), 1);
    EXPECT_EQ(xb.programPulses(), 16u);
    // Lifetime accounting: resetStats() does not clear write pulses.
    xb.resetStats();
    EXPECT_EQ(xb.programPulses(), 16u);
}

TEST(WriteNoise, ZeroSigmaIsExact)
{
    CrossbarArray xb(16, 2, 2);
    NoiseSpec spec; // all off
    xb.setNoise(spec);
    for (int r = 0; r < 16; ++r) {
        xb.program(r, 1, r % 4);
        EXPECT_EQ(xb.cell(r, 1), r % 4);
    }
}

TEST(StuckCells, IgnoreProgramming)
{
    CrossbarArray xb(128, 8, 2);
    NoiseSpec spec;
    spec.stuckAtFraction = 0.25;
    spec.seed = 9;
    xb.setNoise(spec);
    const int stuck = xb.stuckCells();
    EXPECT_GT(stuck, 128 * 8 / 8);
    EXPECT_LT(stuck, 128 * 8 / 2);

    // Program everything to 3 twice; stuck cells keep their frozen
    // level both times.
    int frozen = 0;
    for (int pass = 0; pass < 2; ++pass) {
        frozen = 0;
        for (int r = 0; r < 128; ++r) {
            for (int c = 0; c < 8; ++c) {
                xb.program(r, c, 3);
                frozen += xb.cell(r, c) != 3;
            }
        }
    }
    // Some stuck cells may happen to be frozen at 3.
    EXPECT_GT(frozen, stuck / 2);
    EXPECT_LE(frozen, stuck);
}

TEST(StuckCells, StuckAtOnAndOffModes)
{
    // The RxNN fault taxonomy: stuck-at-ON freezes at the maximum
    // conductance, stuck-at-OFF at zero. Same seed, same fault
    // *positions*, different frozen levels.
    auto build = [](StuckMode mode) {
        auto xb = std::make_unique<CrossbarArray>(64, 16, 2);
        NoiseSpec spec;
        spec.stuckAtFraction = 0.1;
        spec.stuckMode = mode;
        spec.seed = 77;
        xb->setNoise(spec);
        return xb;
    };
    const auto on = build(StuckMode::On);
    const auto off = build(StuckMode::Off);
    ASSERT_EQ(on->stuckCells(), off->stuckCells());
    ASSERT_GT(on->stuckCells(), 0);
    int frozenOn = 0, frozenOff = 0;
    for (int r = 0; r < 64; ++r) {
        for (int c = 0; c < 16; ++c) {
            // Program to mid-level; frozen cells refuse it.
            on->program(r, c, 1);
            off->program(r, c, 1);
            if (on->cell(r, c) != 1) {
                EXPECT_EQ(on->cell(r, c), 3);
                ++frozenOn;
            }
            if (off->cell(r, c) != 1) {
                EXPECT_EQ(off->cell(r, c), 0);
                ++frozenOff;
            }
        }
    }
    EXPECT_EQ(frozenOn, on->stuckCells());
    EXPECT_EQ(frozenOff, off->stuckCells());
}

TEST(StuckCells, BurnTheFullPulseBudget)
{
    CrossbarArray xb(8, 8, 2);
    NoiseSpec spec;
    spec.maxProgramPulses = 6;
    xb.setNoise(spec);
    xb.forceStuck(3, 4, 2);
    // Programming a stuck cell to a different level exhausts the
    // retry budget; to its frozen level, verify passes first try.
    EXPECT_EQ(xb.program(3, 4, 0), 6);
    EXPECT_EQ(xb.program(3, 4, 2), 1);
    EXPECT_EQ(xb.cell(3, 4), 2);
    // Healing restores normal single-pulse writes.
    xb.forceStuck(3, 4, -1);
    EXPECT_EQ(xb.program(3, 4, 0), 1);
    EXPECT_EQ(xb.cell(3, 4), 0);
}

TEST(StuckCells, MapIsDeterministicPerSeed)
{
    auto census = [](std::uint64_t seed) {
        CrossbarArray xb(64, 64, 2);
        NoiseSpec spec;
        spec.stuckAtFraction = 0.1;
        spec.seed = seed;
        xb.setNoise(spec);
        return xb.stuckCells();
    };
    EXPECT_EQ(census(42), census(42));
    EXPECT_NE(census(42), census(43));
}

TEST(NonIdeal, EngineDegradesGracefullyWithFaults)
{
    // A small stuck fraction shifts dot products but keeps them in
    // the right ballpark (relative error well under the signal).
    Rng rng(21);
    EngineConfig clean;
    EngineConfig faulty;
    faulty.noise.stuckAtFraction = 0.002;
    faulty.noise.seed = 31;

    const int n = 128, m = 8;
    std::vector<Word> weights(static_cast<std::size_t>(n) * m);
    for (auto &w : weights)
        w = static_cast<Word>(rng.uniform(-8192, 8191));
    BitSerialEngine good(clean, weights, n, m);
    BitSerialEngine bad(faulty, weights, n, m);

    std::vector<Word> inputs(static_cast<std::size_t>(n));
    for (auto &x : inputs)
        x = static_cast<Word>(rng.uniform(-4096, 4095));

    const auto exact = good.dotProduct(inputs);
    const auto noisy = bad.dotProduct(inputs);
    double refMag = 0;
    for (auto v : exact)
        refMag = std::max(refMag, std::abs(static_cast<double>(v)));
    for (int k = 0; k < m; ++k) {
        EXPECT_NEAR(static_cast<double>(noisy[k]),
                    static_cast<double>(exact[k]), 0.6 * refMag)
            << "output " << k;
    }
}

TEST(NonIdeal, WriteNoiseBiasesLowOrderSlicesLess)
{
    // Errors on the least-significant weight slice move the result
    // by at most a few low-order units per cell; the same sigma on
    // every slice is dominated by the top slices. Verify the total
    // deviation is bounded by the top-slice amplification.
    Rng rng(23);
    EngineConfig noisy;
    noisy.noise.writeSigmaLevels = 0.3;
    noisy.noise.seed = 7;

    const int n = 64, m = 4;
    std::vector<Word> weights(static_cast<std::size_t>(n) * m);
    for (auto &w : weights)
        w = static_cast<Word>(rng.uniform(-2048, 2047));
    BitSerialEngine clean(EngineConfig{}, weights, n, m);
    BitSerialEngine perturbed(noisy, weights, n, m);

    std::vector<Word> inputs(static_cast<std::size_t>(n));
    for (auto &x : inputs)
        x = static_cast<Word>(rng.uniform(-2048, 2047));
    const auto a = clean.dotProduct(inputs);
    const auto b = perturbed.dotProduct(inputs);
    // Worst case: every used cell off by ~1 level on the top slice
    // times the input magnitude.
    const double bound = 1.5 * n * 16384.0 * 2048.0;
    for (int k = 0; k < m; ++k) {
        EXPECT_LT(std::abs(static_cast<double>(a[k] - b[k])), bound);
    }
}

} // namespace
} // namespace isaac::xbar
