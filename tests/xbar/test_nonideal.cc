/**
 * @file
 * Device non-ideality tests: write variation and stuck-at faults.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xbar/engine.h"

namespace isaac::xbar {
namespace {

TEST(WriteNoise, PerturbsStoredLevels)
{
    CrossbarArray xb(64, 4, 2);
    NoiseSpec spec;
    spec.writeSigmaLevels = 0.6;
    spec.seed = 5;
    xb.setNoise(spec);
    int offTarget = 0;
    for (int r = 0; r < 64; ++r) {
        xb.program(r, 0, 2);
        offTarget += xb.cell(r, 0) != 2;
        // Stored levels always stay within the cell range.
        EXPECT_GE(xb.cell(r, 0), 0);
        EXPECT_LE(xb.cell(r, 0), 3);
    }
    EXPECT_GT(offTarget, 5);
    EXPECT_LT(offTarget, 60);
}

TEST(WriteNoise, ZeroSigmaIsExact)
{
    CrossbarArray xb(16, 2, 2);
    NoiseSpec spec; // all off
    xb.setNoise(spec);
    for (int r = 0; r < 16; ++r) {
        xb.program(r, 1, r % 4);
        EXPECT_EQ(xb.cell(r, 1), r % 4);
    }
}

TEST(StuckCells, IgnoreProgramming)
{
    CrossbarArray xb(128, 8, 2);
    NoiseSpec spec;
    spec.stuckAtFraction = 0.25;
    spec.seed = 9;
    xb.setNoise(spec);
    const int stuck = xb.stuckCells();
    EXPECT_GT(stuck, 128 * 8 / 8);
    EXPECT_LT(stuck, 128 * 8 / 2);

    // Program everything to 3 twice; stuck cells keep their frozen
    // level both times.
    int frozen = 0;
    for (int pass = 0; pass < 2; ++pass) {
        frozen = 0;
        for (int r = 0; r < 128; ++r) {
            for (int c = 0; c < 8; ++c) {
                xb.program(r, c, 3);
                frozen += xb.cell(r, c) != 3;
            }
        }
    }
    // Some stuck cells may happen to be frozen at 3.
    EXPECT_GT(frozen, stuck / 2);
    EXPECT_LE(frozen, stuck);
}

TEST(StuckCells, MapIsDeterministicPerSeed)
{
    auto census = [](std::uint64_t seed) {
        CrossbarArray xb(64, 64, 2);
        NoiseSpec spec;
        spec.stuckAtFraction = 0.1;
        spec.seed = seed;
        xb.setNoise(spec);
        return xb.stuckCells();
    };
    EXPECT_EQ(census(42), census(42));
    EXPECT_NE(census(42), census(43));
}

TEST(NonIdeal, EngineDegradesGracefullyWithFaults)
{
    // A small stuck fraction shifts dot products but keeps them in
    // the right ballpark (relative error well under the signal).
    Rng rng(21);
    EngineConfig clean;
    EngineConfig faulty;
    faulty.noise.stuckAtFraction = 0.002;
    faulty.noise.seed = 31;

    const int n = 128, m = 8;
    std::vector<Word> weights(static_cast<std::size_t>(n) * m);
    for (auto &w : weights)
        w = static_cast<Word>(rng.uniform(-8192, 8191));
    BitSerialEngine good(clean, weights, n, m);
    BitSerialEngine bad(faulty, weights, n, m);

    std::vector<Word> inputs(static_cast<std::size_t>(n));
    for (auto &x : inputs)
        x = static_cast<Word>(rng.uniform(-4096, 4095));

    const auto exact = good.dotProduct(inputs);
    const auto noisy = bad.dotProduct(inputs);
    double refMag = 0;
    for (auto v : exact)
        refMag = std::max(refMag, std::abs(static_cast<double>(v)));
    for (int k = 0; k < m; ++k) {
        EXPECT_NEAR(static_cast<double>(noisy[k]),
                    static_cast<double>(exact[k]), 0.6 * refMag)
            << "output " << k;
    }
}

TEST(NonIdeal, WriteNoiseBiasesLowOrderSlicesLess)
{
    // Errors on the least-significant weight slice move the result
    // by at most a few low-order units per cell; the same sigma on
    // every slice is dominated by the top slices. Verify the total
    // deviation is bounded by the top-slice amplification.
    Rng rng(23);
    EngineConfig noisy;
    noisy.noise.writeSigmaLevels = 0.3;
    noisy.noise.seed = 7;

    const int n = 64, m = 4;
    std::vector<Word> weights(static_cast<std::size_t>(n) * m);
    for (auto &w : weights)
        w = static_cast<Word>(rng.uniform(-2048, 2047));
    BitSerialEngine clean(EngineConfig{}, weights, n, m);
    BitSerialEngine perturbed(noisy, weights, n, m);

    std::vector<Word> inputs(static_cast<std::size_t>(n));
    for (auto &x : inputs)
        x = static_cast<Word>(rng.uniform(-2048, 2047));
    const auto a = clean.dotProduct(inputs);
    const auto b = perturbed.dotProduct(inputs);
    // Worst case: every used cell off by ~1 level on the top slice
    // times the input magnitude.
    const double bound = 1.5 * n * 16384.0 * 2048.0;
    for (int k = 0; k < m; ++k) {
        EXPECT_LT(std::abs(static_cast<double>(a[k] - b[k])), bound);
    }
}

} // namespace
} // namespace isaac::xbar
