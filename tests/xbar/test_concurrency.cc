/**
 * @file
 * Concurrency contract of the bit-serial engine (docs/threading.md):
 * dotProduct() is const-callable from any number of threads, and both
 * the results and the final counter values are bit-identical to a
 * serial run at any thread count.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "xbar/engine.h"

namespace isaac::xbar {
namespace {

std::vector<Word>
randomWords(Rng &rng, int n)
{
    std::vector<Word> v(static_cast<std::size_t>(n));
    for (auto &w : v)
        w = static_cast<Word>(rng.uniform(-32768, 32767));
    return v;
}

void
expectStatsEqual(const EngineStats &a, const EngineStats &b)
{
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.crossbarReads, b.crossbarReads);
    EXPECT_EQ(a.adcSamples, b.adcSamples);
    EXPECT_EQ(a.adcClips, b.adcClips);
    EXPECT_EQ(a.shiftAdds, b.shiftAdds);
    EXPECT_EQ(a.dacActivations, b.dacActivations);
}

TEST(Concurrency, ParallelConfigMatchesSerialBitForBit)
{
    // The same multi-tile problem through a serial engine and a
    // 4-worker engine: results, EngineStats, ADC counters, and read
    // cycles must all agree exactly.
    Rng rng(101);
    const int n = 256, m = 32;
    const auto weights = randomWords(rng, n * m);

    EngineConfig serialCfg;
    serialCfg.threads = 1;
    EngineConfig parCfg;
    parCfg.threads = 4;

    BitSerialEngine serial(serialCfg, weights, n, m);
    BitSerialEngine parallel(parCfg, weights, n, m);

    for (int trial = 0; trial < 8; ++trial) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(serial.dotProduct(inputs),
                  parallel.dotProduct(inputs));
    }
    expectStatsEqual(serial.stats(), parallel.stats());
    EXPECT_EQ(serial.adcClips(), parallel.adcClips());
    EXPECT_EQ(serial.readCycles(), parallel.readCycles());
}

TEST(Concurrency, ReadNoiseRealizationIsThreadCountInvariant)
{
    // Counter-keyed read noise: the k-th dotProduct() call must see
    // the identical jitter whether the phases run serially or fanned
    // out, so noisy results stay reproducible per seed.
    Rng rng(202);
    const int n = 256, m = 16;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.noise.sigmaLsb = 1.5;
    cfg.noise.seed = 77;

    EngineConfig serialCfg = cfg;
    serialCfg.threads = 1;
    EngineConfig parCfg = cfg;
    parCfg.threads = 4;

    BitSerialEngine serial(serialCfg, weights, n, m);
    BitSerialEngine parallel(parCfg, weights, n, m);

    for (int trial = 0; trial < 5; ++trial) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(serial.dotProduct(inputs),
                  parallel.dotProduct(inputs));
    }
    EXPECT_EQ(serial.adcClips(), parallel.adcClips());
}

TEST(Concurrency, SharedEngineSurvivesConcurrentCallers)
{
    // N real threads hammer one engine with distinct inputs. Every
    // caller must read back exactly the dot product a lone caller
    // would, and the aggregate counters must land on exactly the
    // values a serial replay accumulates.
    constexpr int kThreads = 4;
    constexpr int kCallsPerThread = 6;

    Rng rng(303);
    const int n = 128, m = 16;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 1; // each caller is its own "thread pool"
    BitSerialEngine shared(cfg, weights, n, m);
    BitSerialEngine oracle(cfg, weights, n, m);

    std::vector<std::vector<Word>> inputs;
    std::vector<std::vector<Acc>> expected;
    for (int i = 0; i < kThreads * kCallsPerThread; ++i) {
        inputs.push_back(randomWords(rng, n));
        expected.push_back(oracle.dotProduct(inputs.back()));
    }

    std::vector<std::thread> callers;
    std::vector<int> mismatches(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
        callers.emplace_back([&, t] {
            for (int c = 0; c < kCallsPerThread; ++c) {
                const std::size_t i = static_cast<std::size_t>(
                    t * kCallsPerThread + c);
                if (shared.dotProduct(inputs[i]) != expected[i])
                    ++mismatches[static_cast<std::size_t>(t)];
            }
        });
    }
    for (auto &th : callers)
        th.join();

    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0);
    expectStatsEqual(shared.stats(), oracle.stats());
    EXPECT_EQ(shared.adcClips(), oracle.adcClips());
    EXPECT_EQ(shared.readCycles(), oracle.readCycles());
}

TEST(Concurrency, ResetStatsClearsEveryCounter)
{
    // resetStats() must be symmetric with the counting: EngineStats,
    // the ADC tallies, and the per-tile crossbar read cycles all
    // return to zero together.
    Rng rng(404);
    const int n = 256, m = 16;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 2;
    BitSerialEngine eng(cfg, weights, n, m);
    eng.dotProduct(randomWords(rng, n));
    ASSERT_GT(eng.stats().ops, 0u);
    ASSERT_GT(eng.readCycles(), 0u);

    eng.resetStats();
    expectStatsEqual(eng.stats(), EngineStats{});
    EXPECT_EQ(eng.adcClips(), 0u);
    EXPECT_EQ(eng.readCycles(), 0u);

    // Counting resumes cleanly: one op's worth of activity matches a
    // fresh engine's.
    BitSerialEngine fresh(cfg, weights, n, m);
    const auto probe = randomWords(rng, n);
    eng.dotProduct(probe);
    fresh.dotProduct(probe);
    expectStatsEqual(eng.stats(), fresh.stats());
    EXPECT_EQ(eng.readCycles(), fresh.readCycles());
}

TEST(Concurrency, FaultMapAndRemapAreThreadCountInvariant)
{
    // Fault detection and spare-column assignment run inside the
    // parallel programming pass, but each tile's work is serial and
    // its streams are keyed by tile index — so the FaultMap, the
    // column maps' effects, and noisy outputs must be identical at
    // any thread count.
    Rng rng(606);
    const int n = 300, m = 48; // 3 x 2 tiles at the default geometry
    const auto weights = randomWords(rng, n * m);
    std::vector<std::vector<Word>> probes;
    for (int i = 0; i < 4; ++i)
        probes.push_back(randomWords(rng, n));

    EngineConfig base;
    base.spareCols = 2;
    base.noise.stuckAtFraction = 0.01;
    base.noise.seed = 99;

    EngineConfig serialCfg = base;
    serialCfg.threads = 1;
    BitSerialEngine serial(serialCfg, weights, n, m);

    for (int threads : {2, 4, 8}) {
        EngineConfig parCfg = base;
        parCfg.threads = threads;
        BitSerialEngine par(parCfg, weights, n, m);
        for (int rs = 0; rs < serial.rowSegments(); ++rs) {
            for (int cs = 0; cs < serial.colSegments(); ++cs) {
                EXPECT_EQ(serial.faultMap(rs, cs),
                          par.faultMap(rs, cs))
                    << "tile " << rs << "," << cs << " at "
                    << threads << " threads";
                EXPECT_EQ(serial.tileFaultReport(rs, cs),
                          par.tileFaultReport(rs, cs));
            }
        }
        EXPECT_EQ(serial.faultReport(), par.faultReport());
        EXPECT_EQ(serial.programPulses(), par.programPulses());
        for (const auto &probe : probes)
            EXPECT_EQ(serial.dotProduct(probe),
                      par.dotProduct(probe))
                << threads << " threads";
    }
}

TEST(Concurrency, PerTileAdcTalliesMergeExactly)
{
    // The per-tile ADC split must sum to the engine totals whether
    // the phases ran serially or in parallel.
    Rng rng(707);
    const int n = 256, m = 32;
    const auto weights = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.noise.sigmaLsb = 2.0;
    cfg.noise.seed = 13;
    cfg.threads = 4;
    BitSerialEngine eng(cfg, weights, n, m);
    for (int i = 0; i < 3; ++i)
        eng.dotProduct(randomWords(rng, n));

    std::uint64_t samples = 0, clips = 0;
    for (int rs = 0; rs < eng.rowSegments(); ++rs) {
        for (int cs = 0; cs < eng.colSegments(); ++cs) {
            const auto tally = eng.tileAdcTally(rs, cs);
            samples += tally.samples;
            clips += tally.clips;
        }
    }
    const auto stats = eng.stats();
    EXPECT_EQ(samples, stats.adcSamples);
    EXPECT_EQ(clips, stats.adcClips);
    EXPECT_EQ(clips, eng.adcClips());

    // resetStats() clears the per-tile split and the clip counter.
    eng.resetStats();
    EXPECT_EQ(eng.stats().adcClips, 0u);
    EXPECT_EQ(eng.tileAdcTally(0, 0).samples, 0u);
}

TEST(Concurrency, TransientCountersAreThreadCountInvariant)
{
    // The ABFT retry decision and the drift/refresh accounting are
    // keyed by (opSeq, phase, tile), never by execution order, so a
    // noisy drifting checked engine must produce identical outputs
    // AND an identical TransientStats block at any thread count.
    Rng rng(808);
    const int n = 300, m = 48; // 3 x 2 tiles at the default geometry
    const auto weights = randomWords(rng, n * m);
    std::vector<std::vector<Word>> probes;
    for (int i = 0; i < 6; ++i)
        probes.push_back(randomWords(rng, n));

    EngineConfig base;
    base.abftChecksum = true;
    base.noise.sigmaLsb = 2.5;
    base.noise.driftLevelsPerOp = 0.1;
    base.noise.refreshIntervalOps = 4;
    base.noise.seed = 31;

    EngineConfig serialCfg = base;
    serialCfg.threads = 1;
    BitSerialEngine serial(serialCfg, weights, n, m);
    for (const auto &probe : probes)
        serial.dotProduct(probe);
    const auto serialTransient = serial.transientStats();
    ASSERT_GT(serialTransient.abftChecks, 0u);
    ASSERT_GT(serialTransient.driftRefreshes, 0u);

    for (int threads : {2, 4, 8}) {
        EngineConfig parCfg = base;
        parCfg.threads = threads;
        BitSerialEngine par(parCfg, weights, n, m);
        // Re-run serially for the result comparison so both engines
        // consume identical op sequences.
        BitSerialEngine oracle(serialCfg, weights, n, m);
        for (const auto &probe : probes)
            EXPECT_EQ(oracle.dotProduct(probe),
                      par.dotProduct(probe))
                << threads << " threads";
        EXPECT_EQ(par.transientStats(), serialTransient)
            << threads << " threads";
    }
}

TEST(Concurrency, ReprogramKeepsParallelPathExact)
{
    Rng rng(505);
    const int n = 256, m = 32;
    const auto w1 = randomWords(rng, n * m);
    const auto w2 = randomWords(rng, n * m);

    EngineConfig cfg;
    cfg.threads = 4;
    BitSerialEngine eng(cfg, w1, n, m);
    EngineConfig serialCfg;
    serialCfg.threads = 1;
    BitSerialEngine oracle(serialCfg, w1, n, m);

    EXPECT_EQ(eng.reprogram(w2), oracle.reprogram(w2));
    const auto inputs = randomWords(rng, n);
    EXPECT_EQ(eng.dotProduct(inputs), oracle.dotProduct(inputs));
}

} // namespace
} // namespace isaac::xbar
