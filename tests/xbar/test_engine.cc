/**
 * @file
 * Bit-serial engine tests: the central correctness claim of the
 * reproduction. The analog pipeline (bit-serial inputs, sliced
 * biased weights, flipped columns, unit column, ADC, shift-and-add)
 * must compute the exact signed dot product.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "xbar/engine.h"

namespace isaac::xbar {
namespace {

/** Direct signed dot-product reference. */
std::vector<Acc>
directDot(std::span<const Word> weights, std::span<const Word> inputs,
          int numInputs, int numOutputs)
{
    std::vector<Acc> out(static_cast<std::size_t>(numOutputs), 0);
    for (int k = 0; k < numOutputs; ++k)
        for (int r = 0; r < numInputs; ++r)
            out[static_cast<std::size_t>(k)] +=
                static_cast<Acc>(
                    weights[static_cast<std::size_t>(k) * numInputs +
                            r]) *
                inputs[static_cast<std::size_t>(r)];
    return out;
}

std::vector<Word>
randomWords(Rng &rng, int n, int lo = -32768, int hi = 32767)
{
    std::vector<Word> v(static_cast<std::size_t>(n));
    for (auto &w : v)
        w = static_cast<Word>(rng.uniform(lo, hi));
    return v;
}

TEST(EngineConfig, DefaultsMatchIsaacCE)
{
    EngineConfig cfg;
    EXPECT_EQ(cfg.slicesPerWeight(), 8); // 8 cells per weight
    EXPECT_EQ(cfg.phases(), 16);         // 16-cycle bit-serial input
    EXPECT_EQ(cfg.outputsPerArray(), 16);
    EXPECT_EQ(cfg.adcBits(), 8);         // Table I's 8-bit ADC
}

TEST(EngineConfig, ValidateCatchesBadCombos)
{
    EngineConfig cfg;
    cfg.dacBits = 2; // two's complement streaming needs v = 1
    EXPECT_THROW(cfg.validate(), FatalError);

    EngineConfig narrow;
    narrow.cols = 4; // narrower than one sliced weight
    EXPECT_THROW(narrow.validate(), FatalError);

    EngineConfig badW;
    badW.cellBits = 3;
    EXPECT_THROW(badW.validate(), FatalError);
}

TEST(Engine, ExactSingleArrayDotProduct)
{
    Rng rng(11);
    EngineConfig cfg; // 128x128, w=2, v=1, flip encoding
    const int n = 128, m = 16;
    const auto weights = randomWords(rng, n * m);
    BitSerialEngine eng(cfg, weights, n, m);
    EXPECT_EQ(eng.physicalArrays(), 1);

    for (int trial = 0; trial < 20; ++trial) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(eng.dotProduct(inputs),
                  directDot(weights, inputs, n, m));
    }
    EXPECT_EQ(eng.adcClips(), 0u);
}

TEST(Engine, ExactAcrossRowAndColumnSegments)
{
    // Fig. 4's layer i: a 256x256 logical crossbar spread over four
    // 128x128 physical arrays (256 inputs, 32 outputs x 8 slices).
    Rng rng(13);
    EngineConfig cfg;
    const int n = 256, m = 32;
    const auto weights = randomWords(rng, n * m);
    BitSerialEngine eng(cfg, weights, n, m);
    EXPECT_EQ(eng.rowSegments(), 2);
    EXPECT_EQ(eng.colSegments(), 2);
    EXPECT_EQ(eng.physicalArrays(), 4);

    for (int trial = 0; trial < 10; ++trial) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(eng.dotProduct(inputs),
                  directDot(weights, inputs, n, m));
    }
    EXPECT_EQ(eng.adcClips(), 0u);
}

TEST(Engine, ExactWithRaggedEdges)
{
    // Dimensions that do not divide the array evenly exercise the
    // zero-padded rows and partially used columns.
    Rng rng(17);
    EngineConfig cfg;
    const int n = 200, m = 21;
    const auto weights = randomWords(rng, n * m);
    BitSerialEngine eng(cfg, weights, n, m);
    EXPECT_EQ(eng.rowSegments(), 2);
    EXPECT_EQ(eng.colSegments(), 2);

    for (int trial = 0; trial < 10; ++trial) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(eng.dotProduct(inputs),
                  directDot(weights, inputs, n, m));
    }
    EXPECT_EQ(eng.adcClips(), 0u);
}

TEST(Engine, ExactWithoutFlipEncodingAtHigherAdc)
{
    Rng rng(19);
    EngineConfig cfg;
    cfg.flipEncoding = false; // needs the 9-bit ADC
    EXPECT_EQ(cfg.adcBits(), 9);
    const int n = 128, m = 8;
    const auto weights = randomWords(rng, n * m);
    BitSerialEngine eng(cfg, weights, n, m);
    for (int trial = 0; trial < 10; ++trial) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(eng.dotProduct(inputs),
                  directDot(weights, inputs, n, m));
    }
    EXPECT_EQ(eng.adcClips(), 0u);
}

TEST(Engine, ExactExtremeValues)
{
    // Corner inputs/weights: saturated positives, negatives, zero.
    EngineConfig cfg;
    const int n = 6, m = 2;
    const std::vector<Word> weights{
        32767, -32768, 0, 1, -1, 12345,          // output 0
        -32768, -32768, -32768, 32767, 32767, 7, // output 1
    };
    BitSerialEngine eng(cfg, weights, n, m);
    const std::vector<Word> inputs{-32768, 32767, -1, 0, 1, -12345};
    EXPECT_EQ(eng.dotProduct(inputs),
              directDot(weights, inputs, n, m));
    EXPECT_EQ(eng.adcClips(), 0u);
}

struct GeomCase
{
    int rows, cols, cellBits, dacBits;
    bool flip;
    InputMode mode;
};

class EngineGeometry : public ::testing::TestWithParam<GeomCase> {};

TEST_P(EngineGeometry, ExactForGeometry)
{
    const auto p = GetParam();
    Rng rng(23 + p.rows + p.cellBits * 100 + p.dacBits);
    EngineConfig cfg;
    cfg.rows = p.rows;
    cfg.cols = p.cols;
    cfg.cellBits = p.cellBits;
    cfg.dacBits = p.dacBits;
    cfg.flipEncoding = p.flip;
    cfg.inputMode = p.mode;

    const int n = p.rows + p.rows / 2; // force two row segments
    const int m = cfg.outputsPerArray() + 3;
    const auto weights = randomWords(rng, n * m);
    BitSerialEngine eng(cfg, weights, n, m);
    for (int trial = 0; trial < 6; ++trial) {
        const auto inputs = randomWords(rng, n);
        EXPECT_EQ(eng.dotProduct(inputs),
                  directDot(weights, inputs, n, m));
    }
    EXPECT_EQ(eng.adcClips(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineGeometry,
    ::testing::Values(
        // The ISAAC-CE design point.
        GeomCase{128, 128, 2, 1, true, InputMode::TwosComplement},
        // Smaller and larger arrays.
        GeomCase{32, 64, 2, 1, true, InputMode::TwosComplement},
        GeomCase{256, 128, 2, 1, true, InputMode::TwosComplement},
        // 1-bit and 4-bit cells (the w ablation).
        GeomCase{128, 128, 1, 1, true, InputMode::TwosComplement},
        GeomCase{128, 128, 4, 1, true, InputMode::TwosComplement},
        // No flip encoding.
        GeomCase{128, 128, 2, 1, false, InputMode::TwosComplement},
        // Biased input mode at v = 1 (must agree with two's comp).
        GeomCase{128, 128, 2, 1, true, InputMode::Biased},
        // Multi-bit DACs (the v ablation) need biased inputs.
        GeomCase{128, 128, 2, 2, true, InputMode::Biased},
        GeomCase{128, 128, 2, 4, true, InputMode::Biased},
        GeomCase{64, 128, 4, 2, false, InputMode::Biased}));

TEST(Engine, StatsCountPhasesAndSamples)
{
    Rng rng(29);
    EngineConfig cfg;
    const int n = 128, m = 16;
    const auto weights = randomWords(rng, n * m);
    BitSerialEngine eng(cfg, weights, n, m);
    const auto inputs = randomWords(rng, n);
    eng.dotProduct(inputs);

    const auto &s = eng.stats();
    EXPECT_EQ(s.ops, 1u);
    // 16 phases, one array.
    EXPECT_EQ(s.crossbarReads, 16u);
    // Per phase: 128 data columns + 1 unit column sampled.
    EXPECT_EQ(s.adcSamples, 16u * 129u);
    // Each row gets one digit per phase.
    EXPECT_EQ(s.dacActivations, 16u * 128u);

    eng.resetStats();
    EXPECT_EQ(eng.stats().ops, 0u);
    EXPECT_EQ(eng.stats().adcSamples, 0u);
}

TEST(Engine, CellUtilizationFullArray)
{
    Rng rng(31);
    EngineConfig cfg;
    const auto weights = randomWords(rng, 128 * 16);
    BitSerialEngine full(cfg, weights, 128, 16);
    // 128 rows x (128 data + 1 unit) used out of 128 x 129.
    EXPECT_DOUBLE_EQ(full.cellUtilization(), 1.0);

    const auto halfWeights = randomWords(rng, 64 * 16);
    BitSerialEngine half(cfg, halfWeights, 64, 16);
    EXPECT_NEAR(half.cellUtilization(), 0.5, 0.01);
}

TEST(Engine, NoiseProducesBoundedErrors)
{
    Rng rng(37);
    EngineConfig cfg;
    cfg.noise.sigmaLsb = 0.3;
    cfg.noise.seed = 77;
    const int n = 128, m = 4;
    // Small weights keep the relative error visible but bounded.
    const auto weights = randomWords(rng, n * m);
    BitSerialEngine eng(cfg, weights, n, m);
    const auto inputs = randomWords(rng, n);
    const auto noisy = eng.dotProduct(inputs);
    const auto exact = directDot(weights, inputs, n, m);
    int differing = 0;
    for (int k = 0; k < m; ++k) {
        // Per-sample sigma of 0.3 LSB is amplified by the slice
        // (up to 2^14) and phase (up to 2^15) shifts: errors of a
        // few times 2^27 are expected; 2^31 bounds the ballpark.
        EXPECT_NEAR(static_cast<double>(noisy[k]),
                    static_cast<double>(exact[k]), 1.0 * (1LL << 31));
        differing += noisy[k] != exact[k];
    }
    EXPECT_GT(differing, 0);
}

TEST(Engine, RejectsWrongInputLength)
{
    Rng rng(41);
    EngineConfig cfg;
    const auto weights = randomWords(rng, 128 * 16);
    BitSerialEngine eng(cfg, weights, 128, 16);
    const auto bad = randomWords(rng, 64);
    EXPECT_THROW(eng.dotProduct(bad), FatalError);
}

TEST(Engine, RejectsMismatchedWeights)
{
    Rng rng(43);
    EngineConfig cfg;
    const auto weights = randomWords(rng, 100);
    EXPECT_THROW(BitSerialEngine(cfg, weights, 128, 16), FatalError);
}

} // namespace
} // namespace isaac::xbar
