/**
 * @file
 * Programming-cost model tests: the numbers behind the paper's
 * "crossbars can't be reprogrammed on the fly" argument.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/zoo.h"
#include "pipeline/replication.h"
#include "xbar/write_model.h"

namespace isaac::xbar {
namespace {

const arch::IsaacConfig kCE = arch::IsaacConfig::isaacCE();

TEST(WriteModel, ArrayTimeIsRowSerial)
{
    WriteModel wm;
    // 128 rows x 4 pulses x 100 ns = 51.2 us per array.
    EXPECT_NEAR(wm.arraySeconds(kCE), 51.2e-6, 1e-9);

    WriteModel fast;
    fast.rowsPerWrite = 4;
    EXPECT_NEAR(fast.arraySeconds(kCE), 12.8e-6, 1e-9);
}

TEST(WriteModel, EnergyScalesWithCells)
{
    WriteModel wm;
    EXPECT_NEAR(wm.cellsEnergyJ(1), 40e-12, 1e-15);
    EXPECT_NEAR(wm.cellsEnergyJ(1000000), 40e-6, 1e-9);
}

TEST(WriteModel, ChipProgramsInParallelAcrossImas)
{
    WriteModel wm;
    // A full chip: every IMA writes its 8 arrays back to back.
    const auto chipArrays = pipeline::totalXbars(kCE, 1);
    const double t = wm.programSeconds(kCE, chipArrays, 1);
    EXPECT_NEAR(t, 8 * 51.2e-6, 1e-7);
    // Twice the chips halve nothing (same arrays per IMA).
    EXPECT_NEAR(wm.programSeconds(kCE, chipArrays * 2, 2), t, 1e-7);
    // Fewer arrays per IMA program faster.
    EXPECT_LT(wm.programSeconds(kCE, chipArrays / 2, 1), t);
}

TEST(WriteModel, ReprogrammingDwarfsInference)
{
    // The design argument: swapping VGG-1's weights in and out (as
    // a time-multiplexed NFU would) costs orders of magnitude more
    // time than the per-image pipeline interval.
    WriteModel wm;
    const auto net = nn::vgg(1);
    const auto plan = pipeline::planPipeline(net, kCE, 16);
    ASSERT_TRUE(plan.fits);
    const double programT =
        wm.programSeconds(kCE, plan.xbarsUsed, 16);
    const double imageT =
        plan.cyclesPerImage * kCE.cycleNs * 1e-9;
    EXPECT_GT(programT, 10.0 * imageT);
}

TEST(WriteModel, RejectsBadParameters)
{
    WriteModel wm;
    wm.pulseNs = 0;
    EXPECT_THROW(wm.arraySeconds(kCE), FatalError);
    WriteModel wm2;
    EXPECT_THROW(wm2.programSeconds(kCE, 8, 0), FatalError);
}

} // namespace
} // namespace isaac::xbar
