/**
 * @file
 * Design-space exploration tests (Fig. 5 / Sec. VIII-A).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "dse/dse.h"

namespace isaac::dse {
namespace {

TEST(Dse, SweepCoversTheFullGrid)
{
    DseSpace space;
    const auto points = sweep(space);
    EXPECT_EQ(points.size(),
              space.rows.size() * space.adcsPerIma.size() *
                  space.xbarsPerIma.size() *
                  space.imasPerTile.size());
}

TEST(Dse, IsaacCEPointIsFeasibleAndMatchesTableIV)
{
    const auto p = evaluate(arch::IsaacConfig::isaacCE());
    EXPECT_TRUE(p.feasible) << p.hazard;
    EXPECT_NEAR(p.ce, 478.95, 6.0);
    EXPECT_NEAR(p.se, 0.74, 0.01);
}

TEST(Dse, BestCEIsThePaperDesignPoint)
{
    // Fig. 5: the optimal design has 8 128x128 arrays, 8 ADCs per
    // IMA, and 12 IMAs per tile.
    const auto points = sweep();
    const auto &ce = best(points, Metric::CE);
    EXPECT_EQ(ce.config.label(), "H128-A8-C8-I12");
    EXPECT_EQ(rankOf(points, Metric::CE, "H128-A8-C8-I12"), 1);
}

TEST(Dse, BigArraysNeedNineBitAdcs)
{
    arch::IsaacConfig cfg;
    cfg.engine.rows = 256;
    cfg.engine.cols = 256;
    const auto p = evaluate(cfg);
    EXPECT_FALSE(p.feasible);
    EXPECT_NE(p.hazard.find("9-bit"), std::string::npos);
}

TEST(Dse, OverprovisionedTilesHitTheBusBound)
{
    arch::IsaacConfig cfg;
    cfg.xbarsPerIma = 16;
    cfg.imasPerTile = 16;
    const auto p = evaluate(cfg);
    EXPECT_FALSE(p.feasible);
    EXPECT_NE(p.hazard.find("eDRAM/bus"), std::string::npos);
}

TEST(Dse, StarvedAdcsLowerCE)
{
    // Halving the ADCs halves effective throughput but keeps most
    // of the area: CE must drop well below the balanced point.
    arch::IsaacConfig starved;
    starved.adcsPerIma = 4;
    const auto p = evaluate(starved);
    const auto ce = evaluate(arch::IsaacConfig::isaacCE());
    EXPECT_TRUE(p.feasible);
    EXPECT_LT(p.ce, 0.7 * ce.ce);
}

TEST(Dse, ExtraAdcsAlsoLowerCE)
{
    arch::IsaacConfig wasted;
    wasted.adcsPerIma = 16;
    const auto p = evaluate(wasted);
    const auto ce = evaluate(arch::IsaacConfig::isaacCE());
    EXPECT_TRUE(p.feasible);
    EXPECT_LT(p.ce, ce.ce);
}

TEST(Dse, SeSweepFindsDenseDesign)
{
    // Relaxing the ADC bound and sweeping toward large, many-array
    // IMAs yields storage densities an order of magnitude above the
    // CE design (Table IV: 54.8 vs 0.74 MB/mm^2).
    const auto p = evaluate(arch::IsaacConfig::isaacSE(),
                            DseSpace{.relaxAdcBound = true,
                                     .tileInputBytesPerCycle = 1e12});
    EXPECT_TRUE(p.feasible) << p.hazard;
    EXPECT_GT(p.se, 20.0);
    EXPECT_LT(p.ce, evaluate(arch::IsaacConfig::isaacCE()).ce);
}

TEST(Dse, BestThrowsWithNoFeasiblePoints)
{
    std::vector<DsePoint> none;
    EXPECT_THROW(best(none, Metric::CE), FatalError);
    DsePoint bad;
    bad.feasible = false;
    EXPECT_THROW(best({bad}, Metric::PE), FatalError);
}

TEST(Dse, RankOfUnknownLabelThrows)
{
    const auto points = sweep();
    EXPECT_THROW(rankOf(points, Metric::CE, "H1-A1-C1-I1"),
                 FatalError);
}

} // namespace
} // namespace isaac::dse
