/**
 * @file
 * Design-space exploration tests (Fig. 5 / Sec. VIII-A).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "dse/dse.h"

namespace isaac::dse {
namespace {

TEST(Dse, SweepCoversTheFullGrid)
{
    DseSpace space;
    const auto points = sweep(space);
    EXPECT_EQ(points.size(),
              space.rows.size() * space.adcsPerIma.size() *
                  space.xbarsPerIma.size() *
                  space.imasPerTile.size());
}

TEST(Dse, IsaacCEPointIsFeasibleAndMatchesTableIV)
{
    const auto p = evaluate(arch::IsaacConfig::isaacCE());
    EXPECT_TRUE(p.feasible) << p.hazard;
    EXPECT_NEAR(p.ce, 478.95, 6.0);
    EXPECT_NEAR(p.se, 0.74, 0.01);
}

TEST(Dse, BestCEIsThePaperDesignPoint)
{
    // Fig. 5: the optimal design has 8 128x128 arrays, 8 ADCs per
    // IMA, and 12 IMAs per tile.
    const auto points = sweep();
    const auto &ce = best(points, Metric::CE);
    EXPECT_EQ(ce.config.label(), "H128-A8-C8-I12");
    EXPECT_EQ(rankOf(points, Metric::CE, "H128-A8-C8-I12"), 1);
}

TEST(Dse, BigArraysNeedNineBitAdcs)
{
    arch::IsaacConfig cfg;
    cfg.engine.rows = 256;
    cfg.engine.cols = 256;
    const auto p = evaluate(cfg);
    EXPECT_FALSE(p.feasible);
    EXPECT_NE(p.hazard.find("9-bit"), std::string::npos);
}

TEST(Dse, OverprovisionedTilesHitTheBusBound)
{
    arch::IsaacConfig cfg;
    cfg.xbarsPerIma = 16;
    cfg.imasPerTile = 16;
    const auto p = evaluate(cfg);
    EXPECT_FALSE(p.feasible);
    EXPECT_NE(p.hazard.find("eDRAM/bus"), std::string::npos);
}

TEST(Dse, StarvedAdcsLowerCE)
{
    // Halving the ADCs halves effective throughput but keeps most
    // of the area: CE must drop well below the balanced point.
    arch::IsaacConfig starved;
    starved.adcsPerIma = 4;
    const auto p = evaluate(starved);
    const auto ce = evaluate(arch::IsaacConfig::isaacCE());
    EXPECT_TRUE(p.feasible);
    EXPECT_LT(p.ce, 0.7 * ce.ce);
}

TEST(Dse, ExtraAdcsAlsoLowerCE)
{
    arch::IsaacConfig wasted;
    wasted.adcsPerIma = 16;
    const auto p = evaluate(wasted);
    const auto ce = evaluate(arch::IsaacConfig::isaacCE());
    EXPECT_TRUE(p.feasible);
    EXPECT_LT(p.ce, ce.ce);
}

TEST(Dse, SeSweepFindsDenseDesign)
{
    // Relaxing the ADC bound and sweeping toward large, many-array
    // IMAs yields storage densities an order of magnitude above the
    // CE design (Table IV: 54.8 vs 0.74 MB/mm^2).
    const auto p = evaluate(arch::IsaacConfig::isaacSE(),
                            DseSpace{.relaxAdcBound = true,
                                     .tileInputBytesPerCycle = 1e12});
    EXPECT_TRUE(p.feasible) << p.hazard;
    EXPECT_GT(p.se, 20.0);
    EXPECT_LT(p.ce, evaluate(arch::IsaacConfig::isaacCE()).ce);
}

TEST(Dse, BestThrowsWithNoFeasiblePoints)
{
    std::vector<DsePoint> none;
    EXPECT_THROW(best(none, Metric::CE), FatalError);
    DsePoint bad;
    bad.feasible = false;
    EXPECT_THROW(best({bad}, Metric::PE), FatalError);
}

TEST(Dse, RankOfUnknownLabelThrows)
{
    const auto points = sweep();
    EXPECT_THROW(rankOf(points, Metric::CE, "H1-A1-C1-I1"),
                 FatalError);
}

/** Two points are byte-identical for frontier purposes. */
void
expectPointsIdentical(const DsePoint &a, const DsePoint &b)
{
    EXPECT_EQ(a.label(), b.label());
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.hazard, b.hazard);
    // Bitwise: the sweep evaluates each point with the same scalar
    // code regardless of scheduling, so not even ULPs may move.
    EXPECT_EQ(a.ce, b.ce);
    EXPECT_EQ(a.pe, b.pe);
    EXPECT_EQ(a.se, b.se);
}

TEST(Dse, GoldenFrontierIsByteStableAcrossThreadCounts)
{
    // The Fig. 5 regression: the full sweep (and its Pareto front,
    // the shape BENCH_dse.json publishes) must not move by a single
    // bit when the sweep's thread count changes.
    DseSpace golden;
    golden.threads = 1;
    golden.policies = {xbar::AdcPolicy{}, xbar::AdcPolicy::adaptive()};
    golden.heteroFractions = {0.0, 0.5};
    const auto want = sweep(golden);
    const auto wantFront = paretoFront(want);
    ASSERT_FALSE(wantFront.empty());

    for (const int threads : {2, 4, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        DseSpace space = golden;
        space.threads = threads;
        const auto got = sweep(space);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            expectPointsIdentical(want[i], got[i]);
        const auto front = paretoFront(got);
        ASSERT_EQ(front.size(), wantFront.size());
        for (std::size_t i = 0; i < front.size(); ++i)
            expectPointsIdentical(wantFront[i], front[i]);
    }
}

TEST(Dse, PolicyAxisMultipliesTheGridAndKeepsLabelsStable)
{
    DseSpace space;
    space.rows = {128};
    space.adcsPerIma = {8};
    space.xbarsPerIma = {8};
    space.imasPerTile = {12};
    space.policies = {xbar::AdcPolicy{}, xbar::AdcPolicy::adaptive(),
                      xbar::AdcPolicy::fixed(8)};
    space.heteroFractions = {0.0, 0.25};
    const auto points = sweep(space);
    ASSERT_EQ(points.size(), 6u);

    // Row-major with the policy axis outer of the hetero axis;
    // default-axes points keep the bare Fig. 5 label.
    EXPECT_EQ(points[0].label(), "H128-A8-C8-I12");
    EXPECT_EQ(points[1].label(), "H128-A8-C8-I12-het25pc");
    EXPECT_EQ(points[2].label(), "H128-A8-C8-I12-adaptive");
    EXPECT_EQ(points[3].label(), "H128-A8-C8-I12-adaptive-het25pc");
    EXPECT_EQ(points[4].label(), "H128-A8-C8-I12-fixed8");
    EXPECT_EQ(points[5].label(), "H128-A8-C8-I12-fixed8-het25pc");
    EXPECT_EQ(points[1].heteroRows, 64);
    EXPECT_EQ(points[0].heteroRows, 0);
}

TEST(Dse, AdaptivePolicyBeatsFixedOnPowerEfficiency)
{
    // The tentpole's frontier claim at its sharpest point: on the
    // paper's own CE geometry, the Newton-style converter improves
    // GOPS/W (shorter expected conversions), pays a small area tax
    // on GOPS/mm^2, and leaves feasibility untouched (the SAR core
    // still resolves the full 8-bit requirement).
    const auto cfg = arch::IsaacConfig::isaacCE();
    const DseSpace space;
    const auto fixed = evaluate(cfg, space, xbar::AdcPolicy{}, 0.0);
    const auto adaptive =
        evaluate(cfg, space, xbar::AdcPolicy::adaptive(), 0.0);
    ASSERT_TRUE(fixed.feasible) << fixed.hazard;
    ASSERT_TRUE(adaptive.feasible) << adaptive.hazard;
    EXPECT_GT(adaptive.pe, fixed.pe);
    EXPECT_LT(adaptive.ce, fixed.ce);
    // Same storage on a slightly larger chip (the adaptive area
    // overhead), so density dips without the byte count moving.
    EXPECT_LT(adaptive.se, fixed.se);
    EXPECT_GT(adaptive.se, fixed.se * 0.9);
}

TEST(Dse, HeterogeneousTilesInterpolateTheHomogeneousEndpoints)
{
    const auto cfg = arch::IsaacConfig::isaacCE();
    const DseSpace space;
    const xbar::AdcPolicy pol;
    const auto none = evaluate(cfg, space, pol, 0.0);
    const auto half = evaluate(cfg, space, pol, 0.5);
    const auto tiny = evaluate(cfg, space, pol, 0.01);

    // 0.5 * 12 IMAs = 6 secondary 64-row arrays.
    EXPECT_EQ(half.heteroRows, 64);
    EXPECT_GT(half.ce, 0.0);
    EXPECT_TRUE(half.feasible) << half.hazard;
    // Halving arrays removes storage faster than area, so the mixed
    // tile is less storage-dense but strictly cheaper on IR traffic.
    EXPECT_LT(half.se, none.se);
    EXPECT_NE(half.ce, none.ce);

    // A fraction that rounds to zero IMAs collapses to homogeneous
    // (and says so in the label).
    EXPECT_EQ(tiny.heteroRows, 0);
    EXPECT_EQ(tiny.label(), none.label());
    EXPECT_EQ(tiny.ce, none.ce);
    EXPECT_EQ(tiny.pe, none.pe);
}

TEST(Dse, EmptyPolicyAxisIsAConfigError)
{
    DseSpace space;
    space.rows = {128};
    space.adcsPerIma = {8};
    space.xbarsPerIma = {8};
    space.imasPerTile = {12};
    space.policies.clear();
    EXPECT_THROW(sweep(space), FatalError);
    space.policies = {xbar::AdcPolicy{}};
    space.heteroFractions.clear();
    EXPECT_THROW(sweep(space), FatalError);
}

} // namespace
} // namespace isaac::dse
