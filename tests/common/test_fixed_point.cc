/**
 * @file
 * Unit and property tests for the fixed-point helpers.
 */

#include <gtest/gtest.h>

#include "common/fixed_point.h"
#include "common/logging.h"
#include "common/rng.h"

namespace isaac {
namespace {

TEST(FixedPoint, SaturateClampsBothEnds)
{
    EXPECT_EQ(saturate16(40000), 32767);
    EXPECT_EQ(saturate16(-40000), -32768);
    EXPECT_EQ(saturate16(123), 123);
    EXPECT_EQ(saturate16(-123), -123);
    EXPECT_EQ(saturate16(32767), 32767);
    EXPECT_EQ(saturate16(-32768), -32768);
}

TEST(FixedPoint, RoundTripSmallValues)
{
    const FixedFormat fmt{12};
    for (double v : {0.0, 0.5, -0.5, 1.25, -3.75, 7.0, -7.999}) {
        const Word w = toFixed(v, fmt);
        EXPECT_NEAR(fromFixed(w, fmt), v, fmt.resolution());
    }
}

TEST(FixedPoint, ToFixedSaturates)
{
    const FixedFormat fmt{12};
    EXPECT_EQ(toFixed(1000.0, fmt), 32767);
    EXPECT_EQ(toFixed(-1000.0, fmt), -32768);
}

TEST(FixedPoint, ToFixedRejectsBadFormat)
{
    EXPECT_THROW(toFixed(1.0, FixedFormat{16}), FatalError);
    EXPECT_THROW(toFixed(1.0, FixedFormat{-1}), FatalError);
}

TEST(FixedPoint, RequantizeExactProducts)
{
    // A product of two Q*.f numbers requantizes back to the exact
    // representable product when no rounding is needed.
    const FixedFormat fmt{8};
    const Word a = toFixed(1.5, fmt);   // 384
    const Word b = toFixed(2.0, fmt);   // 512
    const Acc prod = static_cast<Acc>(a) * b;
    EXPECT_EQ(requantizeAcc(prod, fmt), toFixed(3.0, fmt));
}

TEST(FixedPoint, RequantizeRoundsToNearest)
{
    const FixedFormat fmt{4};
    // acc = 24 with 8 fraction bits -> 24/16 = 1.5 -> rounds to 2.
    EXPECT_EQ(requantizeAcc(24, fmt), 2);
    // Negative ties round away from zero symmetrically.
    EXPECT_EQ(requantizeAcc(-24, fmt), -2);
    EXPECT_EQ(requantizeAcc(23, fmt), 1);
    EXPECT_EQ(requantizeAcc(-23, fmt), -1);
}

TEST(FixedPoint, RequantizeIsOddSymmetric)
{
    // Within the non-saturating range, requantization is an odd
    // function (the int16 range itself is asymmetric, so saturated
    // values are excluded).
    Rng rng(7);
    const FixedFormat fmt{12};
    for (int i = 0; i < 10000; ++i) {
        const Acc acc = rng.uniform(-(1ll << 26), 1ll << 26);
        EXPECT_EQ(requantizeAcc(-acc, fmt),
                  -static_cast<Acc>(requantizeAcc(acc, fmt)))
            << "acc=" << acc;
    }
}

class FixedFormatSweep : public ::testing::TestWithParam<int> {};

TEST_P(FixedFormatSweep, ResolutionMatchesRange)
{
    const FixedFormat fmt{GetParam()};
    EXPECT_DOUBLE_EQ(fmt.resolution(), 1.0 / (1 << fmt.fracBits));
    EXPECT_DOUBLE_EQ(fmt.maxValue(), 32767.0 / (1 << fmt.fracBits));
    EXPECT_DOUBLE_EQ(fmt.minValue(), -32768.0 / (1 << fmt.fracBits));
    // Round-tripping the extremes is exact.
    EXPECT_EQ(toFixed(fmt.maxValue(), fmt), 32767);
    EXPECT_EQ(toFixed(fmt.minValue(), fmt), -32768);
}

TEST_P(FixedFormatSweep, RequantizeNeverOverflowsWord)
{
    const FixedFormat fmt{GetParam()};
    Rng rng(GetParam() * 91 + 1);
    for (int i = 0; i < 2000; ++i) {
        const Acc acc = rng.uniform(-(1ll << 45), 1ll << 45);
        const Word w = requantizeAcc(acc, fmt);
        EXPECT_GE(w, -32768);
        EXPECT_LE(w, 32767);
    }
}

INSTANTIATE_TEST_SUITE_P(AllFracWidths, FixedFormatSweep,
                         ::testing::Range(1, 16));

} // namespace
} // namespace isaac
