/**
 * @file
 * Thread-pool / parallelFor contract tests: full index coverage,
 * stable worker slots, inline nesting, and exception propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace isaac {
namespace {

TEST(ParallelWorkers, ResolvesTheKnob)
{
    // Explicit counts pass through, clamped to the iteration count.
    EXPECT_EQ(parallelWorkers(4, 100), 4);
    EXPECT_EQ(parallelWorkers(4, 2), 2);
    EXPECT_EQ(parallelWorkers(1, 100), 1);
    // 0 or 1 iterations never fan out.
    EXPECT_EQ(parallelWorkers(8, 1), 1);
    EXPECT_EQ(parallelWorkers(0, 1), 1);
    // 0 = one per hardware thread (at least one).
    EXPECT_GE(parallelWorkers(0, 1000), 1);
    EXPECT_THROW(parallelWorkers(-1, 10), FatalError);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 4, 8}) {
        const std::int64_t items = 1000;
        std::vector<std::atomic<int>> hits(items);
        parallelFor(items, threads, [&](std::int64_t i, int) {
            hits[static_cast<std::size_t>(i)].fetch_add(1);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, SerialModeRunsInlineAscending)
{
    std::vector<std::int64_t> order;
    parallelFor(10, 1, [&](std::int64_t i, int slot) {
        EXPECT_EQ(slot, 0);
        order.push_back(i);
    });
    std::vector<std::int64_t> expect(10);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

TEST(ParallelFor, WorkerSlotsIndexPerWorkerAccumulators)
{
    const int threads = 4;
    const std::int64_t items = 500;
    const int slots = parallelWorkers(threads, items);
    ASSERT_GE(slots, 1);
    std::vector<std::int64_t> sums(static_cast<std::size_t>(slots), 0);
    parallelFor(items, threads, [&](std::int64_t i, int slot) {
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, slots);
        sums[static_cast<std::size_t>(slot)] += i;
    });
    const std::int64_t total =
        std::accumulate(sums.begin(), sums.end(), std::int64_t{0});
    EXPECT_EQ(total, items * (items - 1) / 2);
}

TEST(ParallelFor, NestedCallsRunInline)
{
    // A parallel region inside a parallel region must not fan out
    // again (oversubscription / deadlock guard): the inner call sees
    // itself as serial.
    std::atomic<int> innerFanout{0};
    parallelFor(8, 4, [&](std::int64_t, int) {
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        parallelFor(4, 4, [&](std::int64_t, int slot) {
            if (slot != 0)
                innerFanout.fetch_add(1);
        });
    });
    EXPECT_EQ(innerFanout.load(), 0);
    EXPECT_FALSE(ThreadPool::inParallelRegion());
}

TEST(ParallelFor, PropagatesTheFirstException)
{
    EXPECT_THROW(
        parallelFor(100, 4,
                    [&](std::int64_t i, int) {
                        if (i == 37)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges)
{
    int calls = 0;
    parallelFor(0, 4, [&](std::int64_t, int) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, 4, [&](std::int64_t i, int slot) {
        EXPECT_EQ(i, 0);
        EXPECT_EQ(slot, 0);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, GrowsToTheRequestedWorkerCount)
{
    auto &pool = ThreadPool::global();
    pool.ensureWorkers(3);
    EXPECT_GE(pool.workers(), 3);
    const int before = pool.workers();
    pool.ensureWorkers(1); // never shrinks
    EXPECT_EQ(pool.workers(), before);
}

} // namespace
} // namespace isaac
