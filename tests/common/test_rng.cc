/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.h"

namespace isaac {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniform(-5, 9);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, UniformCoversRange)
{
    Rng rng(11);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.uniform(0, 7)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, Uniform01InHalfOpenInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(5);
    double sum = 0.0, sumSq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sumSq += g * g;
    }
    const double mean = sum / n;
    const double var = sumSq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

} // namespace
} // namespace isaac
