/**
 * @file
 * StealDeque: the Chase–Lev deque under the session scheduler.
 *
 * The properties that matter to InferenceSession: owner pop is LIFO,
 * thief steal is FIFO, every pushed element is claimed exactly once
 * across any owner/thief interleaving (a lost element would strand an
 * inference request; a duplicated one would double-complete it), and
 * the buffer grows transparently while thieves are racing.
 */

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/steal_deque.h"

namespace isaac {
namespace {

TEST(StealDeque, OwnerPopsLifo)
{
    StealDeque<int *> dq;
    int items[3] = {0, 1, 2};
    for (int &i : items)
        dq.push(&i);
    int *out = nullptr;
    ASSERT_TRUE(dq.pop(out));
    EXPECT_EQ(out, &items[2]);
    ASSERT_TRUE(dq.pop(out));
    EXPECT_EQ(out, &items[1]);
    ASSERT_TRUE(dq.pop(out));
    EXPECT_EQ(out, &items[0]);
    EXPECT_FALSE(dq.pop(out));
}

TEST(StealDeque, ThievesStealFifo)
{
    StealDeque<int *> dq;
    int items[3] = {0, 1, 2};
    for (int &i : items)
        dq.push(&i);
    int *out = nullptr;
    ASSERT_TRUE(dq.steal(out));
    EXPECT_EQ(out, &items[0]);
    ASSERT_TRUE(dq.steal(out));
    EXPECT_EQ(out, &items[1]);
    ASSERT_TRUE(dq.steal(out));
    EXPECT_EQ(out, &items[2]);
    EXPECT_FALSE(dq.steal(out));
}

TEST(StealDeque, GrowsPastInitialCapacityWithoutLosingElements)
{
    StealDeque<std::uint64_t *> dq(/*initialCapacity=*/2);
    constexpr std::size_t kN = 10000;
    std::vector<std::uint64_t> items(kN);
    for (auto &i : items)
        dq.push(&i);
    EXPECT_EQ(dq.sizeApprox(), static_cast<std::int64_t>(kN));
    // Drain half from each end; every element must appear once.
    std::vector<bool> seen(kN, false);
    std::uint64_t *out = nullptr;
    for (std::size_t k = 0; k < kN / 2; ++k) {
        ASSERT_TRUE(dq.steal(out));
        const std::size_t idx =
            static_cast<std::size_t>(out - items.data());
        ASSERT_FALSE(seen[idx]);
        seen[idx] = true;
    }
    while (dq.pop(out)) {
        const std::size_t idx =
            static_cast<std::size_t>(out - items.data());
        ASSERT_FALSE(seen[idx]);
        seen[idx] = true;
    }
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_TRUE(seen[i]) << "lost element " << i;
}

TEST(StealDeque, EveryElementClaimedExactlyOnceUnderContention)
{
    // One owner interleaving push/pop with a pack of thieves. Each
    // element carries a claim counter; CAS-free double-claims or
    // losses both fail the final audit.
    constexpr int kThieves = 4;
    constexpr std::uint64_t kItems = 20000;
    struct Item
    {
        std::atomic<int> claims{0};
    };
    std::vector<Item> items(kItems);
    StealDeque<Item *> dq(/*initialCapacity=*/4);
    std::atomic<bool> ownerDone{false};
    std::atomic<std::uint64_t> claimed{0};

    std::vector<std::thread> thieves;
    for (int t = 0; t < kThieves; ++t) {
        thieves.emplace_back([&] {
            Item *out = nullptr;
            while (!ownerDone.load(std::memory_order_acquire) ||
                   dq.sizeApprox() > 0) {
                if (dq.steal(out)) {
                    out->claims.fetch_add(1,
                                          std::memory_order_relaxed);
                    claimed.fetch_add(1, std::memory_order_relaxed);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }

    // The owner pushes everything, popping a few as it goes — the
    // session's push-then-continue pattern.
    Item *out = nullptr;
    for (std::uint64_t i = 0; i < kItems; ++i) {
        dq.push(&items[i]);
        if (i % 3 == 0 && dq.pop(out)) {
            out->claims.fetch_add(1, std::memory_order_relaxed);
            claimed.fetch_add(1, std::memory_order_relaxed);
        }
    }
    while (dq.pop(out)) {
        out->claims.fetch_add(1, std::memory_order_relaxed);
        claimed.fetch_add(1, std::memory_order_relaxed);
    }
    ownerDone.store(true, std::memory_order_release);
    for (auto &t : thieves)
        t.join();

    EXPECT_EQ(claimed.load(), kItems);
    for (std::uint64_t i = 0; i < kItems; ++i)
        ASSERT_EQ(items[i].claims.load(), 1)
            << "element " << i << " claimed "
            << items[i].claims.load() << " times";
}

} // namespace
} // namespace isaac
