/**
 * @file
 * Tests for the bit/integer helpers.
 */

#include <gtest/gtest.h>

#include "common/bits.h"

namespace isaac {
namespace {

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0);
    EXPECT_EQ(ceilDiv(1, 4), 1);
    EXPECT_EQ(ceilDiv(4, 4), 1);
    EXPECT_EQ(ceilDiv(5, 4), 2);
    EXPECT_EQ(ceilDiv(128, 128), 1);
    EXPECT_EQ(ceilDiv(129, 128), 2);
}

TEST(Bits, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0);
    EXPECT_EQ(log2Ceil(2), 1);
    EXPECT_EQ(log2Ceil(3), 2);
    EXPECT_EQ(log2Ceil(128), 7);
    EXPECT_EQ(log2Ceil(129), 8);
}

TEST(Bits, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0);
    EXPECT_EQ(log2Floor(2), 1);
    EXPECT_EQ(log2Floor(3), 1);
    EXPECT_EQ(log2Floor(128), 7);
    EXPECT_EQ(log2Floor(255), 7);
}

TEST(Bits, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(128));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(129));
}

TEST(Bits, BitOfWalksTwosComplement)
{
    const std::int16_t v = -1; // all 16 bits set
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(bitOf(v, i), 1);
    const std::int16_t w = 0b0000000000000101;
    EXPECT_EQ(bitOf(w, 0), 1);
    EXPECT_EQ(bitOf(w, 1), 0);
    EXPECT_EQ(bitOf(w, 2), 1);
    EXPECT_EQ(bitOf(w, 15), 0);
}

TEST(Bits, BitsReassembleWord)
{
    // Property: sum over bits of b_i * 2^i (with bit 15 negative)
    // reconstructs the two's-complement value.
    for (std::int32_t v = -32768; v <= 32767; v += 17) {
        const auto w = static_cast<std::int16_t>(v);
        std::int32_t sum = 0;
        for (int i = 0; i < 15; ++i)
            sum += bitOf(w, i) << i;
        sum -= bitOf(w, 15) << 15;
        EXPECT_EQ(sum, v);
    }
}

TEST(Bits, DigitOfExtractsFields)
{
    const std::int16_t v = 0b0110'1011'0010'1101;
    EXPECT_EQ(digitOf(v, 0, 4), 0b1101);
    EXPECT_EQ(digitOf(v, 4, 4), 0b0010);
    EXPECT_EQ(digitOf(v, 8, 4), 0b1011);
    EXPECT_EQ(digitOf(v, 12, 4), 0b0110);
    EXPECT_EQ(digitOf(v, 0, 2), 0b01);
    EXPECT_EQ(digitOf(v, 14, 2), 0b01);
}

} // namespace
} // namespace isaac
