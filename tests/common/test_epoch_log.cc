/**
 * @file
 * EpochLog: the lock-free per-worker statistics substrate.
 *
 * The contract under test (docs/threading.md): publishes are atomic
 * with respect to folds (a fold sees all of a published delta or none
 * of it), totals are counter-exact at any thread count, the
 * vector-clock cursor makes repeated folds incremental without ever
 * changing their value, and reset() rewinds the log so cursors that
 * cached pre-reset snapshots observe zeros, not stale totals.
 */

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/epoch_log.h"

namespace isaac {
namespace {

TEST(EpochLog, SingleThreadTotalsAreExact)
{
    EpochLog log(3);
    for (std::uint64_t i = 1; i <= 100; ++i) {
        const std::uint64_t delta[3] = {i, 2 * i, 1};
        log.publish(delta);
    }
    std::uint64_t out[3] = {0, 0, 0};
    log.fold(out);
    EXPECT_EQ(out[0], 5050u);
    EXPECT_EQ(out[1], 10100u);
    EXPECT_EQ(out[2], 100u);
    EXPECT_EQ(log.publishCount(), 100u);
    EXPECT_EQ(log.activeSlots(), 1);
}

TEST(EpochLog, DeferredConfigureFoldsZeroBeforeFirstPublish)
{
    EpochLog log;
    log.configure(2);
    std::uint64_t out[2] = {7, 7};
    log.fold(out);
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 0u);
}

TEST(EpochLog, ManyWritersProduceExactTotals)
{
    // Each writer publishes its own arithmetic series; the fold must
    // equal the closed-form total no matter how publishes interleave.
    constexpr int kWriters = 8;
    constexpr std::uint64_t kPublishes = 2000;
    EpochLog log(2);
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&log] {
            for (std::uint64_t i = 1; i <= kPublishes; ++i) {
                const std::uint64_t delta[2] = {i, 1};
                log.publish(delta);
            }
        });
    }
    for (auto &t : writers)
        t.join();
    std::uint64_t out[2] = {0, 0};
    log.fold(out);
    EXPECT_EQ(out[0], kWriters * (kPublishes * (kPublishes + 1) / 2));
    EXPECT_EQ(out[1], kWriters * kPublishes);
    EXPECT_EQ(log.publishCount(), kWriters * kPublishes);
}

TEST(EpochLog, FoldsDuringPublishingNeverSeeTornDeltas)
{
    // Every publish adds {1, 2}: any prefix of publishes therefore
    // satisfies out[1] == 2 * out[0]. A fold that caught half of a
    // delta would break the invariant.
    EpochLog log(2);
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const std::uint64_t delta[2] = {1, 2};
                log.publish(delta);
            }
        });
    }
    for (int reads = 0; reads < 5000; ++reads) {
        std::uint64_t out[2] = {0, 0};
        log.fold(out);
        ASSERT_EQ(out[1], 2 * out[0]);
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto &t : writers)
        t.join();
}

TEST(EpochLog, CursorFoldMatchesPlainFoldAndIsIncremental)
{
    EpochLog log(2);
    EpochLog::Cursor cur;
    std::uint64_t viaCursor[2] = {0, 0};
    std::uint64_t plain[2] = {0, 0};

    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 10; ++i) {
            const std::uint64_t delta[2] = {3, 5};
            log.publish(delta);
        }
        log.fold(cur, viaCursor);
        log.fold(plain);
        EXPECT_EQ(viaCursor[0], plain[0]);
        EXPECT_EQ(viaCursor[1], plain[1]);
    }
    // An idle re-fold through the cursor must not change the answer.
    std::uint64_t again[2] = {0, 0};
    log.fold(cur, again);
    EXPECT_EQ(again[0], viaCursor[0]);
    EXPECT_EQ(again[1], viaCursor[1]);
}

TEST(EpochLog, ResetRewindsTotalsAndInvalidatesCursors)
{
    EpochLog log(1);
    EpochLog::Cursor cur;
    const std::uint64_t delta[1] = {7};
    log.publish(delta);
    std::uint64_t out[1] = {0};
    log.fold(cur, out);
    ASSERT_EQ(out[0], 7u);

    log.reset();
    // The cursor cached {7}; reset must advance the slot epoch so the
    // next cursor fold re-reads the zeroed slot instead of serving
    // the stale cache.
    log.fold(cur, out);
    EXPECT_EQ(out[0], 0u);

    // And the log keeps working after a reset.
    log.publish(delta);
    log.fold(cur, out);
    EXPECT_EQ(out[0], 7u);
}

TEST(EpochLog, ConcurrentCursorReaderStaysMonotonic)
{
    // A reader folding through its own cursor while writers publish
    // must observe monotonically non-decreasing totals (published
    // epochs never un-happen) and the torn-delta invariant.
    EpochLog log(2);
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const std::uint64_t delta[2] = {1, 2};
                log.publish(delta);
            }
        });
    }
    EpochLog::Cursor cur;
    std::uint64_t prev = 0;
    for (int reads = 0; reads < 3000; ++reads) {
        std::uint64_t out[2] = {0, 0};
        log.fold(cur, out);
        ASSERT_EQ(out[1], 2 * out[0]);
        ASSERT_GE(out[0], prev);
        prev = out[0];
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto &t : writers)
        t.join();
}

TEST(EpochLog, ThreadIdsAreRecycledAcrossThreadLifetimes)
{
    // Sequential short-lived threads must reuse a compact slot range
    // (the free-list), not consume one slot per thread ever created.
    EpochLog log(1);
    for (int gen = 0; gen < 64; ++gen) {
        std::thread([&log] {
            const std::uint64_t delta[1] = {1};
            log.publish(delta);
        }).join();
    }
    std::uint64_t out[1] = {0};
    log.fold(out);
    EXPECT_EQ(out[0], 64u);
    // All 64 threads ran strictly sequentially, so at most a handful
    // of distinct slots (the free list may briefly lag a detaching
    // thread) — not one per thread.
    EXPECT_LE(log.activeSlots(), 8);
}

TEST(EpochLog, MismatchedSpanWidthIsFatalNotOutOfBounds)
{
    // Regression: a fold into an unsized buffer (an empty vector
    // spans a null data pointer) used to walk off the end; the width
    // contract must fail loudly instead.
    EpochLog log(3);
    const std::uint64_t delta[3] = {1, 2, 3};
    log.publish(delta);

    std::vector<std::uint64_t> empty;
    EXPECT_THROW(log.fold(empty), FatalError);
    std::uint64_t narrow[2] = {0, 0};
    EXPECT_THROW(log.fold(narrow), FatalError);
    std::uint64_t wide[4] = {0, 0, 0, 0};
    EXPECT_THROW(log.fold(wide), FatalError);
    EXPECT_THROW(log.publish(narrow), FatalError);
    EpochLog::Cursor cur;
    EXPECT_THROW(log.fold(cur, narrow), FatalError);

    std::uint64_t out[3] = {0, 0, 0};
    log.fold(out);
    EXPECT_EQ(out[2], 3u);
}

} // namespace
} // namespace isaac
