/**
 * @file
 * Static false-sharing audit (ci.sh "layout" step).
 *
 * Every assertion here is a compile-time check on the padding of the
 * hot shared structures: if a future field pushes one of them off its
 * cache-line boundary (or shrinks the alignment), this file stops
 * compiling — the regression can't land silently and resurface as an
 * unexplained scaling loss. The runtime test body is a formality so
 * the audit shows up in ctest output.
 *
 * What is padded and why (docs/threading.md):
 *  - EpochLog::Slot: one publishing worker per slot; a slot sharing a
 *    line with its neighbour would re-create the very contention the
 *    log exists to remove.
 *  - StealDeque: thieves hammer _top with CAS while the owner runs on
 *    _bottom; each lives on its own line.
 *  - BitSerialEngine's ArrayTile / Partial / TileMemo: adjacent
 *    vector elements handed to different workers.
 *  - InferenceSession's Deck: per-worker deque + claim flag.
 *  - Adc sample/clip counters: every op retire RMWs them.
 */

#include <gtest/gtest.h>

#include "common/epoch_log.h"
#include "common/steal_deque.h"
#include "common/types.h"
#include "serve/session.h"
#include "xbar/engine.h"

namespace isaac {
namespace {

// The audit's base unit: a sane power-of-two line size.
static_assert(kCacheLineBytes == 64);
static_assert((kCacheLineBytes & (kCacheLineBytes - 1)) == 0);

// Epoch-log slots: exactly one line each, so slot i and slot i+1 of
// the header array can never share one.
static_assert(alignof(EpochLog::Slot) == kCacheLineBytes);
static_assert(sizeof(EpochLog::Slot) == kCacheLineBytes);

// Work-stealing deque: the alignas on _top/_bottom/_buf raises the
// whole object's alignment; the size floor proves the three words
// were actually spread onto distinct lines (3 lines + trailing
// members), not collapsed by a refactor.
static_assert(alignof(StealDeque<void *>) == kCacheLineBytes);
static_assert(sizeof(StealDeque<void *>) >= 3 * kCacheLineBytes);

// Engine hot structures (private; geometry exported via probes).
static_assert(xbar::BitSerialEngine::kArrayTileAlign ==
              kCacheLineBytes);
static_assert(xbar::BitSerialEngine::kPartialAlign == kCacheLineBytes);
static_assert(xbar::BitSerialEngine::kTileMemoAlign ==
              kCacheLineBytes);

// Session scheduler: one deck per pump.
static_assert(serve::InferenceSession::kDeckAlign == kCacheLineBytes);

TEST(Layout, FalseSharingAuditHolds)
{
    // The static_asserts above are the test; compiling == passing.
    SUCCEED();
}

} // namespace
} // namespace isaac
