/**
 * @file
 * Monte Carlo campaign lab tests: grid enumeration and dedup,
 * scenario-ID round-tripping, the zero-noise exactness gate, report
 * determinism across thread counts and completion orders, scenario
 * replay parity with the campaign record, the resetForScenario
 * rewind contract, and the campaign summary embedding in
 * runReportJson. The smoke-grid cases double as the CI/ASan gate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/runner.h"
#include "common/logging.h"
#include "core/accelerator.h"
#include "core/report.h"
#include "nn/zoo.h"
#include "serve/session.h"

namespace isaac::campaign {
namespace {

constexpr std::uint64_t kSeed = 0xC0FFEEull;

TEST(CampaignGrid, SmokeGridEnumeratesNineDistinctScenarios)
{
    const auto scenarios = Grid::smoke().enumerate(kSeed);
    ASSERT_EQ(scenarios.size(), 9u);
    std::vector<std::string> ids;
    for (const auto &s : scenarios) {
        ids.push_back(s.id());
        EXPECT_EQ(s.masterSeed, kSeed);
        EXPECT_EQ(s.network, "tinycnn");
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end())
        << "scenario IDs must be distinct";
    // Exactly one clean self-check point.
    int clean = 0;
    for (const auto &s : scenarios)
        clean += s.clean();
    EXPECT_EQ(clean, 1);
}

TEST(CampaignGrid, DefaultSuiteCoversAtLeast500Scenarios)
{
    std::size_t total = 0;
    for (const auto &grid : Grid::defaultSuite())
        total += grid.enumerate(kSeed).size();
    EXPECT_GE(total, 500u);
}

TEST(CampaignGrid, ZeroStuckRateCollapsesTheModeAxis)
{
    Grid g;
    g.stuckRate = {0.0};
    g.stuckModes = {xbar::StuckMode::Off, xbar::StuckMode::On,
                    xbar::StuckMode::RandomLevel};
    EXPECT_EQ(g.enumerate(kSeed).size(), 1u)
        << "rate 0 makes the stuck mode unobservable";
    g.stuckRate = {0.0, 0.01};
    EXPECT_EQ(g.enumerate(kSeed).size(), 4u);
}

TEST(CampaignScenario, IdRoundTripsEveryField)
{
    Scenario s;
    s.network = "tinycnn";
    s.writeSigma = 0.3;
    s.readSigma = 0.05;
    s.driftPerOp = 5e-4;
    s.driftAge = 4096;
    s.stuckRate = 0.005;
    s.stuckMode = xbar::StuckMode::Off;
    s.spareCols = 4;
    s.adcBits = 7;
    s.trial = 2;
    s.masterSeed = 0xDEADBEEFCAFEull;
    const auto parsed = Scenario::parse(s.id());
    EXPECT_EQ(parsed, s);
    EXPECT_EQ(parsed.id(), s.id());
    // The seed mixes trial but not the knobs: paired configurations
    // at one trial share their fault draw.
    Scenario other = s;
    other.spareCols = 0;
    other.adcBits = 0;
    EXPECT_EQ(other.noiseSeed(), s.noiseSeed());
    other.trial = 3;
    EXPECT_NE(other.noiseSeed(), s.noiseSeed());
}

TEST(CampaignScenario, MalformedIdsAreFatal)
{
    const Scenario s;
    EXPECT_THROW(Scenario::parse("net=tinycnn;w=0.1"), FatalError)
        << "missing keys";
    EXPECT_THROW(Scenario::parse(s.id() + ";w=0.5"), FatalError)
        << "duplicate key";
    EXPECT_THROW(Scenario::parse(s.id() + ";zz=1"), FatalError)
        << "unknown key";
    EXPECT_THROW(Scenario::parse("garbage"), FatalError);
    std::string badMode = s.id();
    badMode.replace(badMode.find(";m=on"), 5, ";m=up");
    EXPECT_THROW(Scenario::parse(badMode), FatalError);
}

TEST(CampaignScenario, TryParseRejectsHostileIdsWithAMessage)
{
    // Replay tooling feeds scenario IDs from the command line and
    // from JSON reports; a hostile or truncated ID must come back as
    // a descriptive error — never an assert, a crash, or a wrapped
    // integer. Table-driven over the failure classes.
    struct Case
    {
        const char *label;
        std::string id;
    };
    const Scenario base;
    const auto with = [&](const std::string &key,
                          const std::string &val) {
        std::string id = base.id();
        // Anchor on ";key=" — a bare find("t=") would hit "net=".
        const auto pos =
            key == "net" ? 0 : id.find(";" + key + "=") + 1;
        const auto end = std::min(id.find(';', pos), id.size());
        id.replace(pos, end - pos, key + "=" + val);
        return id;
    };
    const std::vector<Case> cases = {
        {"empty id", ""},
        {"no separators", "garbage"},
        {"missing '='", "net=tinycnn;w"},
        {"empty key", "=tinycnn"},
        {"empty network", with("net", "")},
        {"missing required key", "net=tinycnn;w=0.1"},
        {"duplicate key", base.id() + ";w=0.5"},
        {"unknown key", base.id() + ";zz=1"},
        {"trailing separator", base.id() + ";"},
        {"bad double", with("w", "zero")},
        {"double with garbage suffix", with("r", "0.1x")},
        {"non-finite double", with("k", "inf")},
        {"nan double", with("k", "nan")},
        {"negative rate", with("w", "-0.1")},
        {"bad stuck mode", with("m", "up")},
        {"negative spare count", with("sp", "-1")},
        {"spare count overflowing int", with("sp", "4294967296")},
        {"spare count over the cap", with("sp", "4097")},
        {"adc bits over the cap", with("adc", "25")},
        {"trial overflowing int", with("t", "2147483648")},
        {"bad drift age", with("a", "soon")},
        {"bad hex seed", with("s", "0xzz")},
    };
    for (const auto &c : cases) {
        std::string error;
        const auto parsed = Scenario::tryParse(c.id, &error);
        EXPECT_FALSE(parsed.has_value()) << c.label;
        EXPECT_FALSE(error.empty()) << c.label;
        EXPECT_NE(error.find("scenario id"), std::string::npos)
            << c.label << ": " << error;
        // parse() is tryParse() + fatal(), with the same message.
        EXPECT_THROW(Scenario::parse(c.id), FatalError) << c.label;
    }

    // And the happy path still round-trips through tryParse.
    std::string error;
    const auto ok = Scenario::tryParse(base.id(), &error);
    ASSERT_TRUE(ok.has_value()) << error;
    EXPECT_EQ(*ok, base);
    EXPECT_TRUE(error.empty());
}

TEST(CampaignScenario, PolicyFieldRoundTripsAndDefaultsToFixed)
{
    Scenario s;
    s.policy = xbar::AdcPolicyKind::Adaptive;
    s.adcBits = 7; // Doubles as the adaptive cap.
    s.masterSeed = kSeed;
    const std::string id = s.id();
    EXPECT_NE(id.find(";pol=adaptive;"), std::string::npos);
    EXPECT_EQ(Scenario::parse(id), s);

    // Reports written before the policy axis existed carry no pol=
    // key; they must keep replaying as fixed-policy scenarios.
    Scenario legacy;
    legacy.masterSeed = kSeed;
    std::string old = legacy.id();
    const auto at = old.find(";pol=fixed");
    ASSERT_NE(at, std::string::npos);
    old.erase(at, std::string(";pol=fixed").size());
    const auto parsed = Scenario::parse(old);
    EXPECT_EQ(parsed.policy, xbar::AdcPolicyKind::Fixed);
    EXPECT_EQ(parsed, legacy);
    EXPECT_EQ(parsed.id(), legacy.id());

    // An unknown policy name is hostile input, not a default.
    std::string bad = legacy.id();
    bad.replace(bad.find(";pol=fixed"),
                std::string(";pol=fixed").size(), ";pol=zig");
    EXPECT_THROW(Scenario::parse(bad), FatalError);

    // The scenario config carries the policy into the engine.
    EXPECT_TRUE(s.config(1).engine.adcPolicy.isAdaptive());
    EXPECT_EQ(s.config(1).engine.adcPolicy.bits, 7);
    EXPECT_FALSE(legacy.config(1).engine.adcPolicy.isAdaptive());
}

TEST(CampaignGrid, PolicyAxisMultipliesEnumeration)
{
    Grid g = Grid::smoke();
    const auto base = g.enumerate(kSeed);
    g.policies = {xbar::AdcPolicyKind::Fixed,
                  xbar::AdcPolicyKind::Adaptive};
    const auto both = g.enumerate(kSeed);
    EXPECT_EQ(both.size(), 2 * base.size());
    int adaptive = 0, clean = 0;
    for (const auto &s : both) {
        adaptive += s.policy == xbar::AdcPolicyKind::Adaptive;
        clean += s.clean();
    }
    EXPECT_EQ(adaptive, static_cast<int>(base.size()));
    // The zero-noise lossless-adaptive point self-checks too: one
    // clean scenario per policy.
    EXPECT_EQ(clean, 2);
}

TEST(CampaignGrid, SampleIsADeterministicOrderedSubset)
{
    const Grid g = Grid::smoke();
    const auto full = g.enumerate(kSeed);
    ASSERT_EQ(full.size(), 9u);

    const auto s1 = g.sample(4, kSeed);
    const auto s2 = g.sample(4, kSeed);
    ASSERT_EQ(s1.size(), 4u);
    EXPECT_EQ(s1, s2) << "a pure function of (grid, n, seed)";

    // The survivors keep their enumeration order (strictly
    // increasing positions in the full list).
    std::size_t last = 0;
    for (const auto &s : s1) {
        const auto it = std::find(full.begin() + last, full.end(), s);
        ASSERT_NE(it, full.end());
        last = static_cast<std::size_t>(it - full.begin()) + 1;
    }

    // n >= size returns the full enumeration; a different seed
    // draws a different subset of this 9-choose-4 space.
    EXPECT_EQ(g.sample(100, kSeed), full);
    EXPECT_NE(g.sample(4, kSeed ^ 0xABCDEFull), s1);

    // The free function thins any scenario list the same way.
    EXPECT_EQ(sampleScenarios(full, 9, kSeed), full);
    EXPECT_EQ(sampleScenarios(full, 4, kSeed).size(), 4u);
}

TEST(CampaignRunner, BudgetedReportIsByteIdenticalAtAnyThreadCount)
{
    std::string wantJson;
    std::uint64_t wantHash = 0;
    struct Setting
    {
        int threads;
        bool scramble;
    };
    const Setting settings[] = {{1, false}, {4, false}, {8, true}};
    for (const auto &setting : settings) {
        SCOPED_TRACE("threads=" + std::to_string(setting.threads) +
                     " scramble=" +
                     std::to_string(setting.scramble));
        RunnerOptions opts;
        opts.batch = 2;
        opts.threads = setting.threads;
        opts.scramble = setting.scramble;
        opts.scenarioBudget = 5;
        const Runner runner("tinycnn", kSeed, opts);
        const auto report = runner.run(Grid::smoke());
        EXPECT_EQ(report.gridPoints, 5);
        EXPECT_EQ(report.scenarios.size(), 5u);
        if (wantJson.empty()) {
            wantJson = report.toJson();
            wantHash = report.contentHash();
        } else {
            EXPECT_EQ(report.toJson(), wantJson);
            EXPECT_EQ(report.contentHash(), wantHash);
        }
    }
}

TEST(CampaignRunner, LosslessAdaptiveScenarioIsCleanAndBitExact)
{
    RunnerOptions opts;
    opts.batch = 2;
    opts.threads = 1;
    const Runner runner("tinycnn", kSeed, opts);

    // The lossless adaptive point is a clean self-check: zero
    // divergence from the fixed-point reference, like the fixed
    // zero-noise scenario it shadows.
    Scenario ad;
    ad.policy = xbar::AdcPolicyKind::Adaptive;
    ad.masterSeed = kSeed;
    ASSERT_TRUE(ad.clean());
    const auto res = runner.runScenario(ad);
    EXPECT_EQ(res.completed, 2);
    EXPECT_DOUBLE_EQ(res.agreement, 1.0);
    EXPECT_EQ(res.maxRel, 0.0);

    // An under-capped adaptive converter produces an accuracy
    // delta; replaying its ID must reproduce the delta exactly.
    Scenario lossy = ad;
    lossy.adcBits = 6;
    EXPECT_FALSE(lossy.clean());
    const auto first = runner.runScenario(lossy);
    const auto replay =
        runner.runScenario(Scenario::parse(lossy.id()));
    EXPECT_GT(first.maxRel, 0.0);
    EXPECT_EQ(first.maxRel, replay.maxRel);
    EXPECT_EQ(first.finalMeanRel, replay.finalMeanRel);
    EXPECT_EQ(first.top1Matches, replay.top1Matches);
}

TEST(CampaignRunner, ZeroNoiseScenarioIsBitExact)
{
    RunnerOptions opts;
    opts.batch = 3;
    opts.threads = 1;
    const Runner runner("tinycnn", kSeed, opts);
    Scenario clean;
    clean.masterSeed = kSeed;
    ASSERT_TRUE(clean.clean());
    const auto res = runner.runScenario(clean);
    EXPECT_EQ(res.completed, 3);
    EXPECT_FALSE(res.timedOut);
    EXPECT_DOUBLE_EQ(res.agreement, 1.0);
    EXPECT_EQ(res.top1Matches, 3);
    EXPECT_EQ(res.maxRel, 0.0);
    EXPECT_EQ(res.finalMeanRel, 0.0);
    ASSERT_EQ(res.layers.size(), runner.network().size());
    for (const auto &l : res.layers) {
        EXPECT_EQ(l.maxAbs, 0.0) << l.layer;
        EXPECT_EQ(l.maxRel, 0.0) << l.layer;
    }
}

TEST(CampaignRunner, ReportIsByteIdenticalAtAnyThreadCountAndOrder)
{
    // The CI smoke campaign: one report per (threads, scramble)
    // setting, all byte-identical. This is the determinism contract
    // the scenario-major sweep promises.
    std::string wantJson;
    std::uint64_t wantHash = 0;
    const Grid grid = Grid::smoke();
    struct Setting
    {
        int threads;
        bool scramble;
    };
    const Setting settings[] = {
        {1, false}, {2, false}, {4, false}, {8, false}, {4, true}};
    for (const auto &setting : settings) {
        SCOPED_TRACE("threads=" + std::to_string(setting.threads) +
                     " scramble=" +
                     std::to_string(setting.scramble));
        RunnerOptions opts;
        opts.batch = 2;
        opts.threads = setting.threads;
        opts.scramble = setting.scramble;
        const Runner runner("tinycnn", kSeed, opts);
        const auto report = runner.run(grid);
        EXPECT_EQ(report.gridPoints, 9);
        EXPECT_EQ(report.scenarios.size(), 9u);
        // Zero-noise gate: the clean point must agree exactly.
        EXPECT_GE(report.cleanScenarioCount(), 1);
        EXPECT_DOUBLE_EQ(report.cleanAgreementMin(), 1.0);
        EXPECT_EQ(report.cleanMaxRel(), 0.0);
        if (wantJson.empty()) {
            wantJson = report.toJson();
            wantHash = report.contentHash();
            EXPECT_FALSE(report.paretoFrontier.empty());
        } else {
            EXPECT_EQ(report.toJson(), wantJson);
            EXPECT_EQ(report.contentHash(), wantHash);
        }
    }
}

TEST(CampaignRunner, ReplayFromIdMatchesTheCampaignRecord)
{
    RunnerOptions opts;
    opts.batch = 2;
    opts.threads = 2;
    const Runner runner("tinycnn", kSeed, opts);
    const auto report = runner.run(Grid::smoke());

    // Re-run the noisiest record in isolation from its ID alone.
    const ScenarioResult *want = nullptr;
    for (const auto &r : report.scenarios) {
        if (r.scenario.writeSigma > 0.0 && r.scenario.stuckRate > 0.0)
            want = &r;
    }
    ASSERT_NE(want, nullptr);
    const auto parsed = Scenario::parse(want->scenario.id());
    auto got = runner.runScenario(parsed);
    got.pareto = want->pareto; // finalize() assigns this, not replay.
    EXPECT_EQ(got.toJson(), want->toJson());
}

TEST(CampaignRunner, MismatchedReplayIsFatal)
{
    RunnerOptions opts;
    opts.batch = 2;
    const Runner runner("tinycnn", kSeed, opts);
    Scenario wrongSeed;
    wrongSeed.masterSeed = kSeed + 1;
    EXPECT_THROW((void)runner.runScenario(wrongSeed), FatalError);
    Scenario wrongNet;
    wrongNet.masterSeed = kSeed;
    wrongNet.network = "vgg1";
    EXPECT_THROW((void)runner.runScenario(wrongNet), FatalError);
}

TEST(Campaign, ResetForScenarioMatchesAFreshCompileBitForBit)
{
    // One compiled model, reset between scenarios, must reproduce a
    // fresh compile exactly: results, resilience JSON, and the drift
    // clock all rewind through the single entry point.
    const auto net = nn::tinyCnn();
    const auto weights =
        synthesizeStructuredWeights(net, kSeed ^ 0x5EEDull);
    Scenario s;
    s.masterSeed = kSeed;
    s.writeSigma = 0.2;
    s.stuckRate = 0.005;
    s.spareCols = 2;
    s.driftPerOp = 5e-4;
    s.driftAge = 512;
    const core::Accelerator acc(s.config(1));
    const FixedFormat fmt{12};
    const auto input = nn::synthesizeInput(16, 12, 12, 99, fmt);

    const auto runOnce = [&](core::CompiledModel &model) {
        model.resetForScenario();
        model.ageArrays(s.driftAge);
        serve::SessionOptions so;
        so.workers = 1;
        serve::InferenceSession session(model, so);
        auto out = session.run({input, input});
        return std::make_pair(std::move(out),
                              model.resilienceSummary().toJson());
    };

    auto model = acc.compile(net, weights, {});
    const auto first = runOnce(model);
    const auto second = runOnce(model);
    auto freshModel = acc.compile(net, weights, {});
    const auto fresh = runOnce(freshModel);
    ASSERT_EQ(first.first.size(), 2u);
    for (std::size_t i = 0; i < first.first.size(); ++i) {
        EXPECT_EQ(first.first[i].raw(), second.first[i].raw());
        EXPECT_EQ(first.first[i].raw(), fresh.first[i].raw());
    }
    EXPECT_EQ(first.second, second.second);
    EXPECT_EQ(first.second, fresh.second);
}

TEST(Campaign, ReplayAfterResetRewindsEpochStatLogsExactly)
{
    // Regression for the epoch-log stats runtime: resetForScenario()
    // (via resetStats()) must rewind the per-worker epoch logs and
    // the reader's publish cursor, not just the legacy counters. If
    // either survives the reset, the second run's EngineStats /
    // per-tile AdcTally / TransientStats double up and this test sees
    // it immediately. Serve through a multi-worker session so the
    // counters being rewound were actually produced by concurrent
    // publishes into distinct epoch-log slots.
    const auto net = nn::tinyCnn();
    const auto weights =
        synthesizeStructuredWeights(net, kSeed ^ 0xAB1Eull);
    Scenario s;
    s.masterSeed = kSeed;
    s.writeSigma = 0.15;
    s.stuckRate = 0.005;
    s.spareCols = 2;
    const core::Accelerator acc(s.config(1));
    const FixedFormat fmt{12};
    std::vector<nn::Tensor> inputs;
    for (int i = 0; i < 3; ++i)
        inputs.push_back(nn::synthesizeInput(16, 12, 12, 7 + i, fmt));

    const auto tallies = [](const core::CompiledModel &model) {
        std::vector<xbar::AdcTally> out;
        for (std::size_t i = 0; i < model.network().size(); ++i) {
            for (std::int64_t g = 0; g < model.engineGroupCount(i);
                 ++g) {
                const auto *e = model.engine(i, g);
                for (int rs = 0; rs < e->rowSegments(); ++rs)
                    for (int cs = 0; cs < e->colSegments(); ++cs)
                        out.push_back(e->tileAdcTally(rs, cs));
            }
        }
        return out;
    };
    auto model = acc.compile(net, weights, {});
    const auto runOnce = [&] {
        model.resetForScenario();
        serve::SessionOptions so;
        so.workers = 4;
        serve::InferenceSession session(model, so);
        auto out = session.run(inputs);
        return std::make_tuple(std::move(out), model.engineStats(),
                               model.transientStats(),
                               tallies(model));
    };

    const auto first = runOnce();
    const auto second = runOnce();
    ASSERT_EQ(std::get<0>(first).size(), std::get<0>(second).size());
    for (std::size_t i = 0; i < std::get<0>(first).size(); ++i)
        EXPECT_EQ(std::get<0>(first)[i].raw(),
                  std::get<0>(second)[i].raw());
    EXPECT_TRUE(std::get<1>(first) == std::get<1>(second))
        << "EngineStats must rewind to zero between replays";
    EXPECT_TRUE(std::get<2>(first) == std::get<2>(second))
        << "TransientStats must rewind to zero between replays";
    const auto &ta = std::get<3>(first);
    const auto &tb = std::get<3>(second);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t t = 0; t < ta.size(); ++t)
        EXPECT_TRUE(ta[t] == tb[t]) << "tile " << t;
}

TEST(CampaignRunner, BackToBackCampaignsOnOneRunnerAreByteIdentical)
{
    // The campaign-replay contract end to end: the same Runner swept
    // over the same grid twice must emit byte-identical reports. Any
    // state leaking across scenario evaluations — stale epoch-log
    // rows, an unrewound publish cursor, a drift clock that kept
    // ticking — shows up as a JSON diff here.
    RunnerOptions opts;
    opts.batch = 2;
    opts.threads = 2;
    const Runner runner("tinycnn", kSeed, opts);
    const auto first = runner.run(Grid::smoke());
    const auto second = runner.run(Grid::smoke());
    EXPECT_EQ(second.toJson(), first.toJson());
    EXPECT_EQ(second.contentHash(), first.contentHash());
}

TEST(Campaign, RunReportJsonEmbedsTheCampaignSummary)
{
    RunnerOptions opts;
    opts.batch = 2;
    const Runner runner("tinycnn", kSeed, opts);
    Grid tiny;
    tiny.stuckRate = {0.0, 0.01};
    const auto report = runner.run(tiny);

    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 1);
    const core::Accelerator acc;
    const auto model = acc.compile(net, weights, {});
    const auto json = core::runReportJson(model, report);
    EXPECT_NE(json.find("\"campaign\": {"), std::string::npos);
    EXPECT_NE(json.find("\"content_hash\": "), std::string::npos);
    EXPECT_NE(json.find(report.summaryJson()), std::string::npos);
}

} // namespace
} // namespace isaac::campaign
