/**
 * @file
 * Quickstart: build a small CNN, compile it onto an ISAAC chip, run
 * a bit-exact inference through the analog crossbar model, and
 * print the plan and performance report.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "core/accelerator.h"
#include "core/report.h"
#include "nn/zoo.h"

using namespace isaac;

int
main()
{
    // 1. A network: the Fig. 4 running example (4x4x16 conv -> 32
    //    maps, max-pool, classifier).
    const auto net = nn::tinyCnn();
    std::printf("Network: %s\n\n", core::describeNetwork(net).c_str());

    // 2. Synthetic 16-bit fixed-point weights and an input image.
    const auto weights = nn::WeightStore::synthesize(net, 2024);
    const FixedFormat fmt{12};
    const auto input = nn::synthesizeInput(16, 12, 12, 7, fmt);

    // 3. Compile onto one ISAAC-CE chip.
    core::Accelerator accelerator(arch::IsaacConfig::isaacCE());
    core::CompileOptions opts;
    opts.chips = 1;
    opts.format = fmt;
    const auto model = accelerator.compile(net, weights, opts);

    std::printf("Compiled onto %d chip(s): %lld crossbars in use "
                "(%d materialized for functional execution), "
                "pipeline interval %.1f cycles\n\n",
                opts.chips,
                static_cast<long long>(model.plan().xbarsUsed),
                model.functionalArrays(),
                model.plan().cyclesPerImage);

    // 4. Run the analog pipeline and the software reference; they
    //    are bit-identical.
    const auto analog = model.infer(input);
    nn::ReferenceExecutor reference(net, weights, fmt);
    const auto expected = reference.run(input);

    int mismatches = 0;
    for (std::size_t i = 0; i < analog.size(); ++i)
        mismatches += analog.flat(i) != expected.flat(i);
    std::printf("Analog pipeline vs software reference: %d "
                "mismatches over %zu outputs (ADC clips: %llu)\n\n",
                mismatches, analog.size(),
                static_cast<unsigned long long>(model.adcClips()));

    std::printf("Class scores (Q4.12):");
    for (int k = 0; k < analog.channels(); ++k)
        std::printf(" %6.3f", fromFixed(analog.at(k, 0, 0), fmt));
    std::printf("\n\n");

    // 5. The analytic performance report.
    std::printf("%s\n",
                core::formatIsaacPerf(net, model.perf(), opts.chips)
                    .c_str());
    return mismatches == 0 ? 0 : 1;
}
