/**
 * @file
 * Map the 16-weight-layer VGG network onto a 16-chip ISAAC board:
 * prints the balanced-pipeline plan (replication, tiles, buffers,
 * utilization per layer) and compares throughput/energy against the
 * DaDianNao baseline, like Section VIII-B does.
 *
 *   ./examples/vgg_pipeline
 */

#include <cstdio>

#include "baseline/dadiannao_perf.h"
#include "common/logging.h"
#include "core/floorplan.h"
#include "core/report.h"
#include "nn/zoo.h"
#include "pipeline/perf.h"

using namespace isaac;

int
main()
{
    setVerbose(false);
    const int chips = 16;
    const auto net = nn::vgg(3); // config C: 16 weight layers
    const auto cfg = arch::IsaacConfig::isaacCE();

    std::printf("%s\n\n", core::describeNetwork(net).c_str());

    const auto plan = pipeline::planPipeline(net, cfg, chips);
    std::printf("Pipeline plan on %d ISAAC-CE chips (slowdown %lld, "
                "speedup %lld, %lld/%lld crossbars):\n\n",
                chips, static_cast<long long>(plan.slowdown),
                static_cast<long long>(plan.speedup),
                static_cast<long long>(plan.xbarsUsed),
                static_cast<long long>(plan.xbarsAvailable));
    std::printf("  %-16s %10s %10s %8s %8s %10s %6s\n", "layer",
                "want-repl", "got-repl", "xbars", "tiles",
                "buffer(KB)", "util");
    for (const auto &lp : plan.layers) {
        const auto &l = net.layer(lp.layerIdx);
        if (!lp.isDot) {
            std::printf("  %-16s %10s %10s %8s %8s %10.1f %6s\n",
                        l.name.c_str(), "-", "-", "-", "-",
                        lp.bufferBytes / 1024.0, "-");
            continue;
        }
        std::printf("  %-16s %10lld %10lld %8lld %8lld %10.1f "
                    "%5.0f%%\n",
                    l.name.c_str(),
                    static_cast<long long>(lp.desiredReplication),
                    static_cast<long long>(lp.replication),
                    static_cast<long long>(lp.xbars),
                    static_cast<long long>(lp.tiles),
                    lp.bufferBytes / 1024.0,
                    100.0 * lp.utilization);
    }
    std::printf("\n");

    // Physical floorplan of the first chip's vertical slice.
    const auto placement = pipeline::Placement::build(net, plan, cfg);
    std::printf("%s\n",
                core::renderFloorplan(placement, 0).c_str());

    const energy::IsaacEnergyModel model(cfg);
    const auto perf = pipeline::analyzeIsaac(net, plan, model);
    std::printf("%s\n",
                core::formatIsaacPerf(net, perf, chips).c_str());

    const energy::DaDianNaoModel ddn;
    const auto ddnPerf = baseline::analyzeDaDianNao(net, ddn, chips);
    std::printf("%s\n", core::formatDdnPerf(net, ddnPerf).c_str());

    if (ddnPerf.fits) {
        std::printf("ISAAC vs DaDianNao: %.1fx throughput, %.1fx "
                    "lower energy, %.2fx power\n",
                    perf.imagesPerSec / ddnPerf.imagesPerSec,
                    ddnPerf.energyPerImageJ / perf.energyPerImageJ,
                    perf.powerW / ddnPerf.powerW);
    }
    return 0;
}
