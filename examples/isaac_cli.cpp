/**
 * @file
 * Command-line driver: evaluate any Table II benchmark on any ISAAC
 * design point and board size, with text or JSON output.
 *
 *   isaac_cli --network vgg3 --chips 16 [--design ce|pe|se]
 *             [--baseline] [--noc] [--json]
 *   isaac_cli --file examples/networks/lenet.net --chips 1
 *   isaac_cli --list
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "baseline/dadiannao_perf.h"
#include "common/logging.h"
#include "core/accelerator.h"
#include "core/json.h"
#include "core/report.h"
#include "dse/dse.h"
#include "nn/parser.h"
#include "nn/weights_io.h"
#include "nn/zoo.h"
#include "noc/traffic.h"

using namespace isaac;

namespace {

std::optional<nn::Network>
networkByName(const std::string &name)
{
    for (auto &net : nn::allBenchmarks()) {
        std::string key = net.name();
        for (auto &c : key)
            c = static_cast<char>(std::tolower(c));
        key.erase(std::remove(key.begin(), key.end(), '-'),
                  key.end());
        if (key == name)
            return net;
    }
    if (name == "tiny")
        return nn::tinyCnn();
    return std::nullopt;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: isaac_cli --network <name> | --file <path>\n"
        "                 [--weights <raw16 file>] [--chips N]\n"
        "                 [--design ce|pe|se] [--baseline]\n"
        "                 [--noc] [--json]\n"
        "       isaac_cli --list\n"
        "       isaac_cli --sweep     (print the Fig. 5 design "
        "space)\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string network;
    std::string file;
    std::string weightsPath;
    std::string design = "ce";
    int chips = 16;
    bool withBaseline = false;
    bool withNoc = false;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--network") {
            network = value();
        } else if (arg == "--file") {
            file = value();
        } else if (arg == "--weights") {
            weightsPath = value();
        } else if (arg == "--chips") {
            chips = std::atoi(value());
        } else if (arg == "--design") {
            design = value();
        } else if (arg == "--baseline") {
            withBaseline = true;
        } else if (arg == "--noc") {
            withNoc = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--list") {
            for (const auto &net : nn::allBenchmarks())
                std::printf("%s\n",
                            core::describeNetwork(net).c_str());
            return 0;
        } else if (arg == "--sweep") {
            for (const auto &p : dse::sweep()) {
                if (!p.feasible) {
                    std::printf("%-18s infeasible: %s\n",
                                p.config.label().c_str(),
                                p.hazard.c_str());
                } else {
                    std::printf("%-18s CE %7.1f PE %7.1f SE %6.2f\n",
                                p.config.label().c_str(), p.ce, p.pe,
                                p.se);
                }
            }
            return 0;
        } else {
            return usage();
        }
    }
    if ((network.empty() == file.empty()) || chips < 1)
        return usage();

    std::optional<nn::Network> net;
    if (!file.empty()) {
        try {
            net = nn::loadNetworkFile(file);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    } else {
        net = networkByName(network);
    }
    if (!net) {
        std::fprintf(stderr, "unknown network '%s' (try --list)\n",
                     network.c_str());
        return 2;
    }

    arch::IsaacConfig cfg;
    if (design == "ce")
        cfg = arch::IsaacConfig::isaacCE();
    else if (design == "pe")
        cfg = arch::IsaacConfig::isaacPE();
    else if (design == "se")
        cfg = arch::IsaacConfig::isaacSE();
    else
        return usage();

    const auto plan = pipeline::planPipeline(*net, cfg, chips);
    const energy::IsaacEnergyModel model(cfg);
    const auto perf = pipeline::analyzeIsaac(*net, plan, model);

    if (!weightsPath.empty()) {
        // Functional path: load raw16 weights, run one inference on
        // the analog model, and cross-check the software reference.
        try {
            const auto store =
                nn::loadWeightsRaw16(*net, weightsPath);
            const FixedFormat fmt{12};
            core::Accelerator acc(cfg);
            core::CompileOptions copts;
            copts.chips = chips;
            copts.format = fmt;
            const auto compiled = acc.compile(*net, store, copts);
            const auto &l0 = net->layer(0);
            const auto input = nn::synthesizeInput(
                l0.ni, l0.nx, l0.ny, 1, fmt);
            const auto got = compiled.infer(input);
            nn::ReferenceExecutor ref(*net, store, fmt);
            const auto want = ref.run(input);
            std::printf("functional check: %s (%zu outputs, %llu "
                        "ADC clips)\n",
                        got.raw() == want.raw() ? "bit-exact"
                                                : "MISMATCH",
                        got.size(),
                        static_cast<unsigned long long>(
                            compiled.adcClips()));
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    if (json) {
        std::printf("{\"config\":%s,\n \"plan\":%s,\n \"perf\":%s",
                    core::toJson(cfg).c_str(),
                    core::toJson(*net, plan).c_str(),
                    core::toJson(perf).c_str());
    } else {
        std::printf("%s\n", core::describeNetwork(*net).c_str());
        std::printf("%s\n",
                    core::formatIsaacPerf(*net, perf, chips).c_str());
    }

    if (withBaseline) {
        const energy::DaDianNaoModel ddn;
        const auto dp = baseline::analyzeDaDianNao(*net, ddn, chips);
        if (json)
            std::printf(",\n \"dadiannao\":%s",
                        core::toJson(dp).c_str());
        else
            std::printf("%s\n", core::formatDdnPerf(*net, dp).c_str());
    }

    if (withNoc && plan.fits) {
        const auto placement =
            pipeline::Placement::build(*net, plan, cfg);
        const auto traffic =
            noc::analyzeTraffic(*net, plan, placement, cfg);
        if (json) {
            std::printf(",\n \"noc\":%s",
                        core::toJson(traffic).c_str());
        } else {
            std::printf("NoC: hot link %.2f GB/s (cap %.1f), tile "
                        "egress %.2f GB/s, HT %.2f GB/s, %s\n",
                        traffic.maxLinkGBps,
                        traffic.linkCapacityGBps,
                        traffic.maxTileEgressGBps, traffic.maxHtGBps,
                        traffic.schedulable
                            ? "statically schedulable"
                            : "NOT schedulable under XY routing");
        }
    }
    if (json)
        std::printf("}\n");
    return 0;
}
