/**
 * @file
 * Design-space exploration walkthrough: sweep the Fig. 5 space,
 * print the efficiency frontier, and show how the storage-oriented
 * ISAAC-SE point fits the 664M-weight DNN benchmark on a single
 * chip while ISAAC-CE needs a 32-chip board.
 *
 *   ./examples/design_explorer
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "dse/dse.h"
#include "nn/zoo.h"
#include "pipeline/replication.h"

using namespace isaac;

int
main()
{
    setVerbose(false);

    // Sweep the Fig. 5 space and show the top points per metric.
    const auto points = dse::sweep();
    std::vector<const dse::DsePoint *> feasible;
    for (const auto &p : points)
        if (p.feasible)
            feasible.push_back(&p);

    auto top = [&](dse::Metric m, auto key, const char *name) {
        auto sorted = feasible;
        std::sort(sorted.begin(), sorted.end(),
                  [&](auto *a, auto *b) { return key(*a) > key(*b); });
        std::printf("Top 5 by %s:\n", name);
        for (std::size_t i = 0; i < 5 && i < sorted.size(); ++i) {
            const auto *p = sorted[i];
            std::printf("  %-18s CE %7.1f  PE %7.1f  SE %6.2f\n",
                        p->config.label().c_str(), p->ce, p->pe,
                        p->se);
        }
        std::printf("\n");
        (void)m;
    };
    top(dse::Metric::CE, [](const dse::DsePoint &p) { return p.ce; },
        "computational efficiency (GOPS/mm^2)");
    top(dse::Metric::PE, [](const dse::DsePoint &p) { return p.pe; },
        "power efficiency (GOPS/W)");

    std::printf("%zu of %zu swept points are feasible; the rest "
                "violate the 8-bit ADC bound or the eDRAM/bus "
                "budget.\n\n",
                feasible.size(), points.size());

    // The SE story: the DaDianNao large-DNN benchmark.
    const auto dnn = nn::largeDnn();
    const auto ce = arch::IsaacConfig::isaacCE();
    const auto se = arch::IsaacConfig::isaacSE();

    std::printf("Large DNN benchmark (%lldM weights):\n",
                static_cast<long long>(dnn.totalWeights() / 1000000));
    for (int chips : {1, 16, 32}) {
        const auto plan = pipeline::planPipeline(dnn, ce, chips);
        std::printf("  ISAAC-CE x%2d chips: %s\n", chips,
                    plan.fits ? "fits" : "does not fit");
    }
    const auto sePlan = pipeline::planPipeline(dnn, se, 1);
    std::printf("  ISAAC-SE x 1 chip : %s (paper: one ISAAC-SE "
                "chip vs 32 ISAAC-CE vs 64 DaDianNao)\n",
                sePlan.fits ? "fits" : "does not fit");
    return 0;
}
