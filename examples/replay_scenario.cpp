/**
 * @file
 * Replay one campaign scenario from its stable identifier.
 *
 * Scenario IDs are self-describing (network, every fault knob, the
 * trial, and the master seed), so a single grid point from any
 * campaign report can be re-run in isolation, bit-for-bit, and
 * inspected layer by layer:
 *
 *   replay_scenario "net=tinycnn;w=0.3;r=0;d=0;a=0;k=0.005;m=on;\
 *                    sp=2;adc=0;t=1;s=ca3ba16" [--batch N] [--json]
 *
 * --batch must match the original campaign's batch for the record to
 * reproduce exactly (the default, 4, matches RunnerOptions).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/campaign.h"
#include "campaign/runner.h"

using namespace isaac;

int
main(int argc, char **argv)
{
    std::string id;
    int batch = 4;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
            batch = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (id.empty()) {
            id = argv[i];
        } else {
            std::fprintf(stderr,
                         "usage: replay_scenario <scenario-id> "
                         "[--batch N] [--json]\n");
            return 2;
        }
    }
    if (id.empty()) {
        std::fprintf(stderr,
                     "usage: replay_scenario <scenario-id> "
                     "[--batch N] [--json]\n");
        return 2;
    }

    const auto scenario = campaign::Scenario::parse(id);
    campaign::RunnerOptions opts;
    opts.batch = batch;
    opts.threads = 1;
    const campaign::Runner runner(scenario.network,
                                  scenario.masterSeed, opts);
    const auto res = runner.runScenario(scenario);

    if (json) {
        std::printf("%s\n", res.toJson().c_str());
        return 0;
    }

    std::printf("scenario  %s\n", scenario.id().c_str());
    std::printf("batch     %d (completed %d%s)\n", res.batch,
                res.completed, res.timedOut ? ", TIMED OUT" : "");
    std::printf("agreement %.4f (%d/%d top-1 matches)\n",
                res.agreement, res.top1Matches, res.completed);
    std::printf("max rel   %g   final-layer mean rel %g\n\n",
                res.maxRel, res.finalMeanRel);

    std::printf("%-24s %12s %12s %12s\n", "layer", "max |abs|",
                "max rel", "mean rel");
    for (const auto &l : res.layers) {
        std::printf("%-24s %12g %12g %12g\n", l.layer.c_str(),
                    l.maxAbs, l.maxRel, l.meanRel);
    }
    std::printf("\nresilience: %s\n", res.resilience.toJson().c_str());
    return 0;
}
