/**
 * @file
 * In-situ training demo (the paper's future-work direction): fit a
 * softmax classifier whose forward pass runs on the analog crossbar
 * model, with digital gradients and periodic crossbar reprograms.
 * Reports per-epoch loss/accuracy and the programming cost in cell
 * writes, time, and energy.
 *
 *   ./examples/train_insitu
 */

#include <cstdio>

#include "train/trainer.h"
#include "xbar/write_model.h"

using namespace isaac;

int
main()
{
    const FixedFormat fmt{12};
    const auto data =
        train::makeClusterDataset(240, 32, 4, 2026, fmt, 0.12);
    std::printf("Dataset: %d samples, %d features, %d classes\n\n",
                data.samples(), data.features, data.classes);

    train::TrainConfig cfg;
    cfg.epochs = 15;
    cfg.learningRate = 0.3;
    cfg.reprogramInterval = 24;
    cfg.format = fmt;

    xbar::EngineConfig engineCfg; // the ISAAC-CE crossbar
    train::InSituTrainer trainer(engineCfg, cfg, data.features,
                                 data.classes);

    std::printf("Initial accuracy (random weights): %.1f%%\n\n",
                100.0 * trainer.evaluate(data));
    const auto result = trainer.fit(data);

    std::printf("%6s %12s %10s\n", "epoch", "loss", "accuracy");
    for (std::size_t e = 0; e < result.epochs.size(); ++e) {
        std::printf("%6zu %12.4f %9.1f%%\n", e + 1,
                    result.epochs[e].loss,
                    100.0 * result.epochs[e].accuracy);
    }

    const xbar::WriteModel wm;
    const double writeSeconds = result.cellWrites /
        (128.0 / wm.pulsesPerCell) * wm.pulseNs * 1e-9;
    std::printf("\nFinal accuracy: %.1f%%\n",
                100.0 * result.finalAccuracy);
    std::printf("Crossbar cost: %lld cell writes over %lld "
                "reprogram passes (~%.2f ms of write time, %.3f uJ "
                "of write energy)\n",
                static_cast<long long>(result.cellWrites),
                static_cast<long long>(result.reprograms),
                writeSeconds * 1e3,
                wm.cellsEnergyJ(result.cellWrites) * 1e6);
    std::printf("\nTraining works through the quantized analog "
                "path, but every weight update costs memristor "
                "writes -- the endurance/time overhead behind the "
                "paper's decision to target inference only "
                "(Sec. III).\n");
    return result.finalAccuracy > 0.9 ? 0 : 1;
}
