/**
 * @file
 * Analog-noise resilience study (Sec. VIII-A's noise discussion):
 * inject Gaussian bitline noise of increasing magnitude into the
 * crossbar reads and measure how far the network outputs drift from
 * the exact fixed-point reference.
 *
 *   ./examples/noise_resilience
 */

#include <cmath>
#include <cstdio>

#include "core/accelerator.h"
#include "nn/zoo.h"

using namespace isaac;

int
main()
{
    const auto net = nn::tinyCnn();
    const auto weights = nn::WeightStore::synthesize(net, 77);
    const FixedFormat fmt{12};
    const auto input = nn::synthesizeInput(16, 12, 12, 5, fmt);

    nn::ReferenceExecutor reference(net, weights, fmt);
    const auto exact = reference.run(input);

    std::printf("Bitline noise sweep on %s (final layer: %d "
                "outputs)\n\n",
                net.name().c_str(), exact.channels());
    std::printf("%10s %14s %14s %12s\n", "sigma(LSB)",
                "mean |err|", "max |err|", "top-1 same");

    for (double sigma : {0.0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0}) {
        arch::IsaacConfig cfg;
        cfg.engine.noise.sigmaLsb = sigma;
        cfg.engine.noise.seed = 99;
        core::Accelerator acc(cfg);
        core::CompileOptions opts;
        opts.format = fmt;
        const auto model = acc.compile(net, weights, opts);

        // Average over a few trials (each inference draws fresh
        // noise from the deterministic stream).
        double meanErr = 0, maxErr = 0;
        int top1Same = 0;
        const int trials = 5;
        for (int t = 0; t < trials; ++t) {
            const auto noisy = model.infer(input);
            int argExact = 0, argNoisy = 0;
            for (int k = 0; k < exact.channels(); ++k) {
                const double err = std::abs(
                    fromFixed(noisy.at(k, 0, 0), fmt) -
                    fromFixed(exact.at(k, 0, 0), fmt));
                meanErr += err;
                maxErr = std::max(maxErr, err);
                if (exact.at(k, 0, 0) > exact.at(argExact, 0, 0))
                    argExact = k;
                if (noisy.at(k, 0, 0) > noisy.at(argNoisy, 0, 0))
                    argNoisy = k;
            }
            top1Same += argExact == argNoisy;
        }
        meanErr /= trials * exact.channels();
        std::printf("%10.2f %14.5f %14.5f %9d/%d\n", sigma, meanErr,
                    maxErr, top1Same, trials);
    }

    // Device-level variation: programming error and stuck cells.
    std::printf("\nDevice variation sweep (write-error sigma in "
                "cell levels / stuck-cell fraction)\n\n");
    std::printf("%12s %12s %14s %12s\n", "write sigma", "stuck frac",
                "mean |err|", "top-1 same");
    struct DeviceCase { double writeSigma; double stuck; };
    for (const auto &dc :
         {DeviceCase{0.0, 0.0}, DeviceCase{0.1, 0.0},
          DeviceCase{0.3, 0.0}, DeviceCase{0.0, 0.001},
          DeviceCase{0.0, 0.01}, DeviceCase{0.2, 0.005}}) {
        arch::IsaacConfig cfg;
        cfg.engine.noise.writeSigmaLevels = dc.writeSigma;
        cfg.engine.noise.stuckAtFraction = dc.stuck;
        cfg.engine.noise.seed = 123;
        core::Accelerator acc(cfg);
        core::CompileOptions opts;
        opts.format = fmt;
        const auto model = acc.compile(net, weights, opts);
        const auto out = model.infer(input);
        double meanErr = 0;
        int argExact = 0, argNoisy = 0;
        for (int k = 0; k < exact.channels(); ++k) {
            meanErr += std::abs(fromFixed(out.at(k, 0, 0), fmt) -
                                fromFixed(exact.at(k, 0, 0), fmt));
            if (exact.at(k, 0, 0) > exact.at(argExact, 0, 0))
                argExact = k;
            if (out.at(k, 0, 0) > out.at(argNoisy, 0, 0))
                argNoisy = k;
        }
        meanErr /= exact.channels();
        std::printf("%12.2f %12.3f %14.5f %12s\n", dc.writeSigma,
                    dc.stuck, meanErr,
                    argExact == argNoisy ? "yes" : "NO");
    }

    std::printf("\nBelow ~0.1 LSB the ADC rounds the noise away "
                "entirely and the pipeline stays bit-exact -- the "
                "paper's conservative 1-bit-DAC / 2-bit-cell / "
                "128-row design keeps real crossbars in that "
                "regime (Hu et al. [26]). Beyond ~0.2 LSB errors "
                "on the high-order weight slices are amplified by "
                "the shift-and-add merge and accuracy falls off a "
                "cliff, which is why ISAAC spends an extra column "
                "per array on the encoding instead of pushing cell "
                "density.\n");
    return 0;
}
