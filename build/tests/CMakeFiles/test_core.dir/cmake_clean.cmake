file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_accelerator.cc.o"
  "CMakeFiles/test_core.dir/core/test_accelerator.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_floorplan.cc.o"
  "CMakeFiles/test_core.dir/core/test_floorplan.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_fuzz.cc.o"
  "CMakeFiles/test_core.dir/core/test_fuzz.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_json.cc.o"
  "CMakeFiles/test_core.dir/core/test_json.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cc.o"
  "CMakeFiles/test_core.dir/core/test_report.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_umbrella.cc.o"
  "CMakeFiles/test_core.dir/core/test_umbrella.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
