
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xbar/test_adc.cc" "tests/CMakeFiles/test_xbar.dir/xbar/test_adc.cc.o" "gcc" "tests/CMakeFiles/test_xbar.dir/xbar/test_adc.cc.o.d"
  "/root/repo/tests/xbar/test_crossbar.cc" "tests/CMakeFiles/test_xbar.dir/xbar/test_crossbar.cc.o" "gcc" "tests/CMakeFiles/test_xbar.dir/xbar/test_crossbar.cc.o.d"
  "/root/repo/tests/xbar/test_encoding.cc" "tests/CMakeFiles/test_xbar.dir/xbar/test_encoding.cc.o" "gcc" "tests/CMakeFiles/test_xbar.dir/xbar/test_encoding.cc.o.d"
  "/root/repo/tests/xbar/test_engine.cc" "tests/CMakeFiles/test_xbar.dir/xbar/test_engine.cc.o" "gcc" "tests/CMakeFiles/test_xbar.dir/xbar/test_engine.cc.o.d"
  "/root/repo/tests/xbar/test_nonideal.cc" "tests/CMakeFiles/test_xbar.dir/xbar/test_nonideal.cc.o" "gcc" "tests/CMakeFiles/test_xbar.dir/xbar/test_nonideal.cc.o.d"
  "/root/repo/tests/xbar/test_write_model.cc" "tests/CMakeFiles/test_xbar.dir/xbar/test_write_model.cc.o" "gcc" "tests/CMakeFiles/test_xbar.dir/xbar/test_write_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isaac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
