file(REMOVE_RECURSE
  "CMakeFiles/test_xbar.dir/xbar/test_adc.cc.o"
  "CMakeFiles/test_xbar.dir/xbar/test_adc.cc.o.d"
  "CMakeFiles/test_xbar.dir/xbar/test_crossbar.cc.o"
  "CMakeFiles/test_xbar.dir/xbar/test_crossbar.cc.o.d"
  "CMakeFiles/test_xbar.dir/xbar/test_encoding.cc.o"
  "CMakeFiles/test_xbar.dir/xbar/test_encoding.cc.o.d"
  "CMakeFiles/test_xbar.dir/xbar/test_engine.cc.o"
  "CMakeFiles/test_xbar.dir/xbar/test_engine.cc.o.d"
  "CMakeFiles/test_xbar.dir/xbar/test_nonideal.cc.o"
  "CMakeFiles/test_xbar.dir/xbar/test_nonideal.cc.o.d"
  "CMakeFiles/test_xbar.dir/xbar/test_write_model.cc.o"
  "CMakeFiles/test_xbar.dir/xbar/test_write_model.cc.o.d"
  "test_xbar"
  "test_xbar.pdb"
  "test_xbar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
