
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline/test_dadiannao_perf.cc" "tests/CMakeFiles/test_pipeline.dir/baseline/test_dadiannao_perf.cc.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/baseline/test_dadiannao_perf.cc.o.d"
  "/root/repo/tests/pipeline/test_buffer.cc" "tests/CMakeFiles/test_pipeline.dir/pipeline/test_buffer.cc.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/pipeline/test_buffer.cc.o.d"
  "/root/repo/tests/pipeline/test_mapper.cc" "tests/CMakeFiles/test_pipeline.dir/pipeline/test_mapper.cc.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/pipeline/test_mapper.cc.o.d"
  "/root/repo/tests/pipeline/test_perf.cc" "tests/CMakeFiles/test_pipeline.dir/pipeline/test_perf.cc.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/pipeline/test_perf.cc.o.d"
  "/root/repo/tests/pipeline/test_replication.cc" "tests/CMakeFiles/test_pipeline.dir/pipeline/test_replication.cc.o" "gcc" "tests/CMakeFiles/test_pipeline.dir/pipeline/test_replication.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isaac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
