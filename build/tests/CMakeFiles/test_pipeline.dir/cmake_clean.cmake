file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline.dir/baseline/test_dadiannao_perf.cc.o"
  "CMakeFiles/test_pipeline.dir/baseline/test_dadiannao_perf.cc.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_buffer.cc.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_buffer.cc.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_mapper.cc.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_mapper.cc.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_perf.cc.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_perf.cc.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_replication.cc.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_replication.cc.o.d"
  "test_pipeline"
  "test_pipeline.pdb"
  "test_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
