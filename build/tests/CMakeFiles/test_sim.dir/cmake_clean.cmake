file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_chip_sim.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_chip_sim.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_pipeline_sim.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_pipeline_sim.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_tile_sim.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_tile_sim.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_timeline.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_timeline.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trace.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_trace.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
