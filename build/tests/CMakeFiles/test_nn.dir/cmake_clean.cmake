file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_activation.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_activation.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_layer.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_layer.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_network.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_network.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_network_assets.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_network_assets.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_parser.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_parser.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_rect.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_rect.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_reference.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_reference.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_tensor.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_tensor.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_weights_io.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_weights_io.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_zoo.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_zoo.cc.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
