
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_activation.cc" "tests/CMakeFiles/test_nn.dir/nn/test_activation.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_activation.cc.o.d"
  "/root/repo/tests/nn/test_layer.cc" "tests/CMakeFiles/test_nn.dir/nn/test_layer.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_layer.cc.o.d"
  "/root/repo/tests/nn/test_network.cc" "tests/CMakeFiles/test_nn.dir/nn/test_network.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_network.cc.o.d"
  "/root/repo/tests/nn/test_network_assets.cc" "tests/CMakeFiles/test_nn.dir/nn/test_network_assets.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_network_assets.cc.o.d"
  "/root/repo/tests/nn/test_parser.cc" "tests/CMakeFiles/test_nn.dir/nn/test_parser.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_parser.cc.o.d"
  "/root/repo/tests/nn/test_rect.cc" "tests/CMakeFiles/test_nn.dir/nn/test_rect.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_rect.cc.o.d"
  "/root/repo/tests/nn/test_reference.cc" "tests/CMakeFiles/test_nn.dir/nn/test_reference.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_reference.cc.o.d"
  "/root/repo/tests/nn/test_tensor.cc" "tests/CMakeFiles/test_nn.dir/nn/test_tensor.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_tensor.cc.o.d"
  "/root/repo/tests/nn/test_weights_io.cc" "tests/CMakeFiles/test_nn.dir/nn/test_weights_io.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_weights_io.cc.o.d"
  "/root/repo/tests/nn/test_zoo.cc" "tests/CMakeFiles/test_nn.dir/nn/test_zoo.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isaac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
