
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch/test_sigmoid_unit.cc" "tests/CMakeFiles/test_noc.dir/arch/test_sigmoid_unit.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/arch/test_sigmoid_unit.cc.o.d"
  "/root/repo/tests/arch/test_structure.cc" "tests/CMakeFiles/test_noc.dir/arch/test_structure.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/arch/test_structure.cc.o.d"
  "/root/repo/tests/noc/test_cmesh.cc" "tests/CMakeFiles/test_noc.dir/noc/test_cmesh.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_cmesh.cc.o.d"
  "/root/repo/tests/noc/test_traffic.cc" "tests/CMakeFiles/test_noc.dir/noc/test_traffic.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/test_traffic.cc.o.d"
  "/root/repo/tests/pipeline/test_placement.cc" "tests/CMakeFiles/test_noc.dir/pipeline/test_placement.cc.o" "gcc" "tests/CMakeFiles/test_noc.dir/pipeline/test_placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/isaac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
