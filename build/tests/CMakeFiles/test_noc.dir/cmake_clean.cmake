file(REMOVE_RECURSE
  "CMakeFiles/test_noc.dir/arch/test_sigmoid_unit.cc.o"
  "CMakeFiles/test_noc.dir/arch/test_sigmoid_unit.cc.o.d"
  "CMakeFiles/test_noc.dir/arch/test_structure.cc.o"
  "CMakeFiles/test_noc.dir/arch/test_structure.cc.o.d"
  "CMakeFiles/test_noc.dir/noc/test_cmesh.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_cmesh.cc.o.d"
  "CMakeFiles/test_noc.dir/noc/test_traffic.cc.o"
  "CMakeFiles/test_noc.dir/noc/test_traffic.cc.o.d"
  "CMakeFiles/test_noc.dir/pipeline/test_placement.cc.o"
  "CMakeFiles/test_noc.dir/pipeline/test_placement.cc.o.d"
  "test_noc"
  "test_noc.pdb"
  "test_noc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
