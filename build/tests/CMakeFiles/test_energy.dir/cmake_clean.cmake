file(REMOVE_RECURSE
  "CMakeFiles/test_energy.dir/arch/test_config.cc.o"
  "CMakeFiles/test_energy.dir/arch/test_config.cc.o.d"
  "CMakeFiles/test_energy.dir/energy/test_adc_model.cc.o"
  "CMakeFiles/test_energy.dir/energy/test_adc_model.cc.o.d"
  "CMakeFiles/test_energy.dir/energy/test_catalog.cc.o"
  "CMakeFiles/test_energy.dir/energy/test_catalog.cc.o.d"
  "CMakeFiles/test_energy.dir/energy/test_dadiannao.cc.o"
  "CMakeFiles/test_energy.dir/energy/test_dadiannao.cc.o.d"
  "test_energy"
  "test_energy.pdb"
  "test_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
