# Empty dependencies file for bench_programming.
# This may be replaced when dependencies are built.
