file(REMOVE_RECURSE
  "CMakeFiles/bench_programming.dir/bench_programming.cc.o"
  "CMakeFiles/bench_programming.dir/bench_programming.cc.o.d"
  "bench_programming"
  "bench_programming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_programming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
