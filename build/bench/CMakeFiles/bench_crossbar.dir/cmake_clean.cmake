file(REMOVE_RECURSE
  "CMakeFiles/bench_crossbar.dir/bench_crossbar.cc.o"
  "CMakeFiles/bench_crossbar.dir/bench_crossbar.cc.o.d"
  "bench_crossbar"
  "bench_crossbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
