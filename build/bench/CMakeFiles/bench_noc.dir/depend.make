# Empty dependencies file for bench_noc.
# This may be replaced when dependencies are built.
