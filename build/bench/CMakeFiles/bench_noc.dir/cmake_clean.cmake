file(REMOVE_RECURSE
  "CMakeFiles/bench_noc.dir/bench_noc.cc.o"
  "CMakeFiles/bench_noc.dir/bench_noc.cc.o.d"
  "bench_noc"
  "bench_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
