# Empty compiler generated dependencies file for train_insitu.
# This may be replaced when dependencies are built.
