file(REMOVE_RECURSE
  "CMakeFiles/train_insitu.dir/train_insitu.cpp.o"
  "CMakeFiles/train_insitu.dir/train_insitu.cpp.o.d"
  "train_insitu"
  "train_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
