# Empty compiler generated dependencies file for isaac_cli.
# This may be replaced when dependencies are built.
