file(REMOVE_RECURSE
  "CMakeFiles/isaac_cli.dir/isaac_cli.cpp.o"
  "CMakeFiles/isaac_cli.dir/isaac_cli.cpp.o.d"
  "isaac_cli"
  "isaac_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isaac_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
