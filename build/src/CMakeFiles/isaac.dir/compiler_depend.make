# Empty compiler generated dependencies file for isaac.
# This may be replaced when dependencies are built.
