
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/chip.cc" "src/CMakeFiles/isaac.dir/arch/chip.cc.o" "gcc" "src/CMakeFiles/isaac.dir/arch/chip.cc.o.d"
  "/root/repo/src/arch/config.cc" "src/CMakeFiles/isaac.dir/arch/config.cc.o" "gcc" "src/CMakeFiles/isaac.dir/arch/config.cc.o.d"
  "/root/repo/src/arch/ima.cc" "src/CMakeFiles/isaac.dir/arch/ima.cc.o" "gcc" "src/CMakeFiles/isaac.dir/arch/ima.cc.o.d"
  "/root/repo/src/arch/tile.cc" "src/CMakeFiles/isaac.dir/arch/tile.cc.o" "gcc" "src/CMakeFiles/isaac.dir/arch/tile.cc.o.d"
  "/root/repo/src/baseline/dadiannao_perf.cc" "src/CMakeFiles/isaac.dir/baseline/dadiannao_perf.cc.o" "gcc" "src/CMakeFiles/isaac.dir/baseline/dadiannao_perf.cc.o.d"
  "/root/repo/src/common/fixed_point.cc" "src/CMakeFiles/isaac.dir/common/fixed_point.cc.o" "gcc" "src/CMakeFiles/isaac.dir/common/fixed_point.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/isaac.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/isaac.dir/common/logging.cc.o.d"
  "/root/repo/src/core/accelerator.cc" "src/CMakeFiles/isaac.dir/core/accelerator.cc.o" "gcc" "src/CMakeFiles/isaac.dir/core/accelerator.cc.o.d"
  "/root/repo/src/core/floorplan.cc" "src/CMakeFiles/isaac.dir/core/floorplan.cc.o" "gcc" "src/CMakeFiles/isaac.dir/core/floorplan.cc.o.d"
  "/root/repo/src/core/json.cc" "src/CMakeFiles/isaac.dir/core/json.cc.o" "gcc" "src/CMakeFiles/isaac.dir/core/json.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/isaac.dir/core/report.cc.o" "gcc" "src/CMakeFiles/isaac.dir/core/report.cc.o.d"
  "/root/repo/src/dse/dse.cc" "src/CMakeFiles/isaac.dir/dse/dse.cc.o" "gcc" "src/CMakeFiles/isaac.dir/dse/dse.cc.o.d"
  "/root/repo/src/energy/adc_model.cc" "src/CMakeFiles/isaac.dir/energy/adc_model.cc.o" "gcc" "src/CMakeFiles/isaac.dir/energy/adc_model.cc.o.d"
  "/root/repo/src/energy/catalog.cc" "src/CMakeFiles/isaac.dir/energy/catalog.cc.o" "gcc" "src/CMakeFiles/isaac.dir/energy/catalog.cc.o.d"
  "/root/repo/src/energy/dac_model.cc" "src/CMakeFiles/isaac.dir/energy/dac_model.cc.o" "gcc" "src/CMakeFiles/isaac.dir/energy/dac_model.cc.o.d"
  "/root/repo/src/energy/dadiannao_catalog.cc" "src/CMakeFiles/isaac.dir/energy/dadiannao_catalog.cc.o" "gcc" "src/CMakeFiles/isaac.dir/energy/dadiannao_catalog.cc.o.d"
  "/root/repo/src/nn/activation.cc" "src/CMakeFiles/isaac.dir/nn/activation.cc.o" "gcc" "src/CMakeFiles/isaac.dir/nn/activation.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/CMakeFiles/isaac.dir/nn/layer.cc.o" "gcc" "src/CMakeFiles/isaac.dir/nn/layer.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/CMakeFiles/isaac.dir/nn/network.cc.o" "gcc" "src/CMakeFiles/isaac.dir/nn/network.cc.o.d"
  "/root/repo/src/nn/parser.cc" "src/CMakeFiles/isaac.dir/nn/parser.cc.o" "gcc" "src/CMakeFiles/isaac.dir/nn/parser.cc.o.d"
  "/root/repo/src/nn/reference.cc" "src/CMakeFiles/isaac.dir/nn/reference.cc.o" "gcc" "src/CMakeFiles/isaac.dir/nn/reference.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/isaac.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/isaac.dir/nn/tensor.cc.o.d"
  "/root/repo/src/nn/weights.cc" "src/CMakeFiles/isaac.dir/nn/weights.cc.o" "gcc" "src/CMakeFiles/isaac.dir/nn/weights.cc.o.d"
  "/root/repo/src/nn/weights_io.cc" "src/CMakeFiles/isaac.dir/nn/weights_io.cc.o" "gcc" "src/CMakeFiles/isaac.dir/nn/weights_io.cc.o.d"
  "/root/repo/src/nn/zoo.cc" "src/CMakeFiles/isaac.dir/nn/zoo.cc.o" "gcc" "src/CMakeFiles/isaac.dir/nn/zoo.cc.o.d"
  "/root/repo/src/noc/cmesh.cc" "src/CMakeFiles/isaac.dir/noc/cmesh.cc.o" "gcc" "src/CMakeFiles/isaac.dir/noc/cmesh.cc.o.d"
  "/root/repo/src/noc/traffic.cc" "src/CMakeFiles/isaac.dir/noc/traffic.cc.o" "gcc" "src/CMakeFiles/isaac.dir/noc/traffic.cc.o.d"
  "/root/repo/src/pipeline/buffer.cc" "src/CMakeFiles/isaac.dir/pipeline/buffer.cc.o" "gcc" "src/CMakeFiles/isaac.dir/pipeline/buffer.cc.o.d"
  "/root/repo/src/pipeline/mapper.cc" "src/CMakeFiles/isaac.dir/pipeline/mapper.cc.o" "gcc" "src/CMakeFiles/isaac.dir/pipeline/mapper.cc.o.d"
  "/root/repo/src/pipeline/perf.cc" "src/CMakeFiles/isaac.dir/pipeline/perf.cc.o" "gcc" "src/CMakeFiles/isaac.dir/pipeline/perf.cc.o.d"
  "/root/repo/src/pipeline/placement.cc" "src/CMakeFiles/isaac.dir/pipeline/placement.cc.o" "gcc" "src/CMakeFiles/isaac.dir/pipeline/placement.cc.o.d"
  "/root/repo/src/pipeline/replication.cc" "src/CMakeFiles/isaac.dir/pipeline/replication.cc.o" "gcc" "src/CMakeFiles/isaac.dir/pipeline/replication.cc.o.d"
  "/root/repo/src/sim/chip_sim.cc" "src/CMakeFiles/isaac.dir/sim/chip_sim.cc.o" "gcc" "src/CMakeFiles/isaac.dir/sim/chip_sim.cc.o.d"
  "/root/repo/src/sim/pipeline_sim.cc" "src/CMakeFiles/isaac.dir/sim/pipeline_sim.cc.o" "gcc" "src/CMakeFiles/isaac.dir/sim/pipeline_sim.cc.o.d"
  "/root/repo/src/sim/tile_sim.cc" "src/CMakeFiles/isaac.dir/sim/tile_sim.cc.o" "gcc" "src/CMakeFiles/isaac.dir/sim/tile_sim.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/CMakeFiles/isaac.dir/sim/timeline.cc.o" "gcc" "src/CMakeFiles/isaac.dir/sim/timeline.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/isaac.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/isaac.dir/sim/trace.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/isaac.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/isaac.dir/train/trainer.cc.o.d"
  "/root/repo/src/xbar/adc.cc" "src/CMakeFiles/isaac.dir/xbar/adc.cc.o" "gcc" "src/CMakeFiles/isaac.dir/xbar/adc.cc.o.d"
  "/root/repo/src/xbar/crossbar.cc" "src/CMakeFiles/isaac.dir/xbar/crossbar.cc.o" "gcc" "src/CMakeFiles/isaac.dir/xbar/crossbar.cc.o.d"
  "/root/repo/src/xbar/encoding.cc" "src/CMakeFiles/isaac.dir/xbar/encoding.cc.o" "gcc" "src/CMakeFiles/isaac.dir/xbar/encoding.cc.o.d"
  "/root/repo/src/xbar/engine.cc" "src/CMakeFiles/isaac.dir/xbar/engine.cc.o" "gcc" "src/CMakeFiles/isaac.dir/xbar/engine.cc.o.d"
  "/root/repo/src/xbar/write_model.cc" "src/CMakeFiles/isaac.dir/xbar/write_model.cc.o" "gcc" "src/CMakeFiles/isaac.dir/xbar/write_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
