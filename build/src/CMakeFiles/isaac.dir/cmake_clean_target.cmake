file(REMOVE_RECURSE
  "libisaac.a"
)
