#include "energy/catalog.h"

#include <cmath>

#include "common/logging.h"

namespace isaac::energy {

namespace {

/** Table I reference constants for the ISAAC-CE tile (per tile). */
constexpr double kEdramPowerMw = 20.7;   // 64 KB, 4 banks
constexpr double kEdramAreaMm2 = 0.083;
constexpr double kBusPowerMw = 7.0;      // 256-bit, 384 wires
constexpr double kBusAreaMm2 = 0.090;
constexpr double kRouterPowerMw = 42.0;  // shared by 4 tiles
constexpr double kRouterAreaMm2 = 0.151; // shared by 4 tiles
constexpr double kSigmoidPowerMw = 0.52; // 2 units
constexpr double kSigmoidAreaMm2 = 0.0006;
constexpr double kTileSaPowerMw = 0.05;  // 1 unit
constexpr double kTileSaAreaMm2 = 0.00006;
constexpr double kMaxPoolPowerMw = 0.4;  // 1 unit
constexpr double kMaxPoolAreaMm2 = 0.00024;
constexpr double kTileOrPowerMw = 1.68;  // 3 KB
constexpr double kTileOrAreaMm2 = 0.0032;

/** Table I reference constants for one IMA (8 crossbars, 8 ADCs). */
constexpr double kShPowerMwPer = 0.01 / 1024.0;   // 10 uW / 8x128
constexpr double kShAreaMm2Per = 0.00004 / 1024.0;
constexpr double kXbarPowerMwPer = 2.4 / 8.0;     // per 128x128 array
constexpr double kXbarAreaMm2Per = 0.0002 / 8.0;
constexpr double kImaSaPowerMwPer = 0.2 / 4.0;    // per S+A unit
constexpr double kImaSaAreaMm2Per = 0.00024 / 4.0;
constexpr double kIrPowerMwRef = 1.24;            // 2 KB
constexpr double kIrAreaMm2Ref = 0.0021;
constexpr double kOrPowerMwRef = 0.23;            // 256 B
constexpr double kOrAreaMm2Ref = 0.00077;

constexpr double kDigitalClockHz = 1.2e9;

/** S+A units an IMA needs: Table I pairs 4 with 8 crossbars. */
int
imaShiftAddUnits(const arch::IsaacConfig &cfg)
{
    return std::max(1, cfg.xbarsPerIma / 2);
}

} // namespace

double
Breakdown::totalPowerMw() const
{
    double sum = 0;
    for (const auto &c : items)
        sum += c.powerMw;
    return sum;
}

double
Breakdown::totalAreaMm2() const
{
    double sum = 0;
    for (const auto &c : items)
        sum += c.areaMm2;
    return sum;
}

IsaacEnergyModel::IsaacEnergyModel(const arch::IsaacConfig &cfg,
                                   AdcModel adcModel,
                                   DacModel dacModel)
    : cfg(cfg), adc(adcModel), dac(dacModel)
{
    cfg.validate();
}

Breakdown
IsaacEnergyModel::imaBreakdown() const
{
    Breakdown b;
    const int bits = cfg.engine.adcBits();
    const int rowsPerIma = cfg.xbarsPerIma * cfg.engine.rows;
    const double cellScale =
        static_cast<double>(cfg.engine.rows) * cfg.engine.cols /
        (128.0 * 128.0);
    // Only the arrays the ADCs can drain switch in a cycle; their
    // DACs, sample-and-holds, and bitlines draw dynamic power, the
    // rest of the (area-bearing) arrays sit idle.
    const double activeFrac =
        static_cast<double>(cfg.activeXbarsPerIma()) /
        cfg.xbarsPerIma;

    const auto &pol = cfg.engine.adcPolicy;
    std::string adcSpec = std::to_string(bits) + "b x" +
        std::to_string(cfg.adcsPerIma);
    if (pol.isAdaptive()) {
        adcSpec += " adaptive (E[" +
            std::to_string(pol.expectedBits(bits)) + "b])";
    }
    b.items.push_back({"ADC", adcSpec,
                       cfg.adcsPerIma *
                           adc.policyPowerMw(pol, bits, 1.2),
                       cfg.adcsPerIma * adc.policyAreaMm2(pol, bits)});
    b.items.push_back({"DAC",
                       std::to_string(cfg.engine.dacBits) + "b x" +
                           std::to_string(rowsPerIma),
                       rowsPerIma * activeFrac *
                           dac.powerMw(cfg.engine.dacBits),
                       rowsPerIma * dac.areaMm2(cfg.engine.dacBits)});
    b.items.push_back({"S+H", "x" + std::to_string(rowsPerIma),
                       rowsPerIma * activeFrac * kShPowerMwPer,
                       rowsPerIma * kShAreaMm2Per});
    b.items.push_back({"Memristor arrays",
                       std::to_string(cfg.xbarsPerIma) + "x " +
                           std::to_string(cfg.engine.rows) + "x" +
                           std::to_string(cfg.engine.cols),
                       cfg.xbarsPerIma * activeFrac *
                           kXbarPowerMwPer * cellScale,
                       cfg.xbarsPerIma * kXbarAreaMm2Per * cellScale});
    const int saUnits = imaShiftAddUnits(cfg);
    b.items.push_back({"S+A", "x" + std::to_string(saUnits),
                       saUnits * kImaSaPowerMwPer,
                       saUnits * kImaSaAreaMm2Per});
    const double irScale = cfg.irBytesPerIma() / 2048.0;
    b.items.push_back({"IR",
                       std::to_string(cfg.irBytesPerIma() / 1024) +
                           " KB",
                       kIrPowerMwRef * irScale,
                       kIrAreaMm2Ref * irScale});
    const double orScale = cfg.orBytesPerIma() / 256.0;
    b.items.push_back({"OR",
                       std::to_string(cfg.orBytesPerIma()) + " B",
                       kOrPowerMwRef * orScale,
                       kOrAreaMm2Ref * orScale});
    return b;
}

Breakdown
IsaacEnergyModel::tileBreakdown() const
{
    Breakdown b;
    const double edramScale = cfg.edramKBPerTile / 64.0;
    b.items.push_back({"eDRAM buffer",
                       std::to_string(cfg.edramKBPerTile) + " KB",
                       kEdramPowerMw * edramScale,
                       kEdramAreaMm2 * edramScale});
    const double busScale = cfg.busBits / 256.0;
    b.items.push_back({"eDRAM-to-IMA bus",
                       std::to_string(cfg.busBits) + " b",
                       kBusPowerMw * busScale,
                       kBusAreaMm2 * busScale});
    b.items.push_back({"Router", "1/4 share", kRouterPowerMw / 4,
                       kRouterAreaMm2 / 4});
    b.items.push_back({"Sigmoid", "x2", kSigmoidPowerMw,
                       kSigmoidAreaMm2});
    b.items.push_back({"S+A", "x1", kTileSaPowerMw, kTileSaAreaMm2});
    b.items.push_back({"MaxPool", "x1", kMaxPoolPowerMw,
                       kMaxPoolAreaMm2});
    const double orScale = cfg.tileOrBytes / 3072.0;
    b.items.push_back({"OR",
                       std::to_string(cfg.tileOrBytes / 1024) + " KB",
                       kTileOrPowerMw * orScale,
                       kTileOrAreaMm2 * orScale});
    b.items.push_back({"IMAs", "x" + std::to_string(cfg.imasPerTile),
                       cfg.imasPerTile * imaPowerMw(),
                       cfg.imasPerTile * imaAreaMm2()});
    return b;
}

double
IsaacEnergyModel::imaPowerMw() const
{
    return imaBreakdown().totalPowerMw();
}

double
IsaacEnergyModel::imaAreaMm2() const
{
    return imaBreakdown().totalAreaMm2();
}

double
IsaacEnergyModel::tilePowerMw() const
{
    return tileBreakdown().totalPowerMw();
}

double
IsaacEnergyModel::tileAreaMm2() const
{
    return tileBreakdown().totalAreaMm2();
}

double
IsaacEnergyModel::chipPowerW() const
{
    return cfg.tilesPerChip * tilePowerMw() / 1000.0 + htPowerW();
}

double
IsaacEnergyModel::chipAreaMm2() const
{
    return cfg.tilesPerChip * tileAreaMm2() + htAreaMm2();
}

double
IsaacEnergyModel::adcEnergyPerSamplePj() const
{
    const int bits = cfg.engine.adcBits();
    // mW / GSps = pJ per sample. Under an adaptive policy this is
    // the *expected* per-sample energy (policyPowerMw prices the
    // expected resolution); measured runs should prefer
    // adcEnergyPerSampleAtPj with the realized mean resolution.
    return adc.policyPowerMw(cfg.engine.adcPolicy, bits, 1.2) / 1.2;
}

double
IsaacEnergyModel::adcEnergyPerSampleAtPj(double meanBits) const
{
    // Per-cycle accounting: price conversions at the realized mean
    // resolution (EngineStats::adcBitCycles / adcSamples). Reduces
    // to the fixed per-sample figure at meanBits == adcBits().
    double e = adc.energyPerSamplePj(meanBits);
    if (cfg.engine.adcPolicy.isAdaptive())
        e *= 1.0 + AdcModel::kAdaptivePowerOverhead;
    return e;
}

double
IsaacEnergyModel::dacEnergyPerRowCyclePj() const
{
    return dac.powerMw(cfg.engine.dacBits) * cfg.cycleNs;
}

double
IsaacEnergyModel::xbarEnergyPerReadPj() const
{
    const double cellScale =
        static_cast<double>(cfg.engine.rows) * cfg.engine.cols /
        (128.0 * 128.0);
    return kXbarPowerMwPer * cellScale * cfg.cycleNs;
}

double
IsaacEnergyModel::shiftAddEnergyPerOpPj() const
{
    return kImaSaPowerMwPer * 1e-3 / kDigitalClockHz * 1e12;
}

double
IsaacEnergyModel::sigmoidEnergyPerOpPj() const
{
    // Two units share the Table I power figure.
    return kSigmoidPowerMw * 1e-3 / 2.0 / kDigitalClockHz * 1e12;
}

double
IsaacEnergyModel::maxPoolEnergyPerValuePj() const
{
    return kMaxPoolPowerMw * 1e-3 / kDigitalClockHz * 1e12;
}

double
IsaacEnergyModel::edramEnergyPerBytePj() const
{
    // The eDRAM sustains up to 1 KB per 100 ns cycle (Sec. VI).
    const double bytesPerSec = 1024.0 / (cfg.cycleNs * 1e-9);
    return kEdramPowerMw * 1e-3 / bytesPerSec * 1e12;
}

double
IsaacEnergyModel::busEnergyPerBytePj() const
{
    const double bytesPerSec = 1024.0 / (cfg.cycleNs * 1e-9);
    return kBusPowerMw * 1e-3 / bytesPerSec * 1e12;
}

double
IsaacEnergyModel::htEnergyPerBytePj() const
{
    const double bytesPerSec =
        cfg.htLinks * cfg.htLinkGBps * 1e9;
    return htPowerW() / bytesPerSec * 1e12;
}

double
IsaacEnergyModel::ceGopsPerMm2() const
{
    return cfg.peakGops() / chipAreaMm2();
}

double
IsaacEnergyModel::peGopsPerW() const
{
    return cfg.peakGops() / chipPowerW();
}

double
IsaacEnergyModel::seMBPerMm2() const
{
    return static_cast<double>(cfg.storageBytesPerChip()) /
        (1024.0 * 1024.0) / chipAreaMm2();
}

} // namespace isaac::energy
