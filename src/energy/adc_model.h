/**
 * @file
 * SAR ADC power/area scaling model (Sec. VII, Methodology).
 *
 * The reference point is the 8-bit 1.2 GS/s single-channel
 * asynchronous SAR ADC of Kull et al. in 32 nm, as charged in
 * Table I: 16 mW and 0.0096 mm^2 for the 8 ADCs of one IMA, i.e.
 * 2 mW / 0.0012 mm^2 each.
 *
 * Following the paper, a SAR ADC has four major components: the vref
 * buffer, memory, and clock scale *linearly* with resolution, while
 * the capacitive DAC scales *exponentially* (Saberi et al. [59]).
 * The split between the two groups at the 8-bit reference point is a
 * model parameter.
 */

#ifndef ISAAC_ENERGY_ADC_MODEL_H
#define ISAAC_ENERGY_ADC_MODEL_H

#include "xbar/adc_policy.h"

namespace isaac::energy {

/** Power/area model for a SAR ADC as a function of resolution. */
struct AdcModel
{
    /** Reference design: 8 bits, 1.2 GS/s, 32 nm. */
    static constexpr double kRefBits = 8.0;
    static constexpr double kRefGsps = 1.2;
    static constexpr double kRefPowerMw = 2.0;
    static constexpr double kRefAreaMm2 = 0.0012;

    /**
     * Adaptive-controller overheads (Newton-style converters): the
     * per-cycle bound register, comparator against the unit-certified
     * ceiling, and early-termination control add a small tax on top
     * of the SAR core. Power rides the switching estimate; area is
     * heavier because the control sits next to every converter.
     */
    static constexpr double kAdaptivePowerOverhead = 0.02;
    static constexpr double kAdaptiveAreaOverhead = 0.06;

    /**
     * Fraction of reference power in the linearly-scaling components
     * (vref buffer + memory + clock); the remainder is the
     * exponentially-scaling capacitive DAC.
     */
    double linearPowerFraction = 0.5;

    /** Same split for area. */
    double linearAreaFraction = 0.5;

    /** Power in mW at `bits` resolution and `gsps` sampling rate. */
    double powerMw(int bits, double gsps) const;

    /** Area in mm^2 at `bits` resolution. */
    double areaMm2(int bits) const;

    /**
     * Energy of one conversion at a (possibly fractional) realized
     * resolution, in pJ. Rate-independent: energy is power divided
     * by rate, and both scale together. The fractional argument is
     * how per-cycle accounting prices an adaptive converter's
     * realized mean resolution (EngineStats::adcBitCycles divided by
     * adcSamples).
     */
    double energyPerSamplePj(double bits) const;

    /**
     * Peak power of one converter running `policy` on hardware sized
     * for `capBits`: a fixed policy resolves every cycle at capBits;
     * an adaptive one runs at its expected resolution
     * (AdcPolicy::expectedBits) plus the controller overhead.
     */
    double policyPowerMw(const xbar::AdcPolicy &policy, int capBits,
                         double gsps) const;

    /**
     * Area of one converter under `policy`. The SAR core must still
     * resolve capBits — truncation is a per-conversion decision, not
     * a hardware cut — so adaptive designs pay full-resolution area
     * plus the controller overhead.
     */
    double policyAreaMm2(const xbar::AdcPolicy &policy,
                         int capBits) const;
};

} // namespace isaac::energy

#endif // ISAAC_ENERGY_ADC_MODEL_H
