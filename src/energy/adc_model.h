/**
 * @file
 * SAR ADC power/area scaling model (Sec. VII, Methodology).
 *
 * The reference point is the 8-bit 1.2 GS/s single-channel
 * asynchronous SAR ADC of Kull et al. in 32 nm, as charged in
 * Table I: 16 mW and 0.0096 mm^2 for the 8 ADCs of one IMA, i.e.
 * 2 mW / 0.0012 mm^2 each.
 *
 * Following the paper, a SAR ADC has four major components: the vref
 * buffer, memory, and clock scale *linearly* with resolution, while
 * the capacitive DAC scales *exponentially* (Saberi et al. [59]).
 * The split between the two groups at the 8-bit reference point is a
 * model parameter.
 */

#ifndef ISAAC_ENERGY_ADC_MODEL_H
#define ISAAC_ENERGY_ADC_MODEL_H

namespace isaac::energy {

/** Power/area model for a SAR ADC as a function of resolution. */
struct AdcModel
{
    /** Reference design: 8 bits, 1.2 GS/s, 32 nm. */
    static constexpr double kRefBits = 8.0;
    static constexpr double kRefGsps = 1.2;
    static constexpr double kRefPowerMw = 2.0;
    static constexpr double kRefAreaMm2 = 0.0012;

    /**
     * Fraction of reference power in the linearly-scaling components
     * (vref buffer + memory + clock); the remainder is the
     * exponentially-scaling capacitive DAC.
     */
    double linearPowerFraction = 0.5;

    /** Same split for area. */
    double linearAreaFraction = 0.5;

    /** Power in mW at `bits` resolution and `gsps` sampling rate. */
    double powerMw(int bits, double gsps) const;

    /** Area in mm^2 at `bits` resolution. */
    double areaMm2(int bits) const;
};

} // namespace isaac::energy

#endif // ISAAC_ENERGY_ADC_MODEL_H
