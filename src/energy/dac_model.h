/**
 * @file
 * DAC power/area model.
 *
 * The default design uses a trivial 1-bit DAC (an inverter) on every
 * crossbar row: Table I charges 4 mW and 0.00017 mm^2 for the
 * 8 x 128 DACs of one IMA. Multi-bit capacitive DACs scale
 * exponentially (Saberi et al. [59]); the per-bit growth ratios are
 * calibrated against the paper's Sec. VIII-A ablation ("a 2-bit DAC
 * increases the area and power of a chip by 63% and 7%"), which for
 * the ISAAC-CE chip (85.4 mm^2, 65.8 W, 0.343 mm^2 / 8.06 W of
 * total DAC) implies ~158x area and ~1.57x power per extra bit.
 */

#ifndef ISAAC_ENERGY_DAC_MODEL_H
#define ISAAC_ENERGY_DAC_MODEL_H

namespace isaac::energy {

/** Power/area of one per-row DAC as a function of resolution v. */
struct DacModel
{
    /** 1-bit reference: 4 mW / 1024 DACs. */
    static constexpr double kRefPowerMw = 4.0 / 1024.0;
    static constexpr double kRefAreaMm2 = 0.00017 / 1024.0;

    /** Multiplicative growth per additional bit. */
    double areaGrowthPerBit = 158.0;
    double powerGrowthPerBit = 1.57;

    double powerMw(int bits) const;
    double areaMm2(int bits) const;
};

} // namespace isaac::energy

#endif // ISAAC_ENERGY_DAC_MODEL_H
