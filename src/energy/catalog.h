/**
 * @file
 * The ISAAC power/area catalog (Table I) and derived per-event
 * energies.
 *
 * Component costs at the ISAAC-CE design point reproduce Table I
 * exactly; other design points scale each component from its Table I
 * reference (linear in SRAM/eDRAM capacity and bus width, linear in
 * cell count for crossbars/DACs/S&H, and the ADC/DAC resolution
 * models of adc_model.h / dac_model.h).
 */

#ifndef ISAAC_ENERGY_CATALOG_H
#define ISAAC_ENERGY_CATALOG_H

#include <string>
#include <vector>

#include "arch/config.h"
#include "energy/adc_model.h"
#include "energy/dac_model.h"

namespace isaac::energy {

/** One line of a power/area breakdown. */
struct ComponentCost
{
    std::string name;
    std::string spec;    ///< Human-readable parameters column.
    double powerMw = 0;  ///< Peak power in mW.
    double areaMm2 = 0;  ///< Area in mm^2.
};

/** A list of component costs with totals. */
struct Breakdown
{
    std::vector<ComponentCost> items;

    double totalPowerMw() const;
    double totalAreaMm2() const;
};

/** Power, area, and per-event energies for one ISAAC design point. */
class IsaacEnergyModel
{
  public:
    explicit IsaacEnergyModel(const arch::IsaacConfig &cfg,
                              AdcModel adcModel = {},
                              DacModel dacModel = {});

    const arch::IsaacConfig &config() const { return cfg; }

    /** Per-IMA component breakdown (Table I, IMA section). */
    Breakdown imaBreakdown() const;

    /** Per-tile breakdown (Table I, tile section; IMAs as one row). */
    Breakdown tileBreakdown() const;

    double imaPowerMw() const;
    double imaAreaMm2() const;
    double tilePowerMw() const;
    double tileAreaMm2() const;

    /** Chip totals including the HyperTransport links. */
    double chipPowerW() const;
    double chipAreaMm2() const;

    /** Constant HyperTransport background power (Sec. VIII-B). */
    double htPowerW() const { return 10.4; }
    double htAreaMm2() const { return 22.88; }

    /** @name Per-event energies in picojoules. */
    /// @{
    double adcEnergyPerSamplePj() const;
    /**
     * Per-cycle ADC accounting: the energy of one conversion at a
     * realized mean resolution of `meanBits` (adcBitCycles /
     * adcSamples from a measured EngineStats). Fixed policies always
     * realize adcBits(); adaptive ones realize less on sparse
     * phases, which is exactly the saving this prices.
     */
    double adcEnergyPerSampleAtPj(double meanBits) const;
    double dacEnergyPerRowCyclePj() const;
    double xbarEnergyPerReadPj() const;
    double shiftAddEnergyPerOpPj() const;
    double sigmoidEnergyPerOpPj() const;
    double maxPoolEnergyPerValuePj() const;
    double edramEnergyPerBytePj() const;
    double busEnergyPerBytePj() const;
    double htEnergyPerBytePj() const;
    /// @}

    /** @name Peak efficiency metrics (Sec. VII). */
    /// @{
    /** Computational efficiency: GOPS per mm^2. */
    double ceGopsPerMm2() const;
    /** Power efficiency: GOPS per W. */
    double peGopsPerW() const;
    /** Storage efficiency: MB of synaptic weights per mm^2. */
    double seMBPerMm2() const;
    /// @}

  private:
    arch::IsaacConfig cfg;
    AdcModel adc;
    DacModel dac;
};

} // namespace isaac::energy

#endif // ISAAC_ENERGY_CATALOG_H
