#include "energy/dadiannao_catalog.h"

namespace isaac::energy {

Breakdown
DaDianNaoModel::chipBreakdown() const
{
    Breakdown b;
    b.items.push_back({"eDRAM",
                       std::to_string(static_cast<int>(edramMB)) +
                           " MB, 4 banks/tile",
                       edramPowerW * 1000.0, edramAreaMm2});
    b.items.push_back({"NFU", "x" + std::to_string(tiles),
                       nfuPowerW * 1000.0, nfuAreaMm2});
    b.items.push_back({"Global bus", "128 bit", busPowerW * 1000.0,
                       busAreaMm2});
    b.items.push_back({"HyperTransport",
                       std::to_string(htLinks) + " links",
                       htPowerW * 1000.0, htAreaMm2});
    return b;
}

double
DaDianNaoModel::chipPowerW() const
{
    return edramPowerW + nfuPowerW + busPowerW + htPowerW;
}

double
DaDianNaoModel::chipAreaMm2() const
{
    return edramAreaMm2 + nfuAreaMm2 + busAreaMm2 + htAreaMm2;
}

double
DaDianNaoModel::peakGops() const
{
    return 2.0 * macsPerCycle() * clockGHz;
}

double
DaDianNaoModel::edramGBps() const
{
    // 256 weights x 2 bytes per tile per cycle.
    return tiles * 256.0 * 2.0 * clockGHz;
}

double
DaDianNaoModel::nfuEnergyPerMacPj() const
{
    return nfuPowerW / (macsPerCycle() * clockGHz * 1e9) * 1e12;
}

double
DaDianNaoModel::edramEnergyPerBytePj() const
{
    return edramPowerW / (edramGBps() * 1e9) * 1e12;
}

double
DaDianNaoModel::ceGopsPerMm2() const
{
    return peakGops() / chipAreaMm2();
}

double
DaDianNaoModel::peGopsPerW() const
{
    return peakGops() / chipPowerW();
}

double
DaDianNaoModel::seMBPerMm2() const
{
    return edramMB / chipAreaMm2();
}

} // namespace isaac::energy
