#include "energy/dac_model.h"

#include <cmath>

#include "common/logging.h"

namespace isaac::energy {

double
DacModel::powerMw(int bits) const
{
    if (bits < 1)
        fatal("DacModel: resolution must be positive");
    return kRefPowerMw * std::pow(powerGrowthPerBit, bits - 1);
}

double
DacModel::areaMm2(int bits) const
{
    if (bits < 1)
        fatal("DacModel: resolution must be positive");
    return kRefAreaMm2 * std::pow(areaGrowthPerBit, bits - 1);
}

} // namespace isaac::energy
