/**
 * @file
 * The DaDianNao baseline's power/area/performance constants
 * (Table I, bottom; Chen et al. [9], scaled from 28 nm to 32 nm per
 * Sec. VII).
 *
 * The per-chip peak of 5.58 TOPS at 606 MHz implies 4608 MACs per
 * cycle per node (288 per tile), which together with the quoted
 * chip power (20.1 W) and area (88 mm^2) reproduces the paper's
 * Table IV row: CE 63.5 GOPS/mm^2, PE 286 GOPS/W, SE 0.41 MB/mm^2.
 */

#ifndef ISAAC_ENERGY_DADIANNAO_CATALOG_H
#define ISAAC_ENERGY_DADIANNAO_CATALOG_H

#include "energy/catalog.h"

namespace isaac::energy {

/** DaDianNao node (chip) model. */
struct DaDianNaoModel
{
    int tiles = 16;
    double clockGHz = 0.606;
    double macsPerTilePerCycle = 288.0;

    /**
     * NFU dataflow granularity: each cycle a tile's NFU multiplies
     * Ti inputs into Tn output neurons (16 x 16 in DaDianNao, with
     * extra adder lanes making up the 288-MAC Table I rate). Layers
     * whose dot length or output count does not fill a Tn x Ti tile
     * waste lanes; nfuCyclesForLayer() accounts for it.
     */
    int nfuTn = 16;
    int nfuTi = 16;

    double edramMB = 36.0;
    double edramPowerW = 4.8;
    double edramAreaMm2 = 33.22;

    double nfuPowerW = 4.9;
    double nfuAreaMm2 = 16.22;

    double busPowerW = 0.013;
    double busAreaMm2 = 15.7;

    double htPowerW = 10.4;
    double htAreaMm2 = 22.88;
    int htLinks = 4;
    double htLinkGBps = 6.4;

    /** Chip-level component breakdown (Table I bottom). */
    Breakdown chipBreakdown() const;

    double chipPowerW() const;
    double chipAreaMm2() const;

    /** Peak MACs per cycle for the whole node. */
    double macsPerCycle() const { return tiles * macsPerTilePerCycle; }

    /** Peak 16-bit GOPS (2 ops per MAC). */
    double peakGops() const;

    /** Aggregate off-chip bandwidth in GB/s. */
    double htGBps() const { return htLinks * htLinkGBps; }

    /**
     * Internal eDRAM bandwidth: every NFU consumes one 256-entry
     * row of 16-bit weights per cycle.
     */
    double edramGBps() const;

    /** Energy per MAC in pJ (NFU power at peak rate). */
    double nfuEnergyPerMacPj() const;

    /** eDRAM energy per byte in pJ at the design bandwidth. */
    double edramEnergyPerBytePj() const;

    /** @name Peak metrics (Table IV row 1). */
    /// @{
    double ceGopsPerMm2() const;
    double peGopsPerW() const;
    double seMBPerMm2() const;
    /// @}
};

} // namespace isaac::energy

#endif // ISAAC_ENERGY_DADIANNAO_CATALOG_H
