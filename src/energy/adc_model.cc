#include "energy/adc_model.h"

#include <cmath>

#include "common/logging.h"

namespace isaac::energy {

namespace {

/** Linear + exponential resolution scaling, normalized at 8 bits. */
double
scale(double linearFraction, int bits)
{
    const double lin = bits / AdcModel::kRefBits;
    const double exp = std::pow(2.0, bits - AdcModel::kRefBits);
    return linearFraction * lin + (1.0 - linearFraction) * exp;
}

} // namespace

double
AdcModel::powerMw(int bits, double gsps) const
{
    if (bits < 1)
        fatal("AdcModel: resolution must be positive");
    // Power scales linearly with the sampling rate.
    return kRefPowerMw * (gsps / kRefGsps) *
        scale(linearPowerFraction, bits);
}

double
AdcModel::areaMm2(int bits) const
{
    if (bits < 1)
        fatal("AdcModel: resolution must be positive");
    return kRefAreaMm2 * scale(linearAreaFraction, bits);
}

} // namespace isaac::energy
