#include "energy/adc_model.h"

#include <cmath>

#include "common/logging.h"

namespace isaac::energy {

namespace {

/** Linear + exponential resolution scaling, normalized at 8 bits. */
double
scale(double linearFraction, double bits)
{
    const double lin = bits / AdcModel::kRefBits;
    const double exp = std::pow(2.0, bits - AdcModel::kRefBits);
    return linearFraction * lin + (1.0 - linearFraction) * exp;
}

} // namespace

double
AdcModel::powerMw(int bits, double gsps) const
{
    if (bits < 1)
        fatal("AdcModel: resolution must be positive");
    // Power scales linearly with the sampling rate.
    return kRefPowerMw * (gsps / kRefGsps) *
        scale(linearPowerFraction, bits);
}

double
AdcModel::areaMm2(int bits) const
{
    if (bits < 1)
        fatal("AdcModel: resolution must be positive");
    return kRefAreaMm2 * scale(linearAreaFraction, bits);
}

double
AdcModel::energyPerSamplePj(double bits) const
{
    if (bits < 1.0)
        fatal("AdcModel: resolution must be positive");
    // mW / GSps = pJ per sample; the rate cancels out.
    return kRefPowerMw / kRefGsps * scale(linearPowerFraction, bits);
}

double
AdcModel::policyPowerMw(const xbar::AdcPolicy &policy, int capBits,
                        double gsps) const
{
    const int bits = policy.isAdaptive()
        ? policy.expectedBits(capBits)
        : capBits;
    double p = powerMw(bits, gsps);
    if (policy.isAdaptive())
        p *= 1.0 + kAdaptivePowerOverhead;
    return p;
}

double
AdcModel::policyAreaMm2(const xbar::AdcPolicy &policy,
                        int capBits) const
{
    double a = areaMm2(capBits);
    if (policy.isAdaptive())
        a *= 1.0 + kAdaptiveAreaOverhead;
    return a;
}

} // namespace isaac::energy
