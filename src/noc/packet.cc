#include "noc/packet.h"

#include "common/bits.h"
#include "common/rng.h"

namespace isaac::noc {

std::uint32_t
crc32(std::span<const std::uint8_t> bytes)
{
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::uint8_t b : bytes) {
        crc ^= b;
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
    return ~crc;
}

std::uint32_t
crc32Words(std::span<const Word> words)
{
    std::uint32_t crc = 0xFFFFFFFFu;
    for (Word w : words) {
        const auto u = static_cast<std::uint16_t>(w);
        for (std::uint8_t b :
             {static_cast<std::uint8_t>(u & 0xFF),
              static_cast<std::uint8_t>(u >> 8)}) {
            crc ^= b;
            for (int k = 0; k < 8; ++k)
                crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
        }
    }
    return ~crc;
}

TransferResult
sendTransfer(std::int64_t wordCount, std::uint64_t streamKey,
             const resilience::TransientSpec &spec, LinkState &link,
             resilience::TransientStats &stats)
{
    TransferResult out;
    if (wordCount <= 0)
        return out;
    const auto packets = static_cast<std::uint64_t>(
        ceilDiv(wordCount, spec.wordsPerPacket));
    out.packets = packets;
    if (!spec.nocEnabled() || link.dead) {
        // Exact channel (or one the caller is about to abandon):
        // every packet ships once, nothing to retry.
        stats.packetsSent += packets;
        return out;
    }
    for (std::uint64_t p = 0; p < packets; ++p) {
        for (int attempt = 0;; ++attempt) {
            ++stats.packetsSent;
            // Corruption is a pure function of
            // (seed, transfer, packet, attempt).
            Rng rng(spec.seed +
                    0x9E3779B97F4A7C15ull *
                        (streamKey * 0x100000001B3ull +
                         p * 0x10001ull +
                         static_cast<std::uint64_t>(attempt) + 1));
            const bool corrupted =
                rng.uniform01() < spec.packetCorruptRate;
            if (!corrupted)
                break; // CRC matched: delivered exactly.
            ++stats.packetsCorrupted;
            if (++link.corrupted > spec.linkRetryBudget &&
                !link.dead) {
                link.dead = true;
                out.linkDied = true;
                ++stats.deadLinks;
            }
            if (attempt >= spec.maxPacketRetries) {
                // Budget exhausted: the payload is re-sourced from
                // the producer (counted, data still exact).
                ++stats.packetsUncorrected;
                break;
            }
            ++stats.packetsRetransmitted;
            const std::uint64_t backoff =
                static_cast<std::uint64_t>(spec.packetBackoffCycles)
                << attempt;
            stats.packetBackoffCycles += backoff;
            out.backoffCycles += backoff;
            if (link.dead)
                break; // Remaining packets reroute after migration.
        }
        if (link.dead) {
            // The rest of the transfer ships on the migrated route
            // (exact channel from this transfer's point of view).
            stats.packetsSent += packets - p - 1;
            break;
        }
    }
    return out;
}

} // namespace isaac::noc
