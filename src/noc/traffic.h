/**
 * @file
 * Builds the c-mesh flow set implied by a placed pipeline and checks
 * static schedulability.
 *
 * In the steady-state pipeline each layer streams its outputs to the
 * tiles buffering the next layer's inputs. The flow rate of layer i
 * is outputsPerImage(i) * 2 bytes per pipeline interval. Layers
 * without their own tiles (pooling, SPP -- they execute on their
 * producer's tiles, Sec. VI) forward their producer's placement.
 */

#ifndef ISAAC_NOC_TRAFFIC_H
#define ISAAC_NOC_TRAFFIC_H

#include "nn/network.h"
#include "noc/cmesh.h"
#include "pipeline/placement.h"

namespace isaac::noc {

/** Results of routing one placed pipeline. */
struct TrafficReport
{
    /** Most-loaded mesh link, GB/s. */
    double maxLinkGBps = 0.0;
    /** Mesh link capacity. */
    double linkCapacityGBps = 0.0;
    /** Most-loaded chip's HyperTransport traffic, GB/s. */
    double maxHtGBps = 0.0;
    double htCapacityGBps = 0.0;
    /** Most-loaded single chip-to-chip HT link, GB/s. */
    double maxHtLinkGBps = 0.0;
    double htLinkCapacityGBps = 0.0;
    /** Largest single producer-layer aggregate rate, GB/s. */
    double maxLayerRateGBps = 0.0;
    /**
     * Largest per-tile egress bandwidth, GB/s: the quantity the
     * paper bounds at 3.2 GB/s when sizing the 32-bit 1 GHz links.
     */
    double maxTileEgressGBps = 0.0;
    /** Bandwidth-weighted hop count (on-chip energy proxy). */
    double hopGBps = 0.0;
    /**
     * C-mesh energy per image: hop traffic integrated over the
     * pipeline interval at the router's per-byte cost (Table I's
     * quarter-router power at the 4 GB/s link rate).
     */
    double nocEnergyPerImageJ = 0.0;
    /** A conflict-free static schedule exists. */
    bool schedulable = false;
};

/**
 * Route the inter-layer traffic of `plan` as placed by `placement`.
 */
TrafficReport analyzeTraffic(const nn::Network &net,
                             const pipeline::PipelinePlan &plan,
                             const pipeline::Placement &placement,
                             const arch::IsaacConfig &cfg);

} // namespace isaac::noc

#endif // ISAAC_NOC_TRAFFIC_H
