#include "noc/cmesh.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"

namespace isaac::noc {

CMesh::CMesh(const arch::IsaacConfig &cfg, int chips)
    : chips(chips), linkGBps(cfg.cmeshLinkGBps),
      htGBps(cfg.htLinks * cfg.htLinkGBps),
      htLinkGBps(cfg.htLinkGBps),
      htLoads(static_cast<std::size_t>(chips), 0.0)
{
    if (chips < 1)
        fatal("CMesh: need at least one chip");
    const auto [tc, tr] = arch::Chip::gridFor(cfg.tilesPerChip);
    // 2x2 concentration: four tiles per router (Table I's quarter
    // router per tile).
    rCols = static_cast<int>(ceilDiv(tc, 2));
    rRows = static_cast<int>(ceilDiv(tr, 2));
    // Board topology: chips in a near-square grid, one HT link per
    // direction (4 links, Table I).
    const auto [bc, br] = arch::Chip::gridFor(chips);
    bCols = bc;
    bRows = br;
}

void
CMesh::routeOnBoard(int fromChip, int toChip, double gbps)
{
    int x = fromChip % bCols;
    int y = fromChip / bCols;
    const int tx = toChip % bCols;
    const int ty = toChip / bCols;
    auto step = [&](int dx, int dy) {
        const int from = y * bCols + x;
        x += dx;
        y += dy;
        const int to = y * bCols + x;
        htLinkLoads[{from, to}] += gbps;
    };
    while (x != tx)
        step(x < tx ? 1 : -1, 0);
    while (y != ty)
        step(0, y < ty ? 1 : -1);
}

RouterCoord
CMesh::routerOf(const arch::TileCoord &tile) const
{
    if (tile.chip < 0 || tile.chip >= chips)
        fatal("CMesh::routerOf: tile chip out of range");
    return RouterCoord{tile.chip, tile.x / 2, tile.y / 2};
}

void
CMesh::routeOnChip(RouterCoord from, RouterCoord to, double gbps)
{
    // Dimension-ordered routing: X first, then Y.
    RouterCoord cur = from;
    auto step = [&](int dx, int dy) {
        RouterCoord next{cur.chip, cur.x + dx, cur.y + dy};
        loads[LinkId{cur, next}] += gbps;
        totalHopGBps += gbps;
        cur = next;
    };
    while (cur.x != to.x)
        step(cur.x < to.x ? 1 : -1, 0);
    while (cur.y != to.y)
        step(0, cur.y < to.y ? 1 : -1);
}

void
CMesh::addFlow(const arch::TileCoord &src, const arch::TileCoord &dst,
               double gbps)
{
    if (gbps < 0)
        fatal("CMesh::addFlow: negative bandwidth");
    const RouterCoord s = routerOf(src);
    const RouterCoord d = routerOf(dst);
    if (s.chip == d.chip) {
        routeOnChip(s, d, gbps);
        return;
    }
    // Cross-chip: hop to the source chip's I/O router, traverse the
    // HyperTransport fabric, continue from the target chip's I/O
    // router.
    const RouterCoord srcIo{s.chip, 0, 0};
    const RouterCoord dstIo{d.chip, 0, 0};
    routeOnChip(s, srcIo, gbps);
    htLoads[static_cast<std::size_t>(s.chip)] += gbps;
    htLoads[static_cast<std::size_t>(d.chip)] += gbps;
    routeOnBoard(s.chip, d.chip, gbps);
    routeOnChip(dstIo, d, gbps);
}

double
CMesh::maxLinkLoadGBps() const
{
    double worst = 0.0;
    for (const auto &[link, load] : loads)
        worst = std::max(worst, load);
    return worst;
}

double
CMesh::htLoadGBps(int chip) const
{
    if (chip < 0 || chip >= chips)
        fatal("CMesh::htLoadGBps: chip out of range");
    return htLoads[static_cast<std::size_t>(chip)];
}

double
CMesh::maxHtLoadGBps() const
{
    double worst = 0.0;
    for (double load : htLoads)
        worst = std::max(worst, load);
    return worst;
}

double
CMesh::maxHtLinkGBps() const
{
    double worst = 0.0;
    for (const auto &[link, load] : htLinkLoads)
        worst = std::max(worst, load);
    return worst;
}

bool
CMesh::schedulable() const
{
    if (maxLinkLoadGBps() > linkGBps + 1e-9)
        return false;
    if (maxHtLinkGBps() > htLinkGBps + 1e-9)
        return false;
    return maxHtLoadGBps() <= htGBps + 1e-9;
}

} // namespace isaac::noc
