#include "noc/traffic.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"
#include "pipeline/mapper.h"

namespace isaac::noc {

namespace {

/**
 * Flow fan-out of one producer tile into the consumer's tile list.
 *
 * Convolutional consumers partition their windows spatially, so
 * producer tile k's outputs are needed by the consumer tiles owning
 * the matching region plus a halo neighbour. Classifier consumers
 * need every input value in every column-segment group, i.e. in
 * about nc / rowSegments of their tiles.
 */
std::vector<std::size_t>
consumerTilesFor(std::size_t srcIdx, std::size_t ns, std::size_t nc,
                 bool classifier, std::int64_t rowSegments)
{
    std::vector<std::size_t> out;
    if (classifier) {
        const std::size_t fanout = static_cast<std::size_t>(
            std::max<std::int64_t>(
                1, static_cast<std::int64_t>(nc) /
                       std::max<std::int64_t>(1, rowSegments)));
        // The row segment matching this source region, replicated
        // across the column groups: evenly spaced tiles.
        for (std::size_t f = 0; f < fanout; ++f) {
            const std::size_t j =
                (srcIdx * nc / ns + f * std::max<std::size_t>(
                                            1, nc / fanout)) %
                nc;
            if (std::find(out.begin(), out.end(), j) == out.end())
                out.push_back(j);
        }
    } else {
        const std::size_t lo = srcIdx * nc / ns;
        std::size_t hi = (srcIdx + 1) * nc / ns;
        hi = std::min(nc - 1, hi + 1); // halo row overlap
        for (std::size_t j = lo; j <= hi; ++j)
            out.push_back(j);
    }
    return out;
}

} // namespace

TrafficReport
analyzeTraffic(const nn::Network &net,
               const pipeline::PipelinePlan &plan,
               const pipeline::Placement &placement,
               const arch::IsaacConfig &cfg)
{
    if (!plan.fits)
        fatal("analyzeTraffic: the plan does not fit its chips");

    CMesh mesh(cfg, plan.chips);
    const double intervalSec =
        plan.cyclesPerImage * cfg.cycleNs * 1e-9;

    TrafficReport report;
    report.linkCapacityGBps = mesh.linkCapacityGBps();
    report.htCapacityGBps = mesh.htCapacityGBps();

    // Source tiles per layer: dot layers own tiles; pass-through
    // layers (pooling/SPP) inherit their producer's.
    std::vector<std::vector<arch::TileCoord>> sources(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto lp = placement.layerPlacement(i);
        if (lp && !lp->tiles.empty())
            sources[i] = lp->tiles;
        else if (i > 0)
            sources[i] = sources[i - 1];
    }

    std::map<arch::TileCoord, double> egress;
    auto addEgress = [&](const arch::TileCoord &t, double gbps) {
        // TileCoord has no operator<; key by packed index.
        egress[t] += gbps;
    };

    for (std::size_t i = 0; i + 1 < net.size(); ++i) {
        const auto &producer = net.layer(i);
        const auto &consumer = net.layer(i + 1);
        const auto &srcTiles = sources[i];
        const auto dstPl = placement.layerPlacement(i + 1);
        if (!dstPl || dstPl->tiles.empty() || srcTiles.empty())
            continue; // consumer runs in place (pool/SPP)

        const double bytes =
            static_cast<double>(producer.outputsPerImage()) *
            kDataBytes;
        const double rateGBps = bytes / intervalSec / 1e9;
        report.maxLayerRateGBps =
            std::max(report.maxLayerRateGBps, rateGBps);

        const auto fp =
            pipeline::layerFootprint(consumer, i + 1, cfg);
        const double perSrc = rateGBps / srcTiles.size();
        const bool classifier =
            consumer.kind == nn::LayerKind::Classifier;
        for (std::size_t k = 0; k < srcTiles.size(); ++k) {
            const auto dsts = consumerTilesFor(
                k, srcTiles.size(), dstPl->tiles.size(), classifier,
                fp.rowSegments);
            const double perFlow = perSrc / dsts.size();
            double outOfTile = 0.0;
            for (std::size_t j : dsts) {
                const auto &dst = dstPl->tiles[j];
                mesh.addFlow(srcTiles[k], dst, perFlow);
                if (!(dst == srcTiles[k]))
                    outOfTile += perFlow;
            }
            addEgress(srcTiles[k], outOfTile);
        }
    }

    for (const auto &[tile, gbps] : egress) {
        report.maxTileEgressGBps =
            std::max(report.maxTileEgressGBps, gbps);
    }
    report.maxLinkGBps = mesh.maxLinkLoadGBps();
    report.maxHtGBps = mesh.maxHtLoadGBps();
    report.maxHtLinkGBps = mesh.maxHtLinkGBps();
    report.htLinkCapacityGBps = mesh.htLinkCapacityGBps();
    report.hopGBps = mesh.hopGBps();
    // Router energy: each tile's quarter-router (10.5 mW) moves up
    // to one link's 4 GB/s -> ~2.6 pJ per byte-hop.
    const double routerPjPerByte =
        10.5e-3 / (cfg.cmeshLinkGBps * 1e9) * 1e12;
    report.nocEnergyPerImageJ = report.hopGBps * 1e9 * intervalSec *
        routerPjPerByte * 1e-12;
    report.schedulable = mesh.schedulable();
    return report;
}

} // namespace isaac::noc
