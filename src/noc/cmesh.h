/**
 * @file
 * The on-chip concentrated mesh (c-mesh) and its static routing.
 *
 * ISAAC's tiles connect through a c-mesh whose routers are shared by
 * four tiles (Table I charges each tile a quarter router). Data
 * transfers are statically scheduled and guaranteed conflict-free
 * (Sec. VI); this module builds the flow set implied by a placed
 * pipeline, routes it with dimension-ordered (XY) routing, and
 * checks that every link's aggregate bandwidth fits its capacity --
 * the condition under which a conflict-free TDM schedule exists.
 * Cross-chip flows ride the HyperTransport links via each chip's
 * I/O router at mesh coordinate (0, 0).
 */

#ifndef ISAAC_NOC_CMESH_H
#define ISAAC_NOC_CMESH_H

#include <map>
#include <vector>

#include "arch/chip.h"

namespace isaac::noc {

/** A router position on one chip's mesh. */
struct RouterCoord
{
    int chip = 0;
    int x = 0;
    int y = 0;

    auto operator<=>(const RouterCoord &) const = default;
};

/** A directed mesh link: from a router toward a neighbour. */
struct LinkId
{
    RouterCoord from;
    RouterCoord to;

    auto operator<=>(const LinkId &) const = default;
};

/** The concentrated mesh of one or more chips. */
class CMesh
{
  public:
    /**
     * @param cfg    supplies tile grid shape and link bandwidths
     * @param chips  chips participating (HT connects them)
     */
    CMesh(const arch::IsaacConfig &cfg, int chips);

    /** Router serving a tile (2x2 concentration). */
    RouterCoord routerOf(const arch::TileCoord &tile) const;

    /** Router-grid dimensions. */
    int routerCols() const { return rCols; }
    int routerRows() const { return rRows; }

    /**
     * Add a flow of `gbps` between two tiles; the on-chip hops are
     * routed XY and accumulated per link, cross-chip traffic is
     * accumulated per chip pair on the HT interface.
     */
    void addFlow(const arch::TileCoord &src,
                 const arch::TileCoord &dst, double gbps);

    /** Per-link accumulated loads. */
    const std::map<LinkId, double> &linkLoads() const
    {
        return loads;
    }

    /** The most loaded mesh link, GB/s. */
    double maxLinkLoadGBps() const;

    /** Aggregate HT traffic leaving/entering a chip, GB/s. */
    double htLoadGBps(int chip) const;

    /** The most loaded chip's HT traffic. */
    double maxHtLoadGBps() const;

    /**
     * The most loaded single chip-to-chip HT link, GB/s. Chips form
     * a near-square board grid with one link per direction
     * (DaDianNao's HT topology, reused by ISAAC); inter-chip flows
     * route XY across it and multi-hop traffic loads every link it
     * crosses.
     */
    double maxHtLinkGBps() const;

    /** Capacity of one HT link. */
    double htLinkCapacityGBps() const { return htLinkGBps; }

    /** Board grid dimensions (cols x rows of chips). */
    int boardCols() const { return bCols; }
    int boardRows() const { return bRows; }

    /** Mesh link capacity (32-bit at 1 GHz by default). */
    double linkCapacityGBps() const { return linkGBps; }

    /** HT capacity per chip. */
    double htCapacityGBps() const { return htGBps; }

    /**
     * True iff a conflict-free static (TDM) schedule exists: every
     * mesh link and every HT interface is within capacity.
     */
    bool schedulable() const;

    /** Total hop count weighted by bandwidth (energy proxy). */
    double hopGBps() const { return totalHopGBps; }

  private:
    void routeOnChip(RouterCoord from, RouterCoord to, double gbps);
    void routeOnBoard(int fromChip, int toChip, double gbps);

    int rCols;
    int rRows;
    int chips;
    int bCols;
    int bRows;
    double linkGBps;
    double htGBps;
    double htLinkGBps;
    std::map<LinkId, double> loads;
    /** Directed chip-to-chip link loads keyed by (from, to). */
    std::map<std::pair<int, int>, double> htLinkLoads;
    std::vector<double> htLoads;
    double totalHopGBps = 0.0;
};

} // namespace isaac::noc

#endif // ISAAC_NOC_CMESH_H
