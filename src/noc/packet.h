/**
 * @file
 * CRC-tagged packet transport for the c-mesh and HyperTransport
 * links.
 *
 * Inter-tile activation traffic travels in fixed-size packets
 * (TransientSpec::wordsPerPacket 16-bit words) carrying a CRC32 tag.
 * A receiver that sees a CRC mismatch drops the packet and the
 * sender retransmits after an exponential backoff
 * (packetBackoffCycles << attempt), up to maxPacketRetries times.
 * Because corruption is *detected* (never silently consumed), every
 * delivered packet is exact; a packet that exhausts its retries is
 * counted uncorrected and the payload is re-sourced from the
 * producer, so the data path stays bit-exact either way.
 *
 * Each link additionally keeps a corruption budget
 * (linkRetryBudget): a link that accumulates more corrupted
 * transmissions than the budget is declared dead, and the chip
 * simulator migrates its traffic exactly like a dead tile (PR 2's
 * tile-kill path).
 *
 * Determinism: the corruption draw for (transfer, packet, attempt)
 * is a pure function of the spec seed and those logical coordinates,
 * so any execution order reproduces the same corruption pattern,
 * retry counts, and backoff cycles.
 */

#ifndef ISAAC_NOC_PACKET_H
#define ISAAC_NOC_PACKET_H

#include <cstdint>
#include <span>

#include "common/types.h"
#include "resilience/health.h"

namespace isaac::noc {

/** CRC32 (reflected, poly 0xEDB88320) over a byte span. */
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/** CRC32 of a 16-bit word payload (the packet tag). */
std::uint32_t crc32Words(std::span<const Word> words);

/** Per-link protocol state (corruption budget, liveness). */
struct LinkState
{
    int corrupted = 0; ///< Corrupted transmissions seen so far.
    bool dead = false; ///< Budget exhausted: traffic must migrate.
};

/** Outcome of shipping one logical transfer over a link. */
struct TransferResult
{
    std::uint64_t packets = 0;       ///< Payload packets shipped.
    std::uint64_t backoffCycles = 0; ///< Retransmit stall cycles.
    bool linkDied = false; ///< Budget ran out during this transfer.
};

/**
 * Ship `wordCount` words over `link` as CRC-tagged packets with
 * retransmit-and-backoff, accumulating into `stats`. `streamKey`
 * identifies the logical transfer; the corruption draw for each
 * (packet, attempt) is keyed by it. A dead link still reports its
 * packet count (the caller migrates and re-sends elsewhere) but
 * injects no further corruption.
 */
TransferResult sendTransfer(std::int64_t wordCount,
                            std::uint64_t streamKey,
                            const resilience::TransientSpec &spec,
                            LinkState &link,
                            resilience::TransientStats &stats);

} // namespace isaac::noc

#endif // ISAAC_NOC_PACKET_H
