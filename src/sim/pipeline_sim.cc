#include "sim/pipeline_sim.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "pipeline/execution_plan.h"

namespace isaac::sim {

namespace {

/** Replicated IMA groups of one layer: a min-heap of free times. */
class ServerPool
{
  public:
    explicit ServerPool(std::int64_t servers)
    {
        if (servers < 1)
            fatal("ServerPool: need at least one server");
        // Cap the modelled parallelism: beyond a few thousand
        // servers the pool is never the bottleneck for the small
        // networks this simulator targets.
        const auto n = static_cast<std::size_t>(
            std::min<std::int64_t>(servers, 1 << 14));
        for (std::size_t i = 0; i < n; ++i)
            heap.push(0);
    }

    /** Start a `busy`-cycle op at or after `ready`; returns start. */
    Cycle
    dispatch(Cycle ready, Cycle busy)
    {
        Cycle free = heap.top();
        heap.pop();
        const Cycle start = std::max(free, ready);
        heap.push(start + busy);
        return start;
    }

  private:
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<Cycle>>
        heap;
};

} // namespace

PipelineSimResult
simulatePipeline(const nn::Network &net,
                 const pipeline::PipelinePlan &plan, int images,
                 int tailCycles, int threads)
{
    if (!plan.fits)
        fatal("simulatePipeline: the plan does not fit its chips");
    if (images < 1)
        fatal("simulatePipeline: need at least one image");

    const int phases = 16; // data path width / 1-bit DAC

    // Per-layer server pools built from the granted replication.
    std::vector<ServerPool> pools;
    pools.reserve(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &lp = plan.layers[i];
        const double rate = lp.isDot ? lp.effectiveRate : 1.0;
        pools.emplace_back(std::max<std::int64_t>(
            1, static_cast<std::int64_t>(rate)));
    }

    PipelineSimResult result;
    result.analyticInterval = plan.cyclesPerImage;

    // The lowered task graph orders the compute steps and owns the
    // window-dependency geometry (windowReadyTimes).
    const auto ir = pipeline::ExecutionPlan::lower(net, plan);

    // completion[i][w]: cycle when window w of layer i finished for
    // the current image (layer outputs, indexed ox * outNy + oy).
    std::vector<std::vector<Cycle>> completion(net.size());

    for (int img = 0; img < images; ++img) {
        for (const int nodeId : ir.computeOrder()) {
            const auto &node = ir.node(nodeId);
            const std::size_t i = node.layer;
            const auto &l = net.layer(i);
            const int outNx = l.outNx();
            const int outNy = l.outNy();
            const auto windows =
                static_cast<std::size_t>(outNx) * outNy;
            std::vector<Cycle> done(windows, 0);

            // Precompute each window's latest-arriving input in
            // parallel (a pure reduction over the previous layer);
            // dispatch stays serial so the server schedule — and
            // thus every reported cycle — is unchanged.
            const std::vector<Cycle> readyAt = ir.windowReadyTimes(
                node,
                i > 0 ? std::span<const Cycle>(completion[i - 1])
                      : std::span<const Cycle>(),
                threads);

            for (int ox = 0; ox < outNx; ++ox) {
                for (int oy = 0; oy < outNy; ++oy) {
                    const Cycle ready = readyAt[
                        static_cast<std::size_t>(ox) * outNy + oy];
                    Cycle finish;
                    if (l.isDotProduct()) {
                        const Cycle start = pools[i].dispatch(
                            ready, phases);
                        finish = start + phases + tailCycles;
                    } else {
                        // Pool/SPP: a comparator pass, single cycle.
                        finish = ready + 1;
                    }
                    done[static_cast<std::size_t>(ox * outNy + oy)] =
                        finish;
                }
            }
            completion[i] = std::move(done);
        }

        Cycle imageDone = 0;
        for (Cycle c : completion.back())
            imageDone = std::max(imageDone, c);
        result.imageDone.push_back(imageDone);
    }

    result.firstImageDone = result.imageDone.front();
    result.lastImageDone = result.imageDone.back();
    if (images > 1) {
        result.measuredInterval =
            static_cast<double>(result.lastImageDone -
                                result.firstImageDone) /
            (images - 1);
    }
    return result;
}

} // namespace isaac::sim
