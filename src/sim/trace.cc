#include "sim/trace.h"

#include "common/logging.h"

namespace isaac::sim {

SlotResource::SlotResource(int slotsPerCycle) : slots(slotsPerCycle)
{
    if (slotsPerCycle < 1)
        fatal("SlotResource: need at least one slot per cycle");
}

Cycle
SlotResource::reserve(Cycle earliest)
{
    Cycle cycle = earliest;
    while (true) {
        const auto it = used.find(cycle);
        if (it == used.end() || it->second < slots)
            break;
        ++cycle;
    }
    ++used[cycle];
    ++reservations;
    // Garbage-collect long-past entries to bound memory on long runs.
    if (used.size() > 1u << 20)
        used.erase(used.begin(),
                   used.lower_bound(cycle > (1u << 18)
                                        ? cycle - (1u << 18)
                                        : 0));
    return cycle;
}

} // namespace isaac::sim
