#include "sim/timeline.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace isaac::sim {

std::string
renderTimeline(const std::vector<OpTimeline> &ops, int maxCycles)
{
    if (ops.empty())
        fatal("renderTimeline: no operations to draw");

    Cycle last = 0;
    for (const auto &op : ops)
        last = std::max(last, op.edramWrite);
    int width = static_cast<int>(last) + 1;
    if (maxCycles > 0)
        width = std::min(width, maxCycles);

    std::string out = "cycle      ";
    for (int c = 1; c <= width; ++c)
        out += c % 10 == 0 ? '0' : (c % 5 == 0 ? '5' : '.');
    out += '\n';

    int index = 0;
    for (const auto &op : ops) {
        std::string row(static_cast<std::size_t>(width), ' ');
        auto mark = [&](Cycle cycle, char glyph) {
            if (cycle >= 1 && cycle <= static_cast<Cycle>(width))
                row[static_cast<std::size_t>(cycle - 1)] = glyph;
        };
        mark(op.edramRead, 'E');
        for (Cycle c = op.xbarStart; c < op.adcDone; ++c)
            mark(c, 'X');
        mark(op.adcDone, 'A');
        mark(op.saDone, 'S');
        mark(op.orTransfer, 'O');
        mark(op.sigmoid, 'V');
        mark(op.edramWrite, 'W');

        char label[16];
        std::snprintf(label, sizeof(label), "op%-2d ima%-2d ",
                      index++, op.ima);
        out += label + row + '\n';
    }
    return out;
}

} // namespace isaac::sim
