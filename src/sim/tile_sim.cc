#include "sim/tile_sim.h"

#include <algorithm>

#include "common/logging.h"

namespace isaac::sim {

TileSim::TileSim(const arch::IsaacConfig &cfg) : cfg(cfg)
{
    cfg.validate();
}

std::vector<OpTimeline>
TileSim::run(const std::vector<TileOp> &ops)
{
    const int phases = cfg.engine.phases();

    // Shared per-tile resources. The 256-bit bus at 1.2 GHz moves
    // 3.84 KB per 100 ns cycle: three 1 KB IR-copy slots.
    SlotResource edram(cfg.edramBanks); // one access per bank-cycle
    SlotResource bus(3);                // eDRAM-to-IMA shared bus
    SlotResource sigmoid(2);            // two sigmoid units (Table I)
    // Each IMA's crossbars run one op at a time.
    std::vector<Cycle> imaFree(
        static_cast<std::size_t>(cfg.imasPerTile), 0);

    std::vector<OpTimeline> out;
    out.reserve(ops.size());
    for (const auto &op : ops) {
        if (op.ima < 0 || op.ima >= cfg.imasPerTile)
            fatal("TileSim: op targets a nonexistent IMA");
        OpTimeline t;
        t.ima = op.ima;
        t.ready = op.ready;

        // Stage 1: eDRAM read + IR copy (needs a bank and the bus).
        Cycle start = std::max(op.ready, Cycle{0});
        // The IMA must also be close to free: its IR is
        // double-buffered, so the read may overlap the tail of the
        // previous op, but the crossbar itself cannot be shared.
        const auto ima = static_cast<std::size_t>(op.ima);
        if (imaFree[ima] > phases + start)
            start = imaFree[ima] - phases;
        t.edramRead = edram.reserve(bus.reserve(start));
        _trace.edramReadBytes += static_cast<std::uint64_t>(
            op.inputBytes);
        _trace.busBytes += static_cast<std::uint64_t>(op.inputBytes);

        // Stages 2..17: crossbar read cycles.
        t.xbarStart = std::max(t.edramRead + 1, imaFree[ima]);
        imaFree[ima] = t.xbarStart + phases;
        _trace.xbarReads += static_cast<std::uint64_t>(phases) *
            cfg.xbarsPerIma;
        // The ADC drains each cycle's samples one cycle behind; the
        // shift-and-add merges one further cycle behind.
        t.adcDone = t.xbarStart + phases;
        t.saDone = t.adcDone + 1;
        _trace.adcSamples += static_cast<std::uint64_t>(phases) *
            cfg.xbarsPerIma * (cfg.engine.cols + 1);
        _trace.shiftAdds += static_cast<std::uint64_t>(phases) *
            cfg.xbarsPerIma * (cfg.engine.cols + 1);

        // IMA OR -> central OR over the shared bus.
        t.orTransfer = bus.reserve(t.saDone + 1);
        _trace.busBytes += static_cast<std::uint64_t>(
            op.outputValues * kDataBytes);
        _trace.orWrites += static_cast<std::uint64_t>(
            op.outputValues);

        // Sigmoid, then the eDRAM write for the next layer.
        t.sigmoid = sigmoid.reserve(t.orTransfer + 1);
        _trace.sigmoidOps += static_cast<std::uint64_t>(
            op.outputValues);
        t.edramWrite = edram.reserve(t.sigmoid + 1);
        _trace.edramWriteBytes += static_cast<std::uint64_t>(
            op.outputValues * kDataBytes);

        out.push_back(t);
    }
    return out;
}

} // namespace isaac::sim
