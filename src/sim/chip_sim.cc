#include "sim/chip_sim.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "arch/edram.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "noc/packet.h"
#include "pipeline/execution_plan.h"
#include "pipeline/mapper.h"

namespace isaac::sim {

namespace {

/** Shared per-tile resources. */
struct TileRes
{
    TileRes(int edramBanks)
        : edram(edramBanks), bus(3)
    {
    }

    SlotResource edram;
    SlotResource bus;
};

/** One schedulable IMA slice owned by a layer. */
struct Server
{
    arch::TileCoord tile;
    Cycle freeAt = 0;
    Cycle busyCycles = 0;
};

/** Min-heap ordering of servers by availability. */
struct ServerOrder
{
    bool
    operator()(const Server *a, const Server *b) const
    {
        return a->freeAt > b->freeAt;
    }
};

} // namespace

ChipSimResult
simulateChip(const nn::Network &net,
             const pipeline::PipelinePlan &plan,
             const pipeline::Placement &placement,
             const arch::IsaacConfig &cfg, int images,
             int tailCycles)
{
    return simulateChip(net, plan, placement, cfg, images,
                        FailureSpec{}, tailCycles);
}

ChipSimResult
simulateChip(const nn::Network &net,
             const pipeline::PipelinePlan &plan,
             const pipeline::Placement &placement,
             const arch::IsaacConfig &cfg, int images,
             const FailureSpec &failures, int tailCycles)
{
    if (!plan.fits)
        fatal("simulateChip: the plan does not fit its chips");
    if (images < 1)
        fatal("simulateChip: need at least one image");

    const int phases = cfg.engine.phases();
    const std::set<arch::TileCoord> dead(failures.deadTiles.begin(),
                                         failures.deadTiles.end());

    // Survivors across the whole placement, in layer order: the
    // last-resort migration targets for layers that lost every tile.
    std::vector<arch::TileCoord> anySurvivor;
    if (!dead.empty()) {
        std::set<arch::TileCoord> seen;
        for (std::size_t i = 0; i < net.size(); ++i) {
            const auto place = placement.layerPlacement(i);
            if (!place)
                continue;
            for (const auto &coord : place->tiles)
                if (!dead.count(coord) && seen.insert(coord).second)
                    anySurvivor.push_back(coord);
        }
    }

    ChipSimResult result;
    result.analyticInterval = plan.cyclesPerImage;
    result.deadTiles = static_cast<int>(dead.size());

    // One server per weight copy (an IMA can run several copies
    // concurrently when a copy spans fewer arrays than the ADCs can
    // drain); each copy is pinned to one of the layer's placed
    // tiles round-robin so it contends for that tile's eDRAM/bus.
    // Copies landing on a dead tile migrate round-robin onto the
    // layer's surviving tiles, which now serve more work each.
    std::map<arch::TileCoord, TileRes> tiles;
    std::vector<std::vector<Server>> servers(net.size());
    std::vector<std::vector<arch::TileCoord>> aliveTiles(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &lp = plan.layers[i];
        if (!lp.isDot)
            continue;
        const auto place = placement.layerPlacement(i);
        if (!place || place->tiles.empty())
            fatal("simulateChip: layer missing from the placement");
        std::vector<arch::TileCoord> alive;
        for (const auto &coord : place->tiles)
            if (!dead.count(coord))
                alive.push_back(coord);
        if (alive.empty())
            alive = anySurvivor;
        if (alive.empty())
            fatal("simulateChip: no placed tile survives the "
                  "failure spec");
        aliveTiles[i] = alive;
        const auto fp = pipeline::layerFootprint(net.layer(i), i,
                                                 cfg);
        std::int64_t copies = net.layer(i).privateKernel
            ? fp.inherentParallelism * lp.replication
            : lp.replication;
        copies = std::min<std::int64_t>(copies, 1 << 14);
        std::int64_t migrated = 0;
        for (std::int64_t c = 0; c < copies; ++c) {
            auto coord = place->tiles[static_cast<std::size_t>(
                c % static_cast<std::int64_t>(
                        place->tiles.size()))];
            if (dead.count(coord)) {
                coord = alive[static_cast<std::size_t>(
                    migrated++ %
                    static_cast<std::int64_t>(alive.size()))];
                ++result.remappedServers;
            }
            servers[i].push_back(Server{coord, 0, 0});
            tiles.emplace(coord, TileRes(cfg.edramBanks));
        }
    }

    // Per-layer min-heaps over the servers.
    std::vector<std::priority_queue<Server *,
                                    std::vector<Server *>,
                                    ServerOrder>>
        pools(net.size());
    for (std::size_t i = 0; i < net.size(); ++i)
        for (auto &s : servers[i])
            pools[i].push(&s);

    std::vector<std::vector<Cycle>> completion(net.size());
    Cycle horizon = 0;

    // The lowered task graph orders the compute steps and owns the
    // window-dependency geometry (windowReadyTimes).
    const auto ir = pipeline::ExecutionPlan::lower(net, plan);

    // Transient-error machinery: one CRC-protocol state per tile's
    // c-mesh link, and a scratch buffer for the per-window eDRAM ECC
    // pass (the timing model has no payload data; flip draws do not
    // depend on word values). The dispatch loop is serial, so the
    // per-link budgets evolve deterministically.
    const auto &tspec = failures.transient;
    std::map<arch::TileCoord, noc::LinkState> links;
    std::vector<Word> eccScratch;

    for (int img = 0; img < images; ++img) {
        for (const int nodeId : ir.computeOrder()) {
            const auto &node = ir.node(nodeId);
            const std::size_t i = node.layer;
            const auto &l = net.layer(i);
            const int outNx = l.outNx();
            const int outNy = l.outNy();
            std::vector<Cycle> done(
                static_cast<std::size_t>(outNx) * outNy, 0);

            // The ready time of each window is a pure max-reduction
            // over the previous layer's completion rectangle, so the
            // IR precomputes all of them in parallel; dispatch below
            // stays serial in window order, keeping the resource
            // schedule (and every result field) bit-identical.
            const std::vector<Cycle> readyAt = ir.windowReadyTimes(
                node,
                i > 0 ? std::span<const Cycle>(completion[i - 1])
                      : std::span<const Cycle>(),
                cfg.threads());

            for (int ox = 0; ox < outNx; ++ox) {
                for (int oy = 0; oy < outNy; ++oy) {
                    const Cycle ready = readyAt[
                        static_cast<std::size_t>(ox) * outNy + oy];

                    Cycle finish;
                    if (l.isDotProduct() && !pools[i].empty()) {
                        Server *srv = pools[i].top();
                        pools[i].pop();
                        auto &res = tiles.at(srv->tile);

                        // eDRAM read + IR copy over the bus, then
                        // the 16 crossbar cycles, then the digital
                        // tail with its eDRAM write.
                        const Cycle want =
                            std::max(ready, srv->freeAt);
                        const Cycle read = res.edram.reserve(
                            res.bus.reserve(want));
                        const Cycle xbarStart =
                            std::max(read + 1, srv->freeAt);
                        srv->freeAt = xbarStart + phases;
                        srv->busyCycles += phases;
                        const Cycle tailStart =
                            res.bus.reserve(xbarStart + phases + 2);
                        finish = res.edram.reserve(tailStart + 1) +
                            static_cast<Cycle>(
                                std::max(0, tailCycles - 4));
                        pools[i].push(srv);

                        const auto fp = pipeline::layerFootprint(
                            l, i, cfg);
                        const std::uint64_t arrays =
                            static_cast<std::uint64_t>(
                                fp.rowSegments * fp.colSegments);
                        result.trace.xbarReads +=
                            arrays * phases;
                        result.trace.adcSamples += arrays * phases *
                            (cfg.engine.cols + 1);
                        result.trace.edramReadBytes +=
                            static_cast<std::uint64_t>(
                                l.dotLength()) *
                            kDataBytes;
                        result.trace.edramWriteBytes +=
                            static_cast<std::uint64_t>(l.no) *
                            kDataBytes;
                        result.trace.busBytes +=
                            static_cast<std::uint64_t>(
                                l.dotLength() + l.no) *
                            kDataBytes;
                        if (l.activation != nn::Activation::None)
                            result.trace.sigmoidOps +=
                                static_cast<std::uint64_t>(l.no);

                        if (tspec.anyEnabled()) {
                            // Soft errors on this window: ECC events
                            // while its output sits in the eDRAM,
                            // then the CRC packet protocol on the
                            // c-mesh hop to the consumer. Recovery
                            // cycles push the completion time out.
                            resilience::TransientStats win;
                            const std::uint64_t key =
                                (static_cast<std::uint64_t>(img)
                                 << 40) ^
                                (static_cast<std::uint64_t>(i)
                                 << 24) ^
                                (static_cast<std::uint64_t>(
                                     ox * outNy + oy)
                                 << 2);
                            if (tspec.eccEnabled()) {
                                eccScratch.assign(
                                    static_cast<std::size_t>(l.no),
                                    0);
                                arch::protectedPass(
                                    eccScratch,
                                    tspec.edramFlipRate, key,
                                    tspec, win);
                            }
                            if (tspec.nocEnabled()) {
                                auto &link = links[srv->tile];
                                const auto tr = noc::sendTransfer(
                                    l.no, key | 1u, tspec, link,
                                    win);
                                if (tr.linkDied) {
                                    // The link's corruption budget
                                    // ran out: migrate this server
                                    // onto a surviving tile with a
                                    // healthy link (the dead-tile
                                    // degradation path).
                                    for (const auto &coord :
                                         aliveTiles[i]) {
                                        if (coord == srv->tile ||
                                            links[coord].dead)
                                            continue;
                                        srv->tile = coord;
                                        tiles.emplace(
                                            coord,
                                            TileRes(
                                                cfg.edramBanks));
                                        ++result.remappedServers;
                                        break;
                                    }
                                }
                            }
                            finish += static_cast<Cycle>(
                                win.recoveryCycles());
                            result.transient.merge(win);
                        }
                    } else {
                        // Pooling/SPP: comparator pass.
                        finish = ready + 1;
                        result.trace.maxPoolValues +=
                            static_cast<std::uint64_t>(l.kx) * l.ky;
                    }
                    done[static_cast<std::size_t>(ox * outNy + oy)] =
                        finish;
                }
            }
            completion[i] = std::move(done);
        }
        Cycle imageDone = 0;
        for (Cycle c : completion.back())
            imageDone = std::max(imageDone, c);
        result.imageDone.push_back(imageDone);
        horizon = std::max(horizon, imageDone);
    }

    result.firstImageDone = result.imageDone.front();
    result.lastImageDone = result.imageDone.back();
    if (images > 1) {
        result.measuredInterval =
            static_cast<double>(result.lastImageDone -
                                result.firstImageDone) /
            (images - 1);
    }
    if (horizon > 0) {
        for (const auto &layerServers : servers) {
            for (const auto &s : layerServers) {
                result.maxImaUtilization = std::max(
                    result.maxImaUtilization,
                    static_cast<double>(s.busyCycles) / horizon);
            }
        }
    }
    return result;
}

} // namespace isaac::sim
