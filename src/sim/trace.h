/**
 * @file
 * Activity counters and slot-based resource booking for the
 * cycle-level simulators.
 */

#ifndef ISAAC_SIM_TRACE_H
#define ISAAC_SIM_TRACE_H

#include <cstdint>
#include <map>

#include "common/types.h"

namespace isaac::sim {

/** Switching-activity counters accumulated by a simulation. */
struct Trace
{
    std::uint64_t edramReadBytes = 0;
    std::uint64_t edramWriteBytes = 0;
    std::uint64_t busBytes = 0;
    std::uint64_t xbarReads = 0;
    std::uint64_t adcSamples = 0;
    std::uint64_t shiftAdds = 0;
    std::uint64_t sigmoidOps = 0;
    std::uint64_t maxPoolValues = 0;
    std::uint64_t orWrites = 0;

    void
    merge(const Trace &other)
    {
        edramReadBytes += other.edramReadBytes;
        edramWriteBytes += other.edramWriteBytes;
        busBytes += other.busBytes;
        xbarReads += other.xbarReads;
        adcSamples += other.adcSamples;
        shiftAdds += other.shiftAdds;
        sigmoidOps += other.sigmoidOps;
        maxPoolValues += other.maxPoolValues;
        orWrites += other.orWrites;
    }
};

/**
 * A resource with a fixed number of slots per cycle (an eDRAM with N
 * banks, a bus, a pair of sigmoid units). reserve() books the
 * earliest free slot at or after the requested cycle.
 */
class SlotResource
{
  public:
    explicit SlotResource(int slotsPerCycle);

    /** Book one slot at the earliest cycle >= `earliest`. */
    Cycle reserve(Cycle earliest);

    /** Slots booked so far (for utilization checks). */
    std::uint64_t totalReservations() const { return reservations; }

  private:
    int slots;
    std::map<Cycle, int> used;
    std::uint64_t reservations = 0;
};

} // namespace isaac::sim

#endif // ISAAC_SIM_TRACE_H
