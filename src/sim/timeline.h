/**
 * @file
 * ASCII timeline rendering of intra-tile operation schedules --
 * regenerates Fig. 4b ("Example of one operation in layer i flowing
 * through its pipeline") for arbitrary simulated op streams.
 */

#ifndef ISAAC_SIM_TIMELINE_H
#define ISAAC_SIM_TIMELINE_H

#include <string>
#include <vector>

#include "sim/tile_sim.h"

namespace isaac::sim {

/**
 * Render op timelines as a Gantt chart: one row per pipeline stage
 * per op, columns are cycles. Stage glyphs: E = eDRAM read + IR
 * copy, X = crossbar cycles, A = final ADC drain, S = shift-and-add,
 * O = OR transfer, V = sigmoid, W = eDRAM write.
 *
 * @param maxCycles  clip the chart width (0 = fit to the ops).
 */
std::string renderTimeline(const std::vector<OpTimeline> &ops,
                           int maxCycles = 0);

} // namespace isaac::sim

#endif // ISAAC_SIM_TIMELINE_H
