/**
 * @file
 * Window-level simulation of the inter-layer pipeline (Sec. IV).
 *
 * Replays the Fig. 3 data flow at the granularity of kernel-window
 * operations: a layer's window fires as soon as (a) every input
 * value it covers has been produced by the previous layer and (b)
 * one of the layer's replicated IMA groups is free. The simulator
 * measures pipeline fill latency and the steady-state image interval
 * and cross-checks the analytic model of pipeline/perf.h.
 */

#ifndef ISAAC_SIM_PIPELINE_SIM_H
#define ISAAC_SIM_PIPELINE_SIM_H

#include "nn/network.h"
#include "pipeline/replication.h"
#include "sim/trace.h"

namespace isaac::sim {

/** Results of a pipeline simulation run. */
struct PipelineSimResult
{
    /** Cycle when the first image's final output completed. */
    Cycle firstImageDone = 0;
    /** Cycle when the last image's final output completed. */
    Cycle lastImageDone = 0;
    /** Steady-state cycles per image (measured between images). */
    double measuredInterval = 0.0;
    /** The analytic model's prediction for the same plan. */
    double analyticInterval = 0.0;
    /** Per-image completion cycles. */
    std::vector<Cycle> imageDone;
};

/**
 * Simulate `images` consecutive inferences through the pipeline
 * plan. Intended for small networks (the per-window bookkeeping is
 * O(total windows x images)).
 *
 * @param tailCycles  digital pipeline tail per op (ADC drain, S+A,
 *                    OR transfer, sigmoid, eDRAM write: 6 cycles in
 *                    the Fig. 4b schedule).
 * @param threads     worker threads for the window-ready precompute
 *                    (0 = one per hardware thread, 1 = serial); the
 *                    schedule itself is dispatched serially, so the
 *                    result is identical at any setting.
 */
PipelineSimResult
simulatePipeline(const nn::Network &net,
                 const pipeline::PipelinePlan &plan, int images,
                 int tailCycles = 6, int threads = 0);

} // namespace isaac::sim

#endif // ISAAC_SIM_PIPELINE_SIM_H
