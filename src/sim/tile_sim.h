/**
 * @file
 * Cycle-level simulation of the intra-tile pipeline (Fig. 4b).
 *
 * One IMA operation flows through: eDRAM read + IR copy (1 cycle),
 * 16 crossbar read cycles (the S&H latches each cycle's bitlines and
 * the ADC drains them one cycle behind, overlapped), shift-and-add
 * into the IMA OR (one further cycle behind), transfer of the IMA OR
 * to the tile's central OR over the shared bus, the sigmoid, and the
 * eDRAM write of the result. The example operation of Sec. VI
 * completes at the end of cycle 22; the simulator reproduces that
 * schedule exactly and detects structural hazards (eDRAM bank and
 * bus conflicts) for arbitrary op streams.
 */

#ifndef ISAAC_SIM_TILE_SIM_H
#define ISAAC_SIM_TILE_SIM_H

#include <vector>

#include "arch/config.h"
#include "sim/trace.h"

namespace isaac::sim {

/** Timestamps of one operation's traversal of the tile pipeline. */
struct OpTimeline
{
    int ima = 0;
    Cycle ready = 0;      ///< Inputs available in eDRAM.
    Cycle edramRead = 0;  ///< eDRAM -> IR copy cycle.
    Cycle xbarStart = 0;  ///< First of the 16 crossbar cycles.
    Cycle adcDone = 0;    ///< Last ADC drain cycle.
    Cycle saDone = 0;     ///< Final shift-and-add into the IMA OR.
    Cycle orTransfer = 0; ///< IMA OR -> tile OR bus cycle.
    Cycle sigmoid = 0;    ///< Sigmoid unit cycle.
    Cycle edramWrite = 0; ///< Result written to eDRAM.
};

/** One dot-product operation to simulate. */
struct TileOp
{
    int ima = 0;          ///< Which IMA executes it.
    Cycle ready = 0;      ///< Earliest cycle its inputs exist.
    int inputBytes = 512; ///< eDRAM -> IR traffic.
    int outputValues = 32; ///< 16-bit results produced.
};

/** Simulates one tile's shared resources for a stream of ops. */
class TileSim
{
  public:
    explicit TileSim(const arch::IsaacConfig &cfg);

    /** Simulate ops (submitted in order); returns their timelines. */
    std::vector<OpTimeline> run(const std::vector<TileOp> &ops);

    const Trace &trace() const { return _trace; }

  private:
    arch::IsaacConfig cfg;
    Trace _trace;
};

} // namespace isaac::sim

#endif // ISAAC_SIM_TILE_SIM_H
