/**
 * @file
 * Full-chip cycle-level simulation of a *placed* pipeline.
 *
 * Where pipeline_sim models each layer as an abstract pool of
 * replicated servers, ChipSim dispatches every kernel-window
 * operation to a concrete (tile, IMA) from the physical placement
 * and contends for that tile's shared resources: the 4-bank eDRAM,
 * the 3-slot eDRAM-to-IMA bus, and the per-IMA crossbars, exactly
 * as in the Fig. 4b intra-tile schedule. The measured steady-state
 * interval cross-checks the analytic model with structural hazards
 * included, and the activity trace cross-checks the energy
 * accounting.
 */

#ifndef ISAAC_SIM_CHIP_SIM_H
#define ISAAC_SIM_CHIP_SIM_H

#include "nn/network.h"
#include "pipeline/placement.h"
#include "resilience/health.h"
#include "sim/trace.h"

namespace isaac::sim {

/**
 * Hard structural failures injected into a simulation: tiles that
 * stopped responding (power gate stuck, broken links, dead IMAs).
 * Work placed on a dead tile is migrated onto the victim layer's
 * surviving tiles — or any surviving placed tile when the layer lost
 * all of its own — and the run completes at degraded throughput
 * instead of aborting.
 *
 * `transient` adds the soft-error layer on top: eDRAM words suffer
 * ECC-visible bit flips while buffered (uncorrectable words are
 * recomputed, delaying the window), and each window's output ships
 * over its tile's c-mesh link as CRC-tagged packets with
 * retransmit-and-backoff. A link whose corruption budget runs out is
 * declared dead and its server migrates onto a surviving tile —
 * the same degradation path dead tiles take.
 */
struct FailureSpec
{
    std::vector<arch::TileCoord> deadTiles;
    resilience::TransientSpec transient;
};

/** Results of a placed chip simulation. */
struct ChipSimResult
{
    Cycle firstImageDone = 0;
    Cycle lastImageDone = 0;
    /** Measured steady-state cycles per image. */
    double measuredInterval = 0.0;
    /** The analytic prediction for the same plan. */
    double analyticInterval = 0.0;
    /** Switching-activity counters (energy cross-check). */
    Trace trace;
    /** Busy fraction of the busiest IMA over the run. */
    double maxImaUtilization = 0.0;
    std::vector<Cycle> imageDone;
    /** Distinct dead tiles injected via the FailureSpec. */
    int deadTiles = 0;
    /** Servers migrated off dead tiles (or dead links). */
    int remappedServers = 0;
    /**
     * Transient-error activity of the timing model: ECC events on
     * buffered windows, packet retries/backoff, links killed. The
     * recovery cycles are already folded into the window completion
     * times (and therefore into measuredInterval).
     */
    resilience::TransientStats transient;
};

/**
 * Simulate `images` inferences through the placed design. Intended
 * for small networks (per-window bookkeeping).
 *
 * @param tailCycles digital tail per op (ADC drain through eDRAM
 *                   write: 6 cycles in the Fig. 4b schedule).
 */
ChipSimResult simulateChip(const nn::Network &net,
                           const pipeline::PipelinePlan &plan,
                           const pipeline::Placement &placement,
                           const arch::IsaacConfig &cfg, int images,
                           int tailCycles = 6);

/**
 * As above with hard tile failures. fatal()s only when no placed
 * tile survives at all; otherwise the simulation completes and the
 * caller reads the slowdown off measuredInterval (see
 * resilience::throughputRetained).
 */
ChipSimResult simulateChip(const nn::Network &net,
                           const pipeline::PipelinePlan &plan,
                           const pipeline::Placement &placement,
                           const arch::IsaacConfig &cfg, int images,
                           const FailureSpec &failures,
                           int tailCycles = 6);

} // namespace isaac::sim

#endif // ISAAC_SIM_CHIP_SIM_H
