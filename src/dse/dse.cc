#include "dse/dse.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace isaac::dse {

std::string
DsePoint::label() const
{
    std::string s = config.label();
    if (!(policy == xbar::AdcPolicy{}))
        s += "-" + policy.label();
    if (heteroRows > 0) {
        s += "-het" +
            std::to_string(static_cast<int>(
                std::lround(heteroFraction * 100.0))) +
            "pc";
    }
    return s;
}

DsePoint
evaluate(const arch::IsaacConfig &cfg, const DseSpace &space)
{
    return evaluate(cfg, space, cfg.engine.adcPolicy, 0.0);
}

DsePoint
evaluate(const arch::IsaacConfig &base, const DseSpace &space,
         const xbar::AdcPolicy &policy, double heteroFraction)
{
    DsePoint p;
    p.config = base;
    p.config.engine.adcPolicy = policy;
    p.policy = policy;
    const arch::IsaacConfig &cfg = p.config;

    // The fraction lands on whole IMAs; a rounding to zero makes the
    // point homogeneous (and its label says so via heteroRows == 0).
    const int nSec = std::clamp(
        static_cast<int>(std::lround(heteroFraction *
                                     cfg.imasPerTile)),
        0, cfg.imasPerTile);
    const int nPri = cfg.imasPerTile - nSec;
    p.heteroFraction = heteroFraction;
    p.heteroRows = nSec > 0 ? cfg.engine.rows / 2 : 0;

    // The feasibility bound is on the converter hardware: adaptive
    // truncation shortens average conversions but the SAR core must
    // still resolve the full requirement, so adaptive designs face
    // the same bound (their win shows up in PE below).
    const int adcBits = cfg.engine.adcBits();
    if (!space.relaxAdcBound && adcBits > 8) {
        p.feasible = false;
        p.hazard = "needs a " + std::to_string(adcBits) +
            "-bit ADC (paper bound: 8 bits at 1.28 GSps)";
    }

    arch::IsaacConfig sec = cfg;
    if (nSec > 0) {
        sec.engine.rows = cfg.engine.rows / 2;
        sec.engine.cols = cfg.engine.cols / 2;
    }

    const double bytesPerImaPri =
        static_cast<double>(cfg.xbarsPerIma) * cfg.engine.rows *
        kDataBytes / cfg.engine.phases();
    const double bytesPerImaSec = nSec > 0
        ? static_cast<double>(sec.xbarsPerIma) * sec.engine.rows *
            kDataBytes / sec.engine.phases()
        : 0.0;
    const double inputBytesPerCycle =
        nPri * bytesPerImaPri + nSec * bytesPerImaSec;
    if (inputBytesPerCycle > space.tileInputBytesPerCycle + 1e-9) {
        p.feasible = false;
        if (!p.hazard.empty())
            p.hazard += "; ";
        p.hazard += "IR reload traffic " +
            std::to_string(static_cast<int>(inputBytesPerCycle)) +
            " B/cycle exceeds the eDRAM/bus budget";
    }

    const energy::IsaacEnergyModel model(cfg);
    if (nSec == 0) {
        p.ce = model.ceGopsPerMm2();
        p.pe = model.peGopsPerW();
        p.se = model.seMBPerMm2();
        return p;
    }

    // Heterogeneous tile: two IMA populations share one tile's
    // non-IMA overheads (eDRAM, bus, router, sigmoid, ...). Every
    // per-chip metric is recomposed from per-IMA slices of the two
    // homogeneous models.
    const energy::IsaacEnergyModel secModel(sec);
    const double imaPowPri = model.imaPowerMw();
    const double imaAreaPri = model.imaAreaMm2();
    const double imaPowSec = secModel.imaPowerMw();
    const double imaAreaSec = secModel.imaAreaMm2();
    const double overheadPow =
        model.tilePowerMw() - cfg.imasPerTile * imaPowPri;
    const double overheadArea =
        model.tileAreaMm2() - cfg.imasPerTile * imaAreaPri;
    const double tilePow =
        overheadPow + nPri * imaPowPri + nSec * imaPowSec;
    const double tileArea =
        overheadArea + nPri * imaAreaPri + nSec * imaAreaSec;
    const double chipPowW =
        cfg.tilesPerChip * tilePow / 1000.0 + model.htPowerW();
    const double chipArea =
        cfg.tilesPerChip * tileArea + model.htAreaMm2();

    const double imaCount = static_cast<double>(cfg.imasPerTile) *
        cfg.tilesPerChip;
    const double gopsPerImaPri = cfg.peakGops() / imaCount;
    const double gopsPerImaSec = sec.peakGops() / imaCount;
    const double gops =
        (nPri * gopsPerImaPri + nSec * gopsPerImaSec) *
        cfg.tilesPerChip;

    const double mbPerImaPri =
        static_cast<double>(cfg.storageBytesPerChip()) /
        (1024.0 * 1024.0) / imaCount;
    const double mbPerImaSec =
        static_cast<double>(sec.storageBytesPerChip()) /
        (1024.0 * 1024.0) / imaCount;
    const double storageMB =
        (nPri * mbPerImaPri + nSec * mbPerImaSec) *
        cfg.tilesPerChip;

    p.ce = gops / chipArea;
    p.pe = gops / chipPowW;
    p.se = storageMB / chipArea;
    return p;
}

std::vector<DsePoint>
sweep(const DseSpace &space)
{
    // Enumerate the row-major parameter grid (policy and hetero
    // axes innermost), then evaluate the points in parallel straight
    // into their slots (each evaluation is independent; order is
    // preserved by construction). The default single-policy,
    // homogeneous space reproduces the classic Fig. 5 grid exactly.
    struct Candidate
    {
        arch::IsaacConfig cfg;
        xbar::AdcPolicy policy;
        double heteroFraction = 0.0;
    };
    if (space.policies.empty() || space.heteroFractions.empty())
        fatal("DSE: the policy and hetero axes need at least one "
              "value each");
    std::vector<Candidate> grid;
    for (int h : space.rows) {
        for (int a : space.adcsPerIma) {
            for (int c : space.xbarsPerIma) {
                for (int i : space.imasPerTile) {
                    arch::IsaacConfig cfg;
                    cfg.engine.rows = h;
                    cfg.engine.cols = h;
                    cfg.adcsPerIma = a;
                    cfg.xbarsPerIma = c;
                    cfg.imasPerTile = i;
                    for (const auto &pol : space.policies)
                        for (double hf : space.heteroFractions)
                            grid.push_back({cfg, pol, hf});
                }
            }
        }
    }
    std::vector<DsePoint> points(grid.size());
    parallelFor(static_cast<std::int64_t>(grid.size()),
                space.threads, [&](std::int64_t i, int) {
                    const auto &c =
                        grid[static_cast<std::size_t>(i)];
                    points[static_cast<std::size_t>(i)] = evaluate(
                        c.cfg, space, c.policy, c.heteroFraction);
                });
    return points;
}

namespace {

double
metricOf(const DsePoint &p, Metric metric)
{
    switch (metric) {
      case Metric::CE: return p.ce;
      case Metric::PE: return p.pe;
      case Metric::SE: return p.se;
    }
    panic("unknown DSE metric");
}

} // namespace

const DsePoint &
best(const std::vector<DsePoint> &points, Metric metric)
{
    const DsePoint *result = nullptr;
    for (const auto &p : points) {
        if (!p.feasible)
            continue;
        if (!result ||
            metricOf(p, metric) > metricOf(*result, metric)) {
            result = &p;
        }
    }
    if (!result)
        fatal("DSE: no feasible point in the swept space");
    return *result;
}

std::vector<DsePoint>
paretoFront(const std::vector<DsePoint> &points)
{
    auto dominates = [](const DsePoint &a, const DsePoint &b) {
        return a.ce >= b.ce && a.pe >= b.pe && a.se >= b.se &&
            (a.ce > b.ce || a.pe > b.pe || a.se > b.se);
    };
    std::vector<DsePoint> front;
    for (const auto &p : points) {
        if (!p.feasible)
            continue;
        bool dominated = false;
        for (const auto &q : points) {
            if (q.feasible && dominates(q, p)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            front.push_back(p);
    }
    return front;
}

int
rankOf(const std::vector<DsePoint> &points, Metric metric,
       const std::string &label)
{
    double target = -1.0;
    for (const auto &p : points) {
        if (p.feasible && p.config.label() == label)
            target = metricOf(p, metric);
    }
    if (target < 0)
        fatal("DSE: label '" + label + "' not in the feasible sweep");
    int rank = 1;
    for (const auto &p : points) {
        if (p.feasible && metricOf(p, metric) > target)
            ++rank;
    }
    return rank;
}

} // namespace isaac::dse
