#include "dse/dse.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace isaac::dse {

DsePoint
evaluate(const arch::IsaacConfig &cfg, const DseSpace &space)
{
    DsePoint p;
    p.config = cfg;

    const int adcBits = cfg.engine.adcBits();
    if (!space.relaxAdcBound && adcBits > 8) {
        p.feasible = false;
        p.hazard = "needs a " + std::to_string(adcBits) +
            "-bit ADC (paper bound: 8 bits at 1.28 GSps)";
    }

    const double inputBytesPerCycle =
        static_cast<double>(cfg.imasPerTile) * cfg.xbarsPerIma *
        cfg.engine.rows * kDataBytes / cfg.engine.phases();
    if (inputBytesPerCycle > space.tileInputBytesPerCycle + 1e-9) {
        p.feasible = false;
        if (!p.hazard.empty())
            p.hazard += "; ";
        p.hazard += "IR reload traffic " +
            std::to_string(static_cast<int>(inputBytesPerCycle)) +
            " B/cycle exceeds the eDRAM/bus budget";
    }

    const energy::IsaacEnergyModel model(cfg);
    p.ce = model.ceGopsPerMm2();
    p.pe = model.peGopsPerW();
    p.se = model.seMBPerMm2();
    return p;
}

std::vector<DsePoint>
sweep(const DseSpace &space)
{
    // Enumerate the row-major parameter grid, then evaluate the
    // points in parallel straight into their slots (each evaluation
    // is independent; order is preserved by construction).
    std::vector<arch::IsaacConfig> grid;
    for (int h : space.rows) {
        for (int a : space.adcsPerIma) {
            for (int c : space.xbarsPerIma) {
                for (int i : space.imasPerTile) {
                    arch::IsaacConfig cfg;
                    cfg.engine.rows = h;
                    cfg.engine.cols = h;
                    cfg.adcsPerIma = a;
                    cfg.xbarsPerIma = c;
                    cfg.imasPerTile = i;
                    grid.push_back(cfg);
                }
            }
        }
    }
    std::vector<DsePoint> points(grid.size());
    parallelFor(static_cast<std::int64_t>(grid.size()),
                space.threads, [&](std::int64_t i, int) {
                    points[static_cast<std::size_t>(i)] = evaluate(
                        grid[static_cast<std::size_t>(i)], space);
                });
    return points;
}

namespace {

double
metricOf(const DsePoint &p, Metric metric)
{
    switch (metric) {
      case Metric::CE: return p.ce;
      case Metric::PE: return p.pe;
      case Metric::SE: return p.se;
    }
    panic("unknown DSE metric");
}

} // namespace

const DsePoint &
best(const std::vector<DsePoint> &points, Metric metric)
{
    const DsePoint *result = nullptr;
    for (const auto &p : points) {
        if (!p.feasible)
            continue;
        if (!result ||
            metricOf(p, metric) > metricOf(*result, metric)) {
            result = &p;
        }
    }
    if (!result)
        fatal("DSE: no feasible point in the swept space");
    return *result;
}

std::vector<DsePoint>
paretoFront(const std::vector<DsePoint> &points)
{
    auto dominates = [](const DsePoint &a, const DsePoint &b) {
        return a.ce >= b.ce && a.pe >= b.pe && a.se >= b.se &&
            (a.ce > b.ce || a.pe > b.pe || a.se > b.se);
    };
    std::vector<DsePoint> front;
    for (const auto &p : points) {
        if (!p.feasible)
            continue;
        bool dominated = false;
        for (const auto &q : points) {
            if (q.feasible && dominates(q, p)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            front.push_back(p);
    }
    return front;
}

int
rankOf(const std::vector<DsePoint> &points, Metric metric,
       const std::string &label)
{
    double target = -1.0;
    for (const auto &p : points) {
        if (p.feasible && p.config.label() == label)
            target = metricOf(p, metric);
    }
    if (target < 0)
        fatal("DSE: label '" + label + "' not in the feasible sweep");
    int rank = 1;
    for (const auto &p : points) {
        if (p.feasible && metricOf(p, metric) > target)
            ++rank;
    }
    return rank;
}

} // namespace isaac::dse
