/**
 * @file
 * Design-space exploration (Sec. VIII-A, Fig. 5).
 *
 * Sweeps crossbar size H, ADCs per IMA A, crossbars per IMA C, and
 * IMAs per tile I, computing peak CE / PE / SE for each point. Two
 * structural constraints bound the space, both derived from the
 * paper's methodology:
 *
 *  - the ADC resolution required by Eqs. (1)/(2) (plus the encoding
 *    saving) must not exceed 8 bits: the paper "first confirmed that
 *    a 9-bit ADC is never worth the power/area overhead", which at
 *    w=2 / v=1 pins the array at 128 rows;
 *  - the tile's worst-case IR-reload traffic (I * C * H * 2 bytes
 *    every 16 cycles) must fit the Table I eDRAM/bus design
 *    (1.5 KB per 100 ns cycle: one-and-a-half 1 KB IR loads), else
 *    the IMAs stall on structural hazards.
 *
 * Storage-efficiency (SE) candidates deliberately relax the ADC
 * constraint: an SE design reads crossbars slowly through a single
 * tall ADC, trading throughput for density.
 */

#ifndef ISAAC_DSE_DSE_H
#define ISAAC_DSE_DSE_H

#include <string>
#include <vector>

#include "arch/config.h"
#include "energy/catalog.h"
#include "xbar/adc_policy.h"

namespace isaac::dse {

/** One evaluated configuration. */
struct DsePoint
{
    arch::IsaacConfig config;
    /** The ADC policy in effect (mirrors config.engine.adcPolicy). */
    xbar::AdcPolicy policy;
    /**
     * Heterogeneous-IMA axis: the fraction of each tile's IMAs built
     * at the secondary geometry (`heteroRows`-row arrays, half the
     * primary height). 0 = homogeneous.
     */
    double heteroFraction = 0.0;
    int heteroRows = 0; ///< Secondary array height (0 when none).
    bool feasible = true;
    std::string hazard;  ///< Why the point is infeasible (if so).
    double ce = 0.0;     ///< GOPS / mm^2
    double pe = 0.0;     ///< GOPS / W
    double se = 0.0;     ///< MB / mm^2

    /**
     * config.label() plus policy / hetero suffixes when those axes
     * are off their defaults, e.g. "H128-A8-C8-I12-adaptive-het50pc".
     * Default-axes points keep the bare config label, so existing
     * Fig. 5 lookups are unchanged.
     */
    std::string label() const;
};

/** The swept parameter lists (defaults follow Fig. 5). */
struct DseSpace
{
    std::vector<int> rows = {32, 64, 128, 256};
    std::vector<int> adcsPerIma = {4, 8, 16};
    std::vector<int> xbarsPerIma = {4, 8, 16};
    std::vector<int> imasPerTile = {4, 8, 12, 16};

    /**
     * ADC policy axis. The default single fixed/derived policy keeps
     * the classic Fig. 5 space; adding AdcPolicy::adaptive() points
     * sweeps Newton-style converters (same hardware resolution, so
     * the 8-bit feasibility bound still applies — the win shows up
     * in PE, not in the bound).
     */
    std::vector<xbar::AdcPolicy> policies = {xbar::AdcPolicy{}};

    /**
     * Heterogeneous-IMA axis: fractions of each tile's IMAs built at
     * half the primary array height. Secondary IMAs need one fewer
     * ADC bit and a quarter of the cells; metrics are composed from
     * the two IMA populations sharing one tile's overheads.
     */
    std::vector<double> heteroFractions = {0.0};

    /** Relax the 8-bit ADC bound (used for the SE sweep). */
    bool relaxAdcBound = false;

    /** Tile input-delivery budget in bytes per cycle. */
    double tileInputBytesPerCycle = 1536.0;

    /**
     * Worker threads for sweep(): 0 = one per hardware thread,
     * 1 = serial. Points are independent; the returned order is
     * always the row-major parameter order.
     */
    int threads = 0;
};

/** Evaluate one configuration against the constraints. */
DsePoint evaluate(const arch::IsaacConfig &cfg,
                  const DseSpace &space = {});

/**
 * Evaluate one configuration under an explicit ADC policy and
 * heterogeneous-IMA fraction (the policy overwrites the config's;
 * the fraction is rounded to whole IMAs per tile).
 */
DsePoint evaluate(const arch::IsaacConfig &cfg,
                  const DseSpace &space,
                  const xbar::AdcPolicy &policy,
                  double heteroFraction);

/** Sweep the whole space (row-major over the parameter lists). */
std::vector<DsePoint> sweep(const DseSpace &space = {});

/** Metrics by which a point can be ranked. */
enum class Metric { CE, PE, SE };

/** Best feasible point by a metric; fatal() if none is feasible. */
const DsePoint &best(const std::vector<DsePoint> &points,
                     Metric metric);

/** Rank (1-based) of a labelled config under a metric. */
int rankOf(const std::vector<DsePoint> &points, Metric metric,
           const std::string &label);

/**
 * The CE/PE/SE Pareto front of the feasible points: configurations
 * not dominated (<= on every metric, < on at least one) by any
 * other feasible point. Order follows the input sweep.
 */
std::vector<DsePoint>
paretoFront(const std::vector<DsePoint> &points);

} // namespace isaac::dse

#endif // ISAAC_DSE_DSE_H
