/**
 * @file
 * Design-space exploration (Sec. VIII-A, Fig. 5).
 *
 * Sweeps crossbar size H, ADCs per IMA A, crossbars per IMA C, and
 * IMAs per tile I, computing peak CE / PE / SE for each point. Two
 * structural constraints bound the space, both derived from the
 * paper's methodology:
 *
 *  - the ADC resolution required by Eqs. (1)/(2) (plus the encoding
 *    saving) must not exceed 8 bits: the paper "first confirmed that
 *    a 9-bit ADC is never worth the power/area overhead", which at
 *    w=2 / v=1 pins the array at 128 rows;
 *  - the tile's worst-case IR-reload traffic (I * C * H * 2 bytes
 *    every 16 cycles) must fit the Table I eDRAM/bus design
 *    (1.5 KB per 100 ns cycle: one-and-a-half 1 KB IR loads), else
 *    the IMAs stall on structural hazards.
 *
 * Storage-efficiency (SE) candidates deliberately relax the ADC
 * constraint: an SE design reads crossbars slowly through a single
 * tall ADC, trading throughput for density.
 */

#ifndef ISAAC_DSE_DSE_H
#define ISAAC_DSE_DSE_H

#include <string>
#include <vector>

#include "arch/config.h"
#include "energy/catalog.h"

namespace isaac::dse {

/** One evaluated configuration. */
struct DsePoint
{
    arch::IsaacConfig config;
    bool feasible = true;
    std::string hazard;  ///< Why the point is infeasible (if so).
    double ce = 0.0;     ///< GOPS / mm^2
    double pe = 0.0;     ///< GOPS / W
    double se = 0.0;     ///< MB / mm^2
};

/** The swept parameter lists (defaults follow Fig. 5). */
struct DseSpace
{
    std::vector<int> rows = {32, 64, 128, 256};
    std::vector<int> adcsPerIma = {4, 8, 16};
    std::vector<int> xbarsPerIma = {4, 8, 16};
    std::vector<int> imasPerTile = {4, 8, 12, 16};

    /** Relax the 8-bit ADC bound (used for the SE sweep). */
    bool relaxAdcBound = false;

    /** Tile input-delivery budget in bytes per cycle. */
    double tileInputBytesPerCycle = 1536.0;

    /**
     * Worker threads for sweep(): 0 = one per hardware thread,
     * 1 = serial. Points are independent; the returned order is
     * always the row-major parameter order.
     */
    int threads = 0;
};

/** Evaluate one configuration against the constraints. */
DsePoint evaluate(const arch::IsaacConfig &cfg,
                  const DseSpace &space = {});

/** Sweep the whole space (row-major over the parameter lists). */
std::vector<DsePoint> sweep(const DseSpace &space = {});

/** Metrics by which a point can be ranked. */
enum class Metric { CE, PE, SE };

/** Best feasible point by a metric; fatal() if none is feasible. */
const DsePoint &best(const std::vector<DsePoint> &points,
                     Metric metric);

/** Rank (1-based) of a labelled config under a metric. */
int rankOf(const std::vector<DsePoint> &points, Metric metric,
           const std::string &label);

/**
 * The CE/PE/SE Pareto front of the feasible points: configurations
 * not dominated (<= on every metric, < on at least one) by any
 * other feasible point. Order follows the input sweep.
 */
std::vector<DsePoint>
paretoFront(const std::vector<DsePoint> &points);

} // namespace isaac::dse

#endif // ISAAC_DSE_DSE_H
