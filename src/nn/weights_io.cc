#include "nn/weights_io.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "common/logging.h"

namespace isaac::nn {

namespace {

std::int64_t
totalWeights(const Network &net)
{
    return net.totalWeights();
}

} // namespace

void
saveWeightsRaw16(const WeightStore &store, const Network &net,
                 const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("saveWeightsRaw16: cannot open '" + path + "'");
    for (std::size_t i = 0; i < net.size(); ++i) {
        if (!net.layer(i).isDotProduct())
            continue;
        const auto &w = store.layer(i);
        out.write(reinterpret_cast<const char *>(w.data()),
                  static_cast<std::streamsize>(w.size() *
                                               sizeof(Word)));
    }
    if (!out)
        fatal("saveWeightsRaw16: write to '" + path + "' failed");
}

WeightStore
loadWeightsRaw16(const Network &net, const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        fatal("loadWeightsRaw16: cannot open '" + path + "'");
    const auto bytes = static_cast<std::int64_t>(in.tellg());
    if (bytes != totalWeights(net) * 2) {
        fatal("loadWeightsRaw16: '" + path + "' holds " +
              std::to_string(bytes / 2) + " weights but network '" +
              net.name() + "' needs " +
              std::to_string(totalWeights(net)));
    }
    in.seekg(0);

    WeightStore store(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &l = net.layer(i);
        if (!l.isDotProduct())
            continue;
        auto &w = store.layerMutable(i);
        w.resize(static_cast<std::size_t>(l.weightCount()));
        in.read(reinterpret_cast<char *>(w.data()),
                static_cast<std::streamsize>(w.size() *
                                             sizeof(Word)));
    }
    if (!in)
        fatal("loadWeightsRaw16: read from '" + path + "' failed");
    return store;
}

WeightStore
loadWeightsFloat32(const Network &net, const std::string &path,
                   FixedFormat fmt, std::int64_t *saturated)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        fatal("loadWeightsFloat32: cannot open '" + path + "'");
    const auto bytes = static_cast<std::int64_t>(in.tellg());
    if (bytes != totalWeights(net) * 4) {
        fatal("loadWeightsFloat32: '" + path + "' holds " +
              std::to_string(bytes / 4) + " floats but network '" +
              net.name() + "' needs " +
              std::to_string(totalWeights(net)));
    }
    in.seekg(0);

    std::int64_t clipped = 0;
    WeightStore store(net.size());
    std::vector<float> buf;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &l = net.layer(i);
        if (!l.isDotProduct())
            continue;
        buf.resize(static_cast<std::size_t>(l.weightCount()));
        in.read(reinterpret_cast<char *>(buf.data()),
                static_cast<std::streamsize>(buf.size() *
                                             sizeof(float)));
        auto &w = store.layerMutable(i);
        w.resize(buf.size());
        for (std::size_t k = 0; k < buf.size(); ++k) {
            const double v = static_cast<double>(buf[k]);
            w[k] = toFixed(v, fmt);
            clipped += v > fmt.maxValue() || v < fmt.minValue();
        }
    }
    if (!in)
        fatal("loadWeightsFloat32: read from '" + path + "' failed");
    if (saturated)
        *saturated = clipped;
    return store;
}

} // namespace isaac::nn
