/**
 * @file
 * Synthetic weight / input generation.
 *
 * The paper's evaluation does not depend on trained weight values
 * (throughput, energy, and area are data-independent), so the library
 * synthesizes deterministic pseudo-random weights. See DESIGN.md,
 * "substitutions".
 *
 * Weight layout for a dot-product layer: a (rows x outputs) matrix
 * where row r = (j*Kx + s)*Ky + t walks the kernel window channel-
 * major, matching the paper's K(k)(j, s, t) indexing. Private-kernel
 * layers store one such matrix per output window, window-major.
 */

#ifndef ISAAC_NN_WEIGHTS_H
#define ISAAC_NN_WEIGHTS_H

#include <cstdint>
#include <vector>

#include "common/fixed_point.h"
#include "nn/network.h"
#include "nn/tensor.h"

namespace isaac::nn {

/** Per-network weight storage keyed by layer index. */
class WeightStore
{
  public:
    /**
     * Synthesize weights for every dot-product layer of `net`.
     * Weights are uniform over roughly the middle half of the 16-bit
     * range so dot products exercise sign handling and both weight
     * cell nibbles.
     */
    static WeightStore synthesize(const Network &net,
                                  std::uint64_t seed);

    /** Weight matrix for layer `i` (empty for non-dot layers). */
    const std::vector<Word> &layer(std::size_t i) const;

    /** Mutable access (tests construct hand-crafted weights). */
    std::vector<Word> &layerMutable(std::size_t i);

    /** Number of layers covered. */
    std::size_t size() const { return perLayer.size(); }

    /**
     * Index into a layer's weight vector.
     * @param l        layer descriptor
     * @param window   output window index (0 for shared kernels)
     * @param outMap   output feature map k
     * @param row      dot-product row r in [0, dotLength)
     */
    static std::size_t index(const LayerDesc &l, std::int64_t window,
                             int outMap, std::int64_t row);

    explicit WeightStore(std::size_t layers) : perLayer(layers) {}

  private:
    std::vector<std::vector<Word>> perLayer;
};

/** Deterministic pseudo-random input tensor in [-1, 1) Q-format. */
Tensor synthesizeInput(int channels, int rows, int cols,
                       std::uint64_t seed, FixedFormat fmt);

} // namespace isaac::nn

#endif // ISAAC_NN_WEIGHTS_H
