#include "nn/zoo.h"

#include "common/logging.h"

namespace isaac::nn {

namespace {

/** Append `count` 3x3 'same' convolutions with `maps` output maps. */
void
convStage(NetworkBuilder &b, int count, int maps)
{
    for (int i = 0; i < count; ++i)
        b.conv(3, maps);
}

} // namespace

Network
vgg(int version)
{
    // VGG configurations A/B/C/E from Simonyan & Zisserman. Config C
    // interleaves 1x1 convolutions (the "1x1,256(1)" entries in
    // Table II); config E is the 19-weight-layer network.
    NetworkBuilder b("VGG-" + std::to_string(version), 3, 224, 224);
    struct Stage { int n3x3; int maps; bool extra1x1; };
    std::vector<Stage> stages;
    switch (version) {
      case 1: // config A: 11 weight layers
        stages = {{1, 64, false}, {1, 128, false}, {2, 256, false},
                  {2, 512, false}, {2, 512, false}};
        break;
      case 2: // config B: 13 weight layers
        stages = {{2, 64, false}, {2, 128, false}, {2, 256, false},
                  {2, 512, false}, {2, 512, false}};
        break;
      case 3: // config C: 16 weight layers with 1x1 convolutions
        stages = {{2, 64, false}, {2, 128, false}, {2, 256, true},
                  {2, 512, true}, {2, 512, true}};
        break;
      case 4: // config E: 19 weight layers
        stages = {{2, 64, false}, {2, 128, false}, {4, 256, false},
                  {4, 512, false}, {4, 512, false}};
        break;
      default:
        fatal("vgg: version must be in [1, 4]");
    }
    for (const auto &s : stages) {
        convStage(b, s.n3x3, s.maps);
        if (s.extra1x1)
            b.conv(1, s.maps);
        b.maxPool(2, 2);
    }
    b.fc(4096).fc(4096).fc(1000, Activation::None);
    return b.build();
}

Network
msra(int version)
{
    // He et al. models A/B/C. A: conv1(7x7,96,/2) + three stages of
    // five 3x3 convolutions (256/512/512) = 19 weight layers with the
    // SPP layer feeding the classifiers. B: six convolutions per
    // stage (22 layers, ~183M params). C: model B widened to
    // 384/768/896 maps (~330M params).
    NetworkBuilder b("MSRA-" + std::to_string(version), 3, 224, 224);
    int perStage = 0;
    int c1 = 0, c2 = 0, c3 = 0;
    switch (version) {
      case 1:
        perStage = 5; c1 = 256; c2 = 512; c3 = 512;
        break;
      case 2:
        perStage = 6; c1 = 256; c2 = 512; c3 = 512;
        break;
      case 3:
        perStage = 6; c1 = 384; c2 = 768; c3 = 896;
        break;
      default:
        fatal("msra: version must be in [1, 3]");
    }
    b.conv(7, 96, 2, 3); // 224 -> 112
    b.maxPool(2, 2);     // 112 -> 56
    convStage(b, perStage, c1);
    b.maxPool(2, 2);     // 56 -> 28
    convStage(b, perStage, c2);
    b.maxPool(2, 2);     // 28 -> 14
    convStage(b, perStage, c3);
    b.spp({7, 3, 2, 1}); // 63 bins per map
    b.fc(4096).fc(4096).fc(1000, Activation::None);
    return b.build();
}

Network
deepFace()
{
    // Taigman et al.: C1 11x11x32, M2 3x3/2 pool, C3 9x9x16, then
    // three locally connected (private kernel) layers and two FCs.
    NetworkBuilder b("DeepFace", 3, 152, 152);
    b.conv(11, 32, 1, 0);      // 152 -> 142
    b.maxPool(3, 2);           // 142 -> 70 (valid; see note below)
    b.conv(9, 16, 1, 0);       // 70 -> 62
    b.localConv(9, 16, 1, 0);  // 62 -> 54
    b.localConv(7, 16, 2, 0);  // 54 -> 24
    b.localConv(5, 16, 1, 0);  // 24 -> 20
    b.fc(4096).fc(4030, Activation::None);
    return b.build();
}

Network
largeDnn()
{
    // The DaDianNao "large layer" benchmark: a single private-kernel
    // convolution, Nx = Ny = 200, Kx = Ky = 18, Ni = No = 8.
    NetworkBuilder b("DNN", 8, 200, 200);
    b.localConv(18, 8, 1, 0); // 200 -> 183
    return b.build();
}

Network
alexNetNoLrn()
{
    // Krizhevsky et al. minus the two LRN layers; 227x227 input as
    // in the reference implementation.
    NetworkBuilder b("AlexNet-noLRN", 3, 227, 227);
    b.conv(11, 96, 4, 0); // 227 -> 55
    b.maxPool(3, 2);      // 55 -> 27
    b.conv(5, 256, 1, 2); // 27 -> 27
    b.maxPool(3, 2);      // 27 -> 13
    b.conv(3, 384);
    b.conv(3, 384);
    b.conv(3, 256);
    b.maxPool(3, 2);      // 13 -> 6
    b.fc(4096).fc(4096).fc(1000, Activation::None);
    return b.build();
}

std::vector<Network>
allBenchmarks()
{
    std::vector<Network> nets;
    for (int v = 1; v <= 4; ++v)
        nets.push_back(vgg(v));
    for (int v = 1; v <= 3; ++v)
        nets.push_back(msra(v));
    nets.push_back(deepFace());
    nets.push_back(largeDnn());
    return nets;
}

Network
tinyCnn()
{
    // The Fig. 4 running example: a 4x4x16 convolution producing 32
    // maps followed by a 2x2 max-pool, then a small classifier.
    NetworkBuilder b("TinyCNN", 16, 12, 12);
    b.conv(4, 32, 1, 0); // 12 -> 9
    b.maxPool(3, 3);     // 9 -> 3
    b.fc(10, Activation::None);
    return b.build();
}

} // namespace isaac::nn
