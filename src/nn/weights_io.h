/**
 * @file
 * Weight-store file I/O, so trained weights can be loaded into the
 * accelerator without writing C++.
 *
 * Two formats, both little-endian and headerless, laid out layer by
 * layer in network order using the WeightStore indexing
 * (window-major for private kernels, then output-major, then the
 * dot-product row order `(channel*Kx + s)*Ky + t`):
 *
 *  - *raw16*: int16 fixed-point words, written/read verbatim;
 *  - *float32*: IEEE floats, quantized to the given FixedFormat on
 *    load (round-to-nearest, saturating) -- the path for weights
 *    exported from a training framework.
 */

#ifndef ISAAC_NN_WEIGHTS_IO_H
#define ISAAC_NN_WEIGHTS_IO_H

#include <string>

#include "nn/weights.h"

namespace isaac::nn {

/** Write a store's dot-product layers as raw int16. */
void saveWeightsRaw16(const WeightStore &store, const Network &net,
                      const std::string &path);

/** Load raw int16 weights; fatal() if the size does not match. */
WeightStore loadWeightsRaw16(const Network &net,
                             const std::string &path);

/**
 * Load float32 weights and quantize to `fmt`. Values outside the
 * representable range saturate; a count of saturated weights is
 * reported through `saturated` when non-null.
 */
WeightStore loadWeightsFloat32(const Network &net,
                               const std::string &path,
                               FixedFormat fmt,
                               std::int64_t *saturated = nullptr);

} // namespace isaac::nn

#endif // ISAAC_NN_WEIGHTS_IO_H
