/**
 * @file
 * A minimal 3-D tensor of 16-bit fixed-point activations.
 *
 * Layout is channel-major: (channel, row, col) with the column index
 * contiguous. Feature maps in ISAAC are always sets of 2-D matrices
 * (Sec. II-A), so three dimensions suffice for the whole library.
 */

#ifndef ISAAC_NN_TENSOR_H
#define ISAAC_NN_TENSOR_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace isaac::nn {

/** Dense (channels x rows x cols) tensor of Words. */
class Tensor
{
  public:
    /** Construct a zero-filled tensor. */
    Tensor(int channels, int rows, int cols);

    /** Default: an empty 0x0x0 tensor. */
    Tensor() : Tensor(0, 0, 0) {}

    int channels() const { return _channels; }
    int rows() const { return _rows; }
    int cols() const { return _cols; }

    /** Total number of elements. */
    std::size_t size() const { return data.size(); }

    /** Element access (bounds-checked in debug via assert). */
    Word &at(int c, int y, int x);
    Word at(int c, int y, int x) const;

    /** Flat accessors used by classifier layers. */
    Word &flat(std::size_t i) { return data[i]; }
    Word flat(std::size_t i) const { return data[i]; }

    /** Fill with a constant. */
    void fill(Word value);

    /** Raw storage (channel-major). */
    const std::vector<Word> &raw() const { return data; }

    /** Mutable raw storage (ECC buffer passes rewrite in place). */
    std::vector<Word> &raw() { return data; }

  private:
    int _channels;
    int _rows;
    int _cols;
    std::vector<Word> data;
};

} // namespace isaac::nn

#endif // ISAAC_NN_TENSOR_H
