#include "nn/weights.h"

#include "common/logging.h"
#include "common/rng.h"

namespace isaac::nn {

WeightStore
WeightStore::synthesize(const Network &net, std::uint64_t seed)
{
    WeightStore store(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &l = net.layer(i);
        if (!l.isDotProduct())
            continue;
        Rng rng(seed ^ (0x51ull * (i + 1)));
        auto &vec = store.perLayer[i];
        vec.resize(static_cast<std::size_t>(l.weightCount()));
        for (auto &w : vec)
            w = static_cast<Word>(rng.uniform(-8192, 8191));
    }
    return store;
}

const std::vector<Word> &
WeightStore::layer(std::size_t i) const
{
    if (i >= perLayer.size())
        fatal("WeightStore: layer index out of range");
    return perLayer[i];
}

std::vector<Word> &
WeightStore::layerMutable(std::size_t i)
{
    if (i >= perLayer.size())
        fatal("WeightStore: layer index out of range");
    return perLayer[i];
}

std::size_t
WeightStore::index(const LayerDesc &l, std::int64_t window, int outMap,
                   std::int64_t row)
{
    const std::int64_t len = l.dotLength();
    const std::int64_t perWindow =
        static_cast<std::int64_t>(l.no) * len;
    const std::int64_t w = l.privateKernel ? window : 0;
    return static_cast<std::size_t>(w * perWindow + outMap * len + row);
}

Tensor
synthesizeInput(int channels, int rows, int cols, std::uint64_t seed,
                FixedFormat fmt)
{
    Rng rng(seed);
    Tensor t(channels, rows, cols);
    const int unit = 1 << fmt.fracBits;
    for (int c = 0; c < channels; ++c)
        for (int y = 0; y < rows; ++y)
            for (int x = 0; x < cols; ++x)
                t.at(c, y, x) =
                    static_cast<Word>(rng.uniform(-unit, unit - 1));
    return t;
}

} // namespace isaac::nn
