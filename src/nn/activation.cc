#include "nn/activation.h"

#include <cmath>

#include "common/logging.h"

namespace isaac::nn {

namespace {

/** Domain of the piecewise approximation. */
constexpr double kLo = -4.0;
constexpr double kHi = 4.0;

} // namespace

SigmoidLut::SigmoidLut(FixedFormat fmt) : fmt(fmt)
{
    const double step = (kHi - kLo) / kSegments;
    for (int i = 0; i < kSegments; ++i) {
        const double x0 = kLo + i * step;
        const double x1 = x0 + step;
        const double y0 = std::tanh(x0);
        const double y1 = std::tanh(x1);
        const double slope = (y1 - y0) / (x1 - x0);
        const double icept = y0 - slope * x0;
        a[i] = toFixed(slope, fmt);
        b[i] = toFixed(icept, fmt);
    }
    loClamp = toFixed(std::tanh(kLo), fmt);
    hiClamp = toFixed(std::tanh(kHi), fmt);
}

Word
SigmoidLut::apply(Word x) const
{
    const double real = fromFixed(x, fmt);
    if (real < kLo)
        return loClamp;
    if (real >= kHi)
        return hiClamp;
    int seg = static_cast<int>((real - kLo) * kSegments / (kHi - kLo));
    if (seg >= kSegments)
        seg = kSegments - 1;
    // y = a*x + b evaluated exactly as fixed-point hardware would:
    // a 16x16 multiply, requantize, then a saturating add.
    const Acc prod = static_cast<Acc>(a[seg]) * static_cast<Acc>(x);
    const Word ax = requantizeAcc(prod, fmt);
    return saturate16(static_cast<Acc>(ax) + static_cast<Acc>(b[seg]));
}

Word
applyActivation(Activation act, Word x, const SigmoidLut &lut)
{
    switch (act) {
      case Activation::None:
        return x;
      case Activation::ReLU:
        return x > 0 ? x : 0;
      case Activation::Sigmoid:
        return lut.apply(x);
    }
    panic("unknown activation kind");
}

} // namespace isaac::nn
