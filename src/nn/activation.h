/**
 * @file
 * Fixed-point activation functions.
 *
 * The sigmoid is modelled the way DaDianNao (and therefore ISAAC's
 * tile sigmoid unit) implements it: 16 piecewise-linear segments
 * y = a*x + b with coefficients held in a small SRAM (Sec. II-C). The
 * same code is used by the software reference executor and by the
 * tile model so that both produce bit-identical results.
 */

#ifndef ISAAC_NN_ACTIVATION_H
#define ISAAC_NN_ACTIVATION_H

#include <array>

#include "common/fixed_point.h"
#include "nn/layer.h"

namespace isaac::nn {

/**
 * 16-segment piecewise-linear tanh over [-4, 4), saturating outside.
 * Coefficients are quantized to the same fixed-point format as the
 * data path, mirroring the two 16-entry coefficient SRAMs.
 */
class SigmoidLut
{
  public:
    explicit SigmoidLut(FixedFormat fmt);

    /** Number of linear segments (two 16-entry SRAMs in DaDianNao). */
    static constexpr int kSegments = 16;

    /** Apply the piecewise-linear sigmoid to a fixed-point value. */
    Word apply(Word x) const;

    FixedFormat format() const { return fmt; }

  private:
    FixedFormat fmt;
    std::array<Word, kSegments> a; ///< Slopes, quantized.
    std::array<Word, kSegments> b; ///< Intercepts, quantized.
    Word loClamp;                  ///< Output below the first segment.
    Word hiClamp;                  ///< Output above the last segment.
};

/**
 * Apply a layer's activation to a fixed-point value. The LUT must
 * have been built with the same format as `x`.
 */
Word applyActivation(Activation act, Word x, const SigmoidLut &lut);

} // namespace isaac::nn

#endif // ISAAC_NN_ACTIVATION_H
