/**
 * @file
 * Bit-exact software reference executor.
 *
 * Computes every layer with exact 64-bit integer dot products followed
 * by the same requantize + activation steps the tile hardware applies.
 * The analog-pipeline model (xbar::, core::) must reproduce these
 * results exactly; tests assert bit-equality.
 */

#ifndef ISAAC_NN_REFERENCE_H
#define ISAAC_NN_REFERENCE_H

#include <memory>
#include <span>
#include <vector>

#include "common/fixed_point.h"
#include "nn/activation.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "nn/weights.h"

namespace isaac::pipeline {
class ExecutionPlan;
struct StepNode;
} // namespace isaac::pipeline

namespace isaac::nn {

/**
 * Gather the dot-product input vector for output window (ox, oy) of a
 * layer: the kernel window flattened channel-major, zero-padded where
 * the window falls outside the feature map. For classifier layers the
 * whole input is returned flattened.
 */
std::vector<Word> gatherWindow(const Tensor &in, const LayerDesc &l,
                               int ox, int oy);

/** Runs networks in software, producing ground-truth activations. */
class ReferenceExecutor
{
  public:
    /**
     * @param threads  worker threads for the per-layer loops: 0 = one
     *                 per hardware thread, 1 = serial. Every output
     *                 window/channel is independent, so the result is
     *                 identical at any setting.
     */
    ReferenceExecutor(const Network &net, const WeightStore &weights,
                      FixedFormat fmt, int threads = 0);

    ~ReferenceExecutor();

    /** Run the full network; returns the final layer's output. */
    Tensor run(const Tensor &input) const;

    /** Run a single layer. */
    Tensor runLayer(std::size_t layerIdx, const Tensor &input) const;

    /** Outputs of every layer for `input` (index 0 = first layer). */
    std::vector<Tensor> runAll(const Tensor &input) const;

    /**
     * The structural execution-plan IR this executor walks: run()
     * and runAll() execute the compute nodes in graph order, so the
     * reference path traverses the same task graph as the analog
     * model instead of a parallel hand-rolled layer loop.
     */
    const pipeline::ExecutionPlan &executionPlan() const
    {
        return *_ir;
    }

    FixedFormat format() const { return fmt; }

  private:
    /** Execute one IR node on `cur` (hand-off nodes are no-ops). */
    void stepNode(const pipeline::StepNode &node, Tensor &cur) const;

    Tensor runDot(const LayerDesc &l, std::span<const Word> weights,
                  const Tensor &in) const;
    Tensor runPool(const LayerDesc &l, const Tensor &in) const;
    Tensor runSpp(const LayerDesc &l, const Tensor &in) const;

    const Network &net;
    const WeightStore &weights;
    FixedFormat fmt;
    int threads;
    SigmoidLut lut;
    /** Structural lowering of `net` (no resource annotations). */
    std::unique_ptr<const pipeline::ExecutionPlan> _ir;
};

} // namespace isaac::nn

#endif // ISAAC_NN_REFERENCE_H
