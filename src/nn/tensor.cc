#include "nn/tensor.h"

#include <cassert>

#include "common/logging.h"

namespace isaac::nn {

Tensor::Tensor(int channels, int rows, int cols)
    : _channels(channels), _rows(rows), _cols(cols),
      data(static_cast<std::size_t>(channels) * rows * cols, 0)
{
    if (channels < 0 || rows < 0 || cols < 0)
        fatal("Tensor dimensions must be non-negative");
}

Word &
Tensor::at(int c, int y, int x)
{
    assert(c >= 0 && c < _channels);
    assert(y >= 0 && y < _rows);
    assert(x >= 0 && x < _cols);
    return data[(static_cast<std::size_t>(c) * _rows + y) * _cols + x];
}

Word
Tensor::at(int c, int y, int x) const
{
    assert(c >= 0 && c < _channels);
    assert(y >= 0 && y < _rows);
    assert(x >= 0 && x < _cols);
    return data[(static_cast<std::size_t>(c) * _rows + y) * _cols + x];
}

void
Tensor::fill(Word value)
{
    for (auto &w : data)
        w = value;
}

} // namespace isaac::nn
