#include "nn/reference.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "pipeline/execution_plan.h"

namespace isaac::nn {

std::vector<Word>
gatherWindow(const Tensor &in, const LayerDesc &l, int ox, int oy)
{
    std::vector<Word> vec;
    if (l.kind == LayerKind::Classifier) {
        vec.assign(in.raw().begin(), in.raw().end());
        return vec;
    }
    vec.resize(static_cast<std::size_t>(l.dotLength()), 0);
    std::size_t r = 0;
    const int baseX = ox * l.sx - l.px;
    const int baseY = oy * l.sy - l.py;
    for (int j = 0; j < l.ni; ++j) {
        for (int s = 0; s < l.kx; ++s) {
            for (int t = 0; t < l.ky; ++t, ++r) {
                const int y = baseX + s;
                const int x = baseY + t;
                if (y >= 0 && y < l.nx && x >= 0 && x < l.ny)
                    vec[r] = in.at(j, y, x);
            }
        }
    }
    return vec;
}

ReferenceExecutor::ReferenceExecutor(const Network &net,
                                     const WeightStore &weights,
                                     FixedFormat fmt, int threads)
    : net(net), weights(weights), fmt(fmt), threads(threads), lut(fmt),
      _ir(std::make_unique<const pipeline::ExecutionPlan>(
          pipeline::ExecutionPlan::lower(net)))
{
    if (weights.size() != net.size())
        fatal("ReferenceExecutor: weight store does not match network");
}

ReferenceExecutor::~ReferenceExecutor() = default;

void
ReferenceExecutor::stepNode(const pipeline::StepNode &node,
                            Tensor &cur) const
{
    // The software reference models ideal storage and transport, so
    // only the compute nodes act; StageIn/StageOut/Transfer hand-offs
    // pass the activations through untouched.
    if (node.compute)
        cur = runLayer(node.layer, cur);
}

Tensor
ReferenceExecutor::run(const Tensor &input) const
{
    Tensor cur = input;
    for (const auto &node : _ir->nodes())
        stepNode(node, cur);
    return cur;
}

std::vector<Tensor>
ReferenceExecutor::runAll(const Tensor &input) const
{
    std::vector<Tensor> outs;
    Tensor cur = input;
    for (const auto &node : _ir->nodes()) {
        stepNode(node, cur);
        if (node.layerOutput)
            outs.push_back(cur);
    }
    return outs;
}

Tensor
ReferenceExecutor::runLayer(std::size_t layerIdx,
                            const Tensor &input) const
{
    const auto &l = net.layer(layerIdx);
    if (input.channels() != l.ni || input.rows() != l.nx ||
        input.cols() != l.ny) {
        fatal("runLayer: input tensor shape does not match layer '" +
              l.name + "'");
    }
    switch (l.kind) {
      case LayerKind::Conv:
      case LayerKind::Classifier:
        return runDot(l, weights.layer(layerIdx), input);
      case LayerKind::MaxPool:
      case LayerKind::AvgPool:
        return runPool(l, input);
      case LayerKind::Spp:
        return runSpp(l, input);
    }
    panic("unknown layer kind");
}

Tensor
ReferenceExecutor::runDot(const LayerDesc &l,
                          std::span<const Word> w,
                          const Tensor &in) const
{
    Tensor out(l.no, l.outNx(), l.outNy());
    const std::int64_t len = l.dotLength();
    // Every output window is an independent exact dot product, so
    // fan the windows out across workers; each writes a disjoint
    // (ox, oy) slice of `out`.
    const std::int64_t windows =
        static_cast<std::int64_t>(l.outNx()) * l.outNy();
    parallelFor(windows, threads, [&](std::int64_t window, int) {
        const int ox = static_cast<int>(window / l.outNy());
        const int oy = static_cast<int>(window % l.outNy());
        const auto inputs = gatherWindow(in, l, ox, oy);
        for (int k = 0; k < l.no; ++k) {
            Acc acc = 0;
            const std::size_t base =
                WeightStore::index(l, window, k, 0);
            for (std::int64_t r = 0; r < len; ++r) {
                acc += static_cast<Acc>(inputs[r]) *
                    static_cast<Acc>(w[base + r]);
            }
            const Word q = requantizeAcc(acc, fmt);
            out.at(k, ox, oy) = applyActivation(l.activation, q, lut);
        }
    });
    return out;
}

Tensor
ReferenceExecutor::runPool(const LayerDesc &l, const Tensor &in) const
{
    Tensor out(l.no, l.outNx(), l.outNy());
    // Channels are independent; each worker owns whole channels.
    parallelFor(l.ni, threads, [&](std::int64_t chan, int) {
        const int c = static_cast<int>(chan);
        for (int ox = 0; ox < l.outNx(); ++ox) {
            for (int oy = 0; oy < l.outNy(); ++oy) {
                Acc best = l.kind == LayerKind::MaxPool ? -32768 : 0;
                int count = 0;
                for (int s = 0; s < l.kx; ++s) {
                    for (int t = 0; t < l.ky; ++t) {
                        const int y = ox * l.sx + s;
                        const int x = oy * l.sy + t;
                        if (y >= l.nx || x >= l.ny)
                            continue;
                        const Word v = in.at(c, y, x);
                        if (l.kind == LayerKind::MaxPool)
                            best = std::max<Acc>(best, v);
                        else
                            best += v;
                        ++count;
                    }
                }
                if (l.kind == LayerKind::AvgPool && count > 0) {
                    // Round-to-nearest division as a hardware
                    // divider-by-constant would implement it.
                    const Acc half = count / 2;
                    best = best >= 0 ? (best + half) / count
                                     : -((-best + half) / count);
                }
                out.at(c, ox, oy) = static_cast<Word>(best);
            }
        }
    });
    return out;
}

Tensor
ReferenceExecutor::runSpp(const LayerDesc &l, const Tensor &in) const
{
    Tensor out(l.no, l.outNx(), l.outNy());
    parallelFor(l.ni, threads, [&](std::int64_t chan, int) {
        const int c = static_cast<int>(chan);
        int bin = 0;
        for (int level : l.sppLevels) {
            for (int by = 0; by < level; ++by) {
                for (int bx = 0; bx < level; ++bx, ++bin) {
                    const int y0 = by * l.nx / level;
                    const int y1 = (by + 1) * l.nx / level;
                    const int x0 = bx * l.ny / level;
                    const int x1 = (bx + 1) * l.ny / level;
                    Word best = -32768;
                    for (int y = y0; y < std::max(y1, y0 + 1); ++y)
                        for (int x = x0; x < std::max(x1, x0 + 1); ++x)
                            best = std::max(best, in.at(c, y, x));
                    out.at(c, bin, 0) = best;
                }
            }
        }
    });
    return out;
}

} // namespace isaac::nn
