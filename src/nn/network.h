/**
 * @file
 * A feed-forward network: an ordered list of layers plus a builder
 * that chains spatial dimensions automatically.
 */

#ifndef ISAAC_NN_NETWORK_H
#define ISAAC_NN_NETWORK_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace isaac::nn {

/** An immutable, validated feed-forward network. */
class Network
{
  public:
    Network(std::string name, std::vector<LayerDesc> layers);

    const std::string &name() const { return _name; }
    const std::vector<LayerDesc> &layers() const { return _layers; }
    const LayerDesc &layer(std::size_t i) const { return _layers.at(i); }
    std::size_t size() const { return _layers.size(); }

    /** Number of dot-product (weight-bearing) layers. */
    int weightLayerCount() const;

    /** Total number of 16-bit synaptic weights. */
    std::int64_t totalWeights() const;

    /** Total weight storage in bytes (16-bit weights). */
    std::int64_t totalWeightBytes() const;

    /** Total MACs for one inference. */
    std::int64_t totalMacs() const;

    /** Indices of the dot-product layers, in order. */
    std::vector<std::size_t> dotProductLayers() const;

  private:
    /** Check inter-layer dimension chaining; fatal() on mismatch. */
    void validateChain() const;

    std::string _name;
    std::vector<LayerDesc> _layers;
};

/**
 * Incremental builder that tracks the current feature-map shape so
 * callers only specify kernels. All dot-product layers default to the
 * sigmoid activation; the final classifier typically overrides it.
 */
class NetworkBuilder
{
  public:
    NetworkBuilder(std::string name, int channels, int rows, int cols);

    /** Add a shared-kernel convolution ('same' padding by default). */
    NetworkBuilder &conv(int k, int outMaps, int stride = 1,
                         int pad = -1);

    /**
     * Rectangular-kernel convolution with independent row/column
     * kernel, stride, and padding (pad = -1 selects 'same').
     */
    NetworkBuilder &convRect(int kx, int ky, int outMaps, int sx,
                             int sy, int px = -1, int py = -1);

    /** Add a private-kernel (DNN-style, unshared) convolution. */
    NetworkBuilder &localConv(int k, int outMaps, int stride = 1,
                              int pad = 0);

    /** Add a max-pool layer. */
    NetworkBuilder &maxPool(int k, int stride);

    /** Add an average-pool layer. */
    NetworkBuilder &avgPool(int k, int stride);

    /** Add a spatial-pyramid-pooling layer. */
    NetworkBuilder &spp(std::vector<int> levels);

    /** Add a fully connected classifier layer. */
    NetworkBuilder &fc(int outputs,
                       Activation act = Activation::Sigmoid);

    /** Override the most recent layer's activation. */
    NetworkBuilder &setLastActivation(Activation act);

    /** Current feature-map shape, for tests. */
    int curChannels() const { return channels; }
    int curRows() const { return rows; }
    int curCols() const { return cols; }

    /** Finalize into a validated Network. */
    Network build();

  private:
    void push(LayerDesc desc);

    std::string name;
    int channels;
    int rows;
    int cols;
    int index = 0;
    std::vector<LayerDesc> layers;
};

} // namespace isaac::nn

#endif // ISAAC_NN_NETWORK_H
