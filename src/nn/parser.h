/**
 * @file
 * A small text format for describing networks, so users can evaluate
 * their own models without writing C++.
 *
 * Grammar (one directive per line, '#' starts a comment):
 *
 *     network <name>
 *     input <channels> <rows> <cols>
 *     conv <k> <maps> [stride <s>] [pad <p>|same] [<activation>]
 *          [private]
 *     maxpool <k> stride <s>
 *     avgpool <k> stride <s>
 *     spp <level> [<level> ...]
 *     fc <outputs> [<activation>]
 *
 * where <activation> is one of sigmoid (default), relu, linear.
 * Example:
 *
 *     network TinyCNN
 *     input 16 12 12
 *     conv 4 32 pad 0
 *     maxpool 3 stride 3
 *     fc 10 linear
 */

#ifndef ISAAC_NN_PARSER_H
#define ISAAC_NN_PARSER_H

#include <string>

#include "nn/network.h"

namespace isaac::nn {

/** Parse a network description; fatal() with line info on errors. */
Network parseNetwork(const std::string &text);

/** Load and parse a description file. */
Network loadNetworkFile(const std::string &path);

} // namespace isaac::nn

#endif // ISAAC_NN_PARSER_H
