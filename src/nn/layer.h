/**
 * @file
 * Layer descriptors for the CNN/DNN substrate.
 *
 * ISAAC targets four layer types (Sec. II-A): convolutional,
 * classifier (fully connected -- a convolution with the largest
 * possible kernel), pooling (max or average), and the SPP layer used
 * by the MSRA models. LRN layers are deliberately absent: the
 * benchmark suite (Table II) only uses LRN-free networks.
 */

#ifndef ISAAC_NN_LAYER_H
#define ISAAC_NN_LAYER_H

#include <cstdint>
#include <string>
#include <vector>

namespace isaac::nn {

/** The kinds of layers the substrate supports. */
enum class LayerKind
{
    Conv,       ///< Convolution (shared or private kernels).
    Classifier, ///< Fully connected layer.
    MaxPool,    ///< Max pooling.
    AvgPool,    ///< Average pooling.
    Spp,        ///< Spatial pyramid (max) pooling, fixed bin levels.
};

/** Activation applied after a dot-product layer. */
enum class Activation
{
    None,    ///< Identity (e.g. final classifier output).
    Sigmoid, ///< 16-segment piecewise-linear sigmoid (DaDianNao-style).
    ReLU,    ///< Rectified linear unit.
};

/** Human-readable name of a layer kind. */
const char *toString(LayerKind kind);

/**
 * Static description of one network layer. Spatial convention:
 * nx/kx/sx/px are along rows, ny/ky/sy/py along columns, matching the
 * paper's (Nx, Kx, Sx) notation.
 */
struct LayerDesc
{
    LayerKind kind = LayerKind::Conv;
    std::string name;

    int ni = 0; ///< Input feature maps (channels).
    int no = 0; ///< Output feature maps.
    int nx = 0; ///< Input rows.
    int ny = 0; ///< Input cols.
    int kx = 1; ///< Kernel rows.
    int ky = 1; ///< Kernel cols.
    int sx = 1; ///< Stride along rows.
    int sy = 1; ///< Stride along cols.
    int px = 0; ///< Zero padding along rows (each side).
    int py = 0; ///< Zero padding along cols (each side).

    /** DNN-style private kernels: one kernel per output position. */
    bool privateKernel = false;

    /** Activation applied to dot-product results. */
    Activation activation = Activation::Sigmoid;

    /** SPP pyramid levels (Spp only), e.g. {7, 3, 2, 1}. */
    std::vector<int> sppLevels;

    /** Output rows. */
    int outNx() const;
    /** Output cols. */
    int outNy() const;

    /** True for layers computed as crossbar dot products. */
    bool isDotProduct() const;

    /** Number of 16-bit synaptic weights held by this layer. */
    std::int64_t weightCount() const;

    /** Bytes of weight storage at 16 bits per weight. */
    std::int64_t weightBytes() const;

    /** Output neurons produced per input image. */
    std::int64_t outputsPerImage() const;

    /** Multiply-accumulate operations per input image. */
    std::int64_t macsPerImage() const;

    /** Kernel window positions evaluated per image (= outNx*outNy). */
    std::int64_t windowsPerImage() const;

    /** Dot-product length for one output neuron (= Kx*Ky*Ni). */
    std::int64_t dotLength() const;

    /** Validate internal consistency; calls fatal() on bad configs. */
    void validate() const;
};

} // namespace isaac::nn

#endif // ISAAC_NN_LAYER_H
