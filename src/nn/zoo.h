/**
 * @file
 * The Table II benchmark suite: four Oxford VGG variants, three MSRA
 * variants, DeepFace, and the large private-kernel DNN layer used by
 * DaDianNao.
 *
 * The copy of Table II in the supplied paper text is OCR-scrambled;
 * the networks are reconstructed from the source papers the table
 * cites (Simonyan & Zisserman for VGG, He et al. for MSRA, Taigman et
 * al. for DeepFace, Le et al. for the DNN) and cross-checked against
 * the parameter counts quoted in the ISAAC text (VGG: 138M for the
 * 16-layer net; MSRA A/B/C: 178M/183M/330M; DeepFace: 120M).
 */

#ifndef ISAAC_NN_ZOO_H
#define ISAAC_NN_ZOO_H

#include <vector>

#include "nn/network.h"

namespace isaac::nn {

/** Oxford VGG variant; version in [1, 4] (11/13/16/19 weight layers). */
Network vgg(int version);

/** MSRA (He et al.) variant; version in [1, 3] (models A/B/C). */
Network msra(int version);

/** DeepFace: 8 weight layers, 3 with private (unshared) kernels. */
Network deepFace();

/** The large DNN layer: Nx=Ny=200, Kx=Ky=18, Ni=No=8, private. */
Network largeDnn();

/**
 * AlexNet with its LRN layers removed (Sec. II-B: the Oxford VGG
 * team showed dropping LRN slightly *improves* an AlexNet-style
 * network, which is what makes crossbar-only acceleration viable).
 * Not part of the Table II suite; provided for experimentation.
 */
Network alexNetNoLrn();

/** All nine benchmarks in Table II order. */
std::vector<Network> allBenchmarks();

/**
 * A small CNN (conv/pool/conv/fc) used by tests and the quickstart
 * example; structured like Fig. 4's running example.
 */
Network tinyCnn();

} // namespace isaac::nn

#endif // ISAAC_NN_ZOO_H
