#include "nn/layer.h"

#include <numeric>

#include "common/logging.h"

namespace isaac::nn {

const char *
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv: return "conv";
      case LayerKind::Classifier: return "fc";
      case LayerKind::MaxPool: return "maxpool";
      case LayerKind::AvgPool: return "avgpool";
      case LayerKind::Spp: return "spp";
    }
    return "?";
}

int
LayerDesc::outNx() const
{
    if (kind == LayerKind::Spp) {
        // SPP flattens the pyramid into a single row of bins.
        int bins = 0;
        for (int level : sppLevels)
            bins += level * level;
        return bins;
    }
    if (kind == LayerKind::Classifier)
        return 1;
    return (nx + 2 * px - kx) / sx + 1;
}

int
LayerDesc::outNy() const
{
    if (kind == LayerKind::Spp)
        return 1;
    if (kind == LayerKind::Classifier)
        return 1;
    return (ny + 2 * py - ky) / sy + 1;
}

bool
LayerDesc::isDotProduct() const
{
    return kind == LayerKind::Conv || kind == LayerKind::Classifier;
}

std::int64_t
LayerDesc::dotLength() const
{
    if (kind == LayerKind::Classifier)
        return static_cast<std::int64_t>(nx) * ny * ni;
    return static_cast<std::int64_t>(kx) * ky * ni;
}

std::int64_t
LayerDesc::weightCount() const
{
    if (!isDotProduct())
        return 0;
    const std::int64_t shared = dotLength() * no;
    if (privateKernel && kind == LayerKind::Conv)
        return shared * windowsPerImage();
    return shared;
}

std::int64_t
LayerDesc::weightBytes() const
{
    return weightCount() * 2;
}

std::int64_t
LayerDesc::windowsPerImage() const
{
    return static_cast<std::int64_t>(outNx()) * outNy();
}

std::int64_t
LayerDesc::outputsPerImage() const
{
    return windowsPerImage() * no;
}

std::int64_t
LayerDesc::macsPerImage() const
{
    if (!isDotProduct())
        return 0;
    return outputsPerImage() * dotLength();
}

void
LayerDesc::validate() const
{
    if (ni <= 0 || nx <= 0 || ny <= 0)
        fatal("layer '" + name + "': input dims must be positive");
    if (isDotProduct()) {
        if (no <= 0)
            fatal("layer '" + name + "': output maps must be positive");
        if (kind == LayerKind::Conv) {
            if (kx <= 0 || ky <= 0 || sx <= 0 || sy <= 0)
                fatal("layer '" + name + "': bad kernel/stride");
            if (nx + 2 * px < kx || ny + 2 * py < ky)
                fatal("layer '" + name + "': kernel exceeds input");
            if ((nx + 2 * px - kx) % sx != 0 ||
                (ny + 2 * py - ky) % sy != 0) {
                warnOnce("layer '" + name + "': stride does not "
                         "tile the input exactly; trailing "
                         "positions are dropped");
            }
        }
    } else if (kind == LayerKind::Spp) {
        if (sppLevels.empty())
            fatal("layer '" + name + "': SPP needs pyramid levels");
        if (no != ni)
            fatal("layer '" + name + "': SPP cannot change channels");
    } else {
        if (no != ni)
            fatal("layer '" + name + "': pooling cannot change channels");
        if (kx <= 0 || ky <= 0 || sx <= 0 || sy <= 0)
            fatal("layer '" + name + "': bad pool kernel/stride");
    }
}

} // namespace isaac::nn
