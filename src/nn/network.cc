#include "nn/network.h"

#include <utility>

#include "common/logging.h"

namespace isaac::nn {

Network::Network(std::string name, std::vector<LayerDesc> layers)
    : _name(std::move(name)), _layers(std::move(layers))
{
    if (_layers.empty())
        fatal("network '" + _name + "' has no layers");
    for (const auto &l : _layers)
        l.validate();
    validateChain();
}

void
Network::validateChain() const
{
    for (std::size_t i = 1; i < _layers.size(); ++i) {
        const auto &prev = _layers[i - 1];
        const auto &cur = _layers[i];
        const bool channelsOk = cur.kind == LayerKind::Classifier
            ? cur.ni == prev.no
            : cur.ni == prev.no;
        if (!channelsOk) {
            fatal("network '" + _name + "': layer '" + cur.name +
                  "' expects " + std::to_string(cur.ni) +
                  " input maps but gets " + std::to_string(prev.no));
        }
        if (cur.nx != prev.outNx() || cur.ny != prev.outNy()) {
            fatal("network '" + _name + "': layer '" + cur.name +
                  "' expects " + std::to_string(cur.nx) + "x" +
                  std::to_string(cur.ny) + " input but gets " +
                  std::to_string(prev.outNx()) + "x" +
                  std::to_string(prev.outNy()));
        }
    }
}

int
Network::weightLayerCount() const
{
    int count = 0;
    for (const auto &l : _layers)
        if (l.isDotProduct())
            ++count;
    return count;
}

std::int64_t
Network::totalWeights() const
{
    std::int64_t total = 0;
    for (const auto &l : _layers)
        total += l.weightCount();
    return total;
}

std::int64_t
Network::totalWeightBytes() const
{
    return totalWeights() * 2;
}

std::int64_t
Network::totalMacs() const
{
    std::int64_t total = 0;
    for (const auto &l : _layers)
        total += l.macsPerImage();
    return total;
}

std::vector<std::size_t>
Network::dotProductLayers() const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < _layers.size(); ++i)
        if (_layers[i].isDotProduct())
            out.push_back(i);
    return out;
}

NetworkBuilder::NetworkBuilder(std::string name, int channels, int rows,
                               int cols)
    : name(std::move(name)), channels(channels), rows(rows), cols(cols)
{
    if (channels <= 0 || rows <= 0 || cols <= 0)
        fatal("NetworkBuilder: input shape must be positive");
}

void
NetworkBuilder::push(LayerDesc desc)
{
    desc.validate();
    channels = desc.no;
    rows = desc.outNx();
    cols = desc.outNy();
    ++index;
    layers.push_back(std::move(desc));
}

NetworkBuilder &
NetworkBuilder::convRect(int kx, int ky, int outMaps, int sx, int sy,
                         int px, int py)
{
    LayerDesc d;
    d.kind = LayerKind::Conv;
    d.name = "conv" + std::to_string(index) + "_" +
        std::to_string(kx) + "x" + std::to_string(ky) + "x" +
        std::to_string(outMaps);
    d.ni = channels;
    d.no = outMaps;
    d.nx = rows;
    d.ny = cols;
    d.kx = kx;
    d.ky = ky;
    d.sx = sx;
    d.sy = sy;
    d.px = px >= 0 ? px : (kx - 1) / 2;
    d.py = py >= 0 ? py : (ky - 1) / 2;
    push(std::move(d));
    return *this;
}

NetworkBuilder &
NetworkBuilder::conv(int k, int outMaps, int stride, int pad)
{
    LayerDesc d;
    d.kind = LayerKind::Conv;
    d.name = "conv" + std::to_string(index) + "_" + std::to_string(k) +
        "x" + std::to_string(k) + "x" + std::to_string(outMaps);
    d.ni = channels;
    d.no = outMaps;
    d.nx = rows;
    d.ny = cols;
    d.kx = d.ky = k;
    d.sx = d.sy = stride;
    // pad < 0 selects 'same'-style padding: (k - 1) / 2 each side.
    d.px = d.py = pad >= 0 ? pad : (k - 1) / 2;
    push(std::move(d));
    return *this;
}

NetworkBuilder &
NetworkBuilder::localConv(int k, int outMaps, int stride, int pad)
{
    LayerDesc d;
    d.kind = LayerKind::Conv;
    d.name = "local" + std::to_string(index) + "_" + std::to_string(k) +
        "x" + std::to_string(k) + "x" + std::to_string(outMaps);
    d.ni = channels;
    d.no = outMaps;
    d.nx = rows;
    d.ny = cols;
    d.kx = d.ky = k;
    d.sx = d.sy = stride;
    d.px = d.py = pad;
    d.privateKernel = true;
    push(std::move(d));
    return *this;
}

NetworkBuilder &
NetworkBuilder::maxPool(int k, int stride)
{
    LayerDesc d;
    d.kind = LayerKind::MaxPool;
    d.name = "maxpool" + std::to_string(index);
    d.ni = d.no = channels;
    d.nx = rows;
    d.ny = cols;
    d.kx = d.ky = k;
    d.sx = d.sy = stride;
    d.activation = Activation::None;
    push(std::move(d));
    return *this;
}

NetworkBuilder &
NetworkBuilder::avgPool(int k, int stride)
{
    LayerDesc d;
    d.kind = LayerKind::AvgPool;
    d.name = "avgpool" + std::to_string(index);
    d.ni = d.no = channels;
    d.nx = rows;
    d.ny = cols;
    d.kx = d.ky = k;
    d.sx = d.sy = stride;
    d.activation = Activation::None;
    push(std::move(d));
    return *this;
}

NetworkBuilder &
NetworkBuilder::spp(std::vector<int> levels)
{
    LayerDesc d;
    d.kind = LayerKind::Spp;
    d.name = "spp" + std::to_string(index);
    d.ni = d.no = channels;
    d.nx = rows;
    d.ny = cols;
    d.activation = Activation::None;
    d.sppLevels = std::move(levels);
    push(std::move(d));
    return *this;
}

NetworkBuilder &
NetworkBuilder::fc(int outputs, Activation act)
{
    LayerDesc d;
    d.kind = LayerKind::Classifier;
    d.name = "fc" + std::to_string(index) + "_" +
        std::to_string(outputs);
    d.ni = channels;
    d.no = outputs;
    d.nx = rows;
    d.ny = cols;
    d.kx = rows;
    d.ky = cols;
    d.activation = act;
    push(std::move(d));
    return *this;
}

NetworkBuilder &
NetworkBuilder::setLastActivation(Activation act)
{
    if (layers.empty())
        fatal("NetworkBuilder: no layer to set the activation on");
    layers.back().activation = act;
    return *this;
}

Network
NetworkBuilder::build()
{
    return Network(name, std::move(layers));
}

} // namespace isaac::nn
