#include "nn/parser.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace isaac::nn {

namespace {

/** Tokenized line with its 1-based source line number. */
struct Line
{
    int number = 0;
    std::vector<std::string> tokens;
};

std::vector<Line>
tokenize(const std::string &text)
{
    std::vector<Line> lines;
    std::istringstream stream(text);
    std::string raw;
    int number = 0;
    while (std::getline(stream, raw)) {
        ++number;
        const auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw.resize(hash);
        std::istringstream ls(raw);
        Line line;
        line.number = number;
        std::string tok;
        while (ls >> tok)
            line.tokens.push_back(tok);
        if (!line.tokens.empty())
            lines.push_back(std::move(line));
    }
    return lines;
}

[[noreturn]] void
parseError(const Line &line, const std::string &msg)
{
    fatal("network parse error at line " +
          std::to_string(line.number) + ": " + msg);
}

int
parseInt(const Line &line, const std::string &tok,
         const std::string &what)
{
    try {
        std::size_t pos = 0;
        const int v = std::stoi(tok, &pos);
        if (pos != tok.size())
            parseError(line, "bad " + what + " '" + tok + "'");
        return v;
    } catch (const std::exception &) {
        parseError(line, "bad " + what + " '" + tok + "'");
    }
}

std::optional<Activation>
activationByName(const std::string &tok)
{
    if (tok == "sigmoid")
        return Activation::Sigmoid;
    if (tok == "relu")
        return Activation::ReLU;
    if (tok == "linear")
        return Activation::None;
    return std::nullopt;
}

} // namespace

Network
parseNetwork(const std::string &text)
{
    const auto lines = tokenize(text);
    if (lines.empty())
        fatal("network parse error: empty description");

    std::string name = "unnamed";
    std::optional<NetworkBuilder> builder;
    std::size_t i = 0;

    if (lines[i].tokens[0] == "network") {
        if (lines[i].tokens.size() != 2)
            parseError(lines[i], "expected 'network <name>'");
        name = lines[i].tokens[1];
        ++i;
    }
    if (i >= lines.size() || lines[i].tokens[0] != "input" ||
        lines[i].tokens.size() != 4) {
        fatal("network parse error: expected 'input <channels> "
              "<rows> <cols>' after the header");
    }
    builder.emplace(name,
                    parseInt(lines[i], lines[i].tokens[1],
                             "channel count"),
                    parseInt(lines[i], lines[i].tokens[2], "rows"),
                    parseInt(lines[i], lines[i].tokens[3], "cols"));
    ++i;

    for (; i < lines.size(); ++i) {
        const auto &line = lines[i];
        const auto &t = line.tokens;
        const std::string &op = t[0];

        if (op == "conv") {
            if (t.size() < 3)
                parseError(line, "expected 'conv <k> <maps> ...'");
            const int k = parseInt(line, t[1], "kernel");
            const int maps = parseInt(line, t[2], "output maps");
            int stride = 1;
            int pad = -1; // 'same'
            Activation act = Activation::Sigmoid;
            bool isPrivate = false;
            for (std::size_t a = 3; a < t.size(); ++a) {
                if (t[a] == "stride" && a + 1 < t.size()) {
                    stride = parseInt(line, t[++a], "stride");
                } else if (t[a] == "pad" && a + 1 < t.size()) {
                    ++a;
                    pad = t[a] == "same"
                        ? -1
                        : parseInt(line, t[a], "padding");
                } else if (t[a] == "private") {
                    isPrivate = true;
                } else if (auto found = activationByName(t[a])) {
                    act = *found;
                } else {
                    parseError(line,
                               "unknown conv option '" + t[a] + "'");
                }
            }
            if (isPrivate) {
                builder->localConv(k, maps, stride,
                                   pad < 0 ? 0 : pad);
            } else {
                builder->conv(k, maps, stride, pad);
            }
            // The builder defaults conv activation to sigmoid;
            // patch the requested one in.
            if (act != Activation::Sigmoid) {
                // Rebuild not needed: adjust the descriptor after
                // the fact via build-time copy below is complex, so
                // the builder API is extended instead.
                builder->setLastActivation(act);
            }
        } else if (op == "maxpool" || op == "avgpool") {
            if (t.size() != 4 || t[2] != "stride")
                parseError(line, "expected '" + op +
                                     " <k> stride <s>'");
            const int k = parseInt(line, t[1], "kernel");
            const int s = parseInt(line, t[3], "stride");
            if (op == "maxpool")
                builder->maxPool(k, s);
            else
                builder->avgPool(k, s);
        } else if (op == "spp") {
            if (t.size() < 2)
                parseError(line, "expected 'spp <level> ...'");
            std::vector<int> levels;
            for (std::size_t a = 1; a < t.size(); ++a)
                levels.push_back(parseInt(line, t[a], "spp level"));
            builder->spp(std::move(levels));
        } else if (op == "fc") {
            if (t.size() < 2)
                parseError(line, "expected 'fc <outputs> ...'");
            const int outputs = parseInt(line, t[1], "outputs");
            Activation act = Activation::Sigmoid;
            if (t.size() > 2) {
                const auto found = activationByName(t[2]);
                if (!found)
                    parseError(line, "unknown activation '" + t[2] +
                                         "'");
                act = *found;
            }
            builder->fc(outputs, act);
        } else {
            parseError(line, "unknown directive '" + op + "'");
        }
    }
    return builder->build();
}

Network
loadNetworkFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open network file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseNetwork(buf.str());
}

} // namespace isaac::nn
