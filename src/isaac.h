/**
 * @file
 * Umbrella header: pulls in the whole public API.
 *
 *     #include "isaac.h"
 *
 * exposes the model zoo and network builder (isaac::nn), the
 * accelerator front end (isaac::core), the analytic models
 * (isaac::pipeline, isaac::baseline, isaac::energy, isaac::noc,
 * isaac::dse), the cycle-level simulators (isaac::sim), the analog
 * engine (isaac::xbar), the streaming inference runtime
 * (isaac::serve), the Monte Carlo fault-injection campaign lab
 * (isaac::campaign), and the training extension (isaac::train).
 */

#ifndef ISAAC_ISAAC_H
#define ISAAC_ISAAC_H

#include "common/bits.h"
#include "common/epoch_log.h"
#include "common/fixed_point.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/steal_deque.h"
#include "common/types.h"

#include "arch/chip.h"
#include "arch/config.h"
#include "arch/ecc.h"
#include "arch/edram.h"
#include "arch/sigmoid.h"
#include "baseline/dadiannao_perf.h"
#include "campaign/campaign.h"
#include "campaign/runner.h"
#include "core/accelerator.h"
#include "core/floorplan.h"
#include "core/json.h"
#include "core/json_writer.h"
#include "core/report.h"
#include "dse/dse.h"
#include "energy/catalog.h"
#include "energy/dadiannao_catalog.h"
#include "nn/parser.h"
#include "nn/reference.h"
#include "nn/weights_io.h"
#include "nn/zoo.h"
#include "noc/packet.h"
#include "noc/traffic.h"
#include "resilience/health.h"
#include "pipeline/buffer.h"
#include "pipeline/execution_plan.h"
#include "pipeline/perf.h"
#include "pipeline/placement.h"
#include "serve/session.h"
#include "sim/chip_sim.h"
#include "sim/pipeline_sim.h"
#include "sim/tile_sim.h"
#include "sim/timeline.h"
#include "train/trainer.h"
#include "xbar/engine.h"
#include "xbar/write_model.h"

#endif // ISAAC_ISAAC_H
