/**
 * @file
 * Physical placement of a pipeline plan onto chips, tiles, and IMAs.
 *
 * The mapping of layers to IMAs is determined off-line (Sec. VI);
 * this module performs that assignment: each dot-product layer's
 * crossbars are packed into IMAs (an IMA serves one layer), IMAs
 * fill tiles in grid order, and each layer's eDRAM input buffer is
 * spread across the tiles it occupies. The resulting coordinates
 * feed the c-mesh traffic analysis (noc/).
 */

#ifndef ISAAC_PIPELINE_PLACEMENT_H
#define ISAAC_PIPELINE_PLACEMENT_H

#include <optional>
#include <vector>

#include "arch/chip.h"
#include "nn/network.h"
#include "pipeline/replication.h"

namespace isaac::pipeline {

/** Where one layer lives. */
struct LayerPlacement
{
    std::size_t layerIdx = 0;
    /** Tiles hosting this layer's IMAs, in placement order. */
    std::vector<arch::TileCoord> tiles;
    std::int64_t xbarsPlaced = 0;
    std::int64_t imasUsed = 0;
    std::int64_t bufferBytesPlaced = 0;
};

/** A fully placed plan. */
class Placement
{
  public:
    /**
     * Place `plan` onto its chips. fatal() if the plan claims to fit
     * but the IMA-granularity packing cannot (the planner reserves
     * slack to prevent this).
     */
    static Placement build(const nn::Network &net,
                           const PipelinePlan &plan,
                           const arch::IsaacConfig &cfg);

    const std::vector<arch::Chip> &chips() const { return _chips; }

    /** Placements for dot-product layers, in network order. */
    const std::vector<LayerPlacement> &layers() const
    {
        return _layers;
    }

    /** Placement of a specific layer (nullopt for non-dot layers). */
    std::optional<LayerPlacement>
    layerPlacement(std::size_t layerIdx) const;

    /** Total tiles with at least one allocated IMA. */
    int tilesUsed() const;

  private:
    std::vector<arch::Chip> _chips;
    std::vector<LayerPlacement> _layers;
};

} // namespace isaac::pipeline

#endif // ISAAC_PIPELINE_PLACEMENT_H
