#include "pipeline/buffer.h"

#include "common/types.h"

namespace isaac::pipeline {

std::int64_t
pipelinedBufferValues(const nn::LayerDesc &l)
{
    if (l.kind == nn::LayerKind::Classifier) {
        // A classifier consumes its entire input at once.
        return static_cast<std::int64_t>(l.nx) * l.ny * l.ni;
    }
    return (static_cast<std::int64_t>(l.nx) * (l.ky - 1) + l.kx) *
        l.ni;
}

std::int64_t
pipelinedBufferBytes(const nn::LayerDesc &l)
{
    return pipelinedBufferValues(l) * kDataBytes;
}

std::int64_t
unpipelinedBufferBytes(const nn::LayerDesc &l)
{
    return static_cast<std::int64_t>(l.nx) * l.ny * l.ni * kDataBytes;
}

double
paperTablePipelinedKB(const nn::LayerDesc &l)
{
    return static_cast<double>(l.kx) * l.nx * l.ni / 1024.0;
}

double
paperTableUnpipelinedKB(const nn::LayerDesc &l)
{
    return static_cast<double>(l.nx) * l.ny * l.ni / 1024.0;
}

double
pipelineBufferReduction(const nn::LayerDesc &l)
{
    return static_cast<double>(unpipelinedBufferBytes(l)) /
        static_cast<double>(pipelinedBufferBytes(l));
}

} // namespace isaac::pipeline
