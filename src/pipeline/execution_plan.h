/**
 * @file
 * The execution-plan IR: the one compiled representation of *how* a
 * network runs, consumed by every backend.
 *
 * Compilation lowers a network (optionally annotated with its
 * pipeline plan) into an immutable task graph of layer-step nodes
 * with explicit producer/consumer edges:
 *
 *   dot layer i :  StageIn(i) -> Dot(i) -> StageOut(i) -> Transfer(i)
 *   pool layer i:  Pool(i)
 *
 * StageIn/StageOut are the eDRAM-buffer and output-register hand-offs
 * of the Fig. 4b schedule (the SECDED-protected passes of the
 * functional model); Transfer is the c-mesh shipment to the layer's
 * consumers. Each node carries resource tags (engine group count,
 * granted replication, tiles, staged buffer bytes) filled in from the
 * PipelinePlan when one is supplied.
 *
 * Node IDs are assigned in deterministic lowering order, so they are
 * stable across recompiles of the same network and usable as keys by
 * schedulers and injection streams. The node list is topologically
 * sorted by construction (every producer id < consumer id).
 *
 * Consumers of the IR:
 *  - core::CompiledModel walks it to run the analog pipeline model
 *    (infer/inferAll/inferBatch and serve::InferenceSession steps);
 *  - nn::ReferenceExecutor walks the structural lowering for the
 *    bit-exact comparison path;
 *  - the cycle-level simulators (sim::simulatePipeline/simulateChip)
 *    use the compute-node order and windowReadyTimes() for their
 *    ready-time precompute.
 */

#ifndef ISAAC_PIPELINE_EXECUTION_PLAN_H
#define ISAAC_PIPELINE_EXECUTION_PLAN_H

#include <span>
#include <vector>

#include "common/types.h"
#include "nn/network.h"

namespace isaac::pipeline {

struct PipelinePlan;

/** What one IR node does. */
enum class StepKind
{
    StageIn,  ///< Inputs stage through the tile eDRAM buffer.
    Dot,      ///< Bit-serial crossbar dot product + activation.
    StageOut, ///< Results land in the output registers.
    Transfer, ///< Output ships to consumers over the c-mesh.
    Pool,     ///< Max/avg/SPP comparator pass.
};

/** Human-readable name of a step kind. */
const char *toString(StepKind kind);

/** One layer-step node of the task graph. */
struct StepNode
{
    /** Stable id: position in deterministic lowering order. */
    int id = -1;

    StepKind kind = StepKind::Dot;

    /** Network layer this step belongs to. */
    std::size_t layer = 0;

    /**
     * Logical transfer slot keying the per-image injection streams
     * (0 = eDRAM staging in, 1 = output registers, 2 = NoC); -1 for
     * compute steps. Matches the historical stream keying, so a
     * walked inference reproduces the legacy traversal bit-exactly.
     */
    int transferKind = -1;

    /** True for Dot/Pool: the step that computes the layer output. */
    bool compute = false;

    /**
     * True on the last node of a layer: once it completes, `cur`
     * holds the layer's output (what inferAll records).
     */
    bool layerOutput = false;

    // --- resource tags (annotated lowering only) ---

    /** Dot: engine groups (1 shared, windowsPerImage private). */
    std::int64_t engineGroups = 0;

    /** Granted weight-copy replication from the pipeline plan. */
    std::int64_t replication = 1;

    /** Tiles hosting the layer (plan grant). */
    std::int64_t tiles = 0;

    /** Staged eDRAM buffer bytes (StageIn nodes). */
    std::int64_t bufferBytes = 0;

    /**
     * Weight copies re-placed onto surviving tiles by graceful
     * degradation (recordMigration; the functional analogue of the
     * chip simulator's dead-tile server migration). 0 until a tile
     * of this layer dies unrepaired.
     */
    std::int64_t migratedCopies = 0;

    /** True once the layer lost a tile to an unrepairable fault. */
    bool degraded = false;

    /** Edges: node ids that must complete before this one. */
    std::vector<int> producers;

    /** Edges: node ids unblocked by this one. */
    std::vector<int> consumers;
};

/** The immutable lowered task graph for one network. */
class ExecutionPlan
{
  public:
    /**
     * Structural lowering from the network alone (reference executor
     * and tests): nodes/edges/ids only, resource tags defaulted.
     */
    static ExecutionPlan lower(const nn::Network &net);

    /**
     * Annotated lowering: same graph, with per-node resource tags
     * filled from the pipeline plan's grants.
     */
    static ExecutionPlan lower(const nn::Network &net,
                               const PipelinePlan &plan);

    /** The network this plan was lowered from (not owned). */
    const nn::Network &network() const { return *_net; }

    /** All nodes, topologically sorted, ids == indices. */
    const std::vector<StepNode> &nodes() const { return _nodes; }

    const StepNode &node(int id) const
    {
        return _nodes.at(static_cast<std::size_t>(id));
    }

    std::size_t size() const { return _nodes.size(); }

    /** Ids of the compute nodes (one per layer, network order). */
    const std::vector<int> &computeOrder() const
    {
        return _computeOrder;
    }

    /** Whether resource tags were filled from a pipeline plan. */
    bool annotated() const { return _annotated; }

    /** Total directed edges (each counted once). */
    std::size_t edgeCount() const;

    /**
     * Verify the topological invariant: every producer id is smaller
     * than its consumer's, and the edge lists are mutually
     * consistent. Always true for lower()-built plans; exposed so
     * tests can assert it.
     */
    bool topologicallyOrdered() const;

    /**
     * Record a graceful-degradation re-placement on `layer`'s Dot
     * node, reusing the chip simulator's migration policy (see
     * sim::FailureSpec tile kills): the dead tile's share of the
     * replicated weight copies — ceil(replication / tiles) — moves
     * round-robin onto the layer's survivors, the tile grant shrinks
     * by one, and the node is marked degraded. Returns the migrated
     * copy count. This is the one sanctioned mutation of a lowered
     * plan ("immutable" above means the *graph* — nodes, edges, ids —
     * never changes; degradation only re-tags resources), performed
     * by serve::HealthWatchdog under its exclusive repair lock.
     * fatal() when the layer has no Dot node.
     */
    std::int64_t recordMigration(std::size_t layer);

    /**
     * Ready-time precompute shared by the cycle-level simulators:
     * for each output window of `node`'s layer, the max completion
     * cycle over the previous layer's windows it consumes (the
     * kernel-window rectangle; the whole previous layer for
     * classifier/SPP layers). `prevDone` is the previous layer's
     * per-window completion array (empty for the first layer: all
     * zeros). The reduction is pure, so it fans out over `threads`
     * workers with a bit-identical result at any setting.
     */
    std::vector<Cycle>
    windowReadyTimes(const StepNode &node,
                     std::span<const Cycle> prevDone,
                     int threads) const;

  private:
    ExecutionPlan() = default;

    static ExecutionPlan build(const nn::Network &net,
                               const PipelinePlan *plan);

    const nn::Network *_net = nullptr;
    bool _annotated = false;
    std::vector<StepNode> _nodes;
    std::vector<int> _computeOrder;
};

} // namespace isaac::pipeline

#endif // ISAAC_PIPELINE_EXECUTION_PLAN_H
