/**
 * @file
 * Balanced-pipeline weight replication (Section IV).
 *
 * Working back from the last layer, a layer must perform its per-image
 * operation count at the same image rate as every other layer. The
 * required replication of layer i relative to the last dot-product
 * layer is windows_i / windows_last -- the product of the downstream
 * strides in the paper's formulation (the first layer of VGG-1 wants
 * >50K copies, matching Sec. VIII-B).
 *
 * When the aggregate storage exceeds the chip budget by a factor S,
 * every layer's replication (except the last) shrinks by S and the
 * last layer only produces an output every S-th wave. When there is
 * slack, all weights are replicated M times to multiply throughput
 * (Sec. V, "if half the IMAs on a chip are not utilized...").
 */

#ifndef ISAAC_PIPELINE_REPLICATION_H
#define ISAAC_PIPELINE_REPLICATION_H

#include <cstdint>
#include <vector>

#include "arch/config.h"
#include "nn/network.h"
#include "pipeline/mapper.h"

namespace isaac::pipeline {

/** Resource grant and timing for one layer. */
struct LayerPlan
{
    std::size_t layerIdx = 0;
    bool isDot = false;

    std::int64_t desiredReplication = 1; ///< For a 1-wave/image pipe.
    std::int64_t replication = 1;        ///< Granted weight copies.
    std::int64_t xbars = 0;
    std::int64_t imas = 0;
    std::int64_t tiles = 0;
    std::int64_t bufferBytes = 0;        ///< Pipelined input buffer.

    /**
     * Dot-product waves this layer can launch concurrently: granted
     * replication for shared kernels, the window count for private
     * kernels (whose copies are inherent).
     */
    double effectiveRate = 1.0;

    /** Crossbar-limited cycles to process one image. */
    double computeCyclesPerImage = 0.0;
    /** eDRAM/bus-limited cycles to feed one image's inputs. */
    double feedCyclesPerImage = 0.0;
    /** max(compute, feed). */
    double cyclesPerImage = 0.0;
    /** Fraction of the pipeline interval this layer is busy. */
    double utilization = 0.0;
};

/** A full network-to-chip mapping. */
struct PipelinePlan
{
    std::vector<LayerPlan> layers;
    int chips = 1;
    bool fits = true;            ///< Weights fit at replication 1.
    std::int64_t xbarsUsed = 0;
    std::int64_t xbarsAvailable = 0;
    std::int64_t slowdown = 1;   ///< S: de-replication factor.
    std::int64_t speedup = 1;    ///< M: surplus replication factor.
    std::int64_t tilesUsed = 0;
    std::int64_t imasUsed = 0;

    /** Steady-state pipeline interval per image, in cycles. */
    double cyclesPerImage = 0.0;
    /** Sum of per-layer cycles: the unpipelined execution time. */
    double unpipelinedCyclesPerImage = 0.0;
};

/** Map a network onto `chips` chips of configuration `cfg`. */
PipelinePlan planPipeline(const nn::Network &net,
                          const arch::IsaacConfig &cfg, int chips);

} // namespace isaac::pipeline

#endif // ISAAC_PIPELINE_REPLICATION_H
