/**
 * @file
 * Analytic ISAAC performance/energy model (Sec. VII: CNNs on these
 * tiled accelerators have no run-time dependences, so latency and
 * throughput follow deterministic analytical equations).
 */

#ifndef ISAAC_PIPELINE_PERF_H
#define ISAAC_PIPELINE_PERF_H

#include "energy/catalog.h"
#include "nn/network.h"
#include "pipeline/replication.h"

namespace isaac::pipeline {

/** End-to-end performance of one network on one configuration. */
struct IsaacPerf
{
    bool fits = true;
    double cyclesPerImage = 0.0;
    double imagesPerSec = 0.0;
    /** Average power while running, W (all chips + HT). */
    double powerW = 0.0;
    double energyPerImageJ = 0.0;
    /** Achieved fraction of peak MACs. */
    double macUtilization = 0.0;

    /**
     * Input-image bandwidth demanded at the external I/O interface
     * (first layer's input bytes per pipeline interval), GB/s. Must
     * stay under the HyperTransport budget for the pipeline to be
     * fed; ioBound flags violations.
     */
    double inputIoGBps = 0.0;
    bool ioBound = false;

    /** The same network executed without inter-layer pipelining. */
    double unpipelinedCyclesPerImage = 0.0;
    double unpipelinedEnergyPerImageJ = 0.0;

    /**
     * Activity-based energy accounting (lower bound: only switching
     * events are charged, idle tile power is not). The power-based
     * figure above matches the paper's methodology; the activity
     * breakdown shows where the joules go.
     */
    struct Activity
    {
        double adcJ = 0.0;
        double dacJ = 0.0;
        double xbarJ = 0.0;
        double digitalJ = 0.0; ///< shift-add + sigmoid + max-pool
        double edramJ = 0.0;
        double busJ = 0.0;
        double htJ = 0.0;      ///< constant HT power x runtime

        double totalJ() const
        {
            return adcJ + dacJ + xbarJ + digitalJ + edramJ + busJ +
                htJ;
        }
    };
    Activity activity;
};

/**
 * Evaluate a network on `chips` ISAAC chips.
 *
 * Energy model: each layer's tiles draw full tile power while that
 * layer is busy (its utilization fraction of the pipeline interval);
 * the HyperTransport links draw constant power on every chip
 * (Sec. VIII-B's "constant overhead").
 */
IsaacPerf analyzeIsaac(const nn::Network &net,
                       const arch::IsaacConfig &cfg, int chips);

/** Evaluate from an existing plan (avoids re-planning). */
IsaacPerf analyzeIsaac(const nn::Network &net, const PipelinePlan &plan,
                       const energy::IsaacEnergyModel &model);

} // namespace isaac::pipeline

#endif // ISAAC_PIPELINE_PERF_H
