#include "pipeline/placement.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"

namespace isaac::pipeline {

namespace {

/** Chip c's share of `total` under proportional distribution. */
std::int64_t
chipShare(std::int64_t total, int chip, int chips)
{
    return total * (chip + 1) / chips - total * chip / chips;
}

} // namespace

Placement
Placement::build(const nn::Network &net, const PipelinePlan &plan,
                 const arch::IsaacConfig &cfg)
{
    if (!plan.fits)
        fatal("Placement: the plan does not fit its chips");

    Placement placement;
    placement._chips.reserve(static_cast<std::size_t>(plan.chips));
    for (int c = 0; c < plan.chips; ++c)
        placement._chips.emplace_back(cfg, c);

    // Index layer placements by layer id first so chips can be the
    // outer loop: every chip receives a proportional slice of every
    // layer, keeping inter-layer traffic on-chip (replicas process
    // disjoint window/image subsets, so the slices are independent).
    for (const auto &lp : plan.layers) {
        if (!lp.isDot)
            continue;
        LayerPlacement out;
        out.layerIdx = lp.layerIdx;
        placement._layers.push_back(std::move(out));
    }
    auto layerOut = [&](std::size_t layerIdx) -> LayerPlacement & {
        for (auto &l : placement._layers)
            if (l.layerIdx == layerIdx)
                return l;
        panic("Placement: unknown layer");
    };

    for (int c = 0; c < plan.chips; ++c) {
        auto &chip = placement._chips[static_cast<std::size_t>(c)];
        std::size_t tileIdx = 0;

        for (const auto &lp : plan.layers) {
            if (!lp.isDot)
                continue;
            auto &out = layerOut(lp.layerIdx);
            std::int64_t remaining =
                chipShare(lp.xbars, c, plan.chips);
            const std::int64_t bufferShare =
                chipShare(lp.bufferBytes, c, plan.chips);
            std::vector<arch::TileCoord> tilesHere;

            while (remaining > 0) {
                if (tileIdx >= chip.tiles().size()) {
                    fatal("Placement: chip " + std::to_string(c) +
                          " ran out of IMAs while placing layer '" +
                          net.layer(lp.layerIdx).name + "'");
                }
                auto &tile = chip.tiles()[tileIdx];
                std::int64_t placedHere = 0;
                for (auto &ima : tile.imas()) {
                    if (remaining <= 0)
                        break;
                    const int want = static_cast<int>(
                        std::min<std::int64_t>(remaining,
                                               cfg.xbarsPerIma));
                    const int got =
                        ima.allocate(want, lp.layerIdx);
                    if (got > 0) {
                        remaining -= got;
                        placedHere += got;
                        ++out.imasUsed;
                    }
                }
                if (placedHere > 0) {
                    tilesHere.push_back(tile.coord());
                    out.xbarsPlaced += placedHere;
                }
                if (remaining > 0)
                    ++tileIdx;
            }

            // Spread this chip's buffer share over its tiles, then
            // spill into any tile of the same chip with free eDRAM.
            std::int64_t left = bufferShare;
            if (!tilesHere.empty()) {
                const std::int64_t perTile = ceilDiv(
                    left,
                    static_cast<std::int64_t>(tilesHere.size()));
                for (const auto &coord : tilesHere) {
                    if (left <= 0)
                        break;
                    auto &tile = chip.tile(coord.x, coord.y);
                    const std::int64_t chunk = std::min(
                        {perTile, left, tile.edramFreeBytes()});
                    if (chunk > 0 &&
                        tile.reserveBuffer(chunk, lp.layerIdx)) {
                        out.bufferBytesPlaced += chunk;
                        left -= chunk;
                    }
                }
            }
            for (auto &tile : chip.tiles()) {
                if (left <= 0)
                    break;
                const std::int64_t chunk =
                    std::min(left, tile.edramFreeBytes());
                if (chunk > 0 &&
                    tile.reserveBuffer(chunk, lp.layerIdx)) {
                    out.bufferBytesPlaced += chunk;
                    left -= chunk;
                    if (std::find(tilesHere.begin(),
                                  tilesHere.end(), tile.coord()) ==
                        tilesHere.end()) {
                        tilesHere.push_back(tile.coord());
                    }
                }
            }
            for (const auto &coord : tilesHere)
                out.tiles.push_back(coord);
        }
    }
    return placement;
}

std::optional<LayerPlacement>
Placement::layerPlacement(std::size_t layerIdx) const
{
    for (const auto &l : _layers)
        if (l.layerIdx == layerIdx)
            return l;
    return std::nullopt;
}

int
Placement::tilesUsed() const
{
    int used = 0;
    for (const auto &chip : _chips) {
        for (const auto &tile : chip.tiles()) {
            for (const auto &ima : tile.imas()) {
                if (!ima.idle()) {
                    ++used;
                    break;
                }
            }
        }
    }
    return used;
}

} // namespace isaac::pipeline
