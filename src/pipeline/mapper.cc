#include "pipeline/mapper.h"

#include <algorithm>

#include "common/bits.h"

namespace isaac::pipeline {

LayerFootprint
layerFootprint(const nn::LayerDesc &l, std::size_t idx,
               const arch::IsaacConfig &cfg)
{
    LayerFootprint f;
    f.layerIdx = idx;
    f.isDot = l.isDotProduct();
    f.windows = l.windowsPerImage();
    if (!f.isDot)
        return f;

    const auto &e = cfg.engine;
    f.rowSegments = ceilDiv(l.dotLength(), e.rows);
    f.colSegments = ceilDiv(static_cast<std::int64_t>(l.no) *
                                e.slicesPerWeight(),
                            e.cols);
    f.xbarsPerCopy = f.rowSegments * f.colSegments;
    if (l.privateKernel) {
        // One weight matrix per window, all resident. When a single
        // window's columns leave slack in the array, several windows
        // pack side by side; packed windows share wordlines and
        // therefore serialize, while distinct groups fire
        // concurrently.
        const std::int64_t windowCols =
            static_cast<std::int64_t>(l.no) * e.slicesPerWeight();
        const std::int64_t packing =
            std::max<std::int64_t>(1, e.cols / windowCols);
        const std::int64_t groups = ceilDiv(f.windows, packing);
        f.xbarsPerCopy = f.rowSegments * f.colSegments * groups;
        f.inherentParallelism = groups;
    }
    return f;
}

std::vector<LayerFootprint>
footprint(const nn::Network &net, const arch::IsaacConfig &cfg)
{
    std::vector<LayerFootprint> out;
    out.reserve(net.size());
    for (std::size_t i = 0; i < net.size(); ++i)
        out.push_back(layerFootprint(net.layer(i), i, cfg));
    return out;
}

std::int64_t
totalXbars(const arch::IsaacConfig &cfg, int chips)
{
    return static_cast<std::int64_t>(chips) * cfg.tilesPerChip *
        cfg.imasPerTile * cfg.xbarsPerIma;
}

} // namespace isaac::pipeline
