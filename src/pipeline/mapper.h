/**
 * @file
 * Layer-to-crossbar mapping (Section VI).
 *
 * A dot-product layer's logical crossbar has Kx*Ky*Ni rows and
 * No * (16/w) columns; it is tiled over physical arrays by splitting
 * rows (partial sums merged digitally) and columns. Private-kernel
 * layers store one logical matrix per output window.
 */

#ifndef ISAAC_PIPELINE_MAPPER_H
#define ISAAC_PIPELINE_MAPPER_H

#include <cstdint>
#include <vector>

#include "arch/config.h"
#include "nn/network.h"

namespace isaac::pipeline {

/** Crossbar-resource footprint of one layer. */
struct LayerFootprint
{
    std::size_t layerIdx = 0;
    bool isDot = false;

    std::int64_t rowSegments = 0;    ///< ceil(dotLength / rows).
    std::int64_t colSegments = 0;    ///< ceil(No*slices / cols).
    /** Physical crossbars for one copy of the weights. */
    std::int64_t xbarsPerCopy = 0;
    /** Kernel window positions per image. */
    std::int64_t windows = 0;
    /**
     * Operations the stored weights can perform concurrently per
     * 16-cycle wave without replication: 1 for shared kernels,
     * `windows` for private kernels (each window's weights are
     * distinct and can fire independently).
     */
    std::int64_t inherentParallelism = 1;
};

/** Compute the footprint of every layer of a network. */
std::vector<LayerFootprint> footprint(const nn::Network &net,
                                      const arch::IsaacConfig &cfg);

/** Footprint of a single layer. */
LayerFootprint layerFootprint(const nn::LayerDesc &l, std::size_t idx,
                              const arch::IsaacConfig &cfg);

/** Crossbars available on `chips` chips of this configuration. */
std::int64_t totalXbars(const arch::IsaacConfig &cfg, int chips);

} // namespace isaac::pipeline

#endif // ISAAC_PIPELINE_MAPPER_H
