#include "pipeline/replication.h"

#include <algorithm>
#include <limits>

#include "common/bits.h"
#include "common/logging.h"
#include "pipeline/buffer.h"

namespace isaac::pipeline {

namespace {

/** Granted replication of a shared layer under de-replication S. */
std::int64_t
grantedReplication(std::int64_t desired, std::int64_t slowdown)
{
    return std::max<std::int64_t>(1, desired / slowdown);
}

/** Crossbars the whole network needs at (slowdown S, speedup M). */
std::int64_t
xbarsNeeded(const std::vector<LayerFootprint> &fps,
            const std::vector<std::int64_t> &desired,
            std::int64_t slowdown, std::int64_t speedup,
            const nn::Network &net)
{
    std::int64_t total = 0;
    for (std::size_t i = 0; i < fps.size(); ++i) {
        const auto &f = fps[i];
        if (!f.isDot)
            continue;
        if (net.layer(i).privateKernel) {
            // Private weights already hold one copy per window; they
            // never de-replicate (the windows must all be resident),
            // but whole-network speedup replication duplicates them
            // like everything else.
            total += f.xbarsPerCopy * speedup;
        } else {
            total += f.xbarsPerCopy *
                grantedReplication(desired[i] * speedup, slowdown);
        }
    }
    return total;
}

/** Cap on whole-network speedup replication (backstop, not a real
 * design limit: at 2^16 images in flight the model is far past any
 * interesting operating point). */
constexpr std::int64_t kMaxSpeedup = 1 << 16;

} // namespace

PipelinePlan
planPipeline(const nn::Network &net, const arch::IsaacConfig &cfg,
             int chips)
{
    if (chips < 1)
        fatal("planPipeline: need at least one chip");
    cfg.validate();

    const auto fps = footprint(net, cfg);
    PipelinePlan plan;
    plan.chips = chips;
    plan.xbarsAvailable = totalXbars(cfg, chips);

    // Desired replication relative to the last dot-product layer.
    const auto dotLayers = net.dotProductLayers();
    if (dotLayers.empty())
        fatal("planPipeline: network has no dot-product layers");
    const std::int64_t lastWindows =
        fps[dotLayers.back()].windows;

    std::vector<std::int64_t> desired(net.size(), 1);
    for (auto i : dotLayers) {
        desired[i] = std::max<std::int64_t>(
            1, ceilDiv(fps[i].windows, lastWindows));
    }

    // IMAs are dedicated to a single layer and every chip hosts a
    // slice of every layer, so each (layer, chip) pair can strand up
    // to xbarsPerIma-1 arrays in its last IMA; reserve that slack so
    // physical placement always succeeds.
    std::int64_t dotLayerCount = 0;
    for (const auto &f : fps)
        dotLayerCount += f.isDot;
    const std::int64_t imaSlack =
        dotLayerCount * (cfg.xbarsPerIma - 1) * chips;
    const std::int64_t budgetXbars =
        std::max<std::int64_t>(0, plan.xbarsAvailable - imaSlack);

    // Does the network fit at all (replication 1, no speedup)?
    const std::int64_t minimal =
        xbarsNeeded(fps, desired,
                    std::numeric_limits<std::int64_t>::max(), 1, net);
    plan.fits = minimal <= budgetXbars;

    // Find the smallest integer slowdown S that fits (geometric probe
    // then binary refinement); then, if S == 1, the largest integer
    // speedup M that still fits.
    std::int64_t slowdown = 1;
    if (plan.fits) {
        auto fitsAt = [&](std::int64_t s) {
            return xbarsNeeded(fps, desired, s, 1, net) <=
                budgetXbars;
        };
        std::int64_t hi = 1;
        while (!fitsAt(hi) && hi < (std::int64_t{1} << 40))
            hi *= 2;
        std::int64_t lo = std::max<std::int64_t>(1, hi / 2);
        // Smallest S in [lo, hi] with fitsAt(S). Note xbarsNeeded is
        // monotone non-increasing in S.
        while (lo < hi) {
            const std::int64_t mid = (lo + hi) / 2;
            if (fitsAt(mid))
                hi = mid;
            else
                lo = mid + 1;
        }
        slowdown = hi;
    }
    std::int64_t speedup = 1;
    if (slowdown == 1 && plan.fits) {
        auto ok = [&](std::int64_t m) {
            return xbarsNeeded(fps, desired, 1, m, net) <=
                budgetXbars;
        };
        std::int64_t lo = 1;
        while (lo < kMaxSpeedup && ok(lo * 2))
            lo *= 2;
        std::int64_t hi = std::min<std::int64_t>(lo * 2, kMaxSpeedup);
        // Largest M in [lo, hi] with ok(M).
        while (lo < hi) {
            const std::int64_t mid = (lo + hi + 1) / 2;
            if (ok(mid))
                lo = mid;
            else
                hi = mid - 1;
        }
        speedup = lo;
    }
    plan.slowdown = slowdown;
    plan.speedup = speedup;

    // Build per-layer plans.
    const int phases = cfg.engine.phases();
    const std::int64_t tileBusBytesPerCycle = 1024;
    const std::int64_t edramBytes =
        static_cast<std::int64_t>(cfg.edramKBPerTile) * 1024;

    // Refresh a layer's derived allocation/timing fields from its
    // granted replication.
    auto refresh = [&](LayerPlan &lp) {
        const auto &f = fps[lp.layerIdx];
        const auto &l = net.layer(lp.layerIdx);
        lp.xbars = f.xbarsPerCopy * lp.replication;
        // The ADCs drain slightly less than the full crossbar
        // complement each cycle (128 of 129 columns' worth at the
        // CE point); every wave stretches accordingly.
        const double adcDerate = cfg.effectiveXbarsPerIma() /
            static_cast<double>(cfg.xbarsPerIma);
        lp.effectiveRate = adcDerate * static_cast<double>(
            l.privateKernel ? f.inherentParallelism * lp.replication
                            : lp.replication);
        lp.imas = ceilDiv(lp.xbars, cfg.xbarsPerIma);
        lp.tiles = ceilDiv(lp.imas, cfg.imasPerTile);
        // Grow the tile allocation if the input buffer would
        // overflow the per-tile eDRAM.
        lp.tiles = std::max(lp.tiles,
                            ceilDiv(lp.bufferBytes, edramBytes));
        lp.computeCyclesPerImage =
            static_cast<double>(f.windows) * phases /
            lp.effectiveRate;
        // Each operation needs its dotLength inputs delivered over
        // the tile's eDRAM-to-IMA path (1 KB per cycle per tile).
        const double feedBytes = static_cast<double>(f.windows) *
            l.dotLength() * kDataBytes;
        lp.feedCyclesPerImage = feedBytes /
            (static_cast<double>(tileBusBytesPerCycle) * lp.tiles);
        lp.cyclesPerImage =
            std::max(lp.computeCyclesPerImage, lp.feedCyclesPerImage);
    };

    plan.layers.resize(net.size());
    std::size_t prevDotLayer = net.size();
    for (std::size_t i = 0; i < net.size(); ++i) {
        auto &lp = plan.layers[i];
        const auto &f = fps[i];
        const auto &l = net.layer(i);
        lp.layerIdx = i;
        lp.isDot = f.isDot;
        lp.bufferBytes = pipelinedBufferBytes(l);
        if (!f.isDot) {
            // Pooling/SPP: reads run on the producer layer's tiles
            // at eDRAM bandwidth (Sec. VI's cycles 23-26).
            const double inBytes = static_cast<double>(l.nx) * l.ny *
                l.ni * kDataBytes;
            const std::int64_t producerTiles =
                prevDotLayer < net.size()
                    ? std::max<std::int64_t>(
                          1, plan.layers[prevDotLayer].tiles)
                    : 1;
            lp.cyclesPerImage = inBytes /
                (static_cast<double>(tileBusBytesPerCycle) *
                 producerTiles);
            continue;
        }
        prevDotLayer = i;

        lp.desiredReplication = desired[i];
        lp.replication = l.privateKernel
            ? speedup
            : grantedReplication(desired[i] * speedup, slowdown);
        refresh(lp);
    }

    // Greedy rebalancing: spend leftover crossbars on the bottleneck
    // layer until the budget is exhausted (the manual mapping of
    // Sec. VII would do the same). Private layers buy whole window
    // sets, shared layers one weight copy at a time.
    if (plan.fits) {
        auto used = [&] {
            std::int64_t sum = 0;
            for (const auto &lp : plan.layers)
                sum += lp.xbars;
            return sum;
        };
        std::int64_t budget = budgetXbars - used();
        for (int iter = 0; iter < 20000; ++iter) {
            LayerPlan *worst = nullptr;
            for (auto &lp : plan.layers) {
                if (!lp.isDot)
                    continue;
                if (!worst ||
                    lp.cyclesPerImage > worst->cyclesPerImage) {
                    worst = &lp;
                }
            }
            if (!worst)
                break;
            const std::int64_t cost =
                fps[worst->layerIdx].xbarsPerCopy;
            if (cost > budget)
                break;
            // Feeding, not compute, limits this layer: replication
            // only helps via extra tiles, which ceilDiv may not add;
            // bail out if an increment cannot reduce the interval.
            const double before = worst->cyclesPerImage;
            worst->replication += 1;
            refresh(*worst);
            if (worst->cyclesPerImage >= before) {
                worst->replication -= 1;
                refresh(*worst);
                break;
            }
            budget -= cost;
        }
    }

    for (const auto &lp : plan.layers) {
        if (lp.isDot) {
            plan.xbarsUsed += lp.xbars;
            plan.imasUsed += lp.imas;
            plan.tilesUsed += lp.tiles;
        }
        plan.cyclesPerImage =
            std::max(plan.cyclesPerImage, lp.cyclesPerImage);
        plan.unpipelinedCyclesPerImage += lp.cyclesPerImage;
    }
    for (auto &lp : plan.layers) {
        if (lp.isDot && plan.cyclesPerImage > 0) {
            lp.utilization =
                lp.cyclesPerImage / plan.cyclesPerImage;
        }
    }
    return plan;
}

} // namespace isaac::pipeline
