/**
 * @file
 * Inter-layer eDRAM buffer requirements (Section IV).
 *
 * The paper's pipelined buffer formula is
 *
 *     ((Nx * (Ky - 1)) + Kx) * Nif       values,
 *
 * i.e. Ky-1 full rows of the input feature maps plus one partial
 * row: exactly the working set of a sliding kernel window (Fig. 3).
 * Without pipelining the full Nx * Ny * Nif output of the previous
 * layer must be buffered.
 *
 * Note on Table III: the published KB figures correspond to counting
 * Kx full rows at one byte per value (Nx*Ny*Nif bytes unpipelined,
 * Kx*Nx*Nif bytes pipelined). Both the 16-bit formula values and the
 * published-table variants are exposed so bench_table3 can print the
 * comparison; the architectural conclusions (max ~74 KB per layer,
 * 64 KB eDRAM per tile, ~Ny/Ky reduction) are unchanged.
 */

#ifndef ISAAC_PIPELINE_BUFFER_H
#define ISAAC_PIPELINE_BUFFER_H

#include <cstdint>

#include "nn/layer.h"

namespace isaac::pipeline {

/** Pipelined input-buffer requirement in 16-bit values. */
std::int64_t pipelinedBufferValues(const nn::LayerDesc &l);

/** Pipelined input-buffer requirement in bytes (16-bit values). */
std::int64_t pipelinedBufferBytes(const nn::LayerDesc &l);

/** Unpipelined requirement (full previous-layer output) in bytes. */
std::int64_t unpipelinedBufferBytes(const nn::LayerDesc &l);

/** The KB figure Table III publishes for the pipelined case. */
double paperTablePipelinedKB(const nn::LayerDesc &l);

/** The KB figure Table III publishes for the unpipelined case. */
double paperTableUnpipelinedKB(const nn::LayerDesc &l);

/**
 * Buffering reduction factor due to pipelining, approximately
 * Ny / Ky (Sec. IV).
 */
double pipelineBufferReduction(const nn::LayerDesc &l);

} // namespace isaac::pipeline

#endif // ISAAC_PIPELINE_BUFFER_H
