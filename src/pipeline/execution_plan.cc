#include "pipeline/execution_plan.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "pipeline/replication.h"

namespace isaac::pipeline {

const char *
toString(StepKind kind)
{
    switch (kind) {
      case StepKind::StageIn:
        return "stage-in";
      case StepKind::Dot:
        return "dot";
      case StepKind::StageOut:
        return "stage-out";
      case StepKind::Transfer:
        return "transfer";
      case StepKind::Pool:
        return "pool";
    }
    return "?";
}

ExecutionPlan
ExecutionPlan::lower(const nn::Network &net)
{
    return build(net, nullptr);
}

ExecutionPlan
ExecutionPlan::lower(const nn::Network &net, const PipelinePlan &plan)
{
    if (plan.layers.size() != net.size())
        fatal("ExecutionPlan::lower: pipeline plan does not match "
              "the network");
    return build(net, &plan);
}

std::int64_t
ExecutionPlan::recordMigration(std::size_t layer)
{
    for (auto &node : _nodes) {
        if (node.kind != StepKind::Dot || node.layer != layer)
            continue;
        // The chip simulator's policy for a killed tile: its share of
        // the replicated weight copies moves round-robin onto the
        // layer's surviving tiles (sim counts them as
        // remappedServers); here only the accounting lands because
        // the functional rebuild re-places the weights itself.
        const std::int64_t hosts =
            std::max<std::int64_t>(node.tiles, 1);
        const std::int64_t copies =
            (node.replication + hosts - 1) / hosts;
        node.tiles = std::max<std::int64_t>(1, node.tiles - 1);
        node.migratedCopies += copies;
        node.degraded = true;
        return copies;
    }
    fatal("ExecutionPlan::recordMigration: layer has no Dot node");
}

ExecutionPlan
ExecutionPlan::build(const nn::Network &net, const PipelinePlan *plan)
{
    ExecutionPlan ir;
    ir._net = &net;
    ir._annotated = plan != nullptr;

    auto push = [&ir](StepNode node) -> StepNode & {
        node.id = static_cast<int>(ir._nodes.size());
        ir._nodes.push_back(std::move(node));
        return ir._nodes.back();
    };
    auto link = [&ir](int from, int to) {
        ir._nodes[static_cast<std::size_t>(from)]
            .consumers.push_back(to);
        ir._nodes[static_cast<std::size_t>(to)]
            .producers.push_back(from);
    };

    int prevOut = -1; // id of the previous layer's layerOutput node.
    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &l = net.layer(i);
        const LayerPlan *lp =
            plan ? &plan->layers[i] : nullptr;
        const int first = static_cast<int>(ir._nodes.size());

        if (l.isDotProduct()) {
            StepNode in;
            in.kind = StepKind::StageIn;
            in.layer = i;
            in.transferKind = 0;
            if (lp)
                in.bufferBytes = lp->bufferBytes;

            StepNode dot;
            dot.kind = StepKind::Dot;
            dot.layer = i;
            dot.compute = true;
            dot.engineGroups =
                l.privateKernel ? l.windowsPerImage() : 1;

            StepNode out;
            out.kind = StepKind::StageOut;
            out.layer = i;
            out.transferKind = 1;

            StepNode tr;
            tr.kind = StepKind::Transfer;
            tr.layer = i;
            tr.transferKind = 2;
            tr.layerOutput = true;

            for (auto *n : {&in, &dot, &out, &tr}) {
                if (lp) {
                    n->replication = lp->replication;
                    n->tiles = lp->tiles;
                }
            }
            push(std::move(in));
            const int dotId = push(std::move(dot)).id;
            push(std::move(out));
            const int trId = push(std::move(tr)).id;
            link(first, dotId);
            link(dotId, dotId + 1);
            link(dotId + 1, trId);
            ir._computeOrder.push_back(dotId);
        } else {
            StepNode pool;
            pool.kind = StepKind::Pool;
            pool.layer = i;
            pool.compute = true;
            pool.layerOutput = true;
            const int id = push(std::move(pool)).id;
            ir._computeOrder.push_back(id);
        }

        if (prevOut >= 0)
            link(prevOut, first);
        prevOut = static_cast<int>(ir._nodes.size()) - 1;
    }
    return ir;
}

std::size_t
ExecutionPlan::edgeCount() const
{
    std::size_t edges = 0;
    for (const auto &n : _nodes)
        edges += n.consumers.size();
    return edges;
}

bool
ExecutionPlan::topologicallyOrdered() const
{
    for (const auto &n : _nodes) {
        if (n.id != static_cast<int>(&n - _nodes.data()))
            return false;
        for (const int p : n.producers) {
            if (p < 0 || p >= n.id)
                return false;
            const auto &cons =
                _nodes[static_cast<std::size_t>(p)].consumers;
            if (std::find(cons.begin(), cons.end(), n.id) ==
                cons.end())
                return false;
        }
        for (const int c : n.consumers) {
            if (c <= n.id ||
                c >= static_cast<int>(_nodes.size()))
                return false;
            const auto &prods =
                _nodes[static_cast<std::size_t>(c)].producers;
            if (std::find(prods.begin(), prods.end(), n.id) ==
                prods.end())
                return false;
        }
    }
    return true;
}

std::vector<Cycle>
ExecutionPlan::windowReadyTimes(const StepNode &node,
                                std::span<const Cycle> prevDone,
                                int threads) const
{
    const auto &l = _net->layer(node.layer);
    const int outNy = l.outNy();
    const auto windows =
        static_cast<std::int64_t>(l.outNx()) * outNy;
    std::vector<Cycle> readyAt(static_cast<std::size_t>(windows), 0);
    if (node.layer == 0 || prevDone.empty())
        return readyAt;

    const auto &pl = _net->layer(node.layer - 1);
    const int pnx = pl.outNx();
    const int pny = pl.outNy();
    if (prevDone.size() !=
        static_cast<std::size_t>(pnx) * static_cast<std::size_t>(pny))
        fatal("windowReadyTimes: previous completion array does not "
              "match the producer layer's window count");

    // Classifier and SPP windows consume the whole previous layer;
    // conv/pool windows consume their kernel rectangle.
    const bool fullInput = l.kind == nn::LayerKind::Classifier ||
        l.kind == nn::LayerKind::Spp;

    parallelFor(windows, threads, [&](std::int64_t wi, int) {
        const int ox = static_cast<int>(wi / outNy);
        const int oy = static_cast<int>(wi % outNy);
        int y0 = 0, y1 = pnx - 1;
        int x0 = 0, x1 = pny - 1;
        if (!fullInput) {
            y0 = std::max(0, ox * l.sx - l.px);
            y1 = std::min(pnx - 1, ox * l.sx - l.px + l.kx - 1);
            x0 = std::max(0, oy * l.sy - l.py);
            x1 = std::min(pny - 1, oy * l.sy - l.py + l.ky - 1);
        }
        Cycle ready = 0;
        for (int y = y0; y <= y1; ++y) {
            for (int x = x0; x <= x1; ++x) {
                ready = std::max(
                    ready,
                    prevDone[static_cast<std::size_t>(y * pny + x)]);
            }
        }
        readyAt[static_cast<std::size_t>(wi)] = ready;
    });
    return readyAt;
}

} // namespace isaac::pipeline
