#include "pipeline/perf.h"

#include "pipeline/mapper.h"

namespace isaac::pipeline {

namespace {

/** Per-image switching-event energy accounting. */
IsaacPerf::Activity
activityEnergy(const nn::Network &net, const PipelinePlan &plan,
               const energy::IsaacEnergyModel &model,
               double intervalCycles)
{
    IsaacPerf::Activity act;
    const auto &cfg = model.config();
    const int phases = cfg.engine.phases();

    for (std::size_t i = 0; i < net.size(); ++i) {
        const auto &l = net.layer(i);
        const auto f = layerFootprint(l, i, cfg);
        if (l.isDotProduct()) {
            // Crossbar read cycles per image: every window op streams
            // its bits through all the arrays of one weight copy
            // (replication spreads the same work, it does not add
            // reads).
            double reads = static_cast<double>(f.windows) * phases *
                f.rowSegments * f.colSegments;
            if (l.privateKernel) {
                // xbarsPerCopy already contains the window factor.
                reads = static_cast<double>(phases) * f.xbarsPerCopy;
            }
            const double samples = reads * (cfg.engine.cols + 1);
            act.adcJ += samples * model.adcEnergyPerSamplePj() * 1e-12;
            act.xbarJ += reads * model.xbarEnergyPerReadPj() * 1e-12;
            act.dacJ += reads * cfg.engine.rows *
                model.dacEnergyPerRowCyclePj() * 1e-12;
            act.digitalJ +=
                samples * model.shiftAddEnergyPerOpPj() * 1e-12;

            // Inputs staged eDRAM -> bus -> IR; outputs written back.
            const double inBytes = static_cast<double>(f.windows) *
                l.dotLength() * kDataBytes;
            const double outBytes =
                static_cast<double>(l.outputsPerImage()) * kDataBytes;
            act.edramJ += (inBytes + outBytes) *
                model.edramEnergyPerBytePj() * 1e-12;
            act.busJ += (inBytes + outBytes) *
                model.busEnergyPerBytePj() * 1e-12;
            if (l.activation != nn::Activation::None) {
                act.digitalJ += static_cast<double>(
                                    l.outputsPerImage()) *
                    model.sigmoidEnergyPerOpPj() * 1e-12;
            }
        } else {
            // Pooling: read the window, compare, write the result.
            const double inBytes = static_cast<double>(l.nx) * l.ny *
                l.ni * kDataBytes;
            const double outBytes =
                static_cast<double>(l.outputsPerImage()) * kDataBytes;
            act.edramJ += (inBytes + outBytes) *
                model.edramEnergyPerBytePj() * 1e-12;
            act.digitalJ += inBytes / kDataBytes *
                model.maxPoolEnergyPerValuePj() * 1e-12;
        }
    }
    act.htJ = model.htPowerW() * plan.chips * intervalCycles *
        cfg.cycleNs * 1e-9;
    return act;
}

} // namespace

IsaacPerf
analyzeIsaac(const nn::Network &net, const PipelinePlan &plan,
             const energy::IsaacEnergyModel &model)
{
    IsaacPerf perf;
    perf.fits = plan.fits;
    if (!plan.fits)
        return perf;

    const auto &cfg = model.config();
    const double cycleSec = cfg.cycleNs * 1e-9;

    // The external I/O interface must feed the first layer's input
    // at the steady-state rate (Sec. III: inputs arrive through the
    // I/O interface, i.e. the HyperTransport fabric); if the
    // crossbar pipeline outruns it, image delivery caps throughput.
    const auto &first = net.layer(0);
    const double inputBytes = static_cast<double>(first.nx) *
        first.ny * first.ni * kDataBytes;
    const double htBytesPerSec =
        cfg.htLinks * cfg.htLinkGBps * 1e9;
    const double ioCycles =
        inputBytes / htBytesPerSec / cycleSec;
    perf.ioBound = ioCycles > plan.cyclesPerImage;

    perf.cyclesPerImage = std::max(plan.cyclesPerImage, ioCycles);
    perf.imagesPerSec = 1.0 / (perf.cyclesPerImage * cycleSec);
    perf.inputIoGBps =
        inputBytes * perf.imagesPerSec / 1e9;
    perf.unpipelinedCyclesPerImage = std::max(
        plan.unpipelinedCyclesPerImage, ioCycles);

    // Tile-busy energy per image: every layer's tiles burn full tile
    // power for the cycles that layer is active.
    const double tilePowerW = model.tilePowerMw() * 1e-3;
    double tileEnergyPerImage = 0.0;
    for (const auto &lp : plan.layers) {
        if (!lp.isDot)
            continue;
        tileEnergyPerImage += static_cast<double>(lp.tiles) *
            tilePowerW * lp.cyclesPerImage * cycleSec;
    }
    const double htPowerW = model.htPowerW() * plan.chips;

    perf.energyPerImageJ = tileEnergyPerImage +
        htPowerW * perf.cyclesPerImage * cycleSec;
    perf.powerW =
        perf.energyPerImageJ / (perf.cyclesPerImage * cycleSec);

    // Without pipelining the layers run sequentially: the same tile
    // work, but the HT (and the chip) stays powered much longer
    // (the I/O-capped interval when image delivery dominates).
    perf.unpipelinedEnergyPerImageJ = tileEnergyPerImage +
        htPowerW * perf.unpipelinedCyclesPerImage * cycleSec;

    const double peakMacsPerSec =
        cfg.peakMacsPerCycle() / cycleSec * plan.chips;
    perf.macUtilization = static_cast<double>(net.totalMacs()) *
        perf.imagesPerSec / peakMacsPerSec;
    perf.activity =
        activityEnergy(net, plan, model, perf.cyclesPerImage);
    return perf;
}

IsaacPerf
analyzeIsaac(const nn::Network &net, const arch::IsaacConfig &cfg,
             int chips)
{
    const auto plan = planPipeline(net, cfg, chips);
    const energy::IsaacEnergyModel model(cfg);
    return analyzeIsaac(net, plan, model);
}

} // namespace isaac::pipeline
