/**
 * @file
 * Fundamental scalar types and global constants shared by every ISAAC
 * subsystem.
 */

#ifndef ISAAC_COMMON_TYPES_H
#define ISAAC_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace isaac {

/** A simulation cycle index. One ISAAC cycle is one crossbar read. */
using Cycle = std::uint64_t;

/** The crossbar read latency that defines one ISAAC cycle (Sec. IV). */
constexpr double kCycleNs = 100.0;

/** Digital clock of the tile peripherals (Table I: 1.2 GHz). */
constexpr double kTileClockGHz = 1.2;

/** Bits in the fixed-point data path (Sec. V: 16-bit arithmetic). */
constexpr int kDataBits = 16;

/** Bytes per activation / weight in the digital domain. */
constexpr int kDataBytes = kDataBits / 8;

/** 16-bit fixed-point activation / weight as stored in buffers. */
using Word = std::int16_t;

/**
 * Destructive-interference granularity assumed by the false-sharing
 * audit. Hot shared structures (epoch-log slots, work-stealing deque
 * ends, per-worker scratch) are padded to this boundary so two threads
 * never bounce one line. 64 bytes covers x86-64 and most aarch64
 * parts; `std::hardware_destructive_interference_size` is deliberately
 * not used because it is an ABI hazard (its value may differ between
 * translation units compiled with different tuning flags).
 */
constexpr std::size_t kCacheLineBytes = 64;

/** Wide accumulator for exact dot products (up to ~2^47 fits easily). */
using Acc = std::int64_t;

} // namespace isaac

#endif // ISAAC_COMMON_TYPES_H
