/**
 * @file
 * Fundamental scalar types and global constants shared by every ISAAC
 * subsystem.
 */

#ifndef ISAAC_COMMON_TYPES_H
#define ISAAC_COMMON_TYPES_H

#include <cstdint>

namespace isaac {

/** A simulation cycle index. One ISAAC cycle is one crossbar read. */
using Cycle = std::uint64_t;

/** The crossbar read latency that defines one ISAAC cycle (Sec. IV). */
constexpr double kCycleNs = 100.0;

/** Digital clock of the tile peripherals (Table I: 1.2 GHz). */
constexpr double kTileClockGHz = 1.2;

/** Bits in the fixed-point data path (Sec. V: 16-bit arithmetic). */
constexpr int kDataBits = 16;

/** Bytes per activation / weight in the digital domain. */
constexpr int kDataBytes = kDataBits / 8;

/** 16-bit fixed-point activation / weight as stored in buffers. */
using Word = std::int16_t;

/** Wide accumulator for exact dot products (up to ~2^47 fits easily). */
using Acc = std::int64_t;

} // namespace isaac

#endif // ISAAC_COMMON_TYPES_H
