/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * `fatal()` is for user errors (bad configuration, impossible request):
 * it throws a `FatalError` so library consumers can recover. `panic()`
 * is for internal invariant violations (a bug in this library): it
 * aborts. `warn()` and `inform()` print to stderr and continue.
 */

#ifndef ISAAC_COMMON_LOGGING_H
#define ISAAC_COMMON_LOGGING_H

#include <stdexcept>
#include <string>

namespace isaac {

/** Exception thrown by fatal(): the user asked for something invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Report an unrecoverable user-level error (bad config, model that
 * cannot be mapped, ...) by throwing FatalError.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation (a library bug) and abort.
 */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning about questionable-but-survivable conditions. */
void warn(const std::string &msg);

/** Like warn(), but each distinct message prints only once. */
void warnOnce(const std::string &msg);

/** Print an informational status message. */
void inform(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

} // namespace isaac

#endif // ISAAC_COMMON_LOGGING_H
