/**
 * @file
 * Chase–Lev work-stealing deque.
 *
 * One owner thread pushes and pops at the bottom (LIFO — the owner
 * keeps working on what it just produced, which is exactly the
 * self-requeue pattern of a request walking its layer pipeline), while
 * any number of thieves steal from the top (FIFO — thieves drain the
 * oldest work first, which preserves rough admission order under load
 * imbalance). The memory-order recipe follows Lê, Pop, Cohen &
 * Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
 * Models" (PPoPP'13), with one deliberate deviation: where the paper
 * uses standalone `atomic_thread_fence`, this implementation promotes
 * the adjacent operations to seq_cst instead. ThreadSanitizer does not
 * model standalone fences and would report false races on the
 * fence-based variant; seq_cst on the two contended words costs one
 * locked instruction on x86-64 and keeps every access an atomic op the
 * sanitizer can reason about.
 *
 * The circular buffer grows by doubling. Retired buffers are kept
 * alive until the deque is destroyed: a thief may still be reading a
 * cell of the old buffer after the owner swapped in the bigger one,
 * and the elements in flight exist identically in both generations,
 * so late reads stay valid instead of becoming use-after-free.
 *
 * T must be trivially copyable (the session stores raw `Request *`,
 * ownership is re-wrapped in unique_ptr by whichever thread wins the
 * element).
 */

#ifndef ISAAC_COMMON_STEAL_DEQUE_H
#define ISAAC_COMMON_STEAL_DEQUE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/types.h"

namespace isaac {

template <typename T> class StealDeque
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "StealDeque elements are copied between buffer "
                  "generations and across threads");

  public:
    explicit StealDeque(std::int64_t initialCapacity = 64)
    {
        std::int64_t cap = 1;
        while (cap < initialCapacity)
            cap <<= 1;
        _buf.store(new Buffer(cap), std::memory_order_relaxed);
    }

    ~StealDeque()
    {
        delete _buf.load(std::memory_order_relaxed);
        for (Buffer *b : _retired)
            delete b;
    }

    StealDeque(const StealDeque &) = delete;
    StealDeque &operator=(const StealDeque &) = delete;

    /** Owner only: push one element at the bottom. */
    void push(T value)
    {
        std::int64_t b = _bottom.load(std::memory_order_relaxed);
        std::int64_t t = _top.load(std::memory_order_acquire);
        Buffer *buf = _buf.load(std::memory_order_relaxed);
        if (b - t > buf->capacity - 1)
            buf = grow(buf, t, b);
        buf->put(b, value);
        _bottom.store(b + 1, std::memory_order_seq_cst);
    }

    /** Owner only: pop the most recently pushed element (LIFO). */
    bool pop(T &out)
    {
        std::int64_t b = _bottom.load(std::memory_order_relaxed) - 1;
        Buffer *buf = _buf.load(std::memory_order_relaxed);
        _bottom.store(b, std::memory_order_seq_cst);
        std::int64_t t = _top.load(std::memory_order_seq_cst);
        if (t <= b) {
            out = buf->get(b);
            if (t == b) {
                // Last element: race the thieves for it.
                bool won = _top.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed);
                _bottom.store(b + 1, std::memory_order_relaxed);
                return won;
            }
            return true;
        }
        _bottom.store(b + 1, std::memory_order_relaxed);
        return false;
    }

    /** Any thread: steal the oldest element (FIFO). */
    bool steal(T &out)
    {
        std::int64_t t = _top.load(std::memory_order_seq_cst);
        std::int64_t b = _bottom.load(std::memory_order_seq_cst);
        if (t < b) {
            Buffer *buf = _buf.load(std::memory_order_acquire);
            T value = buf->get(t);
            if (!_top.compare_exchange_strong(t, t + 1,
                                              std::memory_order_seq_cst,
                                              std::memory_order_relaxed))
                return false; // lost the race; caller may retry elsewhere
            out = value;
            return true;
        }
        return false;
    }

    /** Approximate: exact only when the owner is quiescent. */
    std::int64_t sizeApprox() const
    {
        std::int64_t b = _bottom.load(std::memory_order_acquire);
        std::int64_t t = _top.load(std::memory_order_acquire);
        return b > t ? b - t : 0;
    }

    bool emptyApprox() const { return sizeApprox() == 0; }

  private:
    struct Buffer
    {
        explicit Buffer(std::int64_t cap)
            : capacity(cap), mask(cap - 1),
              cells(std::make_unique<std::atomic<T>[]>(
                  static_cast<std::size_t>(cap)))
        {
        }

        T get(std::int64_t i) const
        {
            return cells[static_cast<std::size_t>(i & mask)].load(
                std::memory_order_relaxed);
        }

        void put(std::int64_t i, T value)
        {
            cells[static_cast<std::size_t>(i & mask)].store(
                value, std::memory_order_relaxed);
        }

        const std::int64_t capacity;
        const std::int64_t mask;
        std::unique_ptr<std::atomic<T>[]> cells;
    };

    /** Owner only. Returns the new buffer, retiring the old one. */
    Buffer *grow(Buffer *old, std::int64_t t, std::int64_t b)
    {
        auto *bigger = new Buffer(old->capacity * 2);
        for (std::int64_t i = t; i < b; ++i)
            bigger->put(i, old->get(i));
        _buf.store(bigger, std::memory_order_release);
        _retired.push_back(old);
        return bigger;
    }

    // The two contended words live on their own cache lines; thieves
    // hammering _top must not invalidate the owner's _bottom line.
    alignas(kCacheLineBytes) std::atomic<std::int64_t> _top{0};
    alignas(kCacheLineBytes) std::atomic<std::int64_t> _bottom{0};
    alignas(kCacheLineBytes) std::atomic<Buffer *> _buf{nullptr};
    std::vector<Buffer *> _retired; // owner only; freed in destructor
};

} // namespace isaac

#endif // ISAAC_COMMON_STEAL_DEQUE_H
