#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/logging.h"

namespace isaac {

namespace {

/** Nesting depth of parallelFor/pool execution on this thread. */
thread_local int tlParallelDepth = 0;

struct DepthGuard
{
    DepthGuard() { ++tlParallelDepth; }
    ~DepthGuard() { --tlParallelDepth; }
};

int
hardwareThreads()
{
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
}

} // namespace

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &t : threads)
        t.join();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::ensureWorkers(int workers)
{
    workers = std::min(workers, kMaxThreads);
    std::lock_guard<std::mutex> lock(mtx);
    while (static_cast<int>(threads.size()) < workers)
        threads.emplace_back([this] { workerLoop(); });
}

int
ThreadPool::workers() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return static_cast<int>(threads.size());
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        jobs.push_back(std::move(job));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this] { return stopping || !jobs.empty(); });
            if (stopping && jobs.empty())
                return;
            job = std::move(jobs.front());
            jobs.pop_front();
        }
        DepthGuard depth;
        job();
    }
}

bool
ThreadPool::inParallelRegion()
{
    return tlParallelDepth > 0;
}

int
parallelWorkers(int threads, std::int64_t items)
{
    if (threads < 0)
        fatal("parallelWorkers: thread count must be >= 0");
    if (items <= 1 || ThreadPool::inParallelRegion())
        return 1;
    int resolved = threads == 0 ? hardwareThreads() : threads;
    resolved = std::min(resolved, kMaxThreads);
    resolved = std::min<std::int64_t>(resolved, items);
    return std::max(resolved, 1);
}

void
parallelFor(std::int64_t items, int threads,
            const std::function<void(std::int64_t, int)> &fn)
{
    if (items <= 0)
        return;
    const int workers = parallelWorkers(threads, items);
    if (workers == 1) {
        DepthGuard depth;
        for (std::int64_t i = 0; i < items; ++i)
            fn(i, 0);
        return;
    }

    // Shared chunk cursor: contiguous ranges, no stealing. Small
    // chunks (workers x 4) balance load without cursor contention.
    struct ForState
    {
        std::atomic<std::int64_t> next{0};
        std::atomic<int> pending{0};
        std::mutex mtx;
        std::condition_variable done;
        std::exception_ptr error;
    };
    ForState state;
    const std::int64_t chunk =
        std::max<std::int64_t>(1, items / (4 * workers));

    auto runSlot = [&state, &fn, items, chunk](int slot) {
        try {
            for (;;) {
                const std::int64_t lo =
                    state.next.fetch_add(chunk,
                                         std::memory_order_relaxed);
                if (lo >= items)
                    break;
                const std::int64_t hi = std::min(lo + chunk, items);
                for (std::int64_t i = lo; i < hi; ++i)
                    fn(i, slot);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(state.mtx);
            if (!state.error)
                state.error = std::current_exception();
        }
    };

    auto &pool = ThreadPool::global();
    pool.ensureWorkers(workers - 1);
    state.pending.store(workers - 1, std::memory_order_relaxed);
    for (int slot = 1; slot < workers; ++slot) {
        pool.submit([&state, &runSlot, slot] {
            runSlot(slot);
            std::lock_guard<std::mutex> lock(state.mtx);
            if (state.pending.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                state.done.notify_one();
            }
        });
    }
    {
        DepthGuard depth;
        runSlot(0);
    }
    {
        std::unique_lock<std::mutex> lock(state.mtx);
        state.done.wait(lock, [&state] {
            return state.pending.load(std::memory_order_acquire) == 0;
        });
    }
    if (state.error)
        std::rethrow_exception(state.error);
}

} // namespace isaac
