#include "common/fixed_point.h"

#include <cmath>

#include "common/logging.h"

namespace isaac {

Word
saturate16(Acc value)
{
    if (value > 32767)
        return 32767;
    if (value < -32768)
        return -32768;
    return static_cast<Word>(value);
}

Word
toFixed(double value, FixedFormat fmt)
{
    if (fmt.fracBits < 0 || fmt.fracBits > 15)
        fatal("FixedFormat fraction bits must be in [0, 15]");
    const double scaled = value * static_cast<double>(1 << fmt.fracBits);
    const double rounded = std::nearbyint(scaled);
    if (rounded > 32767.0)
        return 32767;
    if (rounded < -32768.0)
        return -32768;
    return static_cast<Word>(rounded);
}

double
fromFixed(Word value, FixedFormat fmt)
{
    return static_cast<double>(value) /
        static_cast<double>(1 << fmt.fracBits);
}

Word
requantizeAcc(Acc acc, FixedFormat fmt)
{
    // The accumulator has 2*fracBits fraction bits; shift out fracBits
    // of them with round-to-nearest (ties away from zero).
    const Acc half = Acc{1} << (fmt.fracBits - 1);
    Acc shifted;
    if (fmt.fracBits == 0) {
        shifted = acc;
    } else if (acc >= 0) {
        shifted = (acc + half) >> fmt.fracBits;
    } else {
        shifted = -((-acc + half) >> fmt.fracBits);
    }
    return saturate16(shifted);
}

} // namespace isaac
