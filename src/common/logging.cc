#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace isaac {

namespace {
bool verboseEnabled = true;
}

void
fatal(const std::string &msg)
{
    throw FatalError("isaac fatal: " + msg);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "isaac panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "isaac warn: %s\n", msg.c_str());
}

void
warnOnce(const std::string &msg)
{
    static std::mutex mutex;
    static std::set<std::string> seen;
    std::lock_guard<std::mutex> lock(mutex);
    if (seen.insert(msg).second)
        warn(msg);
}

void
inform(const std::string &msg)
{
    if (verboseEnabled)
        std::fprintf(stderr, "isaac info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

} // namespace isaac
