/**
 * @file
 * A small fixed-worker thread pool and a deterministic parallel-for.
 *
 * The functional simulator's hot loops (bit-serial dot products,
 * window evaluation, DSE sweeps) are embarrassingly parallel but must
 * stay *bit-identical* to the serial run. The helpers here make that
 * contract easy to keep:
 *
 *  - `parallelFor(items, threads, fn)` partitions [0, items) over at
 *    most `threads` workers (0 = one per hardware thread, 1 = run
 *    inline on the caller). `fn(index, worker)` receives a stable
 *    worker slot in [0, parallelWorkers(threads, items)) so callers
 *    can keep per-worker accumulators and merge them in slot order.
 *  - Work is handed out in contiguous chunks from a shared atomic
 *    cursor (no work stealing); which worker runs which chunk is
 *    nondeterministic, so callers must only rely on per-index or
 *    per-slot state, never on execution order.
 *  - Nested calls run inline on the worker that issued them: a
 *    parallel caller (e.g. a window loop) composes with a parallel
 *    callee (the engine) without oversubscription or deadlock.
 *
 * Exceptions thrown by `fn` are captured and the first one rethrown
 * on the calling thread after all workers finish.
 */

#ifndef ISAAC_COMMON_THREAD_POOL_H
#define ISAAC_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace isaac {

/** Hard cap on worker threads (sanity bound for config knobs). */
constexpr int kMaxThreads = 256;

/**
 * A fixed set of worker threads draining a shared FIFO queue. One
 * process-wide instance (`ThreadPool::global()`) backs parallelFor;
 * it grows lazily to the largest worker count ever requested.
 */
class ThreadPool
{
  public:
    ThreadPool() = default;
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** The shared pool used by parallelFor. */
    static ThreadPool &global();

    /** Spawn workers until at least `workers` exist (capped). */
    void ensureWorkers(int workers);

    /** Current worker-thread count. */
    int workers() const;

    /** Enqueue one job; it runs on some pool worker. */
    void submit(std::function<void()> job);

    /** True on a thread currently executing pool / parallelFor work. */
    static bool inParallelRegion();

  private:
    friend void parallelFor(
        std::int64_t items, int threads,
        const std::function<void(std::int64_t, int)> &fn);

    void workerLoop();

    mutable std::mutex mtx;
    std::condition_variable cv;
    std::deque<std::function<void()>> jobs;
    std::vector<std::thread> threads;
    bool stopping = false;
};

/**
 * Resolve a thread-count knob: 0 means one worker per hardware
 * thread, otherwise the requested count, clamped to [1, kMaxThreads]
 * and to `items` (never more workers than iterations).
 */
int parallelWorkers(int threads, std::int64_t items);

/**
 * Run `fn(i, worker)` for every i in [0, items). The caller
 * participates as worker 0 and blocks until all iterations finish.
 * Runs inline (worker 0, ascending order) when only one worker is
 * resolved or when already inside a parallel region.
 */
void parallelFor(std::int64_t items, int threads,
                 const std::function<void(std::int64_t, int)> &fn);

} // namespace isaac

#endif // ISAAC_COMMON_THREAD_POOL_H
