/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic pieces of the library (weight synthesis, noise
 * injection, property tests) use this generator so that every run is
 * reproducible from a seed; std::mt19937_64 would also work but
 * SplitMix64 is tiny, fast, and has a trivially specified stream.
 */

#ifndef ISAAC_COMMON_RNG_H
#define ISAAC_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace isaac {

/** SplitMix64: a tiny, high-quality, seedable 64-bit generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniform(std::int64_t lo, std::int64_t hi)
    {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Standard normal via Box-Muller (one value per call). */
    double gaussian();

  private:
    std::uint64_t state;
};

inline double
Rng::gaussian()
{
    // Box-Muller transform; draw until u1 is nonzero.
    double u1 = 0.0;
    do {
        u1 = uniform01();
    } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

} // namespace isaac

#endif // ISAAC_COMMON_RNG_H
