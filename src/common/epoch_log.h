/**
 * @file
 * Per-worker epoch logs: the lock-free statistics substrate.
 *
 * The engine and the serving session used to account their counters by
 * merging a per-call accumulator into shared totals under a mutex at
 * the end of every operation. That merge is the only place unrelated
 * workers ever touch the same cache lines, and it serializes exactly
 * when the machine is busiest. EpochLog replaces it with the
 * RACoherence-style idiom: every OS thread owns one cache-line-aligned
 * *slot* of counters, appends to it with plain atomic stores (no RMW
 * contention — the slot has a single writer), and *publishes* the
 * finished delta by bumping the slot's epoch. Readers fold all slots
 * with a seqlock protocol and may carry a vector-clock `Cursor` that
 * caches each slot's last published snapshot, so a fold only re-reads
 * slots whose epoch advanced.
 *
 * Contract
 * --------
 * - A *publish* is atomic with respect to folds: a fold either sees all
 *   of a published delta or none of it. Partial deltas are never
 *   visible because counters are only touched between the two epoch
 *   bumps of `publish()` (odd epoch = in progress, fold retries).
 * - Workers hold no unpublished state outside an operation: `publish()`
 *   is called at every epoch boundary (operation retire / request
 *   slice completion). Hence at any quiescent point — `stats()` after
 *   a barrier, the watchdog holding the repair lock exclusively, drain
 *   or shutdown — a fold returns exact totals.
 * - `reset()` must not overlap `publish()` (same contract as engine
 *   reprogram). It zeroes every slot and advances the epochs so stale
 *   cursors notice and re-read the zeroed slots.
 * - Thread identity: slots are indexed by a process-wide small thread
 *   id with free-list reuse, so a bounded worker population maps to a
 *   bounded slot range no matter how many threads are created over the
 *   process lifetime. If more than `kMaxThreads` threads are ever live
 *   at once, the excess shares one overflow slot behind a mutex —
 *   correctness degrades to the old locked merge, never to a race.
 */

#ifndef ISAAC_COMMON_EPOCH_LOG_H
#define ISAAC_COMMON_EPOCH_LOG_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace isaac {

namespace detail {

/**
 * Process-wide allocator of small thread ids in [0, kMaxThreads].
 * Ids are claimed lazily on a thread's first publish and returned to a
 * free list when the thread exits, so transient threads (test bodies,
 * session pumps riding pool workers) recycle a compact id range.
 * Id kMaxThreads is the shared overflow id handed out when more than
 * kMaxThreads threads are live simultaneously; it is never recycled.
 */
class ThreadSlotRegistry
{
  public:
    static constexpr int kOverflowId = kMaxThreads;

    static ThreadSlotRegistry &instance()
    {
        static ThreadSlotRegistry reg;
        return reg;
    }

    int acquire()
    {
        std::lock_guard<std::mutex> lock(_mtx);
        if (!_free.empty()) {
            int id = _free.back();
            _free.pop_back();
            return id;
        }
        if (_next < kMaxThreads)
            return _next++;
        return kOverflowId;
    }

    void release(int id)
    {
        if (id == kOverflowId)
            return;
        std::lock_guard<std::mutex> lock(_mtx);
        _free.push_back(id);
    }

  private:
    std::mutex _mtx;
    std::vector<int> _free;
    int _next = 0;
};

/** RAII holder: one id per thread, released on thread exit. */
struct ThreadSlotHolder
{
    int id;
    ThreadSlotHolder() : id(ThreadSlotRegistry::instance().acquire()) {}
    ~ThreadSlotHolder() { ThreadSlotRegistry::instance().release(id); }
    ThreadSlotHolder(const ThreadSlotHolder &) = delete;
    ThreadSlotHolder &operator=(const ThreadSlotHolder &) = delete;
};

inline int threadSlotId()
{
    thread_local ThreadSlotHolder holder;
    return holder.id;
}

} // namespace detail

class EpochLog
{
  public:
    /** Regular slots plus the shared overflow slot. */
    static constexpr int kSlots = kMaxThreads + 1;

    EpochLog() = default;

    explicit EpochLog(std::size_t counters) { configure(counters); }

    ~EpochLog()
    {
        if (!_slots)
            return;
        for (int s = 0; s < kSlots; ++s)
            freeCounters(
                _slots[s].counters.load(std::memory_order_relaxed));
    }

    EpochLog(const EpochLog &) = delete;
    EpochLog &operator=(const EpochLog &) = delete;

    /**
     * Fixes the counter vector width. Must be called exactly once,
     * before the first publish (the engine calls it from its
     * constructor once the tile count is known).
     */
    void configure(std::size_t counters)
    {
        _n = counters;
        _slots = std::make_unique<Slot[]>(kSlots);
    }

    std::size_t counters() const { return _n; }

    /**
     * Adds `delta` (length == counters()) to the calling thread's slot
     * and publishes it as one epoch. Lock-free on the owner's cache
     * lines for the first kMaxThreads live threads; the overflow slot
     * serializes behind a mutex instead of racing.
     */
    void publish(std::span<const std::uint64_t> delta)
    {
        checkWidth(delta.size(), "publish");
        const int id = detail::threadSlotId();
        Slot &slot = _slots[id];
        std::unique_lock<std::mutex> overflow;
        if (id == detail::ThreadSlotRegistry::kOverflowId)
            overflow = std::unique_lock<std::mutex>(_overflowMutex);
        std::atomic<std::uint64_t> *c =
            slot.counters.load(std::memory_order_relaxed);
        if (c == nullptr) {
            c = allocateCounters(_n);
            slot.counters.store(c, std::memory_order_release);
        }
        // Seqlock write side: odd epoch marks the delta in flight, the
        // trailing release bump makes it visible as one unit. Counter
        // stores are release so a fold that observed any one of them
        // is guaranteed to observe an epoch >= the odd bump and retry.
        slot.epoch.fetch_add(1, std::memory_order_acq_rel);
        for (std::size_t i = 0; i < _n; ++i)
            c[i].store(c[i].load(std::memory_order_relaxed) + delta[i],
                       std::memory_order_release);
        slot.epoch.fetch_add(1, std::memory_order_release);
    }

    /**
     * Vector clock over the slots plus the cached per-slot snapshots.
     * A cursor makes repeated folds incremental: slots whose epoch has
     * not advanced since the last fold are not re-read. One cursor
     * serves one reader at a time (guard it with the reader's mutex).
     */
    struct Cursor
    {
        std::vector<std::uint64_t> seen;             // per-slot epoch
        std::vector<std::vector<std::uint64_t>> row; // per-slot snapshot
    };

    /** One-shot fold of every slot into `out` (length == counters()). */
    void fold(std::span<std::uint64_t> out) const
    {
        checkWidth(out.size(), "fold");
        std::fill(out.begin(), out.end(), std::uint64_t{0});
        if (!_slots)
            return;
        std::vector<std::uint64_t> tmp(_n);
        for (int s = 0; s < kSlots; ++s) {
            if (readSlot(_slots[s], tmp))
                for (std::size_t i = 0; i < _n; ++i)
                    out[i] += tmp[i];
        }
    }

    /**
     * Incremental fold: refreshes `cur` from slots whose epoch moved,
     * then sums the cached snapshots into `out`.
     */
    void fold(Cursor &cur, std::span<std::uint64_t> out) const
    {
        checkWidth(out.size(), "fold");
        std::fill(out.begin(), out.end(), std::uint64_t{0});
        if (!_slots)
            return;
        cur.seen.resize(kSlots, 0);
        cur.row.resize(kSlots);
        for (int s = 0; s < kSlots; ++s) {
            const Slot &slot = _slots[s];
            std::uint64_t e = slot.epoch.load(std::memory_order_acquire);
            if (e != cur.seen[s]) {
                cur.row[s].assign(_n, 0);
                readSlot(slot, cur.row[s], &cur.seen[s]);
            }
            if (!cur.row[s].empty())
                for (std::size_t i = 0; i < _n; ++i)
                    out[i] += cur.row[s][i];
        }
    }

    /**
     * Rewinds every slot to zero. Caller must guarantee no publish is
     * in flight (the engine's resetStats()/reprogram contract). Slot
     * epochs advance by two so existing cursors re-read the zeros
     * instead of serving stale cached snapshots.
     */
    void reset()
    {
        if (!_slots)
            return;
        for (int s = 0; s < kSlots; ++s) {
            Slot &slot = _slots[s];
            std::atomic<std::uint64_t> *c =
                slot.counters.load(std::memory_order_relaxed);
            if (c != nullptr)
                for (std::size_t i = 0; i < _n; ++i)
                    c[i].store(0, std::memory_order_release);
            if (slot.epoch.load(std::memory_order_relaxed) != 0)
                slot.epoch.fetch_add(2, std::memory_order_release);
        }
    }

    /** Total publishes across all slots (diagnostic / tests). */
    std::uint64_t publishCount() const
    {
        if (!_slots)
            return 0;
        std::uint64_t total = 0;
        for (int s = 0; s < kSlots; ++s)
            total += _slots[s].epoch.load(std::memory_order_acquire) / 2;
        return total;
    }

    /** Slots that have ever published (diagnostic / tests). */
    int activeSlots() const
    {
        if (!_slots)
            return 0;
        int n = 0;
        for (int s = 0; s < kSlots; ++s)
            if (_slots[s].epoch.load(std::memory_order_acquire) != 0)
                ++n;
        return n;
    }

    /**
     * Slot header: the epoch word and the pointer to the lazily
     * allocated counter block, alone on their own cache line so two
     * workers publishing concurrently never share one.
     */
    struct alignas(kCacheLineBytes) Slot
    {
        std::atomic<std::uint64_t> epoch{0};
        std::atomic<std::atomic<std::uint64_t> *> counters{nullptr};
    };
    static_assert(sizeof(Slot) == kCacheLineBytes,
                  "EpochLog::Slot must occupy exactly one cache line");

  private:
    /**
     * The buffer-width contract, enforced loudly: a span that does
     * not match counters() would otherwise read or write out of
     * bounds (an empty vector folds through a null data pointer).
     */
    void checkWidth(std::size_t got, const char *what) const
    {
        if (got != _n)
            fatal(std::string("EpochLog::") + what + ": span of " +
                  std::to_string(got) + " counters, log configured " +
                  "for " + std::to_string(_n));
    }

    /**
     * Seqlock read side. Returns false for a never-touched slot.
     * On success `out` holds the slot's published totals and, if
     * `seenEpoch` is given, the matching epoch.
     */
    bool readSlot(const Slot &slot, std::span<std::uint64_t> out,
                  std::uint64_t *seenEpoch = nullptr) const
    {
        for (;;) {
            std::uint64_t e1 = slot.epoch.load(std::memory_order_acquire);
            if (e1 == 0)
                return false;
            if (e1 & 1) { // publish in flight; brief by construction
                std::this_thread::yield();
                continue;
            }
            std::atomic<std::uint64_t> *c =
                slot.counters.load(std::memory_order_acquire);
            if (c == nullptr)
                return false;
            for (std::size_t i = 0; i < _n; ++i)
                out[i] = c[i].load(std::memory_order_acquire);
            std::uint64_t e2 = slot.epoch.load(std::memory_order_acquire);
            if (e1 == e2) {
                if (seenEpoch != nullptr)
                    *seenEpoch = e2;
                return true;
            }
        }
    }

    /**
     * Counter blocks are handed out cache-line aligned and sized in
     * whole lines so blocks of different slots can never share a line.
     */
    static std::atomic<std::uint64_t> *allocateCounters(std::size_t n)
    {
        const std::size_t perLine =
            kCacheLineBytes / sizeof(std::atomic<std::uint64_t>);
        const std::size_t padded = ((n + perLine - 1) / perLine) * perLine;
        void *raw = ::operator new(padded * sizeof(std::atomic<std::uint64_t>),
                                   std::align_val_t{kCacheLineBytes});
        auto *c = static_cast<std::atomic<std::uint64_t> *>(raw);
        for (std::size_t i = 0; i < padded; ++i)
            new (&c[i]) std::atomic<std::uint64_t>(0);
        return c;
    }

    static void freeCounters(std::atomic<std::uint64_t> *c)
    {
        if (c != nullptr)
            ::operator delete(c, std::align_val_t{kCacheLineBytes});
    }

    std::size_t _n = 0;
    std::unique_ptr<Slot[]> _slots;
    std::mutex _overflowMutex;
};

} // namespace isaac

#endif // ISAAC_COMMON_EPOCH_LOG_H
