/**
 * @file
 * 16-bit fixed-point arithmetic helpers.
 *
 * ISAAC's data path is 16-bit fixed point (Sec. V). The library does
 * not prescribe a binary point: a FixedFormat carries the number of
 * fraction bits, and all conversions / requantizations saturate to the
 * signed 16-bit range, which matches what a hardware data path with a
 * saturating requantizer after the shift-and-add tree would do.
 */

#ifndef ISAAC_COMMON_FIXED_POINT_H
#define ISAAC_COMMON_FIXED_POINT_H

#include <cstdint>

#include "common/types.h"

namespace isaac {

/** Describes a Qm.n signed 16-bit fixed-point format. */
struct FixedFormat
{
    /** Number of fraction bits (n in Qm.n); 0 <= fracBits <= 15. */
    int fracBits = 12;

    /** Smallest representable step. */
    double resolution() const { return 1.0 / (1 << fracBits); }

    /** Largest representable value. */
    double maxValue() const { return 32767.0 / (1 << fracBits); }

    /** Smallest (most negative) representable value. */
    double minValue() const { return -32768.0 / (1 << fracBits); }
};

/** Clamp a wide integer into the signed 16-bit range. */
Word saturate16(Acc value);

/** Convert a real number to fixed point, rounding to nearest. */
Word toFixed(double value, FixedFormat fmt);

/** Convert fixed point back to a real number. */
double fromFixed(Word value, FixedFormat fmt);

/**
 * Requantize a wide accumulator that holds the exact sum of products
 * of two Q*.n values (so it has 2n fraction bits) back to Q*.n,
 * rounding to nearest and saturating.
 */
Word requantizeAcc(Acc acc, FixedFormat fmt);

} // namespace isaac

#endif // ISAAC_COMMON_FIXED_POINT_H
