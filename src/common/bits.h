/**
 * @file
 * Small bit-manipulation and integer-math helpers.
 */

#ifndef ISAAC_COMMON_BITS_H
#define ISAAC_COMMON_BITS_H

#include <cstdint>

#include "common/logging.h"

namespace isaac {

/** Ceiling division for non-negative integers. */
constexpr std::int64_t
ceilDiv(std::int64_t num, std::int64_t den)
{
    return (num + den - 1) / den;
}

/** ceil(log2(x)) for x >= 1. */
constexpr int
log2Ceil(std::uint64_t x)
{
    int bits = 0;
    std::uint64_t v = 1;
    while (v < x) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

/** floor(log2(x)) for x >= 1. */
constexpr int
log2Floor(std::uint64_t x)
{
    int bits = -1;
    while (x) {
        x >>= 1;
        ++bits;
    }
    return bits;
}

/** True iff x is a power of two (x >= 1). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/**
 * Extract bit `i` of a 16-bit two's-complement word as 0/1.
 * Bit 15 is the sign bit.
 */
inline int
bitOf(std::int16_t value, int i)
{
    return (static_cast<std::uint16_t>(value) >> i) & 1u;
}

/**
 * Extract the v-bit digit starting at bit `lsb` of a 16-bit word,
 * interpreting the word as unsigned (used by multi-bit DAC sweeps).
 */
inline int
digitOf(std::int16_t value, int lsb, int v)
{
    const auto u = static_cast<std::uint16_t>(value);
    return static_cast<int>((u >> lsb) & ((1u << v) - 1u));
}

} // namespace isaac

#endif // ISAAC_COMMON_BITS_H
