/**
 * @file
 * Transient-error specification and health accounting.
 *
 * PR 2 handled *permanent* faults (stuck cells, dead tiles). This
 * layer covers the *transient* error classes that silently corrupt
 * an analog inference pipeline between programming and readout
 * (Xiao et al.'s taxonomy, RxNN's end-to-end non-ideality argument):
 *
 *  - conductance *drift* between refreshes (modelled in xbar/noise.h
 *    and caught by the ABFT checksum column);
 *  - *ADC/noise excursions* on a single read (caught by the same
 *    checksum, recovered by a bounded re-read retry);
 *  - *eDRAM / output-register bit flips* (corrected by SECDED ECC,
 *    uncorrectable words recomputed from the producer);
 *  - *NoC packet corruption* on the c-mesh / HyperTransport links
 *    (detected by CRC tags, recovered by retransmit-and-backoff,
 *    escalated to a link kill when a retry budget is exhausted).
 *
 * TransientSpec configures the injection rates and recovery budgets;
 * TransientStats is the uniform counter block every detector feeds;
 * HealthMonitor is the thread-safe roll-up a CompiledModel owns.
 * Everything is deterministic per seed and bit-identical at any
 * thread count (each injection draw is keyed by logical coordinates,
 * never by execution order).
 */

#ifndef ISAAC_RESILIENCE_HEALTH_H
#define ISAAC_RESILIENCE_HEALTH_H

#include <cstdint>
#include <mutex>
#include <string>

namespace isaac::resilience {

/**
 * Injection rates and recovery budgets for the transient-error
 * classes outside the crossbar (crossbar-side drift/retry knobs live
 * in xbar::NoiseSpec / xbar::EngineConfig, next to the device model
 * they perturb). All rates default to zero: the stack is exact until
 * a campaign turns something on.
 */
struct TransientSpec
{
    /** Per-bit flip probability per eDRAM buffer pass. */
    double edramFlipRate = 0.0;

    /** Per-bit flip probability per output-register pass. */
    double orFlipRate = 0.0;

    /** Per-transmission corruption probability of one NoC packet. */
    double packetCorruptRate = 0.0;

    /** Retransmissions allowed per packet before giving up. */
    int maxPacketRetries = 4;

    /**
     * Corrupted packets tolerated on one link before it is declared
     * dead and its work migrates (the chip simulator falls through
     * to the PR 2 tile-kill path).
     */
    int linkRetryBudget = 64;

    /** First retransmit backoff in cycles; doubles per attempt. */
    int packetBackoffCycles = 2;

    /** Cycles charged to recompute one uncorrectable eDRAM word. */
    int recomputeCycles = 8;

    /** Payload words per CRC-tagged packet. */
    int wordsPerPacket = 32;

    /** Seed for the deterministic injection streams. */
    std::uint64_t seed = 0x7E11;

    bool eccEnabled() const
    {
        return edramFlipRate > 0.0 || orFlipRate > 0.0;
    }
    bool nocEnabled() const { return packetCorruptRate > 0.0; }
    bool anyEnabled() const { return eccEnabled() || nocEnabled(); }

    /** Sanity-check rates/budgets; fatal() on bad values. */
    void validate() const;
};

/**
 * The uniform transient-error counter block: what was detected, what
 * was corrected, what had to be recomputed or retransmitted, and how
 * many recovery cycles the run spent. Plain data, mergeable, and
 * comparable (the thread-count-parity tests assert equality).
 */
struct TransientStats
{
    // ABFT checksum column (crossbar read path).
    std::uint64_t abftChecks = 0;     ///< Tile-phase checks run.
    std::uint64_t abftMismatches = 0; ///< Checks that flagged.
    std::uint64_t abftRetries = 0;    ///< Bounded re-reads issued.
    std::uint64_t abftRetryCycles = 0; ///< Backoff cycles spent.
    std::uint64_t abftUncorrected = 0; ///< Retry budget exhausted.
    std::uint64_t abftDisabledTiles = 0; ///< Checksum col defective.

    // Drift-aware refresh (reuses the program-verify loop's cost).
    std::uint64_t driftRefreshes = 0; ///< Array refresh passes.
    std::uint64_t refreshPulses = 0;  ///< Write pulses charged.

    // SECDED on the eDRAM tile buffer and OR registers.
    std::uint64_t eccWords = 0;     ///< Words passed through ECC.
    std::uint64_t eccBitFlips = 0;  ///< Bit flips injected.
    std::uint64_t eccSingles = 0;   ///< Single-bit corrections.
    std::uint64_t eccDoubles = 0;   ///< Double-bit detections.
    std::uint64_t eccRecomputedWords = 0; ///< Restored from source.
    std::uint64_t eccRecomputeCycles = 0; ///< Recompute penalty.

    // CRC-tagged NoC packets.
    std::uint64_t packetsSent = 0;      ///< Transmissions issued.
    std::uint64_t packetsCorrupted = 0; ///< CRC mismatches seen.
    std::uint64_t packetsRetransmitted = 0;
    std::uint64_t packetBackoffCycles = 0;
    std::uint64_t packetsUncorrected = 0; ///< Budget exhausted.
    std::uint64_t deadLinks = 0; ///< Links killed over budget.

    /** Errors any detector flagged. */
    std::uint64_t
    detected() const
    {
        return abftMismatches + eccSingles + eccDoubles +
            packetsCorrupted;
    }

    /** Errors recovered exactly (corrected / recomputed / resent). */
    std::uint64_t
    corrected() const
    {
        return (abftMismatches - abftUncorrected) + eccSingles +
            eccRecomputedWords +
            (packetsCorrupted - packetsUncorrected);
    }

    /** Cycles the run spent on recovery instead of compute. */
    std::uint64_t
    recoveryCycles() const
    {
        return abftRetryCycles + eccRecomputeCycles +
            packetBackoffCycles;
    }

    void merge(const TransientStats &other);

    bool operator==(const TransientStats &) const = default;

    /** Serialize (matches the BENCH_*.json idiom). */
    std::string toJson() const;
};

/**
 * Thread-safe accumulator for TransientStats deltas. Detectors batch
 * their counters locally and add() once, so totals are exact sums
 * regardless of interleaving — the same discipline the engine uses
 * for EngineStats.
 */
class HealthMonitor
{
  public:
    void add(const TransientStats &delta);
    TransientStats snapshot() const;
    void reset();

  private:
    mutable std::mutex mu;
    TransientStats total;
};

} // namespace isaac::resilience

#endif // ISAAC_RESILIENCE_HEALTH_H
