/**
 * @file
 * Fault-aware column placement: program weight slices onto healthy
 * physical columns, spending spare columns on defective ones.
 *
 * A stuck cell only matters when its frozen level differs from the
 * level the column wants at that row — content-aware remapping (the
 * observation RxNN and Xiao et al. exploit) recovers far more than
 * discarding every column containing a defect. The pass therefore
 * works on *verified mismatches*: it programs a logical column into
 * a candidate physical column with the bounded program-verify loop,
 * reads it back, and moves on to a spare only if some cell refused
 * its target. When every candidate is defective for this content the
 * least-bad one is kept and its mismatches are reported as
 * uncorrectable — the quantity the graceful-degradation layer and
 * bench_resilience track.
 *
 * The assignment is deterministic: candidates are tried in a fixed
 * order (preferred column, then spares ascending), and all
 * programming happens serially per array.
 */

#ifndef ISAAC_RESILIENCE_REMAP_H
#define ISAAC_RESILIENCE_REMAP_H

#include <span>
#include <vector>

#include "resilience/fault_map.h"
#include "xbar/crossbar.h"

namespace isaac::resilience {

/** Result of placing one array's logical columns. */
struct ColumnPlan
{
    /** Physical column serving each logical column. */
    std::vector<int> colMap;
    /** Mismatching cells observed across all probed columns. */
    FaultMap faults;
    /** Logical columns moved off their preferred position. */
    int remappedColumns = 0;
    /** Cells still wrong in the assigned columns (spares ran out). */
    int uncorrectableCells = 0;
    /** Cell writes issued while placing (for write accounting). */
    std::int64_t cellWrites = 0;
    /**
     * Stored levels the verification pass observed in the assigned
     * columns, row-major usedRows x logicalCols in *logical* column
     * order. Downstream passes that need the post-placement contents
     * (the engine's ABFT checksum targets) reuse this readback
     * instead of re-reading every cell.
     */
    std::vector<int> stored;
};

/**
 * Place `logicalCols` columns of target levels onto `array`.
 *
 * @param intended   row-major rows x logicalCols target levels
 * @param rows       rows to program (the full array height)
 * @param usedRows   rows that participate in dot products; only
 *                   these are verified (defects below them are
 *                   never read)
 * @param preferred  preferred physical column per logical column
 * @param spares     physical columns available as substitutes, in
 *                   the order they may be consumed
 */
ColumnPlan assignColumns(xbar::CrossbarArray &array,
                         std::span<const int> intended, int rows,
                         int usedRows, int logicalCols,
                         std::span<const int> preferred,
                         std::span<const int> spares);

/**
 * Reprogram already-placed columns with new targets, touching only
 * cells whose target changed (`previous` may be empty for a full
 * rewrite). Verifies the used rows of every assigned column and
 * returns the fresh fault/uncorrectable census for the new content.
 * The column map itself is not revisited: remapping is decided once
 * at manufacturing/load time, as a real spare allocator would.
 */
ColumnPlan reprogramColumns(xbar::CrossbarArray &array,
                            std::span<const int> intended,
                            std::span<const int> previous, int rows,
                            int usedRows, int logicalCols,
                            std::span<const int> colMap);

} // namespace isaac::resilience

#endif // ISAAC_RESILIENCE_REMAP_H
