/**
 * @file
 * Structured resilience reporting: what the detect -> retry ->
 * remap -> degrade loop observed, aggregated from per-array fault
 * reports up to a chip-level summary that benches and downstream
 * dashboards consume as JSON.
 */

#ifndef ISAAC_RESILIENCE_SUMMARY_H
#define ISAAC_RESILIENCE_SUMMARY_H

#include <cstdint>
#include <string>

#include "resilience/health.h"

namespace isaac::resilience {

/** Fault census of one physical array (or a sum over arrays). */
struct ArrayFaultReport
{
    /** Injected stuck cells present in the array(s). */
    std::int64_t stuckCells = 0;
    /** Cells program-verify observed refusing their target. */
    std::int64_t faultyCells = 0;
    /** Logical columns moved onto spares. */
    std::int64_t remappedColumns = 0;
    /** Mismatching cells left in assigned columns (spares ran out). */
    std::int64_t uncorrectableCells = 0;
    /** Write pulses issued by the program-verify loops. */
    std::int64_t programPulses = 0;

    void
    merge(const ArrayFaultReport &other)
    {
        stuckCells += other.stuckCells;
        faultyCells += other.faultyCells;
        remappedColumns += other.remappedColumns;
        uncorrectableCells += other.uncorrectableCells;
        programPulses += other.programPulses;
    }

    bool operator==(const ArrayFaultReport &) const = default;
};

/**
 * End-to-end resilience summary of a run: fault handling at the
 * array level, ADC saturation on the read path, and structural
 * degradation (dead tiles, migrated work, retained throughput).
 */
struct ResilienceSummary
{
    ArrayFaultReport faults;
    /** ADC conversions that clipped (noisy front end). */
    std::uint64_t adcClips = 0;
    /** Hard-failed tiles injected into the simulation. */
    int deadTiles = 0;
    /** Work units migrated off dead tiles. */
    int remappedServers = 0;
    /** Nominal / degraded interval ratio (1.0 = no slowdown). */
    double throughputRetained = 1.0;

    /**
     * Transient-error detection/recovery counters (ABFT, drift
     * refresh, ECC, NoC retry) rolled up by the HealthMonitor.
     */
    TransientStats transient;

    /** Serialize for dashboards (matches the BENCH_*.json idiom). */
    std::string toJson() const;
};

/**
 * Throughput retained after degradation: nominal over degraded
 * cycles-per-image, clamped to [0, 1].
 */
double throughputRetained(double nominalInterval,
                          double degradedInterval);

} // namespace isaac::resilience

#endif // ISAAC_RESILIENCE_SUMMARY_H
