#include "resilience/health.h"

#include "common/logging.h"
#include "core/json_writer.h"

namespace isaac::resilience {

void
TransientSpec::validate() const
{
    if (edramFlipRate < 0.0 || edramFlipRate > 1.0 ||
        orFlipRate < 0.0 || orFlipRate > 1.0 ||
        packetCorruptRate < 0.0 || packetCorruptRate > 1.0) {
        fatal("TransientSpec: rates must be in [0, 1]");
    }
    if (maxPacketRetries < 0 || linkRetryBudget < 1)
        fatal("TransientSpec: retry budgets must be non-negative "
              "(link budget >= 1)");
    if (packetBackoffCycles < 1 || recomputeCycles < 0)
        fatal("TransientSpec: backoff must be >= 1 cycle");
    if (wordsPerPacket < 1)
        fatal("TransientSpec: packets need at least one word");
}

void
TransientStats::merge(const TransientStats &other)
{
    abftChecks += other.abftChecks;
    abftMismatches += other.abftMismatches;
    abftRetries += other.abftRetries;
    abftRetryCycles += other.abftRetryCycles;
    abftUncorrected += other.abftUncorrected;
    abftDisabledTiles += other.abftDisabledTiles;
    driftRefreshes += other.driftRefreshes;
    refreshPulses += other.refreshPulses;
    eccWords += other.eccWords;
    eccBitFlips += other.eccBitFlips;
    eccSingles += other.eccSingles;
    eccDoubles += other.eccDoubles;
    eccRecomputedWords += other.eccRecomputedWords;
    eccRecomputeCycles += other.eccRecomputeCycles;
    packetsSent += other.packetsSent;
    packetsCorrupted += other.packetsCorrupted;
    packetsRetransmitted += other.packetsRetransmitted;
    packetBackoffCycles += other.packetBackoffCycles;
    packetsUncorrected += other.packetsUncorrected;
    deadLinks += other.deadLinks;
}

std::string
TransientStats::toJson() const
{
    core::JsonObject o;
    o.field("abft_checks", abftChecks)
        .field("abft_mismatches", abftMismatches)
        .field("abft_retries", abftRetries)
        .field("abft_retry_cycles", abftRetryCycles)
        .field("abft_uncorrected", abftUncorrected)
        .field("abft_disabled_tiles", abftDisabledTiles)
        .field("drift_refreshes", driftRefreshes)
        .field("refresh_pulses", refreshPulses)
        .field("ecc_words", eccWords)
        .field("ecc_bit_flips", eccBitFlips)
        .field("ecc_singles", eccSingles)
        .field("ecc_doubles", eccDoubles)
        .field("ecc_recomputed_words", eccRecomputedWords)
        .field("ecc_recompute_cycles", eccRecomputeCycles)
        .field("packets_sent", packetsSent)
        .field("packets_corrupted", packetsCorrupted)
        .field("packets_retransmitted", packetsRetransmitted)
        .field("packet_backoff_cycles", packetBackoffCycles)
        .field("packets_uncorrected", packetsUncorrected)
        .field("dead_links", deadLinks)
        .field("detected", detected())
        .field("corrected", corrected())
        .field("recovery_cycles", recoveryCycles());
    return o.str();
}

void
HealthMonitor::add(const TransientStats &delta)
{
    std::lock_guard<std::mutex> lock(mu);
    total.merge(delta);
}

TransientStats
HealthMonitor::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return total;
}

void
HealthMonitor::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    total = TransientStats{};
}

} // namespace isaac::resilience
