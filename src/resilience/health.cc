#include "resilience/health.h"

#include <cstdio>

#include "common/logging.h"

namespace isaac::resilience {

void
TransientSpec::validate() const
{
    if (edramFlipRate < 0.0 || edramFlipRate > 1.0 ||
        orFlipRate < 0.0 || orFlipRate > 1.0 ||
        packetCorruptRate < 0.0 || packetCorruptRate > 1.0) {
        fatal("TransientSpec: rates must be in [0, 1]");
    }
    if (maxPacketRetries < 0 || linkRetryBudget < 1)
        fatal("TransientSpec: retry budgets must be non-negative "
              "(link budget >= 1)");
    if (packetBackoffCycles < 1 || recomputeCycles < 0)
        fatal("TransientSpec: backoff must be >= 1 cycle");
    if (wordsPerPacket < 1)
        fatal("TransientSpec: packets need at least one word");
}

void
TransientStats::merge(const TransientStats &other)
{
    abftChecks += other.abftChecks;
    abftMismatches += other.abftMismatches;
    abftRetries += other.abftRetries;
    abftRetryCycles += other.abftRetryCycles;
    abftUncorrected += other.abftUncorrected;
    abftDisabledTiles += other.abftDisabledTiles;
    driftRefreshes += other.driftRefreshes;
    refreshPulses += other.refreshPulses;
    eccWords += other.eccWords;
    eccBitFlips += other.eccBitFlips;
    eccSingles += other.eccSingles;
    eccDoubles += other.eccDoubles;
    eccRecomputedWords += other.eccRecomputedWords;
    eccRecomputeCycles += other.eccRecomputeCycles;
    packetsSent += other.packetsSent;
    packetsCorrupted += other.packetsCorrupted;
    packetsRetransmitted += other.packetsRetransmitted;
    packetBackoffCycles += other.packetBackoffCycles;
    packetsUncorrected += other.packetsUncorrected;
    deadLinks += other.deadLinks;
}

std::string
TransientStats::toJson() const
{
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\"abft_checks\": %llu, \"abft_mismatches\": %llu, "
        "\"abft_retries\": %llu, \"abft_retry_cycles\": %llu, "
        "\"abft_uncorrected\": %llu, \"abft_disabled_tiles\": %llu, "
        "\"drift_refreshes\": %llu, \"refresh_pulses\": %llu, "
        "\"ecc_words\": %llu, \"ecc_bit_flips\": %llu, "
        "\"ecc_singles\": %llu, \"ecc_doubles\": %llu, "
        "\"ecc_recomputed_words\": %llu, "
        "\"ecc_recompute_cycles\": %llu, "
        "\"packets_sent\": %llu, \"packets_corrupted\": %llu, "
        "\"packets_retransmitted\": %llu, "
        "\"packet_backoff_cycles\": %llu, "
        "\"packets_uncorrected\": %llu, \"dead_links\": %llu, "
        "\"detected\": %llu, \"corrected\": %llu, "
        "\"recovery_cycles\": %llu}",
        static_cast<unsigned long long>(abftChecks),
        static_cast<unsigned long long>(abftMismatches),
        static_cast<unsigned long long>(abftRetries),
        static_cast<unsigned long long>(abftRetryCycles),
        static_cast<unsigned long long>(abftUncorrected),
        static_cast<unsigned long long>(abftDisabledTiles),
        static_cast<unsigned long long>(driftRefreshes),
        static_cast<unsigned long long>(refreshPulses),
        static_cast<unsigned long long>(eccWords),
        static_cast<unsigned long long>(eccBitFlips),
        static_cast<unsigned long long>(eccSingles),
        static_cast<unsigned long long>(eccDoubles),
        static_cast<unsigned long long>(eccRecomputedWords),
        static_cast<unsigned long long>(eccRecomputeCycles),
        static_cast<unsigned long long>(packetsSent),
        static_cast<unsigned long long>(packetsCorrupted),
        static_cast<unsigned long long>(packetsRetransmitted),
        static_cast<unsigned long long>(packetBackoffCycles),
        static_cast<unsigned long long>(packetsUncorrected),
        static_cast<unsigned long long>(deadLinks),
        static_cast<unsigned long long>(detected()),
        static_cast<unsigned long long>(corrected()),
        static_cast<unsigned long long>(recoveryCycles()));
    return buf;
}

void
HealthMonitor::add(const TransientStats &delta)
{
    std::lock_guard<std::mutex> lock(mu);
    total.merge(delta);
}

TransientStats
HealthMonitor::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return total;
}

void
HealthMonitor::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    total = TransientStats{};
}

} // namespace isaac::resilience
