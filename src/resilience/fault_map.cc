#include "resilience/fault_map.h"

#include <algorithm>

#include "common/logging.h"

namespace isaac::resilience {

FaultMap::FaultMap(int rows, int cols)
    : _rows(rows), _cols(cols),
      frozen(static_cast<std::size_t>(rows) * cols, -1)
{
    if (rows < 0 || cols < 0)
        fatal("FaultMap: dimensions must be non-negative");
}

void
FaultMap::add(int row, int col, int frozenLevel)
{
    if (row < 0 || row >= _rows || col < 0 || col >= _cols)
        fatal("FaultMap::add: cell index out of range");
    if (frozenLevel < 0)
        fatal("FaultMap::add: frozen level must be non-negative");
    auto &slot = frozen[static_cast<std::size_t>(row) * _cols + col];
    const FaultEntry entry{row, col, frozenLevel};
    const auto pos = std::lower_bound(_entries.begin(),
                                      _entries.end(), entry);
    if (slot >= 0) {
        // Re-recording the same cell updates its frozen level.
        auto it = std::find_if(_entries.begin(), _entries.end(),
                               [&](const FaultEntry &e) {
                                   return e.row == row &&
                                       e.col == col;
                               });
        it->frozenLevel = frozenLevel;
    } else {
        _entries.insert(pos, entry);
    }
    slot = frozenLevel;
}

bool
FaultMap::faulty(int row, int col) const
{
    return frozenLevel(row, col) >= 0;
}

int
FaultMap::frozenLevel(int row, int col) const
{
    if (row < 0 || row >= _rows || col < 0 || col >= _cols)
        fatal("FaultMap: cell index out of range");
    return frozen[static_cast<std::size_t>(row) * _cols + col];
}

int
FaultMap::countInColumn(int col) const
{
    if (col < 0 || col >= _cols)
        fatal("FaultMap::countInColumn: column out of range");
    int count = 0;
    for (int r = 0; r < _rows; ++r)
        count += frozen[static_cast<std::size_t>(r) * _cols + col] >=
            0;
    return count;
}

FaultMap
extractFaultMap(xbar::CrossbarArray &array)
{
    FaultMap map(array.rows(), array.cols());
    const int rails[2] = {0, array.maxLevel()};
    for (const int rail : rails) {
        for (int r = 0; r < array.rows(); ++r) {
            for (int c = 0; c < array.cols(); ++c) {
                array.program(r, c, rail);
                const int got = array.cell(r, c);
                if (got != rail)
                    map.add(r, c, got);
            }
        }
    }
    return map;
}

} // namespace isaac::resilience
