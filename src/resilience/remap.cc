#include "resilience/remap.h"

#include "common/logging.h"

namespace isaac::resilience {

namespace {

/**
 * Program logical column `c` into physical column `phys` and verify
 * its used rows. Mismatches land in the plan's fault map; the
 * observed levels land in `readback` (one entry per used row) so
 * callers can reuse the verification pass instead of re-reading.
 * Returns how many mismatches there were.
 */
int
programColumn(xbar::CrossbarArray &array, std::span<const int> intended,
              int rows, int usedRows, int logicalCols, int c,
              int phys, ColumnPlan &plan, std::span<int> readback)
{
    for (int r = 0; r < rows; ++r) {
        array.program(
            r, phys,
            intended[static_cast<std::size_t>(r) * logicalCols + c]);
        ++plan.cellWrites;
    }
    int mismatches = 0;
    for (int r = 0; r < usedRows; ++r) {
        const int target =
            intended[static_cast<std::size_t>(r) * logicalCols + c];
        const int got = array.cell(r, phys);
        readback[static_cast<std::size_t>(r)] = got;
        if (got != target) {
            ++mismatches;
            plan.faults.add(r, phys, got);
        }
    }
    return mismatches;
}

void
checkGeometry(const xbar::CrossbarArray &array,
              std::span<const int> intended, int rows, int usedRows,
              int logicalCols)
{
    if (rows != array.rows() || usedRows < 0 || usedRows > rows)
        fatal("resilience: row geometry does not match the array");
    if (logicalCols < 1 ||
        intended.size() !=
            static_cast<std::size_t>(rows) * logicalCols) {
        fatal("resilience: intended-level span does not match the "
              "geometry");
    }
}

} // namespace

ColumnPlan
assignColumns(xbar::CrossbarArray &array, std::span<const int> intended,
              int rows, int usedRows, int logicalCols,
              std::span<const int> preferred,
              std::span<const int> spares)
{
    checkGeometry(array, intended, rows, usedRows, logicalCols);
    if (preferred.size() != static_cast<std::size_t>(logicalCols))
        fatal("assignColumns: need one preferred column per logical "
              "column");

    ColumnPlan plan;
    plan.colMap.assign(static_cast<std::size_t>(logicalCols), -1);
    plan.faults = FaultMap(array.rows(), array.cols());
    plan.stored.assign(
        static_cast<std::size_t>(usedRows) * logicalCols, 0);
    std::vector<char> spareUsed(spares.size(), 0);
    std::vector<int> bestBack(static_cast<std::size_t>(usedRows));
    std::vector<int> probeBack(static_cast<std::size_t>(usedRows));

    for (int c = 0; c < logicalCols; ++c) {
        int best = preferred[static_cast<std::size_t>(c)];
        int bestMis =
            programColumn(array, intended, rows, usedRows,
                          logicalCols, c, best, plan, bestBack);
        for (std::size_t s = 0; s < spares.size() && bestMis > 0;
             ++s) {
            if (spareUsed[s])
                continue;
            const int mis =
                programColumn(array, intended, rows, usedRows,
                              logicalCols, c, spares[s], plan,
                              probeBack);
            if (mis < bestMis) {
                best = spares[s];
                bestMis = mis;
                std::swap(bestBack, probeBack);
            }
        }
        plan.colMap[static_cast<std::size_t>(c)] = best;
        if (best != preferred[static_cast<std::size_t>(c)])
            ++plan.remappedColumns;
        for (std::size_t s = 0; s < spares.size(); ++s)
            if (spares[s] == best)
                spareUsed[s] = 1;
        plan.uncorrectableCells += bestMis;
        for (int r = 0; r < usedRows; ++r) {
            plan.stored[static_cast<std::size_t>(r) * logicalCols +
                        c] = bestBack[static_cast<std::size_t>(r)];
        }
    }
    return plan;
}

ColumnPlan
reprogramColumns(xbar::CrossbarArray &array,
                 std::span<const int> intended,
                 std::span<const int> previous, int rows,
                 int usedRows, int logicalCols,
                 std::span<const int> colMap)
{
    checkGeometry(array, intended, rows, usedRows, logicalCols);
    if (colMap.size() != static_cast<std::size_t>(logicalCols))
        fatal("reprogramColumns: column map does not match the "
              "logical geometry");
    const bool diff = previous.size() == intended.size();

    ColumnPlan plan;
    plan.colMap.assign(colMap.begin(), colMap.end());
    plan.faults = FaultMap(array.rows(), array.cols());
    plan.stored.assign(
        static_cast<std::size_t>(usedRows) * logicalCols, 0);
    for (int c = 0; c < logicalCols; ++c) {
        const int phys = colMap[static_cast<std::size_t>(c)];
        for (int r = 0; r < rows; ++r) {
            const std::size_t idx =
                static_cast<std::size_t>(r) * logicalCols + c;
            const int target = intended[idx];
            // Rewrite on a changed target, and self-heal cells left
            // off-target by an earlier pass (write-noise residue).
            if (diff && previous[idx] == target &&
                array.cell(r, phys) == target) {
                continue;
            }
            array.program(r, phys, target);
            ++plan.cellWrites;
        }
        for (int r = 0; r < usedRows; ++r) {
            const std::size_t idx =
                static_cast<std::size_t>(r) * logicalCols + c;
            const int target = intended[idx];
            const int got = array.cell(r, phys);
            plan.stored[idx] = got;
            if (got != target) {
                plan.faults.add(r, phys, got);
                ++plan.uncorrectableCells;
            }
        }
    }
    return plan;
}

} // namespace isaac::resilience
