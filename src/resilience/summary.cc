#include "resilience/summary.h"

#include "core/json_writer.h"

namespace isaac::resilience {

std::string
ResilienceSummary::toJson() const
{
    core::JsonObject o;
    o.field("stuck_cells", static_cast<std::int64_t>(faults.stuckCells))
        .field("faulty_cells",
               static_cast<std::int64_t>(faults.faultyCells))
        .field("remapped_columns",
               static_cast<std::int64_t>(faults.remappedColumns))
        .field("uncorrectable_cells",
               static_cast<std::int64_t>(faults.uncorrectableCells))
        .field("program_pulses",
               static_cast<std::int64_t>(faults.programPulses))
        .field("adc_clips", static_cast<std::uint64_t>(adcClips))
        .field("dead_tiles", deadTiles)
        .field("remapped_servers", remappedServers)
        .fixed("throughput_retained", throughputRetained, 4)
        .raw("transient", transient.toJson());
    return o.str();
}

double
throughputRetained(double nominalInterval, double degradedInterval)
{
    if (degradedInterval <= 0.0 || nominalInterval <= 0.0)
        return 1.0;
    const double ratio = nominalInterval / degradedInterval;
    return ratio < 0.0 ? 0.0 : (ratio > 1.0 ? 1.0 : ratio);
}

} // namespace isaac::resilience
