#include "resilience/summary.h"

#include <cstdio>

namespace isaac::resilience {

std::string
ResilienceSummary::toJson() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"stuck_cells\": %lld, \"faulty_cells\": %lld, "
        "\"remapped_columns\": %lld, \"uncorrectable_cells\": %lld, "
        "\"program_pulses\": %lld, \"adc_clips\": %llu, "
        "\"dead_tiles\": %d, \"remapped_servers\": %d, "
        "\"throughput_retained\": %.4f, "
        "\"transient\": ",
        static_cast<long long>(faults.stuckCells),
        static_cast<long long>(faults.faultyCells),
        static_cast<long long>(faults.remappedColumns),
        static_cast<long long>(faults.uncorrectableCells),
        static_cast<long long>(faults.programPulses),
        static_cast<unsigned long long>(adcClips), deadTiles,
        remappedServers, throughputRetained);
    return std::string(buf) + transient.toJson() + "}";
}

double
throughputRetained(double nominalInterval, double degradedInterval)
{
    if (degradedInterval <= 0.0 || nominalInterval <= 0.0)
        return 1.0;
    const double ratio = nominalInterval / degradedInterval;
    return ratio < 0.0 ? 0.0 : (ratio > 1.0 ? 1.0 : ratio);
}

} // namespace isaac::resilience
