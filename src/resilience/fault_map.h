/**
 * @file
 * Per-array fault maps: which cells program-verify could not land on
 * their targets, and what level they are frozen at.
 *
 * ISAAC programs weights once and never reprograms during inference
 * (Sec. III), so faults discovered while loading are permanent for
 * the run and worth recording precisely. A FaultMap is the output of
 * that detection step — either the program-verify loop observing a
 * cell that will not reach its target, or an explicit march test
 * (extractFaultMap) that exercises every cell at both rail levels.
 * The map feeds the spare-column remapping pass (remap.h) and the
 * resilience summary.
 *
 * Maps are plain data: deterministic per (seed, geometry), cheap to
 * compare (the thread-count-invariance tests assert equality), and
 * serializable.
 */

#ifndef ISAAC_RESILIENCE_FAULT_MAP_H
#define ISAAC_RESILIENCE_FAULT_MAP_H

#include <vector>

#include "xbar/crossbar.h"

namespace isaac::resilience {

/** One cell that cannot be programmed to its target. */
struct FaultEntry
{
    int row = 0;
    int col = 0;         ///< Physical column index.
    int frozenLevel = 0; ///< Level the cell is stuck at.

    auto operator<=>(const FaultEntry &) const = default;
};

/** The detected faulty cells of one physical crossbar array. */
class FaultMap
{
  public:
    FaultMap() = default;
    FaultMap(int rows, int cols);

    int rows() const { return _rows; }
    int cols() const { return _cols; }

    /** Record one faulty cell (idempotent per coordinate). */
    void add(int row, int col, int frozenLevel);

    /** True if the cell is recorded as faulty. */
    bool faulty(int row, int col) const;

    /** Frozen level of a faulty cell, or -1 if healthy. */
    int frozenLevel(int row, int col) const;

    /** Total faulty cells recorded. */
    int count() const { return static_cast<int>(_entries.size()); }

    /** Faulty cells in one physical column. */
    int countInColumn(int col) const;

    /** All entries, sorted row-major. */
    const std::vector<FaultEntry> &entries() const
    {
        return _entries;
    }

    bool operator==(const FaultMap &other) const = default;

  private:
    int _rows = 0;
    int _cols = 0;
    std::vector<FaultEntry> _entries; ///< Sorted row-major.
    std::vector<int> frozen;          ///< Dense -1 / frozen level.
};

/**
 * March-test fault extraction: program every cell to 0 and verify,
 * then to 2^w - 1 and verify; a cell failing either pass is stuck
 * (every frozen level fails at least one rail). Destructive — the
 * array ends holding all-max content — so run it before weight
 * loading, the way a manufacturing test would. Requires write noise
 * to be disabled (the march would misreport transient errors).
 */
FaultMap extractFaultMap(xbar::CrossbarArray &array);

} // namespace isaac::resilience

#endif // ISAAC_RESILIENCE_FAULT_MAP_H
