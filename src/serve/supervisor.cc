#include "serve/supervisor.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "core/json_writer.h"

namespace isaac::serve {

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::StuckBurst:
        return "stuck-burst";
      case FaultKind::TileKill:
        return "tile-kill";
    }
    return "?";
}

std::string
RecoveryLog::canonicalJson() const
{
    core::JsonArray arr;
    for (const auto &r : records) {
        arr.item(core::JsonObject()
                     .field("event", r.eventIndex)
                     .field("kind", toString(r.event.kind))
                     .field("at_admission", r.event.atAdmission)
                     .field("layer",
                            static_cast<std::uint64_t>(r.event.layer))
                     .field("group", r.event.group)
                     .field("rs", r.event.rs)
                     .field("cs", r.event.cs)
                     .field("cells", r.event.cells)
                     .field("seed", r.event.seed)
                     .field("faults_found", r.faultsFound)
                     .field("remapped_columns", r.remappedColumns)
                     .field("uncorrectable_cells",
                            r.uncorrectableCells)
                     .field("degraded", r.degraded)
                     .field("migrated_copies", r.migratedCopies)
                     .str());
    }
    return core::JsonObject()
        .field("resolved",
               static_cast<std::uint64_t>(records.size()))
        .raw("records", arr.str())
        .str();
}

std::string
RecoveryLog::toJson() const
{
    return core::JsonObject()
        .raw("canonical", canonicalJson())
        .field("polls", polls)
        .field("breaches_detected", breachesDetected)
        .field("forced_repairs", forcedRepairs)
        .field("ecc_spikes", eccSpikes)
        .str();
}

HealthWatchdog::HealthWatchdog(core::CompiledModel &model,
                               InferenceSession &session,
                               FaultTimeline timeline,
                               WatchdogPolicy policy)
    : _model(model), _session(session),
      _timeline(std::move(timeline)), _policy(policy)
{
    if (&_session.model() != &_model) {
        fatal("HealthWatchdog: the session serves a different "
              "CompiledModel than the one supervised");
    }
    if (!_model.isFunctional())
        fatal("HealthWatchdog: the model must be functional");
    for (std::size_t i = 0; i < _timeline.events.size(); ++i) {
        const auto &e = _timeline.events[i];
        const auto *eng = _model.engine(e.layer, e.group);
        if (eng == nullptr) {
            fatal("HealthWatchdog: timeline event " +
                  std::to_string(i) +
                  " targets a (layer, group) with no functional "
                  "engine");
        }
        if (e.rs < 0 || e.rs >= eng->rowSegments() || e.cs < 0 ||
            e.cs >= eng->colSegments()) {
            fatal("HealthWatchdog: timeline event " +
                  std::to_string(i) + " targets tile (" +
                  std::to_string(e.rs) + ", " + std::to_string(e.cs) +
                  ") outside the engine's " +
                  std::to_string(eng->rowSegments()) + "x" +
                  std::to_string(eng->colSegments()) + " grid");
        }
        if (e.kind == FaultKind::StuckBurst && e.cells < 1) {
            fatal("HealthWatchdog: timeline event " +
                  std::to_string(i) +
                  " asks for a stuck burst of zero cells");
        }
        const auto &noise = eng->config().noise;
        if (noise.driftEnabled()) {
            fatal("HealthWatchdog: conductance drift entangles "
                  "results with wall-clock op counts across a "
                  "repair; self-healing requires driftLevelsPerOp "
                  "= 0");
        }
        if (noise.writeNoiseEnabled()) {
            fatal("HealthWatchdog: the march test cannot "
                  "distinguish transient write errors from "
                  "permanent faults; self-healing requires "
                  "writeSigmaLevels = 0");
        }
    }
    _events.assign(_timeline.events.size(), EventState{});
    _lastEccRecomputed =
        _model.transientStats().eccRecomputedWords;
}

std::uint64_t
HealthWatchdog::engineUncorrected(std::size_t layer,
                                  std::int64_t group) const
{
    return _model.engine(layer, group)
        ->transientStats()
        .abftUncorrected;
}

void
HealthWatchdog::poll()
{
    std::lock_guard<std::mutex> lk(_mtx);
    ++_log.polls;

    // ECC recompute pressure is a buffer-health diagnostic, not a
    // crossbar fault: spikes are logged, never escalated.
    const std::uint64_t ecc =
        _model.transientStats().eccRecomputedWords;
    if (ecc - _lastEccRecomputed > _policy.eccRecomputeSpike)
        ++_log.eccSpikes;
    _lastEccRecomputed = ecc;

    const std::uint64_t submitted = _session.stats().submitted;
    // Scan before fire: a pending same-engine fault whose grace
    // window expired is repaired *before* the next scripted event
    // injects, so events spaced further apart than the grace window
    // never overlap on one engine — the deterministic repair
    // barrier the canonical log relies on.
    scanAndRepair(submitted);
    fireDueEvents(submitted);
}

void
HealthWatchdog::scanAndRepair(std::uint64_t submitted)
{
    // Group the pending (fired, unresolved) events by target engine
    // and escalate per engine.
    for (std::size_t i = 0; i < _events.size(); ++i) {
        if (!_events[i].injected || _events[i].resolved)
            continue;
        const auto &e = _timeline.events[i];
        std::vector<std::size_t> pending;
        std::uint64_t baseline = _events[i].uncorrectedAtInjection;
        std::uint64_t oldestFired = _events[i].firedAtAdmission;
        for (std::size_t j = i; j < _events.size(); ++j) {
            if (!_events[j].injected || _events[j].resolved)
                continue;
            const auto &o = _timeline.events[j];
            if (o.layer != e.layer || o.group != e.group)
                continue;
            pending.push_back(j);
            baseline = std::min(
                baseline, _events[j].uncorrectedAtInjection);
            oldestFired =
                std::min(oldestFired, _events[j].firedAtAdmission);
        }
        const bool breach = engineUncorrected(e.layer, e.group) -
                baseline >
            _policy.abftUncorrectedTolerance;
        const bool forced = submitted >=
            oldestFired + _policy.detectionGraceAdmissions;
        if (!breach && !forced)
            continue;
        if (breach)
            ++_log.breachesDetected;
        else
            ++_log.forcedRepairs;
        repairEngine(e.layer, e.group, pending);
    }
}

void
HealthWatchdog::repairEngine(std::size_t layer, std::int64_t group,
                             const std::vector<std::size_t> &pending)
{
    // Shed load while the quarantine waits for in-flight steps to
    // clear the shared side of the repair lock.
    _session._state.store(SessionState::Repairing,
                          std::memory_order_relaxed);

    xbar::TileRepairReport report;
    bool degraded = false;
    std::int64_t migrated = 0;
    {
        std::unique_lock<std::shared_mutex> quarantine(
            _session._repairMtx);
        auto *eng = _model.engineMut(layer, group);
        // The stats breach names the engine, not the cell: march
        // every tile, like a real quarantine would. Faults found,
        // spare remaps, and uncorrectable counts are engine-wide
        // sums — all derived from array state alone, so the record
        // is independent of how many reads raced the detection.
        for (int rs = 0; rs < eng->rowSegments(); ++rs)
            for (int cs = 0; cs < eng->colSegments(); ++cs)
                report.merge(eng->repairTile(rs, cs));
        if (report.uncorrectableCells > 0) {
            // Spares exhausted: degrade around the tile. The engine
            // group is rebuilt from the weight store on fresh
            // arrays and the plan's Dot node re-placed onto the
            // survivors (chip-sim migration policy).
            degraded = true;
            migrated = _model.degradeDotLayer(layer, group);
        }
        // Resolve the session-side fault records while still
        // holding the exclusive lock: no step can complete between
        // the repair landing and the taint bookkeeping seeing it,
        // so nothing parks against an already-repaired fault.
        // (noteFaultRepaired nests _mtx inside _repairMtx — the
        // documented lock order — and re-queues parked requests.)
        for (std::size_t idx : pending)
            _session.noteFaultRepaired(_events[idx].faultToken);
    }

    for (std::size_t idx : pending) {
        _events[idx].resolved = true;
        RepairRecord rec;
        rec.event = _timeline.events[idx];
        rec.eventIndex = static_cast<int>(idx);
        rec.faultsFound = report.faultsFound;
        rec.remappedColumns = report.remappedColumns;
        rec.uncorrectableCells = report.uncorrectableCells;
        rec.degraded = degraded;
        rec.migratedCopies = migrated;
        _log.records.push_back(std::move(rec));
    }

    _degraded = _degraded || degraded;
    _session._state.store(_degraded ? SessionState::Degraded
                                    : SessionState::Healthy,
                          std::memory_order_relaxed);
}

void
HealthWatchdog::fireDueEvents(std::uint64_t submitted)
{
    for (std::size_t i = 0; i < _events.size(); ++i) {
        auto &st = _events[i];
        const auto &e = _timeline.events[i];
        if (st.injected || submitted < e.atAdmission)
            continue;
        {
            // Injection is a structural mutation like a repair:
            // exclusive hold, so every request's step is strictly
            // before or strictly after the fault exists, and the
            // session's fault record is visible before any step
            // that could have read the faulty cells completes.
            std::unique_lock<std::shared_mutex> quarantine(
                _session._repairMtx);
            st.uncorrectedAtInjection =
                engineUncorrected(e.layer, e.group);
            inject(e);
            st.faultToken =
                _session.noteFaultInjected(layerBit(e.layer));
        }
        st.firedAtAdmission = submitted;
        st.injected = true;
    }
}

void
HealthWatchdog::inject(const FaultEvent &e)
{
    auto *eng = _model.engineMut(e.layer, e.group);
    const auto &cfg = eng->config();
    const int railMax = (1 << cfg.cellBits) - 1;
    const int usedRows = std::min(
        cfg.rows, eng->numInputs() - e.rs * cfg.rows);
    const int localOutputs =
        std::min(cfg.outputsPerArray(),
                 eng->numOutputs() - e.cs * cfg.outputsPerArray());

    if (e.kind == FaultKind::TileKill) {
        // Everything dies: data columns, spares, the unit column,
        // and the checksum column — no remap can save this tile.
        const int totalCols = cfg.cols + cfg.spareCols + 1 +
            (cfg.abftChecksum ? 1 : 0);
        for (int r = 0; r < usedRows; ++r)
            for (int c = 0; c < totalCols; ++c)
                eng->injectCellFault(e.rs, e.cs, r, c, railMax);
        return;
    }

    // Stuck burst: seeded draws over the tile's preferred data
    // columns (distinct cells). If manufacturing remaps moved a
    // column off its preferred slot the stuck cell lands on an
    // unmapped column — no reads corrupt, the stats never breach,
    // and the grace backstop still repairs and re-censuses it.
    const int dataCols = localOutputs * cfg.slicesPerWeight();
    Rng rng(e.seed);
    std::set<std::pair<int, int>> cells;
    while (static_cast<int>(cells.size()) <
           std::min(e.cells, usedRows * dataCols)) {
        const int r =
            static_cast<int>(rng.uniform(0, usedRows - 1));
        const int c =
            static_cast<int>(rng.uniform(0, dataCols - 1));
        cells.emplace(r, c);
    }
    for (const auto &[r, c] : cells)
        eng->injectCellFault(e.rs, e.cs, r, c, railMax);
}

bool
HealthWatchdog::idle() const
{
    std::lock_guard<std::mutex> lk(_mtx);
    for (const auto &st : _events)
        if (!st.injected || !st.resolved)
            return false;
    return true;
}

RecoveryLog
HealthWatchdog::log() const
{
    std::lock_guard<std::mutex> lk(_mtx);
    return _log;
}

} // namespace isaac::serve
