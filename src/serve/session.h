/**
 * @file
 * The streaming inference runtime: a request-level session on top of
 * the execution-plan IR.
 *
 * An InferenceSession accepts inference requests against one
 * CompiledModel and pipelines them across the model's IR layer-steps
 * on the shared ThreadPool, reproducing the paper's steady-state
 * inter-layer pipeline at request granularity: image k+1 enters
 * layer 0 while image k is in layer 1 (Sec. IV). Each request walks
 * the IR one step at a time and requeues itself, so in-flight
 * requests interleave across layer-steps instead of hogging a worker
 * end to end.
 *
 * Determinism contract (docs/serving.md): every request's image key
 * is claimed from the model at *submission* time, and all per-image
 * state is request-local until the final commutative merge, so
 * results, EngineStats, per-tile AdcTally, and TransientStats are
 * bit-identical to a sequential inferAllKeyed() replay of the same
 * (input, key) pairs — at any worker count and any execution
 * interleaving.
 *
 * Backpressure: the session admits at most `queueDepth` unfinished
 * requests; submit() blocks for space, trySubmit() refuses instead.
 * Scheduler workers never block, so the session cannot deadlock even
 * when the pool is saturated; drain() lends the calling thread to
 * step execution until the session is empty.
 *
 * Self-healing (docs/resilience.md, ARCHITECTURE.md §11): the
 * session cooperates with serve::HealthWatchdog to survive crossbar
 * faults that surface mid-soak. Layer-steps run under the shared
 * side of a repair lock; the watchdog's fault injection, march-test
 * remap, and degradation hold it exclusively. Every request records
 * which Dot layers it touched and at which fault generation it
 * started, so a request that overlapped a faulty epoch is never
 * completed as-is: it parks until the repair lands, then re-executes
 * from its original input on the same image key (bounded by
 * SessionOptions::healRetryBudget, counted in
 * SessionStats::healedRetries), or fails explicitly with
 * RetriesExhausted — zero silently-wrong results. While a repair
 * runs the session reports SessionState::Repairing and sheds load by
 * halving its admission depth (trySubmit/trySubmitFor backpressure);
 * after an unrepairable tile is degraded around it reports Degraded.
 */

#ifndef ISAAC_SERVE_SESSION_H
#define ISAAC_SERVE_SESSION_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <vector>

#include "common/epoch_log.h"
#include "common/steal_deque.h"
#include "core/accelerator.h"
#include "nn/tensor.h"
#include "resilience/health.h"

namespace isaac::serve {

/**
 * Thrown through a request's future when its deadline expired before
 * the request finished (SessionOptions::defaultDeadline). The request
 * stops executing at the next step boundary; its remaining IR steps
 * never run.
 */
class DeadlineExceeded : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Thrown through a request's future when the request overlapped a
 * faulty epoch and could not be healed: either its per-request heal
 * budget (SessionOptions::healRetryBudget) ran out, or the session
 * shut down while the request was parked awaiting an online repair.
 * The request's result was suspect and is never delivered —
 * explicit failure instead of a silently-wrong value.
 */
class RetriesExhausted : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Serving health of one session (the self-healing state machine;
 * docs/resilience.md). Healthy -> Repairing while the watchdog holds
 * the repair lock (admission depth halves), then back to Healthy —
 * or to Degraded once any tile was unrepairable and the model
 * degraded around it (Degraded is sticky: capacity was permanently
 * lost, though results stay exact on the rebuilt engines).
 */
enum class SessionState
{
    Healthy,
    Repairing,
    Degraded,
};

const char *toString(SessionState state);

/**
 * Bit of one network layer in a fault / touched-layers mask (layers
 * >= 63 share the top bit — conservative: they alias, which can only
 * cause extra heals, never a missed one).
 */
inline std::uint64_t
layerBit(std::size_t layer)
{
    return std::uint64_t{1} << (layer < 63 ? layer : 63);
}

/** Static configuration of one session. */
struct SessionOptions
{
    /**
     * Maximum admitted-but-unfinished requests (the bounded request
     * queue). submit() blocks while the session is this full.
     */
    std::size_t queueDepth = 16;

    /**
     * Concurrent scheduler workers driving layer-steps: 0 = one per
     * hardware thread, otherwise the requested count (clamped to
     * kMaxThreads). Results are identical at any setting.
     */
    int workers = 0;

    /**
     * Steps a worker executes per request before requeueing it.
     * 1 gives the finest inter-request pipelining; larger values
     * trade interleaving for lower queue churn.
     */
    int stepsPerSlice = 1;

    /**
     * Per-request execution deadline, measured from admission
     * (zero = none). A request still unfinished when its deadline
     * passes is abandoned at the next step boundary: its future
     * rethrows DeadlineExceeded and stats().timedOut counts it.
     * Sweeps over pathological scenarios use this so one wedged
     * request cannot stall a whole campaign. Note that a timed-out
     * request has already executed a wall-clock-dependent number of
     * steps, so the model's activity counters are reproducible only
     * for runs where no deadline fires.
     */
    std::chrono::nanoseconds defaultDeadline{0};

    /**
     * Re-executions granted to one request whose layer-steps
     * overlapped a faulty epoch (the watchdog repaired a tile the
     * request had read through). Each heal restarts the request from
     * its original input on the same image key; past the budget the
     * request fails with RetriesExhausted instead of delivering a
     * suspect result.
     */
    int healRetryBudget = 3;
};

/** Activity counters of one session (monotonic over its lifetime). */
struct SessionStats
{
    std::uint64_t submitted = 0; ///< Requests admitted.
    std::uint64_t completed = 0; ///< Requests finished (ok or error).
    std::uint64_t rejected = 0;  ///< trySubmit() refusals.
    std::uint64_t stepsExecuted = 0; ///< IR nodes executed.
    std::uint64_t peakInFlight = 0;  ///< Max concurrent admissions.
    std::uint64_t timedOut = 0;      ///< Requests past their deadline.
    /** IR nodes an expired request skipped instead of executing. */
    std::uint64_t expiredStepsSkipped = 0;
    /** Fault-tainted requests re-executed after a repair landed. */
    std::uint64_t healedRetries = 0;
    /** Tainted requests failed (budget exhausted / shutdown). */
    std::uint64_t healFailed = 0;

    bool operator==(const SessionStats &) const = default;
};

/** A streaming request-level runtime over one compiled model. */
class InferenceSession
{
  public:
    /**
     * The model must outlive the session and be functionally
     * compiled (fatal() otherwise, naming CompileOptions::
     * functional).
     */
    explicit InferenceSession(const core::CompiledModel &model,
                              SessionOptions opts = {});

    /** Drains in-flight work, then detaches (shutdown()). */
    ~InferenceSession();

    InferenceSession(const InferenceSession &) = delete;
    InferenceSession &operator=(const InferenceSession &) = delete;

    /**
     * Submit one inference request. Claims the request's image key
     * immediately (submission order == key order), then blocks while
     * the session is at queueDepth. The future yields the final
     * layer's output, or rethrows the execution error.
     */
    std::future<nn::Tensor> submit(nn::Tensor input);

    /**
     * Non-blocking submit: false (and no admission, counted in
     * stats().rejected) when the session is full or shut down.
     */
    bool trySubmit(nn::Tensor input, std::future<nn::Tensor> &out);

    /**
     * Bounded-wait submit: like submit() while the session has
     * space, but gives up (false, counted in stats().rejected) if no
     * queue slot frees up within `timeout` or the session shuts
     * down. The waiting thread helps execute pending layer-steps
     * like submit() does, so the timeout is a bound, not a stall.
     */
    bool trySubmitFor(nn::Tensor input, std::future<nn::Tensor> &out,
                      std::chrono::nanoseconds timeout);

    /**
     * Submit a request whose future yields every layer's output
     * (the streaming equivalent of CompiledModel::inferAll).
     */
    std::future<std::vector<nn::Tensor>> submitAll(nn::Tensor input);

    /**
     * Convenience batch driver used by CompiledModel::inferBatch:
     * submit every input in order, drain, and return the final
     * outputs in input order.
     */
    std::vector<nn::Tensor>
    run(const std::vector<nn::Tensor> &inputs);

    /**
     * Block until every admitted request has completed. The calling
     * thread executes pending layer-steps itself, so drain() makes
     * progress even with zero free pool workers.
     */
    void drain();

    /**
     * Graceful shutdown: stop admitting (submit() then fatal()s,
     * trySubmit() refuses) and drain what was admitted. Atomic
     * against concurrent trySubmit(): admission and the seal share
     * one critical section, so every future a racing trySubmit()
     * handed out resolves — there is no window where a request is
     * admitted after the drain decision.
     */
    void shutdown();

    /** Whether shutdown() was called. */
    bool closed() const;

    /** Requests admitted but not yet completed. */
    std::size_t inFlight() const;

    /** Lifetime activity counters. */
    SessionStats stats() const;

    /**
     * Current serving health (Healthy / Repairing / Degraded). Only
     * a HealthWatchdog moves it; sessions without one stay Healthy.
     */
    SessionState state() const
    {
        return _state.load(std::memory_order_relaxed);
    }

    const core::CompiledModel &model() const { return _model; }

  private:
    /** One in-flight request walking the IR. */
    struct Request
    {
        std::uint64_t imageKey = 0;
        nn::Tensor cur;
        /** The submitted input, retained so a heal can re-execute
         *  the request from the top on the same image key. */
        nn::Tensor original;
        std::size_t nodeIdx = 0; ///< Next IR node to execute.
        resilience::TransientStats local;
        bool keepAll = false;
        std::vector<nn::Tensor> outs; ///< Layer outputs (keepAll).
        std::promise<nn::Tensor> promiseFinal;
        std::promise<std::vector<nn::Tensor>> promiseAll;
        /** Abandon-after time; max() = no deadline. */
        std::chrono::steady_clock::time_point deadline =
            std::chrono::steady_clock::time_point::max();
        /** Dot layers executed since (re)start (layerBit mask). */
        std::uint64_t touchedLayers = 0;
        /** Fault generation at (re)start; a fault repaired at a
         *  later generation taints any layer-overlap. */
        std::uint64_t startGen = 0;
        int heals = 0; ///< Re-executions consumed.
    };

    /** One injected fault's lifecycle (taint bookkeeping). */
    struct FaultRecord
    {
        std::uint64_t layerMask = 0;   ///< Layers it can corrupt.
        std::uint64_t injectedGen = 0; ///< Generation when injected.
        std::uint64_t repairedGen = 0; ///< 0 = repair still pending.
    };

    /** Taint verdict for one request at completion. */
    struct Taint
    {
        bool tainted = false;        ///< Result is suspect.
        bool awaitingRepair = false; ///< Some overlap not yet fixed.
    };

    /**
     * Admit a request; false if refused. `block` waits for space,
     * bounded by `admitBy` (max() = wait forever; trySubmit passes
     * block = false for the immediate refusal).
     */
    bool enqueue(std::unique_ptr<Request> req, bool block,
                 std::chrono::steady_clock::time_point admitBy =
                     std::chrono::steady_clock::time_point::max());

    /** Fail an expired request's promise; true if it timed out. */
    bool expireIfPastDeadline(Request &req);

    /**
     * One scheduler worker's Chase–Lev deque plus its claim flag.
     * Cache-line-aligned so two workers' deque ends never share a
     * line (the deque also self-pads its top/bottom words).
     */
    struct alignas(kCacheLineBytes) Deck
    {
        StealDeque<Request *> dq;
        std::atomic<bool> busy{false};
    };

    /** Claim a free deck slot for a pump; -1 if none is free. */
    int claimDeck();
    void releaseDeck(int deck);

    /**
     * One sweep over the other workers' decks, stealing the oldest
     * element (FIFO). `self` = the caller's own deck (skipped), or
     * -1 for deckless helpers (drain). False on an empty/lost sweep.
     */
    bool stealFrom(int self, Request *&out);

    /** Push a runnable request and make sure a worker will run it. */
    void makeReady(std::unique_ptr<Request> req,
                   std::unique_lock<std::mutex> &lk);

    /**
     * Execute one slice of `req`; requeues or completes it. `deck` is
     * the calling pump's deck index: a request that is not done
     * requeues to that deck lock-free (the hot path). Deckless
     * callers (blocked submitters, drain) pass -1 and requeue through
     * the inbox under _mtx.
     */
    void step(std::unique_ptr<Request> req, int deck);

    /**
     * drain() body with the session lock already held — shutdown()
     * uses it so sealing admission and the drain decision are one
     * critical section (admit-vs-shutdown atomicity). `lk` is
     * released and reacquired around step execution.
     */
    void drainLocked(std::unique_lock<std::mutex> &lk);

    /** Worker body: drain the ready queue until it is empty. */
    void pump();

    /** Decrement in-flight, count a completion, wake waiters. */
    void completeLocked();

    /** Taint verdict of `req` against the fault records (_mtx held). */
    Taint taintLocked(const Request &req) const;

    /** Rewind `req` to its original input for a heal (_mtx held). */
    void resetForHealLocked(Request &req);

    /** Fail a tainted request with RetriesExhausted (_mtx held). */
    void failHealLocked(std::unique_ptr<Request> req,
                        const char *what);

    // --- HealthWatchdog interface (see serve/supervisor.h) ---

    /**
     * Record an injected fault on the layers in `layerMask`; returns
     * a token for noteFaultRepaired(). Called by the watchdog while
     * it holds the repair lock exclusively, so every request either
     * finished its current step strictly before the fault existed or
     * will see this record when it completes.
     */
    std::size_t noteFaultInjected(std::uint64_t layerMask);

    /**
     * Mark a fault repaired (or degraded around) and release every
     * parked request whose overlapping faults are now all resolved:
     * each re-executes from its original input, or fails with
     * RetriesExhausted past its heal budget.
     */
    void noteFaultRepaired(std::size_t token);

    friend class HealthWatchdog;

    const core::CompiledModel &_model;
    SessionOptions _opts;
    int _workers; ///< Resolved worker count.

    mutable std::mutex _mtx;
    std::condition_variable _cvSpace; ///< Signaled on completion.
    std::condition_variable _cvWork;  ///< Signaled on makeReady.
    /**
     * The inbox: external pushes (admission, heal requeues, parked
     * releases) land here under _mtx. Pumps drain it in batches into
     * their own decks; the per-slice self-requeue never touches it.
     */
    std::deque<std::unique_ptr<Request>> _ready;
    /**
     * Per-worker work-stealing decks. A pump claims one for its
     * lifetime; its requests self-requeue onto it lock-free (owner
     * LIFO — the pump keeps driving the request it just advanced),
     * and idle pumps steal the oldest work of busier ones (thief
     * FIFO — preserving rough admission order under imbalance). A
     * deck's elements are only ever pushed by its owner, and a pump
     * exits only with its own deck verified empty, so deck work
     * always has a live owner: stealing is an accelerator, never a
     * liveness requirement. Sized once in the constructor, never
     * resized (pumps index it without the lock).
     */
    std::vector<std::unique_ptr<Deck>> _decks;
    std::size_t _inFlight = 0;
    int _activePumps = 0;
    bool _closed = false;
    SessionStats _stats;
    /**
     * Per-worker epoch log for the step-side counters
     * [stepsExecuted, expiredStepsSkipped]: published once per slice
     * by the executing thread, folded into stats() on read. These
     * are the only SessionStats fields written on the lock-free
     * requeue path; everything else mutates under _mtx as before.
     */
    mutable EpochLog _stepLog{2};

    /**
     * The repair lock: layer-steps execute under the shared side, so
     * the watchdog's exclusive hold (fault injection, march-test
     * remap, degradation) excludes every in-flight step while steps
     * never block each other. Lock order: _repairMtx before _mtx,
     * never the inverse (step() releases it before taking _mtx; the
     * watchdog nests _mtx inside its exclusive hold).
     */
    std::shared_mutex _repairMtx;

    /** Serving state; written by the watchdog, read by admission. */
    std::atomic<SessionState> _state{SessionState::Healthy};

    /** Injected-fault lifecycle records (guarded by _mtx). */
    std::vector<FaultRecord> _faults;

    /** Fault generation clock (guarded by _mtx). */
    std::uint64_t _gen = 0;

    /**
     * Requests whose results overlapped a still-pending fault,
     * waiting for its repair (guarded by _mtx). Parked requests
     * count in _inFlight but not against the admission depth — they
     * cannot drain until the watchdog acts, so counting them would
     * deadlock a blocked submitter against the poller.
     */
    std::vector<std::unique_ptr<Request>> _parked;

  public:
    // Layout probe for the false-sharing audit
    // (tests/common/test_layout.cc); Deck itself is private.
    static constexpr std::size_t kDeckAlign = alignof(Deck);
};

} // namespace isaac::serve

#endif // ISAAC_SERVE_SESSION_H
