/**
 * @file
 * The streaming inference runtime: a request-level session on top of
 * the execution-plan IR.
 *
 * An InferenceSession accepts inference requests against one
 * CompiledModel and pipelines them across the model's IR layer-steps
 * on the shared ThreadPool, reproducing the paper's steady-state
 * inter-layer pipeline at request granularity: image k+1 enters
 * layer 0 while image k is in layer 1 (Sec. IV). Each request walks
 * the IR one step at a time and requeues itself, so in-flight
 * requests interleave across layer-steps instead of hogging a worker
 * end to end.
 *
 * Determinism contract (docs/serving.md): every request's image key
 * is claimed from the model at *submission* time, and all per-image
 * state is request-local until the final commutative merge, so
 * results, EngineStats, per-tile AdcTally, and TransientStats are
 * bit-identical to a sequential inferAllKeyed() replay of the same
 * (input, key) pairs — at any worker count and any execution
 * interleaving.
 *
 * Backpressure: the session admits at most `queueDepth` unfinished
 * requests; submit() blocks for space, trySubmit() refuses instead.
 * Scheduler workers never block, so the session cannot deadlock even
 * when the pool is saturated; drain() lends the calling thread to
 * step execution until the session is empty.
 */

#ifndef ISAAC_SERVE_SESSION_H
#define ISAAC_SERVE_SESSION_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/accelerator.h"
#include "nn/tensor.h"
#include "resilience/health.h"

namespace isaac::serve {

/**
 * Thrown through a request's future when its deadline expired before
 * the request finished (SessionOptions::defaultDeadline). The request
 * stops executing at the next step boundary; its remaining IR steps
 * never run.
 */
class DeadlineExceeded : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Static configuration of one session. */
struct SessionOptions
{
    /**
     * Maximum admitted-but-unfinished requests (the bounded request
     * queue). submit() blocks while the session is this full.
     */
    std::size_t queueDepth = 16;

    /**
     * Concurrent scheduler workers driving layer-steps: 0 = one per
     * hardware thread, otherwise the requested count (clamped to
     * kMaxThreads). Results are identical at any setting.
     */
    int workers = 0;

    /**
     * Steps a worker executes per request before requeueing it.
     * 1 gives the finest inter-request pipelining; larger values
     * trade interleaving for lower queue churn.
     */
    int stepsPerSlice = 1;

    /**
     * Per-request execution deadline, measured from admission
     * (zero = none). A request still unfinished when its deadline
     * passes is abandoned at the next step boundary: its future
     * rethrows DeadlineExceeded and stats().timedOut counts it.
     * Sweeps over pathological scenarios use this so one wedged
     * request cannot stall a whole campaign. Note that a timed-out
     * request has already executed a wall-clock-dependent number of
     * steps, so the model's activity counters are reproducible only
     * for runs where no deadline fires.
     */
    std::chrono::nanoseconds defaultDeadline{0};
};

/** Activity counters of one session (monotonic over its lifetime). */
struct SessionStats
{
    std::uint64_t submitted = 0; ///< Requests admitted.
    std::uint64_t completed = 0; ///< Requests finished (ok or error).
    std::uint64_t rejected = 0;  ///< trySubmit() refusals.
    std::uint64_t stepsExecuted = 0; ///< IR nodes executed.
    std::uint64_t peakInFlight = 0;  ///< Max concurrent admissions.
    std::uint64_t timedOut = 0;      ///< Requests past their deadline.

    bool operator==(const SessionStats &) const = default;
};

/** A streaming request-level runtime over one compiled model. */
class InferenceSession
{
  public:
    /**
     * The model must outlive the session and be functionally
     * compiled (fatal() otherwise, naming CompileOptions::
     * functional).
     */
    explicit InferenceSession(const core::CompiledModel &model,
                              SessionOptions opts = {});

    /** Drains in-flight work, then detaches (shutdown()). */
    ~InferenceSession();

    InferenceSession(const InferenceSession &) = delete;
    InferenceSession &operator=(const InferenceSession &) = delete;

    /**
     * Submit one inference request. Claims the request's image key
     * immediately (submission order == key order), then blocks while
     * the session is at queueDepth. The future yields the final
     * layer's output, or rethrows the execution error.
     */
    std::future<nn::Tensor> submit(nn::Tensor input);

    /**
     * Non-blocking submit: false (and no admission, counted in
     * stats().rejected) when the session is full or shut down.
     */
    bool trySubmit(nn::Tensor input, std::future<nn::Tensor> &out);

    /**
     * Bounded-wait submit: like submit() while the session has
     * space, but gives up (false, counted in stats().rejected) if no
     * queue slot frees up within `timeout` or the session shuts
     * down. The waiting thread helps execute pending layer-steps
     * like submit() does, so the timeout is a bound, not a stall.
     */
    bool trySubmitFor(nn::Tensor input, std::future<nn::Tensor> &out,
                      std::chrono::nanoseconds timeout);

    /**
     * Submit a request whose future yields every layer's output
     * (the streaming equivalent of CompiledModel::inferAll).
     */
    std::future<std::vector<nn::Tensor>> submitAll(nn::Tensor input);

    /**
     * Convenience batch driver used by CompiledModel::inferBatch:
     * submit every input in order, drain, and return the final
     * outputs in input order.
     */
    std::vector<nn::Tensor>
    run(const std::vector<nn::Tensor> &inputs);

    /**
     * Block until every admitted request has completed. The calling
     * thread executes pending layer-steps itself, so drain() makes
     * progress even with zero free pool workers.
     */
    void drain();

    /**
     * Graceful shutdown: stop admitting (submit() then fatal()s,
     * trySubmit() refuses) and drain what was admitted. Atomic
     * against concurrent trySubmit(): admission and the seal share
     * one critical section, so every future a racing trySubmit()
     * handed out resolves — there is no window where a request is
     * admitted after the drain decision.
     */
    void shutdown();

    /** Whether shutdown() was called. */
    bool closed() const;

    /** Requests admitted but not yet completed. */
    std::size_t inFlight() const;

    /** Lifetime activity counters. */
    SessionStats stats() const;

    const core::CompiledModel &model() const { return _model; }

  private:
    /** One in-flight request walking the IR. */
    struct Request
    {
        std::uint64_t imageKey = 0;
        nn::Tensor cur;
        std::size_t nodeIdx = 0; ///< Next IR node to execute.
        resilience::TransientStats local;
        bool keepAll = false;
        std::vector<nn::Tensor> outs; ///< Layer outputs (keepAll).
        std::promise<nn::Tensor> promiseFinal;
        std::promise<std::vector<nn::Tensor>> promiseAll;
        /** Abandon-after time; max() = no deadline. */
        std::chrono::steady_clock::time_point deadline =
            std::chrono::steady_clock::time_point::max();
    };

    /**
     * Admit a request; false if refused. `block` waits for space,
     * bounded by `admitBy` (max() = wait forever; trySubmit passes
     * block = false for the immediate refusal).
     */
    bool enqueue(std::unique_ptr<Request> req, bool block,
                 std::chrono::steady_clock::time_point admitBy =
                     std::chrono::steady_clock::time_point::max());

    /** Fail an expired request's promise; true if it timed out. */
    bool expireIfPastDeadline(Request &req);

    /** Push a runnable request and make sure a worker will run it. */
    void makeReady(std::unique_ptr<Request> req,
                   std::unique_lock<std::mutex> &lk);

    /** Execute one slice of `req`; requeues or completes it. */
    void step(std::unique_ptr<Request> req);

    /**
     * drain() body with the session lock already held — shutdown()
     * uses it so sealing admission and the drain decision are one
     * critical section (admit-vs-shutdown atomicity). `lk` is
     * released and reacquired around step execution.
     */
    void drainLocked(std::unique_lock<std::mutex> &lk);

    /** Worker body: drain the ready queue until it is empty. */
    void pump();

    const core::CompiledModel &_model;
    SessionOptions _opts;
    int _workers; ///< Resolved worker count.

    mutable std::mutex _mtx;
    std::condition_variable _cvSpace; ///< Signaled on completion.
    std::condition_variable _cvWork;  ///< Signaled on makeReady.
    std::deque<std::unique_ptr<Request>> _ready;
    std::size_t _inFlight = 0;
    int _activePumps = 0;
    bool _closed = false;
    SessionStats _stats;
};

} // namespace isaac::serve

#endif // ISAAC_SERVE_SESSION_H
