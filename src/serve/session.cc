#include "serve/session.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace isaac::serve {

const char *
toString(SessionState state)
{
    switch (state) {
      case SessionState::Healthy:
        return "healthy";
      case SessionState::Repairing:
        return "repairing";
      case SessionState::Degraded:
        return "degraded";
    }
    return "?";
}

InferenceSession::InferenceSession(const core::CompiledModel &model,
                                   SessionOptions opts)
    : _model(model), _opts(opts)
{
    if (!model.isFunctional()) {
        fatal("InferenceSession: model was compiled with "
              "CompileOptions::functional = false (analytic "
              "plan/report only; no crossbar engines were "
              "materialized). Recompile with CompileOptions::"
              "functional = true to serve inference.");
    }
    if (_opts.queueDepth == 0)
        fatal("InferenceSession: queueDepth must be >= 1");
    if (_opts.workers < 0)
        fatal("InferenceSession: workers must be >= 0");
    if (_opts.stepsPerSlice < 1)
        fatal("InferenceSession: stepsPerSlice must be >= 1");
    if (_opts.healRetryBudget < 0)
        fatal("InferenceSession: healRetryBudget must be >= 0");

    const unsigned hc = std::thread::hardware_concurrency();
    const int resolved = _opts.workers == 0
        ? static_cast<int>(hc == 0 ? 1 : hc)
        : _opts.workers;
    _workers = std::clamp(resolved, 1, kMaxThreads);
    ThreadPool::global().ensureWorkers(_workers);
    _decks.reserve(static_cast<std::size_t>(_workers));
    for (int i = 0; i < _workers; ++i)
        _decks.push_back(std::make_unique<Deck>());
}

InferenceSession::~InferenceSession()
{
    shutdown();
    // Pump jobs hold `this`; wait for the last one to exit before
    // the members go away. After drain() the ready queue is empty,
    // so every pump (running or still queued behind other pool
    // work) exits as soon as it is scheduled.
    std::unique_lock<std::mutex> lk(_mtx);
    _cvSpace.wait(lk, [this] { return _activePumps == 0; });
}

std::future<nn::Tensor>
InferenceSession::submit(nn::Tensor input)
{
    auto req = std::make_unique<Request>();
    // The original input is retained so a self-heal retry can
    // re-execute the request from the top on the same image key.
    req->original = input;
    req->cur = std::move(input);
    auto fut = req->promiseFinal.get_future();
    enqueue(std::move(req), /*block=*/true);
    return fut;
}

bool
InferenceSession::trySubmit(nn::Tensor input,
                            std::future<nn::Tensor> &out)
{
    auto req = std::make_unique<Request>();
    req->original = input;
    req->cur = std::move(input);
    auto fut = req->promiseFinal.get_future();
    if (!enqueue(std::move(req), /*block=*/false))
        return false;
    out = std::move(fut);
    return true;
}

bool
InferenceSession::trySubmitFor(nn::Tensor input,
                               std::future<nn::Tensor> &out,
                               std::chrono::nanoseconds timeout)
{
    auto req = std::make_unique<Request>();
    req->original = input;
    req->cur = std::move(input);
    auto fut = req->promiseFinal.get_future();
    const auto admitBy = std::chrono::steady_clock::now() +
        std::max(timeout, std::chrono::nanoseconds{0});
    if (!enqueue(std::move(req), /*block=*/true, admitBy))
        return false;
    out = std::move(fut);
    return true;
}

std::future<std::vector<nn::Tensor>>
InferenceSession::submitAll(nn::Tensor input)
{
    auto req = std::make_unique<Request>();
    req->original = input;
    req->cur = std::move(input);
    req->keepAll = true;
    auto fut = req->promiseAll.get_future();
    enqueue(std::move(req), /*block=*/true);
    return fut;
}

std::vector<nn::Tensor>
InferenceSession::run(const std::vector<nn::Tensor> &inputs)
{
    std::vector<std::future<nn::Tensor>> futs;
    futs.reserve(inputs.size());
    for (const auto &input : inputs)
        futs.push_back(submit(input));
    drain();
    std::vector<nn::Tensor> outs;
    outs.reserve(futs.size());
    for (auto &fut : futs)
        outs.push_back(fut.get());
    return outs;
}

bool
InferenceSession::enqueue(std::unique_ptr<Request> req, bool block,
                          std::chrono::steady_clock::time_point
                              admitBy)
{
    constexpr auto kForever =
        std::chrono::steady_clock::time_point::max();
    std::unique_lock<std::mutex> lk(_mtx);
    bool waited = false;
    for (;;) {
        if (_closed) {
            if (block && admitBy == kForever) {
                fatal("InferenceSession::submit: the session was "
                      "shut down");
            }
            ++_stats.rejected;
            return false;
        }
        // Once the caller has waited past its deadline, reject even
        // if capacity freed meanwhile — a bounded wait must not
        // admit arbitrarily late just because the recheck won the
        // race against the drain. (The first pass never rejects on
        // the deadline: a queue with room admits at any timeout.)
        if (waited && admitBy != kForever &&
            std::chrono::steady_clock::now() >= admitBy) {
            ++_stats.rejected;
            return false;
        }
        // Load shedding: while a repair runs the session admits at
        // half depth, pushing backpressure to trySubmit/trySubmitFor
        // callers instead of queueing work behind the repair lock.
        // Parked requests do not count against the depth — they
        // cannot drain until the watchdog acts, so counting them
        // would deadlock a blocked submitter against the poller.
        const std::size_t depth =
            state() == SessionState::Repairing
                ? std::max<std::size_t>(1, _opts.queueDepth / 2)
                : _opts.queueDepth;
        if (_inFlight - _parked.size() < depth)
            break;
        if (!block ||
            (admitBy != kForever &&
             std::chrono::steady_clock::now() >= admitBy)) {
            ++_stats.rejected;
            return false;
        }
        waited = true;
        // Backpressure with progress: rather than parking until a
        // pool worker frees a slot (which may never happen when the
        // pool is saturated or we are nested inside it), the blocked
        // submitter executes pending layer-steps itself.
        if (!_ready.empty()) {
            auto help = std::move(_ready.front());
            _ready.pop_front();
            lk.unlock();
            step(std::move(help), /*deck=*/-1);
            lk.lock();
        } else {
            _cvSpace.wait_for(lk, std::chrono::milliseconds(1));
        }
    }
    // Claiming under the admission lock makes key order == admission
    // order: the injection streams replay a sequential walk exactly.
    req->imageKey = _model.claimImageKeys(1);
    req->startGen = _gen;
    if (_opts.defaultDeadline.count() > 0) {
        req->deadline =
            std::chrono::steady_clock::now() + _opts.defaultDeadline;
    }
    ++_inFlight;
    ++_stats.submitted;
    _stats.peakInFlight = std::max<std::uint64_t>(
        _stats.peakInFlight, _inFlight);
    makeReady(std::move(req), lk);
    return true;
}

void
InferenceSession::makeReady(std::unique_ptr<Request> req,
                            std::unique_lock<std::mutex> &lk)
{
    (void)lk; // Held by the caller; documents the contract.
    _ready.push_back(std::move(req));
    _cvWork.notify_one();
    // Spawning from inside a parallel region would queue the pump
    // behind the very job waiting on it; there the submitting /
    // draining thread drives execution instead.
    if (_activePumps < _workers && !ThreadPool::inParallelRegion()) {
        ++_activePumps;
        ThreadPool::global().submit([this] { pump(); });
    }
}

bool
InferenceSession::expireIfPastDeadline(Request &req)
{
    constexpr auto kForever =
        std::chrono::steady_clock::time_point::max();
    if (req.deadline == kForever ||
        std::chrono::steady_clock::now() < req.deadline)
        return false;
    auto err = std::make_exception_ptr(DeadlineExceeded(
        "InferenceSession: request deadline expired at IR node " +
        std::to_string(req.nodeIdx)));
    if (req.keepAll)
        req.promiseAll.set_exception(std::move(err));
    else
        req.promiseFinal.set_exception(std::move(err));
    return true;
}

void
InferenceSession::step(std::unique_ptr<Request> req, int deck)
{
    const auto &nodes = _model.executionPlan().nodes();
    std::uint64_t executed = 0;
    std::uint64_t skipped = 0;
    bool failed = false;
    bool expired = expireIfPastDeadline(*req);
    failed = expired;
    if (!expired) {
        // Layer-steps run under the shared side of the repair lock:
        // the watchdog's exclusive hold (fault injection, march-test
        // remap, degradation) excludes every in-flight step, while
        // steps never block each other. Released before _mtx below
        // (lock order: _repairMtx -> _mtx, never the inverse).
        std::shared_lock<std::shared_mutex> repair(_repairMtx);
        for (int budget = _opts.stepsPerSlice;
             budget > 0 && req->nodeIdx < nodes.size(); --budget) {
            // Re-check the deadline at every node, not just the
            // slice boundary: once the request is late, burning Dot
            // work on a result nobody will read only steals worker
            // time from live requests.
            if (executed > 0 && expireIfPastDeadline(*req)) {
                expired = true;
                failed = true;
                break;
            }
            const auto &node = nodes[req->nodeIdx];
            try {
                _model.executeStep(node, req->cur, req->imageKey,
                                   req->local);
            } catch (...) {
                if (req->keepAll)
                    req->promiseAll.set_exception(
                        std::current_exception());
                else
                    req->promiseFinal.set_exception(
                        std::current_exception());
                failed = true;
                break;
            }
            if (node.kind == pipeline::StepKind::Dot)
                req->touchedLayers |= layerBit(node.layer);
            if (node.layerOutput && req->keepAll)
                req->outs.push_back(req->cur);
            ++req->nodeIdx;
            ++executed;
        }
    }
    if (expired)
        skipped = nodes.size() - req->nodeIdx;
    const bool done = failed || req->nodeIdx >= nodes.size();
    // Publish this slice's counters to the calling thread's epoch-log
    // slot — the slice boundary is the epoch boundary, so stats()
    // folds are exact whenever no step is mid-flight. This replaces
    // the per-slice `_stats.* +=` under _mtx on every path below.
    {
        const std::uint64_t flat[2] = {executed, skipped};
        _stepLog.publish(flat);
    }
    if (done && !failed) {
        // Before delivering, hold the result against the fault
        // records: a request whose Dot steps overlapped a faulty
        // epoch is never completed as-is (zero silently-wrong
        // results). Clean requests fall through and fulfill outside
        // the lock, exactly like the pre-self-healing path. A fault
        // injected *after* this check cannot retroactively corrupt
        // reads that already happened: injection holds the repair
        // lock exclusively, so every one of this request's steps
        // finished strictly before it.
        std::unique_lock<std::mutex> lk(_mtx);
        const Taint taint = taintLocked(*req);
        if (taint.tainted) {
            if (req->heals >= _opts.healRetryBudget) {
                failHealLocked(
                    std::move(req),
                    "InferenceSession: request overlapped a faulty "
                    "epoch and exhausted its heal-retry budget");
            } else if (taint.awaitingRepair) {
                if (_closed) {
                    failHealLocked(
                        std::move(req),
                        "InferenceSession: session shut down while "
                        "the request awaited an online repair");
                } else {
                    // Park until the watchdog lands the repair:
                    // re-running now would read the faulty tile
                    // again.
                    _parked.push_back(std::move(req));
                }
            } else {
                // The overlapped fault is repaired: re-execute from
                // the original input on the same image key (the
                // per-image injection streams replay exactly).
                resetForHealLocked(*req);
                makeReady(std::move(req), lk);
            }
            return;
        }
    }
    if (done && !failed) {
        _model.finishImage(req->local);
        if (req->keepAll)
            req->promiseAll.set_value(std::move(req->outs));
        else
            req->promiseFinal.set_value(std::move(req->cur));
    }
    if (!done) {
        // The hot path: the request self-requeues onto the executing
        // pump's own deck lock-free. Liveness is the owner's job —
        // the pump pops its own deck before looking anywhere else and
        // never exits while it is non-empty; idle pumps may steal the
        // request meanwhile. Deckless callers fall back to the inbox.
        if (deck >= 0) {
            _decks[static_cast<std::size_t>(deck)]->dq.push(
                req.release());
            return;
        }
        std::unique_lock<std::mutex> lk(_mtx);
        makeReady(std::move(req), lk);
        return;
    }
    std::unique_lock<std::mutex> lk(_mtx);
    if (expired)
        ++_stats.timedOut;
    completeLocked();
}

void
InferenceSession::completeLocked()
{
    --_inFlight;
    ++_stats.completed;
    _cvSpace.notify_all();
    _cvWork.notify_all();
}

InferenceSession::Taint
InferenceSession::taintLocked(const Request &req) const
{
    Taint t;
    for (const auto &f : _faults) {
        if ((f.layerMask & req.touchedLayers) == 0)
            continue;
        if (f.repairedGen == 0) {
            // Pending fault on a touched layer: suspect, and
            // re-running before the repair would be suspect again.
            t.tainted = true;
            t.awaitingRepair = true;
        } else if (f.repairedGen > req.startGen) {
            // Repaired after this request (re)started: some of its
            // reads may predate the repair. Conservative — a request
            // admitted after the injection but healed anyway only
            // costs a retry, never a wrong result.
            t.tainted = true;
        }
    }
    return t;
}

void
InferenceSession::resetForHealLocked(Request &req)
{
    req.cur = req.original;
    req.nodeIdx = 0;
    req.local = {};
    req.outs.clear();
    req.touchedLayers = 0;
    req.startGen = _gen;
    ++req.heals;
    ++_stats.healedRetries;
}

void
InferenceSession::failHealLocked(std::unique_ptr<Request> req,
                                 const char *what)
{
    ++_stats.healFailed;
    completeLocked();
    auto err = std::make_exception_ptr(RetriesExhausted(what));
    if (req->keepAll)
        req->promiseAll.set_exception(std::move(err));
    else
        req->promiseFinal.set_exception(std::move(err));
}

std::size_t
InferenceSession::noteFaultInjected(std::uint64_t layerMask)
{
    std::lock_guard<std::mutex> lk(_mtx);
    ++_gen;
    _faults.push_back(FaultRecord{layerMask, _gen, 0});
    return _faults.size() - 1;
}

void
InferenceSession::noteFaultRepaired(std::size_t token)
{
    std::unique_lock<std::mutex> lk(_mtx);
    ++_gen;
    _faults.at(token).repairedGen = _gen;
    // Release every parked request whose overlapping faults are all
    // resolved now: each re-executes from its original input, or
    // fails explicitly past its heal budget.
    for (std::size_t i = 0; i < _parked.size();) {
        if (taintLocked(*_parked[i]).awaitingRepair) {
            ++i;
            continue;
        }
        auto req = std::move(_parked[i]);
        _parked.erase(_parked.begin() +
                      static_cast<std::ptrdiff_t>(i));
        if (req->heals >= _opts.healRetryBudget) {
            failHealLocked(
                std::move(req),
                "InferenceSession: request overlapped a faulty epoch "
                "and exhausted its heal-retry budget");
        } else {
            resetForHealLocked(*req);
            makeReady(std::move(req), lk);
        }
    }
}

int
InferenceSession::claimDeck()
{
    for (std::size_t i = 0; i < _decks.size(); ++i) {
        if (!_decks[i]->busy.exchange(true, std::memory_order_acq_rel))
            return static_cast<int>(i);
    }
    // _activePumps <= _workers == deck count, so a pump normally
    // always finds a free deck; the only exception is racing a
    // predecessor that exited but has not released yet. Degrade to
    // deckless helper mode rather than spin.
    return -1;
}

void
InferenceSession::releaseDeck(int deck)
{
    _decks[static_cast<std::size_t>(deck)]->busy.store(
        false, std::memory_order_release);
}

bool
InferenceSession::stealFrom(int self, Request *&out)
{
    const int n = static_cast<int>(_decks.size());
    const int start = self >= 0 ? self + 1 : 0;
    for (int k = 0; k < n; ++k) {
        const int i = (start + k) % n;
        if (i == self)
            continue;
        if (_decks[static_cast<std::size_t>(i)]->dq.steal(out))
            return true;
    }
    return false;
}

void
InferenceSession::pump()
{
    // How many extra inbox requests one lock acquisition moves into
    // the pump's own deck. Batching is where the scalability comes
    // from: the per-slice path is lock-free, so _mtx is touched once
    // per batch plus once per completion instead of twice per slice.
    constexpr std::size_t kInboxBatch = 8;

    const int deck = claimDeck();
    for (;;) {
        // 1. Own deck first (LIFO: keep driving the request this
        //    pump just advanced — and drain it fully before exiting,
        //    which is what keeps deck work owned by a live pump).
        Request *raw = nullptr;
        if (deck >= 0 &&
            _decks[static_cast<std::size_t>(deck)]->dq.pop(raw)) {
            step(std::unique_ptr<Request>(raw), deck);
            continue;
        }
        // 2. Inbox: take one to run and batch a few more into the
        //    own deck under a single _mtx acquisition.
        std::unique_ptr<Request> req;
        {
            std::unique_lock<std::mutex> lk(_mtx);
            if (!_ready.empty()) {
                req = std::move(_ready.front());
                _ready.pop_front();
                if (deck >= 0) {
                    auto &dq =
                        _decks[static_cast<std::size_t>(deck)]->dq;
                    for (std::size_t i = 0;
                         i + 1 < kInboxBatch && !_ready.empty(); ++i) {
                        dq.push(_ready.front().release());
                        _ready.pop_front();
                    }
                }
            }
        }
        if (req) {
            step(std::move(req), deck);
            continue;
        }
        // 3. Steal the oldest work of a busier pump.
        if (deck >= 0 && stealFrom(deck, raw)) {
            step(std::unique_ptr<Request>(raw), deck);
            continue;
        }
        // 4. Own deck and inbox empty, steal sweep came back dry. If
        //    another pump visibly still holds queued work, stay alive
        //    (yield, then steal again) instead of retiring — a retire
        //    here would shrink parallelism until the next admission,
        //    since only makeReady spawns pumps. The owner of that
        //    work is live by invariant, so this loop terminates.
        if (deck >= 0) {
            bool othersBusy = false;
            for (std::size_t i = 0; i < _decks.size(); ++i) {
                if (static_cast<int>(i) != deck &&
                    !_decks[i]->dq.emptyApprox()) {
                    othersBusy = true;
                    break;
                }
            }
            if (othersBusy) {
                std::this_thread::yield();
                continue;
            }
        }
        // 5. Nothing visible anywhere. Confirm the inbox is still
        //    empty under the lock and retire — the decrement shares
        //    the critical section with makeReady's spawn check, so
        //    an admission either sees this pump still active or
        //    spawns a replacement; no work is ever stranded.
        {
            std::unique_lock<std::mutex> lk(_mtx);
            if (!_ready.empty())
                continue;
            if (deck >= 0)
                releaseDeck(deck);
            --_activePumps;
            if (_activePumps == 0)
                _cvSpace.notify_all();
            return;
        }
    }
}

void
InferenceSession::drain()
{
    std::unique_lock<std::mutex> lk(_mtx);
    drainLocked(lk);
}

void
InferenceSession::drainLocked(std::unique_lock<std::mutex> &lk)
{
    while (_inFlight > 0) {
        if (!_ready.empty()) {
            auto req = std::move(_ready.front());
            _ready.pop_front();
            lk.unlock();
            step(std::move(req), /*deck=*/-1);
            lk.lock();
        } else if (_closed && !_parked.empty()) {
            // Shutdown with requests parked on a pending repair: no
            // further watchdog poll is guaranteed, and a parked
            // result is suspect by definition — fail it explicitly
            // rather than deliver it or hang the drain.
            auto req = std::move(_parked.front());
            _parked.erase(_parked.begin());
            failHealLocked(
                std::move(req),
                "InferenceSession: session shut down while the "
                "request awaited an online repair");
        } else {
            // The inbox is empty but requests may sit in pump decks.
            // Lend this thread to stealing (the documented drain()
            // contract: the caller executes layer-steps itself);
            // otherwise wake on requeue or completion (timed:
            // belt-and-braces against a notification racing the
            // unlock).
            lk.unlock();
            Request *raw = nullptr;
            if (stealFrom(/*self=*/-1, raw)) {
                step(std::unique_ptr<Request>(raw), /*deck=*/-1);
                lk.lock();
            } else {
                lk.lock();
                _cvWork.wait_for(lk, std::chrono::milliseconds(1));
            }
        }
    }
}

void
InferenceSession::shutdown()
{
    // Sealing admission and entering the drain loop under ONE lock
    // acquisition makes shutdown atomic against trySubmit(): there
    // is no window between "_closed = true" and the drain decision
    // where a racing submitter could slip a request in unseen.
    // Admission itself checks _closed under this same mutex, so
    // every request trySubmit() ever admitted is either already
    // counted in _inFlight here (and will be drained, resolving its
    // future) or was refused. Idempotent and safe to race with
    // another shutdown(): both seal, both drain.
    std::unique_lock<std::mutex> lk(_mtx);
    _closed = true;
    _cvSpace.notify_all();
    drainLocked(lk);
}

bool
InferenceSession::closed() const
{
    std::lock_guard<std::mutex> lk(_mtx);
    return _closed;
}

std::size_t
InferenceSession::inFlight() const
{
    std::lock_guard<std::mutex> lk(_mtx);
    return _inFlight;
}

SessionStats
InferenceSession::stats() const
{
    SessionStats s;
    {
        std::lock_guard<std::mutex> lk(_mtx);
        s = _stats;
    }
    // Fold the lock-free step-side counters on top of the admission-
    // side fields. Workers publish at every slice boundary, so at any
    // quiescent point (after drain()/shutdown()) the fold is exact.
    std::uint64_t flat[2] = {0, 0};
    _stepLog.fold(flat);
    s.stepsExecuted += flat[0];
    s.expiredStepsSkipped += flat[1];
    return s;
}

} // namespace isaac::serve
