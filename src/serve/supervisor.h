/**
 * @file
 * The self-healing layer of the serving runtime.
 *
 * A HealthWatchdog closes ISAAC's detect -> quarantine -> remap ->
 * retry loop *online*, while an InferenceSession keeps serving. At
 * every poll() (an epoch boundary — the soak drivers poll once per
 * admission) it samples the model's TransientStats/EngineStats
 * deltas and drives a per-engine escalation policy:
 *
 *  - a rise in abftUncorrected beyond WatchdogPolicy::
 *    abftUncorrectedTolerance on an engine carrying a pending
 *    scripted fault breaches that engine;
 *  - a breached engine is quarantined under the session's exclusive
 *    repair lock, every tile is march-tested and rebuilt with a
 *    fresh spare placement (BitSerialEngine::repairTile), and the
 *    session re-executes any request that overlapped the faulty
 *    epoch (InferenceSession self-heal machinery);
 *  - if the spares could not cover the damage (uncorrectableCells >
 *    0) the tile is unrepairable: the layer's engine group is
 *    rebuilt from the weight store on fresh arrays and the
 *    ExecutionPlan's Dot node is annotated through recordMigration()
 *    — the chip simulator's dead-tile migration policy, now
 *    functional — leaving the session Degraded;
 *  - a fault no request happens to read is still repaired at most
 *    WatchdogPolicy::detectionGraceAdmissions admissions after
 *    injection (the forced-repair backstop), which doubles as the
 *    deterministic repair barrier between same-engine events.
 *
 * Faults come from a scripted, seeded FaultTimeline (inject a
 * stuck-cell burst / kill a tile once N requests were admitted), so
 * every recovery is replayable. The RecoveryLog splits what it
 * observes into a *canonical* record — march census, spare remap
 * counts, degradation outcome; pure functions of (model, timeline),
 * byte-identical across worker counts — and *diagnostic* counters
 * (poll/breach/forced-repair tallies) that legitimately depend on
 * interleaving. tests/serve/test_selfheal.cc and bench_selfheal pin
 * the canonical half.
 *
 * Determinism preconditions (fatal() in the constructor): the
 * engines must run without conductance drift and without write noise
 * — drift entangles results with wall-clock op counts across a
 * repair, and the march test cannot tell transient write errors from
 * permanent faults. ABFT checksums (EngineConfig::abftChecksum) are
 * what make stats-driven detection fire; without them only the grace
 * backstop acts.
 */

#ifndef ISAAC_SERVE_SUPERVISOR_H
#define ISAAC_SERVE_SUPERVISOR_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/accelerator.h"
#include "serve/session.h"
#include "xbar/engine.h"

namespace isaac::serve {

/** What a scripted fault event does to its target tile. */
enum class FaultKind
{
    /** A seeded burst of cells in the tile's mapped data columns
     *  freezes at the ON rail — the spare-remap recovery case. */
    StuckBurst,

    /** Every used cell of the tile — data, spares, unit column,
     *  checksum — freezes at the ON rail: spares cannot help, the
     *  repair reports uncorrectable cells, and the watchdog degrades
     *  around the tile (engine rebuild + plan migration). */
    TileKill,
};

const char *toString(FaultKind kind);

/** One scripted, seeded fault. */
struct FaultEvent
{
    FaultKind kind = FaultKind::StuckBurst;

    /**
     * Fire at the first poll() at which this many requests have been
     * admitted (the op-clock of the serving soak). Events targeting
     * the same engine must be spaced further apart than the grace
     * window so each repair resolves before the next injection — the
     * scan-before-fire poll order plus the forced-repair backstop
     * then make the recovery sequence deterministic.
     */
    std::uint64_t atAdmission = 0;

    std::size_t layer = 0;  ///< Dot layer owning the target engine.
    std::int64_t group = 0; ///< Engine group (0 for shared kernels).
    int rs = 0;             ///< Target tile row segment.
    int cs = 0;             ///< Target tile column segment.
    int cells = 4;          ///< Burst size (StuckBurst only).
    std::uint64_t seed = 1; ///< Keys the cell-coordinate draws.
};

/** A replayable fault schedule for one soak. */
struct FaultTimeline
{
    std::vector<FaultEvent> events;
};

/** Escalation thresholds of the watchdog policy. */
struct WatchdogPolicy
{
    /**
     * ABFT retry-budget exhaustions (TransientStats::abftUncorrected
     * delta since injection) tolerated on an engine before it is
     * quarantined. 0 = first uncorrected read breaches.
     */
    std::uint64_t abftUncorrectedTolerance = 0;

    /**
     * eccRecomputedWords delta per poll flagged as a spike
     * (diagnostic only: buffer-ECC pressure is not a crossbar fault,
     * so spikes are logged, not escalated).
     */
    std::uint64_t eccRecomputeSpike = 64;

    /**
     * Forced-repair backstop: a pending fault is repaired no later
     * than this many admissions after it fired, even if no request
     * read the faulty tile (stats never breached). Keeps recovery
     * live for cold tiles and separates same-engine events
     * deterministically.
     */
    std::uint64_t detectionGraceAdmissions = 8;
};

/** Canonical outcome of one scripted fault's recovery. */
struct RepairRecord
{
    FaultEvent event;    ///< The scripted fault, verbatim.
    int eventIndex = 0;  ///< Position in the timeline.
    int faultsFound = 0; ///< March-test census across the engine.
    int remappedColumns = 0;    ///< Columns moved onto spares.
    int uncorrectableCells = 0; ///< Damage spares could not cover.
    bool degraded = false; ///< Unrepairable -> migrated around.
    std::int64_t migratedCopies = 0; ///< Copies re-placed (degraded).
};

/**
 * Everything one watchdog observed, split into the canonical record
 * (interleaving-independent) and diagnostics (timing-dependent).
 */
struct RecoveryLog
{
    std::vector<RepairRecord> records; ///< One per resolved event.

    // --- diagnostics (excluded from canonicalJson) ---
    std::uint64_t polls = 0;
    std::uint64_t breachesDetected = 0; ///< Stats-threshold repairs.
    std::uint64_t forcedRepairs = 0;    ///< Grace-backstop repairs.
    std::uint64_t eccSpikes = 0;        ///< ECC recompute spikes.

    /**
     * The canonical recovery record: a pure function of (model,
     * timeline) — byte-identical across worker counts and poll
     * timings for a fixed seed (tests and bench_selfheal assert
     * equality of the full string).
     */
    std::string canonicalJson() const;

    /** canonicalJson() plus the diagnostic counters. */
    std::string toJson() const;
};

/**
 * Samples health deltas at epoch boundaries and drives the
 * detect -> quarantine -> remap/degrade -> resume escalation on one
 * (model, session) pair.
 */
class HealthWatchdog
{
  public:
    /**
     * `model` must be the same object `session` serves (fatal()
     * otherwise), functionally compiled, with drift and write noise
     * disabled (see the file comment). Every timeline event is
     * validated against the model's engines up front.
     */
    HealthWatchdog(core::CompiledModel &model,
                   InferenceSession &session, FaultTimeline timeline,
                   WatchdogPolicy policy = {});

    /**
     * One epoch boundary: scan pending faults for threshold breaches
     * or expired grace windows and repair those engines, then fire
     * newly due scripted events (scan-before-fire keeps same-engine
     * events from overlapping). Serialized internally; safe to call
     * from any thread, including concurrently with shutdown().
     */
    void poll();

    /** True once every scripted event has fired and been resolved. */
    bool idle() const;

    /** Snapshot of the recovery log (copy; safe while polling). */
    RecoveryLog log() const;

    const WatchdogPolicy &policy() const { return _policy; }

  private:
    /** Lifecycle of one timeline event. */
    struct EventState
    {
        bool injected = false;
        bool resolved = false;
        std::size_t faultToken = 0; ///< Session fault record handle.
        std::uint64_t firedAtAdmission = 0;
        /** Engine abftUncorrected at injection (breach baseline). */
        std::uint64_t uncorrectedAtInjection = 0;
    };

    void fireDueEvents(std::uint64_t submitted);
    void scanAndRepair(std::uint64_t submitted);

    /** Quarantine + repair one engine; resolves `pending` events. */
    void repairEngine(std::size_t layer, std::int64_t group,
                      const std::vector<std::size_t> &pending);

    std::uint64_t engineUncorrected(std::size_t layer,
                                    std::int64_t group) const;

    /** Inject one event's cells (exclusive repair lock held). */
    void inject(const FaultEvent &e);

    core::CompiledModel &_model;
    InferenceSession &_session;
    FaultTimeline _timeline;
    WatchdogPolicy _policy;

    mutable std::mutex _mtx; ///< Serializes polls; guards the rest.
    std::vector<EventState> _events;
    RecoveryLog _log;
    bool _degraded = false;
    std::uint64_t _lastEccRecomputed = 0;
};

} // namespace isaac::serve

#endif // ISAAC_SERVE_SUPERVISOR_H
