#include "arch/ima.h"

#include <algorithm>

#include "common/logging.h"

namespace isaac::arch {

Ima::Ima(const IsaacConfig &cfg, int id)
    : _id(id), total(cfg.xbarsPerIma)
{
}

int
Ima::allocate(int xbars, std::size_t layerIdx)
{
    if (xbars <= 0)
        fatal("Ima::allocate: request must be positive");
    if (owner && *owner != layerIdx)
        return 0;
    const int granted = std::min(xbars, freeXbars());
    if (granted == 0)
        return 0;
    used += granted;
    owner = layerIdx;
    return granted;
}

} // namespace isaac::arch
