/**
 * @file
 * The In-situ Multiply Accumulate unit as a structural resource.
 *
 * An IMA bundles crossbar arrays, their ADCs, the input/output
 * registers, and shift-and-add units (Fig. 2). In the paper's
 * organization an IMA is dedicated to (a slice of) one CNN layer;
 * this class tracks that ownership and the crossbar allocation for
 * the placement machinery.
 */

#ifndef ISAAC_ARCH_IMA_H
#define ISAAC_ARCH_IMA_H

#include <cstddef>
#include <optional>

#include "arch/config.h"

namespace isaac::arch {

/** One IMA's allocation state. */
class Ima
{
  public:
    Ima(const IsaacConfig &cfg, int id);

    int id() const { return _id; }

    /** Crossbars not yet assigned to any layer. */
    int freeXbars() const { return total - used; }

    /** True if no layer owns any of this IMA's crossbars. */
    bool idle() const { return used == 0; }

    /** The layer occupying this IMA, if any. */
    std::optional<std::size_t> layer() const { return owner; }

    /**
     * Assign `xbars` crossbars to `layerIdx`. An IMA serves a single
     * layer (its IR/OR and control FSM are layer-specific), so a
     * second layer is rejected; fatal() if the request exceeds the
     * free arrays.
     * @return crossbars actually granted (0 if owned by another
     *         layer).
     */
    int allocate(int xbars, std::size_t layerIdx);

  private:
    int _id;
    int total;
    int used = 0;
    std::optional<std::size_t> owner;
};

} // namespace isaac::arch

#endif // ISAAC_ARCH_IMA_H
