#include "arch/tile.h"

#include <algorithm>

#include "common/logging.h"

namespace isaac::arch {

Tile::Tile(const IsaacConfig &cfg, TileCoord coord)
    : _coord(coord),
      edramBytes(static_cast<std::int64_t>(cfg.edramKBPerTile) * 1024)
{
    _imas.reserve(static_cast<std::size_t>(cfg.imasPerTile));
    for (int i = 0; i < cfg.imasPerTile; ++i)
        _imas.emplace_back(cfg, i);
}

std::int64_t
Tile::edramFreeBytes() const
{
    return edramBytes - edramUsed;
}

bool
Tile::reserveBuffer(std::int64_t bytes, std::size_t layerIdx)
{
    if (bytes < 0)
        fatal("Tile::reserveBuffer: negative size");
    if (bytes > edramFreeBytes())
        return false;
    edramUsed += bytes;
    bufferByLayer[layerIdx] += bytes;
    return true;
}

int
Tile::freeXbars() const
{
    int free = 0;
    for (const auto &ima : _imas)
        free += ima.freeXbars();
    return free;
}

std::vector<std::size_t>
Tile::residentLayers() const
{
    std::vector<std::size_t> layers;
    auto add = [&](std::size_t l) {
        if (std::find(layers.begin(), layers.end(), l) ==
            layers.end()) {
            layers.push_back(l);
        }
    };
    for (const auto &ima : _imas)
        if (ima.layer())
            add(*ima.layer());
    for (const auto &[l, bytes] : bufferByLayer)
        add(l);
    return layers;
}

} // namespace isaac::arch
