/**
 * @file
 * SECDED (22,16) Hamming code for the eDRAM tile buffer and the
 * output registers.
 *
 * Every 16-bit data word the tile buffer or an OR holds is stored
 * with 5 Hamming check bits plus an overall parity bit — the classic
 * single-error-correct / double-error-detect extension. Decode
 * outcomes:
 *
 *  - syndrome 0, parity even:  clean word;
 *  - parity odd:               exactly one bit flipped (possibly the
 *                              parity bit itself) — corrected;
 *  - syndrome != 0, parity even: two bits flipped — detected but
 *                              uncorrectable; the owner recomputes
 *                              the word from its producer.
 *
 * The codec is pure combinational logic (no state), so the transient
 * layer can run it on any thread. Layout: Hamming positions 1..21
 * with check bits at the power-of-two positions 1, 2, 4, 8, 16 and
 * data bits filling the rest; the overall parity occupies bit 22.
 */

#ifndef ISAAC_ARCH_ECC_H
#define ISAAC_ARCH_ECC_H

#include <cstdint>

namespace isaac::arch {

/** Bits in one SECDED codeword protecting a 16-bit data word. */
inline constexpr int kEccCodeBits = 22;

/** Check bits added per 16-bit word (5 Hamming + overall parity). */
inline constexpr int kEccCheckBits = kEccCodeBits - 16;

/** What decoding a codeword found. */
enum class EccOutcome
{
    Clean,         ///< No error.
    Corrected,     ///< Single-bit error fixed in place.
    Uncorrectable, ///< Double-bit error: data cannot be trusted.
};

/** Encode a 16-bit word into a 22-bit SECDED codeword. */
std::uint32_t eccEncode(std::uint16_t data);

/**
 * Decode a possibly corrupted codeword. On Clean or Corrected the
 * recovered data word lands in `data`; on Uncorrectable `data` is
 * the best-effort extraction and must be recomputed by the caller.
 */
EccOutcome eccDecode(std::uint32_t code, std::uint16_t &data);

} // namespace isaac::arch

#endif // ISAAC_ARCH_ECC_H
