/**
 * @file
 * The ISAAC organization parameters (Fig. 2 hierarchy + Table I).
 *
 * An IsaacConfig describes one design point: the crossbar geometry
 * (via xbar::EngineConfig), the number of crossbars and ADCs per IMA,
 * IMAs per tile, and tiles per chip, plus buffer sizes and link
 * bandwidths. The defaults are the ISAAC-CE design point of Table I:
 * H128-A8-C8 with 12 IMAs per tile and 14x12 = 168 tiles per chip.
 */

#ifndef ISAAC_ARCH_CONFIG_H
#define ISAAC_ARCH_CONFIG_H

#include <cstdint>
#include <string>

#include "common/types.h"
#include "resilience/health.h"
#include "xbar/engine.h"

namespace isaac::arch {

/** One ISAAC design point. */
struct IsaacConfig
{
    /** Crossbar geometry and encoding (defaults: 128x128, w=2, v=1). */
    xbar::EngineConfig engine;

    int adcsPerIma = 8;    ///< ADCs shared by the IMA's crossbars.
    int xbarsPerIma = 8;   ///< Crossbar arrays per IMA.
    int imasPerTile = 12;  ///< IMAs per tile.
    int tilesPerChip = 168; ///< 14 x 12 tiles (Sec. VII).

    /**
     * Effective ADC sampling rate in giga-samples/s. Section V sizes
     * the ADC to drain one 128-column crossbar (plus unit column)
     * per 100 ns cycle: 1.28 GSps ("a single 1.28 GSps ADC unit");
     * Table I's nominal clock is 1.2 GHz.
     */
    double adcGsps = 1.28;

    int edramKBPerTile = 64; ///< Central eDRAM buffer (Sec. VIII-A).
    int edramBanks = 4;
    int busBits = 256;       ///< eDRAM-to-IMA bus width.
    int tileOrBytes = 3072;  ///< Tile output register (3 KB).

    double cycleNs = 100.0;  ///< Crossbar read latency = one cycle.

    int htLinks = 4;             ///< Off-chip HyperTransport links.
    double htLinkGBps = 6.4;     ///< Bandwidth per link.
    double cmeshLinkGBps = 4.0;  ///< 32-bit c-mesh link at 1 GHz.

    /**
     * Transient-error injection rates and recovery budgets for the
     * buffers and the NoC (crossbar-side drift/ABFT knobs live in
     * engine.noise / engine). All off by default.
     */
    resilience::TransientSpec transient;

    /**
     * Crossbars per IMA that can actually be in flight, given the
     * ADC drain rate (ceil of effectiveXbarsPerIma, capped at the
     * array count). Buffer sizing and dynamic power follow this:
     * an SE-style IMA with one slow ADC only ever activates one of
     * its many arrays per cycle.
     */
    int activeXbarsPerIma() const;

    /** IMA input register bytes: one 16-bit input per active row. */
    int irBytesPerIma() const;

    /** IMA output register bytes: one 16-bit value per weight col. */
    int orBytesPerIma() const;

    /** 16-bit weights stored per crossbar array. */
    std::int64_t weightsPerXbar() const;

    /** 16-bit weights stored per chip. */
    std::int64_t weightsPerChip() const;

    /** Synaptic storage per chip in bytes. */
    std::int64_t storageBytesPerChip() const;

    /**
     * Crossbar read cycles that can be drained per 100 ns cycle per
     * IMA, limited by both the crossbar count and the ADC sampling
     * rate (each read produces rows+1 samples to convert).
     */
    double effectiveXbarsPerIma() const;

    /** Peak 16-bit MACs per cycle per chip. */
    double peakMacsPerCycle() const;

    /** Peak 16-bit operations per second per chip (2 ops per MAC). */
    double peakGops() const;

    /**
     * Simulation worker threads (the engine's knob, surfaced at the
     * design-point level): 0 = one per hardware thread, 1 = serial.
     * Purely a host-side execution setting; never affects results.
     */
    int threads() const { return engine.threads; }

    /** Validate; fatal() on inconsistent parameters. */
    void validate() const;

    /** The ISAAC-CE design point (Table I defaults). */
    static IsaacConfig isaacCE();

    /**
     * The ISAAC-PE design point. The paper notes CE- and PE-optimal
     * configurations are nearly identical; the DSE (Fig. 5) selects
     * H128-A8-C8 with 8 IMAs per tile for peak PE.
     */
    static IsaacConfig isaacPE();

    /**
     * The ISAAC-SE (storage-efficiency) design point: many large
     * crossbars sharing a single ADC per IMA, trading throughput for
     * on-chip weight capacity (Sec. VIII-A).
     */
    static IsaacConfig isaacSE();

    /** Short config label, e.g. "H128-A8-C8-I12". */
    std::string label() const;
};

} // namespace isaac::arch

#endif // ISAAC_ARCH_CONFIG_H
