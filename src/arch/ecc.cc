#include "arch/ecc.h"

namespace isaac::arch {

namespace {

/** Is Hamming position p (1-based) a check-bit position? */
constexpr bool
isCheckPos(int p)
{
    return (p & (p - 1)) == 0; // power of two
}

} // namespace

std::uint32_t
eccEncode(std::uint16_t data)
{
    // Scatter the data bits over the non-power-of-two positions.
    std::uint32_t code = 0;
    int d = 0;
    for (int p = 1; p <= 21; ++p) {
        if (isCheckPos(p))
            continue;
        if ((data >> d) & 1u)
            code |= 1u << (p - 1);
        ++d;
    }
    // Each check bit covers the positions whose index has its bit
    // set; computing it as the XOR of the covered positions makes
    // the syndrome of a single flip equal that flip's position.
    for (int k = 0; (1 << k) <= 21; ++k) {
        std::uint32_t parity = 0;
        for (int p = 1; p <= 21; ++p) {
            if (p != (1 << k) && (p & (1 << k)))
                parity ^= (code >> (p - 1)) & 1u;
        }
        if (parity)
            code |= 1u << ((1 << k) - 1);
    }
    // Overall parity over the 21 Hamming bits extends SEC to SECDED.
    std::uint32_t overall = 0;
    for (int p = 1; p <= 21; ++p)
        overall ^= (code >> (p - 1)) & 1u;
    if (overall)
        code |= 1u << 21;
    return code;
}

namespace {

std::uint16_t
extractData(std::uint32_t code)
{
    std::uint16_t data = 0;
    int d = 0;
    for (int p = 1; p <= 21; ++p) {
        if (isCheckPos(p))
            continue;
        if ((code >> (p - 1)) & 1u)
            data |= static_cast<std::uint16_t>(1u << d);
        ++d;
    }
    return data;
}

} // namespace

EccOutcome
eccDecode(std::uint32_t code, std::uint16_t &data)
{
    int syndrome = 0;
    for (int p = 1; p <= 21; ++p) {
        if ((code >> (p - 1)) & 1u)
            syndrome ^= p;
    }
    std::uint32_t overall = 0;
    for (int p = 1; p <= 22; ++p)
        overall ^= (code >> (p - 1)) & 1u;

    if (syndrome == 0 && overall == 0) {
        data = extractData(code);
        return EccOutcome::Clean;
    }
    if (overall != 0) {
        // Odd number of flips: assume one. syndrome == 0 means the
        // overall parity bit itself flipped; otherwise it names the
        // flipped Hamming position.
        if (syndrome > 21) {
            data = extractData(code);
            return EccOutcome::Uncorrectable;
        }
        if (syndrome != 0)
            code ^= 1u << (syndrome - 1);
        data = extractData(code);
        return EccOutcome::Corrected;
    }
    // Even parity with a non-zero syndrome: two flips.
    data = extractData(code);
    return EccOutcome::Uncorrectable;
}

} // namespace isaac::arch
