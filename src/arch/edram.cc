#include "arch/edram.h"

#include "arch/ecc.h"
#include "common/rng.h"

namespace isaac::arch {

void
protectedPass(std::span<Word> words, double flipRate,
              std::uint64_t streamKey,
              const resilience::TransientSpec &spec,
              resilience::TransientStats &stats)
{
    stats.eccWords += words.size();
    if (flipRate <= 0.0)
        return;
    for (std::size_t i = 0; i < words.size(); ++i) {
        const auto original =
            static_cast<std::uint16_t>(words[i]);
        std::uint32_t code = eccEncode(original);
        // One Rng per (seed, transfer, word): the flip pattern is a
        // pure function of logical coordinates.
        Rng rng(spec.seed +
                0x9E3779B97F4A7C15ull *
                    (streamKey * 0x100000001B3ull + i + 1));
        int flips = 0;
        for (int b = 0; b < kEccCodeBits; ++b) {
            if (rng.uniform01() < flipRate) {
                code ^= 1u << b;
                ++flips;
            }
        }
        if (flips == 0)
            continue;
        stats.eccBitFlips += static_cast<std::uint64_t>(flips);
        std::uint16_t decoded = 0;
        switch (eccDecode(code, decoded)) {
        case EccOutcome::Clean:
            break;
        case EccOutcome::Corrected:
            ++stats.eccSingles;
            break;
        case EccOutcome::Uncorrectable:
            ++stats.eccDoubles;
            // The producer still holds the result: recompute the
            // word exactly, charging the replay penalty.
            ++stats.eccRecomputedWords;
            stats.eccRecomputeCycles +=
                static_cast<std::uint64_t>(spec.recomputeCycles);
            decoded = original;
            break;
        }
        words[i] = static_cast<Word>(decoded);
    }
}

} // namespace isaac::arch
