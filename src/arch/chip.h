/**
 * @file
 * A chip (node): the tile grid connected by the concentrated mesh,
 * plus the external HyperTransport interface (Fig. 2). The 168-tile
 * ISAAC-CE chip arranges its tiles 14 x 12 (Sec. VII); other tile
 * counts use the nearest balanced grid.
 */

#ifndef ISAAC_ARCH_CHIP_H
#define ISAAC_ARCH_CHIP_H

#include <vector>

#include "arch/tile.h"

namespace isaac::arch {

/** One ISAAC chip's structural state. */
class Chip
{
  public:
    Chip(const IsaacConfig &cfg, int id);

    int id() const { return _id; }

    /** Tile-grid dimensions (cols x rows). */
    int gridCols() const { return cols; }
    int gridRows() const { return rows; }

    Tile &tile(int x, int y);
    const Tile &tile(int x, int y) const;

    /** Tiles in row-major order. */
    std::vector<Tile> &tiles() { return _tiles; }
    const std::vector<Tile> &tiles() const { return _tiles; }

    /** Pick a balanced (cols, rows) grid for a tile count. */
    static std::pair<int, int> gridFor(int tileCount);

  private:
    int _id;
    int cols;
    int rows;
    std::vector<Tile> _tiles;
};

} // namespace isaac::arch

#endif // ISAAC_ARCH_CHIP_H
