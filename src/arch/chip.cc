#include "arch/chip.h"

#include <cmath>

#include "common/logging.h"

namespace isaac::arch {

std::pair<int, int>
Chip::gridFor(int tileCount)
{
    if (tileCount < 1)
        fatal("Chip::gridFor: need at least one tile");
    // Largest divisor pair closest to square, wider than tall
    // (168 -> 14 x 12, matching Sec. VII).
    int bestCols = tileCount, bestRows = 1;
    for (int rows = 1; rows * rows <= tileCount; ++rows) {
        if (tileCount % rows == 0) {
            bestRows = rows;
            bestCols = tileCount / rows;
        }
    }
    return {bestCols, bestRows};
}

Chip::Chip(const IsaacConfig &cfg, int id) : _id(id)
{
    const auto [c, r] = gridFor(cfg.tilesPerChip);
    cols = c;
    rows = r;
    _tiles.reserve(static_cast<std::size_t>(cfg.tilesPerChip));
    for (int y = 0; y < rows; ++y)
        for (int x = 0; x < cols; ++x)
            _tiles.emplace_back(cfg, TileCoord{id, x, y});
}

Tile &
Chip::tile(int x, int y)
{
    if (x < 0 || x >= cols || y < 0 || y >= rows)
        fatal("Chip::tile: coordinate out of range");
    return _tiles[static_cast<std::size_t>(y) * cols + x];
}

const Tile &
Chip::tile(int x, int y) const
{
    return const_cast<Chip *>(this)->tile(x, y);
}

} // namespace isaac::arch
