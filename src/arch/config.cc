#include "arch/config.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace isaac::arch {

int
IsaacConfig::activeXbarsPerIma() const
{
    const double eff = effectiveXbarsPerIma();
    return std::min(xbarsPerIma,
                    static_cast<int>(std::ceil(eff - 1e-9)));
}

int
IsaacConfig::irBytesPerIma() const
{
    return activeXbarsPerIma() * engine.rows * kDataBytes;
}

int
IsaacConfig::orBytesPerIma() const
{
    return activeXbarsPerIma() * engine.cols /
        engine.slicesPerWeight() * kDataBytes;
}

std::int64_t
IsaacConfig::weightsPerXbar() const
{
    return static_cast<std::int64_t>(engine.rows) *
        (engine.cols / engine.slicesPerWeight());
}

std::int64_t
IsaacConfig::weightsPerChip() const
{
    return weightsPerXbar() * xbarsPerIma * imasPerTile * tilesPerChip;
}

std::int64_t
IsaacConfig::storageBytesPerChip() const
{
    return weightsPerChip() * kDataBytes;
}

double
IsaacConfig::effectiveXbarsPerIma() const
{
    // Samples available per 100 ns cycle across the IMA's ADCs.
    const double samplesPerCycle = adcsPerIma * adcGsps * cycleNs;
    // Each crossbar read produces rows data bitlines + the unit
    // column (cols == rows in the square arrays we model; the
    // sampled quantity is the column count).
    const double samplesPerRead = engine.cols + 1;
    return std::min<double>(xbarsPerIma,
                            samplesPerCycle / samplesPerRead);
}

double
IsaacConfig::peakMacsPerCycle() const
{
    // One crossbar read advances rows x cols cell-MACs; a full
    // 16-bit MAC needs phases() reads of slicesPerWeight() cells.
    const double macsPerRead =
        static_cast<double>(engine.rows) * engine.cols /
        (engine.phases() * engine.slicesPerWeight());
    return macsPerRead * effectiveXbarsPerIma() * imasPerTile *
        tilesPerChip;
}

double
IsaacConfig::peakGops() const
{
    const double cyclesPerSec = 1e9 / cycleNs;
    return 2.0 * peakMacsPerCycle() * cyclesPerSec / 1e9;
}

void
IsaacConfig::validate() const
{
    engine.validate();
    if (adcsPerIma < 1 || xbarsPerIma < 1 || imasPerTile < 1 ||
        tilesPerChip < 1) {
        fatal("IsaacConfig: counts must be positive");
    }
    if (adcGsps <= 0 || cycleNs <= 0)
        fatal("IsaacConfig: rates must be positive");
    if (edramKBPerTile < 1 || busBits < 8)
        fatal("IsaacConfig: buffer/bus sizes too small");
    transient.validate();
}

IsaacConfig
IsaacConfig::isaacCE()
{
    return IsaacConfig{};
}

IsaacConfig
IsaacConfig::isaacPE()
{
    // In our model the PE-optimal point of the Fig. 5 sweep
    // coincides with the CE-optimal one (the paper calls them
    // "quite similar"; its ISAAC-PE differs only marginally).
    return IsaacConfig{};
}

IsaacConfig
IsaacConfig::isaacSE()
{
    IsaacConfig cfg;
    cfg.engine.rows = 512;
    cfg.engine.cols = 512;
    cfg.adcsPerIma = 1;
    cfg.xbarsPerIma = 64;
    cfg.imasPerTile = 12;
    return cfg;
}

std::string
IsaacConfig::label() const
{
    return "H" + std::to_string(engine.rows) + "-A" +
        std::to_string(adcsPerIma) + "-C" +
        std::to_string(xbarsPerIma) + "-I" +
        std::to_string(imasPerTile);
}

} // namespace isaac::arch
