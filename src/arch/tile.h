/**
 * @file
 * A tile: eDRAM buffer, 12 IMAs, sigmoid/max-pool/shift-and-add
 * units, and the output register, connected by the shared bus
 * (Fig. 2). Structurally the tile tracks its IMAs' layer ownership
 * and its eDRAM buffer allocation; multiple layers may share a tile
 * (Sec. VI: the eDRAM "context-switches to handling other layers
 * that might be sharing that tile").
 */

#ifndef ISAAC_ARCH_TILE_H
#define ISAAC_ARCH_TILE_H

#include <cstdint>
#include <map>
#include <vector>

#include "arch/ima.h"

namespace isaac::arch {

/** A tile's position within its chip's c-mesh concentration. */
struct TileCoord
{
    int chip = 0;
    int x = 0; ///< Column in the tile grid.
    int y = 0; ///< Row in the tile grid.

    auto operator<=>(const TileCoord &) const = default;
};

/** One tile's structural/allocation state. */
class Tile
{
  public:
    Tile(const IsaacConfig &cfg, TileCoord coord);

    const TileCoord &coord() const { return _coord; }

    std::vector<Ima> &imas() { return _imas; }
    const std::vector<Ima> &imas() const { return _imas; }

    /** Unallocated eDRAM buffer bytes. */
    std::int64_t edramFreeBytes() const;

    /** Reserve input-buffer space for a layer; false if full. */
    bool reserveBuffer(std::int64_t bytes, std::size_t layerIdx);

    /** eDRAM bytes held by each resident layer. */
    const std::map<std::size_t, std::int64_t> &buffers() const
    {
        return bufferByLayer;
    }

    /** Crossbars still free across the tile's IMAs. */
    int freeXbars() const;

    /** Layers with any presence (IMAs or buffer) on this tile. */
    std::vector<std::size_t> residentLayers() const;

  private:
    TileCoord _coord;
    std::int64_t edramBytes;
    std::int64_t edramUsed = 0;
    std::vector<Ima> _imas;
    std::map<std::size_t, std::int64_t> bufferByLayer;
};

} // namespace isaac::arch

#endif // ISAAC_ARCH_TILE_H
