/**
 * @file
 * ECC-protected buffer passes for the 64KB eDRAM tile buffer and the
 * 3KB output registers.
 *
 * Every activation word that transits a tile buffer or an OR is held
 * as a SECDED (22,16) codeword (arch/ecc.h). This module models one
 * *pass* through such a buffer: encode, inject bit flips at the
 * configured rate, decode, and recover:
 *
 *  - singles are corrected in place (free);
 *  - doubles are detected and the word is *recomputed from its
 *    producer* — the dot-product result still lives upstream, so
 *    recovery is exact at a cost of TransientSpec::recomputeCycles
 *    per word.
 *
 * Both recovery paths restore the exact word, which is what lets the
 * acceptance test demand bit-identical end-to-end output with
 * injection enabled. Determinism: each word's flip draw is keyed by
 * (seed, streamKey, word index) — logical coordinates, never
 * execution order — so any thread count produces the same flips,
 * corrections, and counters.
 */

#ifndef ISAAC_ARCH_EDRAM_H
#define ISAAC_ARCH_EDRAM_H

#include <cstdint>
#include <span>

#include "common/types.h"
#include "resilience/health.h"

namespace isaac::arch {

/**
 * Pass `words` through a SECDED-protected buffer with per-bit flip
 * probability `flipRate`, correcting or recomputing as needed and
 * accumulating into `stats`. `streamKey` identifies the logical
 * transfer (layer, buffer kind, image) so repeated runs and any
 * thread interleaving replay the same error pattern. `spec` supplies
 * the seed and the recompute penalty. No-op (beyond the word count)
 * when flipRate is 0.
 */
void protectedPass(std::span<Word> words, double flipRate,
                   std::uint64_t streamKey,
                   const resilience::TransientSpec &spec,
                   resilience::TransientStats &stats);

} // namespace isaac::arch

#endif // ISAAC_ARCH_EDRAM_H
