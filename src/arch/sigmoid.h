/**
 * @file
 * The tile's sigmoid unit (Fig. 2): the DaDianNao-style transfer
 * function with two parallel 16-segment piecewise-linear evaluators
 * per tile (Table I charges 0.52 mW / 0.0006 mm^2 for the pair).
 * Wraps the shared nn::SigmoidLut with per-op accounting so the
 * structural simulators can charge energy per activation.
 */

#ifndef ISAAC_ARCH_SIGMOID_H
#define ISAAC_ARCH_SIGMOID_H

#include <cstdint>

#include "nn/activation.h"

namespace isaac::arch {

/** A tile's sigmoid/activation unit pair. */
class SigmoidUnit
{
  public:
    /** Units per tile (Table I). */
    static constexpr int kUnitsPerTile = 2;

    explicit SigmoidUnit(FixedFormat fmt) : lut(fmt) {}

    /** Apply an activation; counts the operation. */
    Word
    apply(nn::Activation act, Word x)
    {
        ++_ops;
        return nn::applyActivation(act, x, lut);
    }

    /** Activations evaluated since construction/reset. */
    std::uint64_t ops() const { return _ops; }

    void resetStats() { _ops = 0; }

    /**
     * Activations the pair can evaluate per 100 ns ISAAC cycle at
     * the 1.2 GHz digital clock: the tile-side throughput bound the
     * Sec. VI schedule relies on (well above the 64 results an IMA
     * wave can produce).
     */
    static constexpr int
    opsPerIsaacCycle()
    {
        return kUnitsPerTile * 120;
    }

    const nn::SigmoidLut &table() const { return lut; }

  private:
    nn::SigmoidLut lut;
    std::uint64_t _ops = 0;
};

} // namespace isaac::arch

#endif // ISAAC_ARCH_SIGMOID_H
