#include "train/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace isaac::train {

Dataset
makeClusterDataset(int samples, int features, int classes,
                   std::uint64_t seed, FixedFormat fmt,
                   double spread)
{
    if (samples < 1 || features < 1 || classes < 2)
        fatal("makeClusterDataset: degenerate shape");
    Rng rng(seed);
    // Random unit-ish cluster centres in [-0.5, 0.5]^d.
    std::vector<double> centres(
        static_cast<std::size_t>(classes) * features);
    for (auto &c : centres)
        c = rng.uniform01() - 0.5;

    Dataset data;
    data.features = features;
    data.classes = classes;
    data.x.resize(static_cast<std::size_t>(samples) * features);
    data.labels.resize(static_cast<std::size_t>(samples));
    for (int s = 0; s < samples; ++s) {
        const int label = static_cast<int>(rng.uniform(0, classes - 1));
        data.labels[static_cast<std::size_t>(s)] = label;
        for (int f = 0; f < features; ++f) {
            const double v =
                centres[static_cast<std::size_t>(label) * features +
                        f] +
                rng.gaussian() * spread;
            data.x[static_cast<std::size_t>(s) * features + f] =
                toFixed(v, fmt);
        }
    }
    return data;
}

InSituTrainer::InSituTrainer(const xbar::EngineConfig &engineCfg,
                             TrainConfig cfg, int features,
                             int classes)
    : engineCfg(engineCfg), cfg(cfg), features(features),
      classes(classes),
      master(static_cast<std::size_t>(classes) * features),
      quantized(static_cast<std::size_t>(classes) * features)
{
    if (features < 1 || classes < 2)
        fatal("InSituTrainer: degenerate shape");
    Rng rng(cfg.seed);
    for (auto &w : master)
        w = (rng.uniform01() - 0.5) * 0.1;
    for (std::size_t i = 0; i < master.size(); ++i)
        quantized[i] = toFixed(master[i], cfg.format);
    engine = std::make_unique<xbar::BitSerialEngine>(
        engineCfg, quantized, features, classes);
    // The initial load wrote every cell.
    writes += static_cast<std::int64_t>(engine->physicalArrays()) *
        engineCfg.rows * (engineCfg.cols + 1);
}

void
InSituTrainer::syncEngine()
{
    for (std::size_t i = 0; i < master.size(); ++i)
        quantized[i] = toFixed(master[i], cfg.format);
    writes += engine->reprogram(quantized);
    ++reprograms;
}

std::vector<double>
InSituTrainer::scores(std::span<const Word> sample) const
{
    const auto sums = engine->dotProduct(sample);
    // Scale the Q2n fixed-point accumulator back to reals.
    const double scale =
        1.0 / (static_cast<double>(1 << cfg.format.fracBits) *
               (1 << cfg.format.fracBits));
    std::vector<double> out(static_cast<std::size_t>(classes));
    for (int k = 0; k < classes; ++k)
        out[static_cast<std::size_t>(k)] =
            static_cast<double>(sums[static_cast<std::size_t>(k)]) *
            scale;
    return out;
}

int
InSituTrainer::predict(std::span<const Word> sample) const
{
    const auto s = scores(sample);
    return static_cast<int>(
        std::max_element(s.begin(), s.end()) - s.begin());
}

double
InSituTrainer::evaluate(const Dataset &data) const
{
    int correct = 0;
    for (int i = 0; i < data.samples(); ++i) {
        const std::span<const Word> sample(
            data.x.data() +
                static_cast<std::size_t>(i) * data.features,
            static_cast<std::size_t>(data.features));
        correct += predict(sample) ==
            data.labels[static_cast<std::size_t>(i)];
    }
    return static_cast<double>(correct) / data.samples();
}

TrainResult
InSituTrainer::fit(const Dataset &data)
{
    if (data.features != features || data.classes != classes)
        fatal("InSituTrainer::fit: dataset shape mismatch");

    TrainResult result;
    int sinceSync = 0;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        double lossSum = 0.0;
        int correct = 0;
        for (int i = 0; i < data.samples(); ++i) {
            const std::span<const Word> sample(
                data.x.data() +
                    static_cast<std::size_t>(i) * data.features,
                static_cast<std::size_t>(data.features));
            const int label =
                data.labels[static_cast<std::size_t>(i)];

            // Analog forward pass, digital softmax.
            auto s = scores(sample);
            const double maxS =
                *std::max_element(s.begin(), s.end());
            double z = 0.0;
            for (auto &v : s) {
                v = std::exp(v - maxS);
                z += v;
            }
            for (auto &v : s)
                v /= z;
            lossSum += -std::log(
                std::max(1e-12,
                         s[static_cast<std::size_t>(label)]));
            correct += predict(sample) == label;

            // Digital gradient against the master weights.
            for (int k = 0; k < classes; ++k) {
                const double err =
                    s[static_cast<std::size_t>(k)] -
                    (k == label ? 1.0 : 0.0);
                for (int f = 0; f < features; ++f) {
                    const double xv = fromFixed(
                        data.x[static_cast<std::size_t>(i) *
                                   features +
                               f],
                        cfg.format);
                    master[static_cast<std::size_t>(k) * features +
                           f] -= cfg.learningRate * err * xv;
                }
            }
            if (++sinceSync >= cfg.reprogramInterval) {
                syncEngine();
                sinceSync = 0;
            }
        }
        syncEngine();
        sinceSync = 0;
        result.epochs.push_back(
            {lossSum / data.samples(),
             static_cast<double>(correct) / data.samples()});
    }
    result.cellWrites = writes;
    result.reprograms = reprograms;
    result.finalAccuracy = evaluate(data);
    return result;
}

} // namespace isaac::train
