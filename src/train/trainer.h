/**
 * @file
 * In-situ training extension (the paper's stated future work:
 * "Adapting ISAAC for in-the-field training would require
 * non-trivial effort and is left for future work", Sec. III).
 *
 * This module implements the hybrid scheme later adopted by the
 * ISAAC lineage (PipeLayer and successors): forward passes run on
 * the analog crossbars, gradients are computed digitally against a
 * full-precision master copy of the weights, and the crossbars are
 * periodically re-programmed with the quantized master weights.
 * Program-verify writes are counted so the endurance/energy cost of
 * training can be reported via xbar::WriteModel.
 *
 * The trainer fits a single classifier layer (softmax regression)
 * -- enough to demonstrate that learning *through* the quantized
 * analog forward pass converges, and to quantify why in-the-field
 * training is expensive on this substrate.
 */

#ifndef ISAAC_TRAIN_TRAINER_H
#define ISAAC_TRAIN_TRAINER_H

#include <cstdint>
#include <vector>

#include "common/fixed_point.h"
#include "xbar/engine.h"

namespace isaac::train {

/** A labelled dataset of fixed-point feature vectors. */
struct Dataset
{
    int features = 0;
    int classes = 0;
    /** samples x features, row-major. */
    std::vector<Word> x;
    /** One label per sample. */
    std::vector<int> labels;

    int samples() const
    {
        return features
            ? static_cast<int>(x.size()) / features
            : 0;
    }
};

/**
 * Deterministic synthetic classification problem: `classes`
 * Gaussian clusters in `features` dimensions, quantized to the
 * given fixed-point format.
 */
Dataset makeClusterDataset(int samples, int features, int classes,
                           std::uint64_t seed, FixedFormat fmt,
                           double spread = 0.15);

/** Training hyper-parameters. */
struct TrainConfig
{
    int epochs = 20;
    double learningRate = 0.5;
    /** Re-program the crossbars every N samples. */
    int reprogramInterval = 32;
    FixedFormat format{12};
    std::uint64_t seed = 1;
};

/** Per-epoch training telemetry. */
struct EpochStats
{
    double loss = 0.0;     ///< Mean cross-entropy.
    double accuracy = 0.0; ///< Training accuracy.
};

/** Results of a training run. */
struct TrainResult
{
    std::vector<EpochStats> epochs;
    std::int64_t cellWrites = 0;   ///< Program-verify writes.
    std::int64_t reprograms = 0;   ///< Crossbar update passes.
    double finalAccuracy = 0.0;
};

/** Softmax-regression trainer with an analog forward pass. */
class InSituTrainer
{
  public:
    InSituTrainer(const xbar::EngineConfig &engineCfg,
                  TrainConfig cfg, int features, int classes);

    /** Run SGD over the dataset; returns telemetry. */
    TrainResult fit(const Dataset &data);

    /** Classify one sample through the crossbars. */
    int predict(std::span<const Word> sample) const;

    /** Accuracy over a dataset (through the crossbars). */
    double evaluate(const Dataset &data) const;

  private:
    std::vector<double> scores(std::span<const Word> sample) const;
    void syncEngine();

    xbar::EngineConfig engineCfg;
    TrainConfig cfg;
    int features;
    int classes;
    std::vector<double> master;  ///< classes x features.
    std::vector<Word> quantized; ///< Mirror loaded in the engine.
    std::unique_ptr<xbar::BitSerialEngine> engine;
    std::int64_t writes = 0;
    std::int64_t reprograms = 0;
};

} // namespace isaac::train

#endif // ISAAC_TRAIN_TRAINER_H
